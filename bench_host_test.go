package vfreq

import (
	"fmt"

	"vfreq/internal/platform"
)

// scriptHost is a minimal scriptable platform.Host used by the estimator
// benchmarks to feed exact consumption patterns to the controller.
type scriptHost struct {
	node  platform.NodeInfo
	vms   []platform.VMInfo
	usage map[string]int64
}

func newScriptHost(cores int, maxMHz int64) *scriptHost {
	return &scriptHost{
		node:  platform.NodeInfo{Name: "script", Cores: cores, MaxFreqMHz: maxMHz},
		usage: map[string]int64{},
	}
}

func (s *scriptHost) addVM(name string, vcpus int, freqMHz int64) {
	s.vms = append(s.vms, platform.VMInfo{Name: name, VCPUs: vcpus, FreqMHz: freqMHz})
	for j := 0; j < vcpus; j++ {
		s.usage[fmt.Sprintf("%s/%d", name, j)] = 0
	}
}

func (s *scriptHost) consume(vm string, j int, us int64) {
	s.usage[fmt.Sprintf("%s/%d", vm, j)] += us
}

func (s *scriptHost) Node() platform.NodeInfo             { return s.node }
func (s *scriptHost) ListVMs() ([]platform.VMInfo, error) { return s.vms, nil }

func (s *scriptHost) UsageUs(vm string, j int) (int64, error) {
	u, ok := s.usage[fmt.Sprintf("%s/%d", vm, j)]
	if !ok {
		return 0, fmt.Errorf("no vcpu %s/%d", vm, j)
	}
	return u, nil
}

func (s *scriptHost) SetMax(vm string, j int, quotaUs, periodUs int64) error { return nil }
func (s *scriptHost) ClearMax(vm string, j int) error                        { return nil }
func (s *scriptHost) SetBurst(vm string, j int, burstUs int64) error         { return nil }
func (s *scriptHost) ThreadID(vm string, j int) (int, error)                 { return 1, nil }
func (s *scriptHost) LastCPU(tid int) (int, error)                           { return 0, nil }
func (s *scriptHost) CoreFreqMHz(core int) (int64, error)                    { return s.node.MaxFreqMHz, nil }
