// Command benchdiff runs the repo's named benchmarks, records their
// results as a JSON artefact (BENCH_<n>.json), and optionally compares
// against a previous artefact with a tolerance gate.
//
// Typical use:
//
//	go run ./cmd/benchdiff -out BENCH_3.json                  # record
//	go run ./cmd/benchdiff -out BENCH_4.json \
//	    -baseline BENCH_3.json -tolerance 0.25 -gate          # record + gate
//	go run ./cmd/benchdiff -benchtime 1x -out /dev/null       # CI smoke
//
// The gate compares ns/op and allocs/op for benchmarks present in both
// files and fails (exit 1) when a metric regresses by more than the
// tolerance fraction. Custom metrics (nodes_eq7, step_µs, …) are
// recorded and printed but never gated: they are reproduction results,
// not performance, and should be judged against EXPERIMENTS.md instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the perf-tracked benchmarks: the full-step and
// cluster macro benchmarks plus the stage micro benchmarks.
const defaultBench = "Fig2ControllerStep|ControllerOverhead|DynamicCluster|MonitorStage|ApplyStage|AuctionSharded|SteadyStep|EstimateEnforce|ClusterScale|MetricsRecord"

// defaultPkgs holds the packages that define those benchmarks.
var defaultPkgs = []string{".", "./internal/core", "./internal/cluster", "./internal/metrics"}

// Result is one benchmark line: the iteration count plus every
// value-unit pair go test printed (ns/op, B/op, allocs/op, custom
// metrics).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Artefact is the persisted BENCH_<n>.json document.
type Artefact struct {
	Schema     int      `json:"schema"`
	RecordedAt string   `json:"recorded_at"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Bench      string   `json:"bench"`
	BenchTime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value (use 1x for a smoke run)")
		pkgs      = flag.String("pkgs", strings.Join(defaultPkgs, ","), "comma-separated packages to benchmark")
		out       = flag.String("out", "", "output JSON path (e.g. BENCH_3.json); empty = print only")
		baseline  = flag.String("baseline", "", "previous BENCH_<n>.json to compare against")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional regression for gated metrics")
		gate      = flag.Bool("gate", false, "exit non-zero when a gated metric regresses beyond tolerance")
		gateOn    = flag.String("gate-metrics", strings.Join(gatedMetrics, ","),
			"comma-separated metrics the tolerance gate enforces (allocs/op alone is machine-independent)")
	)
	flag.Parse()
	gatedMetrics = strings.Split(*gateOn, ",")

	art, err := run(*bench, *benchtime, strings.Split(*pkgs, ","))
	if err != nil {
		fatal(err)
	}
	if len(art.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed; check -bench %q", *bench))
	}
	if *out != "" && *out != "/dev/null" {
		buf, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d results to %s\n", len(art.Results), *out)
	}
	if *baseline == "" {
		return
	}
	prev, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	regressions := compare(prev, art, *tolerance)
	if len(regressions) > 0 && *gate {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %.0f%%:\n",
			len(regressions), *tolerance*100)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s %s: %.2f -> %.2f (%+.1f%%)\n",
				r.bench, r.metric, r.oldV, r.newV, r.dv*100)
		}
		os.Exit(1)
	}
}

// run invokes go test -bench and parses its output into an Artefact.
func run(bench, benchtime string, pkgs []string) (*Artefact, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	art := &Artefact{
		Schema:     1,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Bench:      bench,
		BenchTime:  benchtime,
	}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			art.Results = append(art.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w", err)
	}
	return art, nil
}

// parseLine parses one "BenchmarkName-4  iters  v unit  v unit ..."
// line. The -<GOMAXPROCS> suffix is stripped so artefacts recorded on
// machines with different core counts stay comparable by name.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func load(path string) (*Artefact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artefact
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// gatedMetrics are the performance metrics the tolerance gate enforces
// by default (narrowed by -gate-metrics); everything else is
// informational.
var gatedMetrics = []string{"ns/op", "allocs/op"}

type regression struct {
	bench, metric  string
	oldV, newV, dv float64
}

// compare prints a delta table for every benchmark present in both
// artefacts and returns the gated metrics that regressed beyond tol.
func compare(prev, cur *Artefact, tol float64) []regression {
	old := map[string]Result{}
	for _, r := range prev.Results {
		old[r.Name] = r
	}
	var regs []regression
	fmt.Printf("\n%-44s %-12s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range cur.Results {
		o, ok := old[r.Name]
		if !ok {
			fmt.Printf("%-44s (new benchmark, no baseline)\n", r.Name)
			continue
		}
		names := make([]string, 0, len(r.Metrics))
		for m := range r.Metrics {
			if _, ok := o.Metrics[m]; ok {
				names = append(names, m)
			}
		}
		sort.Strings(names)
		for _, m := range names {
			ov, nv := o.Metrics[m], r.Metrics[m]
			var dv float64
			if ov != 0 {
				dv = (nv - ov) / ov
			} else if nv != 0 {
				dv = 1
			}
			mark := ""
			if gated(m) && dv > tol {
				mark = "  REGRESSED"
				regs = append(regs, regression{r.Name, m, ov, nv, dv})
			}
			fmt.Printf("%-44s %-12s %14.2f %14.2f %+7.1f%%%s\n", r.Name, m, ov, nv, dv*100, mark)
		}
	}
	return regs
}

func gated(metric string) bool {
	for _, m := range gatedMetrics {
		if m == metric {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
