// Command placement compares VM placement policies on a cluster.
//
//	placement -nodes chetemi:12,chiclet:10 -vms small:250,medium:50,large:100 \
//	          -alg best -mode freq -factor 1.0 -memory
//
// Node kinds are the paper's chetemi/chiclet; VM kinds the paper's
// small/medium/large templates. With -compare, the tool prints the full
// §IV-C comparison (classic vs Eq. 7 vs consolidation factor) instead of
// a single run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vfreq/internal/experiments"
	"vfreq/internal/placement"
)

func main() {
	nodesFlag := flag.String("nodes", "chetemi:12,chiclet:10", "cluster: kind:count,...")
	vmsFlag := flag.String("vms", "small:250,medium:50,large:100", "workload: kind:count,...")
	algFlag := flag.String("alg", "best", "packing algorithm: first, best, worst")
	modeFlag := flag.String("mode", "freq", "constraint: core (vCPU count) or freq (Eq. 7)")
	factor := flag.Float64("factor", 1.0, "consolidation factor")
	memory := flag.Bool("memory", true, "enforce node memory capacity")
	split := flag.Bool("split", false, "per-core splitting (freq mode only)")
	sorted := flag.Bool("sorted", false, "sort VMs by decreasing demand first")
	compare := flag.Bool("compare", false, "print the paper's §IV-C comparison instead")
	flag.Parse()

	if *compare {
		rows, err := experiments.RunPlacementComparison()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-42s %-6s %-9s %-12s %-12s %-10s\n",
			"policy", "nodes", "unplaced", "max lg/chic", "max sm/chet", "idle save")
		for _, r := range rows {
			fmt.Printf("%-42s %-6d %-9d %-12d %-12d %.0f W\n",
				r.Label, r.UsedNodes, r.Unplaced, r.MaxLargePerChiclet,
				r.MaxSmallPerChetemi, r.IdleSavingsWatts)
		}
		return
	}

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fatal(err)
	}
	vms, err := parseVMs(*vmsFlag)
	if err != nil {
		fatal(err)
	}
	if *sorted {
		placement.SortDecreasing(vms)
	}
	var alg placement.Algorithm
	switch *algFlag {
	case "first":
		alg = placement.FirstFit
	case "best":
		alg = placement.BestFit
	case "worst":
		alg = placement.WorstFit
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algFlag))
	}
	var mode placement.ConstraintMode
	switch *modeFlag {
	case "core":
		mode = placement.CoreCount
	case "freq":
		mode = placement.VirtualFrequency
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeFlag))
	}
	policy := placement.Policy{Mode: mode, Factor: *factor, Memory: *memory, CoreSplitting: *split}
	res, err := placement.Place(alg, nodes, vms, policy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s, factor %.2f: %d/%d nodes used, %d VMs unplaced\n",
		alg, mode, *factor, res.UsedNodes(), len(res.Nodes), len(res.Unplaced))
	fmt.Printf("idle power freed by empty nodes: %.0f W — active power: %.0f W\n",
		res.IdlePowerSavingsWatts(), res.ActivePowerWatts())
	for i, n := range res.Nodes {
		if len(n.VMs) == 0 {
			continue
		}
		byTpl := map[string]int{}
		for _, v := range n.VMs {
			byTpl[v.Template]++
		}
		var parts []string
		for _, tpl := range []string{"small", "medium", "large"} {
			if c := byTpl[tpl]; c > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", c, tpl))
			}
		}
		fmt.Printf("  node %2d (%s): load %5.1f%%, mem %d/%d GB — %s\n",
			i, n.Spec.Name, 100*n.Load(policy), n.UsedMemoryGB(), n.Spec.MemoryGB,
			strings.Join(parts, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "placement:", err)
	os.Exit(1)
}

func parseNodes(s string) ([]placement.NodeSpec, error) {
	var out []placement.NodeSpec
	for _, part := range strings.Split(s, ",") {
		kind, count, err := parseKindCount(part)
		if err != nil {
			return nil, err
		}
		var spec placement.NodeSpec
		switch kind {
		case "chetemi":
			spec = placement.NodeSpec{Name: "chetemi", Cores: 40, MaxFreqMHz: 2400,
				MemoryGB: 256, IdleWatts: 97, MaxWatts: 220}
		case "chiclet":
			spec = placement.NodeSpec{Name: "chiclet", Cores: 64, MaxFreqMHz: 2400,
				MemoryGB: 128, IdleWatts: 110, MaxWatts: 190}
		default:
			return nil, fmt.Errorf("unknown node kind %q", kind)
		}
		for i := 0; i < count; i++ {
			out = append(out, spec)
		}
	}
	return out, nil
}

func parseVMs(s string) ([]placement.VMSpec, error) {
	var out []placement.VMSpec
	for _, part := range strings.Split(s, ",") {
		kind, count, err := parseKindCount(part)
		if err != nil {
			return nil, err
		}
		var spec placement.VMSpec
		switch kind {
		case "small":
			spec = placement.VMSpec{Template: "small", VCPUs: 2, FreqMHz: 500, MemoryGB: 2}
		case "medium":
			spec = placement.VMSpec{Template: "medium", VCPUs: 4, FreqMHz: 1200, MemoryGB: 4}
		case "large":
			spec = placement.VMSpec{Template: "large", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8}
		default:
			return nil, fmt.Errorf("unknown VM kind %q", kind)
		}
		for i := 0; i < count; i++ {
			v := spec
			v.Name = fmt.Sprintf("%s-%03d", kind, i)
			out = append(out, v)
		}
	}
	return out, nil
}

func parseKindCount(part string) (string, int, error) {
	bits := strings.Split(strings.TrimSpace(part), ":")
	if len(bits) != 2 {
		return "", 0, fmt.Errorf("malformed %q (want kind:count)", part)
	}
	n, err := strconv.Atoi(bits[1])
	if err != nil || n <= 0 {
		return "", 0, fmt.Errorf("bad count in %q", part)
	}
	return bits[0], n, nil
}
