package main

import "testing"

func TestParseKindCount(t *testing.T) {
	kind, n, err := parseKindCount(" small:25 ")
	if err != nil || kind != "small" || n != 25 {
		t.Fatalf("got %q %d %v", kind, n, err)
	}
	for _, bad := range []string{"small", "small:x", "small:0", "small:-1", "a:b:c"} {
		if _, _, err := parseKindCount(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("chetemi:2,chiclet:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0].Name != "chetemi" || nodes[0].Cores != 40 {
		t.Fatalf("chetemi spec wrong: %+v", nodes[0])
	}
	if nodes[2].Name != "chiclet" || nodes[2].Cores != 64 {
		t.Fatalf("chiclet spec wrong: %+v", nodes[2])
	}
	if _, err := parseNodes("cray:1"); err == nil {
		t.Fatal("unknown node kind accepted")
	}
}

func TestParseVMs(t *testing.T) {
	vms, err := parseVMs("small:2,medium:1,large:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 4 {
		t.Fatalf("got %d VMs", len(vms))
	}
	if vms[0].FreqMHz != 500 || vms[2].FreqMHz != 1200 || vms[3].FreqMHz != 1800 {
		t.Fatal("template frequencies wrong")
	}
	if vms[0].Name == vms[1].Name {
		t.Fatal("duplicate VM names")
	}
	if _, err := parseVMs("huge:1"); err == nil {
		t.Fatal("unknown VM kind accepted")
	}
}
