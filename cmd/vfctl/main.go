// Command vfctl runs the virtual-frequency controller.
//
// Simulation mode (default) takes a JSON scenario describing a node and
// its VMs, runs the controller against the simulated host, and streams a
// CSV with one row per control period: the monitored virtual frequency of
// every VM, the market size and the credit wallets.
//
//	vfctl -config scenario.json [-csv out.csv]
//	vfctl -example            # print a scenario skeleton and exit
//
// Cluster mode: a scenario with "nodes": N (N ≥ 2) boots N identical
// simulated machines, admits the VMs across them under the Eq. 7
// constraint and steps the whole cluster every period on a persistent
// worker pool ("step_workers" or -step-workers; 0 = GOMAXPROCS). The
// CSV then carries cluster-level columns, including cluster_step_us —
// the wall time of each cluster step.
//
// Crash recovery: with -checkpoint the controller persists its state
// (credits, caps, consumption histories) atomically every
// -checkpoint-every periods, plus once at clean exit; -resume restores
// from that file before the first period, revalidating against the live
// host. A missing checkpoint degrades -resume into a cold start.
//
//	vfctl -config scenario.json -checkpoint state.json -resume
//
// Linux mode drives a real host through cgroup v2 (requires root and a
// libvirt-style machine.slice). VM virtual frequencies come from the same
// scenario file; the controller then applies real cpu.max quotas every
// period.
//
//	sudo vfctl -linux -config scenario.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vfreq/internal/cluster"
	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/metricshttp"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// Scenario is the JSON configuration of a vfctl run.
type Scenario struct {
	// Node is "chetemi", "chiclet", or a custom spec below.
	Node string `json:"node"`
	// Custom node spec, used when Node is empty.
	Cores    int   `json:"cores,omitempty"`
	MaxMHz   int64 `json:"max_mhz,omitempty"`
	MemoryGB int   `json:"memory_gb,omitempty"`

	DurationS int  `json:"duration_s"`
	Control   bool `json:"control"`

	// Cluster mode: Nodes ≥ 2 boots that many identical nodes (each with
	// the spec above), admits the scenario VMs across them under the
	// Eq. 7 constraint, and steps the whole cluster every period; the CSV
	// then carries cluster-level columns, including cluster_step_us — the
	// wall time of each cluster Step. StepWorkers sizes the cluster's
	// persistent step worker pool (0 = GOMAXPROCS, 1 = serial; results
	// are identical at any setting). The -step-workers flag overrides it.
	Nodes       int `json:"nodes,omitempty"`
	StepWorkers int `json:"step_workers,omitempty"`
	// RebalanceEvery sweeps overloaded nodes every that many periods
	// (cluster mode only; 0 = never). Each sweep live-migrates VMs off
	// Eq. 7-infeasible nodes, carrying their controller state — credit
	// wallets, consumption histories, breaker phases — to the target;
	// stranded VMs are reported on stderr and retried next sweep. The
	// -rebalance-every flag overrides it.
	RebalanceEvery int `json:"rebalance_every,omitempty"`

	// Controller overrides (zero values keep the paper defaults).
	IncreaseTrigger float64 `json:"increase_trigger,omitempty"`
	IncreaseFactor  float64 `json:"increase_factor,omitempty"`
	DecreaseTrigger float64 `json:"decrease_trigger,omitempty"`
	DecreaseFactor  float64 `json:"decrease_factor,omitempty"`
	// HostRetries overrides the in-step retry budget for failing host
	// reads/writes (-1 disables retrying; 0 keeps the default).
	HostRetries int `json:"host_retries,omitempty"`
	// MonitorWorkers sizes the monitor stage's read pool (0 =
	// GOMAXPROCS, 1 = serial). The -monitor-workers flag overrides it.
	MonitorWorkers int `json:"monitor_workers,omitempty"`
	// AuctionShards shards the stage-4 auction by NUMA node: 0 (or
	// omitted) keeps the serial default, -1 auto-sizes to the host's
	// NUMA topology, N ≥ 1 forces N shards. The -auction-shards flag
	// overrides it.
	AuctionShards int `json:"auction_shards,omitempty"`
	// EstimateShards shards stages 2–3 (estimate/enforce) over the same
	// placement partition as the auction: 0 (or omitted) follows the
	// effective auction shard count, -1 forces the serial passes, N ≥ 1
	// forces N shards. Unlike auction sharding the result is
	// bit-identical at any count. The -estimate-shards flag overrides
	// it.
	EstimateShards int `json:"estimate_shards,omitempty"`

	// Robustness knobs (zero values keep the features off, matching
	// core.DefaultConfig). CallBudgetUs bounds each host call;
	// RetryBackoffUs/RetryBackoffMaxUs arm jittered exponential retry
	// backoff; BreakerThreshold/BreakerOpenSteps arm the per-VM circuit
	// breaker; Seed fixes the backoff jitter stream.
	CallBudgetUs      int64 `json:"call_budget_us,omitempty"`
	RetryBackoffUs    int64 `json:"retry_backoff_us,omitempty"`
	RetryBackoffMaxUs int64 `json:"retry_backoff_max_us,omitempty"`
	BreakerThreshold  int   `json:"breaker_threshold,omitempty"`
	BreakerOpenSteps  int   `json:"breaker_open_steps,omitempty"`
	Seed              int64 `json:"seed,omitempty"`

	// Fault injection (sim mode): each listed host call site fails
	// independently with probability FaultRate and stalls with
	// probability FaultDelayRate for up to FaultDelayUs µs. Sites
	// default to the monitor-path reads (UsageUs, ThreadID, LastCPU,
	// CoreFreqMHz) plus SetMax; seed 0 means 1. See the controller's
	// degradation columns in the CSV for the effect.
	FaultRate      float64  `json:"fault_rate,omitempty"`
	FaultDelayRate float64  `json:"fault_delay_rate,omitempty"`
	FaultDelayUs   int64    `json:"fault_delay_us,omitempty"`
	FaultSites     []string `json:"fault_sites,omitempty"`
	FaultSeed      int64    `json:"fault_seed,omitempty"`

	VMs []ScenarioVM `json:"vms"`
}

// ScenarioVM describes one VM of the scenario.
type ScenarioVM struct {
	Name     string `json:"name"`
	VCPUs    int    `json:"vcpus"`
	FreqMHz  int64  `json:"freq_mhz"`
	MemoryGB int    `json:"memory_gb"`
	// Workload: "busy", "idle", "compress", "openssl",
	// "bursty:<periodS>:<duty>".
	Workload string `json:"workload"`
	StartS   int    `json:"start_s,omitempty"`
	// Work per benchmark run in Gcycles (compress/openssl only).
	GCycles int64 `json:"gcycles,omitempty"`
	Runs    int   `json:"runs,omitempty"`
}

const exampleScenario = `{
  "node": "chetemi",
  "duration_s": 120,
  "control": true,
  "vms": [
    {"name": "web", "vcpus": 2, "freq_mhz": 500, "memory_gb": 2, "workload": "bursty:20:0.3"},
    {"name": "batch", "vcpus": 4, "freq_mhz": 1800, "memory_gb": 8, "workload": "compress", "gcycles": 30, "runs": 10, "start_s": 10},
    {"name": "crypto", "vcpus": 4, "freq_mhz": 1200, "memory_gb": 4, "workload": "openssl", "gcycles": 60, "runs": 1}
  ]
}`

func main() {
	cfgPath := flag.String("config", "", "scenario JSON file")
	csvPath := flag.String("csv", "", "write the per-period CSV here instead of stdout")
	snapPath := flag.String("snapshot", "", "write the final controller state as JSON here")
	ckptPath := flag.String("checkpoint", "", "persist controller checkpoints to this file for crash recovery")
	ckptEvery := flag.Int64("checkpoint-every", 1, "periods between checkpoints (with -checkpoint)")
	resume := flag.Bool("resume", false, "restore controller state from -checkpoint before the first period")
	example := flag.Bool("example", false, "print an example scenario and exit")
	linux := flag.Bool("linux", false, "drive the real host via cgroup v2 instead of the simulator")
	monitorWorkers := flag.Int("monitor-workers", -1,
		"monitor read-pool size (0 = GOMAXPROCS, 1 = serial; -1 defers to the scenario)")
	stepWorkers := flag.Int("step-workers", -1,
		"cluster step worker-pool size (0 = GOMAXPROCS, 1 = serial; -1 defers to the scenario; needs nodes >= 2)")
	rebalanceEvery := flag.Int("rebalance-every", -1,
		"periods between cluster rebalance sweeps (0 = never; -1 defers to the scenario; needs nodes >= 2)")
	auctionShards := flag.Int("auction-shards", 0,
		"auction shard count (-1 = one per NUMA node, N = forced; 0 defers to the scenario)")
	estimateShards := flag.Int("estimate-shards", 0,
		"estimate/enforce shard count (-1 = serial, N = forced; 0 defers to the scenario, which defaults to following -auction-shards)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus text exposition at /metrics and pprof at /debug/pprof/ on this address (e.g. localhost:9090) for the duration of the run")
	flag.Parse()

	if *example {
		fmt.Println(exampleScenario)
		return
	}
	// Profiles are flushed explicitly after the run (not deferred) so
	// they survive the os.Exit in fatal on a failed run.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "vfctl: -config is required (try -example)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatal(err)
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		fatal(fmt.Errorf("parsing scenario: %w", err))
	}
	if sc.DurationS <= 0 {
		fatal(fmt.Errorf("scenario: duration_s must be positive"))
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *monitorWorkers >= 0 {
		sc.MonitorWorkers = *monitorWorkers
	}
	if *auctionShards != 0 {
		sc.AuctionShards = *auctionShards
	}
	if *estimateShards != 0 {
		sc.EstimateShards = *estimateShards
	}
	if *stepWorkers >= 0 {
		sc.StepWorkers = *stepWorkers
	}
	if *rebalanceEvery >= 0 {
		sc.RebalanceEvery = *rebalanceEvery
	}
	ck := checkpointOpts{path: *ckptPath, every: *ckptEvery, resume: *resume}
	// The registry is always armed — the end-of-run dump rides on the
	// CSV either way — and additionally served over HTTP when asked.
	reg := metrics.NewRegistry()
	if *metricsAddr != "" {
		addr, merr := metricshttp.Serve(*metricsAddr, reg)
		if merr != nil {
			fatal(merr)
		}
		fmt.Fprintf(os.Stderr, "vfctl: metrics at http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}
	switch {
	case *linux:
		if sc.Nodes >= 2 {
			fatal(fmt.Errorf("cluster mode (nodes >= 2) is simulation-only"))
		}
		err = runLinux(sc, ck, reg)
	case sc.Nodes >= 2:
		if ck.path != "" || *snapPath != "" {
			fatal(fmt.Errorf("cluster mode does not support -checkpoint or -snapshot yet"))
		}
		err = runSimCluster(sc, *csvPath, reg)
	default:
		err = runSim(sc, *csvPath, *snapPath, ck, reg)
	}
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memProfile != "" {
		if perr := writeHeapProfile(*memProfile); perr != nil {
			fmt.Fprintln(os.Stderr, "vfctl:", perr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

// writeHeapProfile dumps the live heap (post-GC, so steady-state objects
// rather than transient garbage) to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// checkpointOpts carries the crash-recovery flags.
type checkpointOpts struct {
	path   string
	every  int64
	resume bool
}

// arm attaches (and optionally restores from) the checkpoint file. It
// returns whether the controller resumed from a previous incarnation.
func (ck checkpointOpts) arm(ctrl *core.Controller) (bool, error) {
	if ck.path == "" {
		return false, nil
	}
	store := platform.FileStore{Path: ck.path}
	if ck.resume {
		rr, err := ctrl.RestoreFromStore(store)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "vfctl: %s\n", rr)
			return true, nil
		case errors.Is(err, platform.ErrNoCheckpoint):
			fmt.Fprintln(os.Stderr, "vfctl: no checkpoint yet, cold-starting")
		default:
			return false, err
		}
	}
	ctrl.AttachStore(store)
	return false, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vfctl:", err)
	os.Exit(1)
}

func nodeSpec(sc Scenario) (host.Spec, error) {
	switch sc.Node {
	case "chetemi":
		return host.Chetemi(), nil
	case "chiclet":
		return host.Chiclet(), nil
	case "":
		spec := host.Chetemi() // power/DVFS defaults
		spec.Name = "custom"
		spec.Cores = sc.Cores
		spec.MaxMHz = sc.MaxMHz
		spec.MemoryGB = sc.MemoryGB
		return spec, spec.Validate()
	default:
		return host.Spec{}, fmt.Errorf("unknown node %q", sc.Node)
	}
}

func buildWorkload(v ScenarioVM) ([]workload.Source, error) {
	startUs := int64(v.StartS) * 1_000_000
	kind := v.Workload
	switch {
	case kind == "busy":
		srcs := make([]workload.Source, v.VCPUs)
		for i := range srcs {
			srcs[i] = &workload.Delayed{StartUs: startUs, Inner: workload.Busy()}
		}
		return srcs, nil
	case kind == "idle" || kind == "":
		return nil, nil
	case kind == "compress" || kind == "openssl":
		g := v.GCycles
		if g <= 0 {
			g = 30
		}
		runs := v.Runs
		if runs <= 0 {
			runs = 1
		}
		var b *workload.Bench
		var err error
		if kind == "compress" {
			b, err = workload.NewCompress7zip(v.VCPUs, g*1_000_000_000, runs, startUs)
		} else {
			b, err = workload.NewOpenSSL(v.VCPUs, g*1_000_000_000, runs, startUs)
		}
		if err != nil {
			return nil, err
		}
		return b.Sources(), nil
	case strings.HasPrefix(kind, "bursty:"):
		var periodS int
		var duty float64
		if _, err := fmt.Sscanf(kind, "bursty:%d:%f", &periodS, &duty); err != nil {
			return nil, fmt.Errorf("bad bursty spec %q (want bursty:<periodS>:<duty>)", kind)
		}
		srcs := make([]workload.Source, v.VCPUs)
		for i := range srcs {
			srcs[i] = &workload.Delayed{StartUs: startUs, Inner: &workload.Bursty{
				PeriodUs: int64(periodS) * 1_000_000, Duty: duty, High: 1, Low: 0.02,
			}}
		}
		return srcs, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}

func controllerConfig(sc Scenario) core.Config {
	cfg := core.DefaultConfig()
	if sc.IncreaseTrigger > 0 {
		cfg.IncreaseTrigger = sc.IncreaseTrigger
	}
	if sc.IncreaseFactor > 0 {
		cfg.IncreaseFactor = sc.IncreaseFactor
	}
	if sc.DecreaseTrigger > 0 {
		cfg.DecreaseTrigger = sc.DecreaseTrigger
	}
	if sc.DecreaseFactor > 0 {
		cfg.DecreaseFactor = sc.DecreaseFactor
	}
	if sc.HostRetries > 0 {
		cfg.HostRetries = sc.HostRetries
	} else if sc.HostRetries < 0 {
		cfg.HostRetries = 0
	}
	cfg.MonitorWorkers = sc.MonitorWorkers
	// Scenario encoding differs from core.Config: in the scenario 0
	// means "unset" (keep the serial default of 1) and -1 means auto,
	// which is core's 0.
	switch {
	case sc.AuctionShards < 0:
		cfg.AuctionShards = 0 // auto: one shard per NUMA node
	case sc.AuctionShards > 0:
		cfg.AuctionShards = sc.AuctionShards
	}
	// Same remapping for the stage 2–3 partition, except "auto" here
	// means following the effective auction shard count (core's 0) and
	// -1 forces the serial passes (core's 1).
	switch {
	case sc.EstimateShards < 0:
		cfg.EstimateShards = 1
	case sc.EstimateShards > 0:
		cfg.EstimateShards = sc.EstimateShards
	}
	cfg.ControlEnabled = sc.Control
	if sc.CallBudgetUs > 0 {
		cfg.CallBudgetUs = sc.CallBudgetUs
	}
	if sc.RetryBackoffUs > 0 {
		cfg.RetryBackoffUs = sc.RetryBackoffUs
	}
	if sc.RetryBackoffMaxUs > 0 {
		cfg.RetryBackoffMaxUs = sc.RetryBackoffMaxUs
	}
	if sc.BreakerThreshold > 0 {
		cfg.BreakerThreshold = sc.BreakerThreshold
	}
	if sc.BreakerOpenSteps > 0 {
		cfg.BreakerOpenSteps = sc.BreakerOpenSteps
	}
	cfg.Seed = sc.Seed
	return cfg
}

// faultHost wraps h with the scenario's fault plans, or returns it
// unchanged when no injection is configured.
func faultHost(sc Scenario, h platform.Host) (platform.Host, error) {
	if sc.FaultRate <= 0 && sc.FaultDelayRate <= 0 {
		return h, nil
	}
	seed := sc.FaultSeed
	if seed == 0 {
		seed = 1
	}
	fh := platform.WithFaults(h, seed)
	sites := sc.FaultSites
	if len(sites) == 0 {
		sites = []string{
			string(platform.SiteUsage), string(platform.SiteThreadID),
			string(platform.SiteLastCPU), string(platform.SiteCoreFreq),
			string(platform.SiteSetMax),
		}
	}
	for _, name := range sites {
		site, err := platform.SiteByName(name)
		if err != nil {
			return nil, err
		}
		if err := fh.Plan(site, platform.FaultPlan{
			Rate:      sc.FaultRate,
			DelayRate: sc.FaultDelayRate,
			DelayUs:   sc.FaultDelayUs,
		}); err != nil {
			return nil, err
		}
	}
	return fh, nil
}

// dumpMetrics appends the registry's full text exposition to the CSV
// stream as "# "-prefixed comment lines, so headless runs keep the
// observability data inside the run artefact without corrupting the
// table.
func dumpMetrics(out *os.File, reg *metrics.Registry) {
	fmt.Fprintln(out, "# metrics")
	_ = reg.WriteText(trace.NewCommentWriter(out, "# "))
}

func runSim(sc Scenario, csvPath, snapPath string, ck checkpointOpts, reg *metrics.Registry) error {
	spec, err := nodeSpec(sc)
	if err != nil {
		return err
	}
	machine, err := host.New(spec)
	if err != nil {
		return err
	}
	mgr, err := vm.NewManager(machine)
	if err != nil {
		return err
	}
	for _, v := range sc.VMs {
		srcs, err := buildWorkload(v)
		if err != nil {
			return fmt.Errorf("VM %q: %w", v.Name, err)
		}
		mem := v.MemoryGB
		if mem == 0 {
			mem = 1
		}
		tpl := vm.Template{Name: v.Name, VCPUs: v.VCPUs, FreqMHz: v.FreqMHz, MemoryGB: mem}
		if _, err := mgr.Provision(v.Name, tpl, srcs); err != nil {
			return err
		}
	}
	h, err := faultHost(sc, platform.NewSim(mgr))
	if err != nil {
		return err
	}
	cfg := controllerConfig(sc)
	if ck.path != "" {
		cfg.CheckpointEvery = ck.every
	}
	ctrl, err := core.New(h, cfg)
	if err != nil {
		return err
	}
	ctrl.ArmMetrics(reg)
	if fh, ok := h.(*platform.FaultyHost); ok {
		fh.ArmMetrics(reg)
	}
	if _, err := ck.arm(ctrl); err != nil {
		return err
	}

	out := os.Stdout
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprint(out, "time_s")
	for _, v := range sc.VMs {
		fmt.Fprintf(out, ",%s_mhz,%s_credit", v.Name, v.Name)
	}
	fmt.Fprintln(out, ",market_us,energy_j,degraded,faults,overrun,recovered,open_vms,halfopen_vms")
	period := ctrl.Config().PeriodUs
	health := trace.NewRecorder()
	var prevEnergy float64
	for step := 0; step < sc.DurationS; step++ {
		snaps := map[string][]int64{}
		for _, inst := range mgr.List() {
			snaps[inst.Name()] = inst.SnapshotCycles()
		}
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d", ctrl.Steps())
		var caps int64
		for _, v := range sc.VMs {
			inst := mgr.Get(v.Name)
			f := inst.MeanVCPUFreqMHz(snaps[v.Name], period)
			var credit int64
			if st := ctrl.VM(v.Name); st != nil {
				credit = st.CreditUs
				for _, vc := range st.VCPUs {
					caps += vc.CapUs
				}
			}
			fmt.Fprintf(out, ",%.0f,%d", f, credit)
		}
		market := ctrl.CapacityUs() - caps
		e := machine.Meter.Joules()
		rep := ctrl.LastReport()
		overrun := 0
		if rep.Overrun {
			overrun = 1
		}
		fmt.Fprintf(out, ",%d,%.0f,%d,%d,%d,%d,%d,%d\n", market, e-prevEnergy,
			rep.DegradedVCPUs, rep.FaultCount(), overrun, rep.Recovered,
			rep.OpenVMs, rep.HalfOpenVMs)
		prevEnergy = e
		health.RecordAll(float64(step+1), map[string]float64{
			"degraded_vcpus": float64(rep.DegradedVCPUs),
			"faults":         float64(rep.FaultCount()),
			"retries":        float64(rep.Retries),
			"overruns":       float64(overrun),
			"recovered":      float64(rep.Recovered),
			"open_vms":       float64(rep.OpenVMs),
			"halfopen_vms":   float64(rep.HalfOpenVMs),
		})
	}
	dumpMetrics(out, reg)
	fmt.Fprintf(os.Stderr, "vfctl: %d periods, controller avg step %v\n",
		ctrl.Steps(), ctrl.LastTimings().Total)
	if f := health.Series("faults"); f != nil && f.Sum() > 0 {
		fmt.Fprintf(os.Stderr,
			"vfctl: degradation: %.0f faults, %.0f retries, peak %g degraded vCPUs, mean %.2f\n",
			f.Sum(), health.Series("retries").Sum(),
			health.Series("degraded_vcpus").Max(), health.Series("degraded_vcpus").Mean())
	}
	if snapPath != "" {
		raw, err := ctrl.Snapshot().JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
			return err
		}
	}
	if ck.path != "" {
		// A final checkpoint so a later -resume continues from the very
		// last period, not the last interval boundary.
		if err := ctrl.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// runSimCluster drives a simulated cluster of sc.Nodes identical
// machines: the scenario VMs are admitted across the fleet under the
// Eq. 7 constraint, every period steps all node controllers on the
// cluster's worker pool, and the CSV reports cluster-level health plus
// cluster_step_us — the wall time of each cluster Step, the
// decision-latency figure the pool and the placement index bound.
func runSimCluster(sc Scenario, csvPath string, reg *metrics.Registry) error {
	spec, err := nodeSpec(sc)
	if err != nil {
		return err
	}
	specs := make([]host.Spec, sc.Nodes)
	for i := range specs {
		specs[i] = spec
	}
	cl, err := cluster.New(specs, cluster.Config{
		Controller:  controllerConfig(sc),
		StepWorkers: sc.StepWorkers,
		// One unreachable period per node is rare in simulation; three
		// in a row marks the node failed and evacuates it, matching the
		// dynamic experiment.
		FailThreshold: 3,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.ArmMetrics(reg)
	for _, v := range sc.VMs {
		srcs, err := buildWorkload(v)
		if err != nil {
			return fmt.Errorf("VM %q: %w", v.Name, err)
		}
		mem := v.MemoryGB
		if mem == 0 {
			mem = 1
		}
		tpl := vm.Template{Name: v.Name, VCPUs: v.VCPUs, FreqMHz: v.FreqMHz, MemoryGB: mem}
		node, err := cl.Deploy(v.Name, tpl, srcs)
		if err != nil {
			return fmt.Errorf("VM %q: %w", v.Name, err)
		}
		fmt.Fprintf(os.Stderr, "vfctl: %s placed on node %d\n", v.Name, node)
	}

	out := os.Stdout
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintln(out, "time_s,cluster_step_us,used_nodes,failed_nodes,degraded_vcpus,faults,evacuated_vms,stranded_vms,migrations,energy_j")
	var prevEnergy float64
	var stepUsSum int64
	for step := 0; step < sc.DurationS; step++ {
		if sc.RebalanceEvery > 0 && step > 0 && step%sc.RebalanceEvery == 0 {
			// The sweep continues past stranded VMs; they stay put and
			// are retried next sweep, so the error is advisory.
			if moved, rerr := cl.Rebalance(); rerr != nil {
				fmt.Fprintf(os.Stderr, "vfctl: rebalance at t=%d moved %d VM(s): %v\n", step, moved, rerr)
			} else if moved > 0 {
				fmt.Fprintf(os.Stderr, "vfctl: rebalance at t=%d moved %d VM(s)\n", step, moved)
			}
		}
		start := time.Now()
		// Node failures are isolated by the cluster — the surviving
		// nodes were stepped — so an error shows up in failed_nodes
		// rather than aborting the run.
		_ = cl.Step()
		stepUs := time.Since(start).Microseconds()
		stepUsSum += stepUs
		h := cl.Health()
		e := cl.ActiveEnergyJoules()
		fmt.Fprintf(out, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f\n",
			step+1, stepUs, cl.UsedNodes(), h.FailedNodes, h.DegradedVCPUs,
			h.Faults, h.EvacuatedVMs, h.StrandedVMs, cl.Migrations(), e-prevEnergy)
		prevEnergy = e
	}
	dumpMetrics(out, reg)
	fmt.Fprintf(os.Stderr, "vfctl: %d periods over %d nodes, cluster avg step %d µs\n",
		sc.DurationS, sc.Nodes, stepUsSum/int64(sc.DurationS))
	return nil
}

// runLinux drives a real host: same controller, real files, wall-clock
// periods.
func runLinux(sc Scenario, ck checkpointOpts, reg *metrics.Registry) error {
	freqs := map[string]int64{}
	for _, v := range sc.VMs {
		freqs[v.Name] = v.FreqMHz
	}
	h, err := platform.NewLinux(freqs)
	if err != nil {
		return fmt.Errorf("linux backend: %w", err)
	}
	cfg := controllerConfig(sc)
	if ck.path != "" {
		cfg.CheckpointEvery = ck.every
	}
	ctrl, err := core.New(h, cfg)
	if err != nil {
		return err
	}
	ctrl.ArmMetrics(reg)
	resumed, err := ck.arm(ctrl)
	if err != nil {
		return err
	}
	if resumed {
		fmt.Printf("vfctl: resumed from checkpoint at step %d\n", ctrl.Steps())
	}
	period := time.Duration(ctrl.Config().PeriodUs) * time.Microsecond
	fmt.Printf("vfctl: controlling %d-core node %s (F_MAX %d MHz), period %v\n",
		h.Node().Cores, h.Node().Name, h.Node().MaxFreqMHz, period)
	for step := 0; step < sc.DurationS; step++ {
		start := time.Now()
		if err := ctrl.Step(); err != nil {
			return err
		}
		if rep := ctrl.LastReport(); rep.Degraded() {
			fmt.Printf("t=%-4d degraded: %s\n", step+1, rep.String())
		}
		for _, st := range ctrl.VMs() {
			var mhz float64
			for _, vc := range st.VCPUs {
				mhz += vc.FreqMHz
			}
			if n := len(st.VCPUs); n > 0 {
				mhz /= float64(n)
			}
			fmt.Printf("t=%-4d %-20s %6.0f MHz (guarantee %d MHz, credits %d)\n",
				step+1, st.Info.Name, mhz, st.Info.FreqMHz, st.CreditUs)
		}
		// Sleep p − spent, as §III-B6 prescribes; PeriodSleep clamps an
		// overrunning step to zero instead of producing a negative sleep.
		if d := ctrl.PeriodSleep(time.Since(start)); d > 0 {
			time.Sleep(d)
		}
	}
	if ck.path != "" {
		if err := ctrl.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}
