package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vfreq/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite the golden CSV files under testdata/")

// goldenScenarios are the three vfctl modes pinned by golden files:
// static (monitoring only), dynamic (control on, seeded fault
// injection) and cluster (3 nodes on the worker pool). Everything in
// the scenarios is seeded, so the CSV is bit-identical run to run —
// except the cluster mode's wall-clock cluster_step_us column, which
// the test normalises away.
var goldenScenarios = []struct {
	name string
	sc   Scenario
}{
	{
		name: "static",
		sc: Scenario{
			Node:      "chetemi",
			DurationS: 20,
			Control:   false,
			VMs: []ScenarioVM{
				{Name: "web", VCPUs: 2, FreqMHz: 500, MemoryGB: 2, Workload: "bursty:10:0.4"},
				{Name: "batch", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8, Workload: "busy"},
			},
		},
	},
	{
		name: "dynamic",
		sc: Scenario{
			Node:      "chetemi",
			DurationS: 20,
			Control:   true,
			Seed:      7,
			FaultRate: 0.1,
			FaultSeed: 7,
			VMs: []ScenarioVM{
				{Name: "web", VCPUs: 2, FreqMHz: 500, MemoryGB: 2, Workload: "bursty:10:0.4"},
				{Name: "batch", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8, Workload: "busy"},
				{Name: "crypto", VCPUs: 2, FreqMHz: 1200, MemoryGB: 4, Workload: "compress", GCycles: 5, Runs: 3},
			},
		},
	},
	{
		name: "cluster",
		sc: Scenario{
			Node:        "chetemi",
			DurationS:   20,
			Control:     true,
			Nodes:       3,
			StepWorkers: 1,
			VMs: []ScenarioVM{
				{Name: "web", VCPUs: 2, FreqMHz: 500, MemoryGB: 2, Workload: "busy"},
				{Name: "batch", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8, Workload: "busy"},
				{Name: "crypto", VCPUs: 2, FreqMHz: 1200, MemoryGB: 4, Workload: "busy"},
			},
		},
	},
}

// TestCSVGolden pins the vfctl CSV contract per mode: the exact header
// plus the first and last data rows, with a fixed seed. A diff here
// means either the column layout or the controller's numbers moved —
// both are breaking changes for CSV consumers; regenerate deliberately
// with `go test ./cmd/vfctl -run TestCSVGolden -update`.
func TestCSVGolden(t *testing.T) {
	for _, tc := range goldenScenarios {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "out.csv")
			var err error
			if tc.sc.Nodes >= 2 {
				err = runSimCluster(tc.sc, out, metrics.NewRegistry())
			} else {
				err = runSim(tc.sc, out, "", checkpointOpts{}, metrics.NewRegistry())
			}
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			rows, _ := splitCSV(string(raw))
			if len(rows) != tc.sc.DurationS+1 {
				t.Fatalf("CSV has %d data rows, want %d + header", len(rows), tc.sc.DurationS)
			}
			got := fmt.Sprintf("header: %s\nfirst:  %s\nlast:   %s\n",
				rows[0], normalizeRow(tc.sc, rows[1]), normalizeRow(tc.sc, rows[len(rows)-1]))

			golden := filepath.Join("testdata", "csv_"+tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("CSV golden mismatch for %s:\n got:\n%s\nwant:\n%s", tc.name, got, want)
			}
		})
	}
}

// normalizeRow blanks the wall-clock cluster_step_us column (cluster
// mode only, column 1); every other column is deterministic.
func normalizeRow(sc Scenario, row string) string {
	if sc.Nodes < 2 {
		return row
	}
	cols := strings.Split(row, ",")
	cols[1] = "<wall>"
	return strings.Join(cols, ",")
}
