package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vfreq/internal/metrics"
	"vfreq/internal/workload"
)

func TestExampleScenarioParses(t *testing.T) {
	var sc Scenario
	if err := json.Unmarshal([]byte(exampleScenario), &sc); err != nil {
		t.Fatalf("example scenario invalid: %v", err)
	}
	if sc.Node != "chetemi" || len(sc.VMs) != 3 || !sc.Control {
		t.Fatalf("example scenario content unexpected: %+v", sc)
	}
}

func TestNodeSpec(t *testing.T) {
	for _, name := range []string{"chetemi", "chiclet"} {
		spec, err := nodeSpec(Scenario{Node: name})
		if err != nil || spec.Name != name {
			t.Fatalf("nodeSpec(%s) = %v, %v", name, spec.Name, err)
		}
	}
	custom, err := nodeSpec(Scenario{Cores: 8, MaxMHz: 3000, MemoryGB: 32})
	if err != nil || custom.Cores != 8 || custom.MaxMHz != 3000 {
		t.Fatalf("custom spec = %+v, %v", custom, err)
	}
	if _, err := nodeSpec(Scenario{Node: "cray"}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := nodeSpec(Scenario{Cores: 0, MaxMHz: 3000, MemoryGB: 32}); err == nil {
		t.Fatal("invalid custom spec accepted")
	}
}

func TestBuildWorkload(t *testing.T) {
	srcs, err := buildWorkload(ScenarioVM{VCPUs: 2, Workload: "busy"})
	if err != nil || len(srcs) != 2 {
		t.Fatalf("busy: %d sources, %v", len(srcs), err)
	}
	if d := srcs[0].Demand(0, 1000); d != 1 {
		t.Fatalf("busy demand = %v", d)
	}
	srcs, err = buildWorkload(ScenarioVM{VCPUs: 1, Workload: "idle"})
	if err != nil || srcs != nil {
		t.Fatalf("idle: %v, %v", srcs, err)
	}
	srcs, err = buildWorkload(ScenarioVM{VCPUs: 4, Workload: "compress", GCycles: 10, Runs: 2})
	if err != nil || len(srcs) != 4 {
		t.Fatalf("compress: %d sources, %v", len(srcs), err)
	}
	srcs, err = buildWorkload(ScenarioVM{VCPUs: 1, Workload: "openssl"})
	if err != nil || len(srcs) != 1 {
		t.Fatalf("openssl defaults: %v, %v", srcs, err)
	}
	srcs, err = buildWorkload(ScenarioVM{VCPUs: 1, Workload: "bursty:20:0.3", StartS: 5})
	if err != nil || len(srcs) != 1 {
		t.Fatalf("bursty: %v, %v", srcs, err)
	}
	// The delayed bursty source is idle before its start.
	if d := srcs[0].Demand(1_000_000, 1000); d != 0 {
		t.Fatalf("bursty before start: %v", d)
	}
	if _, err := buildWorkload(ScenarioVM{VCPUs: 1, Workload: "bursty:x"}); err == nil {
		t.Fatal("malformed bursty accepted")
	}
	if _, err := buildWorkload(ScenarioVM{VCPUs: 1, Workload: "fib"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	var _ []workload.Source = srcs
}

func TestControllerConfigOverrides(t *testing.T) {
	cfg := controllerConfig(Scenario{
		Control:         true,
		IncreaseTrigger: 0.9, IncreaseFactor: 0.5,
		DecreaseTrigger: 0.4, DecreaseFactor: 0.1,
	})
	if cfg.IncreaseTrigger != 0.9 || cfg.IncreaseFactor != 0.5 ||
		cfg.DecreaseTrigger != 0.4 || cfg.DecreaseFactor != 0.1 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if !cfg.ControlEnabled {
		t.Fatal("control flag lost")
	}
	// Zero values keep the paper defaults.
	def := controllerConfig(Scenario{})
	if def.IncreaseTrigger != 0.95 || def.DecreaseFactor != 0.05 {
		t.Fatalf("defaults lost: %+v", def)
	}
	// EstimateShards encoding: 0 defers to the core default (follow the
	// auction partition), -1 forces serial, N forces N shards.
	if def.EstimateShards != 0 {
		t.Fatalf("EstimateShards default = %d, want 0 (follow auction)", def.EstimateShards)
	}
	if got := controllerConfig(Scenario{EstimateShards: -1}).EstimateShards; got != 1 {
		t.Fatalf("EstimateShards(-1) = %d, want 1 (serial)", got)
	}
	if got := controllerConfig(Scenario{EstimateShards: 5}).EstimateShards; got != 5 {
		t.Fatalf("EstimateShards(5) = %d, want 5", got)
	}
}

func TestRunSimProducesCSV(t *testing.T) {
	sc := Scenario{
		Node:      "chetemi",
		DurationS: 5,
		Control:   true,
		VMs: []ScenarioVM{
			{Name: "web", VCPUs: 2, FreqMHz: 500, MemoryGB: 2, Workload: "busy"},
			{Name: "batch", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8, Workload: "busy"},
		},
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	snap := filepath.Join(dir, "snap.json")
	if err := runSim(sc, out, snap, checkpointOpts{}, metrics.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	// The snapshot is valid JSON with both VMs.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var snapData map[string]any
	if err := json.Unmarshal(raw, &snapData); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if vms, ok := snapData["vms"].([]any); !ok || len(vms) != 2 {
		t.Fatalf("snapshot vms = %v", snapData["vms"])
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines, comments := splitCSV(string(data))
	if len(lines) != 6 { // header + 5 periods
		t.Fatalf("CSV has %d data lines, want 6:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "time_s,web_mhz,web_credit,batch_mhz,batch_credit") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged CSV row %q", line)
		}
	}
	// The end-of-run metrics dump rides on the CSV as comment lines.
	joined := strings.Join(comments, "\n")
	for _, want := range []string{"vfreq_steps_total 5", `vfreq_step_stage_us_count{stage="monitor"} 5`} {
		if !strings.Contains(joined, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// splitCSV separates a run artefact into CSV data lines and "# "
// comment lines (the appended metrics dump).
func splitCSV(data string) (rows, comments []string) {
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if strings.HasPrefix(line, "#") {
			comments = append(comments, line)
			continue
		}
		rows = append(rows, line)
	}
	return rows, comments
}

func TestRunSimValidatesVMs(t *testing.T) {
	sc := Scenario{
		Node: "chetemi", DurationS: 1, Control: true,
		VMs: []ScenarioVM{{Name: "bad", VCPUs: 0, FreqMHz: 500, Workload: "busy"}},
	}
	if err := runSim(sc, filepath.Join(t.TempDir(), "x.csv"), "", checkpointOpts{}, metrics.NewRegistry()); err == nil {
		t.Fatal("invalid VM accepted")
	}
}
