package main

import "testing"

// Every artefact id must run without error at a tiny scale. This is the
// end-to-end smoke test for the reproduction harness.
func TestAllArtefactsRun(t *testing.T) {
	for _, id := range order {
		id := id
		t.Run(id, func(t *testing.T) {
			scale := 0.02
			if id == "fig10" || id == "fig11" || id == "fig14" {
				scale = 0.01 // the efficiency runs are the longest
			}
			if err := run(id, scale, false, 40); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
		})
	}
}

func TestUnknownArtefact(t *testing.T) {
	if err := run("fig99", 0.1, false, 40); err == nil {
		t.Fatal("unknown artefact accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	if err := run("fig7", 0.02, true, 40); err != nil {
		t.Fatal(err)
	}
}
