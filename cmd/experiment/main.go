// Command experiment regenerates the paper's tables and figures.
//
// Usage:
//
//	experiment -id fig7            # one artefact (fig1..fig14, table2..table5,
//	                               # cfs-a, cfs-b, placement, overhead)
//	experiment -id all             # everything
//	experiment -id fig7 -scale 1   # full-fidelity run (slower)
//	experiment -id fig7 -csv       # emit the raw series as CSV
//
// Frequency figures print an ASCII chart of the per-class mean virtual
// frequency over time plus the plateau statistics; efficiency figures
// print the per-run benchmark rates; the placement experiment prints the
// §IV-C comparison table.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vfreq/internal/chaos"
	"vfreq/internal/core"
	"vfreq/internal/experiments"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/metricshttp"
	"vfreq/internal/placement"
	"vfreq/internal/report"
	"vfreq/internal/sched"
	"vfreq/internal/trace"
)

// metricsReg collects the run's controller/cluster series; every
// experiment built through withWorkers (and the dynamic/chaos runners)
// is armed on it. Served at -metrics-addr and dumped by -metrics-dump.
var metricsReg = metrics.NewRegistry()

// Concurrency knobs (flags): results are identical at any setting, only
// wall-clock moves.
var (
	monitorWorkers  int
	auctionShards   int
	estimateShards  int
	stepWorkers     int
	parallelCluster bool
)

// Chaos soak knobs (flags), used by the "chaos" artefact only.
var (
	chaosSteps int
	chaosSeed  int64
	chaosVMs       int
	chaosChurn     bool
	rebalanceEvery int
)

func main() {
	id := flag.String("id", "all", "artefact id: fig1, fig6..fig14, table2..table5, cfs-a, cfs-b, placement, dynamic, overhead, chaos, report, all")
	scale := flag.Float64("scale", 0.1, "time scale of the simulation (1 = the paper's full durations)")
	csv := flag.Bool("csv", false, "print raw series as CSV instead of charts")
	width := flag.Int("width", 72, "chart width")
	flag.IntVar(&monitorWorkers, "monitor-workers", -1,
		"monitor read-pool size (0 = GOMAXPROCS, 1 = serial; -1 keeps the default)")
	flag.IntVar(&auctionShards, "auction-shards", -1,
		"auction shard count (0 = one per NUMA node, 1 = serial; -1 keeps the default)")
	flag.IntVar(&estimateShards, "estimate-shards", -1,
		"estimate/enforce shard count (0 = follow auction shards, 1 = serial; -1 keeps the default)")
	flag.IntVar(&stepWorkers, "step-workers", -1,
		"cluster step worker-pool size for the dynamic experiment (0 = GOMAXPROCS, 1 = serial; -1 keeps the serial default)")
	flag.BoolVar(&parallelCluster, "parallel", false,
		"deprecated: equivalent to -step-workers 0")
	flag.IntVar(&rebalanceEvery, "rebalance-every", 0,
		"steps between rebalance sweeps in the dynamic experiment (0 = never); sweeps live-migrate VMs off overloaded nodes, carrying controller state")
	flag.IntVar(&chaosSteps, "chaos-steps", 5000, "fault-phase length of the chaos soak")
	flag.Int64Var(&chaosSeed, "chaos-seed", 1, "seed of the chaos soak (plans, workloads, churn)")
	flag.IntVar(&chaosVMs, "chaos-vms", 4, "VM population of the chaos soak")
	flag.BoolVar(&chaosChurn, "chaos-churn", false, "destroy/re-provision a VM every chaos epoch")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus text exposition at /metrics and pprof at /debug/pprof/ on this address (e.g. localhost:9090) for the duration of the run")
	metricsDump := flag.Bool("metrics-dump", false,
		"append the run's metrics exposition to stdout as '# '-prefixed comment lines")
	flag.Parse()

	if *metricsAddr != "" {
		bound, err := metricshttp.Serve(*metricsAddr, metricsReg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiment: metrics at http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}
	if err := run(*id, *scale, *csv, *width); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
	if *metricsDump {
		fmt.Println("# metrics")
		_ = metricsReg.WriteText(trace.NewCommentWriter(os.Stdout, "# "))
	}
}

// withWorkers applies the -monitor-workers, -auction-shards and
// -estimate-shards overrides to an experiment.
func withWorkers(e experiments.FreqExperiment) experiments.FreqExperiment {
	if monitorWorkers >= 0 || auctionShards >= 0 || estimateShards >= 0 {
		if e.Config.PeriodUs == 0 {
			e.Config = core.DefaultConfig()
		}
	}
	if monitorWorkers >= 0 {
		e.Config.MonitorWorkers = monitorWorkers
	}
	if auctionShards >= 0 {
		e.Config.AuctionShards = auctionShards
	}
	if estimateShards >= 0 {
		e.Config.EstimateShards = estimateShards
	}
	e.Metrics = metricsReg
	return e
}

var order = []string{
	"table4", "fig1", "fig3", "fig4", "fig5", "cfs-a", "cfs-b",
	"table2", "fig6", "fig7",
	"table3", "fig8", "fig9",
	"fig10", "fig11",
	"table5", "fig12", "fig13", "fig14",
	"placement", "dynamic", "overhead",
}

func run(id string, scale float64, csv bool, width int) error {
	if id == "all" {
		for _, one := range order {
			if err := run(one, scale, csv, width); err != nil {
				return fmt.Errorf("%s: %w", one, err)
			}
			fmt.Println()
		}
		return nil
	}
	switch id {
	case "fig1":
		return fig1()
	case "fig3":
		return estimatorFigure(experiments.Fig3Case(), width)
	case "fig4":
		return estimatorFigure(experiments.Fig4Case(), width)
	case "fig5":
		return estimatorFigure(experiments.Fig5Case(), width)
	case "table2":
		return classTable("Table II — workload on chetemi", experiments.Table2Classes())
	case "table3":
		return classTable("Table III — workload on chiclet", experiments.Table3Classes())
	case "table4":
		return table4()
	case "table5":
		return classTable("Table V — heterogeneous workload on chetemi", experiments.Table5Classes())
	case "fig6":
		return freqFigure("Fig. 6 — avg vCPU frequency, chetemi, execution A", experiments.Fig6(), scale, csv, width)
	case "fig7":
		return freqFigure("Fig. 7 — avg vCPU frequency, chetemi, execution B", experiments.Fig7(), scale, csv, width)
	case "fig8":
		return freqFigure("Fig. 8 — avg vCPU frequency, chiclet, execution A", experiments.Fig8(), scale, csv, width)
	case "fig9":
		return freqFigure("Fig. 9 — avg vCPU frequency, chiclet, execution B", experiments.Fig9(), scale, csv, width)
	case "fig10":
		a, b := experiments.Fig10()
		return efficiencyFigure("Fig. 10 — compression efficiency, chetemi", a, b, scale)
	case "fig11":
		a, b := experiments.Fig11()
		return efficiencyFigure("Fig. 11 — compression efficiency, chiclet", a, b, scale)
	case "fig12":
		return freqFigure("Fig. 12 — avg vCPU frequency, 2nd eval, execution A", experiments.Fig12(), scale, csv, width)
	case "fig13":
		return freqFigure("Fig. 13 — avg vCPU frequency, 2nd eval, execution B", experiments.Fig13(), scale, csv, width)
	case "fig14":
		a, b := experiments.Fig14()
		return efficiencyFigure("Fig. 14 — compression efficiency, 2nd eval", a, b, scale)
	case "cfs-a":
		res, err := experiments.CFSExperimentA(10_000_000)
		if err != nil {
			return err
		}
		fmt.Println("Experiment a) — 20 VMs × 4 vCPUs, no control:")
		fmt.Printf("  max/min vCPU speed spread: %.3f (paper: all vCPUs at the same speed)\n", res.Spread)
		return nil
	case "cfs-b":
		res, err := experiments.CFSExperimentB(10_000_000)
		if err != nil {
			return err
		}
		fmt.Println("Experiment b) — 40 × 1-vCPU VMs + 10 × 4-vCPU VMs, no control:")
		fmt.Printf("  share of resources to 1-vCPU VMs: %.2f (paper: 4/5)\n", res.OneVCPUShare)
		return nil
	case "placement":
		return placementTable()
	case "dynamic":
		return dynamicTable()
	case "report":
		rep, err := report.Run(report.Options{Scale: scale})
		if err != nil {
			return err
		}
		fmt.Print(rep.Markdown())
		if rep.Passed() != len(rep.Checks) {
			return fmt.Errorf("%d checks failed", len(rep.Checks)-rep.Passed())
		}
		return nil
	case "overhead":
		return overhead(scale)
	case "chaos":
		return chaosSoak()
	default:
		return fmt.Errorf("unknown artefact %q", id)
	}
}

// fig1 demonstrates the cgroup capability of the paper's Fig. 1: three
// threads on one core where a receives twice the CPU time of b and c.
func fig1() error {
	s := sched.New(1)
	mk := func(name string, quota int64) *sched.Thread {
		g := s.NewGroup(nil, name)
		if err := g.SetQuota(quota, 100_000); err != nil {
			panic(err)
		}
		return s.NewThread(g, nil)
	}
	a, b, c := mk("a", 50_000), mk("b", 25_000), mk("c", 25_000)
	for i := 0; i < 100; i++ {
		s.Tick(10_000)
	}
	total := float64(a.UsageUs + b.UsageUs + c.UsageUs)
	fmt.Println("Fig. 1 — cgroup CPU-time division, 3 threads on 1 core, 1 s:")
	fmt.Printf("  a (0.50 Mcycles): %5.1f%%\n", 100*float64(a.UsageUs)/total)
	fmt.Printf("  b (0.25 Mcycles): %5.1f%%\n", 100*float64(b.UsageUs)/total)
	fmt.Printf("  c (0.25 Mcycles): %5.1f%%\n", 100*float64(c.UsageUs)/total)
	return nil
}

func estimatorFigure(ec experiments.EstimatorCase, width int) error {
	chart, err := experiments.EstimatorFigure(ec, width)
	if err != nil {
		return err
	}
	fmt.Print(chart)
	return nil
}

func table4() error {
	fmt.Println("Table IV — nodes used for the experimentations:")
	fmt.Printf("  %-8s %-26s %-14s %-10s %-7s\n", "name", "CPU", "logical CPUs", "F_MAX", "memory")
	for _, spec := range []host.Spec{host.Chetemi(), host.Chiclet()} {
		fmt.Printf("  %-8s %-26s %-14d %-10s %d GB\n",
			spec.Name, spec.CPU, spec.Cores, fmt.Sprintf("%d MHz", spec.MaxMHz), spec.MemoryGB)
	}
	return nil
}

func classTable(title string, classes []experiments.Class) error {
	fmt.Println(title + ":")
	fmt.Printf("  %-8s %-6s %-10s %-10s %-14s %-8s\n",
		"VM", "vCPUs", "frequency", "instances", "workload", "start")
	for _, cl := range classes {
		fmt.Printf("  %-8s %-6d %-10s %-10d %-14s t=%ds\n",
			cl.Template.Name, cl.Template.VCPUs,
			fmt.Sprintf("%d MHz", cl.Template.FreqMHz),
			cl.Count, cl.Kind, cl.StartUs/1_000_000)
	}
	return nil
}

func freqFigure(title string, e experiments.FreqExperiment, scale float64, csv bool, width int) error {
	e = withWorkers(e)
	res, err := experiments.Scale(e, scale).Run()
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(res.Rec.CSV())
		return nil
	}
	var names []string
	for _, cl := range e.Classes {
		names = append(names, cl.Template.Name)
	}
	fmt.Print(res.Rec.Chart(title+" (MHz over seconds)", names, width, 14))
	fmt.Printf("  steady-state medians (last third): ")
	dur := float64(experiments.Scale(e, scale).DurationUs) / 1e6
	var parts []string
	for _, n := range names {
		parts = append(parts,
			fmt.Sprintf("%s=%.0f MHz", n, res.Rec.Series(n).MedianRange(dur*2/3, dur)))
	}
	fmt.Println(strings.Join(parts, ", "))
	fmt.Printf("  avg core frequency variance: %.0f MHz² — controller step: %v (monitor %v)\n",
		res.AvgCoreVarMHz, res.AvgStep, res.AvgMonitor)
	if len(res.SLAViolations) > 0 {
		var sla []string
		for _, n := range names {
			if v, ok := res.SLAViolations[n]; ok {
				sla = append(sla, fmt.Sprintf("%s=%.0f%%", n, 100*v))
			}
		}
		fmt.Printf("  SLA violations (below 95%% of template while loaded): %s\n",
			strings.Join(sla, ", "))
	}
	fmt.Printf("  node energy over the window: %.0f kJ\n", res.EnergyJoules/1000)
	return nil
}

func efficiencyFigure(title string, a, b experiments.FreqExperiment, scale float64) error {
	a, b = withWorkers(a), withWorkers(b)
	resA, err := experiments.Scale(a, scale).Run()
	if err != nil {
		return err
	}
	resB, err := experiments.Scale(b, scale).Run()
	if err != nil {
		return err
	}
	fmt.Println(title + " — mean benchmark rate per iteration (MHz-equivalent):")
	classes := map[string]bool{}
	for _, cl := range a.Classes {
		if cl.Kind == experiments.Compress {
			classes[cl.Template.Name] = true
		}
	}
	var names []string
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, class := range names {
		ra := resA.MeanRateByClass(class)
		rb := resB.MeanRateByClass(class)
		fmt.Printf("  %s instances (A=no control, B=controlled):\n", class)
		fmt.Printf("    %-4s %-12s %-12s\n", "run", "A rate", "B rate")
		n := len(ra)
		if len(rb) > n {
			n = len(rb)
		}
		for i := 0; i < n; i++ {
			av, bv := "-", "-"
			if i < len(ra) {
				av = fmt.Sprintf("%.0f", ra[i])
			}
			if i < len(rb) {
				bv = fmt.Sprintf("%.0f", rb[i])
			}
			fmt.Printf("    %-4d %-12s %-12s\n", i+1, av, bv)
		}
	}
	return nil
}

func placementTable() error {
	rows, err := experiments.RunPlacementComparison()
	if err != nil {
		return err
	}
	fmt.Println("§IV-C — placement of 250 small + 50 medium + 100 large on 12 chetemi + 10 chiclet:")
	fmt.Printf("  %-42s %-6s %-9s %-12s %-12s %-10s\n",
		"policy", "nodes", "unplaced", "max lg/chic", "max sm/chet", "idle save")
	for _, r := range rows {
		fmt.Printf("  %-42s %-6d %-9d %-12d %-12d %.0f W\n",
			r.Label, r.UsedNodes, r.Unplaced, r.MaxLargePerChiclet,
			r.MaxSmallPerChetemi, r.IdleSavingsWatts)
	}
	return nil
}

// dynamicTable extends §IV-C to a dynamic arrival stream: same Poisson
// workload admitted under the classic and the Eq. 7 constraints, with
// idle nodes powered off.
func dynamicTable() error {
	workers := 1
	if parallelCluster {
		workers = 0
	}
	if stepWorkers >= 0 {
		workers = stepWorkers
	}
	base := experiments.DynamicClusterExperiment{
		Nodes:             experimentsDynamicNodes(),
		ArrivalsPerStep:   1.2,
		MeanLifetimeSteps: 10,
		Steps:             60,
		Seed:              42,
		FailThreshold:     3,
		StepWorkers:       workers,
		RebalanceEvery:    rebalanceEvery,
		Metrics:           metricsReg,
	}
	fmt.Println("Dynamic cluster (Poisson arrivals, exponential lifetimes, idle nodes off):")
	fmt.Printf("  %-28s %-9s %-9s %-10s %-12s %-12s\n",
		"policy", "deployed", "rejected", "avg nodes", "active kJ", "always-on kJ")
	for _, c := range []struct {
		label  string
		policy placement.Policy
	}{
		{"vCPU-count (classic)", placement.Policy{Mode: placement.CoreCount, Factor: 1, Memory: true}},
		{"virtual frequency (Eq. 7)", placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true}},
	} {
		e := base
		e.Policy = c.policy
		res, err := e.Run()
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %-9d %-9d %-10.2f %-12.1f %-12.1f\n",
			c.label, res.Deployed, res.Rejected, res.MeanUsedNodes,
			res.ActiveEnergyJ/1000, res.AlwaysOnEnergyJ/1000)
		fmt.Printf("    cluster step: mean %.0f µs, max %d µs (workers %s)\n",
			res.MeanStepUs, res.MaxStepUs, describeWorkers(workers))
		if res.Faults > 0 || res.DegradedVCPUSteps > 0 {
			fmt.Printf("    degradation: %d faults, %d degraded vCPU-steps\n",
				res.Faults, res.DegradedVCPUSteps)
		}
		if res.NodeFailureSteps > 0 || res.Evacuations > 0 {
			fmt.Printf("    failures: %d node-failure steps, %d VMs evacuated, %d stranded VM-steps\n",
				res.NodeFailureSteps, res.Evacuations, res.StrandedVMSteps)
		}
		if res.Rebalanced > 0 {
			fmt.Printf("    rebalance: %d VMs moved (of %d migrations)\n",
				res.Rebalanced, res.Migrations)
		}
	}
	return nil
}

// describeWorkers renders a StepWorkers value for humans.
func describeWorkers(workers int) string {
	if workers == 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", workers)
}

// experimentsDynamicNodes is a 6-node rack of 8-core machines.
func experimentsDynamicNodes() []host.Spec {
	spec := host.Chetemi()
	spec.Cores = 8
	nodes := make([]host.Spec, 6)
	for i := range nodes {
		nodes[i] = spec
	}
	return nodes
}

// chaosSoak runs the randomized robustness soak: thousands of control
// periods under randomized fault and latency injection, with the
// standing invariants checked after every step and full recovery
// demanded at the end. Not part of "all" — it validates the
// implementation rather than reproducing a paper artefact.
func chaosSoak() error {
	fmt.Printf("Chaos soak — %d steps, seed %d, %d VMs, churn %v:\n",
		chaosSteps, chaosSeed, chaosVMs, chaosChurn)
	res, err := chaos.Soak(chaos.Options{
		Seed:    chaosSeed,
		Steps:   chaosSteps,
		VMs:     chaosVMs,
		Churn:   chaosChurn,
		Metrics: metricsReg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", res)
	fmt.Println("  all per-step invariants held: conservation, report consistency, checkpoint round-trips, no panics")
	return nil
}

func overhead(scale float64) error {
	res, err := experiments.Scale(withWorkers(experiments.Fig7()), scale).Run()
	if err != nil {
		return err
	}
	fmt.Println("Controller overhead (paper: 5 ms/step, 4 ms monitoring, on real hardware):")
	fmt.Printf("  avg step: %v   avg monitoring stage: %v   steps: %d\n",
		res.AvgStep, res.AvgMonitor, res.Controller.Steps())
	tm := res.Controller.LastTimings()
	fmt.Printf("  last step breakdown: monitor=%v estimate=%v enforce=%v auction=%v distribute=%v apply=%v\n",
		tm.Monitor, tm.Estimate, tm.Enforce, tm.Auction, tm.Distribute, tm.Apply)
	return nil
}
