// Datacenter: cluster-level orchestration with virtual frequencies — the
// direction the paper opens in §III-C/§V. VMs are admitted under the
// core-splitting constraint (Eq. 7), each node runs its own frequency
// controller, and idle nodes stay powered off. When a tenant upgrade
// makes a node infeasible, the manager migrates VMs instead of degrading
// guarantees.
package main

import (
	"fmt"
	"log"

	"vfreq"
)

func main() {
	// A small cluster: 3 nodes of 8 logical cores at 2.4 GHz
	// (19.2 GHz of guaranteed capacity each).
	spec := vfreq.Chetemi()
	spec.Name = "rack-node"
	spec.Cores = 8
	cl, err := vfreq.NewCluster([]vfreq.MachineSpec{spec, spec, spec}, vfreq.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}

	busy := func(n int) []vfreq.Workload {
		out := make([]vfreq.Workload, n)
		for i := range out {
			out[i] = vfreq.Busy()
		}
		return out
	}

	// Tenants arrive: 4 large (7.2 GHz each) and 6 small (1 GHz each).
	fmt.Println("deployments (Eq. 7 admission, BestFit):")
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("analytics-%d", i)
		node, err := cl.Deploy(name, vfreq.Large(), busy(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s (4 vCPU @ 1800 MHz) -> node %d\n", name, node)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("web-%d", i)
		node, err := cl.Deploy(name, vfreq.Small(), busy(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s (2 vCPU @  500 MHz) -> node %d\n", name, node)
	}
	fmt.Printf("nodes in use: %d of %d (idle nodes can stay powered off)\n\n",
		cl.UsedNodes(), len(cl.Nodes()))

	// Run for 30 s: every node's controller holds its tenants at their
	// guaranteed frequencies.
	for sec := 0; sec < 30; sec++ {
		if err := cl.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("per-node state after 30 s:")
	for _, n := range cl.Nodes() {
		if len(n.VMs()) == 0 {
			fmt.Printf("  node %d: empty (powered off)\n", n.Index)
			continue
		}
		fmt.Printf("  node %d: %d VMs —", n.Index, len(n.VMs()))
		for _, st := range n.Ctrl.VMs() {
			var mhz float64
			for _, v := range st.VCPUs {
				mhz += v.FreqMHz
			}
			mhz /= float64(len(st.VCPUs))
			fmt.Printf(" %s=%.0fMHz", st.Info.Name, mhz)
		}
		fmt.Println()
	}

	fmt.Printf("\nenergy: %.0f J with idle nodes off vs %.0f J always-on (%.0f%% saved)\n",
		cl.ActiveEnergyJoules(), cl.TotalEnergyJoules(),
		100*(1-cl.ActiveEnergyJoules()/cl.TotalEnergyJoules()))

	// A tenant upgrades from small to large: undeploy + redeploy. The
	// admission constraint finds it a feasible home, possibly another
	// node, without any guarantee ever being silently violated.
	fmt.Println("\ntenant web-0 upgrades to a large template:")
	if err := cl.Undeploy("web-0"); err != nil {
		log.Fatal(err)
	}
	node, err := cl.Deploy("web-0", vfreq.Large(), busy(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  web-0 now 4 vCPU @ 1800 MHz on node %d (migrations so far: %d)\n",
		node, cl.Migrations())
}
