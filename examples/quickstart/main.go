// Quickstart: provision two VMs with different virtual frequencies on a
// simulated node, run the controller, and watch each VM receive exactly
// the frequency its template promises — something the stock CFS scheduler
// cannot do.
package main

import (
	"fmt"
	"log"

	"vfreq"
)

func main() {
	// Boot a simulated node: the paper's chetemi (40 logical CPUs at
	// 2.4 GHz).
	machine, err := vfreq.NewMachine(vfreq.Chetemi())
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := vfreq.NewManager(machine)
	if err != nil {
		log.Fatal(err)
	}

	// A "web" VM guaranteed 500 MHz and a "batch" VM guaranteed
	// 1800 MHz, both fully CPU-bound. To create contention, use a
	// custom 4-core node instead: guarantees 2×500 + 4×1800 ≈ 8.3 GHz
	// on a 9.6 GHz machine.
	spec := vfreq.Chetemi()
	spec.Name = "demo"
	spec.Cores = 4
	machine, err = vfreq.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err = vfreq.NewManager(machine)
	if err != nil {
		log.Fatal(err)
	}
	busy := func(n int) []vfreq.Workload {
		out := make([]vfreq.Workload, n)
		for i := range out {
			out[i] = vfreq.Busy()
		}
		return out
	}
	web, err := mgr.Provision("web", vfreq.Small(), busy(2))
	if err != nil {
		log.Fatal(err)
	}
	batch, err := mgr.Provision("batch", vfreq.Large(), busy(4))
	if err != nil {
		log.Fatal(err)
	}

	// The controller: paper configuration, one step per simulated
	// second.
	ctrl, err := vfreq.NewController(vfreq.NewSimHost(mgr), vfreq.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sec   web(500 MHz tpl)   batch(1800 MHz tpl)")
	period := ctrl.Config().PeriodUs
	for sec := 1; sec <= 30; sec++ {
		webSnap, batchSnap := web.SnapshotCycles(), batch.SnapshotCycles()
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %8.0f MHz       %8.0f MHz\n",
			sec,
			web.MeanVCPUFreqMHz(webSnap, period),
			batch.MeanVCPUFreqMHz(batchSnap, period))
	}
	fmt.Println("\nEach VM receives at least its template frequency — the")
	fmt.Println("controller translated 'MHz' into cgroup cpu.max quotas, and")
	fmt.Println("the node's spare 1.4 GHz is auctioned off on top of the")
	fmt.Println("guarantees instead of being wasted.")
}
