// Burst: the credit economy of the controller (Eq. 4 + Algorithm 1).
//
// A low-frequency "dev" VM idles for 30 s, earning credits because it
// consumes less than its guarantee. When its workload arrives, it spends
// those credits at the cycle auction to burst far beyond its 500 MHz
// guarantee — as long as spare cycles exist — then falls back to the
// guarantee once the wallet empties or the market tightens. This is the
// paper's answer to the fixed Burst-VM templates of EC2/Azure: the burst
// budget follows actual under-consumption, not a pricing table.
package main

import (
	"fmt"
	"log"

	"vfreq"
)

func main() {
	// A 2-core node at 2.4 GHz; one neighbour VM keeps the node from
	// being trivially idle.
	spec := vfreq.Chetemi()
	spec.Name = "burst-demo"
	spec.Cores = 2
	machine, err := vfreq.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := vfreq.NewManager(machine)
	if err != nil {
		log.Fatal(err)
	}

	// dev: 1 vCPU guaranteed 500 MHz, idle for the first 30 s, then a
	// compile-like full-CPU burst.
	devTpl := vfreq.Template{Name: "dev", VCPUs: 1, FreqMHz: 500, MemoryGB: 2}
	devBench, err := vfreq.NewOpenSSL(1, 60_000_000_000, 1, 30_000_000)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := mgr.Provision("dev", devTpl, devBench.Sources())
	if err != nil {
		log.Fatal(err)
	}

	// prod: 2 vCPUs guaranteed 1500 MHz, always busy. Guarantees sum
	// to 1×500 + 2×1500 = 3.5 GHz of the node's 4.8 GHz.
	prodTpl := vfreq.Template{Name: "prod", VCPUs: 2, FreqMHz: 1500, MemoryGB: 4}
	prod, err := mgr.Provision("prod", prodTpl,
		[]vfreq.Workload{vfreq.Busy(), vfreq.Busy()})
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := vfreq.NewController(vfreq.NewSimHost(mgr), vfreq.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sec   dev MHz   dev credits(Ms)   prod MHz")
	period := ctrl.Config().PeriodUs
	for sec := 1; sec <= 60; sec++ {
		devSnap, prodSnap := dev.SnapshotCycles(), prod.SnapshotCycles()
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			log.Fatal(err)
		}
		var credits int64
		if st := ctrl.VM("dev"); st != nil {
			credits = st.CreditUs
		}
		marker := ""
		switch sec {
		case 30:
			marker = "  <- dev workload starts"
		case 1:
			marker = "  <- dev idle, earning credits"
		}
		if sec%5 == 0 || sec == 1 || (sec > 28 && sec < 40) {
			fmt.Printf("%3d   %7.0f   %15.1f   %8.0f%s\n",
				sec,
				dev.MeanVCPUFreqMHz(devSnap, period),
				float64(credits)/1e6,
				prod.MeanVCPUFreqMHz(prodSnap, period),
				marker)
		}
	}
	fmt.Println("\nWhile idle, dev earned ~0.2 Mcycles of credit per second")
	fmt.Println("(its unconsumed guarantee). At t=30 it spends them at the")
	fmt.Println("auction, bursting above 500 MHz without hurting prod's")
	fmt.Println("1500 MHz guarantee.")
}
