// Heterogeneous: a scaled-down rendition of the paper's second evaluation
// (Table V / Fig. 13). Three VM classes with different virtual
// frequencies and different benchmarks share one node; the controller
// holds each class at its own plateau, and when the openssl class
// finishes, its freed cycles flow to the others through the auction.
package main

import (
	"fmt"
	"log"

	"vfreq"
)

func main() {
	// The paper's Table V workload at 1/10 time scale: 14 small
	// (compress-7zip), 8 medium (openssl, +10 s), 6 large
	// (compress-7zip, +20 s) on chetemi.
	exp := vfreq.ScaleExperiment(vfreq.Fig13(), 0.1)
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Rec.Chart(
		"Three virtual-frequency plateaus on one node (MHz over seconds)",
		[]string{"small", "medium", "large"}, 72, 14))

	dur := float64(exp.DurationUs) / 1e6
	fmt.Printf("\nplateau medians while all classes run: small=%.0f, medium=%.0f, large=%.0f MHz\n",
		res.Rec.Series("small").MedianRange(dur*0.45, dur*0.62),
		res.Rec.Series("medium").MedianRange(dur*0.45, dur*0.62),
		res.Rec.Series("large").MedianRange(dur*0.45, dur*0.62))
	fmt.Printf("after openssl completes:               small=%.0f,            large=%.0f MHz\n",
		res.Rec.Series("small").MedianRange(dur*0.8, dur),
		res.Rec.Series("large").MedianRange(dur*0.8, dur))
	fmt.Printf("\ncontroller cost per period: %v (monitoring %v)\n", res.AvgStep, res.AvgMonitor)
	fmt.Printf("node energy: %.0f kJ over %.0f s\n", res.EnergyJoules/1000, dur)
}
