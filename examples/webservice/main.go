// Webservice: an interactive, latency-sensitive tenant next to a batch
// tenant. Requests arrive in bursts much shorter than the 1 s control
// period, which defeats plain quota capping (the estimator sees low
// average usage and shrinks the cap — then the next burst queues). The
// controller's burst extension (cpu.max.burst via Config.BurstFraction)
// lets quiet cgroup windows bank bandwidth for the spikes, and the
// cgroup PSI pressure file shows the throttling disappear.
package main

import (
	"fmt"
	"log"

	"vfreq"
	"vfreq/internal/cgroupfs"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

func run(burstFraction float64) (served int64, backlog int64, psi string) {
	spec := vfreq.Chetemi()
	spec.Name = "edge"
	spec.Cores = 2
	machine, err := vfreq.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := vfreq.NewManager(machine)
	if err != nil {
		log.Fatal(err)
	}
	// The web tenant: 1 vCPU at 1200 MHz, Poisson request bursts.
	web := &workload.WebServer{RatePerSec: 300, CyclesPerReq: 2_000_000, Seed: 99}
	webTpl := vfreq.Template{Name: "web", VCPUs: 1, FreqMHz: 1200, MemoryGB: 2}
	if _, err := mgr.Provision("web", webTpl, []vfreq.Workload{web}); err != nil {
		log.Fatal(err)
	}
	// The batch tenant keeps the node busy.
	batchTpl := vfreq.Template{Name: "batch", VCPUs: 2, FreqMHz: 1500, MemoryGB: 4}
	if _, err := mgr.Provision("batch", batchTpl,
		[]vfreq.Workload{vfreq.Busy(), vfreq.Busy()}); err != nil {
		log.Fatal(err)
	}
	cfg := vfreq.DefaultConfig()
	cfg.BurstFraction = burstFraction
	ctrl, err := vfreq.NewController(vfreq.NewSimHost(mgr), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for sec := 0; sec < 60; sec++ {
		machine.Advance(cfg.PeriodUs)
		if err := ctrl.Step(); err != nil {
			log.Fatal(err)
		}
	}
	pressure, err := machine.FS.ReadFile(
		cgroupfs.DefaultMount + "/" + vm.VCPUCgroup("web", 0) + "/cpu.pressure")
	if err != nil {
		log.Fatal(err)
	}
	return web.ServedReqs, web.BacklogCycles(), pressure
}

func main() {
	fmt.Println("An interactive tenant (Poisson bursts, 300 req/s) beside a busy batch VM, 60 s:")
	for _, frac := range []float64{0, 1.0} {
		served, backlog, psi := run(frac)
		fmt.Printf("\nBurstFraction %.0f%%:\n", frac*100)
		fmt.Printf("  requests served: %d   backlog: %.1f Mcycles\n", served, float64(backlog)/1e6)
		fmt.Printf("  web vCPU cpu.pressure:\n    %s", psi)
	}
	fmt.Println("\nWith a full burst budget the web tenant serves its spikes from")
	fmt.Println("banked quota instead of queueing behind a hard per-window cap.")
}
