// Placement: the paper's §IV-C cluster experiment. The same workload is
// packed with the classic vCPU-count constraint and with the paper's
// virtual-frequency constraint (Eq. 7); the latter fits it on about a
// third fewer nodes without the hotspots a blind consolidation factor
// creates, and the freed nodes translate directly into idle-power
// savings.
package main

import (
	"fmt"
	"log"

	"vfreq"
)

func main() {
	rows, err := vfreq.RunPlacementComparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("250 small + 50 medium + 100 large VMs on 12 chetemi + 10 chiclet:")
	fmt.Println()
	fmt.Printf("%-42s %-6s %-13s %-13s %-10s\n",
		"policy", "nodes", "max lg/chiclet", "max sm/chetemi", "idle saved")
	for _, r := range rows {
		fmt.Printf("%-42s %-6d %-13d %-13d %.0f W\n",
			r.Label, r.UsedNodes, r.MaxLargePerChiclet, r.MaxSmallPerChetemi,
			r.IdleSavingsWatts)
	}
	fmt.Println()
	fmt.Println("Eq. 7 reaches the consolidation of a ×1.8 factor without the")
	fmt.Println("hotspots: a chiclet structurally holds at most 21 large VMs")
	fmt.Println("(21 × 4 × 1800 ≤ 64 × 2400 MHz), while the ×1.8 factor packs 28")
	fmt.Println("and relies on migrations when they all get busy.")

	// A custom run: what if the cluster were chiclet-only?
	var nodes []vfreq.PlacementNode
	for i := 0; i < 16; i++ {
		nodes = append(nodes, vfreq.PlacementNode{
			Name: "chiclet", Cores: 64, MaxFreqMHz: 2400, MemoryGB: 128,
			IdleWatts: 110, MaxWatts: 190,
		})
	}
	var vms []vfreq.PlacementVM
	for i := 0; i < 120; i++ {
		vms = append(vms, vfreq.PlacementVM{
			Name: fmt.Sprintf("large-%03d", i), Template: "large",
			VCPUs: 4, FreqMHz: 1800, MemoryGB: 8,
		})
	}
	res, err := vfreq.Place(vfreq.BestFit, nodes, vms,
		vfreq.PlacementPolicy{Mode: vfreq.VirtualFrequency, Factor: 1, Memory: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n120 large VMs on a chiclet-only cluster: %d/%d nodes (memory-bound: %d×8 GB per 128 GB node)\n",
		res.UsedNodes(), len(nodes), 128/8)
}
