package vfreq_test

import (
	"testing"

	"vfreq"
)

// The README quick-start, verified: two VMs on a contended node converge
// to at least their template frequencies through the public API alone.
func TestQuickstartFlow(t *testing.T) {
	spec := vfreq.Chetemi()
	spec.Cores = 4
	machine, err := vfreq.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := vfreq.NewManager(machine)
	if err != nil {
		t.Fatal(err)
	}
	busy := func(n int) []vfreq.Workload {
		out := make([]vfreq.Workload, n)
		for i := range out {
			out[i] = vfreq.Busy()
		}
		return out
	}
	web, err := mgr.Provision("web", vfreq.Small(), busy(2))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := mgr.Provision("batch", vfreq.Large(), busy(4))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := vfreq.NewController(vfreq.NewSimHost(mgr), vfreq.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	period := ctrl.Config().PeriodUs
	for sec := 0; sec < 15; sec++ {
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	webSnap, batchSnap := web.SnapshotCycles(), batch.SnapshotCycles()
	for sec := 0; sec < 5; sec++ {
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f := web.MeanVCPUFreqMHz(webSnap, 5*period); f < 480 {
		t.Fatalf("web at %.0f MHz, below 500 guarantee", f)
	}
	if f := batch.MeanVCPUFreqMHz(batchSnap, 5*period); f < 1750 {
		t.Fatalf("batch at %.0f MHz, below 1800 guarantee", f)
	}
}

func TestTemplatePresets(t *testing.T) {
	if vfreq.Small().FreqMHz != 500 || vfreq.Medium().FreqMHz != 1200 || vfreq.Large().FreqMHz != 1800 {
		t.Fatal("template presets wrong")
	}
	if vfreq.Chetemi().Cores != 40 || vfreq.Chiclet().Cores != 64 {
		t.Fatal("node presets wrong")
	}
}

func TestBenchFactories(t *testing.T) {
	b, err := vfreq.NewCompress7zip(2, 1_000_000, 3, 0)
	if err != nil || b.Threads() != 2 {
		t.Fatalf("compress: %v, %v", b, err)
	}
	o, err := vfreq.NewOpenSSL(1, 1_000_000, 1, 0)
	if err != nil || o.Name() != "openssl" {
		t.Fatalf("openssl: %v, %v", o, err)
	}
	if vfreq.IdleWorkload().Demand(0, 1) != 0 {
		t.Fatal("idle workload demands CPU")
	}
}

func TestPlacementFacade(t *testing.T) {
	nodes := []vfreq.PlacementNode{{
		Name: "n", Cores: 4, MaxFreqMHz: 2400, MemoryGB: 32,
		IdleWatts: 100, MaxWatts: 200,
	}}
	vms := []vfreq.PlacementVM{
		{Name: "a", Template: "small", VCPUs: 2, FreqMHz: 500, MemoryGB: 2},
		{Name: "b", Template: "large", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8},
	}
	res, err := vfreq.Place(vfreq.BestFit, nodes, vms,
		vfreq.PlacementPolicy{Mode: vfreq.VirtualFrequency, Factor: 1, Memory: true})
	if err != nil {
		t.Fatal(err)
	}
	// 2×500 + 4×1800 = 8200 ≤ 9600: both fit.
	if res.UsedNodes() != 1 || len(res.Unplaced) != 0 {
		t.Fatalf("placement unexpected: used=%d unplaced=%d", res.UsedNodes(), len(res.Unplaced))
	}
}

func TestExperimentFacade(t *testing.T) {
	e := vfreq.ScaleExperiment(vfreq.Fig7(), 0.02)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rec.Series("small") == nil || res.Rec.Series("large") == nil {
		t.Fatal("missing series")
	}
	rows, err := vfreq.RunPlacementComparison()
	if err != nil || len(rows) == 0 {
		t.Fatalf("placement comparison: %d rows, %v", len(rows), err)
	}
}

func TestClusterFacade(t *testing.T) {
	spec := vfreq.Chetemi()
	spec.Cores = 8
	cl, err := vfreq.NewCluster([]vfreq.MachineSpec{spec, spec}, vfreq.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Deploy("a", vfreq.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Step(); err != nil {
		t.Fatal(err)
	}
	if cl.UsedNodes() != 1 {
		t.Fatalf("UsedNodes = %d", cl.UsedNodes())
	}
}

func TestLinuxHostUnavailableHere(t *testing.T) {
	// On hosts without libvirt/cgroup-v2 machine.slice the constructor
	// fails cleanly; where it exists, it must report sane node info.
	h, err := vfreq.NewLinuxHost(map[string]int64{"vm": 1000})
	if err != nil {
		t.Skipf("linux host unavailable (expected off real hypervisors): %v", err)
	}
	if h.Node().Cores <= 0 {
		t.Fatal("bad node info")
	}
}
