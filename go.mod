module vfreq

go 1.22
