// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see EXPERIMENTS.md for the index). Each benchmark
// regenerates its artefact at a reduced time scale and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the paper's results column by column. Absolute wall-clock
// numbers measure this simulator, not the authors' testbed; the reported
// metrics carry the reproduced shape (plateau frequencies, node counts,
// per-run rates).
package vfreq

import (
	"fmt"
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/experiments"
	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/platform"
	"vfreq/internal/sched"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// benchScale keeps each benchmark iteration around a hundred
// milliseconds while preserving experiment dynamics (all clocks scale
// together — see experiments.Scale).
const benchScale = 0.02

// runScaled runs a preset experiment at benchScale and reports the
// steady-state medians of the named series as metrics.
func runScaled(b *testing.B, e experiments.FreqExperiment, series ...string) {
	b.Helper()
	scaled := experiments.Scale(e, benchScale)
	dur := float64(scaled.DurationUs) / 1e6
	var res *experiments.FreqResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = scaled.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range series {
		if s := res.Rec.Series(name); s != nil {
			b.ReportMetric(s.MedianRange(dur*2/3, dur), name+"_MHz")
		}
	}
	b.ReportMetric(float64(res.AvgStep.Microseconds()), "ctrl_step_µs")
}

// Fig. 1 — cgroup CPU-time division between three weighted threads.
func BenchmarkFig1CgroupShares(b *testing.B) {
	var shareA float64
	for i := 0; i < b.N; i++ {
		s := sched.New(1)
		mk := func(q int64) *sched.Thread {
			g := s.NewGroup(nil, "g")
			if err := g.SetQuota(q, 100_000); err != nil {
				b.Fatal(err)
			}
			return s.NewThread(g, nil)
		}
		ta, tb, tc := mk(50_000), mk(25_000), mk(25_000)
		for k := 0; k < 100; k++ {
			s.Tick(10_000)
		}
		shareA = float64(ta.UsageUs) / float64(ta.UsageUs+tb.UsageUs+tc.UsageUs)
	}
	b.ReportMetric(shareA, "thread_a_share")
}

// Fig. 2 — the six-stage control loop: cost of one full Step on the
// paper's Table II workload (the paper reports 5 ms on chetemi), swept
// over monitor-pool sizes (workers=1 is the serial stage).
func BenchmarkFig2ControllerStep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			machine, err := host.New(host.Chetemi())
			if err != nil {
				b.Fatal(err)
			}
			mgr, err := vm.NewManager(machine)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if _, err := mgr.Provision(fmt.Sprintf("small-%02d", i), vm.Small(),
					[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 10; i++ {
				srcs := []workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()}
				if _, err := mgr.Provision(fmt.Sprintf("large-%02d", i), vm.Large(), srcs); err != nil {
					b.Fatal(err)
				}
			}
			cfg := core.DefaultConfig()
			cfg.MonitorWorkers = workers
			ctrl, err := core.New(platform.NewSim(mgr), cfg)
			if err != nil {
				b.Fatal(err)
			}
			machine.Advance(1_000_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// estimatorBench drives one vCPU through a consumption pattern via the
// full controller and returns its final cap, exercising the trigger paths
// of Figs. 3–5.
func estimatorBench(b *testing.B, pattern []int64) int64 {
	b.Helper()
	var cap int64
	for i := 0; i < b.N; i++ {
		h := newScriptHost(1, 2400)
		h.addVM("v", 1, 2400) // guarantee = a full core: cap tracks estimate
		ctrl, err := core.New(h, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range pattern {
			h.consume("v", 0, u)
			if err := ctrl.Step(); err != nil {
				b.Fatal(err)
			}
		}
		cap = ctrl.VM("v").VCPUs[0].CapUs
	}
	return cap
}

// Fig. 3 — increasing consumption crosses the increase trigger and the
// cap doubles.
func BenchmarkFig3IncreaseTrigger(b *testing.B) {
	cap := estimatorBench(b, []int64{0, 100_000, 200_000, 400_000, 780_000, 999_000})
	b.ReportMetric(float64(cap), "final_cap_µs")
}

// Fig. 4 — decreasing consumption crosses the decrease trigger and the
// cap shrinks gently.
func BenchmarkFig4DecreaseTrigger(b *testing.B) {
	cap := estimatorBench(b, []int64{0, 900_000, 900_000, 600_000, 300_000, 100_000})
	b.ReportMetric(float64(cap), "final_cap_µs")
}

// Fig. 5 — stable consumption: the cap recalibrates just above the
// observed usage.
func BenchmarkFig5StableCalibration(b *testing.B) {
	cap := estimatorBench(b, []int64{0, 600_000, 600_000, 600_000, 600_000, 600_000})
	b.ReportMetric(float64(cap), "final_cap_µs")
}

// Tables II/III/V — provisioning the evaluation workloads (KVM cgroup
// layout creation cost).
func benchProvision(b *testing.B, node host.Spec, classes []experiments.Class) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		machine, err := host.New(node)
		if err != nil {
			b.Fatal(err)
		}
		mgr, err := vm.NewManager(machine)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, cl := range classes {
			for k := 0; k < cl.Count; k++ {
				if _, err := mgr.Provision(fmt.Sprintf("%s-%02d", cl.Template.Name, k),
					cl.Template, nil); err != nil {
					b.Fatal(err)
				}
				n++
			}
		}
		if n == 0 {
			b.Fatal("nothing provisioned")
		}
	}
}

func BenchmarkTable2WorkloadChetemi(b *testing.B) {
	benchProvision(b, host.Chetemi(), experiments.Table2Classes())
}

func BenchmarkTable3WorkloadChiclet(b *testing.B) {
	benchProvision(b, host.Chiclet(), experiments.Table3Classes())
}

// Table IV — booting the two evaluation nodes.
func BenchmarkTable4NodeBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range []host.Spec{host.Chetemi(), host.Chiclet()} {
			if _, err := host.New(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable5WorkloadHeterogeneous(b *testing.B) {
	benchProvision(b, host.Chetemi(), experiments.Table5Classes())
}

// Figs. 6–9 — frequency-over-time experiments, both nodes, both modes.
func BenchmarkFig6ChetemiA(b *testing.B) { runScaled(b, experiments.Fig6(), "small", "large") }
func BenchmarkFig7ChetemiB(b *testing.B) { runScaled(b, experiments.Fig7(), "small", "large") }
func BenchmarkFig8ChicletA(b *testing.B) { runScaled(b, experiments.Fig8(), "small", "large") }
func BenchmarkFig9ChicletB(b *testing.B) { runScaled(b, experiments.Fig9(), "small", "large") }

// efficiencyBench reports first- and late-run benchmark rates for a
// class, A vs B (Figs. 10/11/14).
func efficiencyBench(b *testing.B, mk func() (experiments.FreqExperiment, experiments.FreqExperiment), class string) {
	b.Helper()
	expA, expB := mk()
	sA := experiments.Scale(expA, benchScale)
	sB := experiments.Scale(expB, benchScale)
	var ra, rb []float64
	for i := 0; i < b.N; i++ {
		resA, err := sA.Run()
		if err != nil {
			b.Fatal(err)
		}
		resB, err := sB.Run()
		if err != nil {
			b.Fatal(err)
		}
		ra = resA.MeanRateByClass(class)
		rb = resB.MeanRateByClass(class)
	}
	if len(ra) > 1 && len(rb) > 1 {
		b.ReportMetric(ra[1], "runA_early_MHz")
		b.ReportMetric(rb[1], "runB_early_MHz")
	}
	if len(ra) > 4 && len(rb) > 4 {
		b.ReportMetric(ra[4], "runA_contended_MHz")
		b.ReportMetric(rb[4], "runB_contended_MHz")
	}
}

func BenchmarkFig10SmallChetemi(b *testing.B) { efficiencyBench(b, experiments.Fig10, "small") }
func BenchmarkFig11SmallChiclet(b *testing.B) { efficiencyBench(b, experiments.Fig11, "small") }

// Figs. 12/13 — the heterogeneous second evaluation.
func BenchmarkFig12HeteroA(b *testing.B) {
	runScaled(b, experiments.Fig12(), "small", "medium", "large")
}
func BenchmarkFig13HeteroB(b *testing.B) {
	// The medium class completes its openssl batch around 70 % of the
	// experiment; report the three plateaus from the window where all
	// classes are active, and the post-completion boost of the others.
	scaled := experiments.Scale(experiments.Fig13(), benchScale)
	dur := float64(scaled.DurationUs) / 1e6
	var res *experiments.FreqResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = scaled.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"small", "medium", "large"} {
		b.ReportMetric(res.Rec.Series(name).MedianRange(dur*0.45, dur*0.62), name+"_MHz")
	}
	b.ReportMetric(res.Rec.Series("small").MedianRange(dur*0.85, dur), "small_after_MHz")
}
func BenchmarkFig14HeteroSmall(b *testing.B) { efficiencyBench(b, experiments.Fig14, "small") }

// §IV-A2 experiments a) and b) — CFS sharing probes.
func BenchmarkCFSExperimentA(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CFSExperimentA(2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		spread = res.Spread
	}
	b.ReportMetric(spread, "vcpu_speed_spread")
}

func BenchmarkCFSExperimentB(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CFSExperimentB(2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		share = res.OneVCPUShare
	}
	b.ReportMetric(share, "one_vcpu_share")
}

// §IV-C — the placement evaluation: nodes used under each policy.
func BenchmarkPlacement(b *testing.B) {
	var rows []experiments.PlacementRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPlacementComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch {
		case r.Policy.Mode == placement.CoreCount && r.Policy.Factor == 1:
			b.ReportMetric(float64(r.UsedNodes), "nodes_classic")
		case r.Policy.Mode == placement.VirtualFrequency && !r.Policy.CoreSplitting &&
			r.Algorithm == placement.BestFit:
			b.ReportMetric(float64(r.UsedNodes), "nodes_eq7")
		case r.Policy.Mode == placement.CoreCount && r.Policy.Factor > 1:
			b.ReportMetric(float64(r.UsedNodes), "nodes_consol18")
			b.ReportMetric(float64(r.MaxLargePerChiclet), "hotspot_large_per_chiclet")
		}
	}
}

// Dynamic cluster (extension of §IV-C): the same Poisson arrival stream
// admitted under the classic and Eq. 7 constraints — node and energy
// savings over time. Run both sequentially and with parallel node
// stepping; the reported metrics are identical, only wall-clock moves.
func BenchmarkDynamicCluster(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			spec := host.Chetemi()
			spec.Cores = 8
			nodes := make([]host.Spec, 6)
			for i := range nodes {
				nodes[i] = spec
			}
			base := experiments.DynamicClusterExperiment{
				Nodes:             nodes,
				ArrivalsPerStep:   1.2,
				MeanLifetimeSteps: 10,
				Steps:             40,
				Seed:              42,
				StepWorkers:       workers,
			}
			var eq7Nodes, classicNodes, eq7kJ, classickJ float64
			for i := 0; i < b.N; i++ {
				e := base
				e.Policy = placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true}
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				eq7Nodes, eq7kJ = r.MeanUsedNodes, r.ActiveEnergyJ/1000
				e.Policy = placement.Policy{Mode: placement.CoreCount, Factor: 1, Memory: true}
				r, err = e.Run()
				if err != nil {
					b.Fatal(err)
				}
				classicNodes, classickJ = r.MeanUsedNodes, r.ActiveEnergyJ/1000
			}
			b.ReportMetric(eq7Nodes, "nodes_eq7")
			b.ReportMetric(classicNodes, "nodes_classic")
			b.ReportMetric(eq7kJ, "energy_eq7_kJ")
			b.ReportMetric(classickJ, "energy_classic_kJ")
		})
	}
}

// Controller overhead — the paper's 5 ms/4 ms measurement, reported per
// stage.
func BenchmarkControllerOverhead(b *testing.B) {
	scaled := experiments.Scale(experiments.Fig7(), benchScale)
	var res *experiments.FreqResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = scaled.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.AvgStep.Microseconds()), "step_µs")
	b.ReportMetric(float64(res.AvgMonitor.Microseconds()), "monitor_µs")
}
