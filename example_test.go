package vfreq_test

import (
	"fmt"
	"log"

	"vfreq"
)

// The smallest possible controlled node: one VM whose template frequency
// becomes a cgroup quota. The guarantee C_i of Eq. 2 is p·F_v/F_max.
func Example() {
	spec := vfreq.Chetemi()
	spec.Cores = 2
	machine, err := vfreq.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := vfreq.NewManager(machine)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Provision("web", vfreq.Small(), nil); err != nil {
		log.Fatal(err)
	}
	ctrl, err := vfreq.NewController(vfreq.NewSimHost(mgr), vfreq.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	machine.Advance(ctrl.Config().PeriodUs)
	if err := ctrl.Step(); err != nil {
		log.Fatal(err)
	}
	st := ctrl.VM("web")
	fmt.Printf("template: %d MHz on a %d MHz node\n", st.Info.FreqMHz, ctrl.Node().MaxFreqMHz)
	fmt.Printf("guarantee C_i: %d µs per %d µs period\n", st.GuaranteeUs, ctrl.Config().PeriodUs)
	// Output:
	// template: 500 MHz on a 2400 MHz node
	// guarantee C_i: 208333 µs per 1000000 µs period
}

// Placement under the paper's Eq. 7: a 3 GHz core hosts three 1 GHz
// vCPUs — the §III-C example.
func ExamplePlace() {
	nodes := []vfreq.PlacementNode{{
		Name: "n", Cores: 1, MaxFreqMHz: 3000, MemoryGB: 8,
		IdleWatts: 100, MaxWatts: 200,
	}}
	var vms []vfreq.PlacementVM
	for i := 0; i < 4; i++ {
		vms = append(vms, vfreq.PlacementVM{
			Name: fmt.Sprintf("vm%d", i), Template: "tiny",
			VCPUs: 1, FreqMHz: 1000, MemoryGB: 1,
		})
	}
	res, err := vfreq.Place(vfreq.BestFit, nodes, vms,
		vfreq.PlacementPolicy{Mode: vfreq.VirtualFrequency, Factor: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d of %d (3 × 1 GHz fit a 3 GHz core)\n",
		len(vms)-len(res.Unplaced), len(vms))
	// Output:
	// placed 3 of 4 (3 × 1 GHz fit a 3 GHz core)
}

// Templates carry the paper's virtual frequency as a first-class
// dimension next to vCPUs and memory.
func ExampleTemplate() {
	for _, tpl := range []vfreq.Template{vfreq.Small(), vfreq.Medium(), vfreq.Large()} {
		fmt.Printf("%-6s %d vCPU @ %4d MHz, %d GB\n",
			tpl.Name, tpl.VCPUs, tpl.FreqMHz, tpl.MemoryGB)
	}
	// Output:
	// small  2 vCPU @  500 MHz, 2 GB
	// medium 4 vCPU @ 1200 MHz, 4 GB
	// large  4 vCPU @ 1800 MHz, 8 GB
}

// A benchmark workload scores itself in runs; the rate is the effective
// frequency (cycles per microsecond = MHz).
func ExampleNewOpenSSL() {
	bench, err := vfreq.NewOpenSSL(1, 2_000_000, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	src := bench.Thread(0)
	now := int64(0)
	for !bench.Done() {
		if src.Demand(now, 1000) == 1 {
			src.Account(now, 1000, 2000) // 1 ms at 2000 MHz
		}
		now += 1000
	}
	for _, run := range bench.Results() {
		fmt.Printf("run %d: %.0f MHz\n", run.Run+1, run.RateMHz())
	}
	// Output:
	// run 1: 2000 MHz
	// run 2: 2000 MHz
}
