// Package vfreq enables dynamic virtual frequency scaling for virtual
// machines, reproducing Cadorel & Rouvoy, "Enabling Dynamic Virtual
// Frequency Scaling for Virtual Machines in the Cloud" (IEEE CLUSTER
// 2022).
//
// The library attaches a virtual frequency (MHz) to each VM template and
// enforces it on the host with a six-stage feedback controller built on
// cgroup CPU bandwidth control: monitor → estimate (trend + triggers) →
// enforce guarantee + credits → auction spare cycles → free distribution
// → apply quotas. A frequency-aware BestFit placer (Eq. 7 of the paper)
// complements the controller at the cluster level.
//
// Two execution platforms are provided behind one interface: a simulated
// host (CFS-like scheduler, cgroup/proc/sys pseudo-filesystems, DVFS and
// an energy model — a faithful stand-in for the paper's Grid'5000 nodes)
// and a real-Linux backend reading /sys/fs/cgroup directly. The
// controller code is identical on both.
//
// Quick start:
//
//	machine, _ := vfreq.NewMachine(vfreq.Chetemi())
//	mgr, _ := vfreq.NewManager(machine)
//	mgr.Provision("web", vfreq.Small(), nil)
//	ctrl, _ := vfreq.NewController(vfreq.NewSimHost(mgr), vfreq.DefaultConfig())
//	for {
//		machine.Advance(1_000_000) // one second of simulated time
//		ctrl.Step()
//	}
//
// See the examples directory for complete programs and the experiments
// API (Fig6 … Fig14, RunPlacementComparison) for the paper's evaluation.
package vfreq

import (
	"vfreq/internal/cluster"
	"vfreq/internal/core"
	"vfreq/internal/energy"
	"vfreq/internal/experiments"
	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// Host machine modelling.
type (
	// MachineSpec describes a physical node's hardware.
	MachineSpec = host.Spec
	// Machine is a running simulated node.
	Machine = host.Machine
	// PowerModel maps utilisation and frequency to power draw.
	PowerModel = energy.PowerModel
)

// NewMachine boots a simulated machine from a spec.
func NewMachine(spec MachineSpec) (*Machine, error) { return host.New(spec) }

// Chetemi returns the paper's Intel evaluation node (Table IV).
func Chetemi() MachineSpec { return host.Chetemi() }

// Chiclet returns the paper's AMD evaluation node (Table IV).
func Chiclet() MachineSpec { return host.Chiclet() }

// Virtual machines.
type (
	// Template is a VM flavour: vCPUs, memory and the paper's virtual
	// frequency.
	Template = vm.Template
	// Instance is a provisioned VM.
	Instance = vm.Instance
	// Manager provisions and tracks instances on one machine.
	Manager = vm.Manager
)

// NewManager creates a VM manager on a machine.
func NewManager(m *Machine) (*Manager, error) { return vm.NewManager(m) }

// Small returns the paper's small template (2 vCPU @ 500 MHz).
func Small() Template { return vm.Small() }

// Medium returns the paper's medium template (4 vCPU @ 1200 MHz).
func Medium() Template { return vm.Medium() }

// Large returns the paper's large template (4 vCPU @ 1800 MHz).
func Large() Template { return vm.Large() }

// Workloads.
type (
	// Workload produces CPU demand for one vCPU thread.
	Workload = workload.Source
	// Bench is a multi-threaded benchmark with run-level scoring.
	Bench = workload.Bench
	// BenchRun is one completed benchmark iteration.
	BenchRun = workload.RunResult
)

// Busy returns a workload that always wants a full core.
func Busy() Workload { return workload.Busy() }

// IdleWorkload returns a workload that never runs.
func IdleWorkload() Workload { return workload.Idle() }

// NewCompress7zip builds a compress-7zip-like benchmark.
func NewCompress7zip(threads int, cyclesPerRun int64, runs int, startUs int64) (*Bench, error) {
	return workload.NewCompress7zip(threads, cyclesPerRun, runs, startUs)
}

// NewOpenSSL builds an openssl-like benchmark.
func NewOpenSSL(threads int, cyclesPerRun int64, runs int, startUs int64) (*Bench, error) {
	return workload.NewOpenSSL(threads, cyclesPerRun, runs, startUs)
}

// WebServer is an interactive workload with Poisson request arrivals.
type WebServer = workload.WebServer

// MapReduce is a two-phase batch workload with a mid-job parallelism drop.
type MapReduce = workload.MapReduce

// NewMapReduce builds a MapReduce job across a VM's worker threads.
func NewMapReduce(threads int, mapCycles int64, reducers int, reduceCycles, shuffleUs, startUs int64) (*MapReduce, error) {
	return workload.NewMapReduce(threads, mapCycles, reducers, reduceCycles, shuffleUs, startUs)
}

// Controller.
type (
	// Config holds the controller tuning knobs.
	Config = core.Config
	// Controller runs the six-stage virtual-frequency control loop.
	Controller = core.Controller
	// StepReport describes one Step's degradation, churn and timings;
	// see Controller.LastReport.
	StepReport = core.StepReport
	// Fault is one recorded host failure inside a Step.
	Fault = core.Fault
	// Host is the platform interface the controller drives.
	Host = platform.Host
	// NodeInfo describes the controlled node.
	NodeInfo = platform.NodeInfo
	// VMInfo describes one hosted VM.
	VMInfo = platform.VMInfo
)

// Crash recovery: versioned checkpoints, atomic persistence, restore.
type (
	// Snapshot is a versioned, round-trippable controller checkpoint.
	Snapshot = core.Snapshot
	// RestoreReport describes what Controller.Restore adopted, cold-
	// started and dropped.
	RestoreReport = core.RestoreReport
	// CheckpointStore persists checkpoints atomically.
	CheckpointStore = platform.Store
	// FileCheckpointStore persists to a real file via write-then-rename.
	FileCheckpointStore = platform.FileStore
	// QuotaReader is the optional Host capability to read live cpu.max
	// quotas back, used for cold-start quota adoption on restore.
	QuotaReader = platform.QuotaReader
)

// ErrNoCheckpoint is returned by CheckpointStore.Load before any save.
var ErrNoCheckpoint = platform.ErrNoCheckpoint

// DecodeSnapshot parses and validates a checkpoint without panicking on
// malformed input.
func DecodeSnapshot(data []byte) (Snapshot, error) { return core.DecodeSnapshot(data) }

// Fault injection: wrap any Host to test controller robustness.
type (
	// FaultyHost injects failures per Host call site.
	FaultyHost = platform.FaultyHost
	// FaultPlan configures when a call site fails.
	FaultPlan = platform.FaultPlan
	// FaultSite names a Host call site.
	FaultSite = platform.FaultSite
)

// WithFaults wraps a host with a reproducible fault injector.
func WithFaults(h Host, seed int64) *FaultyHost { return platform.WithFaults(h, seed) }

// DefaultConfig returns the paper's evaluation configuration (§IV-A1).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewController creates a controller on a platform host.
func NewController(h Host, cfg Config) (*Controller, error) { return core.New(h, cfg) }

// NewSimHost adapts a simulated VM manager to the controller.
func NewSimHost(mgr *Manager) Host { return platform.NewSim(mgr) }

// NewLinuxHost builds the real-Linux backend (requires cgroup v2 and a
// libvirt-style machine.slice). freqs maps VM names to their template
// virtual frequencies.
func NewLinuxHost(freqs map[string]int64) (Host, error) { return platform.NewLinux(freqs) }

// Placement.
type (
	// PlacementNode describes a node available to the placer.
	PlacementNode = placement.NodeSpec
	// PlacementVM describes a VM to place.
	PlacementVM = placement.VMSpec
	// PlacementPolicy selects constraint mode, factor and options.
	PlacementPolicy = placement.Policy
	// PlacementResult is the outcome of a placement run.
	PlacementResult = placement.Result
)

// Placement algorithm and constraint-mode constants.
const (
	FirstFit         = placement.FirstFit
	BestFit          = placement.BestFit
	WorstFit         = placement.WorstFit
	CoreCount        = placement.CoreCount
	VirtualFrequency = placement.VirtualFrequency
)

// Place runs a placement algorithm over nodes and VMs.
func Place(alg placement.Algorithm, nodes []PlacementNode, vms []PlacementVM, p PlacementPolicy) (*PlacementResult, error) {
	return placement.Place(alg, nodes, vms, p)
}

// Experiments: the paper's evaluation, regenerable programmatically.
type (
	// Experiment is a frequency-over-time experiment on one node.
	Experiment = experiments.FreqExperiment
	// ExperimentResult aggregates an experiment's outputs.
	ExperimentResult = experiments.FreqResult
	// Recorder collects named time series.
	Recorder = trace.Recorder
	// Series is one named time series.
	Series = trace.Series
)

// Paper experiment presets (see EXPERIMENTS.md for the full index).
var (
	Fig6  = experiments.Fig6
	Fig7  = experiments.Fig7
	Fig8  = experiments.Fig8
	Fig9  = experiments.Fig9
	Fig10 = experiments.Fig10
	Fig11 = experiments.Fig11
	Fig12 = experiments.Fig12
	Fig13 = experiments.Fig13
	Fig14 = experiments.Fig14
)

// ScaleExperiment shrinks an experiment (work, offsets, duration and the
// controller's time constants) by factor f in (0, 1].
func ScaleExperiment(e Experiment, f float64) Experiment { return experiments.Scale(e, f) }

// RunPlacementComparison reproduces the §IV-C placement evaluation.
func RunPlacementComparison() ([]experiments.PlacementRow, error) {
	return experiments.RunPlacementComparison()
}

// Cluster management: multi-node orchestration with frequency-aware
// admission (Eq. 7), per-node controllers, migration and energy
// accounting — the paper's §III-C/§V direction.
type (
	// Cluster manages a set of virtual-frequency-controlled nodes.
	Cluster = cluster.Cluster
	// ClusterConfig tunes admission policy and per-node controllers.
	ClusterConfig = cluster.Config
	// ClusterNode is one managed machine.
	ClusterNode = cluster.Node
	// ClusterHealth aggregates per-node degradation after a Step.
	ClusterHealth = cluster.Health
)

// NewCluster boots one simulated machine per spec under one manager.
func NewCluster(specs []MachineSpec, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(specs, cfg)
}
