package experiments

import (
	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/vm"
)

// Work sizing for the full-fidelity runs. One compress-7zip iteration is
// 140 G cycles per thread: ≈58 s at 2.4 GHz, so that (as in the paper's
// Figs. 6/7) the small instances complete about three uncontended
// iterations before the large instances start at t = 200 s. The openssl
// workload of the medium instances is one 600 G-cycle batch per thread:
// it bursts at 2.4 GHz until the large instances start, then grinds at
// its 1.2 GHz guarantee and completes around t = 500 s, releasing its
// cycles, as in Fig. 13.
const (
	compressCyclesPerRun = 140_000_000_000
	compressRuns         = 15
	opensslCycles        = 600_000_000_000

	// Durations: the frequency figures show a ~700 s window; the
	// efficiency figures need all 15 iterations to finish.
	freqWindowUs       = 700_000_000
	efficiencyWindowUs = 2_500_000_000
	largeStartUs       = 200_000_000
	mediumStartUs      = 100_000_000
	// staggerUs spreads the manual workload launches inside a class by
	// 1 s per instance, as hand-started benchmarks naturally are.
	staggerUs = 1_000_000
	// dipUs is the compress benchmark's 2 s synchronisation pause
	// between iterations.
	dipUs = 2_000_000
)

// Table2Classes is the paper's Table II: the workload deployed on chetemi.
func Table2Classes() []Class {
	return []Class{
		{Template: vm.Small(), Count: 20, Kind: Compress, StartUs: 0,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
		{Template: vm.Large(), Count: 10, Kind: Compress, StartUs: largeStartUs,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
	}
}

// Table3Classes is the paper's Table III: the workload deployed on
// chiclet.
func Table3Classes() []Class {
	return []Class{
		{Template: vm.Small(), Count: 32, Kind: Compress, StartUs: 0,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
		{Template: vm.Large(), Count: 16, Kind: Compress, StartUs: largeStartUs,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
	}
}

// Table5Classes is the paper's Table V: the heterogeneous second
// evaluation on chetemi.
func Table5Classes() []Class {
	return []Class{
		{Template: vm.Small(), Count: 14, Kind: Compress, StartUs: 0,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
		{Template: vm.Medium(), Count: 8, Kind: OpenSSL, StartUs: mediumStartUs,
			Runs: 1, CyclesPerRun: opensslCycles, StaggerUs: staggerUs},
		{Template: vm.Large(), Count: 6, Kind: Compress, StartUs: largeStartUs,
			Runs: compressRuns, CyclesPerRun: compressCyclesPerRun, StaggerUs: staggerUs, DipUs: dipUs},
	}
}

// Fig6 reproduces Fig. 6: chetemi, execution A (no control).
func Fig6() FreqExperiment {
	return FreqExperiment{Node: host.Chetemi(), Classes: Table2Classes(),
		Controlled: false, DurationUs: freqWindowUs}
}

// Fig7 reproduces Fig. 7: chetemi, execution B (controller enabled).
func Fig7() FreqExperiment {
	return FreqExperiment{Node: host.Chetemi(), Classes: Table2Classes(),
		Controlled: true, DurationUs: freqWindowUs}
}

// Fig8 reproduces Fig. 8: chiclet, execution A.
func Fig8() FreqExperiment {
	return FreqExperiment{Node: host.Chiclet(), Classes: Table3Classes(),
		Controlled: false, DurationUs: freqWindowUs}
}

// Fig9 reproduces Fig. 9: chiclet, execution B.
func Fig9() FreqExperiment {
	return FreqExperiment{Node: host.Chiclet(), Classes: Table3Classes(),
		Controlled: true, DurationUs: freqWindowUs}
}

// Fig10 reproduces Fig. 10: compression efficiency of the small instances
// on chetemi, both executions run to benchmark completion.
func Fig10() (execA, execB FreqExperiment) {
	execA = FreqExperiment{Node: host.Chetemi(), Classes: Table2Classes(),
		Controlled: false, DurationUs: efficiencyWindowUs}
	execB = execA
	execB.Controlled = true
	return execA, execB
}

// Fig11 reproduces Fig. 11: compression efficiency on chiclet.
func Fig11() (execA, execB FreqExperiment) {
	execA = FreqExperiment{Node: host.Chiclet(), Classes: Table3Classes(),
		Controlled: false, DurationUs: efficiencyWindowUs}
	execB = execA
	execB.Controlled = true
	return execA, execB
}

// Fig12 reproduces Fig. 12: second evaluation on chetemi, execution A.
func Fig12() FreqExperiment {
	return FreqExperiment{Node: host.Chetemi(), Classes: Table5Classes(),
		Controlled: false, DurationUs: freqWindowUs}
}

// Fig13 reproduces Fig. 13: second evaluation, execution B.
func Fig13() FreqExperiment {
	return FreqExperiment{Node: host.Chetemi(), Classes: Table5Classes(),
		Controlled: true, DurationUs: freqWindowUs}
}

// Fig14 reproduces Fig. 14: compression efficiency of the small instances
// in the second evaluation, both executions.
func Fig14() (execA, execB FreqExperiment) {
	execA = FreqExperiment{Node: host.Chetemi(), Classes: Table5Classes(),
		Controlled: false, DurationUs: efficiencyWindowUs}
	execB = execA
	execB.Controlled = true
	return execA, execB
}

// Scale shrinks an experiment by the given factor (0 < f ≤ 1): benchmark
// work, start offsets, duration AND the controller's time constants
// (control period, cgroup bandwidth period, auction window, minimum
// quota) all scale together. Scaling every clock in the system preserves
// the full experiment's dynamics — convergence transients occupy the same
// fraction of a benchmark run — at a fraction of the simulation cost.
// Used by tests and the bench harness.
func Scale(e FreqExperiment, f float64) FreqExperiment {
	if f <= 0 || f > 1 {
		return e
	}
	out := e
	out.DurationUs = int64(float64(e.DurationUs) * f)
	out.Classes = make([]Class, len(e.Classes))
	for i, cl := range e.Classes {
		cl.StartUs = int64(float64(cl.StartUs) * f)
		cl.StaggerUs = int64(float64(cl.StaggerUs) * f)
		cl.DipUs = int64(float64(cl.DipUs) * f)
		cl.CyclesPerRun = int64(float64(cl.CyclesPerRun) * f)
		out.Classes[i] = cl
	}
	cfg := e.Config
	if cfg.PeriodUs == 0 {
		cfg = core.DefaultConfig()
	}
	scaleDur := func(d int64, floor int64) int64 {
		d = int64(float64(d) * f)
		if d < floor {
			d = floor
		}
		return d
	}
	cfg.PeriodUs = scaleDur(cfg.PeriodUs, 10_000)
	cfg.CgroupPeriodUs = scaleDur(cfg.CgroupPeriodUs, 10_000)
	cfg.WindowUs = scaleDur(cfg.WindowUs, 100)
	cfg.MinQuotaUs = scaleDur(cfg.MinQuotaUs, 10)
	if cfg.CgroupPeriodUs > cfg.PeriodUs {
		cfg.CgroupPeriodUs = cfg.PeriodUs
	}
	out.Config = cfg
	// Keep the scheduler tick no coarser than the cgroup period so
	// bandwidth windows stay meaningful.
	if out.TickUs == 0 || out.TickUs > cfg.CgroupPeriodUs {
		out.TickUs = cfg.CgroupPeriodUs
	}
	return out
}
