package experiments

import (
	"fmt"

	"vfreq/internal/placement"
)

// PlacementRow is one line of the §IV-C comparison.
type PlacementRow struct {
	Label              string
	Algorithm          placement.Algorithm
	Policy             placement.Policy
	UsedNodes          int
	Unplaced           int
	MaxLargePerChiclet int
	MaxSmallPerChetemi int
	IdleSavingsWatts   float64
	ActiveWatts        float64
}

// PaperCluster returns the §IV-C infrastructure: 12 chetemi and 10
// chiclet nodes.
func PaperCluster() []placement.NodeSpec {
	var nodes []placement.NodeSpec
	for i := 0; i < 12; i++ {
		nodes = append(nodes, placement.NodeSpec{
			Name: "chetemi", Cores: 40, MaxFreqMHz: 2400, MemoryGB: 256,
			IdleWatts: 97, MaxWatts: 220,
		})
	}
	for i := 0; i < 10; i++ {
		nodes = append(nodes, placement.NodeSpec{
			Name: "chiclet", Cores: 64, MaxFreqMHz: 2400, MemoryGB: 128,
			IdleWatts: 110, MaxWatts: 190,
		})
	}
	return nodes
}

// PaperWorkload returns the §IV-C workload: 250 small, 50 medium and 100
// large VMs.
func PaperWorkload() []placement.VMSpec {
	var vms []placement.VMSpec
	add := func(tpl string, n, vcpus int, freq int64, mem int) {
		for i := 0; i < n; i++ {
			vms = append(vms, placement.VMSpec{
				Name:     fmt.Sprintf("%s-%03d", tpl, i),
				Template: tpl, VCPUs: vcpus, FreqMHz: freq, MemoryGB: mem,
			})
		}
	}
	add("small", 250, 2, 500, 2)
	add("medium", 50, 4, 1200, 4)
	add("large", 100, 4, 1800, 8)
	return vms
}

// RunPlacementComparison reproduces the §IV-C evaluation: BestFit under
// the classic constraint, under Eq. 7, and under a ×1.8 consolidation
// factor, plus the stricter per-core splitting variant.
func RunPlacementComparison() ([]PlacementRow, error) {
	nodes := PaperCluster()
	cases := []struct {
		label  string
		alg    placement.Algorithm
		policy placement.Policy
	}{
		{"BestFit / vCPU-count (classic)", placement.BestFit,
			placement.Policy{Mode: placement.CoreCount, Factor: 1}},
		{"BestFit / virtual frequency (Eq. 7)", placement.BestFit,
			placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true}},
		{"BestFit / vCPU-count ×1.8 consolidation", placement.BestFit,
			placement.Policy{Mode: placement.CoreCount, Factor: 1.8}},
		{"BestFit / Eq. 7 + per-core splitting", placement.BestFit,
			placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true, CoreSplitting: true}},
		{"FirstFit / virtual frequency (Eq. 7)", placement.FirstFit,
			placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true}},
	}
	var rows []PlacementRow
	for _, c := range cases {
		res, err := placement.Place(c.alg, nodes, PaperWorkload(), c.policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", c.label, err)
		}
		rows = append(rows, PlacementRow{
			Label:              c.label,
			Algorithm:          c.alg,
			Policy:             c.policy,
			UsedNodes:          res.UsedNodes(),
			Unplaced:           len(res.Unplaced),
			MaxLargePerChiclet: res.MaxPerNode("chiclet", "large"),
			MaxSmallPerChetemi: res.MaxPerNode("chetemi", "small"),
			IdleSavingsWatts:   res.IdlePowerSavingsWatts(),
			ActiveWatts:        res.ActivePowerWatts(),
		})
	}
	return rows, nil
}
