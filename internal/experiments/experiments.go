// Package experiments reproduces the paper's evaluation: every figure and
// table of Section IV is backed by a runner here. Frequency experiments
// (Figs. 6–9, 12–13) co-host VM classes on a simulated node and record the
// per-class mean virtual frequency over time, with the controller either
// enabled (execution B) or in monitoring-only mode (execution A).
// Benchmark-efficiency experiments (Figs. 10, 11, 14) report the per-run
// rates of the compress workload. The CFS-sharing experiments a)/b), the
// placement comparison (§IV-C) and the controller-overhead measurement
// round out the set.
package experiments

import (
	"fmt"
	"time"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// BenchKind selects the synthetic benchmark a class runs.
type BenchKind string

const (
	Compress BenchKind = "compress-7zip"
	OpenSSL  BenchKind = "openssl"
	IdleLoad BenchKind = "idle"
)

// Class describes one set of identical VM instances in an experiment
// (one row of the paper's Tables II, III and V).
type Class struct {
	Template     vm.Template
	Count        int
	Kind         BenchKind
	StartUs      int64 // when the class's workload begins
	Runs         int   // benchmark iterations
	CyclesPerRun int64 // work per thread per iteration
	// StaggerUs offsets instance k's start by k·StaggerUs, modelling
	// the natural de-synchronisation of real benchmark launches (the
	// paper starts workloads by hand across tens of VMs).
	StaggerUs int64
	// DipUs is the inter-run synchronisation pause of the compress
	// benchmark (0 for none). Scale() shrinks it with the run length.
	DipUs int64
}

// FreqExperiment is a frequency-over-time experiment on one node.
type FreqExperiment struct {
	Node       host.Spec
	Classes    []Class
	Controlled bool // true = execution B, false = execution A
	DurationUs int64
	TickUs     int64       // scheduler tick; 0 = host default
	Config     core.Config // zero value = DefaultConfig
	// Metrics, when non-nil, receives the controller's per-stage
	// latency histograms and fault/degradation counters for the run.
	Metrics *metrics.Registry
}

// FreqResult aggregates an experiment's outputs.
type FreqResult struct {
	// Rec holds one series per class with the ground-truth mean vCPU
	// frequency (MHz) sampled every control period, plus "<class>:est"
	// series with the controller's own monitored estimate.
	Rec *trace.Recorder
	// Benches maps class name to the benchmark of every instance.
	Benches map[string][]*workload.Bench
	// AvgCoreVarMHz is the mean per-step variance of core frequencies,
	// the statistic the paper reports (16–150 MHz²).
	AvgCoreVarMHz float64
	// AvgStep and AvgMonitor are the mean wall-clock controller
	// iteration and monitoring-stage costs (the paper's 5 ms / 4 ms).
	AvgStep, AvgMonitor time.Duration
	// EnergyJoules is the node's consumed energy over the experiment.
	EnergyJoules float64
	// SLAViolations maps class name to the fraction of
	// (instance, period) samples in which the instance had pending
	// benchmark work yet attained less than 95 % of its template
	// frequency — the paper's predictability argument quantified.
	SLAViolations map[string]float64
	// Controller exposes the final controller state.
	Controller *core.Controller
	// Manager exposes the VM manager for further inspection.
	Manager *vm.Manager
}

// instance bundles a provisioned VM with its class and bench.
type instance struct {
	class string
	inst  *vm.Instance
	bench *workload.Bench
}

// Run executes the experiment.
func (e FreqExperiment) Run() (*FreqResult, error) {
	if e.DurationUs <= 0 {
		return nil, fmt.Errorf("experiments: duration must be positive")
	}
	if len(e.Classes) == 0 {
		return nil, fmt.Errorf("experiments: no classes")
	}
	machine, err := host.New(e.Node)
	if err != nil {
		return nil, err
	}
	if e.TickUs > 0 {
		machine.TickUs = e.TickUs
	}
	mgr, err := vm.NewManager(machine)
	if err != nil {
		return nil, err
	}
	cfg := e.Config
	if cfg.PeriodUs == 0 {
		cfg = core.DefaultConfig()
	}
	cfg.ControlEnabled = e.Controlled

	res := &FreqResult{
		Rec:           trace.NewRecorder(),
		Benches:       map[string][]*workload.Bench{},
		Manager:       mgr,
		SLAViolations: map[string]float64{},
	}
	var insts []instance
	for _, cl := range e.Classes {
		for k := 0; k < cl.Count; k++ {
			name := fmt.Sprintf("%s-%02d", cl.Template.Name, k)
			start := cl.StartUs + int64(k)*cl.StaggerUs
			var srcs []workload.Source
			var bench *workload.Bench
			switch cl.Kind {
			case Compress:
				bench, err = workload.NewBench(string(Compress), cl.Template.VCPUs, cl.CyclesPerRun, cl.Runs, start, cl.DipUs)
			case OpenSSL:
				bench, err = workload.NewOpenSSL(cl.Template.VCPUs, cl.CyclesPerRun, cl.Runs, start)
			case IdleLoad:
				bench = nil
			default:
				return nil, fmt.Errorf("experiments: unknown bench kind %q", cl.Kind)
			}
			if err != nil {
				return nil, err
			}
			if bench != nil {
				srcs = bench.Sources()
				res.Benches[cl.Template.Name] = append(res.Benches[cl.Template.Name], bench)
			}
			inst, err := mgr.Provision(name, cl.Template, srcs)
			if err != nil {
				return nil, err
			}
			insts = append(insts, instance{class: cl.Template.Name, inst: inst, bench: bench})
		}
	}

	ctrl, err := core.New(platform.NewSim(mgr), cfg)
	if err != nil {
		return nil, err
	}
	if e.Metrics != nil {
		ctrl.ArmMetrics(e.Metrics)
	}
	res.Controller = ctrl

	period := cfg.PeriodUs
	steps := int(e.DurationUs / period)
	var varSum float64
	var stepSum, monSum time.Duration
	slaSamples := map[string]int{}
	slaViolated := map[string]int{}
	snaps := make([][]int64, len(insts))
	for s := 0; s < steps; s++ {
		for i := range insts {
			snaps[i] = insts[i].inst.SnapshotCycles()
		}
		machine.Advance(period)
		if err := ctrl.Step(); err != nil {
			return nil, err
		}
		tm := ctrl.LastTimings()
		stepSum += tm.Total
		monSum += tm.Monitor
		varSum += machine.DVFS.VarianceMHz()

		tSec := float64(machine.NowUs()) / 1e6
		// Ground-truth per-class mean frequency, plus SLA accounting
		// for instances with pending work.
		classSum := map[string]float64{}
		classN := map[string]int{}
		for i := range insts {
			f := insts[i].inst.MeanVCPUFreqMHz(snaps[i], period)
			classSum[insts[i].class] += f
			classN[insts[i].class]++
			if b := insts[i].bench; b != nil && b.Running(machine.NowUs()-period) {
				slaSamples[insts[i].class]++
				if f < 0.95*float64(insts[i].inst.Template().FreqMHz) {
					slaViolated[insts[i].class]++
				}
			}
		}
		for _, cl := range e.Classes {
			n := classN[cl.Template.Name]
			if n == 0 {
				continue
			}
			res.Rec.Record(cl.Template.Name, tSec, classSum[cl.Template.Name]/float64(n))
		}
		// Controller-monitored estimates.
		estSum := map[string]float64{}
		estN := map[string]int{}
		for _, st := range ctrl.VMs() {
			class := classOf(st.Info.Name)
			for _, v := range st.VCPUs {
				estSum[class] += v.FreqMHz
				estN[class]++
			}
		}
		for _, cl := range e.Classes {
			if n := estN[cl.Template.Name]; n > 0 {
				res.Rec.Record(cl.Template.Name+":est", tSec, estSum[cl.Template.Name]/float64(n))
			}
		}
	}
	if steps > 0 {
		res.AvgCoreVarMHz = varSum / float64(steps)
		res.AvgStep = stepSum / time.Duration(steps)
		res.AvgMonitor = monSum / time.Duration(steps)
	}
	res.EnergyJoules = machine.Meter.Joules()
	for class, n := range slaSamples {
		if n > 0 {
			res.SLAViolations[class] = float64(slaViolated[class]) / float64(n)
		}
	}
	return res, nil
}

// classOf strips the "-NN" instance suffix.
func classOf(instanceName string) string {
	for i := len(instanceName) - 1; i >= 0; i-- {
		if instanceName[i] == '-' {
			return instanceName[:i]
		}
	}
	return instanceName
}

// MeanRateByClass returns the mean benchmark rate (MHz) per run index,
// averaged over a class's instances — the data behind Figs. 10/11/14.
func (r *FreqResult) MeanRateByClass(class string) []float64 {
	benches := r.Benches[class]
	if len(benches) == 0 {
		return nil
	}
	maxRuns := 0
	for _, b := range benches {
		if n := len(b.Results()); n > maxRuns {
			maxRuns = n
		}
	}
	out := make([]float64, maxRuns)
	for run := 0; run < maxRuns; run++ {
		var sum float64
		n := 0
		for _, b := range benches {
			res := b.Results()
			if run < len(res) {
				sum += res[run].RateMHz()
				n++
			}
		}
		if n > 0 {
			out[run] = sum / float64(n)
		}
	}
	return out
}
