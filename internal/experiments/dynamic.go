package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vfreq/internal/cluster"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/placement"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// DynamicClusterExperiment extends the paper's static §IV-C comparison to
// a dynamic setting: VMs arrive as a Poisson process with exponential
// lifetimes and are admitted under a policy; idle nodes are powered off.
// It quantifies the conclusion's energy argument — frequency-aware
// admission packs the same workload on fewer powered nodes over time.
type DynamicClusterExperiment struct {
	Nodes []host.Spec
	// Policy is the admission constraint under test.
	Policy placement.Policy
	// ArrivalsPerStep is the mean number of VM arrivals per control
	// period.
	ArrivalsPerStep float64
	// MeanLifetimeSteps is the mean VM lifetime in control periods.
	MeanLifetimeSteps float64
	// Steps is the experiment length in control periods.
	Steps int
	// Seed makes the arrival process reproducible.
	Seed int64
	// FailThreshold enables node-failure detection and evacuation (see
	// cluster.Config.FailThreshold); 0 disables it.
	FailThreshold int
	// StepWorkers sizes the cluster's persistent step worker pool (see
	// cluster.Config.StepWorkers): 0 picks GOMAXPROCS, 1 steps serially.
	// Results are bit-identical at any setting; only wall-clock moves.
	StepWorkers int
	// RebalanceEvery sweeps overloaded nodes every that many steps
	// (0 = never): VMs are live-migrated off Eq. 7-infeasible nodes,
	// carrying their controller state to the target. Stranded VMs stay
	// put and are retried on the next sweep.
	RebalanceEvery int
	// Metrics, when non-nil, receives the cluster and per-node
	// controller series for the run.
	Metrics *metrics.Registry
}

// DynamicResult summarises a dynamic run.
type DynamicResult struct {
	Deployed        int
	Rejected        int
	Completed       int
	MeanUsedNodes   float64
	PeakUsedNodes   int
	ActiveEnergyJ   float64
	AlwaysOnEnergyJ float64
	Migrations      int
	// Rebalanced counts VMs moved by the periodic RebalanceEvery sweeps
	// (also included in Migrations).
	Rebalanced int
	// DegradedVCPUSteps sums the degraded-vCPU count over all steps (a
	// vCPU degraded for k periods contributes k) and Faults the recorded
	// host faults — both zero on a healthy cluster.
	DegradedVCPUSteps int
	Faults            int
	// NodeFailureSteps counts steps during which at least one node was
	// unreachable; the run continues, since the cluster isolates node
	// failures and (with FailThreshold set) evacuates the failed nodes.
	NodeFailureSteps int
	// Evacuations counts VMs moved off failed nodes, StrandedVMSteps
	// the per-step sum of VMs stuck on a failed node with no target.
	Evacuations     int
	StrandedVMSteps int
	// MeanStepUs and MaxStepUs record the wall time of cluster Steps —
	// the decision-latency figure the worker pool and placement index
	// exist to bound. They vary run to run; everything else is seeded.
	MeanStepUs float64
	MaxStepUs  int64
}

// Run executes the experiment.
func (e DynamicClusterExperiment) Run() (*DynamicResult, error) {
	if e.Steps <= 0 || e.ArrivalsPerStep <= 0 || e.MeanLifetimeSteps <= 0 {
		return nil, fmt.Errorf("experiments: dynamic run needs positive steps, arrivals and lifetime")
	}
	cl, err := cluster.New(e.Nodes, cluster.Config{
		Policy:        e.Policy,
		FailThreshold: e.FailThreshold,
		StepWorkers:   e.StepWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if e.Metrics != nil {
		cl.ArmMetrics(e.Metrics)
	}
	rng := rand.New(rand.NewSource(e.Seed))
	templates := []vm.Template{vm.Small(), vm.Medium(), vm.Large()}
	type liveVM struct {
		name  string
		until int
	}
	var live []liveVM
	res := &DynamicResult{}
	nextID := 0
	var usedSum, stepUsSum int64
	for step := 0; step < e.Steps; step++ {
		// Departures first.
		kept := live[:0]
		for _, v := range live {
			if step >= v.until {
				if err := cl.Undeploy(v.name); err != nil {
					return nil, err
				}
				res.Completed++
				continue
			}
			kept = append(kept, v)
		}
		live = kept
		// Poisson arrivals.
		n := poissonDraw(rng, e.ArrivalsPerStep)
		for k := 0; k < n; k++ {
			tpl := templates[rng.Intn(len(templates))]
			name := fmt.Sprintf("vm-%05d", nextID)
			nextID++
			srcs := make([]workload.Source, tpl.VCPUs)
			for i := range srcs {
				srcs[i] = workload.Busy()
			}
			if _, err := cl.Deploy(name, tpl, srcs); err != nil {
				res.Rejected++
				continue
			}
			res.Deployed++
			life := int(rng.ExpFloat64()*e.MeanLifetimeSteps) + 1
			live = append(live, liveVM{name: name, until: step + life})
		}
		if e.RebalanceEvery > 0 && step > 0 && step%e.RebalanceEvery == 0 {
			// Stranded VMs are reported through StrandedVMSteps; the
			// sweep itself continues past them.
			moved, _ := cl.Rebalance()
			res.Rebalanced += moved
		}
		start := time.Now()
		err := cl.Step()
		stepUs := time.Since(start).Microseconds()
		stepUsSum += stepUs
		if stepUs > res.MaxStepUs {
			res.MaxStepUs = stepUs
		}
		if err != nil {
			// Node failures are isolated by the cluster: the surviving
			// nodes were stepped and (with FailThreshold set) the failed
			// ones are being evacuated, so the run continues.
			res.NodeFailureSteps++
		}
		h := cl.Health()
		res.DegradedVCPUSteps += h.DegradedVCPUs
		res.Faults += h.Faults
		res.StrandedVMSteps += h.StrandedVMs
		used := cl.UsedNodes()
		usedSum += int64(used)
		if used > res.PeakUsedNodes {
			res.PeakUsedNodes = used
		}
	}
	res.MeanUsedNodes = float64(usedSum) / float64(e.Steps)
	res.MeanStepUs = float64(stepUsSum) / float64(e.Steps)
	res.ActiveEnergyJ = cl.ActiveEnergyJoules()
	res.AlwaysOnEnergyJ = cl.TotalEnergyJoules()
	res.Migrations = cl.Migrations()
	res.Evacuations = cl.Evacuations()
	return res, nil
}

// poissonDraw samples a Poisson variate (Knuth's method).
func poissonDraw(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := 1.0
	threshold := math.Exp(-mean)
	k := 0
	for {
		l *= rng.Float64()
		if l <= threshold {
			return k
		}
		k++
		if k > 1_000 {
			return k
		}
	}
}
