package experiments

import (
	"fmt"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// CFSResult reports the outcome of the paper's two CFS-sharing probe
// experiments (§IV-A2).
type CFSResult struct {
	// Spread is max/min per-vCPU usage across all vCPUs.
	Spread float64
	// OneVCPUShare is the fraction of total CPU time received by the
	// 1-vCPU VMs (experiment b only; 0 otherwise).
	OneVCPUShare float64
}

// CFSExperimentA runs the paper's experiment a): 20 saturated VMs with 4
// vCPUs each on chetemi, no controller. Expected: all vCPUs run at the
// same speed (spread ≈ 1).
func CFSExperimentA(durationUs int64) (*CFSResult, error) {
	machine, err := host.New(host.Chetemi())
	if err != nil {
		return nil, err
	}
	mgr, err := vm.NewManager(machine)
	if err != nil {
		return nil, err
	}
	tpl := vm.Template{Name: "quad", VCPUs: 4, FreqMHz: 2400, MemoryGB: 4}
	var insts []*vm.Instance
	for i := 0; i < 20; i++ {
		srcs := []workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()}
		inst, err := mgr.Provision(fmt.Sprintf("quad-%02d", i), tpl, srcs)
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)
	}
	machine.Advance(durationUs)
	var min, max int64 = 1 << 62, 0
	for _, inst := range insts {
		for j := 0; j < 4; j++ {
			u := inst.VCPUThread(j).UsageUs
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
	}
	if min == 0 {
		return nil, fmt.Errorf("experiments: a vCPU never ran")
	}
	return &CFSResult{Spread: float64(max) / float64(min)}, nil
}

// CFSExperimentB runs the paper's experiment b): 40 VMs with 1 vCPU and 10
// VMs with 4 vCPUs, all saturated, on chetemi. Expected: the 1-vCPU VMs
// receive 4/5 of the resources because CFS shares per VM, not per vCPU.
func CFSExperimentB(durationUs int64) (*CFSResult, error) {
	machine, err := host.New(host.Chetemi())
	if err != nil {
		return nil, err
	}
	mgr, err := vm.NewManager(machine)
	if err != nil {
		return nil, err
	}
	uni := vm.Template{Name: "uni", VCPUs: 1, FreqMHz: 2400, MemoryGB: 1}
	quad := vm.Template{Name: "quad", VCPUs: 4, FreqMHz: 2400, MemoryGB: 4}
	var ones, fours []*vm.Instance
	for i := 0; i < 40; i++ {
		inst, err := mgr.Provision(fmt.Sprintf("uni-%02d", i), uni,
			[]workload.Source{workload.Busy()})
		if err != nil {
			return nil, err
		}
		ones = append(ones, inst)
	}
	for i := 0; i < 10; i++ {
		srcs := []workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()}
		inst, err := mgr.Provision(fmt.Sprintf("quad-%02d", i), quad, srcs)
		if err != nil {
			return nil, err
		}
		fours = append(fours, inst)
	}
	machine.Advance(durationUs)
	var oneTot, fourTot int64
	for _, inst := range ones {
		oneTot += inst.VCPUThread(0).UsageUs
	}
	for _, inst := range fours {
		for j := 0; j < 4; j++ {
			fourTot += inst.VCPUThread(j).UsageUs
		}
	}
	if oneTot+fourTot == 0 {
		return nil, fmt.Errorf("experiments: nothing ran")
	}
	return &CFSResult{
		OneVCPUShare: float64(oneTot) / float64(oneTot+fourTot),
	}, nil
}
