package experiments

import (
	"strings"
	"testing"
)

func TestFig3IncreaseBehaviour(t *testing.T) {
	rec, err := Fig3Case().Run()
	if err != nil {
		t.Fatal(err)
	}
	cons := rec.Series("consumption")
	cap := rec.Series("capping")
	if cons == nil || cap == nil {
		t.Fatal("missing series")
	}
	// The capping always admits the rising demand eventually: by the
	// end both sit at the full core.
	last := cap.Values[cap.Len()-1]
	if last < 999 { // kcycles
		t.Fatalf("final cap = %.0f kcycles, want ≈1000 (full core)", last)
	}
	// Somewhere along the ramp the cap at least doubles in one step
	// (the increase factor).
	doubled := false
	for i := 1; i < cap.Len(); i++ {
		if cap.Values[i] >= 1.9*cap.Values[i-1] {
			doubled = true
			break
		}
	}
	if !doubled {
		t.Fatal("increase factor never produced a doubling step")
	}
}

func TestFig4DecreaseBehaviour(t *testing.T) {
	rec, err := Fig4Case().Run()
	if err != nil {
		t.Fatal(err)
	}
	cons := rec.Series("consumption")
	cap := rec.Series("capping")
	// The capping never cuts below what the workload consumed (no
	// starvation during the ramp-down) and ends close to the floor.
	for i := 0; i < cons.Len(); i++ {
		if cap.Values[i] < cons.Values[i]-1 {
			t.Fatalf("iteration %d: cap %.0f below consumption %.0f",
				i, cap.Values[i], cons.Values[i])
		}
	}
	last := cap.Values[cap.Len()-1]
	if last > 150 { // consumption floor is 100 kcycles
		t.Fatalf("final cap = %.0f kcycles, want near the 100 kcycle floor", last)
	}
}

func TestFig5StableBehaviour(t *testing.T) {
	rec, err := Fig5Case().Run()
	if err != nil {
		t.Fatal(err)
	}
	cons := rec.Series("consumption")
	cap := rec.Series("capping")
	// After settling, the cap sits just above the ~600 kcycle
	// consumption: above it, but within ~10 %.
	for i := 3; i < cap.Len(); i++ {
		ratio := cap.Values[i] / cons.Values[i]
		if ratio < 1.0 || ratio > 1.12 {
			t.Fatalf("iteration %d: cap/consumption = %.3f, want (1.00, 1.12]", i, ratio)
		}
	}
}

func TestEstimatorFigureRenders(t *testing.T) {
	out, err := EstimatorFigure(Fig5Case(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "capping") || !strings.Contains(out, "consumption") {
		t.Fatalf("chart incomplete:\n%s", out)
	}
}
