package experiments

import (
	"fmt"

	"vfreq/internal/core"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
)

// EstimatorCase reproduces the paper's Figs. 3–5: one vCPU fed a scripted
// consumption pattern, recording consumption u and capping c over the
// iterations so the increase / decrease / stable behaviours are visible.
type EstimatorCase struct {
	Name    string
	Pattern []int64 // consumption per period, µs
}

// Fig3Case: rising consumption crosses the increase trigger; the capping
// doubles ahead of demand.
func Fig3Case() EstimatorCase {
	return EstimatorCase{
		Name: "fig3-increase",
		Pattern: []int64{
			100_000, 120_000, 150_000, 190_000, 240_000,
			310_000, 400_000, 520_000, 680_000, 900_000, 1_000_000, 1_000_000,
		},
	}
}

// Fig4Case: falling consumption crosses the decrease trigger; the capping
// follows gently (5 % steps).
func Fig4Case() EstimatorCase {
	return EstimatorCase{
		Name: "fig4-decrease",
		Pattern: []int64{
			900_000, 900_000, 900_000, 700_000, 500_000,
			350_000, 250_000, 180_000, 130_000, 100_000, 100_000, 100_000,
		},
	}
}

// Fig5Case: stable consumption; the capping recalibrates just above it.
func Fig5Case() EstimatorCase {
	return EstimatorCase{
		Name: "fig5-stable",
		Pattern: []int64{
			600_000, 600_000, 605_000, 600_000, 598_000,
			600_000, 602_000, 600_000, 600_000, 600_000,
		},
	}
}

// scriptedHost feeds the pattern to a controller.
type scriptedHost struct {
	node  platform.NodeInfo
	usage int64
}

func (s *scriptedHost) Node() platform.NodeInfo { return s.node }
func (s *scriptedHost) ListVMs() ([]platform.VMInfo, error) {
	return []platform.VMInfo{{Name: "v", VCPUs: 1, FreqMHz: s.node.MaxFreqMHz}}, nil
}
func (s *scriptedHost) UsageUs(string, int) (int64, error)     { return s.usage, nil }
func (s *scriptedHost) SetMax(string, int, int64, int64) error { return nil }
func (s *scriptedHost) ClearMax(string, int) error             { return nil }
func (s *scriptedHost) SetBurst(string, int, int64) error      { return nil }
func (s *scriptedHost) ThreadID(string, int) (int, error)      { return 1, nil }
func (s *scriptedHost) LastCPU(int) (int, error)               { return 0, nil }
func (s *scriptedHost) CoreFreqMHz(int) (int64, error)         { return s.node.MaxFreqMHz, nil }

// Run executes the case and returns a recorder with "consumption" and
// "capping" series (µs per period over iterations).
func (ec EstimatorCase) Run() (*trace.Recorder, error) {
	h := &scriptedHost{node: platform.NodeInfo{Name: "est", Cores: 1, MaxFreqMHz: 2400}}
	ctrl, err := core.New(h, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := ctrl.Step(); err != nil { // warm-up
		return nil, err
	}
	rec := trace.NewRecorder()
	for i, u := range ec.Pattern {
		// The vCPU cannot consume beyond its applied cap.
		cap := ctrl.VM("v").VCPUs[0].CapUs
		if u > cap {
			u = cap
		}
		h.usage += u
		if err := ctrl.Step(); err != nil {
			return nil, err
		}
		rec.Record("consumption", float64(i), float64(u)/1000)
		rec.Record("capping", float64(i), float64(ctrl.VM("v").VCPUs[0].CapUs)/1000)
	}
	return rec, nil
}

// EstimatorFigure renders a case as an ASCII chart.
func EstimatorFigure(ec EstimatorCase, width int) (string, error) {
	rec, err := ec.Run()
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("%s — consumption vs capping (kcycles per period)", ec.Name)
	return rec.Chart(title, []string{"consumption", "capping"}, width, 12), nil
}
