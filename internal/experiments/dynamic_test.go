package experiments

import (
	"math/rand"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/placement"
)

func smallCluster() []host.Spec {
	spec := host.Chetemi()
	spec.Cores = 8 // 19200 MHz per node
	var nodes []host.Spec
	for i := 0; i < 4; i++ {
		nodes = append(nodes, spec)
	}
	return nodes
}

func TestDynamicValidation(t *testing.T) {
	e := DynamicClusterExperiment{Nodes: smallCluster()}
	if _, err := e.Run(); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestDynamicRunBasics(t *testing.T) {
	e := DynamicClusterExperiment{
		Nodes:             smallCluster(),
		Policy:            placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true},
		ArrivalsPerStep:   1.0,
		MeanLifetimeSteps: 8,
		Steps:             40,
		Seed:              1,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed == 0 {
		t.Fatal("nothing deployed")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.MeanUsedNodes <= 0 || res.PeakUsedNodes == 0 {
		t.Fatalf("node accounting empty: %+v", res)
	}
	if res.ActiveEnergyJ <= 0 || res.AlwaysOnEnergyJ < res.ActiveEnergyJ {
		t.Fatalf("energy accounting wrong: active=%f total=%f",
			res.ActiveEnergyJ, res.AlwaysOnEnergyJ)
	}
}

func TestDynamicDeterministicSeed(t *testing.T) {
	e := DynamicClusterExperiment{
		Nodes:             smallCluster(),
		Policy:            placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true},
		ArrivalsPerStep:   0.8,
		MeanLifetimeSteps: 5,
		Steps:             25,
		Seed:              7,
	}
	a, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Deployed != b.Deployed || a.Rejected != b.Rejected || a.MeanUsedNodes != b.MeanUsedNodes {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// The paper's energy argument in a dynamic setting: Eq. 7 admission uses
// fewer powered nodes than the classic vCPU-count constraint for the same
// arrival stream, hence less active energy.
func TestDynamicEq7BeatsCoreCount(t *testing.T) {
	base := DynamicClusterExperiment{
		Nodes:             smallCluster(),
		ArrivalsPerStep:   1.2,
		MeanLifetimeSteps: 10,
		Steps:             50,
		Seed:              42,
	}
	eq7 := base
	eq7.Policy = placement.Policy{Mode: placement.VirtualFrequency, Factor: 1, Memory: true}
	classic := base
	classic.Policy = placement.Policy{Mode: placement.CoreCount, Factor: 1, Memory: true}

	rEq7, err := eq7.Run()
	if err != nil {
		t.Fatal(err)
	}
	rClassic, err := classic.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Same arrival stream (same seed): Eq. 7 packs more VMs per node.
	if rEq7.MeanUsedNodes >= rClassic.MeanUsedNodes {
		t.Fatalf("Eq. 7 mean nodes %.2f not below classic %.2f",
			rEq7.MeanUsedNodes, rClassic.MeanUsedNodes)
	}
	if rEq7.ActiveEnergyJ >= rClassic.ActiveEnergyJ {
		t.Fatalf("Eq. 7 energy %.0f J not below classic %.0f J",
			rEq7.ActiveEnergyJ, rClassic.ActiveEnergyJ)
	}
	// Eq. 7 also rejects fewer VMs (frequency-weighted capacity is the
	// real constraint for this mix).
	if rEq7.Rejected > rClassic.Rejected {
		t.Fatalf("Eq. 7 rejected %d > classic %d", rEq7.Rejected, rClassic.Rejected)
	}
}

func TestPoissonDrawMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const mean = 1.2
	var sum int
	const n = 20_000
	for i := 0; i < n; i++ {
		sum += poissonDraw(rng, mean)
	}
	got := float64(sum) / n
	if got < 1.1 || got > 1.3 {
		t.Fatalf("poisson mean = %.3f, want ≈%v", got, mean)
	}
	if poissonDraw(rng, 0) != 0 {
		t.Fatal("zero mean should draw 0")
	}
}

// The RebalanceEvery knob: sweeps run on schedule and are a strict
// no-op on a cluster the admission policy keeps feasible — Overloaded
// is judged against the same constraint Deploy enforces, so a pure
// arrival stream never trips it (the acting paths are covered by the
// cluster package, where overload is created out of band). The sweep
// must not move anything, skew any counter, or break determinism.
func TestDynamicRebalanceSweeps(t *testing.T) {
	base := DynamicClusterExperiment{
		Nodes:             smallCluster()[:2],
		Policy:            placement.Policy{Mode: placement.CoreCount, Factor: 2, Memory: true},
		ArrivalsPerStep:   2.5,
		MeanLifetimeSteps: 15,
		Steps:             40,
		Seed:              3,
	}
	still, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	swept := base
	swept.RebalanceEvery = 5
	res, err := swept.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced != 0 || res.Migrations != 0 {
		t.Fatalf("sweep moved VMs on a feasible cluster: %+v", res)
	}
	if res.Deployed != still.Deployed || res.Rejected != still.Rejected ||
		res.MeanUsedNodes != still.MeanUsedNodes || res.ActiveEnergyJ != still.ActiveEnergyJ {
		t.Fatalf("no-op sweeps changed the run: %+v vs %+v", res, still)
	}
	again, err := swept.Run()
	if err != nil {
		t.Fatal(err)
	}
	if again.Deployed != res.Deployed || again.MeanUsedNodes != res.MeanUsedNodes {
		t.Fatalf("same seed diverged with rebalance on: %+v vs %+v", res, again)
	}
}
