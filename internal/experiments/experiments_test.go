package experiments

import (
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
)

// Scaled-down copies of the paper experiments: 1/10 of the work, offsets
// and duration, preserving the dynamics at a fraction of the cost.
const testScale = 0.1

func TestFig7ControlledFrequencies(t *testing.T) {
	res, err := Scale(Fig7(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	small := res.Rec.Series("small")
	large := res.Rec.Series("large")
	if small == nil || large == nil {
		t.Fatal("missing series")
	}
	// Before the large instances start (t < 20 s scaled), the small
	// instances burst to the core maximum (a few warm-up periods of
	// controller convergence excluded).
	if f := small.MedianRange(8, 18); f < 2000 {
		t.Fatalf("pre-contention small freq = %.0f MHz, want ≈2400", f)
	}
	// After contention settles, both classes sit at their guarantees.
	if f := small.MedianRange(40, 70); f < 450 || f > 750 {
		t.Fatalf("controlled small freq = %.0f MHz, want ≈500", f)
	}
	if f := large.MedianRange(40, 70); f < 1700 || f > 2050 {
		t.Fatalf("controlled large freq = %.0f MHz, want ≈1800", f)
	}
}

func TestFig6UncontrolledFrequencies(t *testing.T) {
	res, err := Scale(Fig6(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	small := res.Rec.Series("small")
	large := res.Rec.Series("large")
	// CFS shares per VM: small vCPUs get 2/3 core (≈1600 MHz), large
	// vCPUs 1/3 core (≈800 MHz).
	fs := small.MedianRange(40, 70)
	fl := large.MedianRange(40, 70)
	if fs < 1400 || fs > 1800 {
		t.Fatalf("uncontrolled small freq = %.0f MHz, want ≈1600", fs)
	}
	if fl < 700 || fl > 950 {
		t.Fatalf("uncontrolled large freq = %.0f MHz, want ≈800", fl)
	}
	if r := fs / fl; r < 1.8 || r > 2.2 {
		t.Fatalf("small/large ratio = %.2f, want ≈2 (per-VM sharing)", r)
	}
}

func TestFig9ChicletControlled(t *testing.T) {
	res, err := Scale(Fig9(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Rec.Series("small").MedianRange(40, 70); f < 450 || f > 750 {
		t.Fatalf("chiclet small freq = %.0f MHz, want ≈500", f)
	}
	if f := res.Rec.Series("large").MedianRange(40, 70); f < 1700 || f > 2050 {
		t.Fatalf("chiclet large freq = %.0f MHz, want ≈1800", f)
	}
}

func TestFig13HeterogeneousPlateaus(t *testing.T) {
	res, err := Scale(Fig13(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	// With all three classes active and converged (medium starts at 10,
	// large at 20 and converges by ≈30, medium's openssl ends ≈47),
	// the three guarantee plateaus appear.
	if f := res.Rec.Series("small").MedianRange(34, 46); f < 450 || f > 800 {
		t.Fatalf("small plateau = %.0f MHz, want ≈500", f)
	}
	if f := res.Rec.Series("medium").MedianRange(34, 46); f < 1100 || f > 1450 {
		t.Fatalf("medium plateau = %.0f MHz, want ≈1200", f)
	}
	if f := res.Rec.Series("large").MedianRange(34, 46); f < 1650 || f > 2050 {
		t.Fatalf("large plateau = %.0f MHz, want ≈1800", f)
	}
	// After the medium workload completes, its freed cycles boost the
	// other classes (paper: "unallocated cycles are distributed among
	// large and small instances").
	smallAfter := res.Rec.Series("small").MedianRange(55, 70)
	if smallAfter < 600 {
		t.Fatalf("small after medium completion = %.0f MHz, want boosted above 600", smallAfter)
	}
}

func TestFig12UncontrolledHeterogeneous(t *testing.T) {
	res, err := Scale(Fig12(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: small vCPUs run faster, medium and large at the same
	// (lower) speed.
	fs := res.Rec.Series("small").MedianRange(30, 46)
	fm := res.Rec.Series("medium").MedianRange(30, 46)
	fl := res.Rec.Series("large").MedianRange(30, 46)
	if fs <= fm || fs <= fl {
		t.Fatalf("small (%.0f) not fastest (medium %.0f, large %.0f)", fs, fm, fl)
	}
	if r := fm / fl; r < 0.9 || r > 1.1 {
		t.Fatalf("medium/large = %.2f, want ≈1 (same per-VM share)", r)
	}
}

func TestFig10EfficiencyShape(t *testing.T) {
	expA, expB := Fig10()
	scale := 0.1
	resA, err := Scale(expA, scale).Run()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Scale(expB, scale).Run()
	if err != nil {
		t.Fatal(err)
	}
	ratesA := resA.MeanRateByClass("small")
	ratesB := resB.MeanRateByClass("small")
	if len(ratesA) < 4 || len(ratesB) < 4 {
		t.Fatalf("too few runs completed: A=%d B=%d", len(ratesA), len(ratesB))
	}
	// Early uncontended runs: A and B perform the same (run 0 is
	// polluted by the controller's cold start at this time scale, so
	// compare run 1).
	if r := ratesB[1] / ratesA[1]; r < 0.85 || r > 1.15 {
		t.Fatalf("uncontended-run B/A ratio = %.2f, want ≈1", r)
	}
	// Under contention the controlled small instances are slower than
	// the uncontrolled ones (500 vs ≈1600 MHz worth of work).
	lastA, lastB := ratesA[3], ratesB[3]
	if lastB >= lastA {
		t.Fatalf("controlled small rate %.0f not below uncontrolled %.0f", lastB, lastA)
	}
	// Large instances: B is more stable than A. Compare relative spread
	// of large-run rates.
	largeB := resB.MeanRateByClass("large")
	if len(largeB) < 3 {
		t.Fatalf("large B completed %d runs", len(largeB))
	}
	min, max := largeB[0], largeB[0]
	for _, v := range largeB[:3] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if (max-min)/max > 0.25 {
		t.Fatalf("controlled large rates unstable: spread %.0f%%", 100*(max-min)/max)
	}
}

func TestCFSExperimentA(t *testing.T) {
	res, err := CFSExperimentA(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread > 1.05 {
		t.Fatalf("vCPU speed spread = %.3f, want ≈1 (all equal)", res.Spread)
	}
}

func TestCFSExperimentB(t *testing.T) {
	res, err := CFSExperimentB(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OneVCPUShare < 0.78 || res.OneVCPUShare > 0.82 {
		t.Fatalf("1-vCPU share = %.3f, want ≈0.80 (paper: 4/5)", res.OneVCPUShare)
	}
}

func TestPlacementComparison(t *testing.T) {
	rows, err := RunPlacementComparison()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]PlacementRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Unplaced != 0 {
			t.Fatalf("%s left %d VMs unplaced", r.Label, r.Unplaced)
		}
	}
	classic := byLabel["BestFit / vCPU-count (classic)"]
	eq7 := byLabel["BestFit / virtual frequency (Eq. 7)"]
	consol := byLabel["BestFit / vCPU-count ×1.8 consolidation"]
	if classic.UsedNodes != 22 {
		t.Fatalf("classic used %d nodes, want 22", classic.UsedNodes)
	}
	if eq7.UsedNodes >= classic.UsedNodes || eq7.UsedNodes > 16 {
		t.Fatalf("Eq. 7 used %d nodes, want well below 22", eq7.UsedNodes)
	}
	if consol.UsedNodes != 15 {
		t.Fatalf("×1.8 consolidation used %d nodes, want 15 (paper)", consol.UsedNodes)
	}
	if consol.MaxLargePerChiclet != 28 {
		t.Fatalf("×1.8 packs %d large per chiclet, want 28 (paper)", consol.MaxLargePerChiclet)
	}
	if eq7.MaxLargePerChiclet > 21 {
		t.Fatalf("Eq. 7 packs %d large per chiclet, structural max 21", eq7.MaxLargePerChiclet)
	}
	if eq7.IdleSavingsWatts <= 0 {
		t.Fatal("Eq. 7 frees no idle power")
	}
}

func TestOverheadMeasured(t *testing.T) {
	res, err := Scale(Fig7(), 0.02).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgStep <= 0 || res.AvgMonitor <= 0 {
		t.Fatal("controller timings not measured")
	}
	if res.AvgMonitor > res.AvgStep {
		t.Fatal("monitoring cost exceeds total step cost")
	}
	if res.EnergyJoules <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestScaleBounds(t *testing.T) {
	e := Fig7()
	if got := Scale(e, 0); got.DurationUs != e.DurationUs {
		t.Fatal("scale 0 should be identity")
	}
	if got := Scale(e, 2); got.DurationUs != e.DurationUs {
		t.Fatal("scale >1 should be identity")
	}
	half := Scale(e, 0.5)
	if half.DurationUs != e.DurationUs/2 {
		t.Fatal("duration not scaled")
	}
	if half.Classes[1].StartUs != e.Classes[1].StartUs/2 {
		t.Fatal("start offset not scaled")
	}
	if half.Classes[0].CyclesPerRun != e.Classes[0].CyclesPerRun/2 {
		t.Fatal("work not scaled")
	}
}

func TestRunValidation(t *testing.T) {
	e := Fig7()
	e.DurationUs = 0
	if _, err := e.Run(); err == nil {
		t.Fatal("zero duration accepted")
	}
	e = Fig7()
	e.Classes = nil
	if _, err := e.Run(); err == nil {
		t.Fatal("no classes accepted")
	}
	e = Fig7()
	e.Classes[0].Kind = "fibonacci"
	e.DurationUs = 1_000_000
	if _, err := e.Run(); err == nil {
		t.Fatal("unknown bench kind accepted")
	}
}

func TestMonitoredEstimateTracksGroundTruth(t *testing.T) {
	res, err := Scale(Fig7(), 0.1).Run()
	if err != nil {
		t.Fatal(err)
	}
	truth := res.Rec.Series("small")
	est := res.Rec.Series("small:est")
	if truth == nil || est == nil {
		t.Fatal("missing series")
	}
	// Paper §IV-A2: reading placement once per second still yields an
	// accurate frequency estimate. Compare steady-state medians.
	mt := truth.MedianRange(40, 68)
	me := est.MedianRange(40, 68)
	if diff := (me - mt) / mt; diff > 0.15 || diff < -0.15 {
		t.Fatalf("estimate %.0f vs truth %.0f MHz (%.0f%% off)", me, mt, 100*diff)
	}
}

func TestClassOf(t *testing.T) {
	if classOf("small-07") != "small" || classOf("plain") != "plain" {
		t.Fatal("classOf parsing wrong")
	}
}

// The paper's predictability argument, quantified: without control the
// large instances spend virtually their whole contended life below 95 %
// of their 1800 MHz template frequency; the controller reduces that to
// (almost) nothing outside convergence transients.
func TestSLAViolationsQuantifyPredictability(t *testing.T) {
	resA, err := Scale(Fig6(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Scale(Fig7(), testScale).Run()
	if err != nil {
		t.Fatal(err)
	}
	vA := resA.SLAViolations["large"]
	vB := resB.SLAViolations["large"]
	if vA < 0.8 {
		t.Fatalf("uncontrolled large SLA violation rate = %.2f, want ≈1 (runs at 800 MHz)", vA)
	}
	if vB > 0.35 {
		t.Fatalf("controlled large SLA violation rate = %.2f, want low", vB)
	}
	if vB >= vA/2 {
		t.Fatalf("controller does not reduce violations: A=%.2f B=%.2f", vA, vB)
	}
}

// A class may be deployed idle (the placement-noise case): it must run,
// record a near-zero frequency series, and not divide by zero anywhere.
func TestIdleClassRuns(t *testing.T) {
	e := FreqExperiment{
		Node: hostChetemiSmall(),
		Classes: []Class{
			{Template: idleTpl(), Count: 2, Kind: IdleLoad},
		},
		Controlled: true,
		DurationUs: 5_000_000,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Rec.Series("idle")
	if s == nil || s.Len() != 5 {
		t.Fatalf("idle series missing or wrong length")
	}
	if s.Mean() > 50 {
		t.Fatalf("idle class at %.0f MHz", s.Mean())
	}
	if len(res.SLAViolations) != 0 {
		t.Fatalf("idle class accrued SLA samples: %v", res.SLAViolations)
	}
}

// hostChetemiSmall and idleTpl are small fixtures for tests.
func hostChetemiSmall() host.Spec {
	spec := host.Chetemi()
	spec.Cores = 4
	return spec
}

func idleTpl() vm.Template {
	return vm.Template{Name: "idle", VCPUs: 1, FreqMHz: 500, MemoryGB: 1}
}
