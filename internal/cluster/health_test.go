package cluster

import (
	"errors"
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
)

func TestHealthHealthyCluster(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Medium(), busy(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	h := c.Health()
	if h.VCPUs != 6 {
		t.Fatalf("VCPUs = %d, want 6", h.VCPUs)
	}
	if h.DegradedVCPUs != 0 || h.Faults != 0 || h.DegradedNodes != 0 || h.FailedNodes != 0 {
		t.Fatalf("healthy cluster reports degradation: %+v", h)
	}
	for _, n := range c.Nodes() {
		if n.LastErr != nil {
			t.Fatalf("node %d LastErr = %v", n.Index, n.LastErr)
		}
		if n.LastReport.Step == 0 {
			t.Fatalf("node %d has no report", n.Index)
		}
	}
}

// A node whose pseudo-file reads fail degrades alone: its vCPUs are
// reported degraded, the other node stays healthy, and the cluster Step
// still succeeds (fault isolation end to end, through the real sim
// backend rather than a scripted host).
func TestStepIsolatesNodeDegradation(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if c.Locate("a") != 0 || c.Locate("b") != 0 {
		t.Fatal("test expects both VMs on node 0")
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Kill VM a's usage reads on node 0 (the sim host reads cpu.stat from
	// the machine's pseudo-filesystem).
	boom := errors.New("cgroup vanished")
	c.Nodes()[0].Machine.FailReads("machine-qemu-a.scope", boom, -1)
	if err := c.Step(); err != nil {
		t.Fatalf("Step err = %v, want isolated success", err)
	}
	h := c.Health()
	if h.DegradedVCPUs != 2 || h.DegradedNodes != 1 || h.FailedNodes != 0 {
		t.Fatalf("Health = %+v, want 2 degraded vCPUs on 1 node", h)
	}
	rep := c.Nodes()[0].LastReport
	if rep.FaultCount() == 0 || !errors.Is(rep.Faults[0].Err, boom) {
		t.Fatalf("node 0 report = %s, want recorded faults", rep.String())
	}
	// VM b on the same node is untouched.
	for _, v := range c.Nodes()[0].Ctrl.VM("b").VCPUs {
		if v.Degraded {
			t.Fatal("healthy VM degraded by neighbour's fault")
		}
	}
	// Recovery.
	c.Nodes()[0].Machine.ClearFileFaults()
	if err := c.Step(); err != nil {
		t.Fatalf("recovery step: %v", err)
	}
	if got := c.Health(); got.DegradedVCPUs != 0 || got.DegradedNodes != 0 {
		t.Fatalf("degradation sticky after recovery: %+v", got)
	}
}

func TestRecordHealthSeries(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		c.RecordHealth(rec, float64(i+1))
	}
	for _, name := range []string{
		"cluster_degraded_vcpus", "cluster_faults", "cluster_failed_nodes",
		"node0_degraded", "node1_degraded",
	} {
		s := rec.Series(name)
		if s == nil || s.Len() != 3 {
			t.Fatalf("series %q missing or short", name)
		}
		if s.Sum() != 0 {
			t.Fatalf("series %q non-zero on healthy cluster", name)
		}
	}
}

// A persistently faulty VM trips its per-VM circuit breaker and the
// quarantine surfaces in the cluster Health aggregate and the health
// trace series; once the fault clears, the breaker drains and the
// cluster reports fully healthy again.
func TestHealthSurfacesBreakerStates(t *testing.T) {
	cfg := Config{Controller: core.DefaultConfig()}
	cfg.Controller.HostRetries = 0
	cfg.Controller.BreakerThreshold = 2
	cfg.Controller.BreakerOpenSteps = 2
	c, err := New([]host.Spec{host.Chetemi()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cgroup vanished")
	c.Nodes()[0].Machine.FailReads("machine-qemu-b.scope", boom, -1)
	rec := trace.NewRecorder()
	tripped := false
	for i := 0; i < 2+1; i++ { // BreakerThreshold faulty steps, then the trip is visible
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		c.RecordHealth(rec, float64(i))
		if h := c.Health(); h.OpenVMs == 1 {
			if h.BreakerTrips != 1 {
				t.Fatalf("open VM without a counted trip: %+v", h)
			}
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatalf("breaker never opened: %+v", c.Health())
	}
	if s := rec.Series("cluster_open_vms"); s == nil {
		t.Fatal("cluster_open_vms series missing")
	}
	// Clear the fault and step until the breaker drains: open window,
	// half-open probes, then fully closed and healthy.
	c.Nodes()[0].Machine.ClearFileFaults()
	healthy := false
	for i := 0; i < 12; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		h := c.Health()
		if h.OpenVMs == 0 && h.HalfOpenVMs == 0 && h.DegradedVCPUs == 0 {
			healthy = true
			break
		}
	}
	if !healthy {
		t.Fatalf("breaker never drained after fault cleared: %+v", c.Health())
	}
}

func TestResizeReflectsInControllerGuarantee(t *testing.T) {
	c := twoNodeCluster(t)
	idx, err := c.Deploy("a", vm.Small(), busy(2)) // 2 vCPU @ 500 MHz
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	n := c.Nodes()[idx]
	// C_i = 1e6 × 500/2400 = 208333 on chetemi.
	if got := n.Ctrl.VM("a").GuaranteeUs; got != 208_333 {
		t.Fatalf("guarantee = %d, want 208333", got)
	}
	// Live upgrade to 4 vCPU @ 1200 MHz.
	if err := c.Resize("a", vm.Medium(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := n.Ctrl.VM("a")
	if got := st.GuaranteeUs; got != 500_000 {
		t.Fatalf("guarantee after resize = %d, want 500000", got)
	}
	if got := len(st.VCPUs); got != 4 {
		t.Fatalf("controller tracks %d vCPUs, want 4", got)
	}
	// The bookkeeping used by admission follows too.
	if got := n.usedFreqMHz(); got != 4*1200 {
		t.Fatalf("usedFreqMHz = %d, want 4800", got)
	}
	// Shrink back down.
	if err := c.Resize("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Ctrl.VM("a").VCPUs); got != 2 {
		t.Fatalf("controller tracks %d vCPUs after shrink, want 2", got)
	}
}

func TestResizeRespectsAdmission(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 2 // capacity 2 × 2400 = 4800 MHz
	c, err := New([]host.Spec{spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), nil); err != nil { // 1000 MHz
		t.Fatal(err)
	}
	if err := c.Resize("ghost", vm.Small(), nil); err == nil {
		t.Fatal("resize of unknown VM accepted")
	}
	// 4 × 1800 = 7200 MHz > 4800: must be rejected, template unchanged.
	if err := c.Resize("a", vm.Large(), nil); err == nil {
		t.Fatal("infeasible resize accepted")
	}
	if got := c.Nodes()[0].deployed["a"].template.FreqMHz; got != 500 {
		t.Fatalf("rejected resize mutated template: %d", got)
	}
	// 4 × 1200 = 4800 exactly fits.
	if err := c.Resize("a", vm.Medium(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
}
