//go:build race

package cluster

// raceEnabled skips allocation assertions under the race detector, whose
// instrumentation allocates.
const raceEnabled = true
