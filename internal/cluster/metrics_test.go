package cluster

import (
	"strings"
	"testing"

	"vfreq/internal/metrics"
)

// TestClusterArmMetrics pins the cluster → registry wiring: the
// per-node step histogram sees one observation per node per Step, the
// cluster histogram one per Step, and the gauges track Health.
func TestClusterArmMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := buildScaleCluster(t, 3, 2, 1, 0)
	defer c.Close()
	c.ArmMetrics(reg)
	const steps = 4
	for i := 0; i < steps; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.met.stepUs.Count(); got != steps {
		t.Fatalf("cluster step histogram count = %d, want %d", got, steps)
	}
	if got := c.met.nodeStepUs.Count(); got != int64(steps*len(c.nodes)) {
		t.Fatalf("node step histogram count = %d, want %d", got, steps*len(c.nodes))
	}
	if got := c.met.nodes.Value(); got != 3 {
		t.Fatalf("nodes gauge = %d, want 3", got)
	}
	if got := c.met.usedNodes.Value(); got != 3 {
		t.Fatalf("used-nodes gauge = %d, want 3", got)
	}
	h := c.Health()
	if got := c.met.vcpus.Value(); got != int64(h.VCPUs) {
		t.Fatalf("vcpus gauge = %d, want %d", got, h.VCPUs)
	}

	// Arming the cluster arms every node controller on the same
	// registry, so the fleet-aggregated per-stage series exist too.
	text := reg.Text()
	for _, want := range []string{
		"# TYPE vfreq_cluster_node_step_us histogram",
		"vfreq_cluster_steps_total 4",
		`vfreq_step_stage_us_count{stage="monitor"} 12`, // 3 nodes × 4 steps
		"vfreq_cluster_failed_nodes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestClusterArmMetricsConcurrent runs the armed cluster on the worker
// pool: the shared node-step histogram must count every node exactly
// once per Step regardless of scheduling. (The -race CI step runs this
// too, exercising the atomic-only recording contract.)
func TestClusterArmMetricsConcurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	c := buildScaleCluster(t, 4, 2, 4, 0)
	defer c.Close()
	c.ArmMetrics(reg)
	const steps = 6
	for i := 0; i < steps; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.met.nodeStepUs.Count(); got != int64(steps*len(c.nodes)) {
		t.Fatalf("node step histogram count = %d, want %d", got, steps*len(c.nodes))
	}
	if got := c.met.steps.Value(); got != steps {
		t.Fatalf("steps counter = %d, want %d", got, steps)
	}
}
