package cluster

import (
	"errors"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
)

// A node whose host stops answering measurements is marked failed after
// FailThreshold consecutive bad steps and its VMs are evacuated to the
// surviving nodes under the same Eq. 7 constraint as initial placement.
func TestNodeFailureEvacuatesVMs(t *testing.T) {
	c, err := New([]host.Spec{host.Chetemi(), host.Chiclet()}, Config{FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Medium(), busy(4)); err != nil {
		t.Fatal(err)
	}
	if c.Locate("a") != 0 || c.Locate("b") != 0 {
		t.Fatal("test expects both VMs on node 0")
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}

	// Node 0's pseudo-files all vanish: every usage read fails, every
	// vCPU degrades, and the node accumulates failed steps.
	boom := errors.New("host unreachable")
	c.Nodes()[0].Machine.FailReads("machine-", boom, -1)
	rec := trace.NewRecorder()

	if err := c.Step(); err != nil {
		t.Fatalf("Step 1 under failure: %v", err)
	}
	c.RecordHealth(rec, 1)
	n0 := c.Nodes()[0]
	if n0.FailedSteps != 1 || n0.Failed {
		t.Fatalf("after 1 bad step: failedSteps=%d failed=%v, want counting not failed", n0.FailedSteps, n0.Failed)
	}
	if c.Locate("a") != 0 {
		t.Fatal("evacuated before the threshold")
	}

	// Second consecutive bad step crosses the threshold: the node is
	// marked failed and evacuated within the same Step.
	if err := c.Step(); err != nil {
		t.Fatalf("Step 2 under failure: %v", err)
	}
	c.RecordHealth(rec, 2)
	if !n0.Failed {
		t.Fatal("node 0 not marked failed at the threshold")
	}
	if c.Locate("a") != 1 || c.Locate("b") != 1 {
		t.Fatalf("VMs not evacuated: a@%d b@%d", c.Locate("a"), c.Locate("b"))
	}
	if got := c.Evacuations(); got != 2 {
		t.Fatalf("Evacuations = %d, want 2", got)
	}
	h := c.Health()
	if h.FailedNodes != 1 || h.EvacuatedVMs != 2 || h.StrandedVMs != 0 {
		t.Fatalf("Health = %+v, want 1 failed node, 2 evacuated", h)
	}
	// Eq. 7 on the target: the evacuated demand fits chiclet's capacity.
	n1 := c.Nodes()[1]
	if cap := int64(n1.Spec().Cores) * n1.Spec().MaxMHz; n1.usedFreqMHz() > cap {
		t.Fatalf("target overcommitted: %d MHz used > %d capacity", n1.usedFreqMHz(), cap)
	}
	// A failed node is excluded from admission…
	if idx, err := c.Deploy("c", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	} else if idx == 0 {
		t.Fatal("failed node accepted a new VM")
	}
	// …and from rebalancing targets (nothing may move back to node 0).
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if c.Locate(name) == 0 {
			t.Fatalf("%s placed back on the failed node", name)
		}
	}

	// The evacuation surfaced in the recorded series.
	if s := rec.Series("cluster_evacuated_vms"); s == nil || s.Sum() != 2 {
		t.Fatalf("cluster_evacuated_vms series = %v", s)
	}
	for _, name := range []string{"cluster_overruns", "cluster_stranded_vms", "node0_overrun", "node1_overrun"} {
		if rec.Series(name) == nil {
			t.Fatalf("series %q not recorded", name)
		}
	}

	// Recovery: the host answers again, one clean Step re-admits the node.
	c.Nodes()[0].Machine.ClearFileFaults()
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if n0.Failed || n0.FailedSteps != 0 {
		t.Fatalf("node 0 not re-admitted: failedSteps=%d failed=%v", n0.FailedSteps, n0.Failed)
	}
	if got := c.Health().FailedNodes; got != 0 {
		t.Fatalf("FailedNodes after recovery = %d", got)
	}
	if _, err := c.Deploy("d", vm.Small(), busy(2)); err != nil {
		t.Fatalf("recovered node rejects deployment: %v", err)
	}
}

// A VM with no feasible target under Eq. 7 stays stranded on the failed
// node and is retried every Step until the node recovers.
func TestEvacuationStrandsInfeasibleVM(t *testing.T) {
	tiny := host.Chetemi()
	tiny.Name = "tiny"
	tiny.Cores = 2 // capacity 2 × 2400 = 4800 MHz < Large's 4 × 1800
	c, err := New([]host.Spec{host.Chetemi(), tiny}, Config{FailThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("big", vm.Large(), busy(4)); err != nil {
		t.Fatal(err)
	}
	if c.Locate("big") != 0 {
		t.Fatal("test expects the VM on node 0")
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}

	c.Nodes()[0].Machine.FailReads("machine-", errors.New("gone"), -1)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h := c.Health()
	if h.FailedNodes != 1 || h.StrandedVMs != 1 || h.EvacuatedVMs != 0 {
		t.Fatalf("Health = %+v, want 1 stranded VM on 1 failed node", h)
	}
	if c.Locate("big") != 0 || c.Evacuations() != 0 {
		t.Fatal("infeasible VM moved anyway")
	}

	// Still failed next Step: the stranded VM is retried (and stays put).
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.Health().StrandedVMs; got != 1 {
		t.Fatalf("StrandedVMs on retry = %d, want 1", got)
	}

	// Recovery clears the failure and the VM never moved.
	c.Nodes()[0].Machine.ClearFileFaults()
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if h := c.Health(); h.FailedNodes != 0 || h.StrandedVMs != 0 {
		t.Fatalf("Health after recovery = %+v", h)
	}
	if c.Locate("big") != 0 {
		t.Fatal("VM moved despite recovery")
	}
}
