package cluster

import (
	"vfreq/internal/metrics"
)

// clusterMetrics holds the cluster's pre-interned instruments. As with
// the controller's set, every pointer is resolved at arm time and the
// record paths are atomic-only: stepNode runs concurrently on the
// worker pool, so the per-node latency histogram is shared and relies
// on Observe being race-safe.
type clusterMetrics struct {
	stepUs     *metrics.Histogram // whole-cluster Step wall clock
	nodeStepUs *metrics.Histogram // one observation per node per Step

	steps      *metrics.Counter
	evacuated  *metrics.Counter
	stranded   *metrics.Counter
	migrations *metrics.Counter

	// Migration outcome counters (see MigrationStats), incremented
	// inline by Migrate — off the Step hot path, atomic and
	// allocation-free like every other record path.
	migAttempted    *metrics.Counter
	migCommitted    *metrics.Counter
	migRolledBack   *metrics.Counter
	migStateCarried *metrics.Counter

	nodes         *metrics.Gauge
	usedNodes     *metrics.Gauge
	failedNodes   *metrics.Gauge
	degradedNodes *metrics.Gauge
	vcpus         *metrics.Gauge
	degraded      *metrics.Gauge
	openVMs       *metrics.Gauge
	halfOpenVMs   *metrics.Gauge

	lastMigrations int // previous cumulative total, for the counter delta
}

// ArmMetrics registers the cluster's instruments in reg and starts
// recording every subsequent Step into them. It also arms every node's
// controller on the same registry, so the per-stage latency histograms
// and breaker/fault counters aggregate across the fleet (the series
// are shared — controller recording is atomic-only, which makes the
// cross-node aggregation race-safe). A nil reg disarms the cluster's
// own instruments; node controllers stay on whatever they were armed
// with last.
func (c *Cluster) ArmMetrics(reg *metrics.Registry) {
	if reg == nil {
		c.met = nil
		return
	}
	m := &clusterMetrics{}
	m.stepUs = reg.Histogram("vfreq_cluster_step_us",
		"Whole-cluster Step wall-clock latency, microseconds.",
		metrics.DefaultLatencyBucketsUs)
	m.nodeStepUs = reg.Histogram("vfreq_cluster_node_step_us",
		"Per-node step latency (machine advance + controller Step), microseconds.",
		metrics.DefaultLatencyBucketsUs)
	m.steps = reg.Counter("vfreq_cluster_steps_total", "Completed cluster Steps.")
	m.evacuated = reg.Counter("vfreq_cluster_evacuated_vms_total", "VMs moved off failed nodes.")
	m.stranded = reg.Counter("vfreq_cluster_stranded_vm_steps_total", "VM-steps stuck on failed nodes with no feasible target.")
	m.migrations = reg.Counter("vfreq_cluster_migrations_total", "VM migrations (rebalances and evacuations).")
	m.migAttempted = reg.Counter("vfreq_cluster_migration_attempted_total",
		"Migrations attempted (validated non-no-op Migrate calls).")
	m.migCommitted = reg.Counter("vfreq_cluster_migration_committed_total",
		"Migrations committed (the VM runs on the target).")
	m.migRolledBack = reg.Counter("vfreq_cluster_migration_rolled_back_total",
		"Migrations rolled back (prepared target destroyed after a source-side failure).")
	m.migStateCarried = reg.Counter("vfreq_cluster_migration_state_carried_total",
		"Committed migrations whose controller state was adopted on the target.")
	m.nodes = reg.Gauge("vfreq_cluster_nodes", "Managed nodes.")
	m.usedNodes = reg.Gauge("vfreq_cluster_used_nodes", "Nodes hosting at least one VM.")
	m.failedNodes = reg.Gauge("vfreq_cluster_failed_nodes", "Nodes unreachable or marked failed.")
	m.degradedNodes = reg.Gauge("vfreq_cluster_degraded_nodes", "Nodes reporting any degradation.")
	m.vcpus = reg.Gauge("vfreq_cluster_vcpus", "Controlled vCPUs across the cluster.")
	m.degraded = reg.Gauge("vfreq_cluster_degraded_vcpus", "Degraded vCPUs across the cluster.")
	m.openVMs = reg.Gauge("vfreq_cluster_open_vms", "VMs behind an open breaker across the cluster.")
	m.halfOpenVMs = reg.Gauge("vfreq_cluster_halfopen_vms", "VMs in the half-open breaker state across the cluster.")
	m.lastMigrations = c.migrations
	for _, n := range c.nodes {
		n.Ctrl.ArmMetrics(reg)
	}
	c.met = m
}

// recordStep folds one finished cluster Step into the instruments;
// stepUs is the Step's wall-clock microseconds. Allocation-free.
func (c *Cluster) recordStep(stepUs int64) {
	m := c.met
	h := c.Health()
	m.stepUs.Observe(stepUs)
	m.steps.Inc()
	m.evacuated.Add(int64(c.lastEvacuated))
	m.stranded.Add(int64(c.lastStranded))
	m.migrations.Add(int64(c.migrations - m.lastMigrations))
	m.lastMigrations = c.migrations
	m.nodes.Set(int64(len(c.nodes)))
	m.usedNodes.Set(int64(c.UsedNodes()))
	m.failedNodes.Set(int64(h.FailedNodes))
	m.degradedNodes.Set(int64(h.DegradedNodes))
	m.vcpus.Set(int64(h.VCPUs))
	m.degraded.Set(int64(h.DegradedVCPUs))
	m.openVMs.Set(int64(h.OpenVMs))
	m.halfOpenVMs.Set(int64(h.HalfOpenVMs))
}
