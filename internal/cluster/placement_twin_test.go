package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/vm"
)

// newTwinPair builds two identical clusters, one using the
// free-capacity index and one forced onto the original linear scans
// via the noIndex hook.
func newTwinPair(t *testing.T, alg placement.Algorithm) (indexed, linear *Cluster) {
	t.Helper()
	specs := []host.Spec{
		host.Chetemi(), host.Chiclet(), host.Chetemi(),
		host.Chiclet(), host.Chetemi(), host.Chiclet(),
	}
	cfg := Config{Algorithm: alg, FailThreshold: 2, StepWorkers: 1}
	var err error
	if indexed, err = New(specs, cfg); err != nil {
		t.Fatal(err)
	}
	if linear, err = New(specs, cfg); err != nil {
		t.Fatal(err)
	}
	linear.noIndex = true
	return indexed, linear
}

// checkIndexInvariants verifies the free-capacity index against ground
// truth: exactly the non-failed nodes are present, each under its
// current remaining capacity.
func checkIndexInvariants(t *testing.T, c *Cluster) {
	t.Helper()
	for _, n := range c.nodes {
		if n.Failed {
			if c.index.Contains(n.Index) {
				t.Fatalf("failed node %d still indexed", n.Index)
			}
			continue
		}
		if !c.index.Contains(n.Index) {
			t.Fatalf("live node %d missing from index", n.Index)
		}
		if got, want := c.index.Key(n.Index), c.remaining(n); got != want {
			t.Fatalf("node %d indexed under %v, remaining is %v", n.Index, got, want)
		}
	}
}

// churn drives one seeded schedule of deploys, undeploys, resizes, node
// failures, recoveries and steps against a cluster, returning a log of
// every placement-visible outcome. Runs with the same seed must produce
// identical logs regardless of the placement implementation.
func churn(t *testing.T, c *Cluster, seed int64, steps int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	templates := []vm.Template{vm.Small(), vm.Medium(), vm.Large()}
	var (
		log      strings.Builder
		names    []string
		nextID   int
		downErr  = errors.New("injected outage")
		downNode = -1
	)
	for op := 0; op < steps; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // deploy
			name := fmt.Sprintf("vm%04d", nextID)
			nextID++
			idx, err := c.Deploy(name, templates[rng.Intn(len(templates))], nil)
			if err == nil {
				names = append(names, name)
			}
			fmt.Fprintf(&log, "deploy %s -> %d err=%v\n", name, idx, err != nil)
		case k < 5: // undeploy
			if len(names) == 0 {
				continue
			}
			i := rng.Intn(len(names))
			name := names[i]
			err := c.Undeploy(name)
			if err == nil {
				names = append(names[:i], names[i+1:]...)
			}
			fmt.Fprintf(&log, "undeploy %s err=%v\n", name, err != nil)
		case k < 6: // resize
			if len(names) == 0 {
				continue
			}
			name := names[rng.Intn(len(names))]
			err := c.Resize(name, templates[rng.Intn(len(templates))], nil)
			fmt.Fprintf(&log, "resize %s err=%v\n", name, err != nil)
		case k < 7: // fail a node / recover it
			if downNode == -1 {
				downNode = rng.Intn(len(c.nodes))
				c.nodes[downNode].Machine.FailReads("machine-", downErr, -1)
				fmt.Fprintf(&log, "fail node %d\n", downNode)
			} else {
				c.nodes[downNode].Machine.ClearFileFaults()
				fmt.Fprintf(&log, "recover node %d\n", downNode)
				downNode = -1
			}
		default: // step: exercises failure marking, evacuation, re-admission
			err := c.Step()
			h := c.Health()
			fmt.Fprintf(&log, "step err=%v failed=%d evac=%d stranded=%d\n",
				err != nil, h.FailedNodes, h.EvacuatedVMs, h.StrandedVMs)
		}
		// Full placement snapshot after every op: any divergence in
		// admission, evacuation targets or re-admission shows here.
		for _, name := range names {
			fmt.Fprintf(&log, " %s@%d", name, c.Locate(name))
		}
		log.WriteString("\n")
	}
	return log.String()
}

// TestPlacementTwinChurn proves the indexed BestFit/WorstFit placements
// bit-identical to the linear scans across admission, evacuation and
// node re-admission, over 100 seeded churn schedules (50 per
// algorithm).
func TestPlacementTwinChurn(t *testing.T) {
	for _, alg := range []placement.Algorithm{placement.BestFit, placement.WorstFit} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				indexed, linear := newTwinPair(t, alg)
				got := churn(t, indexed, seed, 30)
				want := churn(t, linear, seed, 30)
				if got != want {
					t.Fatalf("seed %d diverged:\n--- indexed ---\n%s--- linear ---\n%s", seed, got, want)
				}
				checkIndexInvariants(t, indexed)
				indexed.Close()
				linear.Close()
			}
		})
	}
}
