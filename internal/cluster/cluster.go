// Package cluster orchestrates virtual-frequency-controlled nodes at the
// datacenter level, implementing the direction the paper sketches in
// §III-C and §V: admission through the core-splitting constraint (Eq. 7),
// one frequency controller per node, migration-based rebalancing when a
// node's guarantees become infeasible, and cluster-wide energy
// accounting with idle nodes powered off.
//
// The control plane is built to scale to thousands of nodes: Step feeds
// a persistent bounded worker pool instead of spawning goroutines,
// BestFit/WorstFit admission and evacuation run against a free-capacity
// index instead of scanning every node, and the steady state (no
// failures, no placements) allocates nothing.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// Config tunes the cluster manager.
type Config struct {
	// Controller is the per-node controller configuration; the zero
	// value means core.DefaultConfig().
	Controller core.Config
	// Policy is the admission constraint (defaults to Eq. 7 with
	// memory enforcement).
	Policy placement.Policy
	// Algorithm selects the admission packer (defaults to BestFit).
	Algorithm placement.Algorithm
	// FailThreshold is the number of consecutive failed Steps — the
	// node's host unreachable for the whole period, its controller
	// recovering a panic, or every tracked vCPU degraded (the host
	// answers enumeration but no measurement or quota write succeeds)
	// — after which the node is marked failed: it is excluded from
	// admission and its VMs are evacuated to the surviving nodes. A
	// failed node is re-admitted after one clean Step. 0 disables
	// failure detection.
	FailThreshold int
	// StepWorkers bounds the worker pool that steps the nodes during
	// Cluster.Step: 0 picks GOMAXPROCS, 1 steps serially on the calling
	// goroutine, and any other value is capped at the node count. The
	// pool goroutines are created once, at the first parallel Step, and
	// fed node indices over a reusable queue; call Close to stop them.
	// Nodes share no mutable state while stepping (each owns its
	// machine, manager, controller and meter), so the per-node reports,
	// failure counters and energy accounting are bit-identical at any
	// worker count: the failure/evacuation pass and the error join
	// always run sequentially in node-index order.
	StepWorkers int
	// Parallel is deprecated: stepping is parallel by default (see
	// StepWorkers, whose zero value picks GOMAXPROCS) and results do
	// not depend on the worker count. The field is retained so existing
	// configurations keep compiling; it is ignored.
	Parallel bool
}

func (c Config) withDefaults() Config {
	if c.Controller.PeriodUs == 0 {
		c.Controller = core.DefaultConfig()
	}
	if c.Policy.Factor == 0 {
		c.Policy = placement.Policy{
			Mode: placement.VirtualFrequency, Factor: 1, Memory: true,
		}
	}
	return c
}

// Node is one managed machine.
type Node struct {
	Index   int
	Machine *host.Machine
	Manager *vm.Manager
	Ctrl    *core.Controller

	// LastReport is the degradation report of the node's most recent
	// controller Step (zero before the first Step).
	LastReport core.StepReport
	// LastErr is the node-level error of the most recent Step, set
	// only when the node's host was unreachable for the whole period.
	LastErr error
	// FailedSteps counts consecutive Steps that failed at node level
	// (LastErr set, or the controller recovered a panic); 0 after a
	// clean Step.
	FailedSteps int
	// Failed marks a node past Config.FailThreshold: it accepts no new
	// placements and its VMs are being evacuated. The mark clears after
	// one clean Step.
	Failed bool

	deployed map[string]*deployment
	energyJ  float64 // energy accrued while hosting at least one VM
	lastJ    float64

	// Cached placement totals, maintained on deploy/undeploy/resize so
	// admission does not iterate the deployment map.
	usedFreq int64 // Σ vCPU·F in MHz
	usedVC   int
	usedMem  int
	indexed  bool // present in the cluster's free-capacity index

	// Health bookkeeping: the node's contribution to the cluster
	// aggregate after its last step, and the change against the step
	// before. stepNode writes them (it owns the node); the sequential
	// error-join walk folds the deltas into the cluster total.
	healthPart  nodeHealth
	healthDelta nodeHealth
}

type deployment struct {
	name     string
	template vm.Template
	sources  []workload.Source
}

// Spec returns the node's hardware description.
func (n *Node) Spec() host.Spec { return n.Machine.Spec() }

// VMs returns the names of the VMs deployed on this node.
func (n *Node) VMs() []string {
	out := make([]string, 0, len(n.deployed))
	for _, inst := range n.Manager.List() {
		out = append(out, inst.Name())
	}
	return out
}

// usedFreqMHz returns Σ vCPU·F of the deployed VMs.
func (n *Node) usedFreqMHz() int64 { return n.usedFreq }

// usedMemGB returns the deployed memory.
func (n *Node) usedMemGB() int { return n.usedMem }

// usedVCPUs returns the deployed vCPU count.
func (n *Node) usedVCPUs() int { return n.usedVC }

// nodeHealth is one node's contribution to the cluster Health aggregate.
type nodeHealth struct {
	vcpus, degraded, faults   int
	degradedNodes, overruns   int
	recovered, open, halfOpen int
	trips                     int
}

func (a nodeHealth) sub(b nodeHealth) nodeHealth {
	return nodeHealth{
		vcpus: a.vcpus - b.vcpus, degraded: a.degraded - b.degraded,
		faults: a.faults - b.faults, degradedNodes: a.degradedNodes - b.degradedNodes,
		overruns: a.overruns - b.overruns, recovered: a.recovered - b.recovered,
		open: a.open - b.open, halfOpen: a.halfOpen - b.halfOpen,
		trips: a.trips - b.trips,
	}
}

func (a nodeHealth) add(b nodeHealth) nodeHealth {
	return nodeHealth{
		vcpus: a.vcpus + b.vcpus, degraded: a.degraded + b.degraded,
		faults: a.faults + b.faults, degradedNodes: a.degradedNodes + b.degradedNodes,
		overruns: a.overruns + b.overruns, recovered: a.recovered + b.recovered,
		open: a.open + b.open, halfOpen: a.halfOpen + b.halfOpen,
		trips: a.trips + b.trips,
	}
}

// Cluster manages a set of nodes.
type Cluster struct {
	cfg        Config
	nodes      []*Node
	migrations int
	migStats   MigrationStats
	locations  map[string]int // VM name → node index

	evacuations   int // cumulative VMs moved off failed nodes
	lastEvacuated int // VMs evacuated during the last Step
	lastStranded  int // VMs left on failed nodes during the last Step

	// index orders the non-failed nodes by remaining capacity so
	// BestFit/WorstFit admission and evacuation are O(log N) per VM.
	// noIndex (a test hook) forces the original linear scans, which the
	// twin suites compare against.
	index   *placement.Index
	noIndex bool

	// Cached Health aggregate, maintained incrementally from the
	// per-node deltas so Health() is O(1) and Step's aggregation is a
	// handful of integer additions per node.
	agg         nodeHealth
	failedNodes int

	errScratch []error // reused error-join scratch

	// Persistent step worker pool (see Config.StepWorkers).
	workers    int
	stepCh     chan int
	stepWG     sync.WaitGroup
	stepPeriod int64
	panicMu    sync.Mutex
	panicVal   any

	// RecordHealth scratch: per-node series names and the reused
	// values map handed to trace.Recorder.RecordAll.
	seriesNames [][2]string
	healthVals  map[string]float64

	// met, when armed via ArmMetrics, receives every finished Step;
	// nil (the default) records nothing.
	met *clusterMetrics
}

// New boots one machine per spec.
func New(specs []host.Spec, cfg Config) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, locations: map[string]int{}}
	for i, spec := range specs {
		machine, err := host.New(spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		mgr, err := vm.NewManager(machine)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.New(platform.NewSim(mgr), cfg.Controller)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &Node{
			Index:    i,
			Machine:  machine,
			Manager:  mgr,
			Ctrl:     ctrl,
			deployed: map[string]*deployment{},
		})
	}
	c.index = placement.NewIndex(len(c.nodes))
	c.rebuildIndex()
	return c, nil
}

// rebuildIndex reconstructs the free-capacity index from scratch — the
// fallback for wholesale state changes (restores, test hooks); every
// incremental path goes through reindex instead.
func (c *Cluster) rebuildIndex() {
	c.index.Reset()
	for _, n := range c.nodes {
		n.indexed = false
		c.reindex(n)
	}
}

// reindex synchronises one node's index entry with its current
// remaining capacity and failure state.
func (c *Cluster) reindex(n *Node) {
	if c.noIndex {
		return
	}
	if n.Failed {
		if n.indexed {
			c.index.Remove(n.Index)
			n.indexed = false
		}
		return
	}
	if n.indexed {
		c.index.Update(n.Index, c.remaining(n))
	} else {
		c.index.Insert(n.Index, c.remaining(n))
		n.indexed = true
	}
}

// Close stops the step worker pool, if one was started. The cluster
// must not be stepped after (or concurrently with) Close. Close is
// idempotent; a cluster stepped serially needs no Close.
func (c *Cluster) Close() {
	if c.stepCh != nil {
		close(c.stepCh)
		c.stepCh = nil
	}
}

// Nodes returns the managed nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Migrations returns the number of VM migrations performed so far.
func (c *Cluster) Migrations() int { return c.migrations }

// Evacuations returns the number of VMs moved off failed nodes so far
// (every evacuation is also counted in Migrations).
func (c *Cluster) Evacuations() int { return c.evacuations }

// Locate returns the node index hosting the named VM, or -1.
func (c *Cluster) Locate(name string) int {
	if i, ok := c.locations[name]; ok {
		return i
	}
	return -1
}

// fits checks the admission constraint for tpl on node n.
func (c *Cluster) fits(n *Node, tpl vm.Template) bool {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		if float64(n.usedVCPUs()+tpl.VCPUs) > float64(spec.Cores)*p.Factor {
			return false
		}
	case placement.VirtualFrequency:
		if tpl.FreqMHz > spec.MaxMHz {
			return false
		}
		add := int64(tpl.VCPUs) * tpl.FreqMHz
		if float64(n.usedFreqMHz()+add) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor {
			return false
		}
	}
	if p.Memory && n.usedMemGB()+tpl.MemoryGB > spec.MemoryGB {
		return false
	}
	return true
}

// remaining returns the free capacity of n in the policy's unit, for the
// BestFit/WorstFit choice. It is also the node's key in the
// free-capacity index: for the integer demands and capacities in play
// the arithmetic is exact, so "remaining < demand" in the index prunes
// exactly the nodes the fits capacity check would reject.
func (c *Cluster) remaining(n *Node) float64 {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		return float64(spec.Cores)*p.Factor - float64(n.usedVCPUs())
	default:
		return float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor - float64(n.usedFreqMHz())
	}
}

// demand returns tpl's CPU demand in the policy's unit — the minimum
// index key a node needs to pass the fits capacity check.
func (c *Cluster) demand(tpl vm.Template) float64 {
	if c.cfg.Policy.Mode == placement.CoreCount {
		return float64(tpl.VCPUs)
	}
	return float64(int64(tpl.VCPUs) * tpl.FreqMHz)
}

// Deploy admits a VM onto the cluster and provisions it. sources may be
// nil (idle VM). It returns the chosen node index.
func (c *Cluster) Deploy(name string, tpl vm.Template, sources []workload.Source) (int, error) {
	if _, ok := c.locations[name]; ok {
		return -1, fmt.Errorf("cluster: VM %q already deployed", name)
	}
	chosen, err := c.choose(tpl)
	if err != nil {
		return -1, err
	}
	if chosen == -1 {
		return -1, fmt.Errorf("cluster: no node can host %q (%d vCPU @ %d MHz, %d GB)",
			name, tpl.VCPUs, tpl.FreqMHz, tpl.MemoryGB)
	}
	if err := c.provisionOn(chosen, name, tpl, sources); err != nil {
		return -1, err
	}
	return chosen, nil
}

// choose picks the admission target under the configured algorithm, or
// -1 when no node fits. BestFit/WorstFit consult the free-capacity
// index — an O(log N) search bit-identical to the linear scans below —
// unless the noIndex test hook forces the scans; FirstFit, which the
// index cannot help (it orders by capacity, not node index), always
// scans.
func (c *Cluster) choose(tpl vm.Template) (int, error) {
	if !c.noIndex {
		switch c.cfg.Algorithm {
		case placement.BestFit:
			return c.index.Best(c.demand(tpl), func(id int) bool {
				return c.fits(c.nodes[id], tpl)
			}), nil
		case placement.WorstFit:
			return c.index.Worst(c.demand(tpl), func(id int) bool {
				return c.fits(c.nodes[id], tpl)
			}), nil
		}
	}
	chosen := -1
	for i, n := range c.nodes {
		if n.Failed || !c.fits(n, tpl) {
			continue
		}
		switch c.cfg.Algorithm {
		case placement.FirstFit:
			chosen = i
		case placement.BestFit:
			if chosen == -1 || c.remaining(n) < c.remaining(c.nodes[chosen]) {
				chosen = i
			}
			continue
		case placement.WorstFit:
			if chosen == -1 || c.remaining(n) > c.remaining(c.nodes[chosen]) {
				chosen = i
			}
			continue
		default:
			return -1, fmt.Errorf("cluster: unknown algorithm %v", c.cfg.Algorithm)
		}
		break
	}
	return chosen, nil
}

// provisionOn places the VM on a specific node, bypassing admission
// (used by Deploy; Migrate runs its own prepare→commit bookkeeping).
func (c *Cluster) provisionOn(idx int, name string, tpl vm.Template, sources []workload.Source) error {
	n := c.nodes[idx]
	if _, err := n.Manager.Provision(name, tpl, sources); err != nil {
		return err
	}
	n.deployed[name] = &deployment{name: name, template: tpl, sources: sources}
	c.locations[name] = idx
	n.usedFreq += int64(tpl.VCPUs) * tpl.FreqMHz
	n.usedVC += tpl.VCPUs
	n.usedMem += tpl.MemoryGB
	c.reindex(n)
	return nil
}

// Undeploy removes a VM from the cluster.
func (c *Cluster) Undeploy(name string) error {
	idx, ok := c.locations[name]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", name)
	}
	n := c.nodes[idx]
	if err := n.Manager.Destroy(name); err != nil {
		return err
	}
	d := n.deployed[name]
	delete(n.deployed, name)
	delete(c.locations, name)
	n.usedFreq -= int64(d.template.VCPUs) * d.template.FreqMHz
	n.usedVC -= d.template.VCPUs
	n.usedMem -= d.template.MemoryGB
	c.reindex(n)
	return nil
}

// MigrationStats counts migration outcomes since the cluster booted.
// Attempted covers every Migrate call that passed validation and tried
// to move (no-ops excluded); Committed those where the VM now runs on
// the target; RolledBack those where a prepared target was destroyed
// again after the source-side commit failed (an attempt that fails
// before preparing anything — infeasible target, provision error —
// counts only in Attempted). StateCarried counts committed migrations
// whose controller state (credits, histories, breaker) was adopted on
// the target rather than cold-started.
type MigrationStats struct {
	Attempted    int
	Committed    int
	RolledBack   int
	StateCarried int
}

// MigrationStats returns the migration outcome counters.
func (c *Cluster) MigrationStats() MigrationStats { return c.migStats }

// Migrate moves a VM to another node in a prepare→commit sequence that
// can never lose the VM:
//
//   - prepare: the VM is provisioned on the target while still running
//     on the source. If that fails, nothing changed — the VM keeps
//     running where it was and the cluster state is untouched.
//   - commit: the source copy is destroyed. If that fails, the prepared
//     target copy is destroyed again (rolled back) and the VM stays on
//     the source.
//
// On commit the source controller's state for the VM — its credit
// wallet, consumption histories and breaker phase — is exported and
// adopted by the target node's controller, so the control loop resumes
// on the target instead of restarting from scratch; if the adoption
// fails (the target host faulting mid-migration) the target controller
// registers the VM cold on its next Step, which only forfeits history.
// The workload sources carry their own state, so the VM's benchmark
// resumes where it left off; the vCPU usage counters restart from zero
// on the target, as they do after a real migration.
//
// Migrating a VM onto the node it already occupies is a documented
// no-op: Migrate returns (false, nil) without touching the VM or any
// counter, so Rebalance accounting stays exact. moved is true exactly
// when the VM changed nodes (and Migrations grew by one).
func (c *Cluster) Migrate(name string, target int) (moved bool, err error) {
	src, ok := c.locations[name]
	if !ok {
		return false, fmt.Errorf("cluster: no VM %q", name)
	}
	if target < 0 || target >= len(c.nodes) {
		return false, fmt.Errorf("cluster: no node %d", target)
	}
	if target == src {
		return false, nil
	}
	c.migStats.Attempted++
	if c.met != nil {
		c.met.migAttempted.Inc()
	}
	from, to := c.nodes[src], c.nodes[target]
	d := from.deployed[name]
	if !c.fits(to, d.template) {
		return false, fmt.Errorf("cluster: node %d cannot host %q", target, name)
	}
	// Export the controller state up front: it reads nothing from the
	// (possibly failing) source host. A controller that never learned
	// the VM (deployed but not yet stepped) has nothing to carry; the
	// move still proceeds.
	snap, exportErr := from.Ctrl.ExportVM(name)
	// Prepare.
	if _, err := to.Manager.Provision(name, d.template, d.sources); err != nil {
		return false, fmt.Errorf("cluster: preparing %q on node %d: %w", name, target, err)
	}
	// Commit.
	if err := from.Manager.Destroy(name); err != nil {
		c.migStats.RolledBack++
		if c.met != nil {
			c.met.migRolledBack.Inc()
		}
		if rbErr := to.Manager.Destroy(name); rbErr != nil {
			err = errors.Join(err, fmt.Errorf("cluster: rolling back %q on node %d: %w", name, target, rbErr))
		}
		return false, fmt.Errorf("cluster: migrating %q off node %d: %w", name, src, err)
	}
	delete(from.deployed, name)
	from.usedFreq -= int64(d.template.VCPUs) * d.template.FreqMHz
	from.usedVC -= d.template.VCPUs
	from.usedMem -= d.template.MemoryGB
	c.reindex(from)
	to.deployed[name] = d
	to.usedFreq += int64(d.template.VCPUs) * d.template.FreqMHz
	to.usedVC += d.template.VCPUs
	to.usedMem += d.template.MemoryGB
	c.reindex(to)
	c.locations[name] = target
	from.Ctrl.ForgetVM(name)
	c.migrations++
	c.migStats.Committed++
	if c.met != nil {
		c.met.migCommitted.Inc()
	}
	if exportErr == nil && to.Ctrl.AdoptVM(snap) == nil {
		c.migStats.StateCarried++
		if c.met != nil {
			c.met.migStateCarried.Inc()
		}
	}
	return true, nil
}

// Resize live-reconfigures a deployed VM to a new template — the
// continuous template adjustment adaptive resource managers perform —
// re-checking the admission constraint with the VM's old demand
// replaced by the new one. srcs supplies workloads for vCPUs added by a
// grow (nil = idle); the VM keeps running throughout, and the node's
// controller picks the new shape up on its next Step.
func (c *Cluster) Resize(name string, tpl vm.Template, srcs []workload.Source) error {
	idx, ok := c.locations[name]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", name)
	}
	n := c.nodes[idx]
	d := n.deployed[name]
	if !c.fitsResized(n, d.template, tpl) {
		return fmt.Errorf("cluster: node %d cannot host %q resized to %d vCPU @ %d MHz, %d GB",
			idx, name, tpl.VCPUs, tpl.FreqMHz, tpl.MemoryGB)
	}
	if err := n.Manager.Reconfigure(name, tpl, srcs); err != nil {
		return err
	}
	n.usedFreq += int64(tpl.VCPUs)*tpl.FreqMHz - int64(d.template.VCPUs)*d.template.FreqMHz
	n.usedVC += tpl.VCPUs - d.template.VCPUs
	n.usedMem += tpl.MemoryGB - d.template.MemoryGB
	d.template = tpl
	c.reindex(n)
	return nil
}

// fitsResized checks the admission constraint with old's demand on n
// replaced by new's.
func (c *Cluster) fitsResized(n *Node, old, tpl vm.Template) bool {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		used := n.usedVCPUs() - old.VCPUs + tpl.VCPUs
		if float64(used) > float64(spec.Cores)*p.Factor {
			return false
		}
	case placement.VirtualFrequency:
		if tpl.FreqMHz > spec.MaxMHz {
			return false
		}
		used := n.usedFreqMHz() - int64(old.VCPUs)*old.FreqMHz + int64(tpl.VCPUs)*tpl.FreqMHz
		if float64(used) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor {
			return false
		}
	}
	if p.Memory && n.usedMemGB()-old.MemoryGB+tpl.MemoryGB > spec.MemoryGB {
		return false
	}
	return true
}

// Overloaded returns the indices of nodes whose deployed guarantees
// violate the admission constraint (possible after Undeploy-free external
// changes or a policy change).
func (c *Cluster) Overloaded() []int {
	var out []int
	for i, n := range c.nodes {
		p := c.cfg.Policy
		spec := n.Spec()
		over := false
		switch p.Mode {
		case placement.CoreCount:
			over = float64(n.usedVCPUs()) > float64(spec.Cores)*p.Factor
		case placement.VirtualFrequency:
			over = float64(n.usedFreqMHz()) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor
		}
		if p.Memory && n.usedMemGB() > spec.MemoryGB {
			over = true
		}
		if over {
			out = append(out, i)
		}
	}
	return out
}

// Rebalance migrates VMs away from overloaded nodes until every node
// satisfies the admission constraint or no feasible move remains. It
// returns the number of migrations performed. A node whose VMs have no
// feasible target (or whose migration fails) does not abort the sweep:
// later overloaded nodes are still processed, and the stranded moves
// are reported joined in the returned error alongside the count of
// migrations that did commit.
func (c *Cluster) Rebalance() (int, error) {
	moved := 0
	var errs []error
	for _, idx := range c.Overloaded() {
		n := c.nodes[idx]
		// Move smallest-demand VMs first: they are the cheapest to
		// migrate and often enough to restore feasibility.
		for c.isOverloaded(idx) {
			name := c.smallestVM(n)
			if name == "" {
				break
			}
			target := c.bestTarget(n.deployed[name].template, idx)
			if target == -1 {
				errs = append(errs, fmt.Errorf("cluster: node %d overloaded and no migration target for %q", idx, name))
				break
			}
			if _, err := c.Migrate(name, target); err != nil {
				errs = append(errs, err)
				break
			}
			moved++
		}
	}
	return moved, errors.Join(errs...)
}

// bestTarget picks the BestFit migration target for tpl among the
// non-failed nodes other than exclude, or -1.
func (c *Cluster) bestTarget(tpl vm.Template, exclude int) int {
	if !c.noIndex {
		return c.index.Best(c.demand(tpl), func(id int) bool {
			return id != exclude && c.fits(c.nodes[id], tpl)
		})
	}
	target := -1
	for j, t := range c.nodes {
		if j == exclude || t.Failed || !c.fits(t, tpl) {
			continue
		}
		if target == -1 || c.remaining(t) < c.remaining(c.nodes[target]) {
			target = j
		}
	}
	return target
}

func (c *Cluster) isOverloaded(idx int) bool {
	for _, i := range c.Overloaded() {
		if i == idx {
			return true
		}
	}
	return false
}

// smallestVM returns the deployed VM with the lowest vCPU·F demand.
func (c *Cluster) smallestVM(n *Node) string {
	best := ""
	var bestDemand int64 = 1 << 62
	for _, inst := range n.Manager.List() {
		d := n.deployed[inst.Name()]
		demand := int64(d.template.VCPUs) * d.template.FreqMHz
		if demand < bestDemand {
			bestDemand = demand
			best = inst.Name()
		}
	}
	return best
}

// stepWorkerCount resolves Config.StepWorkers against GOMAXPROCS and
// the node count.
func (c *Cluster) stepWorkerCount() int {
	w := c.cfg.StepWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.nodes) {
		w = len(c.nodes)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensurePool starts the persistent worker pool on the first parallel
// Step. The pool size is fixed for the cluster's lifetime.
func (c *Cluster) ensurePool(workers int) {
	if c.stepCh != nil {
		return
	}
	c.stepCh = make(chan int, len(c.nodes))
	c.workers = workers
	for i := 0; i < workers; i++ {
		go c.stepWorker()
	}
}

func (c *Cluster) stepWorker() {
	for idx := range c.stepCh {
		c.runStep(idx)
	}
}

// runStep steps one node inside a pool worker, capturing a panic for
// re-raise on the Step goroutine so a poisoned node cannot kill a
// worker silently.
func (c *Cluster) runStep(idx int) {
	defer c.stepWG.Done()
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			if c.panicVal == nil {
				c.panicVal = r
			}
			c.panicMu.Unlock()
		}
	}()
	c.stepNode(c.nodes[idx], c.stepPeriod)
}

// Step advances every node by one control period and runs its
// controller. Node failures are isolated: a node whose host is
// unreachable for the period does not stop the other nodes from being
// controlled — its error is recorded on the node and returned joined
// with any others after every node has stepped.
//
// Nodes step on the persistent worker pool (Config.StepWorkers); the
// walks after the barrier — the deterministic node-index-order error
// join, the Health delta aggregation, and the failure/evacuation pass —
// always run sequentially on the calling goroutine, so reports,
// checkpoints and returned errors are bit-identical at any worker
// count. With no failed node the whole path allocates nothing.
//
// When Config.FailThreshold is positive, Step additionally tracks
// consecutive node-level failures: a node past the threshold is marked
// failed, excluded from admission (and the free-capacity index), and
// its VMs are evacuated to the surviving nodes under the same Eq. 7
// constraint as initial placement. A failed node re-admits itself after
// one clean Step.
func (c *Cluster) Step() error {
	var t0 time.Time
	if c.met != nil {
		t0 = time.Now()
	}
	period := c.cfg.Controller.PeriodUs
	if workers := c.stepWorkerCount(); workers > 1 {
		c.ensurePool(workers)
		c.stepPeriod = period
		c.stepWG.Add(len(c.nodes))
		for i := range c.nodes {
			c.stepCh <- i
		}
		c.stepWG.Wait()
		c.panicMu.Lock()
		r := c.panicVal
		c.panicVal = nil
		c.panicMu.Unlock()
		if r != nil {
			panic(r)
		}
	} else {
		for _, n := range c.nodes {
			c.stepNode(n, period)
		}
	}
	// First sequential walk, in node-index order: join node errors
	// deterministically, fold the per-node Health deltas into the
	// cached aggregate, and re-admit recovered nodes into the
	// free-capacity index.
	errs := c.errScratch[:0]
	for _, n := range c.nodes {
		if n.LastErr != nil {
			errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.Index, n.LastErr))
		}
		c.agg = c.agg.add(n.healthDelta)
		if !c.noIndex && !n.Failed && !n.indexed {
			c.reindex(n)
		}
	}
	// Second sequential walk: mark nodes past the failure threshold
	// (dropping them from the index) and evacuate their VMs. Marking
	// and evacuating in the same ascending walk preserves the original
	// semantics: evacuation from node i may still target a failing but
	// not yet marked node j > i. FailedNodes is finalised here because
	// it depends on the marks.
	c.lastEvacuated, c.lastStranded = 0, 0
	failed := 0
	for _, n := range c.nodes {
		if c.cfg.FailThreshold > 0 {
			if n.FailedSteps >= c.cfg.FailThreshold && !n.Failed {
				n.Failed = true
				if n.indexed {
					c.index.Remove(n.Index)
					n.indexed = false
				}
			}
			if n.Failed && len(n.deployed) > 0 {
				ev, str := c.evacuate(n)
				c.lastEvacuated += ev
				c.lastStranded += str
			}
		}
		if n.LastErr != nil || n.Failed {
			failed++
		}
	}
	c.failedNodes = failed
	err := errors.Join(errs...)
	c.errScratch = errs[:0]
	if c.met != nil {
		c.recordStep(time.Since(t0).Microseconds())
	}
	return err
}

// stepNode advances one node by a period and runs its controller,
// updating only that node's state — which is what makes the concurrent
// Step safe. Energy accrues only while the node hosts at least one VM
// (idle nodes are modelled as powered off); lastJ is resampled every
// Step regardless, so joules burnt while idle are discarded rather than
// attributed to the first period after a deployment.
func (c *Cluster) stepNode(n *Node, period int64) {
	var t0 time.Time
	if c.met != nil {
		t0 = time.Now()
	}
	n.Machine.Advance(period)
	n.LastErr = n.Ctrl.Step()
	n.LastReport = n.Ctrl.LastReport()
	rep := n.LastReport
	if n.LastErr != nil || rep.Panicked ||
		(rep.VCPUs > 0 && rep.DegradedVCPUs == rep.VCPUs) {
		n.FailedSteps++
	} else {
		n.FailedSteps = 0
		n.Failed = false // the host answers again: re-admit
	}
	j := n.Machine.Meter.Joules()
	if len(n.deployed) > 0 {
		n.energyJ += j - n.lastJ
	}
	n.lastJ = j
	part := nodeHealth{
		vcpus: rep.VCPUs, degraded: rep.DegradedVCPUs, faults: rep.FaultCount(),
		recovered: rep.Recovered, open: rep.OpenVMs, halfOpen: rep.HalfOpenVMs,
		trips: rep.BreakerTrips,
	}
	if rep.Degraded() {
		part.degradedNodes = 1
	}
	if rep.Overrun {
		part.overruns = 1
	}
	n.healthDelta = part.sub(n.healthPart)
	n.healthPart = part
	if c.met != nil {
		// Shared histogram, concurrent nodes: Observe is atomic-only.
		c.met.nodeStepUs.Observe(time.Since(t0).Microseconds())
	}
}

// evacuate moves every VM off a failed node, choosing BestFit targets
// among the surviving nodes so the Eq. 7 feasibility of every target is
// preserved. Evacuation goes through Migrate's prepare→commit path, so
// an evacuated VM keeps its credit wallet, histories and breaker state
// (ExportVM reads nothing from the failed host), and a mid-evacuation
// failure leaves the VM on the source. VMs with no feasible target (or
// whose migration fails) stay stranded on the failed node; because the
// node stays marked failed, they are retried every Step until capacity
// appears or the node recovers.
func (c *Cluster) evacuate(n *Node) (evacuated, stranded int) {
	for _, name := range n.VMs() {
		d := n.deployed[name]
		target := c.bestTarget(d.template, n.Index)
		if target == -1 {
			stranded++
			continue
		}
		if _, err := c.Migrate(name, target); err != nil {
			stranded++
			continue
		}
		evacuated++
	}
	c.evacuations += evacuated
	return evacuated, stranded
}

// Health summarises the degradation of the last Step across the cluster.
type Health struct {
	// VCPUs and DegradedVCPUs aggregate the per-node StepReports.
	VCPUs         int
	DegradedVCPUs int
	// Faults is the total fault count of the last Step.
	Faults int
	// DegradedNodes counts nodes reporting any degradation, and
	// FailedNodes those whose whole host was unreachable or that are
	// marked failed past Config.FailThreshold.
	DegradedNodes int
	FailedNodes   int
	// Overruns counts nodes whose controller crossed its step-deadline
	// budget during the last Step.
	Overruns int
	// Recovered counts vCPUs whose failure counters reset during the
	// last Step after the configured clean streak.
	Recovered int
	// EvacuatedVMs counts VMs moved off failed nodes during the last
	// Step; StrandedVMs those left behind for lack of a feasible target.
	EvacuatedVMs int
	StrandedVMs  int
	// OpenVMs and HalfOpenVMs count the circuit breaker states across
	// the cluster: VMs quarantined after repeated faults and VMs being
	// probed for re-admission.
	OpenVMs     int
	HalfOpenVMs int
	// BreakerTrips counts breakers that opened during the last Step.
	BreakerTrips int
}

// Health returns the degradation summary of the last Step. The
// aggregate is maintained incrementally from per-node deltas during
// Step, so the call is O(1) regardless of cluster size.
func (c *Cluster) Health() Health {
	return Health{
		VCPUs:         c.agg.vcpus,
		DegradedVCPUs: c.agg.degraded,
		Faults:        c.agg.faults,
		DegradedNodes: c.agg.degradedNodes,
		FailedNodes:   c.failedNodes,
		Overruns:      c.agg.overruns,
		Recovered:     c.agg.recovered,
		EvacuatedVMs:  c.lastEvacuated,
		StrandedVMs:   c.lastStranded,
		OpenVMs:       c.agg.open,
		HalfOpenVMs:   c.agg.halfOpen,
		BreakerTrips:  c.agg.trips,
	}
}

// RecordHealth appends the last Step's degradation to rec as time
// series at time tS: cluster-wide totals plus one degraded-vCPU series
// per node, giving operators the same view of partial failure the
// paper's figures give of frequency. The series names and the values
// map are cached on the cluster, so repeated calls do not re-render
// names or reallocate.
func (c *Cluster) RecordHealth(rec *trace.Recorder, tS float64) {
	h := c.Health()
	if c.healthVals == nil {
		c.healthVals = make(map[string]float64, 8+2*len(c.nodes))
	}
	if c.seriesNames == nil {
		c.seriesNames = make([][2]string, len(c.nodes))
		for _, n := range c.nodes {
			c.seriesNames[n.Index] = [2]string{
				fmt.Sprintf("node%d_degraded", n.Index),
				fmt.Sprintf("node%d_overrun", n.Index),
			}
		}
	}
	values := c.healthVals
	values["cluster_degraded_vcpus"] = float64(h.DegradedVCPUs)
	values["cluster_faults"] = float64(h.Faults)
	values["cluster_failed_nodes"] = float64(h.FailedNodes)
	values["cluster_overruns"] = float64(h.Overruns)
	values["cluster_evacuated_vms"] = float64(h.EvacuatedVMs)
	values["cluster_stranded_vms"] = float64(h.StrandedVMs)
	values["cluster_open_vms"] = float64(h.OpenVMs)
	values["cluster_halfopen_vms"] = float64(h.HalfOpenVMs)
	for _, n := range c.nodes {
		values[c.seriesNames[n.Index][0]] = float64(n.LastReport.DegradedVCPUs)
		overrun := 0.0
		if n.LastReport.Overrun {
			overrun = 1
		}
		values[c.seriesNames[n.Index][1]] = overrun
	}
	rec.RecordAll(tS, values)
}

// UsedNodes counts nodes hosting at least one VM.
func (c *Cluster) UsedNodes() int {
	n := 0
	for _, node := range c.nodes {
		if len(node.deployed) > 0 {
			n++
		}
	}
	return n
}

// ActiveEnergyJoules returns the energy consumed by nodes while they
// hosted VMs — the cluster's bill when idle nodes are powered off.
func (c *Cluster) ActiveEnergyJoules() float64 {
	var sum float64
	for _, n := range c.nodes {
		sum += n.energyJ
	}
	return sum
}

// TotalEnergyJoules returns the energy with every node always powered.
func (c *Cluster) TotalEnergyJoules() float64 {
	var sum float64
	for _, n := range c.nodes {
		sum += n.Machine.Meter.Joules()
	}
	return sum
}
