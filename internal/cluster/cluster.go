// Package cluster orchestrates virtual-frequency-controlled nodes at the
// datacenter level, implementing the direction the paper sketches in
// §III-C and §V: admission through the core-splitting constraint (Eq. 7),
// one frequency controller per node, migration-based rebalancing when a
// node's guarantees become infeasible, and cluster-wide energy
// accounting with idle nodes powered off.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/platform"
	"vfreq/internal/trace"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// Config tunes the cluster manager.
type Config struct {
	// Controller is the per-node controller configuration; the zero
	// value means core.DefaultConfig().
	Controller core.Config
	// Policy is the admission constraint (defaults to Eq. 7 with
	// memory enforcement).
	Policy placement.Policy
	// Algorithm selects the admission packer (defaults to BestFit).
	Algorithm placement.Algorithm
	// FailThreshold is the number of consecutive failed Steps — the
	// node's host unreachable for the whole period, its controller
	// recovering a panic, or every tracked vCPU degraded (the host
	// answers enumeration but no measurement or quota write succeeds)
	// — after which the node is marked failed: it is excluded from
	// admission and its VMs are evacuated to the surviving nodes. A
	// failed node is re-admitted after one clean Step. 0 disables
	// failure detection.
	FailThreshold int
	// Parallel steps the nodes concurrently during Cluster.Step, one
	// goroutine per node. Nodes share no mutable state while stepping
	// (each owns its machine, manager, controller and meter), so the
	// per-node reports, failure counters and energy accounting are
	// identical to the sequential walk; the failure/evacuation pass and
	// the error join still run sequentially in node-index order.
	Parallel bool
}

func (c Config) withDefaults() Config {
	if c.Controller.PeriodUs == 0 {
		c.Controller = core.DefaultConfig()
	}
	if c.Policy.Factor == 0 {
		c.Policy = placement.Policy{
			Mode: placement.VirtualFrequency, Factor: 1, Memory: true,
		}
	}
	return c
}

// Node is one managed machine.
type Node struct {
	Index   int
	Machine *host.Machine
	Manager *vm.Manager
	Ctrl    *core.Controller

	// LastReport is the degradation report of the node's most recent
	// controller Step (zero before the first Step).
	LastReport core.StepReport
	// LastErr is the node-level error of the most recent Step, set
	// only when the node's host was unreachable for the whole period.
	LastErr error
	// FailedSteps counts consecutive Steps that failed at node level
	// (LastErr set, or the controller recovered a panic); 0 after a
	// clean Step.
	FailedSteps int
	// Failed marks a node past Config.FailThreshold: it accepts no new
	// placements and its VMs are being evacuated. The mark clears after
	// one clean Step.
	Failed bool

	deployed map[string]*deployment
	energyJ  float64 // energy accrued while hosting at least one VM
	lastJ    float64
}

type deployment struct {
	name     string
	template vm.Template
	sources  []workload.Source
}

// Spec returns the node's hardware description.
func (n *Node) Spec() host.Spec { return n.Machine.Spec() }

// VMs returns the names of the VMs deployed on this node.
func (n *Node) VMs() []string {
	out := make([]string, 0, len(n.deployed))
	for _, inst := range n.Manager.List() {
		out = append(out, inst.Name())
	}
	return out
}

// usedFreqMHz returns Σ vCPU·F of the deployed VMs.
func (n *Node) usedFreqMHz() int64 {
	var sum int64
	for _, d := range n.deployed {
		sum += int64(d.template.VCPUs) * d.template.FreqMHz
	}
	return sum
}

// usedMemGB returns the deployed memory.
func (n *Node) usedMemGB() int {
	var sum int
	for _, d := range n.deployed {
		sum += d.template.MemoryGB
	}
	return sum
}

// usedVCPUs returns the deployed vCPU count.
func (n *Node) usedVCPUs() int {
	var sum int
	for _, d := range n.deployed {
		sum += d.template.VCPUs
	}
	return sum
}

// Cluster manages a set of nodes.
type Cluster struct {
	cfg        Config
	nodes      []*Node
	migrations int
	locations  map[string]int // VM name → node index

	evacuations   int // cumulative VMs moved off failed nodes
	lastEvacuated int // VMs evacuated during the last Step
	lastStranded  int // VMs left on failed nodes during the last Step
}

// New boots one machine per spec.
func New(specs []host.Spec, cfg Config) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, locations: map[string]int{}}
	for i, spec := range specs {
		machine, err := host.New(spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		mgr, err := vm.NewManager(machine)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.New(platform.NewSim(mgr), cfg.Controller)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &Node{
			Index:    i,
			Machine:  machine,
			Manager:  mgr,
			Ctrl:     ctrl,
			deployed: map[string]*deployment{},
		})
	}
	return c, nil
}

// Nodes returns the managed nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Migrations returns the number of VM migrations performed so far.
func (c *Cluster) Migrations() int { return c.migrations }

// Evacuations returns the number of VMs moved off failed nodes so far
// (every evacuation is also counted in Migrations).
func (c *Cluster) Evacuations() int { return c.evacuations }

// Locate returns the node index hosting the named VM, or -1.
func (c *Cluster) Locate(name string) int {
	if i, ok := c.locations[name]; ok {
		return i
	}
	return -1
}

// fits checks the admission constraint for tpl on node n.
func (c *Cluster) fits(n *Node, tpl vm.Template) bool {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		if float64(n.usedVCPUs()+tpl.VCPUs) > float64(spec.Cores)*p.Factor {
			return false
		}
	case placement.VirtualFrequency:
		if tpl.FreqMHz > spec.MaxMHz {
			return false
		}
		add := int64(tpl.VCPUs) * tpl.FreqMHz
		if float64(n.usedFreqMHz()+add) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor {
			return false
		}
	}
	if p.Memory && n.usedMemGB()+tpl.MemoryGB > spec.MemoryGB {
		return false
	}
	return true
}

// remaining returns the free capacity of n in the policy's unit, for the
// BestFit/WorstFit choice.
func (c *Cluster) remaining(n *Node) float64 {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		return float64(spec.Cores)*p.Factor - float64(n.usedVCPUs())
	default:
		return float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor - float64(n.usedFreqMHz())
	}
}

// Deploy admits a VM onto the cluster and provisions it. sources may be
// nil (idle VM). It returns the chosen node index.
func (c *Cluster) Deploy(name string, tpl vm.Template, sources []workload.Source) (int, error) {
	if _, ok := c.locations[name]; ok {
		return -1, fmt.Errorf("cluster: VM %q already deployed", name)
	}
	chosen := -1
	for i, n := range c.nodes {
		if n.Failed || !c.fits(n, tpl) {
			continue
		}
		switch c.cfg.Algorithm {
		case placement.FirstFit:
			chosen = i
		case placement.BestFit:
			if chosen == -1 || c.remaining(n) < c.remaining(c.nodes[chosen]) {
				chosen = i
			}
			continue
		case placement.WorstFit:
			if chosen == -1 || c.remaining(n) > c.remaining(c.nodes[chosen]) {
				chosen = i
			}
			continue
		default:
			return -1, fmt.Errorf("cluster: unknown algorithm %v", c.cfg.Algorithm)
		}
		break
	}
	if chosen == -1 {
		return -1, fmt.Errorf("cluster: no node can host %q (%d vCPU @ %d MHz, %d GB)",
			name, tpl.VCPUs, tpl.FreqMHz, tpl.MemoryGB)
	}
	if err := c.provisionOn(chosen, name, tpl, sources); err != nil {
		return -1, err
	}
	return chosen, nil
}

// provisionOn places the VM on a specific node, bypassing admission (used
// by Deploy and by migration).
func (c *Cluster) provisionOn(idx int, name string, tpl vm.Template, sources []workload.Source) error {
	n := c.nodes[idx]
	if _, err := n.Manager.Provision(name, tpl, sources); err != nil {
		return err
	}
	n.deployed[name] = &deployment{name: name, template: tpl, sources: sources}
	c.locations[name] = idx
	return nil
}

// Undeploy removes a VM from the cluster.
func (c *Cluster) Undeploy(name string) error {
	idx, ok := c.locations[name]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", name)
	}
	n := c.nodes[idx]
	if err := n.Manager.Destroy(name); err != nil {
		return err
	}
	delete(n.deployed, name)
	delete(c.locations, name)
	return nil
}

// Migrate moves a VM to another node. The workload sources carry their
// own state, so the VM resumes where it left off (the benchmark does not
// restart); the vCPU usage counters restart from zero on the target, as
// they do after a real migration.
func (c *Cluster) Migrate(name string, target int) error {
	src, ok := c.locations[name]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", name)
	}
	if target < 0 || target >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", target)
	}
	if target == src {
		return nil
	}
	d := c.nodes[src].deployed[name]
	if !c.fits(c.nodes[target], d.template) {
		return fmt.Errorf("cluster: node %d cannot host %q", target, name)
	}
	if err := c.Undeploy(name); err != nil {
		return err
	}
	if err := c.provisionOn(target, name, d.template, d.sources); err != nil {
		return err
	}
	c.migrations++
	return nil
}

// Resize live-reconfigures a deployed VM to a new template — the
// continuous template adjustment adaptive resource managers perform —
// re-checking the admission constraint with the VM's old demand
// replaced by the new one. srcs supplies workloads for vCPUs added by a
// grow (nil = idle); the VM keeps running throughout, and the node's
// controller picks the new shape up on its next Step.
func (c *Cluster) Resize(name string, tpl vm.Template, srcs []workload.Source) error {
	idx, ok := c.locations[name]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", name)
	}
	n := c.nodes[idx]
	d := n.deployed[name]
	if !c.fitsResized(n, d.template, tpl) {
		return fmt.Errorf("cluster: node %d cannot host %q resized to %d vCPU @ %d MHz, %d GB",
			idx, name, tpl.VCPUs, tpl.FreqMHz, tpl.MemoryGB)
	}
	if err := n.Manager.Reconfigure(name, tpl, srcs); err != nil {
		return err
	}
	d.template = tpl
	return nil
}

// fitsResized checks the admission constraint with old's demand on n
// replaced by new's.
func (c *Cluster) fitsResized(n *Node, old, tpl vm.Template) bool {
	p := c.cfg.Policy
	spec := n.Spec()
	switch p.Mode {
	case placement.CoreCount:
		used := n.usedVCPUs() - old.VCPUs + tpl.VCPUs
		if float64(used) > float64(spec.Cores)*p.Factor {
			return false
		}
	case placement.VirtualFrequency:
		if tpl.FreqMHz > spec.MaxMHz {
			return false
		}
		used := n.usedFreqMHz() - int64(old.VCPUs)*old.FreqMHz + int64(tpl.VCPUs)*tpl.FreqMHz
		if float64(used) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor {
			return false
		}
	}
	if p.Memory && n.usedMemGB()-old.MemoryGB+tpl.MemoryGB > spec.MemoryGB {
		return false
	}
	return true
}

// Overloaded returns the indices of nodes whose deployed guarantees
// violate the admission constraint (possible after Undeploy-free external
// changes or a policy change).
func (c *Cluster) Overloaded() []int {
	var out []int
	for i, n := range c.nodes {
		p := c.cfg.Policy
		spec := n.Spec()
		over := false
		switch p.Mode {
		case placement.CoreCount:
			over = float64(n.usedVCPUs()) > float64(spec.Cores)*p.Factor
		case placement.VirtualFrequency:
			over = float64(n.usedFreqMHz()) > float64(spec.Cores)*float64(spec.MaxMHz)*p.Factor
		}
		if p.Memory && n.usedMemGB() > spec.MemoryGB {
			over = true
		}
		if over {
			out = append(out, i)
		}
	}
	return out
}

// Rebalance migrates VMs away from overloaded nodes until every node
// satisfies the admission constraint or no feasible move remains. It
// returns the number of migrations performed.
func (c *Cluster) Rebalance() (int, error) {
	moved := 0
	for _, idx := range c.Overloaded() {
		n := c.nodes[idx]
		// Move smallest-demand VMs first: they are the cheapest to
		// migrate and often enough to restore feasibility.
		for c.isOverloaded(idx) {
			name := c.smallestVM(n)
			if name == "" {
				break
			}
			target := -1
			for j := range c.nodes {
				if j == idx || c.nodes[j].Failed {
					continue
				}
				if c.fits(c.nodes[j], n.deployed[name].template) {
					if target == -1 || c.remaining(c.nodes[j]) < c.remaining(c.nodes[target]) {
						target = j
					}
				}
			}
			if target == -1 {
				return moved, fmt.Errorf("cluster: node %d overloaded and no migration target for %q", idx, name)
			}
			if err := c.Migrate(name, target); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

func (c *Cluster) isOverloaded(idx int) bool {
	for _, i := range c.Overloaded() {
		if i == idx {
			return true
		}
	}
	return false
}

// smallestVM returns the deployed VM with the lowest vCPU·F demand.
func (c *Cluster) smallestVM(n *Node) string {
	best := ""
	var bestDemand int64 = 1 << 62
	for _, inst := range n.Manager.List() {
		d := n.deployed[inst.Name()]
		demand := int64(d.template.VCPUs) * d.template.FreqMHz
		if demand < bestDemand {
			bestDemand = demand
			best = inst.Name()
		}
	}
	return best
}

// Step advances every node by one control period and runs its
// controller. Node failures are isolated: a node whose host is
// unreachable for the period does not stop the other nodes from being
// controlled — its error is recorded on the node and returned joined
// with any others after every node has stepped.
//
// When Config.FailThreshold is positive, Step additionally tracks
// consecutive node-level failures: a node past the threshold is marked
// failed, excluded from admission, and its VMs are evacuated to the
// surviving nodes under the same Eq. 7 constraint as initial placement.
// A failed node re-admits itself after one clean Step.
func (c *Cluster) Step() error {
	period := c.cfg.Controller.PeriodUs
	if c.cfg.Parallel && len(c.nodes) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(c.nodes))
		for _, n := range c.nodes {
			go func(n *Node) {
				defer wg.Done()
				c.stepNode(n, period)
			}(n)
		}
		wg.Wait()
	} else {
		for _, n := range c.nodes {
			c.stepNode(n, period)
		}
	}
	// Joining errors after every node has stepped, in node-index order,
	// keeps the returned error deterministic whether or not the nodes
	// stepped concurrently.
	var errs []error
	for _, n := range c.nodes {
		if n.LastErr != nil {
			errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.Index, n.LastErr))
		}
	}
	c.lastEvacuated, c.lastStranded = 0, 0
	if c.cfg.FailThreshold > 0 {
		for _, n := range c.nodes {
			if n.FailedSteps >= c.cfg.FailThreshold {
				n.Failed = true
			}
			if n.Failed && len(n.deployed) > 0 {
				ev, str := c.evacuate(n)
				c.lastEvacuated += ev
				c.lastStranded += str
			}
		}
	}
	return errors.Join(errs...)
}

// stepNode advances one node by a period and runs its controller,
// updating only that node's state — which is what makes the concurrent
// Step safe. Energy accrues only while the node hosts at least one VM
// (idle nodes are modelled as powered off); lastJ is resampled every
// Step regardless, so joules burnt while idle are discarded rather than
// attributed to the first period after a deployment.
func (c *Cluster) stepNode(n *Node, period int64) {
	n.Machine.Advance(period)
	n.LastErr = n.Ctrl.Step()
	n.LastReport = n.Ctrl.LastReport()
	rep := n.LastReport
	if n.LastErr != nil || rep.Panicked ||
		(rep.VCPUs > 0 && rep.DegradedVCPUs == rep.VCPUs) {
		n.FailedSteps++
	} else {
		n.FailedSteps = 0
		n.Failed = false // the host answers again: re-admit
	}
	j := n.Machine.Meter.Joules()
	if len(n.deployed) > 0 {
		n.energyJ += j - n.lastJ
	}
	n.lastJ = j
}

// evacuate moves every VM off a failed node, choosing BestFit targets
// among the surviving nodes so the Eq. 7 feasibility of every target is
// preserved. VMs with no feasible target (or whose migration fails) stay
// stranded on the failed node; because the node stays marked failed,
// they are retried every Step until capacity appears or the node
// recovers.
func (c *Cluster) evacuate(n *Node) (evacuated, stranded int) {
	for _, name := range n.VMs() {
		d := n.deployed[name]
		target := -1
		for j, t := range c.nodes {
			if j == n.Index || t.Failed || !c.fits(t, d.template) {
				continue
			}
			if target == -1 || c.remaining(t) < c.remaining(c.nodes[target]) {
				target = j
			}
		}
		if target == -1 {
			stranded++
			continue
		}
		if err := c.Migrate(name, target); err != nil {
			stranded++
			continue
		}
		evacuated++
	}
	c.evacuations += evacuated
	return evacuated, stranded
}

// Health summarises the degradation of the last Step across the cluster.
type Health struct {
	// VCPUs and DegradedVCPUs aggregate the per-node StepReports.
	VCPUs         int
	DegradedVCPUs int
	// Faults is the total fault count of the last Step.
	Faults int
	// DegradedNodes counts nodes reporting any degradation, and
	// FailedNodes those whose whole host was unreachable or that are
	// marked failed past Config.FailThreshold.
	DegradedNodes int
	FailedNodes   int
	// Overruns counts nodes whose controller crossed its step-deadline
	// budget during the last Step.
	Overruns int
	// Recovered counts vCPUs whose failure counters reset during the
	// last Step after the configured clean streak.
	Recovered int
	// EvacuatedVMs counts VMs moved off failed nodes during the last
	// Step; StrandedVMs those left behind for lack of a feasible target.
	EvacuatedVMs int
	StrandedVMs  int
	// OpenVMs and HalfOpenVMs count the circuit breaker states across
	// the cluster: VMs quarantined after repeated faults and VMs being
	// probed for re-admission.
	OpenVMs     int
	HalfOpenVMs int
	// BreakerTrips counts breakers that opened during the last Step.
	BreakerTrips int
}

// Health aggregates the per-node degradation reports of the last Step.
func (c *Cluster) Health() Health {
	var h Health
	for _, n := range c.nodes {
		rep := n.LastReport
		h.VCPUs += rep.VCPUs
		h.DegradedVCPUs += rep.DegradedVCPUs
		h.Faults += rep.FaultCount()
		if rep.Degraded() {
			h.DegradedNodes++
		}
		if n.LastErr != nil || n.Failed {
			h.FailedNodes++
		}
		if rep.Overrun {
			h.Overruns++
		}
		h.Recovered += rep.Recovered
		h.OpenVMs += rep.OpenVMs
		h.HalfOpenVMs += rep.HalfOpenVMs
		h.BreakerTrips += rep.BreakerTrips
	}
	h.EvacuatedVMs = c.lastEvacuated
	h.StrandedVMs = c.lastStranded
	return h
}

// RecordHealth appends the last Step's degradation to rec as time
// series at time tS: cluster-wide totals plus one degraded-vCPU series
// per node, giving operators the same view of partial failure the
// paper's figures give of frequency.
func (c *Cluster) RecordHealth(rec *trace.Recorder, tS float64) {
	h := c.Health()
	values := map[string]float64{
		"cluster_degraded_vcpus": float64(h.DegradedVCPUs),
		"cluster_faults":         float64(h.Faults),
		"cluster_failed_nodes":   float64(h.FailedNodes),
		"cluster_overruns":       float64(h.Overruns),
		"cluster_evacuated_vms":  float64(h.EvacuatedVMs),
		"cluster_stranded_vms":   float64(h.StrandedVMs),
		"cluster_open_vms":       float64(h.OpenVMs),
		"cluster_halfopen_vms":   float64(h.HalfOpenVMs),
	}
	for _, n := range c.nodes {
		values[fmt.Sprintf("node%d_degraded", n.Index)] = float64(n.LastReport.DegradedVCPUs)
		overrun := 0.0
		if n.LastReport.Overrun {
			overrun = 1
		}
		values[fmt.Sprintf("node%d_overrun", n.Index)] = overrun
	}
	rec.RecordAll(tS, values)
}

// UsedNodes counts nodes hosting at least one VM.
func (c *Cluster) UsedNodes() int {
	n := 0
	for _, node := range c.nodes {
		if len(node.deployed) > 0 {
			n++
		}
	}
	return n
}

// ActiveEnergyJoules returns the energy consumed by nodes while they
// hosted VMs — the cluster's bill when idle nodes are powered off.
func (c *Cluster) ActiveEnergyJoules() float64 {
	var sum float64
	for _, n := range c.nodes {
		sum += n.energyJ
	}
	return sum
}

// TotalEnergyJoules returns the energy with every node always powered.
func (c *Cluster) TotalEnergyJoules() float64 {
	var sum float64
	for _, n := range c.nodes {
		sum += n.Machine.Meter.Joules()
	}
	return sum
}
