package cluster

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// TestIdleToDeployedEnergy pins the energy attribution of Step: joules
// burnt while a node idles (it is modelled as powered off, but the meter
// still integrates) must never be attributed to the node's active bill
// when a VM later arrives — only the periods actually hosting VMs count.
func TestIdleToDeployedEnergy(t *testing.T) {
	c, err := New([]host.Spec{host.Chetemi()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Idle periods: the meter advances, the active bill must not.
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ActiveEnergyJoules(); got != 0 {
		t.Fatalf("idle cluster accrued %.1f J active energy", got)
	}
	preDeploy := c.TotalEnergyJoules()
	if preDeploy <= 0 {
		t.Fatal("idle meter did not advance; the test proves nothing")
	}

	if _, err := c.Deploy("a", vm.Small(), busy(vm.Small().VCPUs)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	active := c.ActiveEnergyJoules()
	deployed := c.TotalEnergyJoules() - preDeploy
	if active <= 0 {
		t.Fatal("deployed period accrued no active energy")
	}
	// The active bill is exactly the post-deploy meter delta: none of
	// the 5 idle periods leaked in.
	if math.Abs(active-deployed) > 1e-9 {
		t.Fatalf("active energy %.3f J != post-deploy delta %.3f J (pre-deploy joules attributed)", active, deployed)
	}
}

// stepFingerprint flattens the observable outcome of a cluster run: per
// node, the controller caps/credits and the report counters, plus the
// energy bill and migration counters.
func stepFingerprint(c *Cluster) string {
	out := ""
	for _, n := range c.Nodes() {
		rep := n.LastReport
		out += fmt.Sprintf("node%d err=%v failed=%d/%v deg=%d/%d faults=%d retries=%d energy=%.6f\n",
			n.Index, n.LastErr, n.FailedSteps, n.Failed,
			rep.DegradedVCPUs, rep.VCPUs, rep.FaultCount(), rep.Retries, n.energyJ)
		for _, st := range n.Ctrl.VMs() {
			out += fmt.Sprintf("  vm=%s credit=%d", st.Info.Name, st.CreditUs)
			for _, v := range st.VCPUs {
				out += fmt.Sprintf(" [%d cap=%d est=%d u=%d f=%.3f]",
					v.Index, v.CapUs, v.EstUs, v.LastU, v.FreqMHz)
			}
			out += "\n"
		}
	}
	out += fmt.Sprintf("migrations=%d evacuations=%d active=%.6f\n",
		c.Migrations(), c.Evacuations(), c.ActiveEnergyJoules())
	return out
}

// buildParallelFixture deploys a deterministic mixed workload across
// three nodes, stepped by the given worker-pool size (1 = serial).
func buildParallelFixture(t *testing.T, workers int) *Cluster {
	t.Helper()
	specs := []host.Spec{host.Chetemi(), host.Chiclet(), host.Chetemi()}
	c, err := New(specs, Config{StepWorkers: workers, FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		tpl := vm.Small()
		var srcs []workload.Source
		switch i % 3 {
		case 0:
			srcs = busy(tpl.VCPUs)
		case 1:
			for j := 0; j < tpl.VCPUs; j++ {
				srcs = append(srcs, &workload.Constant{Level: 0.3})
			}
		case 2:
			b, err := workload.NewCompress7zip(tpl.VCPUs, 40_000_000_000, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			srcs = b.Sources()
		}
		if _, err := c.Deploy(fmt.Sprintf("vm%02d", i), tpl, srcs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestParallelStepDeterminism runs the same deployment under worker
// pools of 1 (serial), 4 and GOMAXPROCS and requires identical caps,
// credits, reports and energy after every Step — the pool twin of the
// tentpole: results must not depend on the worker count.
func TestParallelStepDeterminism(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	clusters := make([]*Cluster, len(workerCounts))
	for i, w := range workerCounts {
		clusters[i] = buildParallelFixture(t, w)
		defer clusters[i].Close()
	}
	for s := 0; s < 20; s++ {
		errSeq := clusters[0].Step()
		fpSeq := stepFingerprint(clusters[0])
		for i := 1; i < len(clusters); i++ {
			errPar := clusters[i].Step()
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("step %d: workers=1 err=%v workers=%d err=%v", s, errSeq, workerCounts[i], errPar)
			}
			if fpPar := stepFingerprint(clusters[i]); fpSeq != fpPar {
				t.Fatalf("step %d diverged at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
					s, workerCounts[i], fpSeq, workerCounts[i], fpPar)
			}
		}
	}
}

// TestStepWorkerPanicReraise pins the pool's panic contract: a panic
// while stepping a node resurfaces on the goroutine calling Step, not
// inside a worker.
func TestStepWorkerPanicReraise(t *testing.T) {
	c := buildParallelFixture(t, 2)
	defer c.Close()
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Poison a node: a nil machine panics in stepNode before the
	// controller's own recovery can intervene.
	c.nodes[1].Machine = nil
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not resurface on the Step caller")
		}
	}()
	_ = c.Step()
}
