package cluster

import (
	"fmt"
	"math"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// TestIdleToDeployedEnergy pins the energy attribution of Step: joules
// burnt while a node idles (it is modelled as powered off, but the meter
// still integrates) must never be attributed to the node's active bill
// when a VM later arrives — only the periods actually hosting VMs count.
func TestIdleToDeployedEnergy(t *testing.T) {
	c, err := New([]host.Spec{host.Chetemi()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Idle periods: the meter advances, the active bill must not.
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ActiveEnergyJoules(); got != 0 {
		t.Fatalf("idle cluster accrued %.1f J active energy", got)
	}
	preDeploy := c.TotalEnergyJoules()
	if preDeploy <= 0 {
		t.Fatal("idle meter did not advance; the test proves nothing")
	}

	if _, err := c.Deploy("a", vm.Small(), busy(vm.Small().VCPUs)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	active := c.ActiveEnergyJoules()
	deployed := c.TotalEnergyJoules() - preDeploy
	if active <= 0 {
		t.Fatal("deployed period accrued no active energy")
	}
	// The active bill is exactly the post-deploy meter delta: none of
	// the 5 idle periods leaked in.
	if math.Abs(active-deployed) > 1e-9 {
		t.Fatalf("active energy %.3f J != post-deploy delta %.3f J (pre-deploy joules attributed)", active, deployed)
	}
}

// stepFingerprint flattens the observable outcome of a cluster run: per
// node, the controller caps/credits and the report counters, plus the
// energy bill and migration counters.
func stepFingerprint(c *Cluster) string {
	out := ""
	for _, n := range c.Nodes() {
		rep := n.LastReport
		out += fmt.Sprintf("node%d err=%v failed=%d/%v deg=%d/%d faults=%d retries=%d energy=%.6f\n",
			n.Index, n.LastErr, n.FailedSteps, n.Failed,
			rep.DegradedVCPUs, rep.VCPUs, rep.FaultCount(), rep.Retries, n.energyJ)
		for _, st := range n.Ctrl.VMs() {
			out += fmt.Sprintf("  vm=%s credit=%d", st.Info.Name, st.CreditUs)
			for _, v := range st.VCPUs {
				out += fmt.Sprintf(" [%d cap=%d est=%d u=%d f=%.3f]",
					v.Index, v.CapUs, v.EstUs, v.LastU, v.FreqMHz)
			}
			out += "\n"
		}
	}
	out += fmt.Sprintf("migrations=%d evacuations=%d active=%.6f\n",
		c.Migrations(), c.Evacuations(), c.ActiveEnergyJoules())
	return out
}

// buildParallelFixture deploys a deterministic mixed workload across
// three nodes.
func buildParallelFixture(t *testing.T, parallel bool) *Cluster {
	t.Helper()
	specs := []host.Spec{host.Chetemi(), host.Chiclet(), host.Chetemi()}
	c, err := New(specs, Config{Parallel: parallel, FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		tpl := vm.Small()
		var srcs []workload.Source
		switch i % 3 {
		case 0:
			srcs = busy(tpl.VCPUs)
		case 1:
			for j := 0; j < tpl.VCPUs; j++ {
				srcs = append(srcs, &workload.Constant{Level: 0.3})
			}
		case 2:
			b, err := workload.NewCompress7zip(tpl.VCPUs, 40_000_000_000, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			srcs = b.Sources()
		}
		if _, err := c.Deploy(fmt.Sprintf("vm%02d", i), tpl, srcs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestParallelStepDeterminism runs the same deployment twice — nodes
// stepped sequentially vs concurrently — and requires identical caps,
// credits, reports and energy after every Step.
func TestParallelStepDeterminism(t *testing.T) {
	seq := buildParallelFixture(t, false)
	par := buildParallelFixture(t, true)
	for s := 0; s < 20; s++ {
		errSeq := seq.Step()
		errPar := par.Step()
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("step %d: sequential err=%v parallel err=%v", s, errSeq, errPar)
		}
		fpSeq, fpPar := stepFingerprint(seq), stepFingerprint(par)
		if fpSeq != fpPar {
			t.Fatalf("step %d diverged:\n--- sequential ---\n%s--- parallel ---\n%s", s, fpSeq, fpPar)
		}
	}
}
