package cluster

import (
	"fmt"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/placement"
	"vfreq/internal/vm"
)

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Controller.PeriodUs != 1_000_000 {
		t.Fatalf("default controller period = %d", cfg.Controller.PeriodUs)
	}
	if cfg.Policy.Mode != placement.VirtualFrequency || !cfg.Policy.Memory {
		t.Fatalf("default policy = %+v", cfg.Policy)
	}
	// Explicit values survive.
	custom := Config{Policy: placement.Policy{Mode: placement.CoreCount, Factor: 2}}.withDefaults()
	if custom.Policy.Mode != placement.CoreCount || custom.Policy.Factor != 2 {
		t.Fatalf("custom policy lost: %+v", custom.Policy)
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	bad := Config{Policy: placement.Policy{Mode: placement.CoreCount, Factor: 1, CoreSplitting: true}}
	if _, err := New([]host.Spec{host.Chetemi()}, bad); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestWorstFitSpreadsAcrossNodes(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 8
	c, err := New([]host.Spec{spec, spec}, Config{Algorithm: placement.WorstFit})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Deploy("a", vm.Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Deploy("b", vm.Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("WorstFit stacked both VMs on node %d", a)
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 8
	c, err := New([]host.Spec{spec, spec}, Config{Algorithm: placement.FirstFit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		idx, err := c.Deploy(fmt.Sprintf("v%d", i), vm.Small(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatalf("FirstFit chose node %d", idx)
		}
	}
}

func TestCoreCountAdmission(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 4
	c, err := New([]host.Spec{spec}, Config{
		Policy: placement.Policy{Mode: placement.CoreCount, Factor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Large(), nil); err != nil { // 4 vCPUs
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Small(), nil); err == nil {
		t.Fatal("vCPU-count overcommit accepted")
	}
	// Overloaded detection in core-count mode.
	if err := c.provisionOn(0, "forced", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Overloaded(); len(got) != 1 {
		t.Fatalf("Overloaded = %v", got)
	}
}

func TestMemoryOverloadDetected(t *testing.T) {
	spec := host.Chetemi()
	spec.MemoryGB = 4
	c, err := New([]host.Spec{spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(0, "a", vm.Large(), nil); err != nil { // 8 GB > 4 GB
		t.Fatal(err)
	}
	if got := c.Overloaded(); len(got) != 1 {
		t.Fatalf("memory overload not detected: %v", got)
	}
}
