package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/placement"
	"vfreq/internal/vm"
)

// buildScaleCluster boots nodes 8-core sim machines and spreads
// vmsPerNode small VMs on each via WorstFit (which round-robins across
// equal nodes), then warms the cluster with a few steps so the scratch
// buffers, worker pool and sync.Pool read buffers reach steady state.
func buildScaleCluster(tb testing.TB, nodes, vmsPerNode, workers, warmup int) *Cluster {
	tb.Helper()
	spec := host.Chetemi()
	spec.Cores = 8
	specs := make([]host.Spec, nodes)
	for i := range specs {
		specs[i] = spec
	}
	c, err := New(specs, Config{
		StepWorkers: workers,
		Algorithm:   placement.WorstFit,
	})
	if err != nil {
		tb.Fatal(err)
	}
	// Armed in every scale test and benchmark: the whole observability
	// layer — cluster gauges, the shared node-step histogram and every
	// node controller's stage histograms — must cost zero steady-state
	// allocations.
	c.ArmMetrics(metrics.NewRegistry())
	for i := 0; i < nodes*vmsPerNode; i++ {
		if _, err := c.Deploy(fmt.Sprintf("vm%05d", i), vm.Small(), busy(vm.Small().VCPUs)); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		if err := c.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

// TestClusterStepZeroAlloc is the cluster twin of core's
// TestStepZeroAlloc: once the deployment is stable, the whole cluster
// Step — node stepping through the sim pseudo-file stack, error join,
// Health aggregation and the failure pass — must not allocate.
func TestClusterStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := buildScaleCluster(t, 2, 4, workers, 8)
			defer c.Close()
			allocs := testing.AllocsPerRun(50, func() {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state cluster Step allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkClusterScale measures the cluster data plane at fleet sizes
// — {64, 256, 1024} nodes × 8 VMs each — stepped serially and on the
// full worker pool. The interesting numbers are ns/op scaling across
// sizes, the serial-vs-pool ratio on multi-core runners, and allocs/op,
// which must stay 0 at steady state.
func BenchmarkClusterScale(b *testing.B) {
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n) // the pool variant duplicates serial on 1 core
	}
	for _, nodes := range []int{64, 256, 1024} {
		for _, workers := range workerCounts {
			name := fmt.Sprintf("nodes=%d/workers=%d", nodes, workers)
			b.Run(name, func(b *testing.B) {
				c := buildScaleCluster(b, nodes, 8, workers, 8)
				defer c.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIndexedDeploy measures admission cost at fleet scale: one
// BestFit deploy+undeploy cycle against a 1024-node cluster, which the
// free-capacity index serves in O(log N).
func BenchmarkIndexedDeploy(b *testing.B) {
	c := buildScaleCluster(b, 1024, 8, 1, 0)
	defer c.Close()
	tpl := vm.Small()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Deploy("probe", tpl, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Undeploy("probe"); err != nil {
			b.Fatal(err)
		}
	}
}
