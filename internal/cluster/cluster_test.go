package cluster

import (
	"fmt"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

func twoNodeCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New([]host.Spec{host.Chetemi(), host.Chiclet()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func busy(n int) []workload.Source {
	out := make([]workload.Source, n)
	for i := range out {
		out[i] = workload.Busy()
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	bad := host.Chetemi()
	bad.Cores = 0
	if _, err := New([]host.Spec{bad}, Config{}); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestDeployAdmission(t *testing.T) {
	c := twoNodeCluster(t)
	// BestFit with all nodes empty: equal remaining → chetemi (40
	// cores) is fuller per unit; actually chetemi has less capacity,
	// so BestFit picks it first.
	idx, err := c.Deploy("a", vm.Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("deployed to node %d, want 0 (chetemi, least remaining)", idx)
	}
	if c.Locate("a") != 0 {
		t.Fatal("Locate disagrees")
	}
	if _, err := c.Deploy("a", vm.Small(), nil); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
}

func TestDeployFillsThenSpills(t *testing.T) {
	c := twoNodeCluster(t)
	// chetemi capacity under Eq. 7: 40 × 2400 = 96000 MHz → 13 large
	// (13 × 7200 = 93600) fit; the 14th must spill to chiclet.
	for i := 0; i < 13; i++ {
		idx, err := c.Deploy(fmt.Sprintf("l%02d", i), vm.Large(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Fatalf("large %d went to node %d, want 0", i, idx)
		}
	}
	idx, err := c.Deploy("l13", vm.Large(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("14th large went to node %d, want 1 (spill)", idx)
	}
	if c.UsedNodes() != 2 {
		t.Fatalf("UsedNodes = %d", c.UsedNodes())
	}
}

func TestDeployRejectsWhenFull(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 1
	spec.MemoryGB = 4
	c, err := New([]host.Spec{spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), nil); err != nil { // 1000 MHz of 2400
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Large(), nil); err == nil {
		t.Fatal("infeasible deploy accepted")
	}
}

func TestMemoryAdmission(t *testing.T) {
	spec := host.Chetemi()
	spec.MemoryGB = 3
	c, err := New([]host.Spec{spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), nil); err != nil { // 2 GB
		t.Fatal(err)
	}
	if _, err := c.Deploy("b", vm.Small(), nil); err == nil {
		t.Fatal("memory overcommit accepted")
	}
}

func TestUndeploy(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Undeploy("a"); err != nil {
		t.Fatal(err)
	}
	if c.Locate("a") != -1 || c.UsedNodes() != 0 {
		t.Fatal("undeploy incomplete")
	}
	if err := c.Undeploy("a"); err == nil {
		t.Fatal("double undeploy accepted")
	}
}

func TestStepRunsControllers(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	n := c.Nodes()[0]
	if n.Ctrl.Steps() != 5 {
		t.Fatalf("controller ran %d steps, want 5", n.Ctrl.Steps())
	}
	if n.Machine.NowUs() != 5_000_000 {
		t.Fatalf("machine at %d µs", n.Machine.NowUs())
	}
}

func TestMigratePreservesWorkloadProgress(t *testing.T) {
	c := twoNodeCluster(t)
	bench, err := workload.NewOpenSSL(2, 10_000_000_000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), bench.Sources()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if moved, err := c.Migrate("a", 1); err != nil || !moved {
		t.Fatalf("moved=%v err=%v", moved, err)
	}
	if c.Locate("a") != 1 {
		t.Fatal("VM not on target")
	}
	if c.Migrations() != 1 {
		t.Fatalf("migrations = %d", c.Migrations())
	}
	// The benchmark keeps running on the new node and eventually
	// completes: its internal state survived the move.
	for i := 0; i < 40 && !bench.Done(); i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !bench.Done() {
		t.Fatal("benchmark did not complete after migration")
	}
	// Source node is empty again.
	if got := len(c.Nodes()[0].VMs()); got != 0 {
		t.Fatalf("source node still hosts %d VMs", got)
	}
}

func TestMigrateValidation(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Migrate("ghost", 1); err == nil {
		t.Fatal("migrating unknown VM succeeded")
	}
	if _, err := c.Deploy("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate("a", 9); err == nil {
		t.Fatal("migrating to unknown node succeeded")
	}
	if moved, err := c.Migrate("a", 0); err != nil || moved {
		t.Fatalf("no-op migration: moved=%v err=%v, want false, nil", moved, err)
	}
	if c.Migrations() != 0 {
		t.Fatal("no-op migration counted")
	}
}

func TestRebalanceRestoresFeasibility(t *testing.T) {
	// Two small nodes; force an overload by deploying directly.
	spec := host.Chetemi()
	spec.Cores = 4 // capacity 9600 MHz
	c, err := New([]host.Spec{spec, spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: 2 large = 14400 MHz > 9600 (bypass admission).
	if err := c.provisionOn(0, "l0", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(0, "l1", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Overloaded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Overloaded = %v, want [0]", got)
	}
	moved, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved %d VMs, want 1", moved)
	}
	if len(c.Overloaded()) != 0 {
		t.Fatal("still overloaded after rebalance")
	}
	if c.UsedNodes() != 2 {
		t.Fatal("VM not spread across nodes")
	}
}

func TestRebalanceFailsWhenNoTarget(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 4
	c, err := New([]host.Spec{spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(0, "l0", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(0, "l1", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(); err == nil {
		t.Fatal("rebalance without target succeeded")
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	active := c.ActiveEnergyJoules()
	total := c.TotalEnergyJoules()
	if active <= 0 {
		t.Fatal("no active energy recorded")
	}
	// The empty chiclet idles at ~110 W: total must exceed active by
	// roughly its idle draw over 3 s.
	if total <= active+200 {
		t.Fatalf("total %f vs active %f: idle node not accounted", total, active)
	}
}

// End-to-end: the controller keeps per-node guarantees while the cluster
// manager spreads VMs under Eq. 7.
func TestClusterIntegrationGuarantees(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 4 // 9600 MHz per node
	c, err := New([]host.Spec{spec, spec}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 large per node: 2 × 7200 = 14400 > 9600, so one per node plus
	// one small each.
	insts := map[string]*vm.Instance{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("large-%d", i)
		idx, err := c.Deploy(name, vm.Large(), busy(4))
		if err != nil {
			t.Fatal(err)
		}
		insts[name] = c.Nodes()[idx].Manager.Get(name)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("small-%d", i)
		idx, err := c.Deploy(name, vm.Small(), busy(2))
		if err != nil {
			t.Fatal(err)
		}
		insts[name] = c.Nodes()[idx].Manager.Get(name)
	}
	if c.UsedNodes() != 2 {
		t.Fatalf("UsedNodes = %d, want 2", c.UsedNodes())
	}
	// Converge, then measure one period.
	for i := 0; i < 12; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snaps := map[string][]int64{}
	for name, inst := range insts {
		snaps[name] = inst.SnapshotCycles()
	}
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for name, inst := range insts {
		f := inst.MeanVCPUFreqMHz(snaps[name], 5_000_000)
		want := float64(inst.Template().FreqMHz)
		if f < want*0.93 {
			t.Fatalf("%s at %.0f MHz, below guarantee %.0f", name, f, want)
		}
	}
}
