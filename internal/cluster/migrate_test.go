package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/placement"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// smallSpec is a 4-core node (9600 MHz of Eq. 7 capacity) — small enough
// that a couple of templates saturate it.
func smallSpec(name string) host.Spec {
	s := host.Chetemi()
	s.Name = name
	s.Cores = 4
	return s
}

// light builds n workload sources that demand well under the Eq. 2
// guarantee, so the VM earns credit every step — the wallet the
// migration tests watch travel.
func light(n int) []workload.Source {
	out := make([]workload.Source, n)
	for i := range out {
		out[i] = &workload.Constant{Level: 0.05}
	}
	return out
}

// normalizeSnap zeroes the VMSnapshot fields a migration documents as
// target-relative: the usage baseline (counters restart at zero), the
// thread IDs and core pins (re-read on the target host).
func normalizeSnap(vs core.VMSnapshot) core.VMSnapshot {
	out := vs
	out.VCPUs = append([]core.VCPUSnapshot(nil), vs.VCPUs...)
	for i := range out.VCPUs {
		out.VCPUs[i].PrevUsageUs = 0
		out.VCPUs[i].TID = 0
		out.VCPUs[i].LastCore = 0
	}
	return out
}

// A committed migration carries the controller state: the target's
// controller resumes with the source's credit wallet, histories and
// breaker phase, and the source's controller forgets the VM at once.
func TestMigrateCarriesControllerState(t *testing.T) {
	c := twoNodeCluster(t)
	reg := metrics.NewRegistry()
	c.ArmMetrics(reg)
	if _, err := c.Deploy("a", vm.Small(), light(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.CreditUs <= 0 {
		t.Fatalf("no credit earned before the move (%d); the test would prove nothing", snap.CreditUs)
	}
	if moved, err := c.Migrate("a", 1); err != nil || !moved {
		t.Fatalf("moved=%v err=%v", moved, err)
	}
	if c.Nodes()[0].Ctrl.VM("a") != nil {
		t.Fatal("source controller still tracks the migrated VM")
	}
	st := c.Nodes()[1].Ctrl.VM("a")
	if st == nil {
		t.Fatal("target controller did not adopt the VM")
	}
	if st.CreditUs != snap.CreditUs {
		t.Fatalf("credit %d on the target, exported %d", st.CreditUs, snap.CreditUs)
	}
	if st.VCPUs[0].Hist.Len() == 0 {
		t.Fatal("history ring not carried")
	}
	want := MigrationStats{Attempted: 1, Committed: 1, StateCarried: 1}
	if got := c.MigrationStats(); got != want {
		t.Fatalf("MigrationStats = %+v, want %+v", got, want)
	}
	for metric, want := range map[string]int64{
		"vfreq_cluster_migration_attempted_total":     1,
		"vfreq_cluster_migration_committed_total":     1,
		"vfreq_cluster_migration_rolled_back_total":   0,
		"vfreq_cluster_migration_state_carried_total": 1,
	} {
		if got := reg.Counter(metric, "").Value(); got != want {
			t.Fatalf("%s = %d, want %d", metric, got, want)
		}
	}
	// The cluster keeps stepping cleanly and the VM stays controlled.
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Nodes()[1].Ctrl.VM("a") == nil {
		t.Fatal("adopted VM lost after stepping")
	}
}

// The twin test: a cluster that migrates its VM and a cluster that
// stays put must hold bit-identical controller state for the VM, modulo
// the documented target-relative fields — immediately after the move
// and after further steps.
func TestMigrateTwinAgainstStay(t *testing.T) {
	mk := func() *Cluster {
		c, err := New([]host.Spec{smallSpec("twin-a"), smallSpec("twin-b")}, Config{StepWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	stay, move := mk(), mk()
	step := func(c *Cluster) {
		t.Helper()
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		step(stay)
		step(move)
	}
	if moved, err := move.Migrate("a", 1); err != nil || !moved {
		t.Fatalf("moved=%v err=%v", moved, err)
	}
	if move.MigrationStats().StateCarried != 1 {
		t.Fatalf("state not carried: %+v", move.MigrationStats())
	}
	export := func(c *Cluster, node int) core.VMSnapshot {
		t.Helper()
		snap, err := c.Nodes()[node].Ctrl.ExportVM("a")
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	// Immediately after the move: identical modulo baselines.
	if got, want := normalizeSnap(export(move, 1)), normalizeSnap(export(stay, 0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-move state diverged from the stay twin:\n got %+v\nwant %+v", got, want)
	}
	// And it stays identical as both twins keep stepping: the control
	// loop resumed, it did not restart.
	for i := 0; i < 5; i++ {
		step(stay)
		step(move)
		if got, want := normalizeSnap(export(move, 1)), normalizeSnap(export(stay, 0)); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d after the move diverged:\n got %+v\nwant %+v", i+1, got, want)
		}
	}
}

// The satellite regression: a Migrate whose target provision fails must
// leave the cluster bit-identical to its pre-migration state — the VM
// keeps running on the source, nothing is lost, no counter moves.
func TestMigrateRollbackOnTargetProvisionFailure(t *testing.T) {
	// CoreCount policy so the cluster-level fits check passes while the
	// target manager rejects the template (its F exceeds the node's
	// F_MAX) — a provision-time fault, exactly the lost-VM bug's shape.
	weak := smallSpec("weak")
	weak.MinMHz = 500
	weak.MaxMHz = 1000
	weak.TurboMHz = 1000
	c, err := New([]host.Spec{smallSpec("ok"), weak}, Config{
		Policy: placement.Policy{Mode: placement.CoreCount, Factor: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	tpl := vm.Template{Name: "mid", VCPUs: 2, FreqMHz: 2000, MemoryGB: 2}
	if _, err := c.Deploy("a", tpl, busy(2)); err != nil {
		t.Fatal(err)
	}
	if c.Locate("a") != 0 {
		t.Fatal("test expects the VM on node 0")
	}
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := c.Nodes()[0], c.Nodes()[1]
	used := [3]int{int(n0.usedFreq), n0.usedVC, n0.usedMem}

	moved, err := c.Migrate("a", 1)
	if err == nil || moved {
		t.Fatalf("moved=%v err=%v, want a failed prepare", moved, err)
	}
	if !strings.Contains(err.Error(), "preparing") {
		t.Fatalf("error %v does not name the prepare phase", err)
	}
	// Bit-identical pre-migration state: location, bookkeeping, index,
	// controller state, and no migration counted.
	if c.Locate("a") != 0 {
		t.Fatal("VM lost or moved after a failed prepare")
	}
	if got := [3]int{int(n0.usedFreq), n0.usedVC, n0.usedMem}; got != used {
		t.Fatalf("source bookkeeping changed: %v, want %v", got, used)
	}
	if n1.usedFreq != 0 || n1.usedVC != 0 || n1.usedMem != 0 || len(n1.deployed) != 0 {
		t.Fatalf("target bookkeeping dirtied: freq=%d vc=%d mem=%d deployed=%d",
			n1.usedFreq, n1.usedVC, n1.usedMem, len(n1.deployed))
	}
	if n1.Manager.Get("a") != nil {
		t.Fatal("target manager kept a half-provisioned VM")
	}
	after, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("source controller state changed:\n got %+v\nwant %+v", after, before)
	}
	if c.Migrations() != 0 {
		t.Fatalf("Migrations = %d after a failed prepare", c.Migrations())
	}
	want := MigrationStats{Attempted: 1}
	if got := c.MigrationStats(); got != want {
		t.Fatalf("MigrationStats = %+v, want %+v", got, want)
	}
	// The VM is alive: further steps control it on the source.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes()[0].Ctrl.VM("a") == nil {
		t.Fatal("VM no longer controlled after the failed migration")
	}
}

// A commit-phase failure (the source copy cannot be destroyed) rolls the
// prepared target copy back and reports it.
func TestMigrateRollbackOnSourceDestroyFailure(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// The source instance vanishes out of band: prepare will succeed,
	// the commit-side destroy cannot.
	if err := c.Nodes()[0].Manager.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	moved, err := c.Migrate("a", 1)
	if err == nil || moved {
		t.Fatalf("moved=%v err=%v, want a failed commit", moved, err)
	}
	if c.Nodes()[1].Manager.Get("a") != nil {
		t.Fatal("prepared target copy not rolled back")
	}
	if c.Migrations() != 0 {
		t.Fatal("failed migration counted")
	}
	want := MigrationStats{Attempted: 1, RolledBack: 1}
	if got := c.MigrationStats(); got != want {
		t.Fatalf("MigrationStats = %+v, want %+v", got, want)
	}
}

// The no-op contract: migrating a VM onto its own node reports
// (false, nil) and leaves every counter untouched, so Rebalance
// accounting stays exact.
func TestMigrateNoopContract(t *testing.T) {
	c := twoNodeCluster(t)
	if _, err := c.Deploy("a", vm.Small(), busy(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	before, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	moved, err := c.Migrate("a", 0)
	if err != nil || moved {
		t.Fatalf("no-op returned moved=%v err=%v, want false, nil", moved, err)
	}
	if c.Migrations() != 0 || c.MigrationStats() != (MigrationStats{}) {
		t.Fatalf("no-op touched counters: migrations=%d stats=%+v", c.Migrations(), c.MigrationStats())
	}
	after, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("no-op changed controller state")
	}
}

// The Rebalance sweep continues past a node whose VMs have no feasible
// target: later overloaded nodes are still drained, and the stranding
// is reported alongside the committed count.
func TestRebalanceContinuesPastStrandedNode(t *testing.T) {
	c, err := New([]host.Spec{smallSpec("n0"), smallSpec("n1"), smallSpec("n2")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: two Large (14400 MHz > 9600) — no target can take a Large
	// once node 2 carries a Medium (remaining 4800 < 7200) and node 1 is
	// itself overloaded.
	if err := c.provisionOn(0, "l0", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(0, "l1", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	// Node 1: two Medium + one Small (10600 > 9600); the Small fits
	// node 2.
	if err := c.provisionOn(1, "m0", vm.Medium(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(1, "m1", vm.Medium(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.provisionOn(1, "s0", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	// Node 2: one Medium (4800 of 9600).
	if err := c.provisionOn(2, "m2", vm.Medium(), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Overloaded(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Overloaded = %v, want [0 1]", got)
	}

	moved, err := c.Rebalance()
	if err == nil {
		t.Fatal("stranded node 0 not reported")
	}
	if !strings.Contains(err.Error(), "node 0") {
		t.Fatalf("error %v does not name the stranded node", err)
	}
	if moved != 1 {
		t.Fatalf("moved %d, want 1 (node 1's Small despite node 0 stranding)", moved)
	}
	if c.Locate("s0") != 2 {
		t.Fatalf("s0 on node %d, want 2", c.Locate("s0"))
	}
	if got := c.Overloaded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Overloaded after sweep = %v, want [0] only", got)
	}
}

// Evacuation rides the same prepare→commit path, so a VM moved off a
// failed node keeps its wallet and history — ExportVM needs no reads
// from the dead host.
func TestEvacuationCarriesState(t *testing.T) {
	c, err := New([]host.Spec{host.Chetemi(), host.Chiclet()}, Config{FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("a", vm.Small(), light(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Nodes()[0].Ctrl.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.CreditUs <= 0 {
		t.Fatal("no credit before the failure; the test would prove nothing")
	}
	c.Nodes()[0].Machine.FailReads("machine-", errors.New("host unreachable"), -1)
	for i := 0; i < 2; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Locate("a") != 1 {
		t.Fatalf("VM not evacuated: on node %d", c.Locate("a"))
	}
	st := c.Nodes()[1].Ctrl.VM("a")
	if st == nil {
		t.Fatal("target controller did not adopt the evacuated VM")
	}
	// The wallet survived the node failure (degraded steps accrue no
	// credit, so it is exactly the pre-failure balance).
	if st.CreditUs != snap.CreditUs {
		t.Fatalf("evacuated credit %d, want %d carried", st.CreditUs, snap.CreditUs)
	}
	if st.VCPUs[0].Hist.Len() == 0 {
		t.Fatal("evacuated history ring empty: VM was cold-started, not adopted")
	}
	if got := c.MigrationStats(); got.StateCarried != 1 {
		t.Fatalf("MigrationStats = %+v, want the evacuation state-carried", got)
	}
}

// 100 seeds of migrate churn against a no-migration baseline: the
// tracked population stays consistent, every commit conserves the
// credit wallet, and the aggregate VM/vCPU view matches the baseline.
func TestMigrateChurnTwinHundredSeeds(t *testing.T) {
	spec := host.Chetemi()
	spec.Cores = 8
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		mk := func() *Cluster {
			c, err := New([]host.Spec{spec, spec}, Config{StepWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := c.Deploy(fmt.Sprintf("vm%d", i), vm.Small(), busy(2)); err != nil {
					t.Fatal(err)
				}
			}
			return c
		}
		churn, base := mk(), mk()
		for step := 0; step < 10; step++ {
			if err := churn.Step(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if err := base.Step(); err != nil {
				t.Fatalf("seed %d step %d (baseline): %v", seed, step, err)
			}
			name := fmt.Sprintf("vm%d", rng.Intn(4))
			target := rng.Intn(2)
			var pre int64 = -1
			if src := churn.Locate(name); src != target {
				if st := churn.Nodes()[src].Ctrl.VM(name); st != nil {
					pre = st.CreditUs
				}
			}
			carried := churn.MigrationStats().StateCarried
			moved, err := churn.Migrate(name, target)
			if err != nil {
				t.Fatalf("seed %d step %d: migrate %s→%d: %v", seed, step, name, target, err)
			}
			if moved && churn.MigrationStats().StateCarried == carried+1 && pre >= 0 {
				got := churn.Nodes()[target].Ctrl.VM(name).CreditUs
				if got != pre {
					t.Fatalf("seed %d step %d: credit not conserved across %s→%d: %d, want %d",
						seed, step, name, target, got, pre)
				}
			}
		}
		// Aggregate twin: same population, fully tracked, no VM lost or
		// double-tracked anywhere.
		stats := churn.MigrationStats()
		if churn.Migrations() != stats.Committed || stats.Committed > stats.Attempted {
			t.Fatalf("seed %d: inconsistent stats %+v vs Migrations %d", seed, stats, churn.Migrations())
		}
		for _, tc := range []*Cluster{churn, base} {
			var names []string
			vcpus := 0
			for i, n := range tc.Nodes() {
				for _, st := range n.Ctrl.VMs() {
					if tc.Locate(st.Info.Name) != i {
						t.Fatalf("seed %d: %s tracked on node %d but located on %d",
							seed, st.Info.Name, i, tc.Locate(st.Info.Name))
					}
					names = append(names, st.Info.Name)
					vcpus += len(st.VCPUs)
				}
			}
			sort.Strings(names)
			if got, want := fmt.Sprint(names), "[vm0 vm1 vm2 vm3]"; got != want {
				t.Fatalf("seed %d: tracked VMs %s, want %s", seed, got, want)
			}
			if vcpus != 8 {
				t.Fatalf("seed %d: %d tracked vCPUs, want 8", seed, vcpus)
			}
		}
	}
}
