package host

import (
	"errors"
	"testing"
)

func TestFailReadsIsTransient(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FS.MkdirAll("/t"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.AddFile("/t/probe", "v"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("thread died")
	m.FailReads("probe", boom, 2)
	for i := 0; i < 2; i++ {
		if _, err := m.FS.ReadFile("/t/probe"); !errors.Is(err, boom) {
			t.Fatalf("read %d: err = %v, want injected", i, err)
		}
	}
	if got, err := m.FS.ReadFile("/t/probe"); err != nil || got != "v" {
		t.Fatalf("exhausted fault still fires: %q, %v", got, err)
	}
	// Unmatched paths are never touched.
	if err := m.FS.MkdirAll("/t"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.AddFile("/t/other", "w"); err != nil {
		t.Fatal(err)
	}
	m.FailReads("probe", boom, 1)
	if _, err := m.FS.ReadFile("/t/other"); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
}

func TestFailWritesPersistentUntilCleared(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FS.MkdirAll("/t"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.AddFile("/t/quota", "max"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cgroup vanished")
	m.FailWrites("quota", boom, -1)
	for i := 0; i < 3; i++ {
		if err := m.FS.WriteFile("/t/quota", "10000 100000"); !errors.Is(err, boom) {
			t.Fatalf("write %d: err = %v, want injected", i, err)
		}
	}
	// Reads are unaffected by a write fault.
	if got, err := m.FS.ReadFile("/t/quota"); err != nil || got != "max" {
		t.Fatalf("read during write fault: %q, %v", got, err)
	}
	m.ClearFileFaults()
	if err := m.FS.WriteFile("/t/quota", "10000 100000"); err != nil {
		t.Fatalf("cleared fault still fires: %v", err)
	}
}

func TestAddFaultIgnoresNoOps(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FS.MkdirAll("/t"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.AddFile("/t/f", "v"); err != nil {
		t.Fatal(err)
	}
	m.FailReads("f", nil, 5)                // nil error: ignored
	m.FailReads("f", errors.New("boom"), 0) // zero count: ignored
	if _, err := m.FS.ReadFile("/t/f"); err != nil {
		t.Fatalf("no-op fault fired: %v", err)
	}
}
