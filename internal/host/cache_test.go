package host

import (
	"testing"

	"vfreq/internal/dvfs"
)

func cacheSpec(penalty float64) Spec {
	s := Chetemi()
	s.Name = "cachey"
	s.Cores = 4
	s.Governor = dvfs.GovernorPerformance
	s.JitterMHz = 0
	s.TurboMHz = 0 // no single-core turbo: isolate the cache effect
	s.CachePenalty = penalty
	return s
}

func TestCachePenaltyValidation(t *testing.T) {
	s := cacheSpec(1.0)
	if err := s.Validate(); err == nil {
		t.Fatal("penalty 1.0 accepted")
	}
	s.CachePenalty = -0.1
	if err := s.Validate(); err == nil {
		t.Fatal("negative penalty accepted")
	}
	s.CachePenalty = 0.3
	if err := s.Validate(); err != nil {
		t.Fatalf("valid penalty rejected: %v", err)
	}
}

// A lone thread on an otherwise idle machine suffers almost no
// contention; a fully loaded machine loses ~penalty of throughput.
func TestCachePenaltyScalesWithUtilisation(t *testing.T) {
	attained := func(busyThreads int) int64 {
		m, err := New(cacheSpec(0.3))
		if err != nil {
			t.Fatal(err)
		}
		var work int64
		th, err := m.StartThread("", "probe", nil)
		if err != nil {
			t.Fatal(err)
		}
		th.OnRun = func(now, ran, freqMHz int64) { work += ran * freqMHz }
		for i := 1; i < busyThreads; i++ {
			if _, err := m.StartThread("", "noise", nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Advance(2_000_000)
		return work
	}
	alone := attained(1)
	crowded := attained(4) // all 4 cores busy → u = 1
	// Alone: u = 0.25 → slowdown 1 − 0.3×0.0625 ≈ 0.98.
	// Crowded: u = 1 → slowdown 0.7.
	ratio := float64(crowded) / float64(alone)
	if ratio < 0.68 || ratio > 0.76 {
		t.Fatalf("crowded/alone throughput = %.3f, want ≈0.71", ratio)
	}
	// CPU time itself is NOT affected — only cycle throughput.
}

func TestZeroPenaltyUnchanged(t *testing.T) {
	m, err := New(cacheSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	var work int64
	th, _ := m.StartThread("", "probe", nil)
	th.OnRun = func(now, ran, freqMHz int64) { work += ran * freqMHz }
	for i := 0; i < 3; i++ {
		if _, err := m.StartThread("", "noise", nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(1_000_000)
	if work != 1_000_000*2400 {
		t.Fatalf("work = %d, want exactly %d (no contention model)", work, int64(1_000_000)*2400)
	}
}

// The paper's future-work motivation, quantified: under cache contention
// the controller still delivers the CPU-time guarantee, but the attained
// cycle rate (virtual frequency) falls short — quotas alone cannot
// guarantee throughput.
func TestCacheContentionErodesVirtualFrequency(t *testing.T) {
	m, err := New(cacheSpec(0.25))
	if err != nil {
		t.Fatal(err)
	}
	var work int64
	th, _ := m.StartThread("", "victim", nil)
	th.OnRun = func(now, ran, freqMHz int64) { work += ran * freqMHz }
	for i := 0; i < 3; i++ {
		if _, err := m.StartThread("", "noise", nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(4_000_000)
	if th.UsageUs != 4_000_000 { // full CPU time delivered
		t.Fatalf("usage = %d, want full 4000000", th.UsageUs)
	}
	freq := float64(work) / 4_000_000
	if freq > 2000 { // but cycle rate well below the 2400 nominal
		t.Fatalf("virtual frequency %.0f MHz not eroded by contention", freq)
	}
}
