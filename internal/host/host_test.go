package host

import (
	"fmt"
	"testing"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
)

func TestPresetsValid(t *testing.T) {
	for _, s := range []Spec{Chetemi(), Chiclet()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	if Chetemi().Cores != 40 || Chiclet().Cores != 64 {
		t.Fatal("preset logical core counts wrong")
	}
	if Chetemi().MaxMHz != 2400 || Chiclet().MaxMHz != 2400 {
		t.Fatal("preset F_MAX wrong")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := Chetemi()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad = Chetemi()
	bad.MinMHz = 3000
	if err := bad.Validate(); err == nil {
		t.Fatal("min>max accepted")
	}
	bad = Chetemi()
	bad.MemoryGB = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("no memory accepted")
	}
}

func TestBootAndAdvance(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(1_000_000)
	if m.NowUs() != 1_000_000 {
		t.Fatalf("NowUs = %d, want 1000000", m.NowUs())
	}
	// Idle machine: cores near min frequency, power near idle.
	if f := m.DVFS.FreqMHz(0); f != m.Spec().MinMHz {
		t.Fatalf("idle core freq = %d, want %d", f, m.Spec().MinMHz)
	}
	j := m.Meter.Joules()
	if j < 90 || j > 110 { // ~97 W for 1 s
		t.Fatalf("idle energy = %.1f J, want ~97", j)
	}
}

func TestThreadLifecycleAndWork(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cgroups.CreateGroup("vm"); err != nil {
		t.Fatal(err)
	}
	var work int64
	th, err := m.StartThread("vm", "CPU 0/KVM", nil)
	if err != nil {
		t.Fatal(err)
	}
	th.OnRun = func(now, ran, freqMHz int64) { work += ran * freqMHz }
	m.Advance(1_000_000)
	if th.UsageUs != 1_000_000 {
		t.Fatalf("usage = %d, want 1000000", th.UsageUs)
	}
	// Work is usage × frequency; after ramp-up the core should reach a
	// high operating point, so work must exceed the min-frequency
	// floor and stay under the turbo ceiling.
	minWork := int64(1_000_000) * m.Spec().MinMHz
	maxWork := int64(1_000_000) * m.Spec().TurboMHz
	if work <= minWork || work > maxWork {
		t.Fatalf("work = %d, want in (%d, %d]", work, minWork, maxWork)
	}
	// /proc and cgroupfs views agree.
	stat, err := m.FS.ReadFile(fmt.Sprintf("/proc/%d/stat", th.ID))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := procfs.ParseStatLastCPU(stat)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != th.LastCPU {
		t.Fatalf("stat cpu %d != LastCPU %d", cpu, th.LastCPU)
	}
	content, _ := m.FS.ReadFile(cgroupfs.DefaultMount + "/vm/cpu.stat")
	usage, err := cgroupfs.ParseCPUStat(content, "usage_usec")
	if err != nil || usage != 1_000_000 {
		t.Fatalf("cgroup usage = %d, %v", usage, err)
	}
	if err := m.StopThread(th); err != nil {
		t.Fatal(err)
	}
	if m.FS.Exists(fmt.Sprintf("/proc/%d", th.ID)) {
		t.Fatal("proc entry survived StopThread")
	}
}

func TestStartThreadUnknownCgroup(t *testing.T) {
	m, _ := New(Chetemi())
	if _, err := m.StartThread("nope", "x", nil); err == nil {
		t.Fatal("unknown cgroup accepted")
	}
}

func TestDVFSRespondsToLoad(t *testing.T) {
	m, _ := New(Chiclet())
	for i := 0; i < m.Spec().Cores; i++ {
		if _, err := m.StartThread("", "burn", nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(500_000)
	mean := m.DVFS.MeanMHz()
	if mean < float64(m.Spec().MaxMHz)-100 {
		t.Fatalf("loaded mean freq = %.0f, want ≈%d", mean, m.Spec().MaxMHz)
	}
	// Paper observation: under full load all cores run at about the
	// same speed; variance stays within the jitter amplitude squared.
	if v := m.DVFS.VarianceMHz(); v > float64(m.Spec().JitterMHz*m.Spec().JitterMHz) {
		t.Fatalf("frequency variance %.0f too large", v)
	}
	// Energy at full load approaches MaxWatts.
	perSec := m.Meter.Joules() / 0.5
	if perSec < 150 || perSec > float64(m.Spec().Power.MaxWatts) {
		t.Fatalf("full-load power = %.0f W, want near %g", perSec, m.Spec().Power.MaxWatts)
	}
}

func TestSysfsFrequencyVisible(t *testing.T) {
	m, _ := New(Chetemi())
	if _, err := m.StartThread("", "burn", nil); err != nil {
		t.Fatal(err)
	}
	m.Advance(200_000)
	content, err := m.FS.ReadFile(sysfs.CurFreqPath(sysfs.Mount, 0))
	if err != nil {
		t.Fatal(err)
	}
	khz, err := sysfs.ParseKHz(content)
	if err != nil {
		t.Fatal(err)
	}
	if khz < m.Spec().MinMHz*1000 || khz > m.Spec().TurboMHz*1000 {
		t.Fatalf("scaling_cur_freq = %d kHz outside envelope", khz)
	}
}

func TestAdvanceRoundsUpToTicks(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(25_000) // 2.5 ticks → 3 ticks
	if m.NowUs() != 30_000 {
		t.Fatalf("NowUs = %d, want 30000 (whole ticks)", m.NowUs())
	}
}

func TestCustomTick(t *testing.T) {
	m, err := New(Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	m.TickUs = 50_000
	m.Advance(100_000)
	if m.NowUs() != 100_000 {
		t.Fatalf("NowUs = %d", m.NowUs())
	}
}

func TestSpecAccessor(t *testing.T) {
	m, err := New(Chiclet())
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Name != "chiclet" || m.Spec().CPU == "" {
		t.Fatalf("Spec = %+v", m.Spec())
	}
}
