// Package host models a physical IaaS node: logical CPU cores with DVFS,
// a CFS-like scheduler, cgroup/proc/sys pseudo-filesystems and a power
// meter. It is the simulated stand-in for the Grid'5000 nodes the paper
// experiments on; the presets Chetemi and Chiclet reproduce their specs
// (Table IV of the paper) using logical CPUs, the only interpretation
// under which the paper's workloads satisfy its own Eq. 7.
package host

import (
	"fmt"
	"strings"
	"sync"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/dvfs"
	"vfreq/internal/energy"
	"vfreq/internal/memfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sched"
	"vfreq/internal/sysfs"
)

// DefaultTickUs is the scheduler tick the machine advances by (10 ms).
const DefaultTickUs = int64(10_000)

// Spec describes a node's hardware.
type Spec struct {
	Name      string
	CPU       string // model string, informational
	Cores     int    // logical CPUs
	MinMHz    int64
	MaxMHz    int64 // sustained all-core maximum (the paper's F_MAX)
	TurboMHz  int64
	JitterMHz int64
	MemoryGB  int
	Governor  string
	Power     energy.PowerModel
	// NUMANodes is the number of NUMA nodes the cores split into
	// (contiguous equal blocks, the dual-socket layout of the paper's
	// Grid'5000 nodes). 0 means 1: a single node.
	NUMANodes int

	// CachePenalty models last-level-cache contention, the effect the
	// paper's §V names as future work: at full machine utilisation,
	// co-located threads lose this fraction of their per-cycle
	// throughput (0 disables the model). A thread running x µs on a
	// core at f MHz then completes x·f·(1 − CachePenalty·u²) cycles,
	// where u is the machine utilisation — CPU-time guarantees still
	// hold, but cycle throughput degrades, which is exactly why
	// cache-aware priorities are needed beyond cgroup quotas.
	CachePenalty float64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("host: %q has no cores", s.Name)
	}
	if s.MaxMHz <= 0 || s.MinMHz <= 0 || s.MinMHz > s.MaxMHz {
		return fmt.Errorf("host: %q has invalid frequency envelope", s.Name)
	}
	if s.MemoryGB <= 0 {
		return fmt.Errorf("host: %q has no memory", s.Name)
	}
	if s.CachePenalty < 0 || s.CachePenalty >= 1 {
		return fmt.Errorf("host: %q has cache penalty %g outside [0, 1)", s.Name, s.CachePenalty)
	}
	if s.NUMANodes < 0 {
		return fmt.Errorf("host: %q has negative NUMA node count %d", s.Name, s.NUMANodes)
	}
	return s.Power.Validate()
}

// Chetemi returns the spec of the Grid'5000 chetemi node: 2× Intel Xeon
// E5-2630 v4 (10 cores / 20 threads each), 2.4 GHz, 256 GB RAM.
func Chetemi() Spec {
	return Spec{
		Name:      "chetemi",
		CPU:       "2x Intel Xeon E5-2630 v4",
		Cores:     40, // 2 sockets × 10 cores × 2 HT
		MinMHz:    1200,
		MaxMHz:    2400,
		TurboMHz:  3100,
		JitterMHz: 16, // paper: avg variance 16 MHz on exec A
		MemoryGB:  256,
		Governor:  dvfs.GovernorSchedutil,
		Power:     energy.PowerModel{IdleWatts: 97, MaxWatts: 220, Alpha: 1, Gamma: 2, MaxMHz: 2400},
		NUMANodes: 2, // one per socket
	}
}

// Chiclet returns the spec of the Grid'5000 chiclet node: 2× AMD EPYC
// 7301 (16 cores / 32 threads each), 2.4 GHz, 128 GB RAM.
func Chiclet() Spec {
	return Spec{
		Name:      "chiclet",
		CPU:       "2x AMD EPYC 7301",
		Cores:     64, // 2 sockets × 16 cores × 2 SMT
		MinMHz:    1200,
		MaxMHz:    2400,
		TurboMHz:  2700,
		JitterMHz: 88, // paper: avg variance 88 MHz on exec A
		MemoryGB:  128,
		Governor:  dvfs.GovernorSchedutil,
		Power:     energy.PowerModel{IdleWatts: 110, MaxWatts: 190, Alpha: 1, Gamma: 2, MaxMHz: 2400},
		NUMANodes: 2, // one per socket
	}
}

// Machine is a running simulated node.
type Machine struct {
	spec    Spec
	FS      *memfs.FS
	Sched   *sched.Scheduler
	Cgroups *cgroupfs.Tree
	Procs   *procfs.Table
	DVFS    *dvfs.Model
	Meter   *energy.Meter

	TickUs int64

	util []float64 // scratch buffer for governor updates

	faultMu sync.Mutex
	faults  []*pathFault
}

// pathFault is one armed pseudo-file fault (see FailReads/FailWrites).
type pathFault struct {
	op     string // "read" or "write"
	substr string
	err    error
	count  int // remaining injections; <0 = persistent
}

// New boots a machine from a spec.
func New(spec Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fs := memfs.New()
	s := sched.New(spec.Cores)
	cg, err := cgroupfs.New(fs, s, cgroupfs.DefaultMount)
	if err != nil {
		return nil, err
	}
	pt, err := procfs.New(fs, s, procfs.Mount)
	if err != nil {
		return nil, err
	}
	model, err := dvfs.New(spec.Cores, spec.Governor, dvfs.Policy{
		MinMHz: spec.MinMHz, MaxMHz: spec.MaxMHz,
		TurboMHz: spec.TurboMHz, JitterMHz: spec.JitterMHz,
	})
	if err != nil {
		return nil, err
	}
	if err := sysfs.MountModel(fs, model, sysfs.Mount); err != nil {
		return nil, err
	}
	numa := spec.NUMANodes
	if numa <= 0 {
		numa = 1
	}
	if err := sysfs.MountNodes(fs, sysfs.NodeMount, spec.Cores, numa); err != nil {
		return nil, err
	}
	meter, err := energy.NewMeter(spec.Power)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		spec:    spec,
		FS:      fs,
		Sched:   s,
		Cgroups: cg,
		Procs:   pt,
		DVFS:    model,
		Meter:   meter,
		TickUs:  DefaultTickUs,
		util:    make([]float64, spec.Cores),
	}
	fs.SetFaultHook(m.fileFault)
	return m, nil
}

// fileFault is the memfs hook matching accesses against armed faults.
func (m *Machine) fileFault(op, path string) error {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	for i, f := range m.faults {
		if f.op != op || !strings.Contains(path, f.substr) {
			continue
		}
		if f.count == 0 {
			continue // exhausted transient fault
		}
		if f.count > 0 {
			f.count--
			if f.count == 0 {
				m.faults = append(m.faults[:i], m.faults[i+1:]...)
			}
		}
		return fmt.Errorf("host: %s %s: %w", op, path, f.err)
	}
	return nil
}

// FailReads arms a pseudo-file fault: the next count reads of any path
// containing substr fail with err (count < 0 makes the fault persistent
// until ClearFileFaults). This models the /proc and cgroup read races a
// real host exhibits when vCPU threads die or cgroups vanish mid-access.
func (m *Machine) FailReads(substr string, err error, count int) {
	m.addFault("read", substr, err, count)
}

// FailWrites arms the write-side counterpart of FailReads.
func (m *Machine) FailWrites(substr string, err error, count int) {
	m.addFault("write", substr, err, count)
}

func (m *Machine) addFault(op, substr string, err error, count int) {
	if count == 0 || err == nil {
		return
	}
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	m.faults = append(m.faults, &pathFault{op: op, substr: substr, err: err, count: count})
}

// ClearFileFaults disarms every pseudo-file fault.
func (m *Machine) ClearFileFaults() {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	m.faults = nil
}

// Spec returns the machine's hardware description.
func (m *Machine) Spec() Spec { return m.spec }

// NowUs returns the simulated time.
func (m *Machine) NowUs() int64 { return m.Sched.NowUs() }

// StartThread creates a runnable thread in the cgroup at rel (relative to
// the cgroup mount; "" is the root) and registers it in /proc.
func (m *Machine) StartThread(rel, comm string, demand func(nowUs, dtUs int64) float64) (*sched.Thread, error) {
	g, err := m.Cgroups.Group(rel)
	if err != nil {
		return nil, err
	}
	th := m.Sched.NewThread(g, demand)
	if err := m.Procs.Register(th, comm); err != nil {
		m.Sched.RemoveThread(th)
		return nil, err
	}
	return th, nil
}

// StopThread removes a thread from scheduling and /proc.
func (m *Machine) StopThread(th *sched.Thread) error {
	m.Sched.RemoveThread(th)
	return m.Procs.Unregister(th.ID)
}

// Step advances the machine by exactly one scheduler tick.
func (m *Machine) Step() {
	tick := m.TickUs
	now := m.Sched.NowUs()
	// Cache contention scales per-cycle throughput with the previous
	// tick's machine utilisation (the contention the threads will meet).
	slow := 1.0
	if m.spec.CachePenalty > 0 {
		u := m.Sched.Utilization()
		slow = 1 - m.spec.CachePenalty*u*u
	}
	allocs := m.Sched.Tick(tick)
	// Account work at the frequency each core ran this tick. The
	// governor output lags by one tick, as hardware DVFS does.
	for _, a := range allocs {
		if a.Thread.OnRun != nil {
			eff := int64(float64(m.DVFS.FreqMHz(a.Core)) * slow)
			a.Thread.OnRun(now, a.RanUs, eff)
		}
	}
	for c := range m.util {
		m.util[c] = m.Sched.CoreUtilization(c)
	}
	m.Meter.Observe(m.Sched.Utilization(), m.DVFS.MeanMHz(), tick)
	m.DVFS.Update(m.util)
}

// Advance runs the machine for the given duration (rounded up to whole
// ticks).
func (m *Machine) Advance(durationUs int64) {
	for elapsed := int64(0); elapsed < durationUs; elapsed += m.TickUs {
		m.Step()
	}
}
