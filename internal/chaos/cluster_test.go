package chaos

import (
	"fmt"
	"testing"
)

// TestClusterMigrationSoak is the cluster counterpart of TestSoak:
// randomized migrations and rebalances under randomized node blackouts,
// with every placement and controller-state invariant checked after
// each step. Fixed seeds keep the runs replayable; CHAOS_SEED and
// CHAOS_STEPS override for ad-hoc hunts.
func TestClusterMigrationSoak(t *testing.T) {
	steps := soakSteps(t, 400)
	for _, seed := range []int64{soakSeed(t, 4), 5, 6} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := ClusterSoak(ClusterOptions{
				Seed:  seed,
				Steps: steps,
				Logf:  t.Logf,
			})
			if err != nil {
				t.Fatalf("invariant violated: %v\n%s", err, res)
			}
			if res.Blackouts == 0 {
				t.Fatalf("no blackouts injected — the soak tested nothing: %s", res)
			}
			if res.Committed == 0 {
				t.Fatalf("no migration committed — the soak tested nothing: %s", res)
			}
			if res.Committed+res.RolledBack > res.Attempted {
				t.Fatalf("migration ledger inconsistent: %s", res)
			}
			t.Logf("%s", res)
		})
	}
}

// The quiet control: with blackouts disabled, migration churn on a
// healthy cluster must be silent — no step errors, no stranded VMs, no
// faults to recover from.
func TestClusterMigrationSoakQuiet(t *testing.T) {
	res, err := ClusterSoak(ClusterOptions{Seed: 11, Steps: 200, Quiet: true, Logf: t.Logf})
	if err != nil {
		t.Fatalf("invariant violated on a healthy cluster: %v\n%s", err, res)
	}
	if res.Blackouts != 0 || res.StepErrors != 0 || res.StrandedSteps != 0 {
		t.Fatalf("quiet soak was not quiet: %s", res)
	}
	if res.RolledBack != 0 {
		t.Fatalf("healthy-cluster migration rolled back: %s", res)
	}
	if res.Committed == 0 {
		t.Fatalf("no migration committed: %s", res)
	}
	if res.RecoveredIn != 1 {
		t.Fatalf("healthy cluster took %d steps to report healthy, want 1", res.RecoveredIn)
	}
}
