package chaos

import (
	"os"
	"strconv"
	"testing"
)

// soakSteps resolves the fault-phase length for a soak test: the given
// default, overridable via CHAOS_STEPS for the scheduled long runs.
func soakSteps(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("CHAOS_STEPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("CHAOS_STEPS=%q is not a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return def / 10
	}
	return def
}

// soakSeed resolves the soak seed: fixed per test for reproducibility,
// overridable via CHAOS_SEED so the scheduled job can walk new seeds.
func soakSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer", s)
		}
		return n
	}
	return def
}

// TestSoak is the headline chaos soak from the issue: thousands of
// steps of randomized error and latency injection across every fault
// site, with the standing invariants asserted after every step and full
// recovery asserted at the end. Any failure reproduces exactly from the
// printed seed.
func TestSoak(t *testing.T) {
	seed := soakSeed(t, 1)
	res, err := Soak(Options{
		Seed:  seed,
		Steps: soakSteps(t, 5000),
		VMs:   4,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("seed %d: %v\npartial %s", seed, err, res)
	}
	if res.Faults == 0 {
		t.Fatalf("seed %d injected no faults at all — the soak tested nothing: %s", seed, res)
	}
	// A long run visits enough epochs that never tripping a breaker or
	// never landing a delay would mean the injection is broken. Short
	// runs (-short, small CHAOS_STEPS) may legitimately miss either.
	if res.Steps >= 2000 {
		if res.Trips == 0 {
			t.Fatalf("seed %d never tripped a breaker — persistent plans should have: %s", seed, res)
		}
		if res.Delays == 0 {
			t.Fatalf("seed %d never injected latency: %s", seed, res)
		}
	}
	t.Logf("%s", res)
}

// TestSoakChurn layers VM churn on top of the fault storm: every epoch
// one VM is destroyed or re-provisioned, so reconciliation, quota
// adoption and breaker bookkeeping all run against a moving population.
func TestSoakChurn(t *testing.T) {
	seed := soakSeed(t, 2)
	res, err := Soak(Options{
		Seed:  seed,
		Steps: soakSteps(t, 2000),
		VMs:   5,
		Churn: true,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("seed %d: %v\npartial %s", seed, err, res)
	}
	if res.Churned == 0 {
		t.Fatalf("seed %d: churn enabled but no churn events: %s", seed, res)
	}
	t.Logf("%s", res)
}

// TestSoakSeedSweep runs several short soaks under distinct seeds, so a
// single unlucky seed isn't the only coverage the suite gets.
func TestSoakSeedSweep(t *testing.T) {
	steps := soakSteps(t, 400)
	for seed := int64(10); seed < 14; seed++ {
		res, err := Soak(Options{Seed: seed, Steps: steps, VMs: 3})
		if err != nil {
			t.Fatalf("seed %d: %v\npartial %s", seed, err, res)
		}
	}
}

// TestSoakQuiet is the control run: injection disabled, same harness,
// same invariant checks. It must finish spotless — zero faults, zero
// degraded steps, zero trips, immediate "recovery" — proving the soak
// harness itself contributes no noise to the chaos results.
func TestSoakQuiet(t *testing.T) {
	res, err := Soak(Options{Seed: 3, Steps: 400, VMs: 4, Churn: true, Quiet: true})
	if err != nil {
		t.Fatalf("%v\npartial %s", err, res)
	}
	if res.Faults != 0 || res.DegradedSteps != 0 || res.Trips != 0 ||
		res.StepErrors != 0 || res.Delays != 0 {
		t.Fatalf("quiet control run was not spotless: %s", res)
	}
	if res.RecoveredIn != 1 {
		t.Fatalf("quiet run took %d steps to be 'healthy'; want 1", res.RecoveredIn)
	}
}
