package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"vfreq/internal/cluster"
	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// ClusterOptions tunes one cluster migration soak: randomized live
// migrations and rebalances layered over randomized node blackouts,
// with the placement and controller-state invariants asserted after
// every cluster Step. Deterministic from the seed.
type ClusterOptions struct {
	// Seed drives the blackout schedule, the migration churn and the
	// workload mix. Same seed, same run.
	Seed int64
	// Steps is the length of the fault phase (default 500).
	Steps int
	// Nodes is the cluster size (default 3, capped at 8).
	Nodes int
	// VMs is the population size (default 6, capped at 16).
	VMs int
	// EpochSteps is how often the blackout plan is re-rolled and a batch
	// of random migrations is attempted (default 25).
	EpochSteps int
	// Quiet disables blackout injection: the soak becomes a harness
	// self-check — migrations under a healthy cluster must produce no
	// faults, no failed steps and no stranded VMs.
	Quiet bool
	// Logf, when set, receives progress lines (one per epoch).
	Logf func(format string, args ...any)
}

// ClusterResult summarises a completed cluster soak.
type ClusterResult struct {
	Steps, Epochs int
	// Blackouts counts node-unreachable windows injected.
	Blackouts int
	// StepErrors counts cluster Steps that reported a node-level error —
	// tolerated while a blackout is armed, fatal otherwise.
	StepErrors int
	// Migration outcomes, mirrored from cluster.MigrationStats at the
	// end of the run.
	Attempted, Committed, RolledBack, StateCarried int
	// MigrateRejected counts randomized Migrate calls the cluster
	// legitimately refused (infeasible target, blackout mid-prepare).
	MigrateRejected int
	// Evacuations counts VMs moved off failed nodes; StrandedSteps the
	// per-step sum of VMs stuck on a failed node with no target.
	Evacuations   int
	StrandedSteps int
	// RecoveredIn is how many post-fault steps the cluster needed to
	// reach a fully healthy step.
	RecoveredIn int
}

func (r ClusterResult) String() string {
	return fmt.Sprintf("cluster soak: %d steps / %d epochs, %d blackouts, %d step errors, migrations %d/%d/%d/%d (attempted/committed/rolled-back/state-carried, %d rejected), %d evacuations, %d stranded steps, recovered in %d steps",
		r.Steps, r.Epochs, r.Blackouts, r.StepErrors,
		r.Attempted, r.Committed, r.RolledBack, r.StateCarried, r.MigrateRejected,
		r.Evacuations, r.StrandedSteps, r.RecoveredIn)
}

// errBlackout is the injected node failure.
var errBlackout = errors.New("chaos: node blackout")

// ClusterSoak runs the cluster migration soak and returns its summary;
// any invariant violation aborts the run with an error naming the step.
func ClusterSoak(o ClusterOptions) (ClusterResult, error) {
	if o.Steps <= 0 {
		o.Steps = 500
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Nodes > 8 {
		o.Nodes = 8
	}
	if o.VMs <= 0 {
		o.VMs = 6
	}
	if o.VMs > 16 {
		o.VMs = 16
	}
	if o.EpochSteps <= 0 {
		o.EpochSteps = 25
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	specs := make([]host.Spec, o.Nodes)
	for i := range specs {
		s := host.Chetemi()
		s.Name = fmt.Sprintf("soak-node%d", i)
		s.Cores = 8 // 19200 MHz of Eq. 7 capacity per node
		specs[i] = s
	}
	cfg := soakConfig(o.Seed)
	if o.Quiet {
		cfg.CallBudgetUs = 0
	}
	cl, err := cluster.New(specs, cluster.Config{
		Controller:    cfg,
		FailThreshold: 2,
		StepWorkers:   1, // serial stepping: the whole run replays from the seed
	})
	if err != nil {
		return ClusterResult{}, err
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(o.Seed))
	names := make([]string, o.VMs)
	tpls := []vm.Template{vm.Small(), vm.Small(), vm.Medium()}
	for i := range names {
		names[i] = fmt.Sprintf("cvm%d", i)
		tpl := tpls[rng.Intn(len(tpls))]
		srcs := make([]workload.Source, tpl.VCPUs)
		for j := range srcs {
			srcs[j] = &workload.Constant{Level: 0.2 + 0.6*rng.Float64()}
		}
		if _, err := cl.Deploy(names[i], tpl, srcs); err != nil {
			return ClusterResult{}, fmt.Errorf("chaos: deploying %s: %w", names[i], err)
		}
	}

	var res ClusterResult
	blackouts := make([]bool, o.Nodes)
	clearBlackouts := func() {
		for i, on := range blackouts {
			if on {
				cl.Nodes()[i].Machine.ClearFileFaults()
				blackouts[i] = false
			}
		}
	}
	anyBlackout := func() bool {
		for _, on := range blackouts {
			if on {
				return true
			}
		}
		return false
	}

	for step := 0; step < o.Steps; step++ {
		if step%o.EpochSteps == 0 {
			clearBlackouts()
			if !o.Quiet && rng.Float64() < 0.4 {
				i := rng.Intn(o.Nodes)
				cl.Nodes()[i].Machine.FailReads("machine-", errBlackout, -1)
				blackouts[i] = true
				res.Blackouts++
			}
			// A batch of random moves, some inevitably targeting the
			// blacked-out node or the VM's own node (the no-op contract).
			for k := 0; k < 1+rng.Intn(3); k++ {
				if err := randomMigrate(cl, rng, names, &res, step); err != nil {
					return res, err
				}
			}
			if rng.Float64() < 0.3 {
				// Rebalance under fire: stranded moves are reported, not
				// fatal — the sweep itself must keep the bookkeeping sound.
				if _, err := cl.Rebalance(); err != nil && !anyBlackout() {
					return res, fmt.Errorf("chaos: step %d: rebalance on a healthy cluster: %w", step, err)
				}
			}
			res.Epochs++
			logf("chaos: cluster epoch %d at step %d: blackout=%v migrations=%+v",
				res.Epochs, step, anyBlackout(), cl.MigrationStats())
		}
		if err := clusterSoakStep(cl, names, &res, blackouts, step); err != nil {
			return res, err
		}
	}

	// Recovery: every blackout lifted, the cluster must reach a fully
	// healthy step — no failed nodes, no degradation, no stranded VMs,
	// every breaker closed — within the breaker drain plus a margin.
	clearBlackouts()
	budget := cfg.BreakerOpenSteps + cfg.RecoverySteps + 30
	recovered := false
	for step := 0; step < budget; step++ {
		if err := clusterSoakStep(cl, names, &res, make([]bool, o.Nodes), o.Steps+step); err != nil {
			return res, err
		}
		h := cl.Health()
		if h.FailedNodes == 0 && h.DegradedVCPUs == 0 && h.Faults == 0 &&
			h.OpenVMs == 0 && h.HalfOpenVMs == 0 && h.StrandedVMs == 0 {
			res.RecoveredIn = step + 1
			recovered = true
			break
		}
	}
	if !recovered {
		return res, fmt.Errorf("chaos: cluster not fully healthy within %d steps of clearing blackouts: %+v",
			budget, cl.Health())
	}
	stats := cl.MigrationStats()
	res.Attempted, res.Committed = stats.Attempted, stats.Committed
	res.RolledBack, res.StateCarried = stats.RolledBack, stats.StateCarried
	res.Evacuations = cl.Evacuations()
	logf("chaos: %s", res.String())
	return res, nil
}

// randomMigrate attempts one randomized migration and asserts the
// credit wallet is conserved whenever the cluster reports the state was
// carried. Legitimate rejections (infeasible target, a blackout
// breaking the prepare) are counted, not fatal; what must never happen
// is a lost VM, which clusterSoakStep's location sweep would catch.
func randomMigrate(cl *cluster.Cluster, rng *rand.Rand, names []string, res *ClusterResult, step int) error {
	name := names[rng.Intn(len(names))]
	target := rng.Intn(len(cl.Nodes()))
	src := cl.Locate(name)
	if src < 0 {
		return fmt.Errorf("chaos: step %d: %s has no location", step, name)
	}
	var pre int64 = -1
	if st := cl.Nodes()[src].Ctrl.VM(name); st != nil {
		pre = st.CreditUs
	}
	carried := cl.MigrationStats().StateCarried
	moved, err := cl.Migrate(name, target)
	if err != nil {
		res.MigrateRejected++
		if cl.Locate(name) != src {
			return fmt.Errorf("chaos: step %d: failed migration moved %s: %v", step, name, err)
		}
		return nil
	}
	if moved && pre >= 0 && cl.MigrationStats().StateCarried == carried+1 {
		got := cl.Nodes()[target].Ctrl.VM(name)
		if got == nil {
			return fmt.Errorf("chaos: step %d: state-carried %s not tracked on target %d", step, name, target)
		}
		if got.CreditUs != pre {
			return fmt.Errorf("chaos: step %d: credit not conserved across %s→%d: %d, want %d",
				step, name, target, got.CreditUs, pre)
		}
	}
	return nil
}

// clusterSoakStep advances the cluster one period and asserts the
// standing invariants: every VM located exactly where its node's
// manager and controller think it is, wallets non-negative, caps
// bounded, per-node Σcaps within capacity, and the migration counters
// mutually consistent.
func clusterSoakStep(cl *cluster.Cluster, names []string, res *ClusterResult, blackouts []bool, step int) error {
	blackout := false
	for _, on := range blackouts {
		if on {
			blackout = true
		}
	}
	migBefore := cl.Migrations()
	if err := cl.Step(); err != nil {
		if !blackout {
			return fmt.Errorf("chaos: step %d failed without a blackout armed: %w", step, err)
		}
		res.StepErrors++
	}
	// An evacuation commits migrations inside Step, after the target
	// controllers already ran their distribute stage — the adopted caps
	// are only re-bounded on the NEXT step.
	evacuatedThisStep := cl.Migrations() > migBefore
	res.Steps++
	res.StrandedSteps += cl.Health().StrandedVMs

	// No VM is ever lost or double-placed: each one is located on a
	// node whose manager holds it.
	for _, name := range names {
		idx := cl.Locate(name)
		if idx < 0 {
			return fmt.Errorf("chaos: step %d: VM %s lost (no location)", step, name)
		}
		if cl.Nodes()[idx].Manager.Get(name) == nil {
			return fmt.Errorf("chaos: step %d: VM %s located on node %d but not provisioned there", step, name, idx)
		}
	}
	for i, n := range cl.Nodes() {
		var sum int64
		settled := !blackouts[i] && !evacuatedThisStep
		for _, st := range n.Ctrl.VMs() {
			// A controller only tracks VMs its own node hosts: migration
			// must forget on the source and adopt on the target, never
			// leave a stale twin behind.
			if cl.Locate(st.Info.Name) != i {
				return fmt.Errorf("chaos: step %d: node %d controller tracks %s, located on node %d",
					step, i, st.Info.Name, cl.Locate(st.Info.Name))
			}
			if st.CreditUs < 0 {
				return fmt.Errorf("chaos: step %d: %s credit %d is negative", step, st.Info.Name, st.CreditUs)
			}
			if st.Breaker.State != core.BreakerClosed {
				settled = false
			}
			for _, v := range st.VCPUs {
				if v.CapUs < 0 || v.CapUs > soakPeriodUs {
					return fmt.Errorf("chaos: step %d: %s/vcpu%d cap %d outside [0, period]",
						step, st.Info.Name, v.Index, v.CapUs)
				}
				sum += v.CapUs
			}
		}
		// Σcaps ≤ capacity only holds once this node's distribute stage
		// has re-bounded every cap: a blacked-out node cannot run the
		// stage, and a quarantined VM keeps caps frozen — possibly
		// allocated against the SOURCE node's capacity if it was just
		// adopted. A fully healthy node must always be within bounds.
		if settled && sum > n.Ctrl.CapacityUs() {
			return fmt.Errorf("chaos: step %d: node %d Σcaps %d exceeds capacity %d",
				step, i, sum, n.Ctrl.CapacityUs())
		}
	}
	stats := cl.MigrationStats()
	if stats.Committed != cl.Migrations() || stats.Committed+stats.RolledBack > stats.Attempted {
		return fmt.Errorf("chaos: step %d: inconsistent migration stats %+v vs Migrations %d",
			step, stats, cl.Migrations())
	}
	return nil
}
