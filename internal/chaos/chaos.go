// Package chaos implements the randomized robustness soak for the
// controller: multi-thousand-step runs over the simulated host where
// every fault site is bombarded with randomized error and latency
// plans, with the standing invariants asserted after every single step
// — cycle conservation, report consistency, bit-identical checkpoint
// round-trips, no panic escaping the step watchdog — and eventual full
// recovery asserted once the faults cease. The generated plans, the
// workload mix and the churn schedule are all deterministic from one
// seed, so a failing soak replays exactly.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"

	"vfreq/internal/core"
	"vfreq/internal/host"
	"vfreq/internal/metrics"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// Options tunes one soak run. The zero value is usable: it runs the
// default step count on the default VM population with a fixed seed.
type Options struct {
	// Seed drives every random decision of the soak: the fault/latency
	// plans, the workload levels, the churn schedule and the injected
	// fault randomness itself. Same seed, same run.
	Seed int64
	// Steps is the length of the fault phase (default 1000). The
	// recovery phase afterwards is separate and bounded internally.
	Steps int
	// VMs is the population size (default 4, capped at 16).
	VMs int
	// EpochSteps is how often the fault plans are re-rolled
	// (default 100): long enough for persistent faults to trip
	// breakers, short enough to visit many plan combinations.
	EpochSteps int
	// Churn, when true, destroys or re-provisions one random VM at
	// every epoch boundary, so reconciliation churns under fire.
	Churn bool
	// Quiet disables all fault and latency injection (and the
	// wall-clock call budget, so scheduler hiccups can't fail a
	// control run): the soak becomes a harness self-check that must
	// finish with zero faults, zero degradation and zero trips.
	Quiet bool
	// Logf, when set, receives progress lines (one per epoch).
	Logf func(format string, args ...any)
	// Metrics, when set, receives the soak's observability: the
	// controller and fault-host instruments plus epoch/churn/step-error
	// counters, so a scraped soak shows its progress live.
	Metrics *metrics.Registry
}

// Result summarises a completed soak.
type Result struct {
	// Steps is the total number of controller steps executed, fault
	// phase plus recovery phase.
	Steps int
	// Epochs is the number of fault-plan re-rolls.
	Epochs int
	// Faults is the total number of reported faults across all steps.
	Faults int
	// DegradedSteps counts steps with at least one degraded vCPU.
	DegradedSteps int
	// StepErrors counts steps that failed whole (an injected ListVMs
	// fault) — tolerated, the controller retries next period.
	StepErrors int
	// Delays is how many host calls were artificially stalled.
	Delays int
	// Trips counts circuit breaker openings.
	Trips int
	// MaxOpenVMs is the largest simultaneous quarantine.
	MaxOpenVMs int
	// Churned counts VM destroy/provision events.
	Churned int
	// RecoveredIn is how many post-fault steps the controller needed to
	// reach a fully healthy step (no degradation, no faults, every
	// breaker closed).
	RecoveredIn int
}

func (r Result) String() string {
	return fmt.Sprintf("soak: %d steps / %d epochs, %d faults, %d degraded steps, %d step errors, %d delays, %d trips (max %d open), %d churn events, recovered in %d steps",
		r.Steps, r.Epochs, r.Faults, r.DegradedSteps, r.StepErrors, r.Delays, r.Trips,
		r.MaxOpenVMs, r.Churned, r.RecoveredIn)
}

// soakPeriodUs is the control period of the soak: 100 ms instead of the
// paper's 1 s, so the simulated machine advances 10× fewer scheduler
// ticks per step and a 5,000-step soak stays fast.
const soakPeriodUs = 100_000

// soakConfig is the controller tuning under soak: the full robustness
// layer armed, with a single monitor worker so the whole run is
// deterministic from the seed.
func soakConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.PeriodUs = soakPeriodUs
	cfg.CgroupPeriodUs = soakPeriodUs
	cfg.MonitorWorkers = 1
	cfg.HostRetries = 1
	cfg.RecoverySteps = 2
	cfg.BreakerThreshold = 3
	cfg.BreakerOpenSteps = 4
	cfg.CallBudgetUs = 2_000 // only an injected stall can blow this in-process
	cfg.RetryBackoffUs = 100
	cfg.RetryBackoffMaxUs = 800
	cfg.Seed = seed
	return cfg
}

// Soak runs the chaos soak and returns its summary; any invariant
// violation aborts the run with an error naming the step.
func Soak(o Options) (Result, error) {
	if o.Steps <= 0 {
		o.Steps = 1000
	}
	if o.VMs <= 0 {
		o.VMs = 4
	}
	if o.VMs > 16 {
		o.VMs = 16
	}
	if o.EpochSteps <= 0 {
		o.EpochSteps = 100
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	machine, err := host.New(host.Chetemi())
	if err != nil {
		return Result{}, err
	}
	mgr, err := vm.NewManager(machine)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	provisioned := make([]bool, o.VMs)
	for i := 0; i < o.VMs; i++ {
		if err := provision(mgr, rng, i); err != nil {
			return Result{}, err
		}
		provisioned[i] = true
	}
	fh := platform.WithFaults(platform.NewSim(mgr), o.Seed+1)
	cfg := soakConfig(o.Seed)
	if o.Quiet {
		cfg.CallBudgetUs = 0
	}
	ctrl, err := core.New(fh, cfg)
	if err != nil {
		return Result{}, err
	}

	// Soak-level counters; the controller and fault host record their
	// own series on the same registry.
	var epochsC, churnC, stepErrC *metrics.Counter
	if o.Metrics != nil {
		ctrl.ArmMetrics(o.Metrics)
		fh.ArmMetrics(o.Metrics)
		epochsC = o.Metrics.Counter("vfreq_chaos_epochs_total", "Fault-plan re-rolls during the soak.")
		churnC = o.Metrics.Counter("vfreq_chaos_churn_total", "VM destroy/provision events during the soak.")
		stepErrC = o.Metrics.Counter("vfreq_chaos_step_errors_total", "Whole-step failures (injected ListVMs faults).")
	}

	var res Result
	listArmed := false

	// Fault phase: re-rolled plans every epoch, invariants every step.
	for step := 0; step < o.Steps; step++ {
		if step%o.EpochSteps == 0 {
			var armed int
			if !o.Quiet {
				listArmed, armed = rollPlans(fh, rng)
			}
			res.Epochs++
			epochsC.Inc()
			if o.Churn {
				i := rng.Intn(o.VMs)
				if provisioned[i] {
					if err := mgr.Destroy(vmName(i)); err != nil {
						return res, fmt.Errorf("chaos: step %d: destroying %s: %w", step, vmName(i), err)
					}
				} else if err := provision(mgr, rng, i); err != nil {
					return res, fmt.Errorf("chaos: step %d: re-provisioning %s: %w", step, vmName(i), err)
				}
				provisioned[i] = !provisioned[i]
				res.Churned++
				churnC.Inc()
			}
			logf("chaos: epoch %d at step %d: %d sites armed (listvms=%v)", res.Epochs, step, armed, listArmed)
		}
		prevErrs := res.StepErrors
		if err := soakStep(machine, ctrl, &res, listArmed, step); err != nil {
			return res, err
		}
		stepErrC.Add(int64(res.StepErrors - prevErrs))
	}
	for _, site := range platform.Sites {
		res.Delays += fh.Delayed(site)
	}

	// Recovery phase: with every plan cleared, the controller must
	// reach a fully healthy step — zero degradation, zero faults, every
	// breaker closed and every quarantined VM re-admitted — within the
	// breaker drain time plus a generous margin. GC pauses or scheduler
	// noise may dirty an individual step, so the assertion is that a
	// clean step EXISTS within the budget, not that every step is clean.
	fh.ClearAll()
	budget := cfg.BreakerOpenSteps + cfg.RecoverySteps + 30
	recovered := false
	for step := 0; step < budget; step++ {
		if err := soakStep(machine, ctrl, &res, false, o.Steps+step); err != nil {
			return res, err
		}
		rep := ctrl.LastReport()
		if rep.DegradedVCPUs == 0 && rep.FaultCount() == 0 && rep.OpenVMs == 0 && rep.HalfOpenVMs == 0 {
			res.RecoveredIn = step + 1
			recovered = true
			break
		}
	}
	if !recovered {
		return res, fmt.Errorf("chaos: no fully healthy step within %d steps of clearing all faults: %s",
			budget, ctrl.LastReport().String())
	}
	logf("chaos: %s", res.String())
	return res, nil
}

// vmName names the i-th soak VM.
func vmName(i int) string { return fmt.Sprintf("chaos%d", i) }

// provision creates one soak VM with a randomized template and a
// randomized constant demand per vCPU.
func provision(mgr *vm.Manager, rng *rand.Rand, i int) error {
	tpls := []vm.Template{vm.Small(), vm.Medium(), vm.Large()}
	tpl := tpls[rng.Intn(len(tpls))]
	srcs := make([]workload.Source, tpl.VCPUs)
	for j := range srcs {
		srcs[j] = &workload.Constant{Level: 0.2 + 0.6*rng.Float64()}
	}
	_, err := mgr.Provision(vmName(i), tpl, srcs)
	return err
}

// rollPlans clears every plan and arms a fresh random set: per site, an
// independent chance of an error plan (rate, count or persistent) and,
// on up to two sites, a latency plan stacked on top. ListVMs only ever
// gets transient errors — a persistent enumeration failure would just
// stall the whole epoch, which tests nothing the first failed step
// didn't. Reports whether ListVMs is armed (its faults fail the whole
// Step, which the soak must tolerate) and how many sites were armed.
func rollPlans(fh *platform.FaultyHost, rng *rand.Rand) (listArmed bool, armed int) {
	fh.ClearAll()
	plans := map[platform.FaultSite]platform.FaultPlan{}
	for _, site := range platform.Sites {
		if rng.Float64() >= 0.35 {
			continue
		}
		var p platform.FaultPlan
		switch rng.Intn(3) {
		case 0:
			p.Rate = 0.02 + 0.23*rng.Float64()
		case 1:
			p.Count = 1 + rng.Intn(5)
		default:
			if site == platform.SiteListVMs {
				p.Count = 1 + rng.Intn(3)
			} else {
				p.Persistent = true
			}
		}
		plans[site] = p
	}
	// Latency on up to two random sites, stacked onto whatever error
	// plan the site already drew. The delays are µs-scale real sleeps:
	// big enough to blow the 2 ms call budget sometimes, small enough
	// that thousands of steps stay fast.
	for i := 0; i < 2; i++ {
		site := platform.Sites[rng.Intn(len(platform.Sites))]
		p := plans[site]
		p.DelayRate = 0.01 + 0.04*rng.Float64()
		p.DelayUs = 100 + rng.Int63n(2_400)
		plans[site] = p
	}
	for site, p := range plans {
		if err := fh.Plan(site, p); err != nil {
			// A rolled plan is armed by construction; a rejection is a
			// soak bug worth crashing on.
			panic(fmt.Sprintf("chaos: rolled an invalid plan for %s: %v", site, err))
		}
		armed++
		if site == platform.SiteListVMs {
			listArmed = true
		}
	}
	return listArmed, armed
}

// soakStep advances the machine one period, runs one controller Step
// and asserts every standing invariant. step is a label for errors.
func soakStep(machine *host.Machine, ctrl *core.Controller, res *Result, listArmed bool, step int) error {
	machine.Advance(soakPeriodUs)
	stepErr, panicked := runStep(ctrl)
	if panicked != nil {
		// The watchdog must swallow stage panics; one escaping Step is
		// the invariant violation this soak exists to catch.
		return fmt.Errorf("chaos: step %d: panic escaped the step watchdog: %v", step, panicked)
	}
	if stepErr != nil {
		if !listArmed {
			return fmt.Errorf("chaos: step %d failed without a ListVMs plan armed: %w", step, stepErr)
		}
		res.StepErrors++
	}
	res.Steps++

	rep := ctrl.LastReport()
	res.Faults += rep.FaultCount()
	res.Trips += rep.BreakerTrips
	if rep.DegradedVCPUs > 0 {
		res.DegradedSteps++
	}
	if rep.OpenVMs > res.MaxOpenVMs {
		res.MaxOpenVMs = rep.OpenVMs
	}
	if rep.DegradedVCPUs+rep.HealthyVCPUs != rep.VCPUs {
		return fmt.Errorf("chaos: step %d: report splits %d vCPUs into %d degraded + %d healthy",
			step, rep.VCPUs, rep.DegradedVCPUs, rep.HealthyVCPUs)
	}

	// Cycle conservation and accounting sanity, every step, no matter
	// what was injected.
	var sum int64
	for _, st := range ctrl.VMs() {
		if st.CreditUs < 0 {
			return fmt.Errorf("chaos: step %d: VM %s credit %d is negative", step, st.Info.Name, st.CreditUs)
		}
		for _, v := range st.VCPUs {
			if v.CapUs < 0 || v.CapUs > soakPeriodUs {
				return fmt.Errorf("chaos: step %d: %s/vcpu%d cap %d outside [0, period]",
					step, st.Info.Name, v.Index, v.CapUs)
			}
			sum += v.CapUs
		}
	}
	if sum > ctrl.CapacityUs() {
		return fmt.Errorf("chaos: step %d: Σcaps %d exceeds capacity %d", step, sum, ctrl.CapacityUs())
	}

	// Checkpoint round-trip: encode → decode → encode must be
	// bit-identical, whatever mid-fault state the controller is in.
	raw, err := ctrl.Snapshot().JSON()
	if err != nil {
		return fmt.Errorf("chaos: step %d: encoding checkpoint: %w", step, err)
	}
	snap, err := core.DecodeSnapshot(raw)
	if err != nil {
		return fmt.Errorf("chaos: step %d: checkpoint rejected by its own decoder: %w", step, err)
	}
	raw2, err := snap.JSON()
	if err != nil {
		return fmt.Errorf("chaos: step %d: re-encoding checkpoint: %w", step, err)
	}
	if !bytes.Equal(raw, raw2) {
		return fmt.Errorf("chaos: step %d: checkpoint round-trip not bit-identical", step)
	}
	return nil
}

// runStep runs one Step, catching any panic that escapes it.
func runStep(ctrl *core.Controller) (err error, panicked any) {
	defer func() { panicked = recover() }()
	err = ctrl.Step()
	return err, panicked
}
