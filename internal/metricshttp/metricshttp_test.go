package metricshttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"vfreq/internal/metrics"
)

// TestServeExposesMetricsAndPprof is the in-process version of the
// acceptance check "curl -metrics-addr yields valid Prometheus text":
// bind :0, scrape /metrics, and confirm the pprof index answers.
func TestServeExposesMetricsAndPprof(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("vfreq_http_total", "scrape test", metrics.Label{Key: "stage", Value: "apply"}).Add(3)
	reg.Histogram("vfreq_http_us", "scrape test", metrics.DefaultLatencyBucketsUs).Observe(123)

	addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`vfreq_http_total{stage="apply"} 3`,
		`# TYPE vfreq_http_us histogram`,
		`vfreq_http_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}

	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", metrics.NewRegistry()); err == nil {
		t.Fatal("want listen error for a bad address")
	}
}
