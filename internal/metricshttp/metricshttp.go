// Package metricshttp serves a metrics.Registry over HTTP alongside
// the standard pprof handlers. It exists so internal/metrics itself
// never imports net/http: the binaries (vfctl, experiment) opt into
// the network surface with one call, headless runs pay nothing.
package metricshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"vfreq/internal/metrics"
)

// Handler returns an http.Handler exposing reg at /metrics and the
// pprof suite at /debug/pprof/ on an explicit mux (the default mux is
// never touched, so tests can mount several registries side by side).
func Handler(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(reg) in a background goroutine.
// It returns the bound address (useful with ":0") or an error if the
// listen fails; serve errors after a successful bind are dropped, as
// the observability side-channel must never take down a run.
func Serve(addr string, reg *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
