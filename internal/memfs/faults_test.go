package memfs

import (
	"errors"
	"strings"
	"testing"
)

func TestFaultHookInterceptsReadsAndWrites(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/d/a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/d/b", "2"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	fs.SetFaultHook(func(op, path string) error {
		if op == "read" && strings.HasSuffix(path, "/a") {
			return boom
		}
		if op == "write" && strings.HasSuffix(path, "/b") {
			return boom
		}
		return nil
	})
	if _, err := fs.ReadFile("/d/a"); !errors.Is(err, boom) {
		t.Fatalf("read fault not injected: %v", err)
	}
	if err := fs.WriteFile("/d/b", "x"); !errors.Is(err, boom) {
		t.Fatalf("write fault not injected: %v", err)
	}
	// The unmatched directions still work, and the faulted write left the
	// file untouched.
	if got, err := fs.ReadFile("/d/b"); err != nil || got != "2" {
		t.Fatalf("ReadFile(b) = %q, %v", got, err)
	}
	if err := fs.WriteFile("/d/a", "x"); err != nil {
		t.Fatalf("WriteFile(a) = %v", err)
	}
	// Removing the hook restores normal access.
	fs.SetFaultHook(nil)
	if _, err := fs.ReadFile("/d/a"); err != nil {
		t.Fatalf("hook removal ineffective: %v", err)
	}
}

func TestFaultHookSeesCleanPaths(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/f", "v"); err != nil {
		t.Fatal(err)
	}
	var seen []string
	fs.SetFaultHook(func(op, path string) error {
		seen = append(seen, path)
		return nil
	})
	if _, err := fs.ReadFile("//f"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "/f" {
		t.Fatalf("hook saw %v, want [/f]", seen)
	}
}
