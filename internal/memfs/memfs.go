// Package memfs implements a small in-memory file tree used as the backing
// store for the simulated cgroup, proc and sys filesystems.
//
// Files may hold static content or be backed by callbacks so that reads
// always observe the live state of the simulation (as reads of real kernel
// pseudo-files do). Paths use forward slashes and are rooted at "/".
package memfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Common errors returned by the filesystem, mirroring the ones a real
// kernel pseudo-filesystem would produce.
var (
	ErrNotExist  = errors.New("memfs: file does not exist")
	ErrExist     = errors.New("memfs: file already exists")
	ErrIsDir     = errors.New("memfs: is a directory")
	ErrNotDir    = errors.New("memfs: not a directory")
	ErrReadOnly  = errors.New("memfs: file is read-only")
	ErrNotEmpty  = errors.New("memfs: directory not empty")
	ErrBadHandle = errors.New("memfs: invalid file operation")
)

// ReadFunc produces the current content of a dynamic file.
type ReadFunc func() string

// ReadAppendFunc renders the current content of a dynamic file by
// appending it to buf. Implementations must not retain buf. Files backed
// by a ReadAppendFunc can be read without heap allocation through
// ReadFileAppend — the property the simulated host's per-period
// pseudo-file reads (cpu.stat, cgroup.threads, /proc/<tid>/stat,
// scaling_cur_freq) rely on.
type ReadAppendFunc func(buf []byte) []byte

// WriteFunc consumes a write to a dynamic file. Returning an error makes
// the write fail, as the kernel does for malformed control-file writes.
type WriteFunc func(data string) error

type node struct {
	name     string
	dir      bool
	children map[string]*node
	// static content, used when read and readAppend are nil
	content    string
	read       ReadFunc
	readAppend ReadAppendFunc
	write      WriteFunc
}

// dynamic reports whether the node's reads run a callback.
func (n *node) dynamic() bool { return n.read != nil || n.readAppend != nil }

// FaultFunc inspects an access before it happens; a non-nil return
// aborts the operation with that error. op is "read" or "write". It lets
// a simulation inject the transient and persistent pseudo-file failures
// a real kernel produces when threads die or cgroups vanish mid-access.
type FaultFunc func(op, path string) error

// FS is a concurrency-safe in-memory file tree.
type FS struct {
	mu    sync.RWMutex
	root  *node
	fault FaultFunc
}

// SetFaultHook installs (or, with nil, removes) the fault hook consulted
// before every ReadFile and WriteFile.
func (fs *FS) SetFaultHook(fn FaultFunc) {
	fs.mu.Lock()
	fs.fault = fn
	fs.mu.Unlock()
}

// checkFault runs the fault hook for one access.
func (fs *FS) checkFault(op, p string) error {
	fs.mu.RLock()
	fn := fs.fault
	fs.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(op, clean(p))
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	return &FS{root: &node{name: "/", dir: true, children: map[string]*node{}}}
}

// clean normalises p to an absolute slash-separated path.
func clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// split returns the path elements of p, excluding the root.
func split(p string) []string {
	p = clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks the tree segment by segment without splitting the path
// into a fresh slice, so reads on the hot monitor path allocate nothing.
func (fs *FS) lookup(p string) (*node, error) {
	cp := clean(p)
	cur := fs.root
	for i := 1; i < len(cp); {
		var el string
		if j := strings.IndexByte(cp[i:], '/'); j >= 0 {
			el = cp[i : i+j]
			i += j + 1
		} else {
			el = cp[i:]
			i = len(cp)
		}
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[el]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		cur = next
	}
	return cur, nil
}

// Mkdir creates a directory. Parent directories must already exist.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirLocked(p)
}

func (fs *FS) mkdirLocked(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	parent, err := fs.lookup(path.Dir(p))
	if err != nil {
		return err
	}
	if !parent.dir {
		return ErrNotDir
	}
	name := path.Base(p)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	parent.children[name] = &node{name: name, dir: true, children: map[string]*node{}}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	els := split(p)
	cur := "/"
	for _, el := range els {
		cur = path.Join(cur, el)
		if n, err := fs.lookup(cur); err == nil {
			if !n.dir {
				return ErrNotDir
			}
			continue
		}
		if err := fs.mkdirLocked(cur); err != nil {
			return err
		}
	}
	return nil
}

// AddFile creates a static file with the given initial content.
// Writes replace the content.
func (fs *FS) AddFile(p, content string) error {
	return fs.addNode(p, &node{content: content})
}

// AddDynamic creates a file whose reads call read and whose writes call
// write. Either may be nil: a nil read yields the empty string, a nil
// write makes the file read-only.
func (fs *FS) AddDynamic(p string, read ReadFunc, write WriteFunc) error {
	return fs.addNode(p, &node{read: read, write: write})
}

// AddDynamicAppend creates a dynamic file backed by an append-style
// renderer: ReadFile wraps it into a string, ReadFileAppend uses it
// directly and stays allocation-free. A nil write makes the file
// read-only.
func (fs *FS) AddDynamicAppend(p string, read ReadAppendFunc, write WriteFunc) error {
	if read == nil {
		return fmt.Errorf("memfs: nil append reader for %s", p)
	}
	return fs.addNode(p, &node{readAppend: read, write: write})
}

func (fs *FS) addNode(p string, n *node) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	parent, err := fs.lookup(path.Dir(p))
	if err != nil {
		return err
	}
	if !parent.dir {
		return ErrNotDir
	}
	name := path.Base(p)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	n.name = name
	parent.children[name] = n
	return nil
}

// ReadFile returns the current content of the file at p.
func (fs *FS) ReadFile(p string) (string, error) {
	if err := fs.checkFault("read", p); err != nil {
		return "", err
	}
	fs.mu.RLock()
	n, err := fs.lookup(p)
	if err != nil {
		fs.mu.RUnlock()
		return "", err
	}
	if n.dir {
		fs.mu.RUnlock()
		return "", fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	read := n.read
	readAppend := n.readAppend
	content := n.content
	fs.mu.RUnlock()
	// Dynamic reads run outside the lock: the callback may consult
	// simulation state that itself mutates the filesystem.
	if read != nil {
		return read(), nil
	}
	if readAppend != nil {
		return string(readAppend(nil)), nil
	}
	return content, nil
}

// ReadFileAppend appends the current content of the file at p to buf and
// returns the extended slice. For files created with AddDynamicAppend
// the render happens directly into buf, so a read with sufficient
// capacity performs no heap allocation; other files fall back to the
// string content. Fault hooks fire exactly as for ReadFile.
func (fs *FS) ReadFileAppend(p string, buf []byte) ([]byte, error) {
	if err := fs.checkFault("read", p); err != nil {
		return buf, err
	}
	fs.mu.RLock()
	n, err := fs.lookup(p)
	if err != nil {
		fs.mu.RUnlock()
		return buf, err
	}
	if n.dir {
		fs.mu.RUnlock()
		return buf, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	read := n.read
	readAppend := n.readAppend
	content := n.content
	fs.mu.RUnlock()
	if readAppend != nil {
		return readAppend(buf), nil
	}
	if read != nil {
		return append(buf, read()...), nil
	}
	return append(buf, content...), nil
}

// WriteFile writes data to the file at p.
func (fs *FS) WriteFile(p, data string) error {
	if err := fs.checkFault("write", p); err != nil {
		return err
	}
	fs.mu.Lock()
	n, err := fs.lookup(p)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	if n.dir {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if n.dynamic() {
		w := n.write
		fs.mu.Unlock()
		if w == nil {
			return fmt.Errorf("%w: %s", ErrReadOnly, p)
		}
		return w(data)
	}
	if n.write != nil {
		w := n.write
		fs.mu.Unlock()
		return w(data)
	}
	n.content = data
	fs.mu.Unlock()
	return nil
}

// Rename moves the file or directory at oldp to newp, replacing a
// non-directory target the way os.Rename does. Renaming onto a
// directory fails. The parent of newp must already exist.
func (fs *FS) Rename(oldp, newp string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldp, newp = clean(oldp), clean(newp)
	if oldp == "/" || newp == "/" {
		return ErrBadHandle
	}
	if oldp == newp {
		return nil
	}
	if strings.HasPrefix(newp, oldp+"/") {
		return fmt.Errorf("%w: rename %s under itself", ErrBadHandle, oldp)
	}
	oldParent, err := fs.lookup(path.Dir(oldp))
	if err != nil {
		return err
	}
	n, ok := oldParent.children[path.Base(oldp)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldp)
	}
	newParent, err := fs.lookup(path.Dir(newp))
	if err != nil {
		return err
	}
	if !newParent.dir {
		return ErrNotDir
	}
	if dst, ok := newParent.children[path.Base(newp)]; ok && dst.dir {
		return fmt.Errorf("%w: %s", ErrIsDir, newp)
	}
	delete(oldParent.children, path.Base(oldp))
	n.name = path.Base(newp)
	newParent.children[n.name] = n
	return nil
}

// Remove deletes the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if p == "/" {
		return ErrBadHandle
	}
	parent, err := fs.lookup(path.Dir(p))
	if err != nil {
		return err
	}
	name := path.Base(p)
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(parent.children, name)
	return nil
}

// RemoveAll deletes the subtree rooted at p. Removing a path that does
// not exist is not an error, matching os.RemoveAll.
func (fs *FS) RemoveAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if p == "/" {
		fs.root.children = map[string]*node{}
		return nil
	}
	parent, err := fs.lookup(path.Dir(p))
	if err != nil {
		return nil
	}
	delete(parent.children, path.Base(p))
	return nil
}

// ReadDir lists the names in the directory at p, sorted.
func (fs *FS) ReadDir(p string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// IsDir reports whether p exists and is a directory.
func (fs *FS) IsDir(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	return err == nil && n.dir
}

// Exists reports whether p exists.
func (fs *FS) Exists(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, err := fs.lookup(p)
	return err == nil
}

// Walk visits every path under root in lexical order, calling fn with the
// full path and whether it is a directory. It stops at the first error.
func (fs *FS) Walk(root string, fn func(p string, dir bool) error) error {
	fs.mu.RLock()
	n, err := fs.lookup(root)
	if err != nil {
		fs.mu.RUnlock()
		return err
	}
	type entry struct {
		p string
		n *node
	}
	// Snapshot the subtree so fn may mutate the filesystem.
	var flat []entry
	var rec func(p string, n *node)
	rec = func(p string, n *node) {
		flat = append(flat, entry{p, n})
		if n.dir {
			names := make([]string, 0, len(n.children))
			for name := range n.children {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				rec(path.Join(p, name), n.children[name])
			}
		}
	}
	rec(clean(root), n)
	fs.mu.RUnlock()
	for _, e := range flat {
		if err := fn(e.p, e.n.dir); err != nil {
			return err
		}
	}
	return nil
}
