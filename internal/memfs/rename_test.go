package memfs

import (
	"errors"
	"testing"
)

func TestRenameMovesFile(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/a/b/x", "payload"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a/b/x", "/a/y"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/b/x") {
		t.Fatal("source still exists after rename")
	}
	got, err := fs.ReadFile("/a/y")
	if err != nil || got != "payload" {
		t.Fatalf("ReadFile after rename = %q, %v", got, err)
	}
}

func TestRenameReplacesFileTarget(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/new", "fresh"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/old", "stale"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/new", "/old"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/old")
	if err != nil || got != "fresh" {
		t.Fatalf("target after replace = %q, %v", got, err)
	}
	if fs.Exists("/new") {
		t.Fatal("source survived the replace")
	}
}

func TestRenameMovesDirectory(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/src/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/src/sub/f", "deep"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/dst/sub/f")
	if err != nil || got != "deep" {
		t.Fatalf("moved tree content = %q, %v", got, err)
	}
}

func TestRenameRejections(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d/inner"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/f", "x"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		old, new string
		want     error
	}{
		{"root as source", "/", "/x", ErrBadHandle},
		{"root as target", "/f", "/", ErrBadHandle},
		{"under itself", "/d", "/d/inner/d2", ErrBadHandle},
		{"missing source", "/ghost", "/g2", ErrNotExist},
		{"missing target parent", "/f", "/nodir/f", ErrNotExist},
		{"onto directory", "/f", "/d", ErrIsDir},
	}
	for _, tc := range cases {
		if err := fs.Rename(tc.old, tc.new); !errors.Is(err, tc.want) {
			t.Fatalf("%s: Rename(%s, %s) = %v, want %v", tc.name, tc.old, tc.new, err, tc.want)
		}
	}
	// Self-rename is a no-op, like os.Rename on the same path.
	if err := fs.Rename("/f", "/f"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
}
