package memfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMkdirAndReadDir(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatalf("Mkdir /a: %v", err)
	}
	if err := fs.Mkdir("/a/b"); err != nil {
		t.Fatalf("Mkdir /a/b: %v", err)
	}
	names, err := fs.ReadDir("/a")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("ReadDir = %v, want [b]", names)
	}
}

func TestMkdirMissingParent(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Mkdir /a/b with no /a: err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/x/y/z"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if !fs.IsDir("/x/y/z") {
		t.Fatal("IsDir(/x/y/z) = false")
	}
	// Idempotent.
	if err := fs.MkdirAll("/x/y/z"); err != nil {
		t.Fatalf("MkdirAll again: %v", err)
	}
}

func TestMkdirDuplicate(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate Mkdir: err = %v, want ErrExist", err)
	}
}

func TestStaticFileRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/f", "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || got != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := fs.WriteFile("/f", "world"); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/f")
	if got != "world" {
		t.Fatalf("after write, ReadFile = %q", got)
	}
}

func TestDynamicFile(t *testing.T) {
	fs := New()
	val := 7
	err := fs.AddDynamic("/dyn",
		func() string { return fmt.Sprint(val) },
		func(s string) error {
			if s == "bad" {
				return errors.New("invalid")
			}
			val = len(s)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/dyn"); got != "7" {
		t.Fatalf("ReadFile = %q, want 7", got)
	}
	if err := fs.WriteFile("/dyn", "xxx"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/dyn"); got != "3" {
		t.Fatalf("after write, ReadFile = %q, want 3", got)
	}
	if err := fs.WriteFile("/dyn", "bad"); err == nil {
		t.Fatal("write of rejected value succeeded")
	}
}

func TestDynamicReadOnly(t *testing.T) {
	fs := New()
	if err := fs.AddDynamic("/ro", func() string { return "x" }, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/ro", "y"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only: err = %v, want ErrReadOnly", err)
	}
}

func TestReadDirectoryFails(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ReadFile on dir: err = %v, want ErrIsDir", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/f", ""); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file still exists after Remove")
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Remove non-empty dir: err = %v, want ErrNotEmpty", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d/e/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/d/e/f/g", "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") {
		t.Fatal("subtree still exists after RemoveAll")
	}
	// Removing a missing path is not an error.
	if err := fs.RemoveAll("/nope"); err != nil {
		t.Fatal(err)
	}
}

func TestWalkOrder(t *testing.T) {
	fs := New()
	for _, d := range []string{"/a", "/a/b", "/c"} {
		if err := fs.Mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.AddFile("/a/f", ""); err != nil {
		t.Fatal(err)
	}
	var got []string
	err := fs.Walk("/", func(p string, dir bool) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/a", "/a/b", "/a/f", "/c"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Walk order = %v, want %v", got, want)
	}
}

func TestWalkAllowsMutation(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	// Deleting during a walk must not deadlock or corrupt.
	err := fs.Walk("/", func(p string, dir bool) error {
		if p == "/a/b" {
			return fs.RemoveAll("/a")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("/a survived deletion during walk")
	}
}

func TestCleanPathEquivalence(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/a/../a/f", "v"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a/f") // relative spelling
	if err != nil || got != "v" {
		t.Fatalf("ReadFile(a/f) = %q, %v", got, err)
	}
}

// Property: after any sequence of MkdirAll+AddFile, every added file is
// readable with the content last written.
func TestQuickFileContents(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		want := map[string]string{}
		for i := 0; i < int(n%32)+1; i++ {
			depth := rng.Intn(3) + 1
			parts := make([]string, depth)
			for j := range parts {
				parts[j] = fmt.Sprintf("d%d", rng.Intn(4))
			}
			dir := "/" + strings.Join(parts, "/")
			if err := fs.MkdirAll(dir); err != nil {
				return false
			}
			file := dir + fmt.Sprintf("/f%d", rng.Intn(4))
			content := fmt.Sprintf("c%d", rng.Int())
			if _, ok := want[file]; ok {
				if err := fs.WriteFile(file, content); err != nil {
					return false
				}
			} else if err := fs.AddFile(file, content); err != nil {
				return false
			}
			want[file] = content
		}
		for p, c := range want {
			got, err := fs.ReadFile(p)
			if err != nil || got != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/f", "0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				_ = fs.WriteFile("/f", fmt.Sprint(i))
				_, _ = fs.ReadFile("/f")
				_ = fs.MkdirAll(fmt.Sprintf("/g%d/h%d", i, j%5))
				_, _ = fs.ReadDir("/")
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func TestErrorPaths(t *testing.T) {
	fs := New()
	if err := fs.AddFile("/no/parent", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("AddFile without parent: %v", err)
	}
	if err := fs.AddFile("/f", "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddFile("/f", "y"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate AddFile: %v", err)
	}
	if err := fs.Mkdir("/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("Mkdir under file: %v", err)
	}
	if err := fs.MkdirAll("/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file: %v", err)
	}
	if _, err := fs.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile missing: %v", err)
	}
	if err := fs.WriteFile("/missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("WriteFile missing: %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d", "x"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("WriteFile on dir: %v", err)
	}
	if _, err := fs.ReadDir("/f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("ReadDir on file: %v", err)
	}
	if _, err := fs.ReadDir("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadDir missing: %v", err)
	}
	if err := fs.Remove("/"); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("Remove root: %v", err)
	}
	if err := fs.Remove("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Remove missing: %v", err)
	}
	if err := fs.Walk("/nope", func(string, bool) error { return nil }); err == nil {
		t.Fatal("Walk on missing root succeeded")
	}
}

func TestWalkStopsOnError(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	var visited int
	err := fs.Walk("/", func(p string, dir bool) error {
		visited++
		if p == "/a" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Walk error = %v", err)
	}
	if visited != 2 { // "/" then "/a"
		t.Fatalf("visited %d nodes, want 2", visited)
	}
}

func TestRemoveAllRoot(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/")
	if err != nil || len(names) != 0 {
		t.Fatalf("root not emptied: %v, %v", names, err)
	}
}

func TestDynamicWriteOnlyFile(t *testing.T) {
	fs := New()
	var got string
	// nil read with a write callback: write-only control file.
	if err := fs.AddDynamic("/wo", nil, func(s string) error { got = s; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/wo", "ping"); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Fatalf("write callback saw %q", got)
	}
	if content, err := fs.ReadFile("/wo"); err != nil || content != "" {
		t.Fatalf("write-only read = %q, %v", content, err)
	}
}
