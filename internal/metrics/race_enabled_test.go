//go:build race

package metrics

// raceEnabled skips allocation assertions under the race detector, whose
// instrumentation allocates on paths that are clean in a normal build.
const raceEnabled = true
