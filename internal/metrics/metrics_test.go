package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vfreq_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("vfreq_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("vfreq_idem_total", "h", Label{"stage", "monitor"})
	b := r.Counter("vfreq_idem_total", "h", Label{"stage", "monitor"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("vfreq_idem_total", "h", Label{"stage", "apply"})
	if a == other {
		t.Fatal("different label values must return distinct counters")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("vfreq_kind_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("vfreq_kind_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("metric name with a dash must panic")
		}
	}()
	r.Counter("bad-name", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vfreq_lat_us", "h", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5+10+11+99+500+5000 {
		t.Fatalf("sum = %d", got)
	}
	// Bucket membership: le=10 → {5,10}; le=100 → +{11,99}; le=1000 →
	// +{500}; +Inf → +{5000}. The exposition renders cumulative counts.
	text := r.Text()
	for _, want := range []string{
		`vfreq_lat_us_bucket{le="10"} 2`,
		`vfreq_lat_us_bucket{le="100"} 4`,
		`vfreq_lat_us_bucket{le="1000"} 5`,
		`vfreq_lat_us_bucket{le="+Inf"} 6`,
		`vfreq_lat_us_sum 5625`,
		`vfreq_lat_us_count 6`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

// TestWriteTextDeterministic pins the full exposition for a small
// registry: families sorted by name, series sorted by label set,
// HELP/TYPE headers, and identical output across repeated renders.
func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("vfreq_z_total", "last family").Add(2)
	r.Gauge("vfreq_a_gauge", "first family", Label{"node", "n1"}).Set(4)
	r.Gauge("vfreq_a_gauge", "first family", Label{"node", "n0"}).Set(3)
	r.Histogram("vfreq_m_us", "middle family", []int64{100}).Observe(7)

	want := strings.Join([]string{
		`# HELP vfreq_a_gauge first family`,
		`# TYPE vfreq_a_gauge gauge`,
		`vfreq_a_gauge{node="n0"} 3`,
		`vfreq_a_gauge{node="n1"} 4`,
		`# HELP vfreq_m_us middle family`,
		`# TYPE vfreq_m_us histogram`,
		`vfreq_m_us_bucket{le="100"} 1`,
		`vfreq_m_us_bucket{le="+Inf"} 1`,
		`vfreq_m_us_sum 7`,
		`vfreq_m_us_count 1`,
		`# HELP vfreq_z_total last family`,
		`# TYPE vfreq_z_total counter`,
		`vfreq_z_total 2`,
	}, "\n") + "\n"

	first := r.Text()
	if first != want {
		t.Fatalf("exposition mismatch\n got:\n%s\nwant:\n%s", first, want)
	}
	if second := r.Text(); second != first {
		t.Fatal("exposition must be deterministic across renders")
	}
}

func TestHistogramLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("vfreq_lbl_total", "h", Label{"a", "1"}, Label{"b", "2"})
	b := r.Counter("vfreq_lbl_total", "h", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("vfreq_esc_total", "h", Label{"path", `a"b\c` + "\nd"}).Inc()
	text := r.Text()
	want := `vfreq_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(text, want+"\n") {
		t.Fatalf("escaped exposition missing %q:\n%s", want, text)
	}
}

// TestConcurrentRecording is the metrics race test named in CI: many
// goroutines hammer the same instruments while another renders the
// exposition. Run with -race; correctness check is the final totals.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vfreq_race_total", "h")
	g := r.Gauge("vfreq_race_gauge", "h")
	h := r.Histogram("vfreq_race_us", "h", DefaultLatencyBucketsUs)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(w*1000 + i))
				// Concurrent registration of the same series must be
				// safe too (it is how components arm lazily).
				if i%500 == 0 {
					r.Counter("vfreq_race_total", "h").Add(0)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Text()
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRecordZeroAlloc gates the core contract directly: recording into
// every instrument kind must not allocate.
func TestRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := NewRegistry()
	c := r.Counter("vfreq_za_total", "h", Label{"stage", "monitor"})
	g := r.Gauge("vfreq_za_gauge", "h")
	h := r.Histogram("vfreq_za_us", "h", DefaultLatencyBucketsUs)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(1234)
		h.Observe(999_999_999) // +Inf bucket
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %.1f/op, want 0", allocs)
	}
}
