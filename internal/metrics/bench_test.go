package metrics

import "testing"

// BenchmarkMetricsRecord is the benchdiff-gated hot path (BENCH_9.json,
// allocs/op must stay 0): one counter add, one gauge set and one
// histogram observation — the per-stage record cost the controller pays
// each step.
func BenchmarkMetricsRecord(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("vfreq_bench_total", "h", Label{"stage", "apply"})
	g := r.Gauge("vfreq_bench_gauge", "h")
	h := r.Histogram("vfreq_bench_us", "h", DefaultLatencyBucketsUs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(int64(i))
		h.Observe(int64(i % 2_000_000))
	}
}

// BenchmarkMetricsRecordParallel measures contention on the shared
// atomics when many workers record at once (the cluster pool shape).
func BenchmarkMetricsRecordParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("vfreq_bench_par_total", "h")
	h := r.Histogram("vfreq_bench_par_us", "h", DefaultLatencyBucketsUs)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			c.Add(1)
			h.Observe(i % 2_000_000)
			i++
		}
	})
}

// BenchmarkWriteText sizes the exposition cost for a realistic registry
// (a few dozen families) — the scrape path, not the record path.
func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	stages := []string{"monitor", "estimate", "enforce", "auction", "distribute", "apply"}
	for _, s := range stages {
		h := r.Histogram("vfreq_stage_us", "h", DefaultLatencyBucketsUs, Label{"stage", s})
		for v := int64(1); v < 100_000; v *= 3 {
			h.Observe(v)
		}
	}
	for i := 0; i < 20; i++ {
		r.Counter("vfreq_bench_events_total", "h", Label{"kind", stages[i%len(stages)]}).Add(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Text()
	}
}
