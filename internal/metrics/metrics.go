// Package metrics is the repo's observability layer: a small metrics
// registry — counters, gauges and fixed-bucket histograms — built so
// that RECORDING is free on the control loop's hot path.
//
// The contract, relied on by the zero-alloc gates of internal/core and
// internal/cluster (TestStepZeroAlloc, TestClusterStepZeroAlloc):
//
//   - Registration (Counter/Gauge/Histogram) may allocate: it interns
//     the metric name, the rendered label set and the bucket layout
//     once, up front.
//   - Recording (Add/Inc/Set/Observe) performs only atomic integer
//     operations on pre-allocated storage: zero heap allocations, no
//     locks, no map lookups, no string formatting. All record methods
//     are safe for concurrent use and nil-receiver safe, so an unarmed
//     component records into nil instruments for free.
//
// Exposition is deliberately decoupled from collection: WriteText
// renders the whole registry in the Prometheus text format (version
// 0.0.4) with fully deterministic ordering — families sorted by name,
// series sorted by label set — so outputs diff cleanly across runs.
// The package depends only on the standard library and pulls in no
// net/http; serving the exposition over HTTP is the caller's business
// (see internal/metricshttp).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair attached to a series. Labels are
// interned at registration; recording never touches them.
type Label struct {
	Key, Value string
}

// DefaultLatencyBucketsUs is the fixed bucket layout used by the
// per-stage and per-node step latency histograms: microsecond upper
// bounds spanning 50 µs to 1 s, wide enough for the paper's ~5 ms step
// on real hardware and for the sub-millisecond simulated steps.
var DefaultLatencyBucketsUs = []int64{
	50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
	25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter discards records.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down. The zero value is ready;
// a nil *Gauge discards records.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is a linear scan over the (small, fixed) bound
// slice plus three atomic adds — no allocation, safe for concurrent
// use. A nil *Histogram discards observations.
type Histogram struct {
	bounds  []int64        // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// series is one labelled instance inside a family.
type series struct {
	labels string // pre-rendered {key="value",...} or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families. Registration takes a lock and may
// allocate; the instruments it hands out record lock-free. The zero
// value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter with the given name and label set,
// creating it on first use. Registering the same (name, labels) again
// returns the same instrument; reusing a name with a different kind
// panics — a programmer error, like a duplicate flag.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, nil, labels)
	return s.ctr
}

// Gauge returns the gauge with the given name and label set, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, nil, labels)
	return s.gauge
}

// Histogram returns the histogram with the given name, bucket upper
// bounds and label set, creating it on first use. bounds must be
// ascending and non-empty; every series of one family shares the
// layout of the first registration.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram " + name + " bounds not strictly ascending")
		}
	}
	s := r.lookup(name, help, KindHistogram, bounds, labels)
	return s.hist
}

// lookup finds or creates the series for (name, labels).
func (r *Registry) lookup(name, help string, kind Kind, bounds []int64, labels []Label) *series {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-registered as %s", name, f.kind, kind))
	}
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: append([]int64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(bounds)+1)
		s.hist = h
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels interns a label list as the canonical `key="value",...`
// string, sorted by key so the same set always renders identically.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			panic("metrics: invalid label name " + strconv.Quote(l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		escapeInto(&b, l.Value)
		b.WriteByte('"')
	}
	return b.String()
}

// escapeInto writes v with backslash, newline and double-quote escaped
// per the Prometheus text format.
func escapeInto(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// WriteText renders the registry in the Prometheus text exposition
// format with deterministic ordering: families sorted by name, series
// sorted by rendered label set. Values are read atomically but the
// exposition as a whole is not a consistent snapshot — fine for
// monotonic counters and latency histograms.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		r.mu.Lock()
		ser := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].labels < ser[j].labels })
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			writeSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one series of f into b.
func writeSeries(b *strings.Builder, f *family, s *series) {
	switch f.kind {
	case KindCounter:
		writeSample(b, f.name, "", s.labels, "", s.ctr.Value())
	case KindGauge:
		writeSample(b, f.name, "", s.labels, "", s.gauge.Value())
	case KindHistogram:
		h := s.hist
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			writeSample(b, f.name, "_bucket", s.labels,
				`le="`+strconv.FormatInt(bound, 10)+`"`, cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		writeSample(b, f.name, "_bucket", s.labels, `le="+Inf"`, cum)
		writeSample(b, f.name, "_sum", s.labels, "", h.Sum())
		writeSample(b, f.name, "_count", s.labels, "", h.Count())
	}
}

// writeSample renders `name_suffix{labels,extra} value`.
func writeSample(b *strings.Builder, name, suffix, labels, extra string, v int64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

// Text renders the registry as a string (WriteText into a builder) —
// the convenience form used by the binaries' end-of-run dumps.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
