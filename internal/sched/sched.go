// Package sched implements a discrete-time "fluid" model of the Linux
// Completely Fair Scheduler (CFS) with cgroup v2 semantics: hierarchical
// weighted fair sharing between groups and CFS bandwidth control
// (cpu.max quota/period) with throttling accounting.
//
// Instead of simulating per-core run queues at nanosecond granularity, the
// scheduler distributes the machine's CPU time for one tick (typically
// 10 ms) over the runnable threads by hierarchical weighted max-min
// fairness (progressive filling). Over the aggregation windows a frequency
// controller observes (≥ 100 ms), this fluid allocation is exactly the
// long-run behaviour of CFS: CPU time divided between sibling cgroups in
// proportion to cpu.weight, each thread bounded by one core, and each
// group bounded by its bandwidth quota within the current period window.
//
// The model reproduces the phenomenon the paper builds on: with one cgroup
// per VM (as KVM/libvirt create), CFS shares time per VM, not per vCPU, so
// a 2-vCPU VM and a 4-vCPU VM receive the same total time when both are
// saturated.
package sched

import (
	"fmt"
	"sort"
)

// DefaultWeight is the default cpu.weight of a cgroup.
const DefaultWeight = 100

// NoQuota indicates an unlimited bandwidth quota ("max" in cpu.max).
const NoQuota = int64(-1)

// DefaultPeriodUs is the default CFS bandwidth period (100 ms), matching
// the Linux default.
const DefaultPeriodUs = int64(100_000)

// Thread is a schedulable entity (one kernel thread, e.g. one vCPU).
type Thread struct {
	ID    int
	Group *Group

	// Demand reports the fraction of the next dt microseconds the
	// thread wants to run, in [0, 1]. Nil means always runnable at 1.
	Demand func(nowUs, dtUs int64) float64

	// OnRun, if non-nil, is invoked after each tick with the time the
	// thread actually ran and the frequency of the core it ran on.
	OnRun func(nowUs, ranUs int64, coreFreqMHz int64)

	// UsageUs is the cumulative CPU time consumed, in microseconds.
	UsageUs int64

	// LastCPU is the core the thread last ran on (-1 before first run).
	LastCPU int

	// demand for the current tick, in µs (internal).
	want int64
	// allocation for the current tick, in µs (internal).
	got int64
}

// Group is a node in the cgroup hierarchy.
type Group struct {
	Name     string
	Parent   *Group
	Children []*Group
	Threads  []*Thread

	// Weight is the cpu.weight (1..10000, default 100).
	Weight int64

	// QuotaUs is the bandwidth quota per PeriodUs, or NoQuota.
	QuotaUs  int64
	PeriodUs int64

	// BurstUs is the CFS bandwidth burst budget (cpu.max.burst):
	// quota left unused in previous periods accumulates up to BurstUs
	// and may be spent on top of the quota in a later period.
	BurstUs int64

	// UsageUs is the cumulative CPU time of the subtree (cpu.stat).
	UsageUs int64

	// NrPeriods, NrThrottled and ThrottledUs mirror the cpu.stat
	// bandwidth statistics.
	NrPeriods   int64
	NrThrottled int64
	ThrottledUs int64

	// NrBursts and BurstUsedUs mirror the cpu.stat burst statistics:
	// periods in which the group ran beyond its quota, and the total
	// time spent doing so.
	NrBursts    int64
	BurstUsedUs int64

	windowStartUs int64
	windowUsedUs  int64
	burstReserve  int64
	throttledNow  bool

	// PSI (pressure stall information) exponential averages of the
	// fraction of wall-clock time the group spent throttled with
	// runnable threads, mirroring cpu.pressure's avg10/avg60/avg300.
	psiAvg10, psiAvg60, psiAvg300 float64
	psiStallUs                    int64
}

// Scheduler simulates a multi-core machine's CPU-time allocation.
type Scheduler struct {
	Cores int

	root    *Group
	nowUs   int64
	nextTID int
	threads map[int]*Thread

	// coreLoadUs holds the busy time of each core in the last tick.
	coreLoadUs []int64
	lastDtUs   int64

	// coreBusyTotalUs accumulates per-core busy time since boot
	// (/proc/stat).
	coreBusyTotalUs []int64

	// load averages over 1/5/15 minutes of the runnable thread count
	// (/proc/loadavg).
	load1, load5, load15 float64

	// Scratch reused across Ticks so a steady-state Tick performs no
	// heap allocation (the cluster-scale benchmarks step thousands of
	// simulated machines per period, and before this reuse the fluid
	// scheduler dominated the whole control plane's allocation profile).
	runnableScratch []*Thread
	allocScratch    []Alloc
	orderScratch    []int
	activeScratch   []*entity
	levels          []levelScratch
}

// levelScratch is the per-recursion-depth entity storage of allocate:
// the entity values for one group's children plus the pointer slice
// waterfill filters. One level is reused by every group at that depth
// (allocation within a level finishes before the recursion descends).
type levelScratch struct {
	vals []entity
	ptrs []*entity
}

// New creates a scheduler for a machine with the given number of logical
// cores. The root cgroup has no quota.
func New(cores int) *Scheduler {
	if cores <= 0 {
		panic("sched: cores must be positive")
	}
	return &Scheduler{
		Cores: cores,
		root: &Group{
			Name:     "/",
			Weight:   DefaultWeight,
			QuotaUs:  NoQuota,
			PeriodUs: DefaultPeriodUs,
		},
		nextTID:         1,
		threads:         map[int]*Thread{},
		coreLoadUs:      make([]int64, cores),
		coreBusyTotalUs: make([]int64, cores),
	}
}

// Root returns the root cgroup.
func (s *Scheduler) Root() *Group { return s.root }

// NowUs returns the current simulated time in microseconds.
func (s *Scheduler) NowUs() int64 { return s.nowUs }

// NewGroup creates a child cgroup of parent with the default weight and no
// quota. A nil parent means the root.
func (s *Scheduler) NewGroup(parent *Group, name string) *Group {
	if parent == nil {
		parent = s.root
	}
	g := &Group{
		Name:          name,
		Parent:        parent,
		Weight:        DefaultWeight,
		QuotaUs:       NoQuota,
		PeriodUs:      DefaultPeriodUs,
		windowStartUs: s.nowUs,
	}
	parent.Children = append(parent.Children, g)
	return g
}

// RemoveGroup detaches g (and its whole subtree) from the hierarchy.
func (s *Scheduler) RemoveGroup(g *Group) error {
	if g == s.root {
		return fmt.Errorf("sched: cannot remove root group")
	}
	var rec func(*Group)
	rec = func(n *Group) {
		for _, t := range n.Threads {
			delete(s.threads, t.ID)
		}
		n.Threads = nil
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(g)
	p := g.Parent
	for i, c := range p.Children {
		if c == g {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	g.Parent = nil
	return nil
}

// SetQuota configures bandwidth control for g. quotaUs may be NoQuota.
func (g *Group) SetQuota(quotaUs, periodUs int64) error {
	if periodUs <= 0 {
		return fmt.Errorf("sched: period must be positive, got %d", periodUs)
	}
	if quotaUs < 0 && quotaUs != NoQuota {
		return fmt.Errorf("sched: invalid quota %d", quotaUs)
	}
	g.QuotaUs = quotaUs
	g.PeriodUs = periodUs
	return nil
}

// SetBurst configures the bandwidth burst budget (cpu.max.burst). The
// kernel rejects bursts without a quota or larger than the quota.
func (g *Group) SetBurst(burstUs int64) error {
	if burstUs < 0 {
		return fmt.Errorf("sched: invalid burst %d", burstUs)
	}
	if burstUs > 0 && g.QuotaUs == NoQuota {
		return fmt.Errorf("sched: burst requires a quota")
	}
	if burstUs > 0 && burstUs > g.QuotaUs {
		return fmt.Errorf("sched: burst %d exceeds quota %d", burstUs, g.QuotaUs)
	}
	g.BurstUs = burstUs
	if g.burstReserve > burstUs {
		g.burstReserve = burstUs
	}
	return nil
}

// PSI returns the group's CPU pressure averages: the fraction of time
// the group was throttled while having runnable demand, over ~10 s,
// ~60 s and ~300 s horizons, plus the total stall time in microseconds
// (the cpu.pressure "some" line).
func (g *Group) PSI() (avg10, avg60, avg300 float64, totalUs int64) {
	return g.psiAvg10, g.psiAvg60, g.psiAvg300, g.psiStallUs
}

// Path returns the slash-separated path of the group from the root.
func (g *Group) Path() string {
	if g.Parent == nil {
		return "/"
	}
	p := g.Parent.Path()
	if p == "/" {
		return "/" + g.Name
	}
	return p + "/" + g.Name
}

// NewThread creates a runnable thread in group g and returns it. The
// thread ID is unique within the scheduler.
func (s *Scheduler) NewThread(g *Group, demand func(nowUs, dtUs int64) float64) *Thread {
	if g == nil {
		g = s.root
	}
	t := &Thread{
		ID:      s.nextTID,
		Group:   g,
		Demand:  demand,
		LastCPU: -1,
	}
	s.nextTID++
	g.Threads = append(g.Threads, t)
	s.threads[t.ID] = t
	return t
}

// RemoveThread removes t from the scheduler.
func (s *Scheduler) RemoveThread(t *Thread) {
	delete(s.threads, t.ID)
	g := t.Group
	for i, x := range g.Threads {
		if x == t {
			g.Threads = append(g.Threads[:i], g.Threads[i+1:]...)
			break
		}
	}
	t.Group = nil
}

// Thread returns the thread with the given ID, or nil.
func (s *Scheduler) Thread(id int) *Thread { return s.threads[id] }

// Threads returns all thread IDs in a group (not recursive), sorted.
func (g *Group) ThreadIDs() []int {
	ids := make([]int, len(g.Threads))
	for i, t := range g.Threads {
		ids[i] = t.ID
	}
	sort.Ints(ids)
	return ids
}

// CoreLoadUs returns the busy microseconds of core c during the last tick.
func (s *Scheduler) CoreLoadUs(c int) int64 { return s.coreLoadUs[c] }

// CoreUtilization returns the utilisation of core c over the last tick, in
// [0, 1]. Before the first tick it returns 0.
func (s *Scheduler) CoreUtilization(c int) float64 {
	if s.lastDtUs == 0 {
		return 0
	}
	return float64(s.coreLoadUs[c]) / float64(s.lastDtUs)
}

// Utilization returns the machine-wide utilisation over the last tick.
func (s *Scheduler) Utilization() float64 {
	if s.lastDtUs == 0 {
		return 0
	}
	var busy int64
	for _, l := range s.coreLoadUs {
		busy += l
	}
	return float64(busy) / float64(s.lastDtUs*int64(s.Cores))
}

// Alloc reports the outcome of one tick for one thread.
type Alloc struct {
	Thread *Thread
	RanUs  int64
	Core   int
}

// entity is a schedulable child of a group during one tick: either a
// thread or a sub-group.
type entity struct {
	thread *Thread
	group  *Group
	weight int64
	need   int64
	got    int64
}

// Tick advances the simulation by dt microseconds, distributing CPU time
// over runnable threads. It returns the per-thread allocations. The caller
// is responsible for invoking thread OnRun callbacks with core
// frequencies; Tick itself updates usage counters, bandwidth windows and
// thread placement. The returned slice is reused by the next Tick, so
// callers must consume (or copy) it before advancing again.
func (s *Scheduler) Tick(dtUs int64) []Alloc {
	if dtUs <= 0 {
		panic("sched: dt must be positive")
	}
	s.refreshWindows(s.root, dtUs)

	// Gather demands.
	runnable := s.runnableScratch[:0]
	s.collectDemands(s.root, dtUs, &runnable)
	s.runnableScratch = runnable

	capacity := dtUs * int64(s.Cores)
	s.allocate(s.root, capacity, dtUs, 0)

	// Record usage, build allocations, place threads on cores.
	allocs := s.allocScratch[:0]
	for _, t := range runnable {
		if t.got < 0 {
			panic("sched: negative allocation")
		}
		if t.got == 0 {
			continue
		}
		t.UsageUs += t.got
		for g := t.Group; g != nil; g = g.Parent {
			g.UsageUs += t.got
			g.windowUsedUs += t.got
		}
		allocs = append(allocs, Alloc{Thread: t, RanUs: t.got})
	}
	s.allocScratch = allocs
	s.placeOnCores(allocs, dtUs)
	s.recordThrottling(s.root, dtUs)
	for c, l := range s.coreLoadUs {
		s.coreBusyTotalUs[c] += l
	}
	s.updateLoadAvg(len(runnable), dtUs)
	s.nowUs += dtUs
	s.lastDtUs = dtUs
	return allocs
}

// updateLoadAvg blends the runnable thread count into the 1/5/15-minute
// exponential load averages.
func (s *Scheduler) updateLoadAvg(runnable int, dtUs int64) {
	blend := func(avg *float64, windowUs float64) {
		alpha := float64(dtUs) / windowUs
		if alpha > 1 {
			alpha = 1
		}
		*avg = *avg*(1-alpha) + float64(runnable)*alpha
	}
	blend(&s.load1, 60e6)
	blend(&s.load5, 300e6)
	blend(&s.load15, 900e6)
}

// LoadAvg returns the 1/5/15-minute load averages (runnable threads).
func (s *Scheduler) LoadAvg() (l1, l5, l15 float64) { return s.load1, s.load5, s.load15 }

// CoreBusyTotalUs returns core c's cumulative busy time since boot.
func (s *Scheduler) CoreBusyTotalUs(c int) int64 { return s.coreBusyTotalUs[c] }

// RunnableCount returns the number of registered threads.
func (s *Scheduler) RunnableCount() int { return len(s.threads) }

// refreshWindows opens new bandwidth periods where due, settling the
// burst reserve: unused quota accumulates (up to BurstUs) and overruns
// drain it.
func (s *Scheduler) refreshWindows(g *Group, dtUs int64) {
	if g.QuotaUs != NoQuota {
		for s.nowUs-g.windowStartUs >= g.PeriodUs {
			if over := g.windowUsedUs - g.QuotaUs; over > 0 {
				g.burstReserve -= over
				if g.burstReserve < 0 {
					g.burstReserve = 0
				}
				g.NrBursts++
				g.BurstUsedUs += over
			} else {
				g.burstReserve += -over
				if g.burstReserve > g.BurstUs {
					g.burstReserve = g.BurstUs
				}
			}
			g.windowStartUs += g.PeriodUs
			g.windowUsedUs = 0
			g.NrPeriods++
			g.throttledNow = false
		}
	}
	for _, c := range g.Children {
		s.refreshWindows(c, dtUs)
	}
}

// collectDemands evaluates thread demands for the next tick.
func (s *Scheduler) collectDemands(g *Group, dtUs int64, out *[]*Thread) {
	for _, t := range g.Threads {
		f := 1.0
		if t.Demand != nil {
			f = t.Demand(s.nowUs, dtUs)
		}
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		t.want = int64(f * float64(dtUs))
		t.got = 0
		if t.want > 0 {
			*out = append(*out, t)
		}
	}
	for _, c := range g.Children {
		s.collectDemands(c, dtUs, out)
	}
}

// quotaRemaining returns how much CPU time group g may still consume in
// its current bandwidth window, unconstrained groups return max.
func (g *Group) quotaRemaining() int64 {
	if g.QuotaUs == NoQuota {
		return int64(1) << 62
	}
	r := g.QuotaUs + g.burstReserve - g.windowUsedUs
	if r < 0 {
		return 0
	}
	return r
}

// need computes the feasible demand of the subtree rooted at g for this
// tick: the sum of thread demands, clamped by every quota on the way down.
func (g *Group) need() int64 {
	var sum int64
	for _, t := range g.Threads {
		sum += t.want - t.got
	}
	for _, c := range g.Children {
		sum += c.need()
	}
	if q := g.quotaRemaining(); sum > q {
		sum = q
	}
	return sum
}

// allocate distributes capacity µs of CPU time within group g using
// weighted max-min fairness over its children (sub-groups and direct
// threads). dtUs bounds each thread at one core. depth indexes the
// per-level entity scratch: sibling groups share a level and recursion
// into a child uses the next one, so no allocation survives warm-up.
func (s *Scheduler) allocate(g *Group, capacity, dtUs int64, depth int) {
	if q := g.quotaRemaining(); capacity > q {
		capacity = q
	}
	if capacity <= 0 {
		return
	}
	if depth == len(s.levels) {
		s.levels = append(s.levels, levelScratch{})
	}
	// Build child entities in the level's value slice first; pointers
	// are taken only once the slice has stopped growing.
	vals := s.levels[depth].vals[:0]
	for _, t := range g.Threads {
		if n := t.want - t.got; n > 0 {
			vals = append(vals, entity{thread: t, weight: DefaultWeight, need: n})
		}
	}
	for _, c := range g.Children {
		if n := c.need(); n > 0 {
			w := c.Weight
			if w <= 0 {
				w = DefaultWeight
			}
			vals = append(vals, entity{group: c, weight: w, need: n})
		}
	}
	s.levels[depth].vals = vals
	if len(vals) == 0 {
		return
	}
	ents := s.levels[depth].ptrs[:0]
	for i := range vals {
		ents = append(ents, &vals[i])
	}
	s.levels[depth].ptrs = ents
	s.waterfill(ents, capacity)
	for _, e := range ents {
		if e.got == 0 {
			continue
		}
		if e.thread != nil {
			e.thread.got += e.got
		} else {
			s.allocate(e.group, e.got, dtUs, depth+1)
		}
	}
}

// waterfill distributes capacity among entities by weighted max-min
// fairness with exact integer conservation: Σ got ≤ capacity, got ≤ need,
// and no entity can gain without another losing. The active list lives in
// a single scheduler-wide scratch: a waterfill completes before allocate
// recurses, so nested calls never overlap on it.
func (s *Scheduler) waterfill(ents []*entity, capacity int64) {
	active := s.activeScratch[:0]
	active = append(active, ents...)
	s.activeScratch = active
	for capacity > 0 && len(active) > 0 {
		var sumW int64
		for _, e := range active {
			sumW += e.weight
		}
		snapshot := capacity
		progress := false
		next := active[:0]
		for _, e := range active {
			share := snapshot * e.weight / sumW
			if share > capacity {
				share = capacity
			}
			give := e.need - e.got
			if give > share {
				give = share
			}
			if give > 0 {
				e.got += give
				capacity -= give
				progress = true
			}
			if e.got < e.need {
				next = append(next, e)
			}
		}
		active = next
		if !progress {
			// Integer shares rounded to zero: hand out the
			// remainder one microsecond at a time, highest
			// weight first. Stable insertion sort: same order as
			// sort.SliceStable by descending weight, without its
			// closure and swapper allocations.
			for i := 1; i < len(active); i++ {
				e := active[i]
				j := i - 1
				for j >= 0 && active[j].weight < e.weight {
					active[j+1] = active[j]
					j--
				}
				active[j+1] = e
			}
			for capacity > 0 && len(active) > 0 {
				next := active[:0]
				for _, e := range active {
					if capacity == 0 {
						next = append(next, e)
						continue
					}
					e.got++
					capacity--
					if e.got < e.need {
						next = append(next, e)
					}
				}
				active = next
			}
		}
	}
}

// placeOnCores assigns each allocation to a core for the tick. Threads
// prefer their previous core if it has room (models CFS affinity: loaded
// threads migrate rarely); otherwise they go to the least-loaded core.
func (s *Scheduler) placeOnCores(allocs []Alloc, dtUs int64) {
	for i := range s.coreLoadUs {
		s.coreLoadUs[i] = 0
	}
	// Largest allocations first gives first-fit-decreasing packing.
	// Stable insertion sort over a reused index slice: identical order
	// to sort.SliceStable by descending RanUs, with no per-tick
	// allocation.
	order := s.orderScratch[:0]
	for i := range allocs {
		order = append(order, i)
	}
	s.orderScratch = order
	for i := 1; i < len(order); i++ {
		oi := order[i]
		v := allocs[oi].RanUs
		j := i - 1
		for j >= 0 && allocs[order[j]].RanUs < v {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = oi
	}
	for _, idx := range order {
		a := &allocs[idx]
		t := a.Thread
		core := -1
		if t.LastCPU >= 0 && t.LastCPU < s.Cores &&
			s.coreLoadUs[t.LastCPU]+a.RanUs <= dtUs {
			core = t.LastCPU
		} else {
			least := int64(1) << 62
			for c := 0; c < s.Cores; c++ {
				if s.coreLoadUs[c] < least {
					least = s.coreLoadUs[c]
					core = c
				}
			}
		}
		s.coreLoadUs[core] += a.RanUs
		t.LastCPU = core
		a.Core = core
	}
}

// recordThrottling updates cpu.stat-style throttling counters and the PSI
// pressure averages: a group is throttled in a tick when its quota window
// is exhausted while its threads still have unmet demand.
func (s *Scheduler) recordThrottling(g *Group, dtUs int64) {
	stalled := false
	if g.QuotaUs != NoQuota && g.quotaRemaining() == 0 {
		unmet := int64(0)
		var rec func(*Group)
		rec = func(n *Group) {
			for _, t := range n.Threads {
				if t.want > t.got {
					unmet += t.want - t.got
				}
			}
			for _, c := range n.Children {
				rec(c)
			}
		}
		rec(g)
		if unmet > 0 {
			if !g.throttledNow {
				g.NrThrottled++
				g.throttledNow = true
			}
			g.ThrottledUs += unmet
			stalled = true
		}
	}
	g.updatePSI(stalled, dtUs)
	for _, c := range g.Children {
		s.recordThrottling(c, dtUs)
	}
}

// updatePSI advances the pressure averages by one tick. The averages are
// exponentially weighted over 10/60/300-second horizons, as the kernel's
// cpu.pressure reports.
func (g *Group) updatePSI(stalled bool, dtUs int64) {
	v := 0.0
	if stalled {
		v = 1
		g.psiStallUs += dtUs
	}
	blend := func(avg *float64, windowUs float64) {
		alpha := float64(dtUs) / windowUs
		if alpha > 1 {
			alpha = 1
		}
		*avg = *avg*(1-alpha) + v*alpha
	}
	blend(&g.psiAvg10, 10e6)
	blend(&g.psiAvg60, 60e6)
	blend(&g.psiAvg300, 300e6)
}
