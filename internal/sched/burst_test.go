package sched

import (
	"testing"
	"testing/quick"
)

func TestSetBurstValidation(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetBurst(1000); err == nil {
		t.Fatal("burst without quota accepted")
	}
	if err := g.SetQuota(50_000, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBurst(-1); err == nil {
		t.Fatal("negative burst accepted")
	}
	if err := g.SetBurst(60_000); err == nil {
		t.Fatal("burst above quota accepted")
	}
	if err := g.SetBurst(50_000); err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	if err := g.SetBurst(0); err != nil {
		t.Fatalf("clearing burst rejected: %v", err)
	}
}

// After idle periods, an accumulated burst reserve lets the group exceed
// its quota for one window; without burst it cannot.
func TestBurstAllowsTemporaryOverrun(t *testing.T) {
	run := func(burst int64) int64 {
		s := New(1)
		g := s.NewGroup(nil, "g")
		if err := g.SetQuota(50_000, 100_000); err != nil {
			t.Fatal(err)
		}
		if err := g.SetBurst(burst); err != nil {
			t.Fatal(err)
		}
		// One idle window accrues unused quota into the reserve.
		active := false
		th := s.NewThread(g, func(now, dt int64) float64 {
			if active {
				return 1
			}
			return 0
		})
		for i := 0; i < 10; i++ { // window 1: idle
			s.Tick(tick)
		}
		active = true
		before := th.UsageUs
		for i := 0; i < 10; i++ { // window 2: saturated
			s.Tick(tick)
		}
		return th.UsageUs - before
	}
	noBurst := run(0)
	withBurst := run(40_000)
	if noBurst != 50_000 {
		t.Fatalf("no-burst window usage = %d, want 50000", noBurst)
	}
	if withBurst != 90_000 { // quota + accumulated reserve
		t.Fatalf("burst window usage = %d, want 90000", withBurst)
	}
}

// The reserve is capped at BurstUs no matter how long the group idles.
func TestBurstReserveCapped(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(50_000, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBurst(20_000); err != nil {
		t.Fatal(err)
	}
	active := false
	th := s.NewThread(g, func(now, dt int64) float64 {
		if active {
			return 1
		}
		return 0
	})
	for i := 0; i < 50; i++ { // five idle windows
		s.Tick(tick)
	}
	active = true
	before := th.UsageUs
	for i := 0; i < 10; i++ {
		s.Tick(tick)
	}
	if got := th.UsageUs - before; got != 70_000 { // quota + capped burst
		t.Fatalf("usage = %d, want 70000", got)
	}
	// Burst statistics settle when the overrun window closes.
	for i := 0; i < 10; i++ {
		s.Tick(tick)
	}
	if g.NrBursts == 0 || g.BurstUsedUs != 20_000 {
		t.Fatalf("burst stats: nr=%d used=%d, want used=20000", g.NrBursts, g.BurstUsedUs)
	}
}

// Sustained load cannot exceed the quota on average: the reserve never
// refills while the group keeps saturating its windows.
func TestBurstSustainedRateBounded(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(50_000, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBurst(50_000); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(g, nil)
	for i := 0; i < 200; i++ { // 2 s = 20 windows, all saturated
		s.Tick(tick)
	}
	// At most quota × windows (no reserve ever accumulates beyond the
	// start; the group was never idle).
	if th.UsageUs > 50_000*20 {
		t.Fatalf("sustained usage %d exceeds quota rate %d", th.UsageUs, 50_000*20)
	}
}

func TestPSITracksThrottling(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(20_000, 100_000); err != nil {
		t.Fatal(err)
	}
	s.NewThread(g, nil)         // saturated at 20% quota → throttled 80% of time
	for i := 0; i < 4000; i++ { // 40 s: four avg10 time constants
		s.Tick(tick)
	}
	a10, a60, a300, total := g.PSI()
	if a10 < 0.7 || a10 > 0.9 {
		t.Fatalf("avg10 = %.2f, want ≈0.8 (throttled most of the time)", a10)
	}
	if a60 <= 0 || a300 <= 0 {
		t.Fatalf("longer averages empty: %.3f %.3f", a60, a300)
	}
	if total == 0 {
		t.Fatal("no stall time accumulated")
	}
	// An unthrottled group reports no pressure.
	free := s.NewGroup(nil, "free")
	s.NewThread(free, func(now, dt int64) float64 { return 0.1 })
	for i := 0; i < 100; i++ {
		s.Tick(tick)
	}
	f10, _, _, ftotal := free.PSI()
	if f10 > 0.01 || ftotal != 0 {
		t.Fatalf("free group under pressure: %.3f, total %d", f10, ftotal)
	}
}

func TestPSIDecaysAfterRelief(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(10_000, 100_000); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(g, nil)
	for i := 0; i < 500; i++ { // 5 s of heavy throttling
		s.Tick(tick)
	}
	before10, _, _, _ := g.PSI()
	// Lift the quota: pressure must decay.
	if err := g.SetQuota(NoQuota, 100_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ { // 10 s of freedom
		s.Tick(tick)
	}
	after10, _, _, _ := g.PSI()
	if after10 >= before10/2 {
		t.Fatalf("avg10 did not decay: %.3f → %.3f", before10, after10)
	}
	_ = th
}

// Property: the burst reserve never exceeds BurstUs and usage per window
// never exceeds quota + burst.
func TestQuickBurstInvariants(t *testing.T) {
	f := func(quota16, burst16 uint16, duty uint8) bool {
		quota := int64(quota16)%80_000 + 10_000
		burst := int64(burst16) % (quota + 1)
		s := New(1)
		g := s.NewGroup(nil, "g")
		if err := g.SetQuota(quota, 100_000); err != nil {
			return false
		}
		if err := g.SetBurst(burst); err != nil {
			return false
		}
		d := float64(duty%100) / 100
		s.NewThread(g, func(now, dt int64) float64 {
			// Alternate idle/busy windows.
			if (now/100_000)%2 == 0 {
				return d
			}
			return 1
		})
		var prevUsage int64
		for w := 0; w < 20; w++ {
			for i := 0; i < 10; i++ {
				s.Tick(tick)
			}
			used := g.UsageUs - prevUsage
			prevUsage = g.UsageUs
			if used > quota+burst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
