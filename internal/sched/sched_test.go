package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const tick = int64(10_000) // 10 ms

func TestSingleThreadFullCore(t *testing.T) {
	s := New(1)
	th := s.NewThread(nil, nil)
	allocs := s.Tick(tick)
	if len(allocs) != 1 {
		t.Fatalf("got %d allocs, want 1", len(allocs))
	}
	if allocs[0].RanUs != tick {
		t.Fatalf("RanUs = %d, want %d", allocs[0].RanUs, tick)
	}
	if th.UsageUs != tick {
		t.Fatalf("UsageUs = %d, want %d", th.UsageUs, tick)
	}
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	s := New(1)
	a := s.NewThread(nil, nil)
	b := s.NewThread(nil, nil)
	s.Tick(tick)
	if a.UsageUs+b.UsageUs != tick {
		t.Fatalf("total usage = %d, want %d", a.UsageUs+b.UsageUs, tick)
	}
	if diff := a.UsageUs - b.UsageUs; diff > 1 || diff < -1 {
		t.Fatalf("unfair split: %d vs %d", a.UsageUs, b.UsageUs)
	}
}

func TestDemandBelowCapacity(t *testing.T) {
	s := New(2)
	th := s.NewThread(nil, func(now, dt int64) float64 { return 0.25 })
	s.Tick(tick)
	if th.UsageUs != tick/4 {
		t.Fatalf("UsageUs = %d, want %d", th.UsageUs, tick/4)
	}
}

func TestThreadBoundedByOneCore(t *testing.T) {
	s := New(4)
	th := s.NewThread(nil, nil)
	s.Tick(tick)
	if th.UsageUs != tick {
		t.Fatalf("single thread on 4 cores: UsageUs = %d, want %d (one core)", th.UsageUs, tick)
	}
}

func TestWeightedSharing(t *testing.T) {
	s := New(1)
	ga := s.NewGroup(nil, "a")
	gb := s.NewGroup(nil, "b")
	ga.Weight = 200
	gb.Weight = 100
	a := s.NewThread(ga, nil)
	b := s.NewThread(gb, nil)
	for i := 0; i < 100; i++ {
		s.Tick(tick)
	}
	total := a.UsageUs + b.UsageUs
	if total != 100*tick {
		t.Fatalf("total = %d, want %d", total, 100*tick)
	}
	ratio := float64(a.UsageUs) / float64(b.UsageUs)
	if ratio < 1.95 || ratio > 2.05 {
		t.Fatalf("weight 200:100 gave ratio %.3f, want ~2", ratio)
	}
}

// The Fig. 1 scenario of the paper: three threads on one core where a is
// entitled to twice the time of b and c, enforced via quotas of 0.5/0.25/
// 0.25 of the period.
func TestFig1QuotaSplit(t *testing.T) {
	s := New(1)
	mk := func(name string, quota int64) (*Group, *Thread) {
		g := s.NewGroup(nil, name)
		if err := g.SetQuota(quota, 100_000); err != nil {
			t.Fatal(err)
		}
		return g, s.NewThread(g, nil)
	}
	_, a := mk("a", 50_000)
	_, b := mk("b", 25_000)
	_, c := mk("c", 25_000)
	for i := 0; i < 100; i++ { // 1 s
		s.Tick(tick)
	}
	total := float64(a.UsageUs + b.UsageUs + c.UsageUs)
	fa, fb, fc := float64(a.UsageUs)/total, float64(b.UsageUs)/total, float64(c.UsageUs)/total
	if fa < 0.47 || fa > 0.53 || fb < 0.22 || fb > 0.28 || fc < 0.22 || fc > 0.28 {
		t.Fatalf("shares = %.2f/%.2f/%.2f, want 0.50/0.25/0.25", fa, fb, fc)
	}
}

// CFS shares per cgroup (per VM), not per thread: a 2-thread group and a
// 4-thread group on 2 saturated cores each get one core in total.
func TestPerGroupFairnessNotPerThread(t *testing.T) {
	s := New(2)
	small := s.NewGroup(nil, "small")
	large := s.NewGroup(nil, "large")
	var sm, lg []*Thread
	for i := 0; i < 2; i++ {
		sm = append(sm, s.NewThread(small, nil))
	}
	for i := 0; i < 4; i++ {
		lg = append(lg, s.NewThread(large, nil))
	}
	for i := 0; i < 50; i++ {
		s.Tick(tick)
	}
	var smTot, lgTot int64
	for _, t := range sm {
		smTot += t.UsageUs
	}
	for _, t := range lg {
		lgTot += t.UsageUs
	}
	if diff := float64(smTot-lgTot) / float64(smTot+lgTot); diff > 0.02 || diff < -0.02 {
		t.Fatalf("group totals differ: small=%d large=%d", smTot, lgTot)
	}
	// Per-thread: small threads run twice as fast as large threads.
	r := float64(sm[0].UsageUs) / float64(lg[0].UsageUs)
	if r < 1.9 || r > 2.1 {
		t.Fatalf("per-thread ratio = %.2f, want ~2", r)
	}
}

// Paper §IV-A2 experiment a): 20 VMs with 4 vCPUs each, all saturated →
// every vCPU runs at the same speed.
func TestPaperCFSExperimentA(t *testing.T) {
	s := New(40)
	var threads []*Thread
	for v := 0; v < 20; v++ {
		g := s.NewGroup(nil, "vm")
		for j := 0; j < 4; j++ {
			threads = append(threads, s.NewThread(g, nil))
		}
	}
	for i := 0; i < 50; i++ {
		s.Tick(tick)
	}
	min, max := threads[0].UsageUs, threads[0].UsageUs
	for _, th := range threads {
		if th.UsageUs < min {
			min = th.UsageUs
		}
		if th.UsageUs > max {
			max = th.UsageUs
		}
	}
	if float64(max-min)/float64(max) > 0.02 {
		t.Fatalf("vCPU usage spread %.1f%% too large (min=%d max=%d)",
			100*float64(max-min)/float64(max), min, max)
	}
}

// Paper §IV-A2 experiment b): 40 VMs with 1 vCPU and 10 VMs with 4 vCPUs
// on a fully loaded node → 4/5 of the resources go to the 1-vCPU VMs.
func TestPaperCFSExperimentB(t *testing.T) {
	s := New(40)
	var ones, fours []*Thread
	for v := 0; v < 40; v++ {
		g := s.NewGroup(nil, "one")
		ones = append(ones, s.NewThread(g, nil))
	}
	for v := 0; v < 10; v++ {
		g := s.NewGroup(nil, "four")
		for j := 0; j < 4; j++ {
			fours = append(fours, s.NewThread(g, nil))
		}
	}
	for i := 0; i < 50; i++ {
		s.Tick(tick)
	}
	var oneTot, fourTot int64
	for _, t := range ones {
		oneTot += t.UsageUs
	}
	for _, t := range fours {
		fourTot += t.UsageUs
	}
	frac := float64(oneTot) / float64(oneTot+fourTot)
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("1-vCPU VMs got %.2f of resources, want ~0.80", frac)
	}
}

func TestQuotaEnforcedOverWindow(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(30_000, 100_000); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(g, nil)
	for i := 0; i < 100; i++ { // 1 s = 10 windows
		s.Tick(tick)
	}
	// 30 ms per 100 ms window → 300 ms out of 1 s.
	if th.UsageUs != 300_000 {
		t.Fatalf("UsageUs = %d, want 300000", th.UsageUs)
	}
	if g.NrThrottled == 0 || g.ThrottledUs == 0 {
		t.Fatalf("expected throttling stats, got nr=%d us=%d", g.NrThrottled, g.ThrottledUs)
	}
}

func TestQuotaUnusedWhenIdle(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(30_000, 100_000); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(g, func(now, dt int64) float64 { return 0.1 })
	for i := 0; i < 100; i++ {
		s.Tick(tick)
	}
	if th.UsageUs != 100_000 { // 10% demand, quota 30% → demand-bound
		t.Fatalf("UsageUs = %d, want 100000", th.UsageUs)
	}
	if g.NrThrottled != 0 {
		t.Fatalf("unexpected throttling: %d", g.NrThrottled)
	}
}

func TestNestedQuota(t *testing.T) {
	s := New(1)
	outer := s.NewGroup(nil, "outer")
	if err := outer.SetQuota(50_000, 100_000); err != nil {
		t.Fatal(err)
	}
	inner := s.NewGroup(outer, "inner")
	if err := inner.SetQuota(80_000, 100_000); err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(inner, nil)
	for i := 0; i < 100; i++ {
		s.Tick(tick)
	}
	// Outer quota (50%) binds despite inner allowing 80%.
	if th.UsageUs != 500_000 {
		t.Fatalf("UsageUs = %d, want 500000", th.UsageUs)
	}
}

func TestWorkConservingAcrossGroups(t *testing.T) {
	s := New(1)
	ga := s.NewGroup(nil, "a")
	gb := s.NewGroup(nil, "b")
	a := s.NewThread(ga, func(now, dt int64) float64 { return 0.2 })
	b := s.NewThread(gb, nil)
	s.Tick(tick)
	if a.UsageUs != tick/5 {
		t.Fatalf("a usage = %d, want %d", a.UsageUs, tick/5)
	}
	if b.UsageUs != tick-tick/5 {
		t.Fatalf("b usage = %d, want %d (leftover)", b.UsageUs, tick-tick/5)
	}
}

func TestGroupUsagePropagates(t *testing.T) {
	s := New(2)
	parent := s.NewGroup(nil, "p")
	child := s.NewGroup(parent, "c")
	s.NewThread(child, nil)
	s.NewThread(parent, nil)
	s.Tick(tick)
	if child.UsageUs != tick {
		t.Fatalf("child usage = %d, want %d", child.UsageUs, tick)
	}
	if parent.UsageUs != 2*tick {
		t.Fatalf("parent usage = %d, want %d", parent.UsageUs, 2*tick)
	}
	if s.Root().UsageUs != 2*tick {
		t.Fatalf("root usage = %d, want %d", s.Root().UsageUs, 2*tick)
	}
}

func TestCorePlacementBounds(t *testing.T) {
	s := New(4)
	for i := 0; i < 8; i++ {
		s.NewThread(nil, nil)
	}
	allocs := s.Tick(tick)
	for _, a := range allocs {
		if a.Core < 0 || a.Core >= 4 {
			t.Fatalf("core %d out of range", a.Core)
		}
		if a.Thread.LastCPU != a.Core {
			t.Fatalf("LastCPU %d != alloc core %d", a.Thread.LastCPU, a.Core)
		}
	}
}

func TestStickyPlacement(t *testing.T) {
	s := New(4)
	th := s.NewThread(nil, nil)
	s.Tick(tick)
	first := th.LastCPU
	for i := 0; i < 20; i++ {
		s.Tick(tick)
		if th.LastCPU != first {
			t.Fatalf("lone saturated thread migrated from %d to %d", first, th.LastCPU)
		}
	}
}

func TestUtilization(t *testing.T) {
	s := New(2)
	s.NewThread(nil, nil) // one thread saturates one of two cores
	s.Tick(tick)
	if u := s.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %.2f, want 0.5", u)
	}
	// One core fully busy, one idle.
	busy, idle := 0, 0
	for c := 0; c < 2; c++ {
		switch u := s.CoreUtilization(c); {
		case u > 0.99:
			busy++
		case u < 0.01:
			idle++
		}
	}
	if busy != 1 || idle != 1 {
		t.Fatalf("core utilisations unexpected: busy=%d idle=%d", busy, idle)
	}
}

func TestRemoveThread(t *testing.T) {
	s := New(1)
	a := s.NewThread(nil, nil)
	b := s.NewThread(nil, nil)
	s.RemoveThread(a)
	s.Tick(tick)
	if b.UsageUs != tick {
		t.Fatalf("b usage = %d, want %d", b.UsageUs, tick)
	}
	if a.UsageUs != 0 {
		t.Fatalf("removed thread ran: %d", a.UsageUs)
	}
	if s.Thread(a.ID) != nil {
		t.Fatal("removed thread still registered")
	}
}

func TestRemoveGroup(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	sub := s.NewGroup(g, "sub")
	th := s.NewThread(sub, nil)
	other := s.NewThread(nil, nil)
	if err := s.RemoveGroup(g); err != nil {
		t.Fatal(err)
	}
	s.Tick(tick)
	if th.UsageUs != 0 {
		t.Fatal("thread in removed group ran")
	}
	if other.UsageUs != tick {
		t.Fatalf("other usage = %d, want %d", other.UsageUs, tick)
	}
	if err := s.RemoveGroup(s.Root()); err == nil {
		t.Fatal("removing root succeeded")
	}
}

func TestGroupPath(t *testing.T) {
	s := New(1)
	a := s.NewGroup(nil, "a")
	b := s.NewGroup(a, "b")
	if got := b.Path(); got != "/a/b" {
		t.Fatalf("Path = %q, want /a/b", got)
	}
	if got := s.Root().Path(); got != "/" {
		t.Fatalf("root Path = %q", got)
	}
}

func TestSetQuotaValidation(t *testing.T) {
	s := New(1)
	g := s.NewGroup(nil, "g")
	if err := g.SetQuota(1000, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := g.SetQuota(-5, 100_000); err == nil {
		t.Fatal("negative quota accepted")
	}
	if err := g.SetQuota(NoQuota, 100_000); err != nil {
		t.Fatalf("NoQuota rejected: %v", err)
	}
}

func TestOnRunCallback(t *testing.T) {
	s := New(1)
	var ran int64
	th := s.NewThread(nil, nil)
	th.OnRun = func(now, ranUs, freqMHz int64) { ran += ranUs }
	allocs := s.Tick(tick)
	for _, a := range allocs {
		if a.Thread.OnRun != nil {
			a.Thread.OnRun(s.NowUs(), a.RanUs, 2400)
		}
	}
	if ran != tick {
		t.Fatalf("OnRun accumulated %d, want %d", ran, tick)
	}
}

// Property: for any random hierarchy and demands, the scheduler conserves
// time (Σ alloc ≤ cores·dt), bounds threads at one core, and never lets a
// group exceed its quota within a window.
func TestQuickConservationAndQuota(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := rng.Intn(8) + 1
		s := New(cores)
		var groups []*Group
		groups = append(groups, s.Root())
		var quotaGroups []*Group
		for i := 0; i < rng.Intn(6)+1; i++ {
			parent := groups[rng.Intn(len(groups))]
			g := s.NewGroup(parent, "g")
			if rng.Intn(2) == 0 {
				q := int64(rng.Intn(90_000) + 5_000)
				if err := g.SetQuota(q, 100_000); err != nil {
					return false
				}
				quotaGroups = append(quotaGroups, g)
			}
			groups = append(groups, g)
		}
		var threads []*Thread
		for i := 0; i < rng.Intn(12)+1; i++ {
			g := groups[rng.Intn(len(groups))]
			d := rng.Float64()
			threads = append(threads, s.NewThread(g, func(now, dt int64) float64 { return d }))
		}
		for it := 0; it < 30; it++ {
			allocs := s.Tick(tick)
			var total int64
			for _, a := range allocs {
				if a.RanUs < 0 || a.RanUs > tick {
					return false
				}
				total += a.RanUs
			}
			if total > tick*int64(cores) {
				return false
			}
		}
		// Quota check over whole run: usage ≤ quota × windows elapsed.
		windows := int64(30) * tick / 100_000
		for _, g := range quotaGroups {
			if g.UsageUs > g.QuotaUs*(windows+1) {
				return false
			}
		}
		_ = threads
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted shares are monotone — increasing a group's weight
// never decreases its allocation when everything is saturated.
func TestQuickWeightMonotonicity(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int64(w8%200) + 1
		run := func(weight int64) int64 {
			s := New(1)
			ga := s.NewGroup(nil, "a")
			ga.Weight = weight
			gb := s.NewGroup(nil, "b")
			gb.Weight = 100
			a := s.NewThread(ga, nil)
			s.NewThread(gb, nil)
			for i := 0; i < 20; i++ {
				s.Tick(tick)
			}
			return a.UsageUs
		}
		return run(w+10) >= run(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
