package sched

import (
	"fmt"
	"testing"
)

// benchTick measures one scheduler tick for a given topology.
func benchTick(b *testing.B, vms, vcpusPer int, quota int64) {
	b.Helper()
	s := New(64)
	for i := 0; i < vms; i++ {
		g := s.NewGroup(nil, fmt.Sprintf("vm%d", i))
		if quota > 0 {
			if err := g.SetQuota(quota, DefaultPeriodUs); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < vcpusPer; j++ {
			s.NewThread(g, nil)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(10_000)
	}
}

func BenchmarkTick10VMs(b *testing.B)  { benchTick(b, 10, 2, 0) }
func BenchmarkTick50VMs(b *testing.B)  { benchTick(b, 50, 4, 0) }
func BenchmarkTick200VMs(b *testing.B) { benchTick(b, 200, 4, 0) }

func BenchmarkTickQuota50VMs(b *testing.B) { benchTick(b, 50, 4, 25_000) }

func BenchmarkWaterfill(b *testing.B) {
	s := New(64)
	ents := make([]*entity, 128)
	for i := range ents {
		ents[i] = &entity{weight: int64(i%7)*50 + 50, need: int64(i%13)*1000 + 500}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range ents {
			e.got = 0
		}
		s.waterfill(ents, 200_000)
	}
}

func BenchmarkDeepHierarchy(b *testing.B) {
	s := New(16)
	g := s.Root()
	for d := 0; d < 8; d++ {
		g = s.NewGroup(g, fmt.Sprintf("d%d", d))
		s.NewThread(g, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(10_000)
	}
}
