package placement

import "sort"

// Index is a free-capacity index over a set of integer node IDs: a
// sorted bucket list keyed on remaining capacity (in the policy's unit),
// with each bucket holding its node IDs in ascending order. It turns the
// linear BestFit/WorstFit scans into an O(log N) binary search plus a
// short candidate walk, while preserving the scans' results bit for bit:
//
//   - BestFit picks the feasible node with the smallest remaining
//     capacity, ties broken by the lowest node ID — exactly the node an
//     ascending (key, ID) walk reaches first.
//   - WorstFit picks the largest remaining capacity, same tie-break —
//     the first node of a descending-key walk.
//
// The capacity keys are the same float64 values the linear scans
// compare. For the demands and capacities in range here (integer
// vCPU·MHz products and vCPU counts well below 2^53, capacities a
// single rounded product), key arithmetic is exact, so the pruning
// bound "key < demand ⇒ the node cannot fit" is not merely
// conservative but exact; callers still re-check full feasibility
// (memory, per-vCPU frequency caps) through the ok callback.
//
// The index is not safe for concurrent use.
type Index struct {
	keys    []float64 // ascending, unique
	buckets [][]int   // buckets[i]: IDs with key keys[i], ascending
	nodeKey []float64 // current key per ID
	present []bool
	count   int
	spare   [][]int // empty bucket freelist, reused to avoid allocation
}

// NewIndex creates an index accepting IDs in [0, n).
func NewIndex(n int) *Index {
	return &Index{
		nodeKey: make([]float64, n),
		present: make([]bool, n),
	}
}

// Len returns the number of indexed IDs.
func (ix *Index) Len() int { return ix.count }

// Contains reports whether id is indexed.
func (ix *Index) Contains(id int) bool {
	return id >= 0 && id < len(ix.present) && ix.present[id]
}

// Key returns the key id was inserted with (0 if absent).
func (ix *Index) Key(id int) float64 {
	if !ix.Contains(id) {
		return 0
	}
	return ix.nodeKey[id]
}

// Reset empties the index, keeping its storage — the full-rebuild path
// for restores and policy changes: Reset, then re-Insert every live ID.
func (ix *Index) Reset() {
	for i, b := range ix.buckets {
		ix.spare = append(ix.spare, b[:0])
		ix.buckets[i] = nil
	}
	ix.keys = ix.keys[:0]
	ix.buckets = ix.buckets[:0]
	for i := range ix.present {
		ix.present[i] = false
	}
	ix.count = 0
}

func (ix *Index) grow(id int) {
	for len(ix.present) <= id {
		ix.present = append(ix.present, false)
		ix.nodeKey = append(ix.nodeKey, 0)
	}
}

// Insert adds id with the given key. Inserting a present ID panics;
// use Update.
func (ix *Index) Insert(id int, key float64) {
	if id < 0 {
		panic("placement: negative index ID")
	}
	ix.grow(id)
	if ix.present[id] {
		panic("placement: ID already indexed")
	}
	ix.present[id] = true
	ix.nodeKey[id] = key
	ix.count++
	i := sort.SearchFloat64s(ix.keys, key)
	if i < len(ix.keys) && ix.keys[i] == key {
		// Insert into the bucket keeping ascending ID order.
		b := ix.buckets[i]
		j := sort.SearchInts(b, id)
		b = append(b, 0)
		copy(b[j+1:], b[j:])
		b[j] = id
		ix.buckets[i] = b
		return
	}
	var b []int
	if n := len(ix.spare); n > 0 {
		b = ix.spare[n-1]
		ix.spare = ix.spare[:n-1]
	}
	b = append(b, id)
	ix.keys = append(ix.keys, 0)
	copy(ix.keys[i+1:], ix.keys[i:])
	ix.keys[i] = key
	ix.buckets = append(ix.buckets, nil)
	copy(ix.buckets[i+1:], ix.buckets[i:])
	ix.buckets[i] = b
}

// Remove deletes id. Removing an absent ID is a no-op.
func (ix *Index) Remove(id int) {
	if !ix.Contains(id) {
		return
	}
	key := ix.nodeKey[id]
	i := sort.SearchFloat64s(ix.keys, key)
	b := ix.buckets[i]
	j := sort.SearchInts(b, id)
	b = append(b[:j], b[j+1:]...)
	if len(b) == 0 {
		ix.spare = append(ix.spare, b)
		ix.keys = append(ix.keys[:i], ix.keys[i+1:]...)
		ix.buckets = append(ix.buckets[:i], ix.buckets[i+1:]...)
	} else {
		ix.buckets[i] = b
	}
	ix.present[id] = false
	ix.count--
}

// Update moves id to a new key (equivalent to Remove + Insert).
func (ix *Index) Update(id int, key float64) {
	if ix.Contains(id) {
		if ix.nodeKey[id] == key {
			return
		}
		ix.Remove(id)
	}
	ix.Insert(id, key)
}

// Best returns the lowest ID among the indexed nodes with the smallest
// key ≥ min that satisfies ok, or -1 — the BestFit choice. ok is
// consulted in (key ascending, ID ascending) order.
func (ix *Index) Best(min float64, ok func(id int) bool) int {
	for i := sort.SearchFloat64s(ix.keys, min); i < len(ix.keys); i++ {
		for _, id := range ix.buckets[i] {
			if ok(id) {
				return id
			}
		}
	}
	return -1
}

// Worst returns the lowest ID among the indexed nodes with the largest
// key ≥ min that satisfies ok, or -1 — the WorstFit choice. ok is
// consulted in (key descending, ID ascending) order.
func (ix *Index) Worst(min float64, ok func(id int) bool) int {
	lo := sort.SearchFloat64s(ix.keys, min)
	for i := len(ix.keys) - 1; i >= lo; i-- {
		for _, id := range ix.buckets[i] {
			if ok(id) {
				return id
			}
		}
	}
	return -1
}
