// Package placement implements the VM placement algorithms of §III-C and
// §IV-C of the paper: FirstFit/BestFit/WorstFit packers under three CPU
// constraint modes — the classic vCPU-count constraint, the same with a
// consolidation factor, and the paper's virtual-frequency ("core
// splitting") constraint of Eq. 7:
//
//	Σ_{i∈I_n} k_i^vCPU · F_i  ≤  k_n^CPU · F_n^MAX
//
// An optional stricter per-core splitting mode additionally requires an
// integral assignment of vCPUs to cores such that each core's virtual
// frequencies sum below F_MAX.
package placement

import (
	"fmt"
	"sort"
)

// NodeSpec describes one physical machine available to the placer.
type NodeSpec struct {
	Name       string
	Cores      int
	MaxFreqMHz int64
	MemoryGB   int
	IdleWatts  float64
	MaxWatts   float64
}

// Validate checks the node spec.
func (n NodeSpec) Validate() error {
	if n.Cores <= 0 || n.MaxFreqMHz <= 0 || n.MemoryGB <= 0 {
		return fmt.Errorf("placement: invalid node %q", n.Name)
	}
	if n.IdleWatts < 0 || n.MaxWatts < n.IdleWatts {
		return fmt.Errorf("placement: invalid power range for %q", n.Name)
	}
	return nil
}

// VMSpec describes one VM to place.
type VMSpec struct {
	Name     string
	Template string
	VCPUs    int
	FreqMHz  int64
	MemoryGB int
}

// Validate checks the VM spec.
func (v VMSpec) Validate() error {
	if v.VCPUs <= 0 || v.FreqMHz <= 0 || v.MemoryGB < 0 {
		return fmt.Errorf("placement: invalid VM %q", v.Name)
	}
	return nil
}

// ConstraintMode selects the CPU feasibility rule.
type ConstraintMode int

const (
	// CoreCount is the classic rule: Σ vCPUs ≤ cores × factor.
	CoreCount ConstraintMode = iota
	// VirtualFrequency is Eq. 7: Σ vCPU·F ≤ cores·F_MAX × factor.
	VirtualFrequency
)

// String implements fmt.Stringer.
func (m ConstraintMode) String() string {
	switch m {
	case CoreCount:
		return "core-count"
	case VirtualFrequency:
		return "virtual-frequency"
	}
	return fmt.Sprintf("ConstraintMode(%d)", int(m))
}

// Policy configures a placement run.
type Policy struct {
	Mode ConstraintMode
	// Factor is the consolidation factor applied to the CPU capacity
	// (1.0 = none; the paper compares against 1.8).
	Factor float64
	// Memory enforces node memory capacity.
	Memory bool
	// CoreSplitting, with VirtualFrequency, additionally requires an
	// integral vCPU→core assignment where each core's Σ F ≤ F_MAX.
	CoreSplitting bool
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Factor <= 0 {
		return fmt.Errorf("placement: factor must be positive")
	}
	if p.CoreSplitting && p.Mode != VirtualFrequency {
		return fmt.Errorf("placement: core splitting requires the virtual-frequency mode")
	}
	return nil
}

// Node is a bin during placement.
type Node struct {
	Spec NodeSpec
	VMs  []VMSpec

	usedVCPUs int
	usedFreq  int64 // Σ vCPU·F in MHz
	usedMemGB int
	coreFreq  []int64 // per-core Σ F when core splitting
}

// UsedVCPUs returns the number of placed vCPUs.
func (n *Node) UsedVCPUs() int { return n.usedVCPUs }

// UsedFreqMHz returns Σ vCPU·F of the placed VMs.
func (n *Node) UsedFreqMHz() int64 { return n.usedFreq }

// UsedMemoryGB returns the memory placed.
func (n *Node) UsedMemoryGB() int { return n.usedMemGB }

// capacity returns the CPU capacity in the policy's unit.
func (n *Node) capacity(p Policy) float64 {
	switch p.Mode {
	case CoreCount:
		return float64(n.Spec.Cores) * p.Factor
	default:
		return float64(n.Spec.Cores) * float64(n.Spec.MaxFreqMHz) * p.Factor
	}
}

// used returns the consumed CPU capacity in the policy's unit.
func (n *Node) used(p Policy) float64 {
	switch p.Mode {
	case CoreCount:
		return float64(n.usedVCPUs)
	default:
		return float64(n.usedFreq)
	}
}

// Remaining returns the free CPU capacity in the policy's unit.
func (n *Node) Remaining(p Policy) float64 { return n.capacity(p) - n.used(p) }

// Load returns the CPU load fraction under the policy.
func (n *Node) Load(p Policy) float64 {
	c := n.capacity(p)
	if c == 0 {
		return 0
	}
	return n.used(p) / c
}

// Fits reports whether v can be placed on n under p.
func (n *Node) Fits(v VMSpec, p Policy) bool {
	switch p.Mode {
	case CoreCount:
		if float64(n.usedVCPUs+v.VCPUs) > float64(n.Spec.Cores)*p.Factor {
			return false
		}
	case VirtualFrequency:
		add := int64(v.VCPUs) * v.FreqMHz
		if float64(n.usedFreq+add) > float64(n.Spec.Cores)*float64(n.Spec.MaxFreqMHz)*p.Factor {
			return false
		}
		if v.FreqMHz > n.Spec.MaxFreqMHz {
			return false // a vCPU cannot exceed the node's F_MAX
		}
		if p.CoreSplitting && !n.coreSplitFits(v) {
			return false
		}
	}
	if p.Memory && n.usedMemGB+v.MemoryGB > n.Spec.MemoryGB {
		return false
	}
	return true
}

// coreSplitFits checks integral per-core feasibility with first-fit over
// cores (worst-fit order: emptiest core first, which keeps headroom
// spread for later VMs).
func (n *Node) coreSplitFits(v VMSpec) bool {
	if n.coreFreq == nil {
		n.coreFreq = make([]int64, n.Spec.Cores)
	}
	cores := append([]int64(nil), n.coreFreq...)
	for placed := 0; placed < v.VCPUs; placed++ {
		best := -1
		for c := range cores {
			if cores[c]+v.FreqMHz <= n.Spec.MaxFreqMHz {
				if best == -1 || cores[c] < cores[best] {
					best = c
				}
			}
		}
		if best == -1 {
			return false
		}
		cores[best] += v.FreqMHz
	}
	return true
}

// Place adds v to n. Callers must check Fits first.
func (n *Node) Place(v VMSpec, p Policy) {
	n.VMs = append(n.VMs, v)
	n.usedVCPUs += v.VCPUs
	n.usedFreq += int64(v.VCPUs) * v.FreqMHz
	n.usedMemGB += v.MemoryGB
	if p.CoreSplitting {
		if n.coreFreq == nil {
			n.coreFreq = make([]int64, n.Spec.Cores)
		}
		for placed := 0; placed < v.VCPUs; placed++ {
			best := -1
			for c := range n.coreFreq {
				if n.coreFreq[c]+v.FreqMHz <= n.Spec.MaxFreqMHz {
					if best == -1 || n.coreFreq[c] < n.coreFreq[best] {
						best = c
					}
				}
			}
			if best == -1 {
				panic("placement: Place called without Fits")
			}
			n.coreFreq[best] += v.FreqMHz
		}
	}
}

// Result is the outcome of a placement run.
type Result struct {
	Policy   Policy
	Nodes    []*Node
	Unplaced []VMSpec
}

// UsedNodes counts nodes hosting at least one VM.
func (r *Result) UsedNodes() int {
	n := 0
	for _, node := range r.Nodes {
		if len(node.VMs) > 0 {
			n++
		}
	}
	return n
}

// MaxPerNode returns, over nodes of the named spec, the largest number of
// VMs of the given template — the statistic the paper quotes ("28 large
// VMs on a chiclet").
func (r *Result) MaxPerNode(nodeName, template string) int {
	max := 0
	for _, node := range r.Nodes {
		if node.Spec.Name != nodeName {
			continue
		}
		count := 0
		for _, v := range node.VMs {
			if v.Template == template {
				count++
			}
		}
		if count > max {
			max = count
		}
	}
	return max
}

// IdlePowerSavingsWatts returns the idle power of the nodes left empty —
// the energy the provider can save by shutting them down.
func (r *Result) IdlePowerSavingsWatts() float64 {
	var w float64
	for _, node := range r.Nodes {
		if len(node.VMs) == 0 {
			w += node.Spec.IdleWatts
		}
	}
	return w
}

// ActivePowerWatts estimates the power of the used nodes with the linear
// model at their current CPU load.
func (r *Result) ActivePowerWatts() float64 {
	var w float64
	for _, node := range r.Nodes {
		if len(node.VMs) == 0 {
			continue
		}
		load := node.Load(r.Policy)
		if load > 1 {
			load = 1
		}
		w += node.Spec.IdleWatts + (node.Spec.MaxWatts-node.Spec.IdleWatts)*load
	}
	return w
}

// Algorithm selects the packing heuristic.
type Algorithm int

const (
	FirstFit Algorithm = iota
	BestFit
	WorstFit
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Place runs the chosen algorithm: VMs are processed in the given order;
// for each VM the algorithm picks a feasible node — the first (FirstFit),
// the fullest (BestFit) or the emptiest (WorstFit).
func Place(alg Algorithm, nodes []NodeSpec, vms []VMSpec, p Policy) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Policy: p, Nodes: make([]*Node, len(nodes))}
	for i, spec := range nodes {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		res.Nodes[i] = &Node{Spec: spec}
	}
	for _, v := range vms {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		chosen := -1
		for i, node := range res.Nodes {
			if !node.Fits(v, p) {
				continue
			}
			switch alg {
			case FirstFit:
				chosen = i
			case BestFit:
				if chosen == -1 || node.Remaining(p) < res.Nodes[chosen].Remaining(p) {
					chosen = i
				}
				continue
			case WorstFit:
				if chosen == -1 || node.Remaining(p) > res.Nodes[chosen].Remaining(p) {
					chosen = i
				}
				continue
			default:
				return nil, fmt.Errorf("placement: unknown algorithm %v", alg)
			}
			break // FirstFit stops at the first feasible node
		}
		if chosen == -1 {
			res.Unplaced = append(res.Unplaced, v)
			continue
		}
		res.Nodes[chosen].Place(v, p)
	}
	return res, nil
}

// SortDecreasing orders VMs by descending CPU demand (vCPU·F, then vCPU
// count), the usual preprocessing for fit-decreasing packers. The sort is
// stable so equal VMs keep their input order.
func SortDecreasing(vms []VMSpec) {
	sort.SliceStable(vms, func(i, j int) bool {
		di := int64(vms[i].VCPUs) * vms[i].FreqMHz
		dj := int64(vms[j].VCPUs) * vms[j].FreqMHz
		if di != dj {
			return di > dj
		}
		return vms[i].VCPUs > vms[j].VCPUs
	})
}
