package placement

import (
	"fmt"
	"testing"
)

func benchWorkload(n int) []VMSpec {
	tpls := []VMSpec{small(), medium(), large()}
	out := make([]VMSpec, n)
	for i := range out {
		out[i] = tpls[i%3]
		out[i].Name = fmt.Sprint(i)
	}
	return out
}

func benchCluster(n int) []NodeSpec {
	out := make([]NodeSpec, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = chetemi()
		} else {
			out[i] = chiclet()
		}
	}
	return out
}

func benchPlace(b *testing.B, alg Algorithm, mode ConstraintMode, vms, nodes int) {
	b.Helper()
	p := Policy{Mode: mode, Factor: 1, Memory: true}
	w := benchWorkload(vms)
	c := benchCluster(nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(alg, c, w, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestFitEq7Small(b *testing.B)  { benchPlace(b, BestFit, VirtualFrequency, 100, 10) }
func BenchmarkBestFitEq7Large(b *testing.B)  { benchPlace(b, BestFit, VirtualFrequency, 2000, 100) }
func BenchmarkFirstFitEq7Large(b *testing.B) { benchPlace(b, FirstFit, VirtualFrequency, 2000, 100) }
func BenchmarkBestFitCoreCount(b *testing.B) { benchPlace(b, BestFit, CoreCount, 2000, 100) }

func BenchmarkCoreSplitting(b *testing.B) {
	p := Policy{Mode: VirtualFrequency, Factor: 1, Memory: true, CoreSplitting: true}
	w := benchWorkload(400)
	c := benchCluster(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(BestFit, c, w, p); err != nil {
			b.Fatal(err)
		}
	}
}
