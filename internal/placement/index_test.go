package placement

import (
	"math/rand"
	"testing"
)

// refIndex is the obviously-correct reference: a flat map scanned
// linearly with the same (key, ID) ordering contract as Index.
type refIndex map[int]float64

func (r refIndex) best(min float64, ok func(int) bool) int {
	chosen := -1
	for id, key := range r {
		if key < min || !ok(id) {
			continue
		}
		if chosen == -1 || key < r[chosen] || (key == r[chosen] && id < chosen) {
			chosen = id
		}
	}
	return chosen
}

func (r refIndex) worst(min float64, ok func(int) bool) int {
	chosen := -1
	for id, key := range r {
		if key < min || !ok(id) {
			continue
		}
		if chosen == -1 || key > r[chosen] || (key == r[chosen] && id < chosen) {
			chosen = id
		}
	}
	return chosen
}

func TestIndexBasics(t *testing.T) {
	ix := NewIndex(4)
	ix.Insert(2, 10)
	ix.Insert(0, 10)
	ix.Insert(1, 5)
	ix.Insert(3, 20)
	all := func(int) bool { return true }
	if got := ix.Best(0, all); got != 1 {
		t.Fatalf("Best(0) = %d, want 1 (smallest key)", got)
	}
	if got := ix.Best(6, all); got != 0 {
		t.Fatalf("Best(6) = %d, want 0 (tie broken by lowest ID)", got)
	}
	if got := ix.Worst(0, all); got != 3 {
		t.Fatalf("Worst(0) = %d, want 3 (largest key)", got)
	}
	if got := ix.Best(21, all); got != -1 {
		t.Fatalf("Best(21) = %d, want -1 (nothing fits)", got)
	}
	if got := ix.Best(0, func(id int) bool { return id != 1 }); got != 0 {
		t.Fatalf("Best with 1 infeasible = %d, want 0", got)
	}
	ix.Remove(1)
	if ix.Contains(1) || ix.Len() != 3 {
		t.Fatalf("after Remove: contains=%v len=%d", ix.Contains(1), ix.Len())
	}
	ix.Update(3, 1)
	if got := ix.Best(0, all); got != 3 {
		t.Fatalf("after Update: Best = %d, want 3", got)
	}
	ix.Reset()
	if ix.Len() != 0 || ix.Best(0, all) != -1 {
		t.Fatal("Reset did not empty the index")
	}
}

func TestIndexRemoveAbsentIsNoop(t *testing.T) {
	ix := NewIndex(2)
	ix.Remove(0)
	ix.Remove(7) // beyond capacity
	ix.Insert(0, 1)
	ix.Remove(0)
	ix.Remove(0)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ix.Len())
	}
}

func TestIndexInsertPresentPanics(t *testing.T) {
	ix := NewIndex(1)
	ix.Insert(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Insert did not panic")
		}
	}()
	ix.Insert(0, 2)
}

// TestIndexAgainstReference drives random op sequences against the
// index and the linear reference and requires identical query results
// throughout.
func TestIndexAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex(32)
		ref := refIndex{}
		for op := 0; op < 500; op++ {
			id := rng.Intn(32)
			key := float64(rng.Intn(40)) / 4
			switch rng.Intn(5) {
			case 0:
				if _, ok := ref[id]; !ok {
					ix.Insert(id, key)
					ref[id] = key
				}
			case 1:
				ix.Remove(id)
				delete(ref, id)
			case 2:
				ix.Update(id, key)
				ref[id] = key
			default:
				min := float64(rng.Intn(40)) / 4
				mod := rng.Intn(3) + 1
				ok := func(id int) bool { return id%mod != 0 || mod == 1 }
				if got, want := ix.Best(min, ok), ref.best(min, ok); got != want {
					t.Fatalf("seed %d op %d: Best(%v) = %d, want %d", seed, op, min, got, want)
				}
				if got, want := ix.Worst(min, ok), ref.worst(min, ok); got != want {
					t.Fatalf("seed %d op %d: Worst(%v) = %d, want %d", seed, op, min, got, want)
				}
			}
			if ix.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, ix.Len(), len(ref))
			}
		}
	}
}

// FuzzIndexTwin feeds byte-driven op sequences to the index and the
// linear reference; any divergence in membership or BestFit/WorstFit
// choice is a crash.
func FuzzIndexTwin(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x43, 0x52})
	f.Add([]byte{0x00, 0x10, 0x30, 0x20, 0x31, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix := NewIndex(16)
		ref := refIndex{}
		for i := 0; i+1 < len(data); i += 2 {
			id := int(data[i] % 16)
			key := float64(data[i+1]) / 8
			switch data[i] >> 4 & 3 {
			case 0:
				if _, ok := ref[id]; !ok {
					ix.Insert(id, key)
					ref[id] = key
				}
			case 1:
				ix.Remove(id)
				delete(ref, id)
			case 2:
				ix.Update(id, key)
				ref[id] = key
			case 3:
				all := func(int) bool { return true }
				if got, want := ix.Best(key, all), ref.best(key, all); got != want {
					t.Fatalf("Best(%v) = %d, want %d", key, got, want)
				}
				if got, want := ix.Worst(key, all), ref.worst(key, all); got != want {
					t.Fatalf("Worst(%v) = %d, want %d", key, got, want)
				}
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", ix.Len(), len(ref))
		}
		for id := 0; id < 16; id++ {
			if _, ok := ref[id]; ok != ix.Contains(id) {
				t.Fatalf("membership of %d diverged", id)
			}
		}
	})
}
