package placement

import (
	"math/rand"
	"testing"
)

// TestIndexRebuildMatchesIncremental pins the rebuild fallback: an index
// reconstructed with Reset + re-Insert (the restore/policy-change path)
// must answer Best and Worst bit-identically to the incrementally
// maintained twin, whatever order the rebuild re-inserts the live IDs
// in. A drift here would make a restored cluster place VMs differently
// from one that never crashed.
func TestIndexRebuildMatchesIncremental(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(11))
	inc := NewIndex(n)
	keys := make([]float64, n)
	live := make([]bool, n)

	// Keys are the integer-valued capacities the real policies produce
	// (vCPU·MHz products), drawn from a small set to force bucket
	// collisions and the ascending-ID tie-break.
	draw := func() float64 { return float64(rng.Intn(12)) * 100 }

	rebuild := func(ix *Index) {
		ix.Reset()
		order := rng.Perm(n)
		for _, id := range order {
			if live[id] {
				ix.Insert(id, keys[id])
			}
		}
	}

	compare := func(step int) {
		reb := NewIndex(n)
		rebuild(reb)
		if reb.Len() != inc.Len() {
			t.Fatalf("step %d: rebuilt Len = %d, incremental %d", step, reb.Len(), inc.Len())
		}
		preds := []struct {
			name string
			ok   func(id int) bool
		}{
			{"all", func(id int) bool { return true }},
			{"even", func(id int) bool { return id%2 == 0 }},
			{"none", func(id int) bool { return false }},
		}
		for _, min := range []float64{0, 50, 100, 350, 600, 1100, 2000} {
			for _, p := range preds {
				if a, b := inc.Best(min, p.ok), reb.Best(min, p.ok); a != b {
					t.Fatalf("step %d: Best(%g, %s) incremental=%d rebuilt=%d",
						step, min, p.name, a, b)
				}
				if a, b := inc.Worst(min, p.ok), reb.Worst(min, p.ok); a != b {
					t.Fatalf("step %d: Worst(%g, %s) incremental=%d rebuilt=%d",
						step, min, p.name, a, b)
				}
			}
		}
		for id := 0; id < n; id++ {
			if inc.Contains(id) != reb.Contains(id) || inc.Key(id) != reb.Key(id) {
				t.Fatalf("step %d: ID %d diverged: incremental (%v, %g) rebuilt (%v, %g)",
					step, id, inc.Contains(id), inc.Key(id), reb.Contains(id), reb.Key(id))
			}
		}
	}

	for step := 0; step < 600; step++ {
		id := rng.Intn(n)
		switch op := rng.Intn(3); {
		case op == 0 && !live[id]: // insert
			keys[id] = draw()
			live[id] = true
			inc.Insert(id, keys[id])
		case op == 1 && live[id]: // remove
			live[id] = false
			inc.Remove(id)
		default: // update (inserts when absent, like the cluster's path)
			keys[id] = draw()
			live[id] = true
			inc.Update(id, keys[id])
		}
		if step%37 == 0 || step == 599 {
			compare(step)
		}
	}
}
