package placement

import (
	"fmt"
	"testing"
	"testing/quick"
)

func chetemi() NodeSpec {
	return NodeSpec{Name: "chetemi", Cores: 40, MaxFreqMHz: 2400, MemoryGB: 256,
		IdleWatts: 97, MaxWatts: 220}
}

func chiclet() NodeSpec {
	return NodeSpec{Name: "chiclet", Cores: 64, MaxFreqMHz: 2400, MemoryGB: 128,
		IdleWatts: 110, MaxWatts: 190}
}

func small() VMSpec {
	return VMSpec{Template: "small", VCPUs: 2, FreqMHz: 500, MemoryGB: 2}
}
func medium() VMSpec {
	return VMSpec{Template: "medium", VCPUs: 4, FreqMHz: 1200, MemoryGB: 4}
}
func large() VMSpec {
	return VMSpec{Template: "large", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8}
}

func repeatVMs(v VMSpec, n int) []VMSpec {
	out := make([]VMSpec, n)
	for i := range out {
		out[i] = v
		out[i].Name = fmt.Sprintf("%s-%d", v.Template, i)
	}
	return out
}

func TestSpecValidation(t *testing.T) {
	bad := chetemi()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid node accepted")
	}
	badVM := small()
	badVM.FreqMHz = 0
	if err := badVM.Validate(); err == nil {
		t.Fatal("invalid VM accepted")
	}
	if err := (Policy{Factor: 0}).Validate(); err == nil {
		t.Fatal("zero factor accepted")
	}
	if err := (Policy{Mode: CoreCount, Factor: 1, CoreSplitting: true}).Validate(); err == nil {
		t.Fatal("core splitting without virtual-frequency mode accepted")
	}
}

func TestCoreCountConstraint(t *testing.T) {
	p := Policy{Mode: CoreCount, Factor: 1}
	n := &Node{Spec: NodeSpec{Name: "n", Cores: 4, MaxFreqMHz: 2400, MemoryGB: 64}}
	if !n.Fits(large(), p) {
		t.Fatal("4 vCPUs on empty 4-core node rejected")
	}
	n.Place(large(), p)
	if n.Fits(small(), p) {
		t.Fatal("5th/6th vCPU accepted with factor 1")
	}
	// Factor 1.5 → 6 vCPUs allowed.
	p15 := Policy{Mode: CoreCount, Factor: 1.5}
	if !n.Fits(small(), p15) {
		t.Fatal("consolidation factor not honoured")
	}
}

func TestVirtualFrequencyConstraintEq7(t *testing.T) {
	p := Policy{Mode: VirtualFrequency, Factor: 1}
	// 1 core at 3000 MHz hosts 3 vCPUs at 1000 MHz (the paper's §III-C
	// example: a 3 GHz core hosts 3 vCPUs guaranteed 1 GHz).
	n := &Node{Spec: NodeSpec{Name: "n", Cores: 1, MaxFreqMHz: 3000, MemoryGB: 64}}
	v := VMSpec{Template: "x", VCPUs: 1, FreqMHz: 1000, MemoryGB: 1}
	for i := 0; i < 3; i++ {
		if !n.Fits(v, p) {
			t.Fatalf("vCPU %d rejected", i)
		}
		n.Place(v, p)
	}
	if n.Fits(v, p) {
		t.Fatal("4th 1000 MHz vCPU accepted on a 3000 MHz core")
	}
	if n.UsedVCPUs() != 3 || n.UsedFreqMHz() != 3000 {
		t.Fatalf("usage accounting wrong: %d vCPUs, %d MHz", n.UsedVCPUs(), n.UsedFreqMHz())
	}
}

func TestVCPUFrequencyAboveNodeRejected(t *testing.T) {
	p := Policy{Mode: VirtualFrequency, Factor: 2}
	n := &Node{Spec: NodeSpec{Name: "n", Cores: 8, MaxFreqMHz: 2000, MemoryGB: 64}}
	v := VMSpec{Template: "x", VCPUs: 1, FreqMHz: 2500, MemoryGB: 1}
	if n.Fits(v, p) {
		t.Fatal("vCPU faster than the node accepted")
	}
}

func TestMemoryConstraint(t *testing.T) {
	p := Policy{Mode: VirtualFrequency, Factor: 1, Memory: true}
	n := &Node{Spec: NodeSpec{Name: "n", Cores: 64, MaxFreqMHz: 2400, MemoryGB: 16}}
	if !n.Fits(large(), p) { // 8 GB
		t.Fatal("first large rejected")
	}
	n.Place(large(), p)
	n.Place(large(), p) // 16 GB used
	if n.Fits(small(), p) {
		t.Fatal("memory overcommit accepted")
	}
	// Without memory enforcement it fits.
	pNoMem := Policy{Mode: VirtualFrequency, Factor: 1}
	if !n.Fits(small(), pNoMem) {
		t.Fatal("CPU-feasible VM rejected without memory enforcement")
	}
}

func TestCoreSplittingStricterThanEq7(t *testing.T) {
	node := NodeSpec{Name: "n", Cores: 2, MaxFreqMHz: 2400, MemoryGB: 64}
	eq7 := Policy{Mode: VirtualFrequency, Factor: 1}
	split := Policy{Mode: VirtualFrequency, Factor: 1, CoreSplitting: true}
	a := VMSpec{Template: "a", VCPUs: 1, FreqMHz: 1800, MemoryGB: 1}
	c := VMSpec{Template: "c", VCPUs: 1, FreqMHz: 700, MemoryGB: 1}
	for _, p := range []Policy{eq7, split} {
		n := &Node{Spec: node}
		n.Place(a, p)
		n.Place(a, p) // both cores now hold 1800
		got := n.Fits(c, p)
		want := !p.CoreSplitting // Eq. 7 has 1200 MHz slack; no core has 700
		if got != want {
			t.Fatalf("CoreSplitting=%v: Fits=%v, want %v", p.CoreSplitting, got, want)
		}
	}
}

func TestFirstFitOrder(t *testing.T) {
	nodes := []NodeSpec{chetemi(), chiclet()}
	p := Policy{Mode: CoreCount, Factor: 1}
	res, err := Place(FirstFit, nodes, repeatVMs(small(), 3), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes[0].VMs) != 3 || len(res.Nodes[1].VMs) != 0 {
		t.Fatal("FirstFit did not fill the first node")
	}
}

func TestBestFitPrefersFullest(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "a", Cores: 10, MaxFreqMHz: 2400, MemoryGB: 64},
		{Name: "b", Cores: 10, MaxFreqMHz: 2400, MemoryGB: 64},
	}
	p := Policy{Mode: CoreCount, Factor: 1}
	// Pre-load node b by placing 4 vCPUs there via an initial run.
	vms := []VMSpec{
		{Name: "seed", Template: "l", VCPUs: 8, FreqMHz: 500, MemoryGB: 1},
		{Name: "next", Template: "s", VCPUs: 2, FreqMHz: 500, MemoryGB: 1},
	}
	res, err := Place(BestFit, nodes, vms, p)
	if err != nil {
		t.Fatal(err)
	}
	// Both land on node a: after the seed, a (2 free) is fuller than b.
	if len(res.Nodes[0].VMs) != 2 {
		t.Fatalf("BestFit spread VMs: %d on a", len(res.Nodes[0].VMs))
	}
}

func TestWorstFitSpreads(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "a", Cores: 10, MaxFreqMHz: 2400, MemoryGB: 64},
		{Name: "b", Cores: 10, MaxFreqMHz: 2400, MemoryGB: 64},
	}
	p := Policy{Mode: CoreCount, Factor: 1}
	res, err := Place(WorstFit, nodes, repeatVMs(small(), 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes[0].VMs) != 1 || len(res.Nodes[1].VMs) != 1 {
		t.Fatal("WorstFit did not spread")
	}
}

func TestUnplacedReported(t *testing.T) {
	nodes := []NodeSpec{{Name: "tiny", Cores: 1, MaxFreqMHz: 2400, MemoryGB: 1}}
	p := Policy{Mode: CoreCount, Factor: 1}
	res, err := Place(BestFit, nodes, repeatVMs(large(), 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 2 || res.UsedNodes() != 0 {
		t.Fatalf("unplaced = %d, used = %d", len(res.Unplaced), res.UsedNodes())
	}
}

func TestSortDecreasing(t *testing.T) {
	vms := []VMSpec{small(), large(), medium()}
	SortDecreasing(vms)
	if vms[0].Template != "large" || vms[1].Template != "medium" || vms[2].Template != "small" {
		t.Fatalf("order = %s %s %s", vms[0].Template, vms[1].Template, vms[2].Template)
	}
}

// paperCluster builds the §IV-C scenario: 12 chetemi + 10 chiclet, 250
// small + 50 medium + 100 large.
func paperCluster() ([]NodeSpec, []VMSpec) {
	var nodes []NodeSpec
	for i := 0; i < 12; i++ {
		nodes = append(nodes, chetemi())
	}
	for i := 0; i < 10; i++ {
		nodes = append(nodes, chiclet())
	}
	var vms []VMSpec
	vms = append(vms, repeatVMs(small(), 250)...)
	vms = append(vms, repeatVMs(medium(), 50)...)
	vms = append(vms, repeatVMs(large(), 100)...)
	return nodes, vms
}

// The paper's placement claims, §IV-C: the classic constraint needs all 22
// nodes; Eq. 7 packs the same workload on roughly a third fewer nodes.
func TestPaperPlacementScenario(t *testing.T) {
	nodes, vms := paperCluster()

	classic, err := Place(BestFit, nodes, vms, Policy{Mode: CoreCount, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(classic.Unplaced) != 0 {
		t.Fatalf("classic: %d VMs unplaced", len(classic.Unplaced))
	}
	if got := classic.UsedNodes(); got != 22 {
		t.Fatalf("classic constraint used %d nodes, want 22", got)
	}

	freq, err := Place(BestFit, nodes, vms, Policy{Mode: VirtualFrequency, Factor: 1, Memory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(freq.Unplaced) != 0 {
		t.Fatalf("eq7: %d VMs unplaced", len(freq.Unplaced))
	}
	used := freq.UsedNodes()
	if used < 10 || used > 16 {
		t.Fatalf("Eq. 7 used %d nodes, want ~15 (paper) — between 10 and 16", used)
	}
	// Eq. 7 structurally bounds a chiclet to 21 large VMs
	// (⌊153600/7200⌋), the paper's anti-hotspot argument.
	if got := freq.MaxPerNode("chiclet", "large"); got > 21 {
		t.Fatalf("Eq. 7 chiclet hosts %d large VMs, structural max 21", got)
	}
}

// The consolidation-factor comparison: ×1.8 core-count reaches a similar
// node count but overloads chiclets with 28 large VMs (vs 21 under
// Eq. 7) — the paper's hotspot observation.
func TestPaperConsolidationFactorHotspots(t *testing.T) {
	nodes, vms := paperCluster()
	res, err := Place(BestFit, nodes, vms, Policy{Mode: CoreCount, Factor: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unplaced) != 0 {
		t.Fatalf("%d VMs unplaced", len(res.Unplaced))
	}
	if got := res.UsedNodes(); got != 15 {
		t.Fatalf("consolidation ×1.8 used %d nodes, want 15 (paper)", got)
	}
	if got := res.MaxPerNode("chiclet", "large"); got != 28 {
		t.Fatalf("max large per chiclet = %d, want 28 (paper)", got)
	}
	if got := res.MaxPerNode("chetemi", "small"); got != 36 {
		t.Fatalf("max small per chetemi = %d, want 36 (paper)", got)
	}
}

func TestEnergyAccounting(t *testing.T) {
	nodes := []NodeSpec{chetemi(), chetemi()}
	p := Policy{Mode: CoreCount, Factor: 1}
	res, err := Place(BestFit, nodes, repeatVMs(small(), 20), p) // fills node 1
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedNodes() != 1 {
		t.Fatalf("used %d nodes", res.UsedNodes())
	}
	if got := res.IdlePowerSavingsWatts(); got != 97 {
		t.Fatalf("idle savings = %g W, want 97", got)
	}
	active := res.ActivePowerWatts()
	if active != 220 { // full load
		t.Fatalf("active power = %g W, want 220", active)
	}
}

// Property: Place never oversubscribes a node under either constraint and
// never drops a VM silently (placed + unplaced = input).
func TestQuickPlacementInvariants(t *testing.T) {
	f := func(seed uint16, mode bool) bool {
		// Deterministic pseudo-random workload from the seed.
		n := int(seed%40) + 1
		var vms []VMSpec
		for i := 0; i < n; i++ {
			vms = append(vms, VMSpec{
				Name:     fmt.Sprint(i),
				Template: "t",
				VCPUs:    int(seed>>((i%3)*2))%4 + 1,
				FreqMHz:  int64(300 + (int(seed)*i)%2100),
				MemoryGB: i%8 + 1,
			})
		}
		nodes := []NodeSpec{chetemi(), chiclet(), chetemi()}
		p := Policy{Mode: CoreCount, Factor: 1, Memory: true}
		if mode {
			p.Mode = VirtualFrequency
		}
		res, err := Place(BestFit, nodes, vms, p)
		if err != nil {
			return false
		}
		placed := 0
		for _, node := range res.Nodes {
			placed += len(node.VMs)
			switch p.Mode {
			case CoreCount:
				if node.UsedVCPUs() > node.Spec.Cores {
					return false
				}
			case VirtualFrequency:
				if node.UsedFreqMHz() > int64(node.Spec.Cores)*node.Spec.MaxFreqMHz {
					return false
				}
			}
			if node.UsedMemoryGB() > node.Spec.MemoryGB {
				return false
			}
		}
		return placed+len(res.Unplaced) == len(vms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if CoreCount.String() != "core-count" || VirtualFrequency.String() != "virtual-frequency" {
		t.Fatal("constraint names wrong")
	}
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || WorstFit.String() != "worst-fit" {
		t.Fatal("algorithm names wrong")
	}
	if ConstraintMode(9).String() == "" || Algorithm(9).String() == "" {
		t.Fatal("unknown values render empty")
	}
}
