package trace

import "io"

// CommentWriter is an io.Writer that prefixes every line it forwards
// with a comment marker, so a metrics dump (or any multi-line report)
// can be appended to a CSV stream without corrupting the table: CSV
// consumers skip the prefixed lines, while the data survives in the
// same artefact. Partial lines across Write calls are handled — the
// prefix is inserted exactly once per output line.
type CommentWriter struct {
	w       io.Writer
	prefix  []byte
	midline bool
}

// NewCommentWriter wraps w, prefixing each forwarded line with prefix
// (e.g. "# ").
func NewCommentWriter(w io.Writer, prefix string) *CommentWriter {
	return &CommentWriter{w: w, prefix: []byte(prefix)}
}

// Write implements io.Writer. The returned count covers p only, as the
// io.Writer contract requires; prefix bytes are not counted.
func (c *CommentWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		if !c.midline {
			if _, err := c.w.Write(c.prefix); err != nil {
				return written, err
			}
			c.midline = true
		}
		end := len(p)
		for i, b := range p {
			if b == '\n' {
				end = i + 1
				break
			}
		}
		n, err := c.w.Write(p[:end])
		written += n
		if err != nil {
			return written, err
		}
		if p[end-1] == '\n' {
			c.midline = false
		}
		p = p[end:]
	}
	return written, nil
}
