// Package trace records time series during experiments and renders them
// as CSV tables or ASCII charts, regenerating the paper's figures in a
// terminal-friendly form.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a named sequence of (time, value) points.
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64

	sortScratch []float64 // reused by MedianRange/PercentileRange
}

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the average value (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// MeanRange averages values with Times in [from, to).
func (s *Series) MeanRange(from, to float64) float64 {
	var sum float64
	n := 0
	for i, t := range s.Times {
		if t >= from && t < to {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MedianRange returns the median of values with Times in [from, to) — a
// robust plateau estimator, insensitive to the periodic synchronisation
// notches of the benchmark workloads.
func (s *Series) MedianRange(from, to float64) float64 {
	vals := s.rangeSorted(from, to)
	if len(vals) == 0 {
		return 0
	}
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// rangeSorted copies the values with Times in [from, to) into the
// series' reused scratch slice and sorts them ascending, so the
// quantile estimators do not allocate a fresh copy per call.
func (s *Series) rangeSorted(from, to float64) []float64 {
	vals := s.sortScratch[:0]
	for i, t := range s.Times {
		if t >= from && t < to {
			vals = append(vals, s.Values[i])
		}
	}
	sort.Float64s(vals)
	s.sortScratch = vals
	return vals
}

// Sum returns the sum of all values — for counter-like series (faults,
// degraded vCPUs per period) this is the series' cumulative total.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Variance returns the population variance of the values.
func (s *Series) Variance() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.Values {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(s.Values))
}

// Max returns the maximum value (0 when empty).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum value (0 when empty).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// PercentileRange returns the p-quantile (0 ≤ p ≤ 1) of values with Times
// in [from, to), using nearest-rank interpolation.
func (s *Series) PercentileRange(p, from, to float64) float64 {
	vals := s.rangeSorted(from, to)
	if len(vals) == 0 {
		return 0
	}
	if p <= 0 {
		return vals[0]
	}
	if p >= 1 {
		return vals[len(vals)-1]
	}
	pos := p * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[lo]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// Smooth returns a new series with an exponential moving average of the
// values (alpha in (0, 1]; 1 = no smoothing).
func (s *Series) Smooth(alpha float64) *Series {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	out := &Series{Name: s.Name + ":ewma"}
	var acc float64
	for i, t := range s.Times {
		if i == 0 {
			acc = s.Values[0]
		} else {
			acc = acc*(1-alpha) + s.Values[i]*alpha
		}
		out.Add(t, acc)
	}
	return out
}

// Recorder collects named series with a shared clock.
type Recorder struct {
	series map[string]*Series
	order  []string

	nameScratch []string // reused by RecordAll's per-call sort
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: map[string]*Series{}}
}

// Record appends a point to the named series, creating it on first use.
func (r *Recorder) Record(name string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Add(t, v)
}

// RecordAll appends one point per named value at a shared timestamp, in
// sorted name order so first-use series creation is deterministic. It is
// the natural sink for per-step status structs (e.g. a controller's
// degradation report fanned out as time series).
func (r *Recorder) RecordAll(t float64, values map[string]float64) {
	names := r.nameScratch[:0]
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Record(n, t, values[n])
	}
	r.nameScratch = names[:0]
}

// Series returns the named series, or nil.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// CSV renders all series as a CSV table aligned on the union of times.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("time")
	for _, n := range r.order {
		b.WriteString(",")
		b.WriteString(n)
	}
	b.WriteString("\n")
	// Union of timestamps.
	set := map[float64]bool{}
	for _, n := range r.order {
		for _, t := range r.series[n].Times {
			set[t] = true
		}
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)
	// Per-series cursor walk.
	cursors := make(map[string]int, len(r.order))
	for _, t := range times {
		fmt.Fprintf(&b, "%g", t)
		for _, n := range r.order {
			s := r.series[n]
			i := cursors[n]
			if i < len(s.Times) && s.Times[i] == t {
				fmt.Fprintf(&b, ",%g", s.Values[i])
				cursors[n] = i + 1
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders the named series as an ASCII line chart of the given
// width and height, with a legend. Series are drawn with distinct marks.
func (r *Recorder) Chart(title string, names []string, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	var sel []*Series
	for _, n := range names {
		if s := r.series[n]; s != nil && s.Len() > 0 {
			sel = append(sel, s)
		}
	}
	if len(sel) == 0 {
		return title + ": (no data)\n"
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := 0.0, math.Inf(-1) // y axis anchored at 0
	for _, s := range sel {
		for i, t := range s.Times {
			if t < tMin {
				tMin = t
			}
			if t > tMax {
				tMax = t
			}
			if s.Values[i] > vMax {
				vMax = s.Values[i]
			}
		}
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}
	if tMax <= tMin {
		tMax = tMin + 1
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range sel {
		mark := marks[si%len(marks)]
		for i, t := range s.Times {
			x := int(math.Round((t - tMin) / (tMax - tMin) * float64(width-1)))
			y := int(math.Round((s.Values[i] - vMin) / (vMax - vMin) * float64(height-1)))
			row := height - 1 - y
			if x >= 0 && x < width && row >= 0 && row < height {
				grid[row][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for y, row := range grid {
		val := vMax - (vMax-vMin)*float64(y)/float64(height-1)
		fmt.Fprintf(&b, "%8.0f |%s|\n", val, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*g%*g\n", "", width/2, tMin, width-width/2, tMax)
	for si, s := range sel {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
