package trace

import (
	"strings"
	"testing"
)

func TestCommentWriterPrefixesLines(t *testing.T) {
	var b strings.Builder
	w := NewCommentWriter(&b, "# ")
	if _, err := w.Write([]byte("alpha\nbeta\n")); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "# alpha\n# beta\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestCommentWriterSplitWrites pins the once-per-line prefix contract
// when a line arrives across several Write calls and when a Write ends
// mid-line.
func TestCommentWriterSplitWrites(t *testing.T) {
	var b strings.Builder
	w := NewCommentWriter(&b, "# ")
	for _, chunk := range []string{"al", "pha\nbe", "ta\n", "tail"} {
		if _, err := w.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := b.String(), "# alpha\n# beta\n# tail"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestCommentWriterEmptyWrite(t *testing.T) {
	var b strings.Builder
	w := NewCommentWriter(&b, "# ")
	n, err := w.Write(nil)
	if n != 0 || err != nil {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty write produced output %q", b.String())
	}
}
