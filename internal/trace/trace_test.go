package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x"}
	for i, v := range []float64{2, 4, 6} {
		s.Add(float64(i), v)
	}
	if s.Len() != 3 || s.Mean() != 4 {
		t.Fatalf("len=%d mean=%v", s.Len(), s.Mean())
	}
	if s.Max() != 6 || s.Min() != 2 {
		t.Fatalf("max=%v min=%v", s.Max(), s.Min())
	}
	if v := s.Variance(); math.Abs(v-8.0/3) > 1e-9 {
		t.Fatalf("variance = %v", v)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Mean() != 0 || s.Variance() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestMeanRange(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*10)
	}
	if got := s.MeanRange(2, 5); got != 30 { // (20+30+40)/3
		t.Fatalf("MeanRange = %v, want 30", got)
	}
	if got := s.MeanRange(100, 200); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("b", 0, 2)
	r.Record("a", 1, 3)
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if r.Series("a").Len() != 2 || r.Series("b").Len() != 1 {
		t.Fatal("series lengths wrong")
	}
	if r.Series("ghost") != nil {
		t.Fatal("ghost series exists")
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("a", 1, 2)
	r.Record("b", 1, 5)
	got := r.CSV()
	want := "time,a,b\n0,1,\n1,2,5\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
}

func TestChartRenders(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 50; i++ {
		r.Record("small", float64(i), 500)
		r.Record("large", float64(i), 1800)
	}
	out := r.Chart("Fig", []string{"small", "large"}, 40, 8)
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "small") || !strings.Contains(out, "large") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	// Both marks present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("chart missing series marks:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	r := NewRecorder()
	if out := r.Chart("Empty", []string{"none"}, 40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// A single constant point must not divide by zero.
	r.Record("p", 5, 0)
	out := r.Chart("One", []string{"p"}, 10, 3)
	if !strings.Contains(out, "*") {
		t.Fatalf("single-point chart:\n%s", out)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	out := r.Chart("T", []string{"a"}, 1, 1)
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatal("dimensions not clamped")
	}
}

func TestPercentileRange(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	if got := s.PercentileRange(0.5, 0, 100); math.Abs(got-49.5) > 1e-9 {
		t.Fatalf("median = %v, want 49.5", got)
	}
	if got := s.PercentileRange(0, 0, 100); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.PercentileRange(1, 0, 100); got != 99 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.PercentileRange(0.9, 0, 10); math.Abs(got-8.1) > 1e-9 {
		t.Fatalf("p90 of [0,10) = %v, want 8.1", got)
	}
	if got := s.PercentileRange(0.5, 500, 600); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestSmooth(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(0, 0)
	s.Add(1, 10)
	s.Add(2, 10)
	sm := s.Smooth(0.5)
	if sm.Name != "x:ewma" || sm.Len() != 3 {
		t.Fatalf("smooth meta wrong: %s %d", sm.Name, sm.Len())
	}
	want := []float64{0, 5, 7.5}
	for i, w := range want {
		if math.Abs(sm.Values[i]-w) > 1e-9 {
			t.Fatalf("smooth[%d] = %v, want %v", i, sm.Values[i], w)
		}
	}
	// Invalid alpha degrades to identity.
	id := s.Smooth(0)
	for i := range s.Values {
		if id.Values[i] != s.Values[i] {
			t.Fatal("alpha 0 should be identity")
		}
	}
}

func TestMedianRange(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{500, 2400, 500, 510, 490, 2400, 505} {
		s.Add(float64(i), v)
	}
	// The median shrugs off the two 2400 spikes.
	if got := s.MedianRange(0, 7); got != 505 {
		t.Fatalf("median = %v, want 505", got)
	}
	if got := s.MedianRange(0, 2); got != 1450 {
		t.Fatalf("even-count median = %v, want 1450", got)
	}
	if got := s.MedianRange(100, 200); got != 0 {
		t.Fatalf("empty median = %v", got)
	}
}

// TestQuantileScratchReuse pins the reused-sort-scratch behaviour of
// MedianRange/PercentileRange: interleaved calls over different windows
// must not see each other's scratch contents, and repeated calls must
// not allocate a fresh copy each time.
func TestQuantileScratchReuse(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(99-i))
	}
	m1 := s.MedianRange(0, 100)
	p1 := s.PercentileRange(0.9, 0, 50)
	m2 := s.MedianRange(0, 100)
	if m1 != m2 {
		t.Fatalf("MedianRange changed across interleaved calls: %v then %v", m1, m2)
	}
	if p2 := s.PercentileRange(0.9, 0, 50); p1 != p2 {
		t.Fatalf("PercentileRange changed across interleaved calls: %v then %v", p1, p2)
	}
	if got := s.MedianRange(200, 300); got != 0 {
		t.Fatalf("empty window median = %v, want 0", got)
	}
	allocs := testing.AllocsPerRun(20, func() { s.PercentileRange(0.5, 0, 100) })
	if allocs > 0 {
		t.Fatalf("warm PercentileRange allocates %.1f/op, want 0", allocs)
	}
}

// TestRecordAllScratchReuse verifies RecordAll keeps recording the same
// values in sorted-name order while reusing its name scratch.
func TestRecordAllScratchReuse(t *testing.T) {
	r := NewRecorder()
	vals := map[string]float64{"b": 2, "a": 1, "c": 3}
	for step := 0; step < 5; step++ {
		r.RecordAll(float64(step), vals)
	}
	names := r.Names()
	want := []string{"a", "b", "c"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
		if got := r.Series(n).Len(); got != 5 {
			t.Fatalf("series %s has %d points, want 5", n, got)
		}
	}
}
