// Package vm models virtual machines the way KVM/libvirt expose them to a
// host-side controller: each VM is a cgroup scope under machine.slice with
// one sub-cgroup per vCPU holding exactly one thread, plus an emulator
// cgroup for the QEMU housekeeping threads.
//
// The paper extends the VM template with a virtual frequency (MHz) chosen
// by the customer; Template carries it alongside the classic dimensions.
package vm

import (
	"fmt"

	"vfreq/internal/host"
	"vfreq/internal/sched"
	"vfreq/internal/workload"
)

// Slice is the parent cgroup of all VM scopes, as created by libvirt.
const Slice = "machine.slice"

// Template is a VM flavour: the classic capacities plus the paper's
// virtual frequency F_v.
type Template struct {
	Name     string
	VCPUs    int
	FreqMHz  int64 // virtual frequency guaranteed to each vCPU
	MemoryGB int
}

// Validate checks the template.
func (t Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("vm: template has no name")
	}
	if t.VCPUs <= 0 {
		return fmt.Errorf("vm: template %q has no vCPUs", t.Name)
	}
	if t.FreqMHz <= 0 {
		return fmt.Errorf("vm: template %q has no virtual frequency", t.Name)
	}
	if t.MemoryGB <= 0 {
		return fmt.Errorf("vm: template %q has no memory", t.Name)
	}
	return nil
}

// The paper's three templates (Tables II and V). Memory sizes are not
// given in the paper; these are typical for the shapes used.
func Small() Template  { return Template{Name: "small", VCPUs: 2, FreqMHz: 500, MemoryGB: 2} }
func Medium() Template { return Template{Name: "medium", VCPUs: 4, FreqMHz: 1200, MemoryGB: 4} }
func Large() Template  { return Template{Name: "large", VCPUs: 4, FreqMHz: 1800, MemoryGB: 8} }

// Instance is a provisioned VM on a machine.
type Instance struct {
	name     string
	template Template
	machine  *host.Machine
	scope    string // cgroup path relative to the mount
	vcpus    []*sched.Thread
	emulator *sched.Thread
	sources  []workload.Source
	cycles   []int64 // attained cycles per vCPU
}

// ScopePath returns the libvirt-style scope cgroup path for a VM name.
func ScopePath(name string) string {
	return Slice + "/machine-qemu-" + name + ".scope"
}

// VCPUCgroup returns the cgroup path of vCPU j of a VM name.
func VCPUCgroup(name string, j int) string {
	return fmt.Sprintf("%s/vcpu%d", ScopePath(name), j)
}

// Manager provisions and tracks instances on one machine, playing the
// role libvirt plays on a real host.
type Manager struct {
	machine   *host.Machine
	instances map[string]*Instance
	order     []string
	list      []*Instance // List() cache, rebuilt on Provision/Destroy
}

// NewManager creates a manager and the machine.slice cgroup.
func NewManager(m *host.Machine) (*Manager, error) {
	if _, err := m.Cgroups.CreateGroupAll(Slice); err != nil {
		return nil, err
	}
	return &Manager{machine: m, instances: map[string]*Instance{}}, nil
}

// Machine returns the managed machine.
func (mg *Manager) Machine() *host.Machine { return mg.machine }

// Provision creates a VM instance named name from tpl. srcs supplies the
// per-vCPU workloads; it may be nil (all idle) or have exactly VCPUs
// entries.
func (mg *Manager) Provision(name string, tpl Template, srcs []workload.Source) (*Instance, error) {
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	if _, ok := mg.instances[name]; ok {
		return nil, fmt.Errorf("vm: instance %q already exists", name)
	}
	if srcs == nil {
		srcs = make([]workload.Source, tpl.VCPUs)
		for i := range srcs {
			srcs[i] = workload.Idle()
		}
	}
	if len(srcs) != tpl.VCPUs {
		return nil, fmt.Errorf("vm: %d workload sources for %d vCPUs", len(srcs), tpl.VCPUs)
	}
	if tpl.FreqMHz > mg.machine.Spec().MaxMHz {
		return nil, fmt.Errorf("vm: template frequency %d MHz exceeds node F_MAX %d MHz",
			tpl.FreqMHz, mg.machine.Spec().MaxMHz)
	}
	inst := &Instance{
		name:     name,
		template: tpl,
		machine:  mg.machine,
		scope:    ScopePath(name),
		sources:  srcs,
		cycles:   make([]int64, tpl.VCPUs),
	}
	if _, err := mg.machine.Cgroups.CreateGroupAll(inst.scope); err != nil {
		return nil, err
	}
	for j := 0; j < tpl.VCPUs; j++ {
		rel := VCPUCgroup(name, j)
		if _, err := mg.machine.Cgroups.CreateGroup(rel); err != nil {
			return nil, err
		}
		src := srcs[j]
		th, err := mg.machine.StartThread(rel, fmt.Sprintf("CPU %d/KVM", j), src.Demand)
		if err != nil {
			return nil, err
		}
		j := j
		th.OnRun = func(nowUs, ranUs, freqMHz int64) {
			inst.cycles[j] += ranUs * freqMHz
			src.Account(nowUs, ranUs, freqMHz)
		}
		inst.vcpus = append(inst.vcpus, th)
	}
	emRel := inst.scope + "/emulator"
	if _, err := mg.machine.Cgroups.CreateGroup(emRel); err != nil {
		return nil, err
	}
	em, err := mg.machine.StartThread(emRel, "qemu-system-x86", func(nowUs, dtUs int64) float64 { return 0.005 })
	if err != nil {
		return nil, err
	}
	inst.emulator = em
	mg.instances[name] = inst
	mg.order = append(mg.order, name)
	mg.list = append(mg.list, inst)
	return inst, nil
}

// Reconfigure applies a live template change to a running instance, the
// operation adaptive resource managers (ADARES-style) perform
// continuously: a frequency or memory change updates the template in
// place, and a vCPU-count change grows the instance (creating vCPU
// cgroups and threads; srcs supplies the workloads of the NEW vCPUs and
// may be nil for idle ones) or shrinks it (stopping the trailing threads
// and removing their cgroups). The instance keeps running throughout —
// existing vCPU threads, their usage counters and their workload state
// are untouched.
func (mg *Manager) Reconfigure(name string, tpl Template, srcs []workload.Source) error {
	inst, ok := mg.instances[name]
	if !ok {
		return fmt.Errorf("vm: no instance %q", name)
	}
	if err := tpl.Validate(); err != nil {
		return err
	}
	if tpl.FreqMHz > mg.machine.Spec().MaxMHz {
		return fmt.Errorf("vm: template frequency %d MHz exceeds node F_MAX %d MHz",
			tpl.FreqMHz, mg.machine.Spec().MaxMHz)
	}
	old := len(inst.vcpus)
	grow := tpl.VCPUs - old
	if grow > 0 {
		if srcs == nil {
			srcs = make([]workload.Source, grow)
			for i := range srcs {
				srcs[i] = workload.Idle()
			}
		}
		if len(srcs) != grow {
			return fmt.Errorf("vm: %d workload sources for %d new vCPUs", len(srcs), grow)
		}
		for j := old; j < tpl.VCPUs; j++ {
			rel := VCPUCgroup(name, j)
			if _, err := mg.machine.Cgroups.CreateGroup(rel); err != nil {
				return err
			}
			src := srcs[j-old]
			th, err := mg.machine.StartThread(rel, fmt.Sprintf("CPU %d/KVM", j), src.Demand)
			if err != nil {
				return err
			}
			inst.cycles = append(inst.cycles, 0)
			inst.sources = append(inst.sources, src)
			j := j
			th.OnRun = func(nowUs, ranUs, freqMHz int64) {
				inst.cycles[j] += ranUs * freqMHz
				src.Account(nowUs, ranUs, freqMHz)
			}
			inst.vcpus = append(inst.vcpus, th)
		}
	} else if grow < 0 {
		for j := tpl.VCPUs; j < old; j++ {
			if err := mg.machine.StopThread(inst.vcpus[j]); err != nil {
				return err
			}
			if err := mg.machine.Cgroups.RemoveGroup(VCPUCgroup(name, j)); err != nil {
				return err
			}
		}
		inst.vcpus = inst.vcpus[:tpl.VCPUs]
		inst.cycles = inst.cycles[:tpl.VCPUs]
		inst.sources = inst.sources[:tpl.VCPUs]
	}
	inst.template = tpl
	return nil
}

// Destroy removes an instance, its threads and its cgroups.
func (mg *Manager) Destroy(name string) error {
	inst, ok := mg.instances[name]
	if !ok {
		return fmt.Errorf("vm: no instance %q", name)
	}
	for _, th := range inst.vcpus {
		if err := mg.machine.Procs.Unregister(th.ID); err != nil {
			return err
		}
	}
	if err := mg.machine.Procs.Unregister(inst.emulator.ID); err != nil {
		return err
	}
	// Removing the scope cgroup detaches all threads at once.
	if err := mg.machine.Cgroups.RemoveGroup(inst.scope); err != nil {
		return err
	}
	delete(mg.instances, name)
	for i, n := range mg.order {
		if n == name {
			mg.order = append(mg.order[:i], mg.order[i+1:]...)
			mg.list = append(mg.list[:i], mg.list[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns the instance with the given name, or nil.
func (mg *Manager) Get(name string) *Instance { return mg.instances[name] }

// List returns all instances in provisioning order. The returned slice
// is owned by the manager and valid until the next Provision or Destroy;
// callers must not mutate or retain it.
func (mg *Manager) List() []*Instance {
	return mg.list
}

// Name returns the instance name.
func (i *Instance) Name() string { return i.name }

// Template returns the instance's template.
func (i *Instance) Template() Template { return i.template }

// Scope returns the instance's cgroup scope path.
func (i *Instance) Scope() string { return i.scope }

// VCPUThread returns the scheduler thread of vCPU j.
func (i *Instance) VCPUThread(j int) *sched.Thread { return i.vcpus[j] }

// VCPUCycles returns the cumulative cycles attained by vCPU j — the
// ground-truth virtual work, used to validate the controller's estimates.
func (i *Instance) VCPUCycles(j int) int64 { return i.cycles[j] }

// MeanVCPUFreqMHz returns the instance's average virtual frequency over a
// window: (cycles now − cyclesBefore) / windowUs, averaged over vCPUs.
func (i *Instance) MeanVCPUFreqMHz(cyclesBefore []int64, windowUs int64) float64 {
	if windowUs <= 0 || len(cyclesBefore) != len(i.cycles) {
		return 0
	}
	var sum float64
	for j := range i.cycles {
		sum += float64(i.cycles[j]-cyclesBefore[j]) / float64(windowUs)
	}
	return sum / float64(len(i.cycles))
}

// SnapshotCycles copies the current per-vCPU cycle counters.
func (i *Instance) SnapshotCycles() []int64 {
	out := make([]int64, len(i.cycles))
	copy(out, i.cycles)
	return out
}

// GuaranteedCyclesUs returns C_i of Eq. 2: the number of cycles (µs of
// CPU time) per control period p that realise the template frequency on
// this machine.
func (i *Instance) GuaranteedCyclesUs(periodUs int64) int64 {
	return periodUs * i.template.FreqMHz / i.machine.Spec().MaxMHz
}
