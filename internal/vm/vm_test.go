package vm

import (
	"fmt"
	"testing"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/host"
	"vfreq/internal/workload"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := host.New(host.Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewManager(m)
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

func TestTemplatePresets(t *testing.T) {
	for _, tpl := range []Template{Small(), Medium(), Large()} {
		if err := tpl.Validate(); err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
	}
	if Small().FreqMHz != 500 || Medium().FreqMHz != 1200 || Large().FreqMHz != 1800 {
		t.Fatal("preset frequencies do not match the paper")
	}
	if Small().VCPUs != 2 || Medium().VCPUs != 4 || Large().VCPUs != 4 {
		t.Fatal("preset vCPU counts do not match the paper")
	}
}

func TestTemplateValidation(t *testing.T) {
	cases := []Template{
		{Name: "", VCPUs: 1, FreqMHz: 100, MemoryGB: 1},
		{Name: "x", VCPUs: 0, FreqMHz: 100, MemoryGB: 1},
		{Name: "x", VCPUs: 1, FreqMHz: 0, MemoryGB: 1},
		{Name: "x", VCPUs: 1, FreqMHz: 100, MemoryGB: 0},
	}
	for i, tpl := range cases {
		if err := tpl.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestProvisionCreatesKVMLayout(t *testing.T) {
	mg := newManager(t)
	inst, err := mg.Provision("vm0", Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := mg.Machine().FS
	base := cgroupfs.DefaultMount + "/" + ScopePath("vm0")
	for _, p := range []string{base, base + "/vcpu0", base + "/vcpu1", base + "/emulator"} {
		if !fs.IsDir(p) {
			t.Fatalf("missing cgroup dir %s", p)
		}
	}
	// Each vCPU cgroup holds exactly one thread.
	content, _ := fs.ReadFile(base + "/vcpu0/cgroup.threads")
	ids, err := cgroupfs.ParseTIDs(content)
	if err != nil || len(ids) != 1 {
		t.Fatalf("vcpu0 threads = %v, %v", ids, err)
	}
	if ids[0] != inst.VCPUThread(0).ID {
		t.Fatal("cgroup tid mismatch")
	}
	// /proc/<tid>/comm carries the KVM thread name.
	comm, _ := fs.ReadFile(fmt.Sprintf("/proc/%d/comm", ids[0]))
	if comm != "CPU 0/KVM\n" {
		t.Fatalf("comm = %q", comm)
	}
}

func TestProvisionValidation(t *testing.T) {
	mg := newManager(t)
	if _, err := mg.Provision("vm0", Small(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Provision("vm0", Small(), nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := mg.Provision("vm1", Small(), []workload.Source{workload.Busy()}); err == nil {
		t.Fatal("wrong source count accepted")
	}
	fast := Template{Name: "fast", VCPUs: 1, FreqMHz: 5000, MemoryGB: 1}
	if _, err := mg.Provision("vm2", fast, nil); err == nil {
		t.Fatal("frequency above node F_MAX accepted")
	}
}

func TestWorkloadRunsAndCyclesAccrue(t *testing.T) {
	mg := newManager(t)
	srcs := []workload.Source{workload.Busy(), workload.Busy()}
	inst, err := mg.Provision("vm0", Small(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	mg.Machine().Advance(1_000_000)
	for j := 0; j < 2; j++ {
		if inst.VCPUCycles(j) == 0 {
			t.Fatalf("vCPU %d attained no cycles", j)
		}
		if inst.VCPUThread(j).UsageUs == 0 {
			t.Fatalf("vCPU %d never ran", j)
		}
	}
	// Uncontended VM: each vCPU has a core to itself, so the measured
	// virtual frequency approaches the hardware envelope.
	before := make([]int64, 2)
	snap := inst.SnapshotCycles()
	mg.Machine().Advance(1_000_000)
	f := inst.MeanVCPUFreqMHz(snap, 1_000_000)
	if f < 2000 {
		t.Fatalf("uncontended vCPU freq = %.0f MHz, want > 2000", f)
	}
	_ = before
}

func TestGuaranteedCyclesEq2(t *testing.T) {
	mg := newManager(t)
	inst, err := mg.Provision("vm0", Large(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2: C_i = p × F_v / F_max = 1e6 × 1800/2400 = 750000.
	if c := inst.GuaranteedCyclesUs(1_000_000); c != 750_000 {
		t.Fatalf("C_i = %d, want 750000", c)
	}
	inst2, _ := mg.Provision("vm1", Small(), nil)
	if c := inst2.GuaranteedCyclesUs(1_000_000); c != 208_333 {
		t.Fatalf("small C_i = %d, want 208333", c)
	}
}

func TestDestroyCleansUp(t *testing.T) {
	mg := newManager(t)
	inst, err := mg.Provision("vm0", Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tid := inst.VCPUThread(0).ID
	if err := mg.Destroy("vm0"); err != nil {
		t.Fatal(err)
	}
	fs := mg.Machine().FS
	if fs.Exists(cgroupfs.DefaultMount + "/" + ScopePath("vm0")) {
		t.Fatal("scope cgroup survived destroy")
	}
	if fs.Exists(fmt.Sprintf("/proc/%d", tid)) {
		t.Fatal("proc entry survived destroy")
	}
	if mg.Get("vm0") != nil || len(mg.List()) != 0 {
		t.Fatal("registry not cleaned")
	}
	if err := mg.Destroy("vm0"); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestListOrder(t *testing.T) {
	mg := newManager(t)
	for i := 0; i < 3; i++ {
		if _, err := mg.Provision(fmt.Sprintf("vm%d", i), Small(), nil); err != nil {
			t.Fatal(err)
		}
	}
	list := mg.List()
	for i, inst := range list {
		if inst.Name() != fmt.Sprintf("vm%d", i) {
			t.Fatalf("order wrong: %d = %s", i, inst.Name())
		}
	}
}

// The CFS observation that motivates the paper: without control, two
// saturated VMs get equal total time regardless of vCPU count.
func TestUncontrolledVMFairness(t *testing.T) {
	mg := newManager(t)
	small, err := mg.Provision("small", Small(), []workload.Source{workload.Busy(), workload.Busy()})
	if err != nil {
		t.Fatal(err)
	}
	big, err := mg.Provision("large", Large(),
		[]workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()})
	if err != nil {
		t.Fatal(err)
	}
	// Constrain contention: use a tiny machine.
	_ = small
	_ = big
	// On a 40-core machine 6 busy vCPUs are uncontended; instead check
	// per-VM totals on a small host.
	m2, _ := host.New(host.Spec{
		Name: "tiny", Cores: 2, MinMHz: 1200, MaxMHz: 2400, MemoryGB: 8,
		Governor: "performance",
		Power:    host.Chetemi().Power,
	})
	mg2, _ := NewManager(m2)
	s2, _ := mg2.Provision("small", Small(), []workload.Source{workload.Busy(), workload.Busy()})
	l2, _ := mg2.Provision("large", Large(),
		[]workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()})
	m2.Advance(2_000_000)
	var st, lt int64
	for j := 0; j < 2; j++ {
		st += s2.VCPUThread(j).UsageUs
	}
	for j := 0; j < 4; j++ {
		lt += l2.VCPUThread(j).UsageUs
	}
	ratio := float64(st) / float64(lt)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("per-VM usage ratio = %.2f, want ~1 (CFS shares per VM)", ratio)
	}
}

func TestEnergyBillAttribution(t *testing.T) {
	mg := newManager(t)
	busy, err := mg.Provision("busy", Large(),
		[]workload.Source{workload.Busy(), workload.Busy(), workload.Busy(), workload.Busy()})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := mg.Provision("idle", Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mg.Machine().Advance(10_000_000) // 10 s
	bill := mg.EnergyBill()
	total := mg.Machine().Meter.Joules()
	var sum float64
	for _, j := range bill {
		if j < 0 {
			t.Fatal("negative bill entry")
		}
		sum += j
	}
	if diff := (sum - total) / total; diff > 0.01 || diff < -0.01 {
		t.Fatalf("bill sums to %.1f J, meter says %.1f J", sum, total)
	}
	// The busy VM pays nearly all the dynamic energy; the idle VM only
	// its reserved idle share.
	if bill[busy.Name()] < 5*bill[idle.Name()] {
		t.Fatalf("busy=%.1f idle=%.1f J: attribution not usage-weighted",
			bill[busy.Name()], bill[idle.Name()])
	}
	// The provider carries the unreserved idle draw of this mostly
	// empty 40-core node.
	if bill["Provider"] <= 0 {
		t.Fatal("provider share empty on an underutilised node")
	}
}

func TestEnergyBillEmptyMachine(t *testing.T) {
	mg := newManager(t)
	mg.Machine().Advance(1_000_000)
	bill := mg.EnergyBill()
	if len(bill) != 1 || bill["Provider"] <= 0 {
		t.Fatalf("empty machine bill = %v", bill)
	}
}
