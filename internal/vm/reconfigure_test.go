package vm

import (
	"testing"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/workload"
)

func TestReconfigureFrequencyOnly(t *testing.T) {
	mg := newManager(t)
	inst, err := mg.Provision("vm0", Small(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tpl := Small()
	tpl.FreqMHz = 1800
	if err := mg.Reconfigure("vm0", tpl, nil); err != nil {
		t.Fatal(err)
	}
	if inst.Template().FreqMHz != 1800 {
		t.Fatalf("freq = %d, want 1800", inst.Template().FreqMHz)
	}
	// Eq. 2 follows the new template: 1e6 × 1800/2400.
	if c := inst.GuaranteedCyclesUs(1_000_000); c != 750_000 {
		t.Fatalf("C_i = %d, want 750000", c)
	}
	if len(inst.vcpus) != 2 {
		t.Fatalf("vCPU count changed: %d", len(inst.vcpus))
	}
}

func TestReconfigureGrowsAndShrinks(t *testing.T) {
	mg := newManager(t)
	inst, err := mg.Provision("vm0", Small(), // 2 vCPUs
		[]workload.Source{workload.Busy(), workload.Busy()})
	if err != nil {
		t.Fatal(err)
	}
	mg.Machine().Advance(500_000)
	usageBefore := inst.VCPUThread(0).UsageUs
	fs := mg.Machine().FS
	base := cgroupfs.DefaultMount + "/" + ScopePath("vm0")

	// Grow 2 → 4 with busy workloads on the new vCPUs.
	tpl := Small()
	tpl.VCPUs = 4
	if err := mg.Reconfigure("vm0", tpl,
		[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		p := base + "/vcpu" + string(rune('0'+j))
		if !fs.IsDir(p) {
			t.Fatalf("missing cgroup dir %s after grow", p)
		}
	}
	if len(inst.vcpus) != 4 || len(inst.cycles) != 4 || len(inst.sources) != 4 {
		t.Fatal("instance slices did not grow together")
	}
	// Existing vCPUs kept running state; new ones attain cycles.
	if inst.VCPUThread(0).UsageUs != usageBefore {
		t.Fatal("existing vCPU usage disturbed by grow")
	}
	mg.Machine().Advance(500_000)
	if inst.VCPUCycles(3) == 0 {
		t.Fatal("grown vCPU attained no cycles")
	}

	// Shrink 4 → 1.
	tpl.VCPUs = 1
	if err := mg.Reconfigure("vm0", tpl, nil); err != nil {
		t.Fatal(err)
	}
	if len(inst.vcpus) != 1 || len(inst.cycles) != 1 || len(inst.sources) != 1 {
		t.Fatal("instance slices did not shrink together")
	}
	for j := 1; j < 4; j++ {
		p := base + "/vcpu" + string(rune('0'+j))
		if fs.IsDir(p) {
			t.Fatalf("cgroup dir %s survived shrink", p)
		}
	}
	// The survivor keeps running.
	before := inst.VCPUThread(0).UsageUs
	mg.Machine().Advance(500_000)
	if inst.VCPUThread(0).UsageUs <= before {
		t.Fatal("surviving vCPU stopped running after shrink")
	}
}

func TestReconfigureValidation(t *testing.T) {
	mg := newManager(t)
	if _, err := mg.Provision("vm0", Small(), nil); err != nil {
		t.Fatal(err)
	}
	if err := mg.Reconfigure("ghost", Small(), nil); err == nil {
		t.Fatal("missing instance accepted")
	}
	bad := Small()
	bad.FreqMHz = 0
	if err := mg.Reconfigure("vm0", bad, nil); err == nil {
		t.Fatal("invalid template accepted")
	}
	fast := Small()
	fast.FreqMHz = 5000
	if err := mg.Reconfigure("vm0", fast, nil); err == nil {
		t.Fatal("frequency above node F_MAX accepted")
	}
	grow := Small()
	grow.VCPUs = 4
	if err := mg.Reconfigure("vm0", grow, []workload.Source{workload.Busy()}); err == nil {
		t.Fatal("wrong source count accepted")
	}
}
