package vm

// EnergyBill attributes the machine's consumed energy to its VMs, the way
// a provider would bill energy-aware tenants:
//
//   - the dynamic energy (above the node's idle draw) is split in
//     proportion to each VM's attained CPU time;
//   - the idle energy is split in proportion to each VM's reserved
//     capacity (Σ vCPU·F_v / node capacity), since reservations are what
//     keep the node powered; the unreserved remainder stays with the
//     provider under "Provider".
//
// The paper motivates virtual frequencies with energy savings; this
// attribution makes the cost of a reservation visible per tenant.
func (mg *Manager) EnergyBill() map[string]float64 {
	machine := mg.machine
	elapsedS := float64(machine.NowUs()) / 1e6
	totalJ := machine.Meter.Joules()
	idleJ := machine.Meter.Model().IdleWatts * elapsedS
	if idleJ > totalJ {
		idleJ = totalJ
	}
	dynamicJ := totalJ - idleJ

	bill := map[string]float64{"Provider": 0}

	// Dynamic split by attained CPU time.
	var busyTotal int64
	usage := map[string]int64{}
	for _, inst := range mg.List() {
		var u int64
		for _, th := range inst.vcpus {
			u += th.UsageUs
		}
		u += inst.emulator.UsageUs
		usage[inst.Name()] = u
		busyTotal += u
	}
	// Idle split by reserved capacity.
	capacity := float64(machine.Spec().Cores) * float64(machine.Spec().MaxMHz)
	for _, inst := range mg.List() {
		name := inst.Name()
		var j float64
		if busyTotal > 0 {
			j += dynamicJ * float64(usage[name]) / float64(busyTotal)
		}
		t := inst.Template()
		j += idleJ * float64(t.VCPUs) * float64(t.FreqMHz) / capacity
		bill[name] = j
	}
	// Whatever is not attributed (unreserved idle, dynamic energy of
	// non-VM threads) stays with the provider.
	var attributed float64
	for name, j := range bill {
		if name != "Provider" {
			attributed += j
		}
	}
	provider := totalJ - attributed
	if provider < 0 {
		provider = 0
	}
	bill["Provider"] = provider
	return bill
}
