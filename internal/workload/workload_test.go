package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := &Constant{Level: 0.4}
	if d := c.Demand(0, 10_000); d != 0.4 {
		t.Fatalf("demand = %v", d)
	}
	c.Account(0, 1000, 2400)
	if c.CyclesDone != 2_400_000 {
		t.Fatalf("cycles = %d, want 2400000", c.CyclesDone)
	}
	if Idle().Demand(0, 1) != 0 || Busy().Demand(0, 1) != 1 {
		t.Fatal("Idle/Busy levels wrong")
	}
}

func TestRamp(t *testing.T) {
	r := &Ramp{From: 0, To: 1, StartUs: 100, DurUs: 100}
	if d := r.Demand(0, 1); d != 0 {
		t.Fatalf("before start: %v", d)
	}
	if d := r.Demand(150, 1); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("midpoint: %v", d)
	}
	if d := r.Demand(1000, 1); d != 1 {
		t.Fatalf("after end: %v", d)
	}
}

func TestBursty(t *testing.T) {
	b := &Bursty{PeriodUs: 100, Duty: 0.3, High: 1, Low: 0.1}
	if d := b.Demand(10, 1); d != 1 {
		t.Fatalf("in burst: %v", d)
	}
	if d := b.Demand(50, 1); d != 0.1 {
		t.Fatalf("off burst: %v", d)
	}
	if d := b.Demand(110, 1); d != 1 {
		t.Fatalf("second period: %v", d)
	}
	zero := &Bursty{Low: 0.2}
	if d := zero.Demand(5, 1); d != 0.2 {
		t.Fatalf("zero period: %v", d)
	}
}

func TestSineBounds(t *testing.T) {
	s := &Sine{PeriodUs: 1000, Min: 0.2, Max: 0.8}
	for now := int64(0); now < 3000; now += 37 {
		d := s.Demand(now, 1)
		if d < 0.2-1e-9 || d > 0.8+1e-9 {
			t.Fatalf("sine out of bounds at %d: %v", now, d)
		}
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{Samples: []float64{0.1, 0.9, 0.5}, StepUs: 100}
	cases := map[int64]float64{0: 0.1, 99: 0.1, 100: 0.9, 250: 0.5, 10_000: 0.5}
	for now, want := range cases {
		if d := tr.Demand(now, 1); d != want {
			t.Fatalf("trace at %d = %v, want %v", now, d, want)
		}
	}
	empty := &Trace{}
	if empty.Demand(0, 1) != 0 {
		t.Fatal("empty trace demanded CPU")
	}
}

func TestDelayed(t *testing.T) {
	d := &Delayed{StartUs: 500, Inner: Busy()}
	if d.Demand(499, 1) != 0 {
		t.Fatal("ran before start")
	}
	if d.Demand(500, 1) != 1 {
		t.Fatal("did not run at start")
	}
	inner := &Constant{Level: 1}
	dd := &Delayed{StartUs: 100, Inner: inner}
	dd.Account(50, 10, 1000) // before start: dropped
	if inner.CyclesDone != 0 {
		t.Fatal("accounted before start")
	}
	dd.Account(150, 10, 1000)
	if inner.CyclesDone != 10_000 {
		t.Fatalf("cycles = %d", inner.CyclesDone)
	}
}

func TestBenchValidation(t *testing.T) {
	if _, err := NewCompress7zip(0, 100, 1, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := NewCompress7zip(1, 0, 1, 0); err == nil {
		t.Fatal("zero work accepted")
	}
	if _, err := NewCompress7zip(1, 10, 0, 0); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, err := NewOpenSSL(1, 10, 1, -5); err == nil {
		t.Fatal("negative start accepted")
	}
}

// Drive a bench by hand: a single thread doing 1000-cycle runs at a fixed
// 1000 MHz, 1 µs of CPU per step.
func TestBenchRunsAndScores(t *testing.T) {
	b, err := NewOpenSSL(1, 1000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := b.Thread(0)
	now := int64(0)
	steps := 0
	for !b.Done() && steps < 10_000 {
		if d := src.Demand(now, 1); d == 1 {
			src.Account(now, 1, 1000) // 1 µs at 1000 MHz = 1000 cycles
		}
		now++
		steps++
	}
	if !b.Done() {
		t.Fatal("bench never finished")
	}
	res := b.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, r := range res {
		if r.Run != i {
			t.Fatalf("run index %d, want %d", r.Run, i)
		}
		if r.DurationUs() != 1 {
			t.Fatalf("run %d duration = %d µs, want 1", i, r.DurationUs())
		}
		if r.RateMHz() != 1000 {
			t.Fatalf("run %d rate = %v, want 1000", i, r.RateMHz())
		}
	}
	if b.MeanRateMHz() != 1000 {
		t.Fatalf("mean rate = %v", b.MeanRateMHz())
	}
}

func TestBenchBarrier(t *testing.T) {
	b, err := NewOpenSSL(2, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := b.Thread(0), b.Thread(1)
	now := int64(0)
	// Fast thread finishes its work immediately.
	if fast.Demand(now, 1) != 1 {
		t.Fatal("fast thread idle")
	}
	fast.Account(now, 1, 1000)
	if b.Done() {
		t.Fatal("bench done before slow thread finished")
	}
	// Finished thread waits at the barrier with tiny demand.
	if d := fast.Demand(now+1, 1); d >= 0.1 {
		t.Fatalf("barrier demand = %v, want small", d)
	}
	// Slow thread takes two steps.
	slow.Account(now+1, 1, 500)
	if b.Done() {
		t.Fatal("premature completion")
	}
	slow.Account(now+2, 1, 500)
	if !b.Done() {
		t.Fatal("bench not done after all work")
	}
	if got := b.Results()[0].DurationUs(); got != 3 {
		t.Fatalf("run duration = %d, want 3", got)
	}
}

func TestBenchDip(t *testing.T) {
	b, err := newBench("x", 1, 100, 2, 0, 50) // 50 µs dip
	if err != nil {
		t.Fatal(err)
	}
	src := b.Thread(0)
	src.Demand(0, 1)
	src.Account(0, 1, 100) // run 0 done at t=1
	// During the dip, demand is small and work is not accounted.
	if d := src.Demand(10, 1); d >= 0.1 {
		t.Fatalf("dip demand = %v", d)
	}
	src.Account(10, 1, 100)
	if b.Done() {
		t.Fatal("work accounted during dip")
	}
	// After the dip the second run starts.
	if d := src.Demand(60, 1); d != 1 {
		t.Fatalf("post-dip demand = %v", d)
	}
	src.Account(60, 1, 100)
	if !b.Done() {
		t.Fatal("run 2 incomplete")
	}
	r := b.Results()[1]
	if r.StartUs != 51 {
		t.Fatalf("run 2 start = %d, want 51 (end of dip)", r.StartUs)
	}
}

func TestBenchStartDelay(t *testing.T) {
	b, _ := NewOpenSSL(1, 100, 1, 1_000)
	src := b.Thread(0)
	if src.Demand(500, 1) != 0 {
		t.Fatal("demanded CPU before start")
	}
	if src.Demand(1_000, 1) != 1 {
		t.Fatal("idle at start time")
	}
}

func TestThreadIndexPanics(t *testing.T) {
	b, _ := NewOpenSSL(1, 100, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Thread did not panic")
		}
	}()
	b.Thread(5)
}

func TestSourcesCount(t *testing.T) {
	b, _ := NewCompress7zip(4, 100, 1, 0)
	if got := len(b.Sources()); got != 4 {
		t.Fatalf("Sources len = %d", got)
	}
	if b.Threads() != 4 || b.Name() != "compress-7zip" {
		t.Fatal("metadata wrong")
	}
}

// Property: a bench driven to completion always yields exactly `runs`
// results with positive durations and monotone non-overlapping intervals.
func TestQuickBenchCompletion(t *testing.T) {
	f := func(threads8, runs8 uint8, work16 uint16) bool {
		threads := int(threads8%4) + 1
		runs := int(runs8%5) + 1
		work := int64(work16%5000) + 1
		b, err := newBench("q", threads, work, runs, 0, 10)
		if err != nil {
			return false
		}
		srcs := b.Sources()
		now := int64(0)
		for !b.Done() && now < 1_000_000 {
			for _, s := range srcs {
				if s.Demand(now, 2) == 1 {
					s.Account(now, 2, 1500)
				}
			}
			now += 2
		}
		if !b.Done() {
			return false
		}
		res := b.Results()
		if len(res) != runs {
			return false
		}
		prevEnd := int64(-1)
		for _, r := range res {
			if r.DurationUs() <= 0 || r.StartUs <= prevEnd {
				return false
			}
			prevEnd = r.EndUs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
