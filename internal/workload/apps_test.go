package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestWebServerDeterministic(t *testing.T) {
	run := func() int64 {
		w := &WebServer{RatePerSec: 100, CyclesPerReq: 1_000_000, Seed: 42}
		now := int64(0)
		for i := 0; i < 1000; i++ {
			d := w.Demand(now, 10_000)
			if d > 0 {
				w.Account(now, int64(d*10_000), 2000)
			}
			now += 10_000
		}
		return w.CyclesDone
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no work done")
	}
}

func TestWebServerThroughputMatchesRate(t *testing.T) {
	// 100 req/s × 1 Mcycles at plentiful CPU: after 10 s the served
	// count approaches 100/s.
	w := &WebServer{RatePerSec: 100, CyclesPerReq: 1_000_000, Seed: 7}
	now := int64(0)
	for i := 0; i < 1000; i++ { // 10 s of 10 ms ticks
		d := w.Demand(now, 10_000)
		w.Account(now, int64(d*10_000), 2400)
		now += 10_000
	}
	perSec := float64(w.ServedReqs) / 10
	if perSec < 80 || perSec > 120 {
		t.Fatalf("served %.1f req/s, want ≈100", perSec)
	}
	if w.BacklogCycles() > 10_000_000 {
		t.Fatalf("backlog grew: %d", w.BacklogCycles())
	}
}

func TestWebServerIdleWithoutArrivals(t *testing.T) {
	w := &WebServer{RatePerSec: 0, CyclesPerReq: 1000, Seed: 1}
	for now := int64(0); now < 1_000_000; now += 10_000 {
		if d := w.Demand(now, 10_000); d != 0 {
			t.Fatalf("demand %v with no arrivals", d)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	w := &WebServer{Seed: 3}
	_ = w
	rng := newTestRand(3)
	const mean = 2.5
	var sum int
	const n = 20_000
	for i := 0; i < n; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("poisson mean = %.3f, want %.1f", got, mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestMapReduceValidation(t *testing.T) {
	cases := []struct{ threads, reducers int }{{0, 1}, {4, 0}, {2, 3}}
	for _, c := range cases {
		if _, err := NewMapReduce(c.threads, 100, c.reducers, 100, 0, 0); err == nil {
			t.Fatalf("threads=%d reducers=%d accepted", c.threads, c.reducers)
		}
	}
	if _, err := NewMapReduce(4, 0, 2, 100, 0, 0); err == nil {
		t.Fatal("zero map work accepted")
	}
	if _, err := NewMapReduce(4, 100, 2, 100, -1, 0); err == nil {
		t.Fatal("negative shuffle accepted")
	}
}

// Drive a MapReduce by hand through all phases.
func TestMapReducePhases(t *testing.T) {
	mr, err := NewMapReduce(4, 1000, 2, 2000, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	srcs := mr.Sources()
	now := int64(0)
	step := func() {
		for _, s := range srcs {
			if s.Demand(now, 1) == 1 {
				s.Account(now, 1, 1000) // 1000 cycles per µs
			}
		}
		now++
	}
	if mr.Phase() != 0 {
		t.Fatalf("phase = %d, want map", mr.Phase())
	}
	step() // each thread does 1000 cycles → map complete
	if mr.Phase() != 1 {
		t.Fatalf("after map: phase = %d, want shuffle", mr.Phase())
	}
	// During shuffle, demand is tiny.
	if d := srcs[0].Demand(now, 1); d >= 0.1 {
		t.Fatalf("shuffle demand = %v", d)
	}
	now += 60 // past shuffleUntil
	step()    // transition + first reduce work
	if mr.Phase() != 2 {
		t.Fatalf("after shuffle: phase = %d, want reduce", mr.Phase())
	}
	// Only reducers demand CPU.
	if d := srcs[3].Demand(now, 1); d >= 0.1 {
		t.Fatalf("non-reducer demand = %v", d)
	}
	if d := srcs[0].Demand(now, 1); d != 1 {
		t.Fatalf("reducer demand = %v", d)
	}
	for i := 0; i < 10 && !mr.Done(); i++ {
		step()
	}
	if !mr.Done() {
		t.Fatal("job never completed")
	}
	if mr.DoneAtUs() == 0 {
		t.Fatal("completion time not recorded")
	}
}

func TestMapReduceStartDelay(t *testing.T) {
	mr, _ := NewMapReduce(2, 100, 1, 100, 0, 1_000)
	src := mr.Sources()[0]
	if d := src.Demand(500, 1); d != 0 {
		t.Fatalf("demand before start = %v", d)
	}
	if d := src.Demand(1_000, 1); d != 1 {
		t.Fatalf("demand at start = %v", d)
	}
}

// newTestRand is a tiny indirection so the Poisson test does not need the
// WebServer wrapper.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
