// Package workload provides synthetic CPU workload generators for VM
// vCPUs, including stand-ins for the two Phoronix benchmarks the paper
// evaluates with (compress-7zip and openssl).
//
// Work is accounted in cycles: a thread that runs x microseconds on a core
// clocked at f MHz completes x·f cycles. A workload's attained rate
// (cycles per microsecond) is therefore its effective frequency in MHz —
// the paper's "virtual frequency" — and benchmark scores are proportional
// to it.
package workload

import "math"

// Source produces CPU demand for one thread and receives work accounting.
type Source interface {
	// Demand returns the fraction of the next dtUs the thread wants to
	// run, in [0, 1].
	Demand(nowUs, dtUs int64) float64
	// Account records that the thread ran for ranUs at freqMHz.
	Account(nowUs, ranUs, freqMHz int64)
}

// Constant demands a fixed fraction of CPU time forever.
type Constant struct {
	Level float64
	// CyclesDone accumulates attained work.
	CyclesDone int64
}

// Demand implements Source.
func (c *Constant) Demand(nowUs, dtUs int64) float64 { return c.Level }

// Account implements Source.
func (c *Constant) Account(nowUs, ranUs, freqMHz int64) { c.CyclesDone += ranUs * freqMHz }

// Idle returns a source that never wants to run.
func Idle() *Constant { return &Constant{Level: 0} }

// Busy returns a source that always wants a full core.
func Busy() *Constant { return &Constant{Level: 1} }

// Ramp linearly interpolates demand from From to To over [StartUs,
// StartUs+DurUs], holding To afterwards.
type Ramp struct {
	From, To       float64
	StartUs, DurUs int64
	CyclesDone     int64
}

// Demand implements Source.
func (r *Ramp) Demand(nowUs, dtUs int64) float64 {
	if nowUs <= r.StartUs {
		return r.From
	}
	if nowUs >= r.StartUs+r.DurUs {
		return r.To
	}
	frac := float64(nowUs-r.StartUs) / float64(r.DurUs)
	return r.From + (r.To-r.From)*frac
}

// Account implements Source.
func (r *Ramp) Account(nowUs, ranUs, freqMHz int64) { r.CyclesDone += ranUs * freqMHz }

// Bursty alternates between High demand for Duty·Period and Low demand for
// the rest of each period.
type Bursty struct {
	PeriodUs   int64
	Duty       float64 // fraction of the period at High
	High, Low  float64
	PhaseUs    int64 // offset into the cycle at t=0
	CyclesDone int64
}

// Demand implements Source.
func (b *Bursty) Demand(nowUs, dtUs int64) float64 {
	if b.PeriodUs <= 0 {
		return b.Low
	}
	pos := (nowUs + b.PhaseUs) % b.PeriodUs
	if float64(pos) < b.Duty*float64(b.PeriodUs) {
		return b.High
	}
	return b.Low
}

// Account implements Source.
func (b *Bursty) Account(nowUs, ranUs, freqMHz int64) { b.CyclesDone += ranUs * freqMHz }

// Sine modulates demand sinusoidally between Min and Max with the given
// period, approximating slowly varying interactive load.
type Sine struct {
	PeriodUs   int64
	Min, Max   float64
	CyclesDone int64
}

// Demand implements Source.
func (s *Sine) Demand(nowUs, dtUs int64) float64 {
	if s.PeriodUs <= 0 {
		return s.Min
	}
	phase := 2 * math.Pi * float64(nowUs%s.PeriodUs) / float64(s.PeriodUs)
	return s.Min + (s.Max-s.Min)*(0.5+0.5*math.Sin(phase))
}

// Account implements Source.
func (s *Sine) Account(nowUs, ranUs, freqMHz int64) { s.CyclesDone += ranUs * freqMHz }

// Trace replays a fixed demand series with a given sample step, holding
// the last sample forever.
type Trace struct {
	Samples    []float64
	StepUs     int64
	CyclesDone int64
}

// Demand implements Source.
func (t *Trace) Demand(nowUs, dtUs int64) float64 {
	if len(t.Samples) == 0 || t.StepUs <= 0 {
		return 0
	}
	i := int(nowUs / t.StepUs)
	if i >= len(t.Samples) {
		i = len(t.Samples) - 1
	}
	return t.Samples[i]
}

// Account implements Source.
func (t *Trace) Account(nowUs, ranUs, freqMHz int64) { t.CyclesDone += ranUs * freqMHz }

// Delayed wraps a source so it stays idle until StartUs.
type Delayed struct {
	StartUs int64
	Inner   Source
}

// Demand implements Source.
func (d *Delayed) Demand(nowUs, dtUs int64) float64 {
	if nowUs < d.StartUs {
		return 0
	}
	return d.Inner.Demand(nowUs-d.StartUs, dtUs)
}

// Account implements Source.
func (d *Delayed) Account(nowUs, ranUs, freqMHz int64) {
	if nowUs < d.StartUs {
		return
	}
	d.Inner.Account(nowUs-d.StartUs, ranUs, freqMHz)
}
