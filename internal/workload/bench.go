package workload

import "fmt"

// Bench models a multi-threaded benchmark executed inside a VM, in the
// style of the Phoronix suites the paper uses. The benchmark performs a
// fixed number of runs; within a run every worker thread must complete a
// fixed amount of work (cycles), and threads that finish early wait at a
// synchronisation barrier with near-zero demand. Between runs the
// benchmark idles briefly (the "synchronisation" dips visible in the
// paper's frequency plots).
type Bench struct {
	name                  string
	startUs               int64
	threads               int
	cyclesPerThreadPerRun int64
	runs                  int
	dipUs                 int64
	waitDemand            float64

	started   bool
	runIdx    int
	runStart  int64
	dipUntil  int64
	remaining []int64
	results   []RunResult
}

// RunResult records one completed benchmark run.
type RunResult struct {
	Run        int   // 0-based run index
	StartUs    int64 // when the run's work began
	EndUs      int64 // when the last thread finished
	CyclesEach int64 // work per thread
}

// DurationUs returns the wallclock length of the run.
func (r RunResult) DurationUs() int64 { return r.EndUs - r.StartUs }

// RateMHz returns the run's effective per-thread frequency: cycles per
// microsecond, i.e. MHz. This is the "compression efficiency" metric of
// the paper's Figs. 10/11/14 up to a constant factor.
func (r RunResult) RateMHz() float64 {
	d := r.DurationUs()
	if d <= 0 {
		return 0
	}
	return float64(r.CyclesEach) / float64(d)
}

// NewCompress7zip builds a compress-7zip-like benchmark: threads worker
// threads, runs iterations of cyclesPerThreadPerRun cycles each, separated
// by a 2 s synchronisation dip. The workload begins at startUs.
func NewCompress7zip(threads int, cyclesPerThreadPerRun int64, runs int, startUs int64) (*Bench, error) {
	return NewBench("compress-7zip", threads, cyclesPerThreadPerRun, runs, startUs, 2_000_000)
}

// NewOpenSSL builds an openssl-like benchmark: steady full-CPU signing
// work with no synchronisation dips, completing after runs × cycles work.
func NewOpenSSL(threads int, cyclesPerThreadPerRun int64, runs int, startUs int64) (*Bench, error) {
	return NewBench("openssl", threads, cyclesPerThreadPerRun, runs, startUs, 0)
}

// NewBench builds a benchmark with an explicit inter-run dip duration,
// for callers that scale whole experiments (the dip must scale with the
// run length to preserve the workload's duty cycle).
func NewBench(name string, threads int, cyclesPerThreadPerRun int64, runs int, startUs, dipUs int64) (*Bench, error) {
	return newBench(name, threads, cyclesPerThreadPerRun, runs, startUs, dipUs)
}

func newBench(name string, threads int, cycles int64, runs int, startUs, dipUs int64) (*Bench, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("workload: %s needs at least one thread", name)
	}
	if cycles <= 0 || runs <= 0 {
		return nil, fmt.Errorf("workload: %s needs positive work (cycles=%d runs=%d)", name, cycles, runs)
	}
	if startUs < 0 || dipUs < 0 {
		return nil, fmt.Errorf("workload: %s has negative timing", name)
	}
	return &Bench{
		name:                  name,
		startUs:               startUs,
		threads:               threads,
		cyclesPerThreadPerRun: cycles,
		runs:                  runs,
		dipUs:                 dipUs,
		waitDemand:            0.02,
		remaining:             make([]int64, threads),
	}, nil
}

// Name returns the benchmark name.
func (b *Bench) Name() string { return b.name }

// Done reports whether all runs completed.
func (b *Bench) Done() bool { return b.runIdx >= b.runs }

// Results returns the completed runs.
func (b *Bench) Results() []RunResult { return b.results }

// Threads returns the worker count.
func (b *Bench) Threads() int { return b.threads }

// Thread returns the Source driving worker i.
func (b *Bench) Thread(i int) Source {
	if i < 0 || i >= b.threads {
		panic(fmt.Sprintf("workload: thread index %d out of range", i))
	}
	return &benchThread{b: b, idx: i}
}

// Sources returns one Source per worker thread.
func (b *Bench) Sources() []Source {
	out := make([]Source, b.threads)
	for i := range out {
		out[i] = b.Thread(i)
	}
	return out
}

func (b *Bench) startRun(nowUs int64) {
	b.runStart = nowUs
	for i := range b.remaining {
		b.remaining[i] = b.cyclesPerThreadPerRun
	}
}

type benchThread struct {
	b   *Bench
	idx int
}

func (t *benchThread) Demand(nowUs, dtUs int64) float64 {
	b := t.b
	if nowUs < b.startUs || b.Done() {
		return 0
	}
	if !b.started {
		b.started = true
		b.startRun(nowUs)
	}
	if nowUs < b.dipUntil {
		return b.waitDemand
	}
	if b.remaining[t.idx] > 0 {
		return 1
	}
	return b.waitDemand // finished, waiting at the barrier
}

func (t *benchThread) Account(nowUs, ranUs, freqMHz int64) {
	b := t.b
	if !b.started || b.Done() || nowUs < b.dipUntil {
		return
	}
	if b.remaining[t.idx] <= 0 {
		return
	}
	b.remaining[t.idx] -= ranUs * freqMHz
	if b.remaining[t.idx] > 0 {
		return
	}
	// Barrier check: the run ends when the slowest thread finishes.
	for _, r := range b.remaining {
		if r > 0 {
			return
		}
	}
	end := nowUs + ranUs
	b.results = append(b.results, RunResult{
		Run:        b.runIdx,
		StartUs:    b.runStart,
		EndUs:      end,
		CyclesEach: b.cyclesPerThreadPerRun,
	})
	b.runIdx++
	if b.Done() {
		return
	}
	b.dipUntil = end + b.dipUs
	b.startRun(b.dipUntil)
}

// Running reports whether the benchmark has unfinished work and is not
// pausing at a synchronisation dip at the given instant — the periods in
// which a frequency shortfall counts as an SLA violation.
func (b *Bench) Running(nowUs int64) bool {
	return b.started && !b.Done() && nowUs >= b.dipUntil
}

// MeanRateMHz averages the per-run rates of all completed runs.
func (b *Bench) MeanRateMHz() float64 {
	if len(b.results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range b.results {
		sum += r.RateMHz()
	}
	return sum / float64(len(b.results))
}

// Adapter glue: Bind returns the demand and account callbacks used to
// attach a Source to a scheduler thread.
func Bind(s Source) (demand func(nowUs, dtUs int64) float64, onRun func(nowUs, ranUs, freqMHz int64)) {
	return s.Demand, s.Account
}
