package workload

import (
	"math"
	"math/rand"
)

// WebServer models an interactive service: requests arrive as a Poisson
// process and each consumes a fixed number of cycles; the thread's demand
// in a tick is the backlog it could serve. The generator is seeded and
// fully deterministic for reproducible experiments.
type WebServer struct {
	// RatePerSec is the mean request arrival rate.
	RatePerSec float64
	// CyclesPerReq is the work per request.
	CyclesPerReq int64
	// Seed makes the arrival process reproducible.
	Seed int64

	rng        *rand.Rand
	lastUs     int64
	backlog    int64 // cycles waiting to be served
	CyclesDone int64
	// ServedReqs counts fully processed requests.
	ServedReqs int64
}

// Demand implements Source: the fraction of the next tick needed to drain
// the backlog at the machine's nominal speed (saturating at 1).
func (w *WebServer) Demand(nowUs, dtUs int64) float64 {
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(w.Seed))
		w.lastUs = nowUs
	}
	// Draw arrivals for the elapsed interval (Poisson via thinning of
	// small steps is overkill; the tick counts are small enough for a
	// direct draw per tick using the Knuth method).
	elapsed := nowUs - w.lastUs
	if elapsed > 0 {
		w.lastUs = nowUs
		mean := w.RatePerSec * float64(elapsed) / 1e6
		w.backlog += int64(poisson(w.rng, mean)) * w.CyclesPerReq
	}
	if w.backlog <= 0 {
		return 0
	}
	// Serving the backlog needs backlog/freq µs; express as a fraction
	// of dt assuming a nominal 2000 MHz so bursts saturate quickly.
	need := float64(w.backlog) / 2000 / float64(dtUs)
	if need > 1 {
		return 1
	}
	return need
}

// Account implements Source.
func (w *WebServer) Account(nowUs, ranUs, freqMHz int64) {
	done := ranUs * freqMHz
	w.CyclesDone += done
	w.backlog -= done
	if w.backlog < 0 {
		w.backlog = 0
	}
	if w.CyclesPerReq > 0 {
		w.ServedReqs = w.CyclesDone / w.CyclesPerReq
	}
}

// BacklogCycles returns the queued work.
func (w *WebServer) BacklogCycles() int64 { return w.backlog }

// poisson draws a Poisson variate with the given mean (Knuth's method;
// means here are small, one tick's worth of arrivals).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := 1.0
	for k := 0; ; k++ {
		l *= rng.Float64()
		if l < math.Exp(-mean) {
			return k
		}
		if k > 10_000 {
			return k // guard against pathological means
		}
	}
}

// MapReduce models a two-phase batch job across a VM's worker threads:
// every thread performs map work, then a synchronisation (shuffle) pause,
// then a subset of the threads performs reduce work. The structure
// stresses the controller with a mid-job parallelism drop.
type MapReduce struct {
	threads      int
	mapCycles    int64
	reduceCycles int64
	reducers     int
	shuffleUs    int64
	startUs      int64

	started      bool
	mapLeft      []int64
	reduceLeft   []int64
	shuffleUntil int64
	phase        int // 0 = map, 1 = shuffle, 2 = reduce, 3 = done
	doneAtUs     int64
}

// NewMapReduce builds a job: threads map workers with mapCycles each;
// reducers of them then run reduceCycles each after a shuffle pause.
func NewMapReduce(threads int, mapCycles int64, reducers int, reduceCycles, shuffleUs, startUs int64) (*MapReduce, error) {
	if threads <= 0 || reducers <= 0 || reducers > threads {
		return nil, errInvalid("mapreduce thread/reducer counts")
	}
	if mapCycles <= 0 || reduceCycles <= 0 || shuffleUs < 0 || startUs < 0 {
		return nil, errInvalid("mapreduce work sizing")
	}
	return &MapReduce{
		threads:      threads,
		mapCycles:    mapCycles,
		reduceCycles: reduceCycles,
		reducers:     reducers,
		shuffleUs:    shuffleUs,
		startUs:      startUs,
		mapLeft:      make([]int64, threads),
		reduceLeft:   make([]int64, threads),
	}, nil
}

type errInvalid string

func (e errInvalid) Error() string { return "workload: invalid " + string(e) }

// Phase returns the current phase: 0 map, 1 shuffle, 2 reduce, 3 done.
func (m *MapReduce) Phase() int { return m.phase }

// Done reports job completion.
func (m *MapReduce) Done() bool { return m.phase == 3 }

// DoneAtUs returns the completion time (0 if not done).
func (m *MapReduce) DoneAtUs() int64 { return m.doneAtUs }

// Sources returns one Source per worker thread.
func (m *MapReduce) Sources() []Source {
	out := make([]Source, m.threads)
	for i := range out {
		out[i] = &mrThread{m: m, idx: i}
	}
	return out
}

type mrThread struct {
	m   *MapReduce
	idx int
}

func (t *mrThread) Demand(nowUs, dtUs int64) float64 {
	m := t.m
	if nowUs < m.startUs || m.Done() {
		return 0
	}
	if !m.started {
		m.started = true
		for i := range m.mapLeft {
			m.mapLeft[i] = m.mapCycles
		}
	}
	switch m.phase {
	case 0:
		if m.mapLeft[t.idx] > 0 {
			return 1
		}
		return 0.02 // barrier wait
	case 1:
		if nowUs >= m.shuffleUntil {
			m.phase = 2
			for i := 0; i < m.reducers; i++ {
				m.reduceLeft[i] = m.reduceCycles
			}
			if t.idx < m.reducers {
				return 1
			}
		}
		return 0.02
	case 2:
		if t.idx < m.reducers && m.reduceLeft[t.idx] > 0 {
			return 1
		}
		return 0.01
	}
	return 0
}

func (t *mrThread) Account(nowUs, ranUs, freqMHz int64) {
	m := t.m
	if !m.started || m.Done() {
		return
	}
	work := ranUs * freqMHz
	switch m.phase {
	case 0:
		if m.mapLeft[t.idx] <= 0 {
			return
		}
		m.mapLeft[t.idx] -= work
		if m.mapLeft[t.idx] > 0 {
			return
		}
		for _, left := range m.mapLeft {
			if left > 0 {
				return
			}
		}
		m.phase = 1
		m.shuffleUntil = nowUs + ranUs + m.shuffleUs
	case 2:
		if t.idx >= m.reducers || m.reduceLeft[t.idx] <= 0 {
			return
		}
		m.reduceLeft[t.idx] -= work
		if m.reduceLeft[t.idx] > 0 {
			return
		}
		for i := 0; i < m.reducers; i++ {
			if m.reduceLeft[i] > 0 {
				return
			}
		}
		m.phase = 3
		m.doneAtUs = nowUs + ranUs
	}
}
