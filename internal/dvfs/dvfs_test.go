package dvfs

import (
	"testing"
	"testing/quick"
)

func policy() Policy {
	return Policy{MinMHz: 1200, MaxMHz: 2400, TurboMHz: 3100, JitterMHz: 0}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, GovernorSchedutil, policy()); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(4, "turbo-boost", policy()); err == nil {
		t.Fatal("unknown governor accepted")
	}
	bad := policy()
	bad.MaxMHz = 100
	if _, err := New(4, GovernorSchedutil, bad); err == nil {
		t.Fatal("inverted envelope accepted")
	}
	badTurbo := policy()
	badTurbo.TurboMHz = 2000
	if _, err := New(4, GovernorSchedutil, badTurbo); err == nil {
		t.Fatal("turbo below max accepted")
	}
}

func TestPerformanceGovernorPinned(t *testing.T) {
	m, err := New(2, GovernorPerformance, policy())
	if err != nil {
		t.Fatal(err)
	}
	if m.FreqMHz(0) != 2400 {
		t.Fatalf("idle performance freq = %d, want 2400", m.FreqMHz(0))
	}
	m.Update([]float64{0, 0})
	if m.FreqMHz(0) != 2400 || m.FreqMHz(1) != 2400 {
		t.Fatal("performance governor moved off max")
	}
}

func TestPowersavePinned(t *testing.T) {
	m, _ := New(1, GovernorPowersave, policy())
	m.Update([]float64{1})
	if m.FreqMHz(0) != 1200 {
		t.Fatalf("powersave freq = %d, want 1200", m.FreqMHz(0))
	}
}

func TestSchedutilTracksUtilisation(t *testing.T) {
	m, _ := New(1, GovernorSchedutil, policy())
	m.Update([]float64{0})
	if m.FreqMHz(0) != 1200 {
		t.Fatalf("idle freq = %d, want min 1200", m.FreqMHz(0))
	}
	m.Update([]float64{0.5})
	// 1.25 · 2400 · 0.5 = 1500
	if m.FreqMHz(0) != 1500 {
		t.Fatalf("50%% util freq = %d, want 1500", m.FreqMHz(0))
	}
	// Full load on a multi-core machine clamps to all-core max.
	m4, _ := New(4, GovernorSchedutil, policy())
	m4.Update([]float64{1, 1, 1, 1})
	for c := 0; c < 4; c++ {
		if m4.FreqMHz(c) != 2400 {
			t.Fatalf("core %d = %d, want 2400 (all-core max)", c, m4.FreqMHz(c))
		}
	}
}

func TestTurboSingleCore(t *testing.T) {
	m, _ := New(4, GovernorSchedutil, policy())
	m.Update([]float64{1, 0, 0, 0})
	if m.FreqMHz(0) != 3100 {
		t.Fatalf("lone busy core = %d, want turbo 3100", m.FreqMHz(0))
	}
	// With all cores busy, turbo must not engage.
	m.Update([]float64{1, 1, 1, 1})
	if m.FreqMHz(0) != 2400 {
		t.Fatalf("all-core busy = %d, want 2400", m.FreqMHz(0))
	}
}

func TestJitterBoundedAndNonZero(t *testing.T) {
	p := policy()
	p.JitterMHz = 40
	m, _ := New(8, GovernorSchedutil, p)
	util := make([]float64, 8)
	for i := range util {
		util[i] = 1
	}
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		m.Update(util)
		for c := 0; c < 8; c++ {
			f := m.FreqMHz(c)
			if f < 2400-40 || f > 2400 {
				t.Fatalf("jittered freq %d outside [2360, 2400]", f)
			}
			seen[f] = true
		}
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant frequency")
	}
	if v := m.VarianceMHz(); v <= 0 || v > 40*40 {
		t.Fatalf("variance %.1f outside (0, 1600]", v)
	}
}

func TestMeanAndVarianceNoJitter(t *testing.T) {
	m, _ := New(4, GovernorPerformance, policy())
	if m.MeanMHz() != 2400 {
		t.Fatalf("mean = %f, want 2400", m.MeanMHz())
	}
	if m.VarianceMHz() != 0 {
		t.Fatalf("variance = %f, want 0", m.VarianceMHz())
	}
}

func TestFreqKHzUnits(t *testing.T) {
	m, _ := New(1, GovernorPerformance, policy())
	if m.FreqKHz(0) != 2_400_000 {
		t.Fatalf("FreqKHz = %d, want 2400000", m.FreqKHz(0))
	}
}

// Property: for any utilisation vector the frequency stays inside
// [min, turbo] and is monotone in utilisation for schedutil.
func TestQuickEnvelope(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			raw = []uint8{0}
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		p := Policy{MinMHz: 800, MaxMHz: 2000, TurboMHz: 2500, JitterMHz: 25}
		m, err := New(len(raw), GovernorSchedutil, p)
		if err != nil {
			return false
		}
		util := make([]float64, len(raw))
		for i, r := range raw {
			util[i] = float64(r) / 255
		}
		m.Update(util)
		for c := range util {
			f := m.FreqMHz(c)
			if f < p.MinMHz || f > p.TurboMHz {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOndemandGovernor(t *testing.T) {
	m, err := New(2, GovernorOndemand, policy())
	if err != nil {
		t.Fatal(err)
	}
	// Above 80% load: straight to all-core max.
	m.Update([]float64{0.9, 0.9})
	if m.FreqMHz(0) != 2400 {
		t.Fatalf("high-load ondemand = %d, want 2400", m.FreqMHz(0))
	}
	// Mid load: interpolated between min and max.
	m.Update([]float64{0.5, 0.5})
	f := m.FreqMHz(0)
	if f <= 1200 || f >= 2400 {
		t.Fatalf("mid-load ondemand = %d, want interpolated", f)
	}
	if m.Governor() != GovernorOndemand {
		t.Fatalf("Governor = %q", m.Governor())
	}
	if m.Policy().MaxMHz != 2400 {
		t.Fatalf("Policy = %+v", m.Policy())
	}
}

func TestUpdatePanicsOnWrongLength(t *testing.T) {
	m, _ := New(2, GovernorSchedutil, policy())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length utilisation accepted")
		}
	}()
	m.Update([]float64{1})
}
