// Package dvfs models per-core dynamic voltage and frequency scaling
// (DVFS) governors, exposing the current frequency of each core the way
// the Linux cpufreq subsystem does through
// /sys/devices/system/cpu/cpuN/cpufreq/scaling_cur_freq.
//
// The paper's experiments observe that under load all cores of a node run
// at approximately the same frequency (variance of 16–150 MHz); the
// schedutil-like governor reproduces that: frequency follows utilisation
// with a small deterministic jitter so the estimate read by the controller
// has realistic noise.
package dvfs

import "fmt"

// Governor names mirror the Linux cpufreq governors that matter here.
const (
	GovernorPerformance = "performance"
	GovernorPowersave   = "powersave"
	GovernorSchedutil   = "schedutil"
	GovernorOndemand    = "ondemand"
)

// Policy describes the frequency envelope of a core.
type Policy struct {
	MinMHz int64 // lowest operating point
	MaxMHz int64 // sustained all-core maximum (the paper's F_MAX)
	// TurboMHz is the single-core opportunistic maximum. Zero means no
	// turbo; turbo engages when few cores are busy.
	TurboMHz int64
	// JitterMHz is the amplitude of the deterministic per-core
	// frequency jitter applied under load, reproducing the small
	// variance the paper reports. Zero disables jitter.
	JitterMHz int64
}

// Validate checks that the policy is self-consistent.
func (p Policy) Validate() error {
	if p.MinMHz <= 0 || p.MaxMHz < p.MinMHz {
		return fmt.Errorf("dvfs: invalid envelope [%d, %d] MHz", p.MinMHz, p.MaxMHz)
	}
	if p.TurboMHz != 0 && p.TurboMHz < p.MaxMHz {
		return fmt.Errorf("dvfs: turbo %d below max %d", p.TurboMHz, p.MaxMHz)
	}
	return nil
}

// Model tracks the frequency of every core of a machine.
type Model struct {
	policy   Policy
	governor string
	freqMHz  []int64
	step     int64
}

// New creates a frequency model for the given core count. All cores start
// at the governor's idle operating point.
func New(cores int, governor string, policy Policy) (*Model, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("dvfs: cores must be positive")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	switch governor {
	case GovernorPerformance, GovernorPowersave, GovernorSchedutil, GovernorOndemand:
	default:
		return nil, fmt.Errorf("dvfs: unknown governor %q", governor)
	}
	m := &Model{policy: policy, governor: governor, freqMHz: make([]int64, cores)}
	for i := range m.freqMHz {
		m.freqMHz[i] = m.idleFreq()
	}
	return m, nil
}

func (m *Model) idleFreq() int64 {
	if m.governor == GovernorPerformance {
		return m.policy.MaxMHz
	}
	return m.policy.MinMHz
}

// Governor returns the active governor name.
func (m *Model) Governor() string { return m.governor }

// Policy returns the frequency envelope.
func (m *Model) Policy() Policy { return m.policy }

// FreqMHz returns the current frequency of core c in MHz.
func (m *Model) FreqMHz(c int) int64 { return m.freqMHz[c] }

// FreqKHz returns the current frequency of core c in kHz, the unit
// scaling_cur_freq uses.
func (m *Model) FreqKHz(c int) int64 { return m.freqMHz[c] * 1000 }

// Cores returns the number of cores.
func (m *Model) Cores() int { return len(m.freqMHz) }

// Update recomputes each core's frequency from its utilisation over the
// last scheduling tick (values in [0,1]). It implements the selected
// governor and applies turbo and jitter.
func (m *Model) Update(coreUtil []float64) {
	if len(coreUtil) != len(m.freqMHz) {
		panic("dvfs: utilisation slice has wrong length")
	}
	m.step++
	busy := 0
	for _, u := range coreUtil {
		if u > 0.5 {
			busy++
		}
	}
	for c, u := range coreUtil {
		var f int64
		switch m.governor {
		case GovernorPerformance:
			f = m.policy.MaxMHz
		case GovernorPowersave:
			f = m.policy.MinMHz
		case GovernorSchedutil:
			// Linux schedutil: f = 1.25 · f_max · util, clamped.
			f = int64(1.25 * float64(m.policy.MaxMHz) * u)
		case GovernorOndemand:
			// Step up aggressively above 80 % load, decay otherwise.
			if u > 0.8 {
				f = m.policy.MaxMHz
			} else {
				f = m.policy.MinMHz +
					int64(float64(m.policy.MaxMHz-m.policy.MinMHz)*u)
			}
		}
		if f < m.policy.MinMHz {
			f = m.policy.MinMHz
		}
		max := m.policy.MaxMHz
		// Turbo: when at most a quarter of the cores are busy, busy
		// cores may exceed the all-core maximum.
		if m.policy.TurboMHz > max && busy*4 <= len(m.freqMHz) && u > 0.9 {
			max = m.policy.TurboMHz
			f = max
		}
		if f > max {
			f = max
		}
		if m.policy.JitterMHz > 0 && u > 0.05 && f > m.policy.MinMHz {
			// Deterministic triangle-wave jitter, phase-shifted
			// per core.
			phase := (m.step + int64(c)*7) % 8
			j := m.policy.JitterMHz
			delta := (phase - 4) * j / 4
			f += delta
			if f > max {
				f = max
			}
			if f < m.policy.MinMHz {
				f = m.policy.MinMHz
			}
		}
		m.freqMHz[c] = f
	}
}

// MeanMHz returns the average core frequency.
func (m *Model) MeanMHz() float64 {
	var sum int64
	for _, f := range m.freqMHz {
		sum += f
	}
	return float64(sum) / float64(len(m.freqMHz))
}

// VarianceMHz returns the population variance of core frequencies, the
// statistic the paper reports (16–150 MHz depending on node and load).
func (m *Model) VarianceMHz() float64 {
	mean := m.MeanMHz()
	var acc float64
	for _, f := range m.freqMHz {
		d := float64(f) - mean
		acc += d * d
	}
	return acc / float64(len(m.freqMHz))
}
