package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func model() PowerModel {
	return PowerModel{IdleWatts: 100, MaxWatts: 250, Alpha: 1, Gamma: 1, MaxMHz: 2400}
}

func TestValidate(t *testing.T) {
	cases := []PowerModel{
		{IdleWatts: -1, MaxWatts: 10, Alpha: 1, Gamma: 1, MaxMHz: 100},
		{IdleWatts: 50, MaxWatts: 10, Alpha: 1, Gamma: 1, MaxMHz: 100},
		{IdleWatts: 1, MaxWatts: 10, Alpha: 0, Gamma: 1, MaxMHz: 100},
		{IdleWatts: 1, MaxWatts: 10, Alpha: 1, Gamma: -1, MaxMHz: 100},
		{IdleWatts: 1, MaxWatts: 10, Alpha: 1, Gamma: 1, MaxMHz: 0},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: invalid model accepted", i)
		}
	}
	if err := model().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestPowerEndpoints(t *testing.T) {
	m := model()
	if p := m.Power(0, 2400); p != 100 {
		t.Fatalf("idle power = %g, want 100", p)
	}
	if p := m.Power(1, 2400); p != 250 {
		t.Fatalf("max power = %g, want 250", p)
	}
	if p := m.Power(0.5, 2400); p != 175 {
		t.Fatalf("half-load linear power = %g, want 175", p)
	}
}

func TestPowerClamps(t *testing.T) {
	m := model()
	if p := m.Power(-0.5, 2400); p != 100 {
		t.Fatalf("negative util power = %g, want 100", p)
	}
	if p := m.Power(2, 5000); p != 250 {
		t.Fatalf("overload power = %g, want 250", p)
	}
}

func TestFrequencyTerm(t *testing.T) {
	m := model()
	m.Gamma = 2
	got := m.Power(1, 1200)
	want := 100 + 150*0.25 // (1200/2400)^2 = 0.25
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("quadratic freq power = %g, want %g", got, want)
	}
}

func TestMeterIntegration(t *testing.T) {
	mt, err := NewMeter(model())
	if err != nil {
		t.Fatal(err)
	}
	// 1 s at full load: 250 J.
	for i := 0; i < 100; i++ {
		mt.Observe(1, 2400, 10_000)
	}
	if math.Abs(mt.Joules()-250) > 1e-6 {
		t.Fatalf("Joules = %g, want 250", mt.Joules())
	}
	if math.Abs(mt.WattHours()-250.0/3600) > 1e-9 {
		t.Fatalf("WattHours = %g", mt.WattHours())
	}
}

func TestNewMeterRejectsInvalid(t *testing.T) {
	if _, err := NewMeter(PowerModel{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

// Property: power is monotone in utilisation and bounded by the envelope.
func TestQuickPowerMonotoneBounded(t *testing.T) {
	m := PowerModel{IdleWatts: 80, MaxWatts: 300, Alpha: 1.2, Gamma: 2, MaxMHz: 3000}
	f := func(u1, u2 uint16, fr uint16) bool {
		a := float64(u1) / 65535
		b := float64(u2) / 65535
		if a > b {
			a, b = b, a
		}
		freq := float64(fr%3000) + 1
		pa, pb := m.Power(a, freq), m.Power(b, freq)
		return pa <= pb+1e-9 && pa >= m.IdleWatts-1e-9 && pb <= m.MaxWatts+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
