// Package energy provides a node power model and an energy accumulator.
//
// The paper motivates virtual frequency capping with energy savings from
// shutting down unused nodes and from running CPUs efficiently. The model
// here is the standard linear-utilisation model extended with a frequency
// term:
//
//	P(u, f) = P_idle + (P_max − P_idle) · u^α · (f / f_max)^γ
//
// With α = 1, γ = 1 this degenerates to the widely used linear model; γ≈2
// approximates the quadratic voltage scaling of real CPUs.
package energy

import (
	"fmt"
	"math"
)

// PowerModel maps utilisation and frequency to electrical power.
type PowerModel struct {
	IdleWatts float64 // power at zero utilisation
	MaxWatts  float64 // power at full utilisation and max frequency
	Alpha     float64 // utilisation exponent (1 = linear)
	Gamma     float64 // frequency exponent (2 ≈ DVFS quadratic)
	MaxMHz    int64   // frequency at which MaxWatts is reached
}

// Validate checks model consistency.
func (m PowerModel) Validate() error {
	if m.IdleWatts < 0 || m.MaxWatts < m.IdleWatts {
		return fmt.Errorf("energy: invalid power range [%g, %g]", m.IdleWatts, m.MaxWatts)
	}
	if m.Alpha <= 0 || m.Gamma < 0 {
		return fmt.Errorf("energy: invalid exponents α=%g γ=%g", m.Alpha, m.Gamma)
	}
	if m.MaxMHz <= 0 {
		return fmt.Errorf("energy: MaxMHz must be positive")
	}
	return nil
}

// Power returns the instantaneous power draw in watts for machine-wide
// utilisation u in [0,1] at mean core frequency fMHz.
func (m PowerModel) Power(u float64, fMHz float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	fr := fMHz / float64(m.MaxMHz)
	if fr < 0 {
		fr = 0
	}
	if fr > 1 {
		fr = 1
	}
	return m.IdleWatts + (m.MaxWatts-m.IdleWatts)*math.Pow(u, m.Alpha)*math.Pow(fr, m.Gamma)
}

// Meter integrates power over simulated time.
type Meter struct {
	model  PowerModel
	joules float64
}

// NewMeter returns a meter for the given model.
func NewMeter(model PowerModel) (*Meter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: model}, nil
}

// Observe accounts dtUs microseconds at utilisation u and frequency fMHz.
func (m *Meter) Observe(u float64, fMHz float64, dtUs int64) {
	m.joules += m.model.Power(u, fMHz) * float64(dtUs) / 1e6
}

// Joules returns the accumulated energy.
func (m *Meter) Joules() float64 { return m.joules }

// WattHours returns the accumulated energy in Wh.
func (m *Meter) WattHours() float64 { return m.joules / 3600 }

// Model returns the underlying power model.
func (m *Meter) Model() PowerModel { return m.model }
