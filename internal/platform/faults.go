package platform

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("platform: injected fault")

// FaultSite names one Host call site for fault injection.
type FaultSite string

// The injectable call sites, one per Host method.
const (
	SiteListVMs     FaultSite = "ListVMs"
	SiteUsage       FaultSite = "UsageUs"
	SiteSetMax      FaultSite = "SetMax"
	SiteBatchSetMax FaultSite = "BatchSetMax"
	SiteClearMax    FaultSite = "ClearMax"
	SiteReadMax     FaultSite = "ReadMax"
	SiteSetBurst    FaultSite = "SetBurst"
	SiteThreadID    FaultSite = "ThreadID"
	SiteLastCPU     FaultSite = "LastCPU"
	SiteCoreFreq    FaultSite = "CoreFreqMHz"
)

// Sites lists every injectable call site.
var Sites = []FaultSite{
	SiteListVMs, SiteUsage, SiteSetMax, SiteBatchSetMax, SiteClearMax,
	SiteReadMax, SiteSetBurst, SiteThreadID, SiteLastCPU, SiteCoreFreq,
}

// SiteByName resolves a call-site name (as spelled in the constants).
func SiteByName(name string) (FaultSite, error) {
	for _, s := range Sites {
		if string(s) == name {
			return s, nil
		}
	}
	valid := make([]string, len(Sites))
	for i, s := range Sites {
		valid[i] = string(s)
	}
	return "", fmt.Errorf("platform: unknown fault site %q (valid sites: %s)",
		name, strings.Join(valid, ", "))
}

// FaultPlan describes when one call site fails or stalls. Combine the
// fields freely — a call fails when any armed error condition matches,
// and is independently delayed when the latency condition matches. A
// plan that can never fire (no error condition and no delay armed) is
// rejected by Plan instead of being silently inert.
type FaultPlan struct {
	// Rate is the independent probability each call fails, in [0, 1].
	Rate float64
	// Count fails the next Count matching calls deterministically
	// (a transient fault: exhausted plans stop firing).
	Count int
	// Persistent fails every matching call until the plan is cleared
	// (a dead vCPU thread or a vanished cgroup).
	Persistent bool
	// Err is the error injected; nil means ErrInjected.
	Err error

	// DelayRate is the independent probability each matching call is
	// additionally delayed, in [0, 1]. Latency and errors are separate
	// conditions: a plan may stall calls without failing them (a slow
	// cgroupfs) or fail them slowly (a timing-out read).
	DelayRate float64
	// DelayUs bounds the injected delay: each fired delay is drawn
	// uniformly from [DelayUs/2, DelayUs] microseconds, deterministic
	// from the host seed. Required (positive) when DelayRate > 0.
	DelayUs int64

	// Match restricts VM-scoped sites (UsageUs, SetMax, ClearMax,
	// SetBurst, ThreadID) to particular vCPUs; nil matches all calls.
	// Sites without a VM operand ignore it.
	Match func(vm string, vcpu int) bool
}

// Validate checks the plan's fields for consistency and for at least one
// armed condition, so a plan that can never fire is an error instead of
// a silent no-op.
func (p FaultPlan) Validate() error {
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("platform: fault plan rate %g outside [0, 1]", p.Rate)
	}
	if p.Count < 0 {
		return fmt.Errorf("platform: fault plan count %d is negative", p.Count)
	}
	if p.DelayRate < 0 || p.DelayRate > 1 {
		return fmt.Errorf("platform: fault plan delay rate %g outside [0, 1]", p.DelayRate)
	}
	if p.DelayUs < 0 {
		return fmt.Errorf("platform: fault plan delay %d us is negative", p.DelayUs)
	}
	if p.DelayRate > 0 && p.DelayUs <= 0 {
		return fmt.Errorf("platform: fault plan delay rate %g needs a positive DelayUs bound", p.DelayRate)
	}
	if p.DelayRate == 0 && p.DelayUs > 0 {
		return fmt.Errorf("platform: fault plan DelayUs %d needs a positive DelayRate", p.DelayUs)
	}
	if !p.Persistent && p.Count == 0 && p.Rate == 0 && p.DelayRate == 0 {
		return fmt.Errorf("platform: fault plan can never fire (no rate, count, persistence or delay armed)")
	}
	return nil
}

// FaultyHost wraps a Host and injects faults per call site: the test
// double for vCPU threads dying mid-read, cgroups vanishing between
// enumeration and access, noisy /proc reads, and slow cgroupfs calls.
// It is safe for concurrent use.
type FaultyHost struct {
	inner Host

	mu       sync.Mutex
	rng      *rand.Rand
	plans    map[FaultSite]*FaultPlan
	injected map[FaultSite]int
	delayed  map[FaultSite]int
	calls    map[FaultSite]int

	// met, when armed via ArmMetrics, mirrors the per-site tallies into
	// pre-interned counters; nil records nothing.
	met map[FaultSite]*siteMetrics

	// sleep stalls the calling goroutine for an injected delay;
	// replaceable by tests that only want to observe the decision.
	sleep func(time.Duration)
}

// WithFaults wraps h; seed drives the Rate/DelayRate randomness and the
// delay draws so fault and latency sequences are reproducible.
func WithFaults(h Host, seed int64) *FaultyHost {
	return &FaultyHost{
		inner:    h,
		rng:      rand.New(rand.NewSource(seed)),
		plans:    map[FaultSite]*FaultPlan{},
		injected: map[FaultSite]int{},
		delayed:  map[FaultSite]int{},
		calls:    map[FaultSite]int{},
		sleep:    time.Sleep,
	}
}

// Inner returns the wrapped host.
func (f *FaultyHost) Inner() Host { return f.inner }

// Plan arms a fault plan on one call site, replacing any previous plan.
// The plan is validated first: a plan that can never fire (or with
// out-of-range fields) is rejected.
func (f *FaultyHost) Plan(site FaultSite, p FaultPlan) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%s: %w", site, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[site] = &p
	return nil
}

// MustPlan arms a plan and panics on a rejected one — the test-site
// shorthand for plans built from literals.
func (f *FaultyHost) MustPlan(site FaultSite, p FaultPlan) {
	if err := f.Plan(site, p); err != nil {
		panic(err)
	}
}

// Clear disarms the plan on one call site.
func (f *FaultyHost) Clear(site FaultSite) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.plans, site)
}

// ClearAll disarms every plan.
func (f *FaultyHost) ClearAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans = map[FaultSite]*FaultPlan{}
}

// Injected returns how many faults were injected at a site.
func (f *FaultyHost) Injected(site FaultSite) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[site]
}

// Delayed returns how many calls were artificially delayed at a site.
func (f *FaultyHost) Delayed(site FaultSite) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayed[site]
}

// Calls returns how many calls reached a site (injected or not).
func (f *FaultyHost) Calls(site FaultSite) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[site]
}

// fail decides whether this call is delayed and/or fails. The delay
// decision happens under the lock (so the rng sequence stays
// reproducible) but the sleep itself happens in the caller, outside the
// lock, so concurrent callers stall independently instead of
// serialising on the mutex.
func (f *FaultyHost) fail(site FaultSite, vm string, vcpu int) error {
	delay, err := f.decide(site, vm, vcpu)
	if delay > 0 {
		f.sleep(delay)
	}
	return err
}

// decide is the locked half of fail.
func (f *FaultyHost) decide(site FaultSite, vm string, vcpu int) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[site]++
	m := f.met[site]
	m.recordCall()
	p := f.plans[site]
	if p == nil {
		return 0, nil
	}
	if p.Match != nil && !p.Match(vm, vcpu) {
		return 0, nil
	}
	var delay time.Duration
	if p.DelayRate > 0 && f.rng.Float64() < p.DelayRate {
		// Uniform in [DelayUs/2, DelayUs]: bounded above by the plan,
		// bounded below so a fired delay is never a no-op.
		half := p.DelayUs / 2
		us := half + f.rng.Int63n(p.DelayUs-half+1)
		delay = time.Duration(us) * time.Microsecond
		f.delayed[site]++
		m.recordDelay()
	}
	fire := p.Persistent
	if !fire && p.Count > 0 {
		p.Count--
		fire = true
	}
	if !fire && p.Rate > 0 && f.rng.Float64() < p.Rate {
		fire = true
	}
	if !fire {
		return delay, nil
	}
	f.injected[site]++
	m.recordInjected()
	if p.Err != nil {
		return delay, fmt.Errorf("%s %s/vcpu%d: %w", site, vm, vcpu, p.Err)
	}
	return delay, fmt.Errorf("%s %s/vcpu%d: %w", site, vm, vcpu, ErrInjected)
}

// Node implements Host (never injected: node info is static).
func (f *FaultyHost) Node() NodeInfo { return f.inner.Node() }

// ListVMs implements Host.
func (f *FaultyHost) ListVMs() ([]VMInfo, error) {
	if err := f.fail(SiteListVMs, "", -1); err != nil {
		return nil, err
	}
	return f.inner.ListVMs()
}

// UsageUs implements Host.
func (f *FaultyHost) UsageUs(vm string, vcpu int) (int64, error) {
	if err := f.fail(SiteUsage, vm, vcpu); err != nil {
		return 0, err
	}
	return f.inner.UsageUs(vm, vcpu)
}

// SetMax implements Host.
func (f *FaultyHost) SetMax(vm string, vcpu int, quotaUs, periodUs int64) error {
	if err := f.fail(SiteSetMax, vm, vcpu); err != nil {
		return err
	}
	return f.inner.SetMax(vm, vcpu, quotaUs, periodUs)
}

// BatchSetMax implements BatchQuotaWriter. Each entry is injected
// independently: first at SiteBatchSetMax, then through the regular
// SetMax path, so SiteSetMax plans keep firing for batched writes (a
// batch is semantically N quota writes). Entries forward one by one via
// SetMax rather than the inner host's own batch capability — this keeps
// per-entry injection exact and lets the wrapper add the capability to
// any host, matching the controller's per-entry fault accounting.
func (f *FaultyHost) BatchSetMax(vm string, quotas []VCPUQuota) error {
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		q.Err = f.fail(SiteBatchSetMax, vm, q.VCPU)
		if q.Err == nil {
			q.Err = f.SetMax(vm, q.VCPU, q.QuotaUs, q.PeriodUs)
		}
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

// ClearMax implements Host.
func (f *FaultyHost) ClearMax(vm string, vcpu int) error {
	if err := f.fail(SiteClearMax, vm, vcpu); err != nil {
		return err
	}
	return f.inner.ClearMax(vm, vcpu)
}

// ReadMax implements QuotaReader, forwarding to the inner host when it
// supports quota reads.
func (f *FaultyHost) ReadMax(vm string, vcpu int) (int64, int64, error) {
	if err := f.fail(SiteReadMax, vm, vcpu); err != nil {
		return 0, 0, err
	}
	qr, ok := f.inner.(QuotaReader)
	if !ok {
		return 0, 0, fmt.Errorf("platform: host %T cannot read quotas", f.inner)
	}
	return qr.ReadMax(vm, vcpu)
}

// SetBurst implements Host.
func (f *FaultyHost) SetBurst(vm string, vcpu int, burstUs int64) error {
	if err := f.fail(SiteSetBurst, vm, vcpu); err != nil {
		return err
	}
	return f.inner.SetBurst(vm, vcpu, burstUs)
}

// ThreadID implements Host.
func (f *FaultyHost) ThreadID(vm string, vcpu int) (int, error) {
	if err := f.fail(SiteThreadID, vm, vcpu); err != nil {
		return 0, err
	}
	return f.inner.ThreadID(vm, vcpu)
}

// LastCPU implements Host.
func (f *FaultyHost) LastCPU(tid int) (int, error) {
	if err := f.fail(SiteLastCPU, "", tid); err != nil {
		return 0, err
	}
	return f.inner.LastCPU(tid)
}

// CoreFreqMHz implements Host.
func (f *FaultyHost) CoreFreqMHz(core int) (int64, error) {
	if err := f.fail(SiteCoreFreq, "", core); err != nil {
		return 0, err
	}
	return f.inner.CoreFreqMHz(core)
}
