package platform

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("platform: injected fault")

// FaultSite names one Host call site for fault injection.
type FaultSite string

// The injectable call sites, one per Host method.
const (
	SiteListVMs     FaultSite = "ListVMs"
	SiteUsage       FaultSite = "UsageUs"
	SiteSetMax      FaultSite = "SetMax"
	SiteBatchSetMax FaultSite = "BatchSetMax"
	SiteClearMax    FaultSite = "ClearMax"
	SiteReadMax     FaultSite = "ReadMax"
	SiteSetBurst    FaultSite = "SetBurst"
	SiteThreadID    FaultSite = "ThreadID"
	SiteLastCPU     FaultSite = "LastCPU"
	SiteCoreFreq    FaultSite = "CoreFreqMHz"
)

// Sites lists every injectable call site.
var Sites = []FaultSite{
	SiteListVMs, SiteUsage, SiteSetMax, SiteBatchSetMax, SiteClearMax,
	SiteReadMax, SiteSetBurst, SiteThreadID, SiteLastCPU, SiteCoreFreq,
}

// SiteByName resolves a call-site name (as spelled in the constants).
func SiteByName(name string) (FaultSite, error) {
	for _, s := range Sites {
		if string(s) == name {
			return s, nil
		}
	}
	return "", fmt.Errorf("platform: unknown fault site %q", name)
}

// FaultPlan describes when one call site fails. The zero value never
// fires; combine the fields freely — a call fails when any armed
// condition matches.
type FaultPlan struct {
	// Rate is the independent probability each call fails, in [0, 1].
	Rate float64
	// Count fails the next Count matching calls deterministically
	// (a transient fault: exhausted plans stop firing).
	Count int
	// Persistent fails every matching call until the plan is cleared
	// (a dead vCPU thread or a vanished cgroup).
	Persistent bool
	// Err is the error injected; nil means ErrInjected.
	Err error
	// Match restricts VM-scoped sites (UsageUs, SetMax, ClearMax,
	// SetBurst, ThreadID) to particular vCPUs; nil matches all calls.
	// Sites without a VM operand ignore it.
	Match func(vm string, vcpu int) bool
}

// FaultyHost wraps a Host and injects faults per call site: the test
// double for vCPU threads dying mid-read, cgroups vanishing between
// enumeration and access, and noisy /proc reads. It is safe for
// concurrent use.
type FaultyHost struct {
	inner Host

	mu       sync.Mutex
	rng      *rand.Rand
	plans    map[FaultSite]*FaultPlan
	injected map[FaultSite]int
	calls    map[FaultSite]int
}

// WithFaults wraps h; seed drives the Rate randomness so fault sequences
// are reproducible.
func WithFaults(h Host, seed int64) *FaultyHost {
	return &FaultyHost{
		inner:    h,
		rng:      rand.New(rand.NewSource(seed)),
		plans:    map[FaultSite]*FaultPlan{},
		injected: map[FaultSite]int{},
		calls:    map[FaultSite]int{},
	}
}

// Inner returns the wrapped host.
func (f *FaultyHost) Inner() Host { return f.inner }

// Plan arms a fault plan on one call site, replacing any previous plan.
func (f *FaultyHost) Plan(site FaultSite, p FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[site] = &p
}

// Clear disarms the plan on one call site.
func (f *FaultyHost) Clear(site FaultSite) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.plans, site)
}

// ClearAll disarms every plan.
func (f *FaultyHost) ClearAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans = map[FaultSite]*FaultPlan{}
}

// Injected returns how many faults were injected at a site.
func (f *FaultyHost) Injected(site FaultSite) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[site]
}

// Calls returns how many calls reached a site (injected or not).
func (f *FaultyHost) Calls(site FaultSite) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[site]
}

// fail decides whether this call fails, returning the injected error.
func (f *FaultyHost) fail(site FaultSite, vm string, vcpu int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[site]++
	p := f.plans[site]
	if p == nil {
		return nil
	}
	if p.Match != nil && !p.Match(vm, vcpu) {
		return nil
	}
	fire := p.Persistent
	if !fire && p.Count > 0 {
		p.Count--
		fire = true
	}
	if !fire && p.Rate > 0 && f.rng.Float64() < p.Rate {
		fire = true
	}
	if !fire {
		return nil
	}
	f.injected[site]++
	if p.Err != nil {
		return fmt.Errorf("%s %s/vcpu%d: %w", site, vm, vcpu, p.Err)
	}
	return fmt.Errorf("%s %s/vcpu%d: %w", site, vm, vcpu, ErrInjected)
}

// Node implements Host (never injected: node info is static).
func (f *FaultyHost) Node() NodeInfo { return f.inner.Node() }

// ListVMs implements Host.
func (f *FaultyHost) ListVMs() ([]VMInfo, error) {
	if err := f.fail(SiteListVMs, "", -1); err != nil {
		return nil, err
	}
	return f.inner.ListVMs()
}

// UsageUs implements Host.
func (f *FaultyHost) UsageUs(vm string, vcpu int) (int64, error) {
	if err := f.fail(SiteUsage, vm, vcpu); err != nil {
		return 0, err
	}
	return f.inner.UsageUs(vm, vcpu)
}

// SetMax implements Host.
func (f *FaultyHost) SetMax(vm string, vcpu int, quotaUs, periodUs int64) error {
	if err := f.fail(SiteSetMax, vm, vcpu); err != nil {
		return err
	}
	return f.inner.SetMax(vm, vcpu, quotaUs, periodUs)
}

// BatchSetMax implements BatchQuotaWriter. Each entry is injected
// independently: first at SiteBatchSetMax, then through the regular
// SetMax path, so SiteSetMax plans keep firing for batched writes (a
// batch is semantically N quota writes). Entries forward one by one via
// SetMax rather than the inner host's own batch capability — this keeps
// per-entry injection exact and lets the wrapper add the capability to
// any host, matching the controller's per-entry fault accounting.
func (f *FaultyHost) BatchSetMax(vm string, quotas []VCPUQuota) error {
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		q.Err = f.fail(SiteBatchSetMax, vm, q.VCPU)
		if q.Err == nil {
			q.Err = f.SetMax(vm, q.VCPU, q.QuotaUs, q.PeriodUs)
		}
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

// ClearMax implements Host.
func (f *FaultyHost) ClearMax(vm string, vcpu int) error {
	if err := f.fail(SiteClearMax, vm, vcpu); err != nil {
		return err
	}
	return f.inner.ClearMax(vm, vcpu)
}

// ReadMax implements QuotaReader, forwarding to the inner host when it
// supports quota reads.
func (f *FaultyHost) ReadMax(vm string, vcpu int) (int64, int64, error) {
	if err := f.fail(SiteReadMax, vm, vcpu); err != nil {
		return 0, 0, err
	}
	qr, ok := f.inner.(QuotaReader)
	if !ok {
		return 0, 0, fmt.Errorf("platform: host %T cannot read quotas", f.inner)
	}
	return qr.ReadMax(vm, vcpu)
}

// SetBurst implements Host.
func (f *FaultyHost) SetBurst(vm string, vcpu int, burstUs int64) error {
	if err := f.fail(SiteSetBurst, vm, vcpu); err != nil {
		return err
	}
	return f.inner.SetBurst(vm, vcpu, burstUs)
}

// ThreadID implements Host.
func (f *FaultyHost) ThreadID(vm string, vcpu int) (int, error) {
	if err := f.fail(SiteThreadID, vm, vcpu); err != nil {
		return 0, err
	}
	return f.inner.ThreadID(vm, vcpu)
}

// LastCPU implements Host.
func (f *FaultyHost) LastCPU(tid int) (int, error) {
	if err := f.fail(SiteLastCPU, "", tid); err != nil {
		return 0, err
	}
	return f.inner.LastCPU(tid)
}

// CoreFreqMHz implements Host.
func (f *FaultyHost) CoreFreqMHz(core int) (int64, error) {
	if err := f.fail(SiteCoreFreq, "", core); err != nil {
		return 0, err
	}
	return f.inner.CoreFreqMHz(core)
}
