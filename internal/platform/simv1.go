package platform

import (
	"fmt"
	"strconv"
	"strings"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
	"vfreq/internal/vm"
)

// SimV1 drives the simulated machine through the cgroup v1 file dialect
// (cpu.cfs_quota_us / cpu.cfs_period_us / cpuacct.usage / tasks),
// demonstrating the paper's claim that "the controller works on both
// versions" of cgroups. The controller code is unchanged; only the file
// names and units (cpuacct.usage is nanoseconds) differ.
type SimV1 struct {
	mgr   *vm.Manager
	mount string
}

// V1Mount is where NewSimV1 mounts the v1 hierarchy.
const V1Mount = "/sys/fs/cgroup-v1/cpu"

// NewSimV1 wraps a VM manager, enabling the v1 view on its machine. It
// must be called once per machine.
func NewSimV1(mgr *vm.Manager) (*SimV1, error) {
	if err := mgr.Machine().Cgroups.EnableV1(V1Mount); err != nil {
		return nil, err
	}
	return &SimV1{mgr: mgr, mount: V1Mount}, nil
}

// Node implements Host.
func (s *SimV1) Node() NodeInfo {
	spec := s.mgr.Machine().Spec()
	return NodeInfo{Name: spec.Name, Cores: spec.Cores, MaxFreqMHz: spec.MaxMHz}
}

// ListVMs implements Host.
func (s *SimV1) ListVMs() ([]VMInfo, error) {
	insts := s.mgr.List()
	out := make([]VMInfo, len(insts))
	for i, inst := range insts {
		t := inst.Template()
		out[i] = VMInfo{Name: inst.Name(), VCPUs: t.VCPUs, FreqMHz: t.FreqMHz}
	}
	return out, nil
}

func (s *SimV1) vcpuPath(vmName string, vcpu int) string {
	return s.mount + "/" + vm.VCPUCgroup(vmName, vcpu)
}

// UsageUs implements Host: cpuacct.usage reports nanoseconds in v1.
func (s *SimV1) UsageUs(vmName string, vcpu int) (int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.vcpuPath(vmName, vcpu) + "/cpuacct.usage")
	if err != nil {
		return 0, fmt.Errorf("platform: reading cpuacct.usage of %s/vcpu%d: %w", vmName, vcpu, err)
	}
	ns, err := strconv.ParseInt(strings.TrimSpace(content), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("platform: bad cpuacct.usage %q", content)
	}
	return ns / 1000, nil
}

// SetMax implements Host via the two v1 files.
func (s *SimV1) SetMax(vmName string, vcpu int, quotaUs, periodUs int64) error {
	fs := s.mgr.Machine().FS
	base := s.vcpuPath(vmName, vcpu)
	if err := fs.WriteFile(base+"/cpu.cfs_period_us", fmt.Sprint(periodUs)); err != nil {
		return err
	}
	return fs.WriteFile(base+"/cpu.cfs_quota_us", fmt.Sprint(quotaUs))
}

// BatchSetMax implements BatchQuotaWriter via per-entry v1 writes,
// recording the per-entry outcome.
func (s *SimV1) BatchSetMax(vmName string, quotas []VCPUQuota) error {
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		q.Err = s.SetMax(vmName, q.VCPU, q.QuotaUs, q.PeriodUs)
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

// ClearMax implements Host: -1 means unlimited in v1.
func (s *SimV1) ClearMax(vmName string, vcpu int) error {
	return s.mgr.Machine().FS.WriteFile(s.vcpuPath(vmName, vcpu)+"/cpu.cfs_quota_us", "-1")
}

// SetBurst implements Host. cgroup v1 has no burst support; requesting a
// zero burst is a no-op, anything else is an error, as on a real host.
func (s *SimV1) SetBurst(vmName string, vcpu int, burstUs int64) error {
	if burstUs == 0 {
		return nil
	}
	return fmt.Errorf("platform: cgroup v1 has no cpu.max.burst")
}

// ThreadID implements Host via the v1 tasks file.
func (s *SimV1) ThreadID(vmName string, vcpu int) (int, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.vcpuPath(vmName, vcpu) + "/tasks")
	if err != nil {
		return 0, err
	}
	ids, err := cgroupfs.ParseTIDs(content)
	if err != nil {
		return 0, err
	}
	if len(ids) != 1 {
		return 0, fmt.Errorf("platform: vCPU cgroup holds %d tasks, want 1", len(ids))
	}
	return ids[0], nil
}

// LastCPU implements Host.
func (s *SimV1) LastCPU(tid int) (int, error) {
	line, err := s.mgr.Machine().FS.ReadFile(fmt.Sprintf("%s/%d/stat", procfs.Mount, tid))
	if err != nil {
		return 0, err
	}
	return procfs.ParseStatLastCPU(line)
}

// CoreFreqMHz implements Host.
func (s *SimV1) CoreFreqMHz(core int) (int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(sysfs.CurFreqPath(sysfs.Mount, core))
	if err != nil {
		return 0, err
	}
	khz, err := sysfs.ParseKHz(content)
	if err != nil {
		return 0, err
	}
	return khz / 1000, nil
}
