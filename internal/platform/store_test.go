package platform

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"vfreq/internal/memfs"
)

func TestFileStoreRoundTrip(t *testing.T) {
	st := FileStore{Path: filepath.Join(t.TempDir(), "ckpt.json")}
	if _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load before Save = %v, want ErrNoCheckpoint", err)
	}
	if err := st.Save([]byte(`{"version":2}`)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil || string(got) != `{"version":2}` {
		t.Fatalf("Load = %q, %v", got, err)
	}
	// Overwrite replaces atomically (no temp file left behind).
	if err := st.Save([]byte(`{"version":2,"step":9}`)); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load()
	if err != nil || !strings.Contains(string(got), `"step":9`) {
		t.Fatalf("Load after overwrite = %q, %v", got, err)
	}
	if (FileStore{}).Save(nil) == nil {
		t.Fatal("pathless store accepted a save")
	}
	if st := (FileStore{Path: "/ckpt.json"}); st.Dir() != "/" {
		t.Fatalf("Dir = %q", st.Dir())
	}
}

func TestMemStoreRoundTripAndFaults(t *testing.T) {
	fs := memfs.New()
	st := &MemStore{FS: fs, Path: "/ckpt.json"}
	if _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load before Save = %v, want ErrNoCheckpoint", err)
	}
	if err := st.Save([]byte("first")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil || string(got) != "first" {
		t.Fatalf("Load = %q, %v", got, err)
	}

	// A write fault mid-save must leave the previous checkpoint intact —
	// the atomicity contract crash recovery depends on.
	boom := errors.New("injected write fault")
	fs.SetFaultHook(func(op, path string) error {
		if op == "write" && strings.HasSuffix(path, ".tmp") {
			return boom
		}
		return nil
	})
	if err := st.Save([]byte("second")); !errors.Is(err, boom) {
		t.Fatalf("Save under fault = %v, want injected error", err)
	}
	if fs.Exists("/ckpt.json.tmp") {
		t.Fatal("failed save left a temp file behind")
	}
	got, err = st.Load()
	if err != nil || string(got) != "first" {
		t.Fatalf("previous checkpoint damaged: %q, %v", got, err)
	}

	// Fault cleared: saves resume.
	fs.SetFaultHook(nil)
	if err := st.Save([]byte("third")); err != nil {
		t.Fatal(err)
	}
	if got, _ = st.Load(); string(got) != "third" {
		t.Fatalf("Load after recovery = %q", got)
	}

	if (&MemStore{}).Save(nil) == nil {
		t.Fatal("unconfigured mem store accepted a save")
	}
}
