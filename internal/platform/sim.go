package platform

import (
	"fmt"
	"sync"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
	"vfreq/internal/vm"
)

// Sim adapts a simulated machine to the Host interface. All reads go
// through the emulated pseudo-files (parsing included) so the controller
// exercises the exact code paths it would use on Linux.
//
// The per-period read path is allocation-free at steady state: pseudo-file
// paths are memoised (they are pure functions of VM name, vCPU index, tid
// or core), file contents are rendered append-style into pooled buffers,
// and the byte parsers walk them in place. Monitor workers read distinct
// vCPUs concurrently, so the memo maps are RWMutex-guarded and buffers
// come from a sync.Pool.
type Sim struct {
	mgr *vm.Manager

	mu        sync.RWMutex
	vcpuPaths map[vcpuKey]*simVCPUFiles
	tidPaths  map[int]string
	corePaths []string

	bufs sync.Pool // *[]byte read buffers

	vmScratch []VMInfo // ListVMs result, reused across calls
}

type vcpuKey struct {
	vm   string
	vcpu int
}

// simVCPUFiles caches the pseudo-file paths of one vCPU cgroup.
type simVCPUFiles struct {
	stat    string // cpu.stat
	max     string // cpu.max
	burst   string // cpu.max.burst
	threads string // cgroup.threads
}

// NewSim wraps a VM manager.
func NewSim(mgr *vm.Manager) *Sim {
	s := &Sim{
		mgr:       mgr,
		vcpuPaths: make(map[vcpuKey]*simVCPUFiles),
		tidPaths:  make(map[int]string),
	}
	cores := mgr.Machine().Spec().Cores
	s.corePaths = make([]string, cores)
	for c := 0; c < cores; c++ {
		s.corePaths[c] = sysfs.CurFreqPath(sysfs.Mount, c)
	}
	s.bufs.New = func() any {
		p := new([]byte)
		*p = make([]byte, 0, 256)
		return p
	}
	return s
}

// files returns the memoised pseudo-file paths of a vCPU cgroup. Paths
// are pure functions of (vm, vcpu), so entries are never invalidated —
// a re-provisioned VM of the same name reuses them.
func (s *Sim) files(vmName string, vcpu int) *simVCPUFiles {
	k := vcpuKey{vm: vmName, vcpu: vcpu}
	s.mu.RLock()
	f := s.vcpuPaths[k]
	s.mu.RUnlock()
	if f != nil {
		return f
	}
	base := cgroupfs.DefaultMount + "/" + vm.VCPUCgroup(vmName, vcpu)
	f = &simVCPUFiles{
		stat:    base + "/cpu.stat",
		max:     base + "/cpu.max",
		burst:   base + "/cpu.max.burst",
		threads: base + "/cgroup.threads",
	}
	s.mu.Lock()
	if old := s.vcpuPaths[k]; old != nil {
		f = old
	} else {
		s.vcpuPaths[k] = f
	}
	s.mu.Unlock()
	return f
}

// tidPath returns the memoised /proc/<tid>/stat path.
func (s *Sim) tidPath(tid int) string {
	s.mu.RLock()
	p := s.tidPaths[tid]
	s.mu.RUnlock()
	if p != "" {
		return p
	}
	p = fmt.Sprintf("%s/%d/stat", procfs.Mount, tid)
	s.mu.Lock()
	s.tidPaths[tid] = p
	s.mu.Unlock()
	return p
}

func (s *Sim) getBuf() *[]byte { return s.bufs.Get().(*[]byte) }

func (s *Sim) putBuf(p *[]byte, buf []byte) {
	*p = buf[:0]
	s.bufs.Put(p)
}

// Node implements Host.
func (s *Sim) Node() NodeInfo {
	spec := s.mgr.Machine().Spec()
	return NodeInfo{Name: spec.Name, Cores: spec.Cores, MaxFreqMHz: spec.MaxMHz}
}

// ListVMs implements Host. The returned slice is reused by the next
// call; callers must not retain it.
func (s *Sim) ListVMs() ([]VMInfo, error) {
	insts := s.mgr.List()
	out := s.vmScratch[:0]
	for _, inst := range insts {
		t := inst.Template()
		out = append(out, VMInfo{Name: inst.Name(), VCPUs: t.VCPUs, FreqMHz: t.FreqMHz})
	}
	s.vmScratch = out
	return out, nil
}

// UsageUs implements Host.
func (s *Sim) UsageUs(vmName string, vcpu int) (int64, error) {
	p := s.getBuf()
	content, err := s.mgr.Machine().FS.ReadFileAppend(s.files(vmName, vcpu).stat, (*p)[:0])
	if err != nil {
		s.putBuf(p, content)
		return 0, fmt.Errorf("platform: reading cpu.stat of %s/vcpu%d: %w", vmName, vcpu, err)
	}
	v, err := cgroupfs.ParseCPUStatBytes(content, "usage_usec")
	s.putBuf(p, content)
	return v, err
}

// SetMax implements Host.
func (s *Sim) SetMax(vmName string, vcpu int, quotaUs, periodUs int64) error {
	return s.mgr.Machine().FS.WriteFile(s.files(vmName, vcpu).max,
		fmt.Sprintf("%d %d", quotaUs, periodUs))
}

// BatchSetMax implements BatchQuotaWriter: every entry writes through
// the emulated cpu.max pseudo-file (there is no descriptor cache to
// amortise in the simulator), recording the per-entry outcome.
func (s *Sim) BatchSetMax(vmName string, quotas []VCPUQuota) error {
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		q.Err = s.SetMax(vmName, q.VCPU, q.QuotaUs, q.PeriodUs)
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

// ReadMax implements QuotaReader: it reads the vCPU's cpu.max back
// through the pseudo-file, exactly as the controller would on Linux.
func (s *Sim) ReadMax(vmName string, vcpu int) (int64, int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.files(vmName, vcpu).max)
	if err != nil {
		return 0, 0, fmt.Errorf("platform: reading cpu.max of %s/vcpu%d: %w", vmName, vcpu, err)
	}
	quota, period, err := cgroupfs.ParseCPUMax(content, 100_000)
	if err != nil {
		return 0, 0, err
	}
	if quota < 0 {
		quota = NoQuota
	}
	return quota, period, nil
}

// ClearMax implements Host.
func (s *Sim) ClearMax(vmName string, vcpu int) error {
	return s.mgr.Machine().FS.WriteFile(s.files(vmName, vcpu).max, "max")
}

// SetBurst implements Host.
func (s *Sim) SetBurst(vmName string, vcpu int, burstUs int64) error {
	return s.mgr.Machine().FS.WriteFile(s.files(vmName, vcpu).burst,
		fmt.Sprintf("%d", burstUs))
}

// ThreadID implements Host.
func (s *Sim) ThreadID(vmName string, vcpu int) (int, error) {
	p := s.getBuf()
	content, err := s.mgr.Machine().FS.ReadFileAppend(s.files(vmName, vcpu).threads, (*p)[:0])
	if err != nil {
		s.putBuf(p, content)
		return 0, err
	}
	tid, n, err := cgroupfs.ParseSingleTID(content)
	s.putBuf(p, content)
	if err != nil {
		return 0, err
	}
	if n != 1 {
		return 0, fmt.Errorf("platform: vCPU cgroup %s/vcpu%d holds %d threads, want 1",
			vmName, vcpu, n)
	}
	return tid, nil
}

// LastCPU implements Host.
func (s *Sim) LastCPU(tid int) (int, error) {
	p := s.getBuf()
	line, err := s.mgr.Machine().FS.ReadFileAppend(s.tidPath(tid), (*p)[:0])
	if err != nil {
		s.putBuf(p, line)
		return 0, err
	}
	cpu, err := procfs.ParseStatLastCPUBytes(line)
	s.putBuf(p, line)
	return cpu, err
}

// CoreNodes implements Topology: it reads the emulated
// /sys/devices/system/node tree, exactly as the Linux backend reads
// the real one. Cores not named by any node<N>/cpulist (or a missing
// tree entirely) default to node 0.
func (s *Sim) CoreNodes() ([]int, error) {
	m := s.mgr.Machine()
	nodes := make([]int, m.Spec().Cores)
	names, err := m.FS.ReadDir(sysfs.NodeMount)
	if err != nil {
		return nodes, nil // no NUMA tree: single-node topology
	}
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(name, "node%d", &id); err != nil || id < 0 {
			continue
		}
		content, err := m.FS.ReadFile(sysfs.NodeCPUListPath(sysfs.NodeMount, id))
		if err != nil {
			continue
		}
		cpus, err := sysfs.ParseCPUList(content)
		if err != nil {
			continue
		}
		for _, c := range cpus {
			if c >= 0 && c < len(nodes) {
				nodes[c] = id
			}
		}
	}
	return nodes, nil
}

// CoreFreqMHz implements Host.
func (s *Sim) CoreFreqMHz(core int) (int64, error) {
	if core < 0 || core >= len(s.corePaths) {
		return 0, fmt.Errorf("platform: core %d out of range", core)
	}
	p := s.getBuf()
	content, err := s.mgr.Machine().FS.ReadFileAppend(s.corePaths[core], (*p)[:0])
	if err != nil {
		s.putBuf(p, content)
		return 0, err
	}
	khz, err := sysfs.ParseKHzBytes(content)
	s.putBuf(p, content)
	if err != nil {
		return 0, err
	}
	return khz / 1000, nil
}
