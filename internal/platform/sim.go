package platform

import (
	"fmt"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
	"vfreq/internal/vm"
)

// Sim adapts a simulated machine to the Host interface. All reads go
// through the emulated pseudo-files (string parsing included) so the
// controller exercises the exact code paths it would use on Linux.
type Sim struct {
	mgr *vm.Manager
}

// NewSim wraps a VM manager.
func NewSim(mgr *vm.Manager) *Sim { return &Sim{mgr: mgr} }

// Node implements Host.
func (s *Sim) Node() NodeInfo {
	spec := s.mgr.Machine().Spec()
	return NodeInfo{Name: spec.Name, Cores: spec.Cores, MaxFreqMHz: spec.MaxMHz}
}

// ListVMs implements Host.
func (s *Sim) ListVMs() ([]VMInfo, error) {
	insts := s.mgr.List()
	out := make([]VMInfo, len(insts))
	for i, inst := range insts {
		t := inst.Template()
		out[i] = VMInfo{Name: inst.Name(), VCPUs: t.VCPUs, FreqMHz: t.FreqMHz}
	}
	return out, nil
}

func (s *Sim) vcpuPath(vmName string, vcpu int) string {
	return cgroupfs.DefaultMount + "/" + vm.VCPUCgroup(vmName, vcpu)
}

// UsageUs implements Host.
func (s *Sim) UsageUs(vmName string, vcpu int) (int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.vcpuPath(vmName, vcpu) + "/cpu.stat")
	if err != nil {
		return 0, fmt.Errorf("platform: reading cpu.stat of %s/vcpu%d: %w", vmName, vcpu, err)
	}
	return cgroupfs.ParseCPUStat(content, "usage_usec")
}

// SetMax implements Host.
func (s *Sim) SetMax(vmName string, vcpu int, quotaUs, periodUs int64) error {
	return s.mgr.Machine().FS.WriteFile(s.vcpuPath(vmName, vcpu)+"/cpu.max",
		fmt.Sprintf("%d %d", quotaUs, periodUs))
}

// BatchSetMax implements BatchQuotaWriter: every entry writes through
// the emulated cpu.max pseudo-file (there is no descriptor cache to
// amortise in the simulator), recording the per-entry outcome.
func (s *Sim) BatchSetMax(vmName string, quotas []VCPUQuota) error {
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		q.Err = s.SetMax(vmName, q.VCPU, q.QuotaUs, q.PeriodUs)
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

// ReadMax implements QuotaReader: it reads the vCPU's cpu.max back
// through the pseudo-file, exactly as the controller would on Linux.
func (s *Sim) ReadMax(vmName string, vcpu int) (int64, int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.vcpuPath(vmName, vcpu) + "/cpu.max")
	if err != nil {
		return 0, 0, fmt.Errorf("platform: reading cpu.max of %s/vcpu%d: %w", vmName, vcpu, err)
	}
	quota, period, err := cgroupfs.ParseCPUMax(content, 100_000)
	if err != nil {
		return 0, 0, err
	}
	if quota < 0 {
		quota = NoQuota
	}
	return quota, period, nil
}

// ClearMax implements Host.
func (s *Sim) ClearMax(vmName string, vcpu int) error {
	return s.mgr.Machine().FS.WriteFile(s.vcpuPath(vmName, vcpu)+"/cpu.max", "max")
}

// SetBurst implements Host.
func (s *Sim) SetBurst(vmName string, vcpu int, burstUs int64) error {
	return s.mgr.Machine().FS.WriteFile(s.vcpuPath(vmName, vcpu)+"/cpu.max.burst",
		fmt.Sprintf("%d", burstUs))
}

// ThreadID implements Host.
func (s *Sim) ThreadID(vmName string, vcpu int) (int, error) {
	content, err := s.mgr.Machine().FS.ReadFile(s.vcpuPath(vmName, vcpu) + "/cgroup.threads")
	if err != nil {
		return 0, err
	}
	ids, err := cgroupfs.ParseTIDs(content)
	if err != nil {
		return 0, err
	}
	if len(ids) != 1 {
		return 0, fmt.Errorf("platform: vCPU cgroup %s/vcpu%d holds %d threads, want 1",
			vmName, vcpu, len(ids))
	}
	return ids[0], nil
}

// LastCPU implements Host.
func (s *Sim) LastCPU(tid int) (int, error) {
	line, err := s.mgr.Machine().FS.ReadFile(fmt.Sprintf("%s/%d/stat", procfs.Mount, tid))
	if err != nil {
		return 0, err
	}
	return procfs.ParseStatLastCPU(line)
}

// CoreNodes implements Topology: it reads the emulated
// /sys/devices/system/node tree, exactly as the Linux backend reads
// the real one. Cores not named by any node<N>/cpulist (or a missing
// tree entirely) default to node 0.
func (s *Sim) CoreNodes() ([]int, error) {
	m := s.mgr.Machine()
	nodes := make([]int, m.Spec().Cores)
	names, err := m.FS.ReadDir(sysfs.NodeMount)
	if err != nil {
		return nodes, nil // no NUMA tree: single-node topology
	}
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(name, "node%d", &id); err != nil || id < 0 {
			continue
		}
		content, err := m.FS.ReadFile(sysfs.NodeCPUListPath(sysfs.NodeMount, id))
		if err != nil {
			continue
		}
		cpus, err := sysfs.ParseCPUList(content)
		if err != nil {
			continue
		}
		for _, c := range cpus {
			if c >= 0 && c < len(nodes) {
				nodes[c] = id
			}
		}
	}
	return nodes, nil
}

// CoreFreqMHz implements Host.
func (s *Sim) CoreFreqMHz(core int) (int64, error) {
	content, err := s.mgr.Machine().FS.ReadFile(sysfs.CurFreqPath(sysfs.Mount, core))
	if err != nil {
		return 0, err
	}
	khz, err := sysfs.ParseKHz(content)
	if err != nil {
		return 0, err
	}
	return khz / 1000, nil
}
