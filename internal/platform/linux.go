package platform

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
)

// Linux reads a real host's cgroup v2, /proc and /sys trees. It discovers
// KVM VMs under machine.slice the way libvirt lays them out
// (machine-qemu-*.scope with per-vCPU sub-cgroups).
//
// Template virtual frequencies are not stored in the kernel; they are
// supplied via Freqs, keyed by VM name, playing the role of the cloud
// manager's template database.
//
// The per-period paths (UsageUs, ThreadID, LastCPU, CoreFreqMHz, SetMax,
// SetBurst) keep their files open and pread/pwrite at offset zero into
// per-file scratch buffers, so a steady-state control Step performs no
// path construction, no open/close churn and no heap allocation. A
// failed read or write closes and drops the descriptor, and the next
// call reopens the path — which is how cgroup recreation on VM restart
// is picked up. All methods are safe for concurrent use by the monitor
// worker pool.
type Linux struct {
	NodeName    string
	CgroupRoot  string // e.g. /sys/fs/cgroup/machine.slice
	ProcRoot    string // e.g. /proc
	SysCPURoot  string // e.g. /sys/devices/system/cpu
	SysNUMARoot string // e.g. /sys/devices/system/node
	MaxFreqMHz  int64
	Cores       int
	Freqs       map[string]int64 // VM name → template frequency (MHz)

	// mu guards the lazily-built handle caches. Hot paths hold it only
	// for a map lookup; opening, pruning and invalidation are rare.
	mu    sync.Mutex
	vcpus map[vcpuRef]*vcpuFiles
	procs map[int]*handle
	cores map[int]*handle

	// coreNodes caches the NUMA topology (core → node), discovered once
	// like the cgroup paths: the placement of logical CPUs never changes
	// while the controller runs.
	coreNodes []int
}

type vcpuRef struct {
	vm   string
	vcpu int
}

// vcpuFiles caches one vCPU cgroup's directory path and control files.
type vcpuFiles struct {
	dir     string
	stat    handle // cpu.stat (read)
	threads handle // cgroup.threads (read)
	max     handle // cpu.max (write)
	burst   handle // cpu.max.burst (write)
}

// handle is one kept-open file plus its scratch buffer. Reads pread at
// offset zero, so no seek position is shared; the mutex serialises the
// buffer between monitor workers (two vCPUs that last ran on the same
// core read the same scaling_cur_freq handle concurrently).
type handle struct {
	mu   sync.Mutex
	path string
	f    *os.File
	buf  [512]byte
}

// read returns the file's current contents, pread into the handle's
// scratch. The caller must hold h.mu while using the returned slice. A
// failed read drops the descriptor so the next call reopens the path.
func (h *handle) read() ([]byte, error) {
	if h.f == nil {
		f, err := os.Open(h.path)
		if err != nil {
			return nil, err
		}
		h.f = f
	}
	n, err := h.f.ReadAt(h.buf[:], 0)
	if err != nil && err != io.EOF {
		h.f.Close()
		h.f = nil
		return nil, err
	}
	return h.buf[:n], nil
}

// write pwrites the payload at offset zero. The caller must hold h.mu.
// Control files treat every write as a full transaction; regular files
// (tests) would keep stale trailing bytes, so the length is truncated —
// kernfs rejects the truncate, which is ignored.
func (h *handle) write(payload []byte) error {
	if h.f == nil {
		f, err := os.OpenFile(h.path, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		h.f = f
	}
	if _, err := h.f.WriteAt(payload, 0); err != nil {
		h.f.Close()
		h.f = nil
		return err
	}
	_ = h.f.Truncate(int64(len(payload)))
	return nil
}

func (h *handle) close() {
	h.mu.Lock()
	if h.f != nil {
		h.f.Close()
		h.f = nil
	}
	h.mu.Unlock()
}

// vcpu returns (building on first use) the cached files of one vCPU.
func (l *Linux) vcpu(vm string, vcpu int) *vcpuFiles {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.vcpuLocked(vm, vcpu)
}

// vcpuLocked is vcpu for callers already holding l.mu.
func (l *Linux) vcpuLocked(vm string, vcpu int) *vcpuFiles {
	if l.vcpus == nil {
		l.vcpus = map[vcpuRef]*vcpuFiles{}
	}
	ref := vcpuRef{vm: vm, vcpu: vcpu}
	vf, ok := l.vcpus[ref]
	if !ok {
		dir := filepath.Join(l.CgroupRoot, "machine-qemu-"+vm+".scope", "vcpu"+strconv.Itoa(vcpu))
		vf = &vcpuFiles{dir: dir}
		vf.stat.path = filepath.Join(dir, "cpu.stat")
		vf.threads.path = filepath.Join(dir, "cgroup.threads")
		vf.max.path = filepath.Join(dir, "cpu.max")
		vf.burst.path = filepath.Join(dir, "cpu.max.burst")
		l.vcpus[ref] = vf
	}
	return vf
}

// proc returns the cached /proc/<tid>/stat handle.
func (l *Linux) proc(tid int) *handle {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.procs == nil {
		l.procs = map[int]*handle{}
	}
	h, ok := l.procs[tid]
	if !ok {
		h = &handle{path: filepath.Join(l.ProcRoot, strconv.Itoa(tid), "stat")}
		l.procs[tid] = h
	}
	return h
}

// dropProc evicts a dead thread's handle (vCPU threads churn on VM
// restart; core and vCPU handles are pruned via ListVMs instead).
func (l *Linux) dropProc(tid int) {
	l.mu.Lock()
	if h, ok := l.procs[tid]; ok {
		delete(l.procs, tid)
		l.mu.Unlock()
		h.close()
		return
	}
	l.mu.Unlock()
}

// core returns the cached scaling_cur_freq handle of one core.
func (l *Linux) core(core int) *handle {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cores == nil {
		l.cores = map[int]*handle{}
	}
	h, ok := l.cores[core]
	if !ok {
		h = &handle{path: sysfs.CurFreqPath(l.SysCPURoot, core)}
		l.cores[core] = h
	}
	return h
}

// pruneDeparted closes and forgets the cached files of VMs (or trailing
// vCPUs after a shrink) no longer present on the host.
func (l *Linux) pruneDeparted(live []VMInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for ref, vf := range l.vcpus {
		found := false
		for i := range live {
			if live[i].Name == ref.vm && ref.vcpu < live[i].VCPUs {
				found = true
				break
			}
		}
		if !found {
			vf.stat.close()
			vf.threads.close()
			vf.max.close()
			vf.burst.close()
			delete(l.vcpus, ref)
		}
	}
}

// CoreNodes implements Topology: core → NUMA node from the node<N>/
// cpulist files. The scan runs once and is cached; a missing or
// unreadable node tree degrades to a single-node topology rather than
// failing, since sharding is an optimisation, not a correctness need.
func (l *Linux) CoreNodes() ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.coreNodes != nil {
		return l.coreNodes, nil
	}
	nodes := make([]int, l.Cores) // default: every core on node 0
	root := l.SysNUMARoot
	if root == "" {
		root = sysfs.NodeMount
	}
	if entries, err := os.ReadDir(root); err == nil {
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, "node") {
				continue
			}
			id, err := strconv.Atoi(strings.TrimPrefix(name, "node"))
			if err != nil || id < 0 {
				continue
			}
			b, err := os.ReadFile(filepath.Join(root, name, "cpulist"))
			if err != nil {
				continue
			}
			cpus, err := sysfs.ParseCPUList(string(b))
			if err != nil {
				continue
			}
			for _, c := range cpus {
				if c >= 0 && c < len(nodes) {
					nodes[c] = id
				}
			}
		}
	}
	l.coreNodes = nodes
	return nodes, nil
}

// NewLinux builds a backend for the standard mount points. It fails if
// the cgroup v2 hierarchy is not present.
func NewLinux(freqs map[string]int64) (*Linux, error) {
	l := &Linux{
		NodeName:    "localhost",
		CgroupRoot:  "/sys/fs/cgroup/machine.slice",
		ProcRoot:    "/proc",
		SysCPURoot:  "/sys/devices/system/cpu",
		SysNUMARoot: sysfs.NodeMount,
		Freqs:       freqs,
	}
	online, err := os.ReadFile(filepath.Join(l.SysCPURoot, "online"))
	if err != nil {
		return nil, fmt.Errorf("platform: no cpu sysfs: %w", err)
	}
	l.Cores, err = sysfs.ParseOnline(string(online))
	if err != nil {
		return nil, err
	}
	// F_MAX: use cpu0's scaling_max_freq; fall back to cpuinfo_max_freq.
	for _, f := range []string{"cpu0/cpufreq/scaling_max_freq", "cpu0/cpufreq/cpuinfo_max_freq"} {
		if b, err := os.ReadFile(filepath.Join(l.SysCPURoot, f)); err == nil {
			if khz, err := sysfs.ParseKHz(string(b)); err == nil {
				l.MaxFreqMHz = khz / 1000
				break
			}
		}
	}
	if l.MaxFreqMHz == 0 {
		return nil, fmt.Errorf("platform: cannot determine F_MAX from cpufreq")
	}
	if _, err := os.Stat(l.CgroupRoot); err != nil {
		return nil, fmt.Errorf("platform: no machine.slice cgroup: %w", err)
	}
	return l, nil
}

// Node implements Host.
func (l *Linux) Node() NodeInfo {
	return NodeInfo{Name: l.NodeName, Cores: l.Cores, MaxFreqMHz: l.MaxFreqMHz}
}

// ListVMs implements Host.
func (l *Linux) ListVMs() ([]VMInfo, error) {
	entries, err := os.ReadDir(l.CgroupRoot)
	if err != nil {
		return nil, err
	}
	var out []VMInfo
	for _, e := range entries {
		if !e.IsDir() || !strings.HasSuffix(e.Name(), ".scope") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(e.Name(), "machine-qemu-"), ".scope")
		// Count vcpuN sub-cgroups.
		subs, err := os.ReadDir(filepath.Join(l.CgroupRoot, e.Name()))
		if err != nil {
			return nil, err
		}
		vcpus := 0
		for _, s := range subs {
			if s.IsDir() && strings.HasPrefix(s.Name(), "vcpu") {
				vcpus++
			}
		}
		if vcpus == 0 {
			continue
		}
		freq, ok := l.Freqs[name]
		if !ok {
			continue // no template registered: not under our control
		}
		out = append(out, VMInfo{Name: name, VCPUs: vcpus, FreqMHz: freq})
	}
	l.pruneDeparted(out)
	return out, nil
}

// UsageUs implements Host.
func (l *Linux) UsageUs(vm string, vcpu int) (int64, error) {
	h := &l.vcpu(vm, vcpu).stat
	h.mu.Lock()
	defer h.mu.Unlock()
	b, err := h.read()
	if err != nil {
		return 0, err
	}
	return cgroupfs.ParseCPUStatBytes(b, "usage_usec")
}

// SetMax implements Host.
func (l *Linux) SetMax(vm string, vcpu int, quotaUs, periodUs int64) error {
	h := &l.vcpu(vm, vcpu).max
	h.mu.Lock()
	defer h.mu.Unlock()
	b := strconv.AppendInt(h.buf[:0], quotaUs, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, periodUs, 10)
	return h.write(b)
}

// BatchSetMax implements BatchQuotaWriter: the VM's quota writes in one
// pass over the cached cpu.max descriptors. The handle cache is resolved
// under a single l.mu acquisition for the whole batch instead of one per
// vCPU; l.mu then stays held across the writes, which is safe (the lock
// order l.mu → handle.mu is never taken in reverse) and uncontended in
// practice — the apply stage never overlaps the monitor stage's lookups.
// Every entry is attempted; a failed write records its error in the
// entry (dropping that descriptor so the next write reopens the path)
// and the first failure becomes the summary error.
func (l *Linux) BatchSetMax(vm string, quotas []VCPUQuota) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		h := &l.vcpuLocked(vm, q.VCPU).max
		h.mu.Lock()
		b := strconv.AppendInt(h.buf[:0], q.QuotaUs, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, q.PeriodUs, 10)
		q.Err = h.write(b)
		h.mu.Unlock()
		if q.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("platform: batch cpu.max of %s/vcpu%d: %w", vm, q.VCPU, q.Err)
		}
	}
	return firstErr
}

// ReadMax implements QuotaReader. It is an inspection path, not part of
// the control loop, so it reads through the path like any tool would.
func (l *Linux) ReadMax(vm string, vcpu int) (int64, int64, error) {
	b, err := os.ReadFile(l.vcpu(vm, vcpu).max.path)
	if err != nil {
		return 0, 0, err
	}
	quota, period, err := cgroupfs.ParseCPUMax(string(b), 100_000)
	if err != nil {
		return 0, 0, err
	}
	if quota < 0 {
		quota = NoQuota
	}
	return quota, period, nil
}

var clearMaxPayload = []byte("max")

// ClearMax implements Host.
func (l *Linux) ClearMax(vm string, vcpu int) error {
	h := &l.vcpu(vm, vcpu).max
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.write(clearMaxPayload)
}

// SetBurst implements Host.
func (l *Linux) SetBurst(vm string, vcpu int, burstUs int64) error {
	h := &l.vcpu(vm, vcpu).burst
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.write(strconv.AppendInt(h.buf[:0], burstUs, 10))
}

// ThreadID implements Host.
func (l *Linux) ThreadID(vm string, vcpu int) (int, error) {
	h := &l.vcpu(vm, vcpu).threads
	h.mu.Lock()
	defer h.mu.Unlock()
	b, err := h.read()
	if err != nil {
		return 0, err
	}
	tid, n, err := cgroupfs.ParseSingleTID(b)
	if err != nil {
		return 0, err
	}
	if n != 1 {
		return 0, fmt.Errorf("platform: vCPU cgroup holds %d threads, want 1", n)
	}
	return tid, nil
}

// LastCPU implements Host.
func (l *Linux) LastCPU(tid int) (int, error) {
	h := l.proc(tid)
	h.mu.Lock()
	b, err := h.read()
	if err != nil {
		h.mu.Unlock()
		l.dropProc(tid) // the thread is likely gone; stop caching it
		return 0, err
	}
	cpu, err := procfs.ParseStatLastCPUBytes(b)
	h.mu.Unlock()
	return cpu, err
}

// CoreFreqMHz implements Host.
func (l *Linux) CoreFreqMHz(core int) (int64, error) {
	h := l.core(core)
	h.mu.Lock()
	defer h.mu.Unlock()
	b, err := h.read()
	if err != nil {
		return 0, err
	}
	khz, err := sysfs.ParseKHzBytes(b)
	if err != nil {
		return 0, err
	}
	return khz / 1000, nil
}
