package platform

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vfreq/internal/cgroupfs"
	"vfreq/internal/procfs"
	"vfreq/internal/sysfs"
)

// Linux reads a real host's cgroup v2, /proc and /sys trees. It discovers
// KVM VMs under machine.slice the way libvirt lays them out
// (machine-qemu-*.scope with per-vCPU sub-cgroups).
//
// Template virtual frequencies are not stored in the kernel; they are
// supplied via Freqs, keyed by VM name, playing the role of the cloud
// manager's template database.
type Linux struct {
	NodeName   string
	CgroupRoot string // e.g. /sys/fs/cgroup/machine.slice
	ProcRoot   string // e.g. /proc
	SysCPURoot string // e.g. /sys/devices/system/cpu
	MaxFreqMHz int64
	Cores      int
	Freqs      map[string]int64 // VM name → template frequency (MHz)
}

// NewLinux builds a backend for the standard mount points. It fails if
// the cgroup v2 hierarchy is not present.
func NewLinux(freqs map[string]int64) (*Linux, error) {
	l := &Linux{
		NodeName:   "localhost",
		CgroupRoot: "/sys/fs/cgroup/machine.slice",
		ProcRoot:   "/proc",
		SysCPURoot: "/sys/devices/system/cpu",
		Freqs:      freqs,
	}
	online, err := os.ReadFile(filepath.Join(l.SysCPURoot, "online"))
	if err != nil {
		return nil, fmt.Errorf("platform: no cpu sysfs: %w", err)
	}
	l.Cores, err = sysfs.ParseOnline(string(online))
	if err != nil {
		return nil, err
	}
	// F_MAX: use cpu0's scaling_max_freq; fall back to cpuinfo_max_freq.
	for _, f := range []string{"cpu0/cpufreq/scaling_max_freq", "cpu0/cpufreq/cpuinfo_max_freq"} {
		if b, err := os.ReadFile(filepath.Join(l.SysCPURoot, f)); err == nil {
			if khz, err := sysfs.ParseKHz(string(b)); err == nil {
				l.MaxFreqMHz = khz / 1000
				break
			}
		}
	}
	if l.MaxFreqMHz == 0 {
		return nil, fmt.Errorf("platform: cannot determine F_MAX from cpufreq")
	}
	if _, err := os.Stat(l.CgroupRoot); err != nil {
		return nil, fmt.Errorf("platform: no machine.slice cgroup: %w", err)
	}
	return l, nil
}

// Node implements Host.
func (l *Linux) Node() NodeInfo {
	return NodeInfo{Name: l.NodeName, Cores: l.Cores, MaxFreqMHz: l.MaxFreqMHz}
}

// ListVMs implements Host.
func (l *Linux) ListVMs() ([]VMInfo, error) {
	entries, err := os.ReadDir(l.CgroupRoot)
	if err != nil {
		return nil, err
	}
	var out []VMInfo
	for _, e := range entries {
		if !e.IsDir() || !strings.HasSuffix(e.Name(), ".scope") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(e.Name(), "machine-qemu-"), ".scope")
		// Count vcpuN sub-cgroups.
		subs, err := os.ReadDir(filepath.Join(l.CgroupRoot, e.Name()))
		if err != nil {
			return nil, err
		}
		vcpus := 0
		for _, s := range subs {
			if s.IsDir() && strings.HasPrefix(s.Name(), "vcpu") {
				vcpus++
			}
		}
		if vcpus == 0 {
			continue
		}
		freq, ok := l.Freqs[name]
		if !ok {
			continue // no template registered: not under our control
		}
		out = append(out, VMInfo{Name: name, VCPUs: vcpus, FreqMHz: freq})
	}
	return out, nil
}

func (l *Linux) vcpuDir(vm string, vcpu int) string {
	return filepath.Join(l.CgroupRoot, "machine-qemu-"+vm+".scope", fmt.Sprintf("vcpu%d", vcpu))
}

// UsageUs implements Host.
func (l *Linux) UsageUs(vm string, vcpu int) (int64, error) {
	b, err := os.ReadFile(filepath.Join(l.vcpuDir(vm, vcpu), "cpu.stat"))
	if err != nil {
		return 0, err
	}
	return cgroupfs.ParseCPUStat(string(b), "usage_usec")
}

// SetMax implements Host.
func (l *Linux) SetMax(vm string, vcpu int, quotaUs, periodUs int64) error {
	return os.WriteFile(filepath.Join(l.vcpuDir(vm, vcpu), "cpu.max"),
		[]byte(fmt.Sprintf("%d %d", quotaUs, periodUs)), 0o644)
}

// ReadMax implements QuotaReader.
func (l *Linux) ReadMax(vm string, vcpu int) (int64, int64, error) {
	b, err := os.ReadFile(filepath.Join(l.vcpuDir(vm, vcpu), "cpu.max"))
	if err != nil {
		return 0, 0, err
	}
	quota, period, err := cgroupfs.ParseCPUMax(string(b), 100_000)
	if err != nil {
		return 0, 0, err
	}
	if quota < 0 {
		quota = NoQuota
	}
	return quota, period, nil
}

// ClearMax implements Host.
func (l *Linux) ClearMax(vm string, vcpu int) error {
	return os.WriteFile(filepath.Join(l.vcpuDir(vm, vcpu), "cpu.max"), []byte("max"), 0o644)
}

// SetBurst implements Host.
func (l *Linux) SetBurst(vm string, vcpu int, burstUs int64) error {
	return os.WriteFile(filepath.Join(l.vcpuDir(vm, vcpu), "cpu.max.burst"),
		[]byte(fmt.Sprintf("%d", burstUs)), 0o644)
}

// ThreadID implements Host.
func (l *Linux) ThreadID(vm string, vcpu int) (int, error) {
	b, err := os.ReadFile(filepath.Join(l.vcpuDir(vm, vcpu), "cgroup.threads"))
	if err != nil {
		return 0, err
	}
	ids, err := cgroupfs.ParseTIDs(string(b))
	if err != nil {
		return 0, err
	}
	if len(ids) != 1 {
		return 0, fmt.Errorf("platform: vCPU cgroup holds %d threads, want 1", len(ids))
	}
	return ids[0], nil
}

// LastCPU implements Host.
func (l *Linux) LastCPU(tid int) (int, error) {
	b, err := os.ReadFile(filepath.Join(l.ProcRoot, fmt.Sprint(tid), "stat"))
	if err != nil {
		return 0, err
	}
	return procfs.ParseStatLastCPU(string(b))
}

// CoreFreqMHz implements Host.
func (l *Linux) CoreFreqMHz(core int) (int64, error) {
	b, err := os.ReadFile(filepath.Join(l.SysCPURoot,
		fmt.Sprintf("cpu%d/cpufreq/scaling_cur_freq", core)))
	if err != nil {
		return 0, err
	}
	khz, err := sysfs.ParseKHz(string(b))
	if err != nil {
		return 0, err
	}
	return khz / 1000, nil
}
