package platform

import (
	"os"
	"path/filepath"
	"testing"

	"vfreq/internal/procfs"
)

// fixtureHost lays out a fake Linux filesystem with one 2-vCPU KVM guest,
// exercising the exact file formats the real backend parses.
func fixtureHost(t *testing.T) *Linux {
	t.Helper()
	root := t.TempDir()
	mk := func(path, content string) {
		t.Helper()
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// sysfs cpufreq for 2 cores.
	mk("sys/cpu/online", "0-1\n")
	mk("sys/cpu/cpu0/cpufreq/scaling_max_freq", "2400000\n")
	mk("sys/cpu/cpu0/cpufreq/scaling_cur_freq", "2200000\n")
	mk("sys/cpu/cpu1/cpufreq/scaling_cur_freq", "1200000\n")
	// cgroup v2 machine.slice with one libvirt-style guest.
	scope := "cgroup/machine-qemu-guest1.scope"
	mk(scope+"/vcpu0/cpu.stat", "usage_usec 123456\nuser_usec 123456\nnr_periods 0\nnr_throttled 0\nthrottled_usec 0\n")
	mk(scope+"/vcpu0/cgroup.threads", "4242\n")
	mk(scope+"/vcpu0/cpu.max", "max 100000\n")
	mk(scope+"/vcpu0/cpu.max.burst", "0\n")
	mk(scope+"/vcpu1/cpu.stat", "usage_usec 99\n")
	mk(scope+"/vcpu1/cgroup.threads", "4243\n")
	mk(scope+"/vcpu1/cpu.max", "max 100000\n")
	mk(scope+"/vcpu1/cpu.max.burst", "0\n")
	// A scope without vcpus and a non-scope dir must be ignored.
	mk("cgroup/machine-qemu-empty.scope/cpu.stat", "usage_usec 0\n")
	mk("cgroup/other.mount/cpu.stat", "usage_usec 0\n")
	// /proc/<tid>/stat for the vCPU thread.
	mk("proc/4242/stat", procfs.FormatStat(4242, "CPU 0/KVM", 120_000, 1))

	return &Linux{
		NodeName:   "fixture",
		CgroupRoot: filepath.Join(root, "cgroup"),
		ProcRoot:   filepath.Join(root, "proc"),
		SysCPURoot: filepath.Join(root, "sys/cpu"),
		Cores:      2,
		MaxFreqMHz: 2400,
		Freqs:      map[string]int64{"guest1": 1800},
	}
}

func TestLinuxListVMs(t *testing.T) {
	l := fixtureHost(t)
	vms, err := l.ListVMs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 1 {
		t.Fatalf("got %d VMs, want 1 (empty scope and foreign dirs ignored)", len(vms))
	}
	if vms[0].Name != "guest1" || vms[0].VCPUs != 2 || vms[0].FreqMHz != 1800 {
		t.Fatalf("vm = %+v", vms[0])
	}
}

func TestLinuxVMWithoutTemplateSkipped(t *testing.T) {
	l := fixtureHost(t)
	l.Freqs = nil
	vms, err := l.ListVMs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 0 {
		t.Fatalf("unregistered VM listed: %+v", vms)
	}
}

func TestLinuxUsage(t *testing.T) {
	l := fixtureHost(t)
	u, err := l.UsageUs("guest1", 0)
	if err != nil || u != 123456 {
		t.Fatalf("usage = %d, %v", u, err)
	}
	if _, err := l.UsageUs("ghost", 0); err == nil {
		t.Fatal("unknown VM read succeeded")
	}
}

func TestLinuxSetAndClearMax(t *testing.T) {
	l := fixtureHost(t)
	if err := l.SetMax("guest1", 0, 25_000, 100_000); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0/cpu.max"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "25000 100000" {
		t.Fatalf("cpu.max = %q", raw)
	}
	if err := l.ClearMax("guest1", 0); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0/cpu.max"))
	if string(raw) != "max" {
		t.Fatalf("cleared cpu.max = %q", raw)
	}
	if err := l.SetBurst("guest1", 0, 5_000); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0/cpu.max.burst"))
	if string(raw) != "5000" {
		t.Fatalf("cpu.max.burst = %q", raw)
	}
}

func TestLinuxThreadAndPlacement(t *testing.T) {
	l := fixtureHost(t)
	tid, err := l.ThreadID("guest1", 0)
	if err != nil || tid != 4242 {
		t.Fatalf("tid = %d, %v", tid, err)
	}
	core, err := l.LastCPU(4242)
	if err != nil || core != 1 {
		t.Fatalf("last cpu = %d, %v", core, err)
	}
	f, err := l.CoreFreqMHz(1)
	if err != nil || f != 1200 {
		t.Fatalf("core freq = %d, %v", f, err)
	}
	if _, err := l.LastCPU(9999); err == nil {
		t.Fatal("missing tid read succeeded")
	}
}

func TestLinuxNodeInfo(t *testing.T) {
	l := fixtureHost(t)
	n := l.Node()
	if n.Name != "fixture" || n.Cores != 2 || n.MaxFreqMHz != 2400 {
		t.Fatalf("node = %+v", n)
	}
}
