package platform

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vfreq/internal/vm"
)

func newFaultySim(t *testing.T) (*FaultyHost, *Sim) {
	t.Helper()
	s, mgr := newSim(t)
	if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	return WithFaults(s, 1), s
}

// TestFaultyHostRejectsInertPlans pins Plan's validation: a plan that
// can never fire — or with out-of-range fields — is an error up front,
// not a silent no-op, and the rejected plan is not armed.
func TestFaultyHostRejectsInertPlans(t *testing.T) {
	fh, _ := newFaultySim(t)
	bad := []FaultPlan{
		{},                             // nothing armed
		{Rate: -0.1},                   // negative rate
		{Rate: 1.5},                    // rate above 1
		{Count: -3},                    // negative count
		{DelayRate: -0.5, DelayUs: 10}, // negative delay rate
		{DelayRate: 2, DelayUs: 10},    // delay rate above 1
		{DelayRate: 0.5},               // delay armed without a bound
		{DelayRate: 0.5, DelayUs: -1},  // negative delay bound
		{DelayUs: 100},                 // bound without a rate
	}
	for i, p := range bad {
		if err := fh.Plan(SiteUsage, p); err == nil {
			t.Fatalf("plan %d (%+v) accepted, want rejection", i, p)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := fh.UsageUs("a", 0); err != nil {
			t.Fatalf("rejected plan fired: %v", err)
		}
	}
	if fh.Injected(SiteUsage) != 0 || fh.Calls(SiteUsage) != 20 {
		t.Fatalf("injected/calls = %d/%d", fh.Injected(SiteUsage), fh.Calls(SiteUsage))
	}
}

func TestFaultyHostCountIsTransient(t *testing.T) {
	fh, _ := newFaultySim(t)
	fh.MustPlan(SiteUsage, FaultPlan{Count: 2})
	for i := 0; i < 2; i++ {
		if _, err := fh.UsageUs("a", 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected", i, err)
		}
	}
	if _, err := fh.UsageUs("a", 0); err != nil {
		t.Fatalf("exhausted plan still fires: %v", err)
	}
	if fh.Injected(SiteUsage) != 2 {
		t.Fatalf("injected = %d, want 2", fh.Injected(SiteUsage))
	}
}

func TestFaultyHostPersistentUntilCleared(t *testing.T) {
	fh, _ := newFaultySim(t)
	custom := errors.New("vcpu thread died")
	fh.MustPlan(SiteSetMax, FaultPlan{Persistent: true, Err: custom})
	for i := 0; i < 5; i++ {
		if err := fh.SetMax("a", 0, 10_000, 100_000); !errors.Is(err, custom) {
			t.Fatalf("err = %v, want custom persistent error", err)
		}
	}
	fh.Clear(SiteSetMax)
	if err := fh.SetMax("a", 0, 10_000, 100_000); err != nil {
		t.Fatalf("cleared plan still fires: %v", err)
	}
}

func TestFaultyHostMatchScopesInjection(t *testing.T) {
	fh, _ := newFaultySim(t)
	fh.MustPlan(SiteUsage, FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vcpu == 1 },
	})
	if _, err := fh.UsageUs("a", 0); err != nil {
		t.Fatalf("unmatched vCPU failed: %v", err)
	}
	if _, err := fh.UsageUs("a", 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("matched vCPU err = %v, want injected", err)
	}
}

func TestFaultyHostRateIsReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		s, mgr := newSim(t)
		if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
			t.Fatal(err)
		}
		fh := WithFaults(s, seed)
		fh.MustPlan(SiteUsage, FaultPlan{Rate: 0.5})
		out := make([]bool, 40)
		for i := range out {
			_, err := fh.UsageUs("a", 0)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(3), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestFaultyHostPassesThrough(t *testing.T) {
	fh, s := newFaultySim(t)
	if fh.Inner() != s {
		t.Fatal("Inner() lost the wrapped host")
	}
	if fh.Node() != s.Node() {
		t.Fatal("Node() differs from inner host")
	}
	vms, err := fh.ListVMs()
	if err != nil || len(vms) != 1 || vms[0].Name != "a" {
		t.Fatalf("ListVMs = %v, %v", vms, err)
	}
	tid, err := fh.ThreadID("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.LastCPU(tid); err != nil {
		t.Fatal(err)
	}
	if _, err := fh.CoreFreqMHz(0); err != nil {
		t.Fatal(err)
	}
	if err := fh.SetBurst("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fh.ClearMax("a", 0); err != nil {
		t.Fatal(err)
	}
}

func TestSiteByName(t *testing.T) {
	for _, s := range Sites {
		got, err := SiteByName(string(s))
		if err != nil || got != s {
			t.Fatalf("SiteByName(%q) = %q, %v", s, got, err)
		}
	}
	err := func() error { _, err := SiteByName("bogus"); return err }()
	if err == nil {
		t.Fatal("unknown site accepted")
	}
	// The error must name every valid site so a typo in a scenario file
	// is self-diagnosing.
	for _, s := range Sites {
		if !strings.Contains(err.Error(), string(s)) {
			t.Fatalf("error %q does not list site %q", err, s)
		}
	}
}

// TestFaultyHostLatencyInjection covers the delay path: a delay-only
// plan stalls calls without failing them, the injected durations stay
// inside [DelayUs/2, DelayUs], and the sleep happens on the calling
// goroutine (observed via the replaceable sleep hook — the decision is
// what matters, not wall time).
func TestFaultyHostLatencyInjection(t *testing.T) {
	fh, _ := newFaultySim(t)
	var slept []time.Duration
	fh.sleep = func(d time.Duration) { slept = append(slept, d) }
	fh.MustPlan(SiteUsage, FaultPlan{DelayRate: 1, DelayUs: 400})
	for i := 0; i < 10; i++ {
		if _, err := fh.UsageUs("a", 0); err != nil {
			t.Fatalf("delay-only plan failed the call: %v", err)
		}
	}
	if fh.Delayed(SiteUsage) != 10 || fh.Injected(SiteUsage) != 0 {
		t.Fatalf("delayed/injected = %d/%d, want 10/0",
			fh.Delayed(SiteUsage), fh.Injected(SiteUsage))
	}
	if len(slept) != 10 {
		t.Fatalf("slept %d times, want 10", len(slept))
	}
	for i, d := range slept {
		if d < 200*time.Microsecond || d > 400*time.Microsecond {
			t.Fatalf("delay %d = %v outside [200us, 400us]", i, d)
		}
	}
}

// TestFaultyHostLatencyIsReproducible: the same seed draws the same
// delay sequence, and delays combine independently with error firing.
func TestFaultyHostLatencyIsReproducible(t *testing.T) {
	run := func() ([]time.Duration, []bool) {
		s, mgr := newSim(t)
		if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
			t.Fatal(err)
		}
		fh := WithFaults(s, 7)
		var slept []time.Duration
		fh.sleep = func(d time.Duration) { slept = append(slept, d) }
		fh.MustPlan(SiteUsage, FaultPlan{Rate: 0.3, DelayRate: 0.5, DelayUs: 1000})
		failed := make([]bool, 60)
		for i := range failed {
			_, err := fh.UsageUs("a", 0)
			failed[i] = err != nil
		}
		return slept, failed
	}
	d1, f1 := run()
	d2, f2 := run()
	if len(d1) != len(d2) {
		t.Fatalf("same seed drew %d vs %d delays", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delay %d: %v vs %v", i, d1[i], d2[i])
		}
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("failure sequence diverged at call %d", i)
		}
	}
	if len(d1) == 0 {
		t.Fatal("delay rate 0.5 never fired in 60 calls")
	}
	anyFail := false
	for _, f := range f1 {
		anyFail = anyFail || f
	}
	if !anyFail {
		t.Fatal("rate 0.3 never fired in 60 calls")
	}
}

// TestFaultyHostBatchSetMax covers the wrapper's batch capability: each
// entry is injected independently at SiteBatchSetMax, AND flows through
// the regular SetMax path, so an armed SiteSetMax plan keeps firing for
// batched writes. Entries that survive injection land on the inner host.
func TestFaultyHostBatchSetMax(t *testing.T) {
	fh, s := newFaultySim(t)
	fh.MustPlan(SiteBatchSetMax, FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vcpu == 1 },
	})
	quotas := []VCPUQuota{
		{VCPU: 0, QuotaUs: 10_000, PeriodUs: 100_000},
		{VCPU: 1, QuotaUs: 20_000, PeriodUs: 100_000},
	}
	if err := fh.BatchSetMax("a", quotas); !errors.Is(err, ErrInjected) {
		t.Fatalf("summary err = %v, want injected", err)
	}
	if quotas[0].Err != nil {
		t.Fatalf("unmatched entry failed: %v", quotas[0].Err)
	}
	if !errors.Is(quotas[1].Err, ErrInjected) {
		t.Fatalf("matched entry err = %v, want injected", quotas[1].Err)
	}
	// The surviving entry reached the inner host's cgroup file.
	if q, p, err := s.ReadMax("a", 0); err != nil || q != 10_000 || p != 100_000 {
		t.Fatalf("vcpu0 quota = %d/%d, %v", q, p, err)
	}

	// A SetMax plan must keep firing for batched writes: a batch is
	// semantically N quota writes.
	fh.ClearAll()
	fh.MustPlan(SiteSetMax, FaultPlan{Persistent: true})
	setMaxCalls := fh.Calls(SiteSetMax)
	quotas[0].Err, quotas[1].Err = nil, nil
	if err := fh.BatchSetMax("a", quotas); err == nil {
		t.Fatal("SetMax plan ignored by the batch path")
	}
	if quotas[0].Err == nil || quotas[1].Err == nil {
		t.Fatal("SetMax plan missed a batched entry")
	}
	if got := fh.Calls(SiteSetMax) - setMaxCalls; got != 2 {
		t.Fatalf("SetMax saw %d calls from the batch, want 2", got)
	}
}
