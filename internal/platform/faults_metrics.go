package platform

import "vfreq/internal/metrics"

// siteMetrics is the pre-interned instrument set of one fault site.
// The record methods are nil-receiver safe, matching the nil-map read
// decide performs on an unarmed host.
type siteMetrics struct {
	calls    *metrics.Counter
	injected *metrics.Counter
	delayed  *metrics.Counter
}

func (m *siteMetrics) recordCall() {
	if m != nil {
		m.calls.Inc()
	}
}

func (m *siteMetrics) recordInjected() {
	if m != nil {
		m.injected.Inc()
	}
}

func (m *siteMetrics) recordDelay() {
	if m != nil {
		m.delayed.Inc()
	}
}

// ArmMetrics registers one calls/injected/delayed counter triple per
// fault site in reg, labelled by site, and starts recording every
// decision into them. All series are interned here, up front; decide
// then pays one map read and an atomic add per event. A nil reg
// disarms.
func (f *FaultyHost) ArmMetrics(reg *metrics.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if reg == nil {
		f.met = nil
		return
	}
	f.met = make(map[FaultSite]*siteMetrics, len(Sites))
	for _, site := range Sites {
		l := metrics.Label{Key: "site", Value: string(site)}
		f.met[site] = &siteMetrics{
			calls:    reg.Counter("vfreq_fault_site_calls_total", "Host calls that reached an injectable site.", l),
			injected: reg.Counter("vfreq_fault_injected_total", "Errors injected at a site.", l),
			delayed:  reg.Counter("vfreq_fault_delays_total", "Calls artificially delayed at a site.", l),
		}
	}
}
