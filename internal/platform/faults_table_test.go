package platform

import (
	"strings"
	"testing"
)

// TestSiteByNameRoundTrip checks every published call site resolves back
// to itself, and that an unknown name's error lists all valid sites —
// the error message is user-facing (vfctl fault_sites) and must stay a
// complete catalogue.
func TestSiteByNameRoundTrip(t *testing.T) {
	for _, site := range Sites {
		got, err := SiteByName(string(site))
		if err != nil {
			t.Errorf("SiteByName(%q) error: %v", site, err)
			continue
		}
		if got != site {
			t.Errorf("SiteByName(%q) = %q, want round-trip", site, got)
		}
	}
	_, err := SiteByName("Frobnicate")
	if err == nil {
		t.Fatal("unknown site accepted")
	}
	for _, site := range Sites {
		if !strings.Contains(err.Error(), string(site)) {
			t.Errorf("unknown-site error does not list %q: %v", site, err)
		}
	}
}

// TestFaultPlanValidateTable walks every rejection path of
// FaultPlan.Validate plus the canonical accepted shapes.
func TestFaultPlanValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		plan    FaultPlan
		wantErr string // empty = plan is valid
	}{
		{"rate probability", FaultPlan{Rate: 0.5}, ""},
		{"transient count", FaultPlan{Count: 3}, ""},
		{"persistent", FaultPlan{Persistent: true}, ""},
		{"pure latency", FaultPlan{DelayRate: 0.2, DelayUs: 500}, ""},
		{"errors plus latency", FaultPlan{Rate: 1, DelayRate: 1, DelayUs: 100}, ""},
		{"rate above one", FaultPlan{Rate: 1.5}, "outside [0, 1]"},
		{"negative rate", FaultPlan{Rate: -0.1}, "outside [0, 1]"},
		{"negative count", FaultPlan{Count: -1}, "is negative"},
		{"delay rate above one", FaultPlan{DelayRate: 2, DelayUs: 100}, "outside [0, 1]"},
		{"negative delay bound", FaultPlan{Rate: 0.5, DelayUs: -5}, "is negative"},
		{"delay rate without bound", FaultPlan{DelayRate: 0.5}, "needs a positive DelayUs"},
		{"delay bound without rate", FaultPlan{Rate: 0.5, DelayUs: 100}, "needs a positive DelayRate"},
		{"inert", FaultPlan{}, "can never fire"},
		{"inert with match", FaultPlan{Match: func(string, int) bool { return true }}, "can never fire"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid plan accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
