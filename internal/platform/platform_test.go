package platform

import (
	"os"
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

func newSim(t *testing.T) (*Sim, *vm.Manager) {
	t.Helper()
	m, err := host.New(host.Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := vm.NewManager(m)
	if err != nil {
		t.Fatal(err)
	}
	return NewSim(mgr), mgr
}

func TestSimNode(t *testing.T) {
	s, _ := newSim(t)
	n := s.Node()
	if n.Name != "chetemi" || n.Cores != 40 || n.MaxFreqMHz != 2400 {
		t.Fatalf("Node = %+v", n)
	}
}

func TestSimListVMs(t *testing.T) {
	s, mgr := newSim(t)
	if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("b", vm.Large(), nil); err != nil {
		t.Fatal(err)
	}
	vms, err := s.ListVMs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 2 {
		t.Fatalf("got %d VMs", len(vms))
	}
	if vms[0].Name != "a" || vms[0].VCPUs != 2 || vms[0].FreqMHz != 500 {
		t.Fatalf("vms[0] = %+v", vms[0])
	}
	if vms[1].Name != "b" || vms[1].VCPUs != 4 || vms[1].FreqMHz != 1800 {
		t.Fatalf("vms[1] = %+v", vms[1])
	}
}

func TestSimUsageAndQuota(t *testing.T) {
	s, mgr := newSim(t)
	if _, err := mgr.Provision("a", vm.Small(),
		[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
		t.Fatal(err)
	}
	mgr.Machine().Advance(1_000_000)
	u, err := s.UsageUs("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if u != 1_000_000 {
		t.Fatalf("usage = %d, want 1000000 (uncontended)", u)
	}
	// Apply a 25% cap through the interface and verify it bites.
	for j := 0; j < 2; j++ {
		if err := s.SetMax("a", j, 25_000, 100_000); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := s.UsageUs("a", 0)
	mgr.Machine().Advance(1_000_000)
	after, _ := s.UsageUs("a", 0)
	if got := after - before; got != 250_000 {
		t.Fatalf("capped usage delta = %d, want 250000", got)
	}
	// Clear and verify it no longer bites.
	if err := s.ClearMax("a", 0); err != nil {
		t.Fatal(err)
	}
	before, _ = s.UsageUs("a", 0)
	mgr.Machine().Advance(1_000_000)
	after, _ = s.UsageUs("a", 0)
	if got := after - before; got != 1_000_000 {
		t.Fatalf("uncapped usage delta = %d, want 1000000", got)
	}
}

func TestSimThreadPlacementAndFreq(t *testing.T) {
	s, mgr := newSim(t)
	if _, err := mgr.Provision("a", vm.Small(),
		[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
		t.Fatal(err)
	}
	mgr.Machine().Advance(500_000)
	tid, err := s.ThreadID("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	core, err := s.LastCPU(tid)
	if err != nil {
		t.Fatal(err)
	}
	if core < 0 || core >= 40 {
		t.Fatalf("core %d out of range", core)
	}
	f, err := s.CoreFreqMHz(core)
	if err != nil {
		t.Fatal(err)
	}
	spec := mgr.Machine().Spec()
	if f < spec.MinMHz || f > spec.TurboMHz {
		t.Fatalf("freq %d outside envelope", f)
	}
}

func TestSimErrorsOnUnknownVM(t *testing.T) {
	s, _ := newSim(t)
	if _, err := s.UsageUs("ghost", 0); err == nil {
		t.Fatal("usage of unknown VM succeeded")
	}
	if err := s.SetMax("ghost", 0, 1000, 100_000); err == nil {
		t.Fatal("SetMax on unknown VM succeeded")
	}
	if _, err := s.ThreadID("ghost", 0); err == nil {
		t.Fatal("ThreadID on unknown VM succeeded")
	}
}

// The Linux backend needs a real cgroup v2 + libvirt host; skip unless
// present.
func TestLinuxBackendOnRealHost(t *testing.T) {
	if _, err := os.Stat("/sys/fs/cgroup/machine.slice"); err != nil {
		t.Skip("no machine.slice on this host")
	}
	l, err := NewLinux(nil)
	if err != nil {
		t.Skipf("linux backend unavailable: %v", err)
	}
	if l.Cores <= 0 || l.MaxFreqMHz <= 0 {
		t.Fatalf("bad node info: %+v", l.Node())
	}
	if _, err := l.ListVMs(); err != nil {
		t.Fatal(err)
	}
}
