package platform

import (
	"testing"

	"vfreq/internal/host"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

func newSimV1(t *testing.T) (*SimV1, *vm.Manager) {
	t.Helper()
	m, err := host.New(host.Chetemi())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := vm.NewManager(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimV1(mgr)
	if err != nil {
		t.Fatal(err)
	}
	return s, mgr
}

func TestSimV1UsageMatchesV2(t *testing.T) {
	v1, mgr := newSimV1(t)
	v2 := NewSim(mgr)
	if _, err := mgr.Provision("a", vm.Small(),
		[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
		t.Fatal(err)
	}
	mgr.Machine().Advance(1_000_000)
	u1, err := v1.UsageUs("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := v2.UsageUs("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if u1 != u2 {
		t.Fatalf("v1 usage %d != v2 usage %d", u1, u2)
	}
}

func TestSimV1QuotaControls(t *testing.T) {
	v1, mgr := newSimV1(t)
	if _, err := mgr.Provision("a", vm.Small(),
		[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if err := v1.SetMax("a", j, 25_000, 100_000); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := v1.UsageUs("a", 0)
	mgr.Machine().Advance(1_000_000)
	after, _ := v1.UsageUs("a", 0)
	if got := after - before; got != 250_000 {
		t.Fatalf("capped delta = %d, want 250000", got)
	}
	if err := v1.ClearMax("a", 0); err != nil {
		t.Fatal(err)
	}
	before, _ = v1.UsageUs("a", 0)
	mgr.Machine().Advance(1_000_000)
	after, _ = v1.UsageUs("a", 0)
	if got := after - before; got != 1_000_000 {
		t.Fatalf("cleared delta = %d, want 1000000", got)
	}
}

func TestSimV1ThreadAndFreq(t *testing.T) {
	v1, mgr := newSimV1(t)
	if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	mgr.Machine().Advance(100_000)
	tid, err := v1.ThreadID("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1.LastCPU(tid); err != nil {
		t.Fatal(err)
	}
	if f, err := v1.CoreFreqMHz(0); err != nil || f <= 0 {
		t.Fatalf("freq = %d, %v", f, err)
	}
}

func TestSimV1BurstUnsupported(t *testing.T) {
	v1, mgr := newSimV1(t)
	if _, err := mgr.Provision("a", vm.Small(), nil); err != nil {
		t.Fatal(err)
	}
	if err := v1.SetBurst("a", 0, 0); err != nil {
		t.Fatalf("zero burst should be a no-op: %v", err)
	}
	if err := v1.SetBurst("a", 0, 1000); err == nil {
		t.Fatal("v1 burst accepted")
	}
}
