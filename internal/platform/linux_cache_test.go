package platform

import (
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// TestLinuxCachedReadsSeeFreshContent: the kept-open descriptors pread at
// offset zero, so a counter that advances between periods (as cpu.stat
// does) is re-read, not served stale — including after the file shrinks.
func TestLinuxCachedReadsSeeFreshContent(t *testing.T) {
	l := fixtureHost(t)
	statPath := filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0/cpu.stat")

	if u, err := l.UsageUs("guest1", 0); err != nil || u != 123456 {
		t.Fatalf("first read: %d, %v", u, err)
	}
	if err := os.WriteFile(statPath, []byte("usage_usec 123999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if u, err := l.UsageUs("guest1", 0); err != nil || u != 123999 {
		t.Fatalf("second read: %d, %v (stale descriptor?)", u, err)
	}
	// Shrinking content (shorter than the previous read) must not leave
	// trailing garbage in the parse.
	if err := os.WriteFile(statPath, []byte("usage_usec 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if u, err := l.UsageUs("guest1", 0); err != nil || u != 7 {
		t.Fatalf("shrunk read: %d, %v", u, err)
	}
}

// TestLinuxReopensAfterError: a vanished-and-recreated cgroup (VM
// restart) invalidates the cached descriptor, and the next read reopens
// the path instead of failing forever.
func TestLinuxReopensAfterError(t *testing.T) {
	l := fixtureHost(t)
	dir := filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0")
	if _, err := l.UsageUs("guest1", 0); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The open descriptor still answers preads on most filesystems, so
	// force the miss by pruning (what ListVMs does when the VM vanishes).
	l.pruneDeparted(nil)
	if _, err := l.UsageUs("guest1", 0); err == nil {
		t.Fatal("read of removed cgroup succeeded")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cpu.stat"), []byte("usage_usec 55\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if u, err := l.UsageUs("guest1", 0); err != nil || u != 55 {
		t.Fatalf("read after recreation: %d, %v", u, err)
	}
}

// TestLinuxConcurrentReads hammers the shared handles (same core's
// scaling_cur_freq, both vCPUs' files) from many goroutines, the access
// pattern of the monitor worker pool. Run under -race it proves the
// per-handle locking.
func TestLinuxConcurrentReads(t *testing.T) {
	l := fixtureHost(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				vcpu := (w + i) % 2
				if _, err := l.UsageUs("guest1", vcpu); err != nil {
					t.Errorf("usage: %v", err)
					return
				}
				if _, err := l.ThreadID("guest1", vcpu); err != nil {
					t.Errorf("tid: %v", err)
					return
				}
				if _, err := l.CoreFreqMHz(1); err != nil {
					t.Errorf("freq: %v", err)
					return
				}
				if _, err := l.LastCPU(4242); err != nil {
					t.Errorf("lastcpu: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLinuxBatchSetMax: the batched write lands every entry through the
// cached descriptors, records per-entry outcomes, and — once the
// descriptors are warm — allocates nothing per call.
func TestLinuxBatchSetMax(t *testing.T) {
	l := fixtureHost(t)
	quotas := []VCPUQuota{
		{VCPU: 0, QuotaUs: 25_000, PeriodUs: 100_000},
		{VCPU: 1, QuotaUs: 30_000, PeriodUs: 100_000},
	}
	if err := l.BatchSetMax("guest1", quotas); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"25000 100000", "30000 100000"} {
		if quotas[i].Err != nil {
			t.Fatalf("entry %d: %v", i, quotas[i].Err)
		}
		raw, err := os.ReadFile(filepath.Join(l.CgroupRoot,
			"machine-qemu-guest1.scope/vcpu"+strconv.Itoa(i)+"/cpu.max"))
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != want {
			t.Fatalf("vcpu%d cpu.max = %q, want %q", i, raw, want)
		}
	}
	if raceEnabled {
		return
	}
	allocs := testing.AllocsPerRun(20, func() {
		quotas[0].QuotaUs++
		quotas[1].QuotaUs++
		if err := l.BatchSetMax("guest1", quotas); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm BatchSetMax allocates %.1f/op, want 0", allocs)
	}
}

// TestLinuxBatchSetMaxPartialFailure: a vanished vCPU cgroup fails its
// own entry only — the batch still attempts (and lands) every other
// entry, the per-entry Err pinpoints the victim, and the summary error
// is non-nil.
func TestLinuxBatchSetMaxPartialFailure(t *testing.T) {
	l := fixtureHost(t)
	if _, err := l.UsageUs("guest1", 1); err != nil {
		t.Fatal(err) // warm the handles so the stale-descriptor path runs
	}
	if err := os.RemoveAll(filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu1")); err != nil {
		t.Fatal(err)
	}
	l.pruneDeparted(nil) // drop the cached descriptors, as ListVMs would

	quotas := []VCPUQuota{
		{VCPU: 0, QuotaUs: 40_000, PeriodUs: 100_000},
		{VCPU: 1, QuotaUs: 45_000, PeriodUs: 100_000},
	}
	err := l.BatchSetMax("guest1", quotas)
	if err == nil {
		t.Fatal("summary error nil with a failed entry")
	}
	if quotas[0].Err != nil {
		t.Fatalf("healthy entry failed: %v", quotas[0].Err)
	}
	if quotas[1].Err == nil {
		t.Fatal("vanished vcpu1 entry reported success")
	}
	raw, rerr := os.ReadFile(filepath.Join(l.CgroupRoot, "machine-qemu-guest1.scope/vcpu0/cpu.max"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(raw) != "40000 100000" {
		t.Fatalf("vcpu0 cpu.max = %q after partial failure, want \"40000 100000\"", raw)
	}
}
