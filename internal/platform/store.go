package platform

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"vfreq/internal/memfs"
)

// ErrNoCheckpoint is returned by Store.Load when no checkpoint has been
// saved yet. Callers starting a controller treat it as a cold start.
var ErrNoCheckpoint = errors.New("platform: no checkpoint")

// Store persists opaque controller checkpoints. Save must be atomic: a
// crash during Save leaves either the previous checkpoint or the new one,
// never a torn mix — restart recovery depends on it.
type Store interface {
	// Save durably replaces the stored checkpoint.
	Save(data []byte) error
	// Load returns the last saved checkpoint, or ErrNoCheckpoint.
	Load() ([]byte, error)
}

// FileStore persists checkpoints to a real file with the classic
// write-to-temp-then-rename protocol, so a crash mid-write never
// corrupts the previous checkpoint.
type FileStore struct {
	// Path is the checkpoint file. Save writes Path+".tmp" first and
	// renames it into place.
	Path string
}

// Save implements Store.
func (s FileStore) Save(data []byte) error {
	if s.Path == "" {
		return fmt.Errorf("platform: file store has no path")
	}
	tmp := s.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("platform: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.Path); err != nil {
		return fmt.Errorf("platform: committing checkpoint: %w", err)
	}
	return nil
}

// Load implements Store.
func (s FileStore) Load() ([]byte, error) {
	data, err := os.ReadFile(s.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("platform: reading checkpoint: %w", err)
	}
	return data, nil
}

// Dir returns the directory holding the checkpoint file.
func (s FileStore) Dir() string { return filepath.Dir(s.Path) }

// MemStore persists checkpoints into an in-memory filesystem with the
// same temp-then-rename protocol as FileStore. Because every write goes
// through the memfs fault hook, tests can inject checkpoint write
// failures exactly like any other pseudo-file fault.
type MemStore struct {
	FS   *memfs.FS
	Path string
}

// Save implements Store.
func (s *MemStore) Save(data []byte) error {
	if s.FS == nil || s.Path == "" {
		return fmt.Errorf("platform: mem store not configured")
	}
	tmp := s.Path + ".tmp"
	if !s.FS.Exists(tmp) {
		if err := s.FS.AddFile(tmp, ""); err != nil {
			return fmt.Errorf("platform: creating checkpoint temp: %w", err)
		}
	}
	if err := s.FS.WriteFile(tmp, string(data)); err != nil {
		// Leave no partial temp behind; the previous checkpoint is
		// untouched either way.
		_ = s.FS.Remove(tmp)
		return fmt.Errorf("platform: writing checkpoint: %w", err)
	}
	if err := s.FS.Rename(tmp, s.Path); err != nil {
		return fmt.Errorf("platform: committing checkpoint: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *MemStore) Load() ([]byte, error) {
	if s.FS == nil || !s.FS.Exists(s.Path) {
		return nil, ErrNoCheckpoint
	}
	data, err := s.FS.ReadFile(s.Path)
	if err != nil {
		return nil, fmt.Errorf("platform: reading checkpoint: %w", err)
	}
	return []byte(data), nil
}
