// Package platform defines the narrow host interface the virtual-
// frequency controller consumes, with two implementations: a simulated
// backend reading the emulated cgroup/proc/sys files of internal/host,
// and a real-Linux backend reading the same files under /sys and /proc.
//
// Everything the controller knows about the world flows through this
// interface, exactly mirroring what the paper's C++ implementation reads
// and writes on a KVM host.
package platform

// NodeInfo describes the physical machine.
type NodeInfo struct {
	Name       string
	Cores      int   // logical CPUs (k_n^CPU)
	MaxFreqMHz int64 // all-core sustained maximum (F_n^MAX)
}

// VMInfo describes one hosted VM instance as libvirt would report it.
type VMInfo struct {
	Name    string
	VCPUs   int
	FreqMHz int64 // virtual frequency from the VM template (F_{V(i)})
}

// Host is the controller's view of the machine.
type Host interface {
	// Node returns the static machine description.
	Node() NodeInfo
	// ListVMs enumerates the hosted VM instances.
	ListVMs() ([]VMInfo, error)
	// UsageUs returns the cumulative CPU time of vCPU j of the named
	// VM, in microseconds (cpu.stat usage_usec).
	UsageUs(vm string, vcpu int) (int64, error)
	// SetMax writes the vCPU's cgroup cpu.max quota.
	SetMax(vm string, vcpu int, quotaUs, periodUs int64) error
	// ClearMax removes the vCPU's quota ("max").
	ClearMax(vm string, vcpu int) error
	// SetBurst writes the vCPU's cgroup cpu.max.burst budget. A zero
	// burst disables bursting.
	SetBurst(vm string, vcpu int, burstUs int64) error
	// ThreadID returns the kernel tid of the vCPU thread
	// (cgroup.threads; KVM vCPU cgroups hold exactly one thread).
	ThreadID(vm string, vcpu int) (int, error)
	// LastCPU returns the core the thread last ran on
	// (/proc/<tid>/stat field 39).
	LastCPU(tid int) (int, error)
	// CoreFreqMHz returns the current frequency of a core
	// (scaling_cur_freq).
	CoreFreqMHz(core int) (int64, error)
}

// NoQuota is the quota value ReadMax returns for an unlimited cgroup
// ("max" in cpu.max).
const NoQuota = int64(-1)

// Topology is an optional Host capability: the NUMA placement of the
// machine's logical CPUs, read from /sys/devices/system/node. The
// controller uses it to partition the stage-4 auction into per-node
// shards. Hosts without the capability (or with a missing node tree)
// are treated as a single NUMA node.
type Topology interface {
	// CoreNodes returns a slice mapping each logical CPU index to its
	// NUMA node id. The result must be stable across calls; callers
	// may cache and share it without copying.
	CoreNodes() ([]int, error)
}

// VCPUQuota is one entry of a BatchSetMax call: the quota to write for
// one vCPU of the batch's VM, plus the per-entry outcome. Err is set by
// the host implementation — nil when the write landed, the write error
// otherwise — so a caller can tell exactly which vCPUs of a partially
// failed batch still hold their previous quota.
type VCPUQuota struct {
	VCPU     int
	QuotaUs  int64
	PeriodUs int64
	Err      error
}

// BatchQuotaWriter is an optional Host capability: writing the cpu.max
// quotas of several vCPUs of one VM in a single call. Implementations
// must attempt every entry (a failed write never aborts the rest),
// record the per-entry outcome in quotas[i].Err, and return a non-nil
// error iff at least one entry failed. The controller's apply stage uses
// it to group the dirty quotas of a VM into one pass over the host's
// cached descriptors instead of a call per vCPU.
type BatchQuotaWriter interface {
	BatchSetMax(vm string, quotas []VCPUQuota) error
}

// QuotaReader is an optional Host capability: reading back the cgroup
// cpu.max quota currently in force for a vCPU. The controller uses it on
// restart to adopt quotas it did not write this incarnation (cold-start
// adoption) instead of blindly resetting them. quotaUs is NoQuota when
// the cgroup is unlimited.
type QuotaReader interface {
	ReadMax(vm string, vcpu int) (quotaUs, periodUs int64, err error)
}
