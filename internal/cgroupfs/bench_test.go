package cgroupfs

import (
	"fmt"
	"testing"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

func benchTree(b *testing.B, groups int) (*Tree, *memfs.FS) {
	b.Helper()
	fs := memfs.New()
	s := sched.New(64)
	tree, err := New(fs, s, DefaultMount)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < groups; i++ {
		g, err := tree.CreateGroup(fmt.Sprintf("vm%d", i))
		if err != nil {
			b.Fatal(err)
		}
		s.NewThread(g, nil)
	}
	return tree, fs
}

// The controller's hot path: reading cpu.stat for every vCPU each period.
func BenchmarkReadCPUStat(b *testing.B) {
	_, fs := benchTree(b, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		content, err := fs.ReadFile(DefaultMount + "/vm42/cpu.stat")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseCPUStat(content, "usage_usec"); err != nil {
			b.Fatal(err)
		}
	}
}

// The controller's write path: setting cpu.max for every vCPU each period.
func BenchmarkWriteCPUMax(b *testing.B) {
	_, fs := benchTree(b, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(DefaultMount+"/vm42/cpu.max", "25000 100000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCreateDestroyGroup(b *testing.B) {
	tree, _ := benchTree(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.CreateGroup("tmp"); err != nil {
			b.Fatal(err)
		}
		if err := tree.RemoveGroup("tmp"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCPUMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseCPUMax("25000 100000", 100000); err != nil {
			b.Fatal(err)
		}
	}
}
