// Package cgroupfs exposes a sched.Scheduler cgroup hierarchy through the
// file dialects of Linux cgroup v2 (cpu.max, cpu.stat, cpu.weight,
// cgroup.threads) and, optionally, cgroup v1 (cpu.cfs_quota_us,
// cpu.cfs_period_us, cpuacct.usage, tasks).
//
// The virtual-frequency controller of the paper interacts with the kernel
// exclusively through these files; emulating them byte-for-byte means the
// controller code exercised in simulation is the same code that would run
// against /sys/fs/cgroup on a real host.
package cgroupfs

import (
	"fmt"
	"path"
	"strconv"
	"strings"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

// DefaultMount is the conventional cgroup v2 mount point.
const DefaultMount = "/sys/fs/cgroup"

// Tree binds a scheduler's cgroup hierarchy to a memfs mount.
type Tree struct {
	fs      *memfs.FS
	sched   *sched.Scheduler
	mount   string
	v1mount string
	groups  map[string]*sched.Group // by path relative to mount, "" = root
}

// New mounts the scheduler's root cgroup at mount inside fs.
func New(fs *memfs.FS, s *sched.Scheduler, mount string) (*Tree, error) {
	t := &Tree{fs: fs, sched: s, mount: mount, groups: map[string]*sched.Group{}}
	if err := fs.MkdirAll(mount); err != nil {
		return nil, err
	}
	t.groups[""] = s.Root()
	if err := t.addControlFiles("", s.Root()); err != nil {
		return nil, err
	}
	return t, nil
}

// Mount returns the v2 mount point.
func (t *Tree) Mount() string { return t.mount }

// FS returns the backing filesystem.
func (t *Tree) FS() *memfs.FS { return t.fs }

// normalize cleans a group path relative to the mount ("" is the root).
func normalize(rel string) string {
	rel = strings.Trim(path.Clean("/"+rel), "/")
	if rel == "." {
		return ""
	}
	return rel
}

// Group returns the scheduler group behind the given relative path.
func (t *Tree) Group(rel string) (*sched.Group, error) {
	g, ok := t.groups[normalize(rel)]
	if !ok {
		return nil, fmt.Errorf("cgroupfs: no cgroup %q", rel)
	}
	return g, nil
}

// CreateGroup creates a cgroup at the given path relative to the mount.
// Parents must exist (as on a real cgroupfs, mkdir is not recursive).
func (t *Tree) CreateGroup(rel string) (*sched.Group, error) {
	rel = normalize(rel)
	if rel == "" {
		return nil, fmt.Errorf("cgroupfs: root already exists")
	}
	if _, ok := t.groups[rel]; ok {
		return nil, fmt.Errorf("cgroupfs: cgroup %q already exists", rel)
	}
	parentRel := normalize(path.Dir(rel))
	parent, ok := t.groups[parentRel]
	if !ok {
		return nil, fmt.Errorf("cgroupfs: parent of %q does not exist", rel)
	}
	g := t.sched.NewGroup(parent, path.Base(rel))
	dir := path.Join(t.mount, rel)
	if err := t.fs.Mkdir(dir); err != nil {
		return nil, err
	}
	t.groups[rel] = g
	if err := t.addControlFiles(rel, g); err != nil {
		return nil, err
	}
	if t.v1mount != "" {
		if err := t.addV1Files(rel, g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// CreateGroupAll creates a cgroup and any missing ancestors.
func (t *Tree) CreateGroupAll(rel string) (*sched.Group, error) {
	rel = normalize(rel)
	if rel == "" {
		return t.sched.Root(), nil
	}
	parts := strings.Split(rel, "/")
	cur := ""
	for _, p := range parts {
		cur = normalize(path.Join(cur, p))
		if _, ok := t.groups[cur]; ok {
			continue
		}
		if _, err := t.CreateGroup(cur); err != nil {
			return nil, err
		}
	}
	return t.groups[rel], nil
}

// RemoveGroup removes a cgroup subtree.
func (t *Tree) RemoveGroup(rel string) error {
	rel = normalize(rel)
	if rel == "" {
		return fmt.Errorf("cgroupfs: cannot remove root")
	}
	g, ok := t.groups[rel]
	if !ok {
		return fmt.Errorf("cgroupfs: no cgroup %q", rel)
	}
	if err := t.sched.RemoveGroup(g); err != nil {
		return err
	}
	prefix := rel + "/"
	for k := range t.groups {
		if k == rel || strings.HasPrefix(k, prefix) {
			delete(t.groups, k)
		}
	}
	if err := t.fs.RemoveAll(path.Join(t.mount, rel)); err != nil {
		return err
	}
	if t.v1mount != "" {
		if err := t.fs.RemoveAll(path.Join(t.v1mount, rel)); err != nil {
			return err
		}
	}
	return nil
}

// List returns the relative paths of all cgroups, the root as "".
func (t *Tree) List() []string {
	out := make([]string, 0, len(t.groups))
	for k := range t.groups {
		out = append(out, k)
	}
	return out
}

func (t *Tree) addControlFiles(rel string, g *sched.Group) error {
	dir := path.Join(t.mount, rel)
	files := map[string]struct {
		read  memfs.ReadFunc
		write memfs.WriteFunc
	}{
		"cpu.max": {
			read: func() string { return FormatCPUMax(g.QuotaUs, g.PeriodUs) },
			write: func(s string) error {
				q, p, err := ParseCPUMax(s, g.PeriodUs)
				if err != nil {
					return err
				}
				return g.SetQuota(q, p)
			},
		},
		"cpu.max.burst": {
			read: func() string { return fmt.Sprintf("%d\n", g.BurstUs) },
			write: func(s string) error {
				v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					return fmt.Errorf("cgroupfs: invalid cpu.max.burst %q", s)
				}
				return g.SetBurst(v)
			},
		},
		"cpu.pressure": {
			read: func() string {
				a10, a60, a300, total := g.PSI()
				return fmt.Sprintf(
					"some avg10=%.2f avg60=%.2f avg300=%.2f total=%d\nfull avg10=%.2f avg60=%.2f avg300=%.2f total=%d\n",
					100*a10, 100*a60, 100*a300, total,
					100*a10, 100*a60, 100*a300, total)
			},
		},
		"cpu.weight": {
			read: func() string { return fmt.Sprintf("%d\n", g.Weight) },
			write: func(s string) error {
				w, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil || w < 1 || w > 10000 {
					return fmt.Errorf("cgroupfs: invalid cpu.weight %q", s)
				}
				g.Weight = w
				return nil
			},
		},
		"cgroup.controllers": {
			read: func() string { return "cpu\n" },
		},
	}
	for name, f := range files {
		if err := t.fs.AddDynamic(path.Join(dir, name), f.read, f.write); err != nil {
			return err
		}
	}
	// The files the controller's monitor stage reads every period for
	// every vCPU render through append-style callbacks, so a
	// ReadFileAppend into a reused buffer allocates nothing.
	appendFiles := map[string]memfs.ReadAppendFunc{
		"cpu.stat":       func(buf []byte) []byte { return appendCPUStat(buf, g) },
		"cgroup.threads": func(buf []byte) []byte { return appendTIDs(buf, g) },
		"cgroup.procs":   func(buf []byte) []byte { return appendTIDs(buf, g) },
	}
	for name, read := range appendFiles {
		if err := t.fs.AddDynamicAppend(path.Join(dir, name), read, nil); err != nil {
			return err
		}
	}
	return nil
}

// appendCPUStat renders cpu.stat into buf, byte-identical to the
// previous fmt.Sprintf form.
func appendCPUStat(buf []byte, g *sched.Group) []byte {
	buf = append(buf, "usage_usec "...)
	buf = strconv.AppendInt(buf, g.UsageUs, 10)
	buf = append(buf, "\nuser_usec "...)
	buf = strconv.AppendInt(buf, g.UsageUs, 10)
	buf = append(buf, "\nsystem_usec 0\nnr_periods "...)
	buf = strconv.AppendInt(buf, g.NrPeriods, 10)
	buf = append(buf, "\nnr_throttled "...)
	buf = strconv.AppendInt(buf, g.NrThrottled, 10)
	buf = append(buf, "\nthrottled_usec "...)
	buf = strconv.AppendInt(buf, g.ThrottledUs, 10)
	buf = append(buf, "\nnr_bursts "...)
	buf = strconv.AppendInt(buf, g.NrBursts, 10)
	buf = append(buf, "\nburst_usec "...)
	buf = strconv.AppendInt(buf, g.BurstUsedUs, 10)
	return append(buf, '\n')
}

// appendTIDs renders the group's thread IDs ascending, one per line,
// without building the sorted slice ThreadIDs allocates: thread IDs are
// unique, so emitting the successor of the last emitted ID per round is
// a selection sort over the (typically single-digit) member list.
func appendTIDs(buf []byte, g *sched.Group) []byte {
	prev := -1
	for range g.Threads {
		best := -1
		for _, th := range g.Threads {
			if th.ID > prev && (best == -1 || th.ID < best) {
				best = th.ID
			}
		}
		if best == -1 {
			break
		}
		buf = strconv.AppendInt(buf, int64(best), 10)
		buf = append(buf, '\n')
		prev = best
	}
	return buf
}

// EnableV1 additionally exposes the hierarchy with cgroup v1 file names
// under the given mount (e.g. "/sys/fs/cgroup-v1/cpu").
func (t *Tree) EnableV1(mount string) error {
	if t.v1mount != "" {
		return fmt.Errorf("cgroupfs: v1 already enabled")
	}
	if err := t.fs.MkdirAll(mount); err != nil {
		return err
	}
	t.v1mount = mount
	// Mirror existing groups, parents before children.
	paths := t.List()
	// Sort by depth by simple insertion on segment count.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if strings.Count(paths[j], "/") < strings.Count(paths[i], "/") ||
				(strings.Count(paths[j], "/") == strings.Count(paths[i], "/") && paths[j] < paths[i]) {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}
	for _, rel := range paths {
		if rel != "" {
			if err := t.fs.MkdirAll(path.Join(mount, rel)); err != nil {
				return err
			}
		}
		if err := t.addV1Files(rel, t.groups[rel]); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) addV1Files(rel string, g *sched.Group) error {
	dir := path.Join(t.v1mount, rel)
	if rel != "" && !t.fs.IsDir(dir) {
		if err := t.fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	files := map[string]struct {
		read  memfs.ReadFunc
		write memfs.WriteFunc
	}{
		"cpu.cfs_quota_us": {
			read: func() string { return fmt.Sprintf("%d\n", g.QuotaUs) },
			write: func(s string) error {
				q, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					return fmt.Errorf("cgroupfs: invalid cfs_quota_us %q", s)
				}
				if q < 0 {
					q = sched.NoQuota
				}
				return g.SetQuota(q, g.PeriodUs)
			},
		},
		"cpu.cfs_period_us": {
			read: func() string { return fmt.Sprintf("%d\n", g.PeriodUs) },
			write: func(s string) error {
				p, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil || p <= 0 {
					return fmt.Errorf("cgroupfs: invalid cfs_period_us %q", s)
				}
				return g.SetQuota(g.QuotaUs, p)
			},
		},
		// cpuacct.usage is in nanoseconds in cgroup v1.
		"cpuacct.usage": {
			read: func() string { return fmt.Sprintf("%d\n", g.UsageUs*1000) },
		},
		"tasks": {
			read: func() string { return formatTIDs(g.ThreadIDs()) },
		},
	}
	for name, f := range files {
		if err := t.fs.AddDynamic(path.Join(dir, name), f.read, f.write); err != nil {
			return err
		}
	}
	return nil
}

func formatTIDs(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d\n", id)
	}
	return b.String()
}

// FormatCPUMax renders quota/period the way cgroup v2 does.
func FormatCPUMax(quotaUs, periodUs int64) string {
	if quotaUs == sched.NoQuota {
		return fmt.Sprintf("max %d\n", periodUs)
	}
	return fmt.Sprintf("%d %d\n", quotaUs, periodUs)
}

// ParseCPUMax parses a cpu.max write: "max", "QUOTA" or "QUOTA PERIOD".
// A missing period keeps the current one (the kernel behaviour).
func ParseCPUMax(s string, currentPeriod int64) (quotaUs, periodUs int64, err error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || len(fields) > 2 {
		return 0, 0, fmt.Errorf("cgroupfs: malformed cpu.max write %q", s)
	}
	periodUs = currentPeriod
	if len(fields) == 2 {
		periodUs, err = strconv.ParseInt(fields[1], 10, 64)
		if err != nil || periodUs <= 0 {
			return 0, 0, fmt.Errorf("cgroupfs: bad period in %q", s)
		}
	}
	if fields[0] == "max" {
		return sched.NoQuota, periodUs, nil
	}
	quotaUs, err = strconv.ParseInt(fields[0], 10, 64)
	if err != nil || quotaUs <= 0 {
		return 0, 0, fmt.Errorf("cgroupfs: bad quota in %q", s)
	}
	return quotaUs, periodUs, nil
}

// ParseCPUStat extracts the named counter from a cpu.stat read.
func ParseCPUStat(content, key string) (int64, error) {
	for _, line := range strings.Split(content, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == key {
			return strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("cgroupfs: key %q not in cpu.stat", key)
}

// ParseCPUStatBytes is ParseCPUStat for a raw read buffer. It performs
// no allocation, so the controller's monitor stage can call it every
// period for every vCPU without generating garbage.
func ParseCPUStatBytes(content []byte, key string) (int64, error) {
	for len(content) > 0 {
		line := content
		if i := indexByte(content, '\n'); i >= 0 {
			line, content = content[:i], content[i+1:]
		} else {
			content = nil
		}
		sp := indexByte(line, ' ')
		if sp < 0 || string(line[:sp]) != key { // compare, no conversion alloc
			continue
		}
		v, ok := parseInt64Bytes(line[sp+1:])
		if !ok {
			return 0, fmt.Errorf("cgroupfs: bad %s value %q", key, line)
		}
		return v, nil
	}
	return 0, fmt.Errorf("cgroupfs: key %q not in cpu.stat", key)
}

// ParseSingleTID parses a cgroup.threads read without allocating,
// returning the first thread id and the total number of ids present.
// Malformed lines yield an error; cardinality is the caller's call.
func ParseSingleTID(content []byte) (tid, n int, err error) {
	for len(content) > 0 {
		line := content
		if i := indexByte(content, '\n'); i >= 0 {
			line, content = content[:i], content[i+1:]
		} else {
			content = nil
		}
		v, ok := parseInt64Bytes(line)
		if !ok {
			if isBlank(line) {
				continue
			}
			return 0, 0, fmt.Errorf("cgroupfs: bad tid %q", line)
		}
		if n == 0 {
			tid = int(v)
		}
		n++
	}
	return tid, n, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func isBlank(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return false
		}
	}
	return true
}

// parseInt64Bytes parses a possibly whitespace-padded decimal without
// going through a string.
func parseInt64Bytes(b []byte) (int64, bool) {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		v = -v
	}
	return v, true
}

// ParseTIDs parses a cgroup.threads / tasks read.
func ParseTIDs(content string) ([]int, error) {
	var out []int
	for _, line := range strings.Split(strings.TrimSpace(content), "\n") {
		if line == "" {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil {
			return nil, fmt.Errorf("cgroupfs: bad tid %q", line)
		}
		out = append(out, id)
	}
	return out, nil
}
