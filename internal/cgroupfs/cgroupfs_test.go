package cgroupfs

import (
	"strings"
	"testing"
	"testing/quick"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

func newTree(t *testing.T, cores int) (*Tree, *sched.Scheduler, *memfs.FS) {
	t.Helper()
	fs := memfs.New()
	s := sched.New(cores)
	tree, err := New(fs, s, DefaultMount)
	if err != nil {
		t.Fatal(err)
	}
	return tree, s, fs
}

func TestRootFilesExist(t *testing.T) {
	_, _, fs := newTree(t, 2)
	for _, f := range []string{"cpu.max", "cpu.stat", "cpu.weight", "cgroup.threads", "cgroup.procs", "cgroup.controllers"} {
		if !fs.Exists(DefaultMount + "/" + f) {
			t.Fatalf("missing root file %s", f)
		}
	}
	got, err := fs.ReadFile(DefaultMount + "/cpu.max")
	if err != nil || got != "max 100000\n" {
		t.Fatalf("root cpu.max = %q, %v", got, err)
	}
}

func TestCreateGroupFiles(t *testing.T) {
	tree, _, fs := newTree(t, 2)
	if _, err := tree.CreateGroup("machine.slice"); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CreateGroup("machine.slice/vm0"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(DefaultMount + "/machine.slice/vm0/cpu.max") {
		t.Fatal("nested cpu.max missing")
	}
	// mkdir is not recursive.
	if _, err := tree.CreateGroup("a/b/c"); err == nil {
		t.Fatal("recursive create succeeded")
	}
	if _, err := tree.CreateGroupAll("a/b/c"); err != nil {
		t.Fatalf("CreateGroupAll: %v", err)
	}
	if !fs.Exists(DefaultMount + "/a/b/c/cpu.stat") {
		t.Fatal("CreateGroupAll did not create files")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	tree, _, _ := newTree(t, 1)
	if _, err := tree.CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CreateGroup("g"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestCPUMaxWriteControlsQuota(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, err := tree.CreateGroup("vm")
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(g, nil)
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.max", "25000 100000"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Tick(10_000)
	}
	if th.UsageUs != 250_000 {
		t.Fatalf("usage = %d, want 250000 (25%% quota over 1 s)", th.UsageUs)
	}
	// Lift the cap.
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.max", "max"); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(DefaultMount + "/vm/cpu.max")
	if got != "max 100000\n" {
		t.Fatalf("cpu.max after reset = %q", got)
	}
}

func TestCPUMaxRejectsGarbage(t *testing.T) {
	_, _, fs := newTree(t, 1)
	for _, bad := range []string{"", "a b c", "-5", "0", "100 0", "100 -1", "12 bob"} {
		if err := fs.WriteFile(DefaultMount+"/cpu.max", bad); err == nil {
			t.Fatalf("cpu.max accepted %q", bad)
		}
	}
}

func TestCPUStatContents(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	s.NewThread(g, nil)
	s.Tick(10_000)
	content, err := fs.ReadFile(DefaultMount + "/vm/cpu.stat")
	if err != nil {
		t.Fatal(err)
	}
	usage, err := ParseCPUStat(content, "usage_usec")
	if err != nil {
		t.Fatal(err)
	}
	if usage != 10_000 {
		t.Fatalf("usage_usec = %d, want 10000", usage)
	}
	if _, err := ParseCPUStat(content, "nr_throttled"); err != nil {
		t.Fatalf("nr_throttled missing: %v", err)
	}
	if _, err := ParseCPUStat(content, "no_such_key"); err == nil {
		t.Fatal("unknown key parsed")
	}
}

func TestCgroupThreadsListsTIDs(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	t1 := s.NewThread(g, nil)
	t2 := s.NewThread(g, nil)
	content, _ := fs.ReadFile(DefaultMount + "/vm/cgroup.threads")
	ids, err := ParseTIDs(content)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != t1.ID || ids[1] != t2.ID {
		t.Fatalf("tids = %v, want [%d %d]", ids, t1.ID, t2.ID)
	}
}

func TestCPUWeight(t *testing.T) {
	tree, _, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.weight", "250\n"); err != nil {
		t.Fatal(err)
	}
	if g.Weight != 250 {
		t.Fatalf("weight = %d, want 250", g.Weight)
	}
	for _, bad := range []string{"0", "10001", "x"} {
		if err := fs.WriteFile(DefaultMount+"/vm/cpu.weight", bad); err == nil {
			t.Fatalf("cpu.weight accepted %q", bad)
		}
	}
}

func TestRemoveGroupCleansUp(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	if _, err := tree.CreateGroupAll("vm/vcpu0"); err != nil {
		t.Fatal(err)
	}
	g, _ := tree.Group("vm/vcpu0")
	th := s.NewThread(g, nil)
	if err := tree.RemoveGroup("vm"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(DefaultMount + "/vm") {
		t.Fatal("directory survived removal")
	}
	if _, err := tree.Group("vm/vcpu0"); err == nil {
		t.Fatal("nested group still resolvable")
	}
	s.Tick(10_000)
	if th.UsageUs != 0 {
		t.Fatal("thread of removed group ran")
	}
	if err := tree.RemoveGroup(""); err == nil {
		t.Fatal("removed root")
	}
}

func TestV1Dialect(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	th := s.NewThread(g, nil)
	if err := tree.EnableV1("/sys/fs/cgroup-v1/cpu"); err != nil {
		t.Fatal(err)
	}
	// Quota via v1 files.
	if err := fs.WriteFile("/sys/fs/cgroup-v1/cpu/vm/cpu.cfs_quota_us", "50000"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/sys/fs/cgroup-v1/cpu/vm/cpu.cfs_period_us", "100000"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Tick(10_000)
	}
	if th.UsageUs != 500_000 {
		t.Fatalf("usage = %d, want 500000", th.UsageUs)
	}
	// cpuacct.usage reports nanoseconds.
	got, _ := fs.ReadFile("/sys/fs/cgroup-v1/cpu/vm/cpuacct.usage")
	if strings.TrimSpace(got) != "500000000" {
		t.Fatalf("cpuacct.usage = %q, want 500000000", got)
	}
	// -1 resets to unlimited.
	if err := fs.WriteFile("/sys/fs/cgroup-v1/cpu/vm/cpu.cfs_quota_us", "-1"); err != nil {
		t.Fatal(err)
	}
	if g.QuotaUs != sched.NoQuota {
		t.Fatalf("quota = %d, want NoQuota", g.QuotaUs)
	}
	// New groups get v1 files too.
	if _, err := tree.CreateGroup("vm2"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/sys/fs/cgroup-v1/cpu/vm2/tasks") {
		t.Fatal("v1 files missing for new group")
	}
}

func TestParseCPUMaxRoundTrip(t *testing.T) {
	q, p, err := ParseCPUMax("max 250000", 100000)
	if err != nil || q != sched.NoQuota || p != 250000 {
		t.Fatalf("ParseCPUMax(max 250000) = %d, %d, %v", q, p, err)
	}
	q, p, err = ParseCPUMax("42000", 100000)
	if err != nil || q != 42000 || p != 100000 {
		t.Fatalf("ParseCPUMax(42000) = %d, %d, %v", q, p, err)
	}
	if FormatCPUMax(sched.NoQuota, 100000) != "max 100000\n" {
		t.Fatal("FormatCPUMax(NoQuota) wrong")
	}
	if FormatCPUMax(500, 1000) != "500 1000\n" {
		t.Fatal("FormatCPUMax(500,1000) wrong")
	}
}

// Property: any valid quota/period round-trips through format+parse.
func TestQuickCPUMaxRoundTrip(t *testing.T) {
	f := func(q, p uint32) bool {
		quota := int64(q%1_000_000) + 1
		period := int64(p%1_000_000) + 1
		s := FormatCPUMax(quota, period)
		gq, gp, err := ParseCPUMax(s, 0)
		return err == nil && gq == quota && gp == period
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestListIncludesAll(t *testing.T) {
	tree, _, _ := newTree(t, 1)
	if _, err := tree.CreateGroupAll("a/b"); err != nil {
		t.Fatal(err)
	}
	got := tree.List()
	want := map[string]bool{"": true, "a": true, "a/b": true}
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected path %q", p)
		}
	}
}

func TestEnableV1Twice(t *testing.T) {
	tree, _, _ := newTree(t, 1)
	if err := tree.EnableV1("/v1"); err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableV1("/v1b"); err == nil {
		t.Fatal("second EnableV1 accepted")
	}
}

func TestV1InvalidWrites(t *testing.T) {
	tree, _, fs := newTree(t, 1)
	if _, err := tree.CreateGroup("vm"); err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableV1("/v1"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"x", ""} {
		if err := fs.WriteFile("/v1/vm/cpu.cfs_quota_us", bad); err == nil {
			t.Fatalf("cfs_quota_us accepted %q", bad)
		}
	}
	for _, bad := range []string{"x", "0", "-5"} {
		if err := fs.WriteFile("/v1/vm/cpu.cfs_period_us", bad); err == nil {
			t.Fatalf("cfs_period_us accepted %q", bad)
		}
	}
	// cpuacct.usage and tasks are read-only.
	if err := fs.WriteFile("/v1/vm/cpuacct.usage", "0"); err == nil {
		t.Fatal("cpuacct.usage writable")
	}
}

func TestRemoveUnknownGroup(t *testing.T) {
	tree, _, _ := newTree(t, 1)
	if err := tree.RemoveGroup("ghost"); err == nil {
		t.Fatal("removing unknown group succeeded")
	}
	if _, err := tree.Group("ghost"); err == nil {
		t.Fatal("unknown group resolvable")
	}
}

func TestRemoveGroupCleansV1Files(t *testing.T) {
	tree, _, fs := newTree(t, 1)
	if err := tree.EnableV1("/v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.CreateGroup("vm"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/v1/vm/tasks") {
		t.Fatal("v1 files not created")
	}
	if err := tree.RemoveGroup("vm"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/v1/vm") {
		t.Fatal("v1 directory survived removal")
	}
}
