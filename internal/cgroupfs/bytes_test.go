package cgroupfs

import "testing"

func TestParseCPUStatBytes(t *testing.T) {
	content := []byte("usage_usec 123456\nuser_usec 123000\nsystem_usec 456\nnr_periods 9\n")
	for key, want := range map[string]int64{
		"usage_usec": 123456, "user_usec": 123000, "system_usec": 456, "nr_periods": 9,
	} {
		got, err := ParseCPUStatBytes(content, key)
		if err != nil || got != want {
			t.Fatalf("ParseCPUStatBytes(%s) = %d, %v; want %d", key, got, err, want)
		}
	}
	if _, err := ParseCPUStatBytes(content, "throttled_usec"); err == nil {
		t.Fatal("missing key parsed")
	}
	if _, err := ParseCPUStatBytes([]byte("usage_usec abc\n"), "usage_usec"); err == nil {
		t.Fatal("garbage value parsed")
	}
}

func TestParseCPUStatBytesMatchesString(t *testing.T) {
	content := "usage_usec 42\nuser_usec 41\n"
	s, errS := ParseCPUStat(content, "usage_usec")
	b, errB := ParseCPUStatBytes([]byte(content), "usage_usec")
	if errS != nil || errB != nil || s != b {
		t.Fatalf("string=%d,%v bytes=%d,%v", s, errS, b, errB)
	}
}

func TestParseSingleTID(t *testing.T) {
	tid, n, err := ParseSingleTID([]byte("4242\n"))
	if err != nil || tid != 4242 || n != 1 {
		t.Fatalf("got %d, %d, %v", tid, n, err)
	}
	if _, n, err := ParseSingleTID([]byte("1\n2\n3\n")); err != nil || n != 3 {
		t.Fatalf("multi: n=%d err=%v", n, err)
	}
	if _, n, err := ParseSingleTID([]byte("")); err != nil || n != 0 {
		t.Fatalf("empty: n=%d err=%v", n, err)
	}
	if _, n, err := ParseSingleTID([]byte("\n\n")); err != nil || n != 0 {
		t.Fatalf("blank: n=%d err=%v", n, err)
	}
	if _, _, err := ParseSingleTID([]byte("abc\n")); err == nil {
		t.Fatal("garbage tid parsed")
	}
}

func TestParseCPUStatBytesZeroAlloc(t *testing.T) {
	content := []byte("usage_usec 123456\nuser_usec 123000\n")
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ParseCPUStatBytes(content, "usage_usec"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseCPUStatBytes allocates %.1f/op", allocs)
	}
}
