package cgroupfs

import (
	"fmt"
	"strings"
	"testing"
)

func TestCPUMaxBurstFile(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, err := tree.CreateGroup("vm")
	if err != nil {
		t.Fatal(err)
	}
	// Burst requires a quota first, as on a real kernel.
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.max.burst", "10000"); err == nil {
		t.Fatal("burst without quota accepted")
	}
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.max", "50000 100000"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(DefaultMount+"/vm/cpu.max.burst", "40000"); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(DefaultMount + "/vm/cpu.max.burst")
	if strings.TrimSpace(got) != "40000" {
		t.Fatalf("cpu.max.burst = %q", got)
	}
	if g.BurstUs != 40_000 {
		t.Fatalf("group burst = %d", g.BurstUs)
	}
	for _, bad := range []string{"x", "-1", "60000" /* > quota */} {
		if err := fs.WriteFile(DefaultMount+"/vm/cpu.max.burst", bad); err == nil {
			t.Fatalf("cpu.max.burst accepted %q", bad)
		}
	}
	_ = s
}

func TestCPUStatIncludesBurstCounters(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	if err := g.SetQuota(50_000, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBurst(40_000); err != nil {
		t.Fatal(err)
	}
	// Idle window builds reserve, saturated window overruns it.
	active := false
	s.NewThread(g, func(now, dt int64) float64 {
		if active {
			return 1
		}
		return 0
	})
	for i := 0; i < 10; i++ {
		s.Tick(10_000)
	}
	active = true
	for i := 0; i < 20; i++ {
		s.Tick(10_000)
	}
	content, _ := fs.ReadFile(DefaultMount + "/vm/cpu.stat")
	nr, err := ParseCPUStat(content, "nr_bursts")
	if err != nil {
		t.Fatalf("nr_bursts missing: %v", err)
	}
	used, err := ParseCPUStat(content, "burst_usec")
	if err != nil {
		t.Fatalf("burst_usec missing: %v", err)
	}
	if nr == 0 || used != 40_000 {
		t.Fatalf("burst counters nr=%d used=%d, want used=40000", nr, used)
	}
}

func TestCPUPressureFile(t *testing.T) {
	tree, s, fs := newTree(t, 1)
	g, _ := tree.CreateGroup("vm")
	if err := g.SetQuota(10_000, 100_000); err != nil {
		t.Fatal(err)
	}
	s.NewThread(g, nil)
	for i := 0; i < 2000; i++ { // 20 s of heavy throttling
		s.Tick(10_000)
	}
	content, err := fs.ReadFile(DefaultMount + "/vm/cpu.pressure")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(content), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "some avg10=") ||
		!strings.HasPrefix(lines[1], "full avg10=") {
		t.Fatalf("cpu.pressure format wrong:\n%s", content)
	}
	var kind string
	var a10, a60, a300 float64
	var total int64
	if _, err := fmt.Sscanf(lines[0], "%s avg10=%f avg60=%f avg300=%f total=%d",
		&kind, &a10, &a60, &a300, &total); err != nil {
		t.Fatalf("parsing %q: %v", lines[0], err)
	}
	if a10 < 50 || a10 > 100 {
		t.Fatalf("avg10 = %v%%, want high pressure", a10)
	}
	if total <= 0 {
		t.Fatal("total stall time missing")
	}
}
