// Package sysfs emulates the cpufreq subset of /sys the controller reads:
// /sys/devices/system/cpu/cpu<N>/cpufreq/scaling_cur_freq (kHz) plus the
// static scaling_min_freq, scaling_max_freq and scaling_governor files.
package sysfs

import (
	"fmt"
	"strconv"
	"strings"

	"vfreq/internal/dvfs"
	"vfreq/internal/memfs"
)

// Mount is the conventional location of the cpu devices tree.
const Mount = "/sys/devices/system/cpu"

// Mount exposes a dvfs.Model's per-core frequencies under mount inside fs.
func MountModel(fs *memfs.FS, m *dvfs.Model, mount string) error {
	if err := fs.MkdirAll(mount); err != nil {
		return err
	}
	if err := fs.AddDynamic(mount+"/online", func() string {
		if m.Cores() == 1 {
			return "0\n"
		}
		return fmt.Sprintf("0-%d\n", m.Cores()-1)
	}, nil); err != nil {
		return err
	}
	for c := 0; c < m.Cores(); c++ {
		c := c
		dir := fmt.Sprintf("%s/cpu%d/cpufreq", mount, c)
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
		files := map[string]memfs.ReadFunc{
			"scaling_cur_freq": func() string { return fmt.Sprintf("%d\n", m.FreqKHz(c)) },
			"scaling_min_freq": func() string { return fmt.Sprintf("%d\n", m.Policy().MinMHz*1000) },
			"scaling_max_freq": func() string {
				max := m.Policy().MaxMHz
				if t := m.Policy().TurboMHz; t > max {
					max = t
				}
				return fmt.Sprintf("%d\n", max*1000)
			},
			"scaling_governor": func() string { return m.Governor() + "\n" },
		}
		for name, read := range files {
			if err := fs.AddDynamic(dir+"/"+name, read, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// CurFreqPath returns the scaling_cur_freq path of core c under mount.
func CurFreqPath(mount string, c int) string {
	return fmt.Sprintf("%s/cpu%d/cpufreq/scaling_cur_freq", mount, c)
}

// ParseKHz parses a cpufreq value file into kHz.
func ParseKHz(content string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(content), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("sysfs: bad frequency %q", content)
	}
	return v, nil
}

// ParseKHzBytes is ParseKHz for a raw read buffer; it allocates nothing,
// for the per-period per-vCPU frequency read of the monitor stage.
func ParseKHzBytes(content []byte) (int64, error) {
	b := content
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("sysfs: bad frequency %q", content)
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sysfs: bad frequency %q", content)
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, fmt.Errorf("sysfs: bad frequency %q", content)
		}
	}
	return v, nil
}

// ParseOnline parses an "online" range file ("0-63" or "0") into a count.
func ParseOnline(content string) (int, error) {
	s := strings.TrimSpace(content)
	if i := strings.IndexByte(s, '-'); i >= 0 {
		hi, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, fmt.Errorf("sysfs: bad online range %q", content)
		}
		return hi + 1, nil
	}
	if _, err := strconv.Atoi(s); err != nil {
		return 0, fmt.Errorf("sysfs: bad online file %q", content)
	}
	return 1, nil
}
