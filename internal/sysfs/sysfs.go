// Package sysfs emulates the cpufreq subset of /sys the controller reads:
// /sys/devices/system/cpu/cpu<N>/cpufreq/scaling_cur_freq (kHz) plus the
// static scaling_min_freq, scaling_max_freq and scaling_governor files,
// and the NUMA topology subset under /sys/devices/system/node
// (node<N>/cpulist) the sharded auction partitions buyers with.
package sysfs

import (
	"fmt"
	"strconv"
	"strings"

	"vfreq/internal/dvfs"
	"vfreq/internal/memfs"
)

// Mount is the conventional location of the cpu devices tree.
const Mount = "/sys/devices/system/cpu"

// Mount exposes a dvfs.Model's per-core frequencies under mount inside fs.
func MountModel(fs *memfs.FS, m *dvfs.Model, mount string) error {
	if err := fs.MkdirAll(mount); err != nil {
		return err
	}
	if err := fs.AddDynamic(mount+"/online", func() string {
		if m.Cores() == 1 {
			return "0\n"
		}
		return fmt.Sprintf("0-%d\n", m.Cores()-1)
	}, nil); err != nil {
		return err
	}
	for c := 0; c < m.Cores(); c++ {
		c := c
		dir := fmt.Sprintf("%s/cpu%d/cpufreq", mount, c)
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
		// scaling_cur_freq is read once per vCPU per period by the
		// monitor stage, so it renders append-style to the caller's
		// buffer; the cold policy files stay string-based.
		if err := fs.AddDynamicAppend(dir+"/scaling_cur_freq", func(buf []byte) []byte {
			buf = strconv.AppendInt(buf, m.FreqKHz(c), 10)
			return append(buf, '\n')
		}, nil); err != nil {
			return err
		}
		files := map[string]memfs.ReadFunc{
			"scaling_min_freq": func() string { return fmt.Sprintf("%d\n", m.Policy().MinMHz*1000) },
			"scaling_max_freq": func() string {
				max := m.Policy().MaxMHz
				if t := m.Policy().TurboMHz; t > max {
					max = t
				}
				return fmt.Sprintf("%d\n", max*1000)
			},
			"scaling_governor": func() string { return m.Governor() + "\n" },
		}
		for name, read := range files {
			if err := fs.AddDynamic(dir+"/"+name, read, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// CurFreqPath returns the scaling_cur_freq path of core c under mount.
func CurFreqPath(mount string, c int) string {
	return fmt.Sprintf("%s/cpu%d/cpufreq/scaling_cur_freq", mount, c)
}

// ParseKHz parses a cpufreq value file into kHz.
func ParseKHz(content string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(content), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("sysfs: bad frequency %q", content)
	}
	return v, nil
}

// ParseKHzBytes is ParseKHz for a raw read buffer; it allocates nothing,
// for the per-period per-vCPU frequency read of the monitor stage.
func ParseKHzBytes(content []byte) (int64, error) {
	b := content
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("sysfs: bad frequency %q", content)
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sysfs: bad frequency %q", content)
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, fmt.Errorf("sysfs: bad frequency %q", content)
		}
	}
	return v, nil
}

// NodeMount is the conventional location of the NUMA node tree.
const NodeMount = "/sys/devices/system/node"

// NodeCPUListPath returns the cpulist path of NUMA node n under mount.
func NodeCPUListPath(mount string, n int) string {
	return fmt.Sprintf("%s/node%d/cpulist", mount, n)
}

// MountNodes exposes a NUMA topology of nodes equal-sized contiguous
// blocks of cores under mount inside fs, the way the kernel lays out
// /sys/devices/system/node: node<N>/cpulist plus an "online" range file.
// A remainder of cores not divisible by nodes lands on the last node.
func MountNodes(fs *memfs.FS, mount string, cores, nodes int) error {
	if nodes <= 0 || cores <= 0 {
		return fmt.Errorf("sysfs: invalid NUMA layout %d cores / %d nodes", cores, nodes)
	}
	if nodes > cores {
		nodes = cores
	}
	if err := fs.MkdirAll(mount); err != nil {
		return err
	}
	online := "0\n"
	if nodes > 1 {
		online = fmt.Sprintf("0-%d\n", nodes-1)
	}
	if err := fs.AddFile(mount+"/online", online); err != nil {
		return err
	}
	per := cores / nodes
	for n := 0; n < nodes; n++ {
		dir := fmt.Sprintf("%s/node%d", mount, n)
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
		lo := n * per
		hi := lo + per - 1
		if n == nodes-1 {
			hi = cores - 1
		}
		list := fmt.Sprintf("%d\n", lo)
		if hi > lo {
			list = fmt.Sprintf("%d-%d\n", lo, hi)
		}
		if err := fs.AddFile(dir+"/cpulist", list); err != nil {
			return err
		}
	}
	return nil
}

// ParseCPUList parses a kernel cpulist file ("0-9,20-29" or "3") into
// the listed CPU indices, in file order.
func ParseCPUList(content string) ([]int, error) {
	s := strings.TrimSpace(content)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("sysfs: bad cpulist %q", content)
		}
		b, err := strconv.Atoi(hi)
		if err != nil || b < a {
			return nil, fmt.Errorf("sysfs: bad cpulist %q", content)
		}
		for c := a; c <= b; c++ {
			out = append(out, c)
		}
	}
	return out, nil
}

// ParseOnline parses an "online" range file ("0-63" or "0") into a count.
func ParseOnline(content string) (int, error) {
	s := strings.TrimSpace(content)
	if i := strings.IndexByte(s, '-'); i >= 0 {
		hi, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, fmt.Errorf("sysfs: bad online range %q", content)
		}
		return hi + 1, nil
	}
	if _, err := strconv.Atoi(s); err != nil {
		return 0, fmt.Errorf("sysfs: bad online file %q", content)
	}
	return 1, nil
}
