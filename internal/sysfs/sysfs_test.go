package sysfs

import (
	"testing"

	"vfreq/internal/dvfs"
	"vfreq/internal/memfs"
)

func model(t *testing.T, cores int) *dvfs.Model {
	t.Helper()
	m, err := dvfs.New(cores, dvfs.GovernorSchedutil,
		dvfs.Policy{MinMHz: 1200, MaxMHz: 2400, TurboMHz: 3100})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMountAndRead(t *testing.T) {
	fs := memfs.New()
	m := model(t, 4)
	if err := MountModel(fs, m, Mount); err != nil {
		t.Fatal(err)
	}
	content, err := fs.ReadFile(CurFreqPath(Mount, 0))
	if err != nil {
		t.Fatal(err)
	}
	khz, err := ParseKHz(content)
	if err != nil {
		t.Fatal(err)
	}
	if khz != 1_200_000 {
		t.Fatalf("idle freq = %d kHz, want 1200000", khz)
	}
	m.Update([]float64{1, 1, 1, 1})
	content, _ = fs.ReadFile(CurFreqPath(Mount, 2))
	khz, _ = ParseKHz(content)
	if khz != 2_400_000 {
		t.Fatalf("loaded freq = %d kHz, want 2400000", khz)
	}
}

func TestStaticFiles(t *testing.T) {
	fs := memfs.New()
	if err := MountModel(fs, model(t, 2), Mount); err != nil {
		t.Fatal(err)
	}
	gov, _ := fs.ReadFile(Mount + "/cpu1/cpufreq/scaling_governor")
	if gov != "schedutil\n" {
		t.Fatalf("governor = %q", gov)
	}
	max, _ := fs.ReadFile(Mount + "/cpu0/cpufreq/scaling_max_freq")
	if k, _ := ParseKHz(max); k != 3_100_000 {
		t.Fatalf("scaling_max_freq = %q, want turbo 3100000", max)
	}
	min, _ := fs.ReadFile(Mount + "/cpu0/cpufreq/scaling_min_freq")
	if k, _ := ParseKHz(min); k != 1_200_000 {
		t.Fatalf("scaling_min_freq = %q", min)
	}
}

func TestOnlineFile(t *testing.T) {
	fs := memfs.New()
	if err := MountModel(fs, model(t, 64), Mount); err != nil {
		t.Fatal(err)
	}
	content, _ := fs.ReadFile(Mount + "/online")
	n, err := ParseOnline(content)
	if err != nil || n != 64 {
		t.Fatalf("online = %d, %v; want 64", n, err)
	}
	fs1 := memfs.New()
	if err := MountModel(fs1, model(t, 1), Mount); err != nil {
		t.Fatal(err)
	}
	content, _ = fs1.ReadFile(Mount + "/online")
	n, err = ParseOnline(content)
	if err != nil || n != 1 {
		t.Fatalf("single-core online = %d, %v; want 1", n, err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseKHz("fast"); err == nil {
		t.Fatal("ParseKHz accepted garbage")
	}
	if _, err := ParseKHz("-3"); err == nil {
		t.Fatal("ParseKHz accepted negative")
	}
	if _, err := ParseOnline("a-b"); err == nil {
		t.Fatal("ParseOnline accepted garbage range")
	}
	if _, err := ParseOnline("x"); err == nil {
		t.Fatal("ParseOnline accepted garbage")
	}
}

func TestParseKHzBytes(t *testing.T) {
	khz, err := ParseKHzBytes([]byte("2200000\n"))
	if err != nil || khz != 2200000 {
		t.Fatalf("ParseKHzBytes = %d, %v", khz, err)
	}
	for _, bad := range []string{"", "\n", "fast", "-3", "12 34"} {
		if _, err := ParseKHzBytes([]byte(bad)); err == nil {
			t.Fatalf("ParseKHzBytes accepted %q", bad)
		}
	}
	content := []byte("2200000\n")
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ParseKHzBytes(content); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseKHzBytes allocates %.1f/op", allocs)
	}
}
