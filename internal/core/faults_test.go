package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"vfreq/internal/platform"
)

// warmUp runs enough clean steps for history to fill and caps to settle.
func warmUp(t *testing.T, c *Controller, h *fakeHost, steps int, usPerStep int64) {
	t.Helper()
	for i := 0; i < steps; i++ {
		for _, info := range h.vms {
			for j := 0; j < info.VCPUs; j++ {
				h.consume(info.Name, j, usPerStep)
			}
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// A transient fault that fits inside the retry budget is invisible: the
// step reports a retry but no degradation.
func TestRetryMasksTransientFault(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 1, 1200)
	fh := platform.WithFaults(inner, 7)
	c := mustController(t, fh, DefaultConfig()) // HostRetries = 1
	warmUp(t, c, inner, 2, 300_000)
	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{Count: 1})
	inner.consume("a", 0, 300_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rep := c.LastReport()
	if rep.DegradedVCPUs != 0 || rep.FaultCount() != 0 {
		t.Fatalf("transient fault not masked: %s", rep.String())
	}
	if rep.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", rep.Retries)
	}
	if fh.Injected(platform.SiteUsage) != 1 {
		t.Fatalf("injected = %d", fh.Injected(platform.SiteUsage))
	}
}

// A persistent per-vCPU fault degrades only that vCPU: its cap is held at
// the last-known-good value while healthy vCPUs keep receiving fresh
// quotas, and the step still succeeds.
func TestPersistentFaultHoldsLastGoodCap(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 2, 1200)
	fh := platform.WithFaults(inner, 7)
	c := mustController(t, fh, DefaultConfig())
	warmUp(t, c, inner, 3, 300_000)
	held := c.VM("a").VCPUs[1].CapUs
	applied := inner.applied

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vm == "a" && vcpu == 1 },
	})
	for i := 0; i < 3; i++ {
		inner.consume("a", 0, 900_000)
		inner.consume("a", 1, 900_000)
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		rep := c.LastReport()
		if rep.DegradedVCPUs != 1 || rep.HealthyVCPUs != 1 {
			t.Fatalf("step %d: degraded/healthy = %d/%d", i, rep.DegradedVCPUs, rep.HealthyVCPUs)
		}
		if !errors.Is(rep.Faults[0].Err, platform.ErrInjected) {
			t.Fatalf("fault not the injected one: %v", rep.Faults[0])
		}
		if got := c.VM("a").VCPUs[1].CapUs; got != held {
			t.Fatalf("degraded cap moved: %d, want held %d", got, held)
		}
	}
	if c.VM("a").VCPUs[1].FailedSteps != 3 {
		t.Fatalf("FailedSteps = %d, want 3", c.VM("a").VCPUs[1].FailedSteps)
	}
	// The healthy vCPU kept getting quota writes (one per step).
	if inner.applied < applied+3 {
		t.Fatalf("healthy vCPU starved of quota writes: %d → %d", applied, inner.applied)
	}
	// Recovery: clear the plan and the vCPU rejoins the loop.
	fh.Clear(platform.SiteUsage)
	inner.consume("a", 1, 900_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	v := c.VM("a").VCPUs[1]
	if v.Degraded || v.FailedSteps != 0 {
		t.Fatalf("vCPU did not recover: %+v", v)
	}
	if c.LastReport().DegradedVCPUs != 0 {
		t.Fatal("report still shows degradation after recovery")
	}
}

// Conservation under partial failure: whatever subset of vCPUs degrades,
// Σcaps never exceeds the machine capacity (the market subtracts held
// caps like any other allocation).
func TestConservationUnderPartialFailure(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 2, 1200)
	inner.addVM("b", 1, 600)
	inner.addVM("c", 1, 1800)
	fh := platform.WithFaults(inner, 99)
	cfg := DefaultConfig()
	cfg.HostRetries = 0 // let every injected fault land
	c := mustController(t, fh, cfg)
	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{Rate: 0.3})
	fh.MustPlan(platform.SiteSetMax, platform.FaultPlan{Rate: 0.3})
	rng := rand.New(rand.NewSource(5))
	sawDegraded := false
	for step := 0; step < 30; step++ {
		for _, info := range inner.vms {
			for j := 0; j < info.VCPUs; j++ {
				inner.consume(info.Name, j, int64(rng.Intn(1_000_001)))
			}
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.LastReport().Degraded() {
			sawDegraded = true
		}
		var total int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs < 0 || v.CapUs > cfg.PeriodUs {
					t.Fatalf("cap %d out of per-vCPU range", v.CapUs)
				}
				total += v.CapUs
			}
		}
		if total > c.CapacityUs() {
			t.Fatalf("step %d: Σcaps %d > capacity %d under partial failure",
				step, total, c.CapacityUs())
		}
	}
	if !sawDegraded {
		t.Fatal("fault rate 0.3 over 30 steps never degraded a vCPU")
	}
}

// Live template-frequency change: the Eq. 2 guarantee follows on the next
// Step (regression: it used to stick to the admission-time value).
func TestReconcileFrequencyChange(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.VM("a").GuaranteeUs; got != 500_000 {
		t.Fatalf("guarantee = %d, want 500000", got)
	}
	h.vms[0].FreqMHz = 600
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.VM("a").GuaranteeUs; got != 250_000 {
		t.Fatalf("guarantee after downgrade = %d, want 250000", got)
	}
	rep := c.LastReport()
	if len(rep.Reconfigured) != 1 || rep.Reconfigured[0] != "a" {
		t.Fatalf("Reconfigured = %v, want [a]", rep.Reconfigured)
	}
}

// A frequency change above F_MAX is re-validated on reconcile (regression:
// the check used to run only at admission): the change is rejected, the
// last-known-good template held, and the fault reported.
func TestReconcileRejectsInfeasibleFrequencyChange(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.vms[0].FreqMHz = 5000 // above 2400 F_MAX
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("a")
	if st.GuaranteeUs != 500_000 || st.Info.FreqMHz != 1200 {
		t.Fatalf("infeasible change applied: guarantee %d, freq %d",
			st.GuaranteeUs, st.Info.FreqMHz)
	}
	rep := c.LastReport()
	if rep.FaultCount() != 1 || rep.Faults[0].Op != "template" {
		t.Fatalf("faults = %+v, want one template fault", rep.Faults)
	}
}

// Live vCPU-count change: the tracked slice grows (warm registration) and
// shrinks (with quota release) to follow the host (regression: it used to
// stay at the admission-time length).
func TestReconcileVCPUGrowShrink(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 1200)
	warmUp(t, c, h, 2, 300_000)
	// Grow 2 → 4.
	h.vms[0].VCPUs = 4
	h.usage[key("a", 2)] = 0
	h.usage[key("a", 3)] = 0
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("a")
	if len(st.VCPUs) != 4 {
		t.Fatalf("len(VCPUs) = %d after grow, want 4", len(st.VCPUs))
	}
	if st.VCPUs[3].CapUs != st.GuaranteeUs {
		t.Fatalf("new vCPU cap = %d, want guarantee %d", st.VCPUs[3].CapUs, st.GuaranteeUs)
	}
	// Shrink 4 → 1: trailing quotas are released.
	h.vms[0].VCPUs = 1
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.VM("a").VCPUs); got != 1 {
		t.Fatalf("len(VCPUs) = %d after shrink, want 1", got)
	}
	want := map[string]bool{key("a", 1): true, key("a", 2): true, key("a", 3): true}
	for _, k := range h.cleared {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("shrink left quotas behind: %v (cleared %v)", want, h.cleared)
	}
}

// A partial growth (initial read fails for one new vCPU) stops at that
// index and is completed on a later step.
func TestReconcilePartialGrowthRetries(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.vms[0].VCPUs = 3
	h.usage[key("a", 1)] = 0 // vCPU 2 has no usage file yet → read fails
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.VM("a").VCPUs); got != 2 {
		t.Fatalf("len(VCPUs) = %d after partial grow, want 2", got)
	}
	if c.LastReport().FaultCount() == 0 {
		t.Fatal("partial growth not reported")
	}
	h.usage[key("a", 2)] = 0 // the file appears
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.VM("a").VCPUs); got != 3 {
		t.Fatalf("len(VCPUs) = %d after retry, want 3", got)
	}
}

// VM departure resets the vCPU cgroups to an unlimited quota and a zero
// burst (regression: quotas used to outlive the VM, throttling any later
// VM that reused the cgroup path).
func TestDepartureReleasesQuotas(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.BurstFraction = 0.2
	c := mustController(t, h, cfg)
	h.addVM("a", 2, 1200)
	warmUp(t, c, h, 2, 300_000)
	if h.setBurst[key("a", 0)] == 0 {
		t.Fatal("burst budget not armed during the run")
	}
	h.vms = nil
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if _, ok := h.setMax[key("a", j)]; ok {
			t.Fatalf("vCPU %d quota survived departure", j)
		}
		if got := h.setBurst[key("a", j)]; got != 0 {
			t.Fatalf("vCPU %d burst = %d after departure, want 0", j, got)
		}
	}
	rep := c.LastReport()
	if len(rep.Removed) != 1 || rep.Removed[0] != "a" {
		t.Fatalf("Removed = %v, want [a]", rep.Removed)
	}
}

// In monitoring-only mode (execution A) no departure cleanup writes
// happen either — the controller never touched the cgroups.
func TestDepartureWritesNothingWithoutControl(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.ControlEnabled = false
	c := mustController(t, h, cfg)
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.vms = nil
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if len(h.cleared) != 0 {
		t.Fatalf("monitoring-only departure cleared %v", h.cleared)
	}
}

// The report's fault list is bounded; the overflow is counted instead of
// stored.
func TestStepReportFaultCap(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.HostRetries = 0
	c := mustController(t, h, cfg)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("vm%d", i)
		h.vms = append(h.vms, platform.VMInfo{Name: name, VCPUs: 4, FreqMHz: 500})
		for j := 0; j < 4; j++ {
			h.usage[key(name, j)] = 0
		}
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Every usage file disappears: 160 monitor faults in one step.
	h.usage = map[string]int64{}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rep := c.LastReport()
	if len(rep.Faults) != maxFaultsPerStep {
		t.Fatalf("stored faults = %d, want capped %d", len(rep.Faults), maxFaultsPerStep)
	}
	if rep.FaultCount() != 160 {
		t.Fatalf("FaultCount = %d, want 160", rep.FaultCount())
	}
	if rep.DegradedVCPUs != 160 || rep.HealthyVCPUs != 0 {
		t.Fatalf("degraded/healthy = %d/%d", rep.DegradedVCPUs, rep.HealthyVCPUs)
	}
}
