package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes through the checkpoint
// decoder. The property under test is the crash-safety contract: a
// corrupted checkpoint must never panic the recovering controller, and
// anything the decoder accepts must re-encode to an equally valid
// checkpoint.
func FuzzDecodeSnapshot(f *testing.F) {
	// Seed with a real checkpoint from a live controller plus the classic
	// malformed shapes.
	h := newFakeHost()
	h.addVM("web", 2, 500)
	h.addVM("batch", 4, 1200)
	if c, err := New(h, DefaultConfig()); err == nil {
		for i := 0; i < 3; i++ {
			h.consume("web", 0, 200_000)
			h.consume("batch", 1, 600_000)
			if err := c.Step(); err != nil {
				break
			}
		}
		if raw, err := c.Snapshot().JSON(); err == nil {
			f.Add(raw)
			f.Add(raw[:len(raw)/2]) // truncated mid-object
		}
	}
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":2,"step":1}`)) // pre-breaker version: rejected
	f.Add([]byte(`{"version":3,"step":-1}`))
	f.Add([]byte(`{"version":3,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":99999}]}`))
	f.Add([]byte(`{"version":3,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":500,"vcpus":[{"index":7}]}]}`))
	f.Add([]byte(`{"version":3,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":500,"breaker":1}]}`)) // open with no window left
	f.Add([]byte(`{"version":3,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":500,"breaker":7}]}`)) // unknown phase

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		raw, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(raw); err != nil {
			t.Fatalf("re-encoded valid checkpoint rejected: %v", err)
		}
	})
}

// fuzzByteStream doles bytes out of a fuzz payload, padding with zeros
// once the payload runs dry, so any input decodes to a valid market.
type fuzzByteStream struct {
	data []byte
	pos  int
}

func (s *fuzzByteStream) byte() byte {
	if s.pos >= len(s.data) {
		return 0
	}
	b := s.data[s.pos]
	s.pos++
	return b
}

func (s *fuzzByteStream) u16() uint16 {
	return binary.LittleEndian.Uint16([]byte{s.byte(), s.byte()})
}

// FuzzAuction drives arbitrary buyer populations — estimates, caps,
// wallets and shard (core) assignments — through the serial and the
// sharded auction on twin controllers. The property under test is the
// conservation contract of Algorithm 1: neither path may panic, mint,
// leak or double-sell cycles, overdraw a wallet, cap a vCPU beyond its
// estimate or below its pre-auction base — and the two paths must agree
// on every aggregate (cycles sold, caps total, credits total) even
// though per-buyer orderings differ.
func FuzzAuction(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 200, 16, 39, 2, 1, 0, 0, 4, 4})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 128, 7, 6, 5, 4, 3, 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &fuzzByteStream{data: data}
		nVMs := int(s.byte())%6 + 1
		shards := int(s.byte())%7 + 2 // 2..8
		type vmSpec struct {
			vcpus  int
			credit int64
		}
		specs := make([]vmSpec, nVMs)
		for i := range specs {
			specs[i] = vmSpec{
				vcpus:  int(s.byte())%4 + 1,
				credit: int64(s.u16()) * 32, // 0 .. ~2.1M
			}
		}
		build := func(shardCount int) *Controller {
			h := newFakeHost()
			h.node.Cores = 16
			for i, sp := range specs {
				h.addVM(fmt.Sprintf("vm%d", i), sp.vcpus, 1200)
			}
			cfg := DefaultConfig()
			cfg.AuctionShards = shardCount
			c, err := New(h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
			return c
		}
		serial := build(1)
		sharded := build(shards)

		// One decoded state applied to both twins. The stream must be
		// read once, not per twin, so both see identical buyers.
		type buyer struct {
			cap, est int64
			core     int
		}
		var buyers []buyer
		for _, sp := range specs {
			for j := 0; j < sp.vcpus; j++ {
				cap := int64(s.u16()) * 8 // 0 .. ~520k
				buyers = append(buyers, buyer{
					cap:  cap,
					est:  cap + int64(s.u16())*8,
					core: int(s.byte()) % 16,
				})
			}
		}
		market := int64(s.u16()) * 32
		apply := func(c *Controller) (caps, credits int64, base map[*VCPUState]int64) {
			base = map[*VCPUState]int64{}
			k := 0
			for i, vs := range c.VMs() {
				vs.CreditUs = specs[i].credit
				credits += vs.CreditUs
				for _, v := range vs.VCPUs {
					v.CapUs = buyers[k].cap
					v.EstUs = buyers[k].est
					v.LastCore = buyers[k].core
					base[v] = v.CapUs
					caps += v.CapUs
					k++
				}
			}
			return caps, credits, base
		}
		check := func(c *Controller, name string, caps0, credits0 int64,
			base map[*VCPUState]int64, market, left int64) (caps, credits int64) {
			if left < 0 || left > market {
				t.Fatalf("%s: leftover %d outside [0, %d]", name, left, market)
			}
			for _, vs := range c.VMs() {
				if vs.CreditUs < 0 {
					t.Fatalf("%s: wallet of %s overdrawn: %d", name, vs.Info.Name, vs.CreditUs)
				}
				credits += vs.CreditUs
				for _, v := range vs.VCPUs {
					if v.CapUs > v.EstUs {
						t.Fatalf("%s: %s/%d bought beyond estimate", name, v.VM, v.Index)
					}
					if v.CapUs < base[v] {
						t.Fatalf("%s: %s/%d dropped below its base cap", name, v.VM, v.Index)
					}
					caps += v.CapUs
				}
			}
			sold := market - left
			if caps-caps0 != sold {
				t.Fatalf("%s: cycles minted or leaked: Δcaps %d, sold %d", name, caps-caps0, sold)
			}
			if credits0-credits != sold {
				t.Fatalf("%s: wallet debits %d ≠ cycles bought %d", name, credits0-credits, sold)
			}
			return caps, credits
		}

		caps0, credits0, baseA := apply(serial)
		_, _, baseB := apply(sharded)
		leftA := serial.auctionSharded(market)
		leftB := sharded.auctionSharded(market)
		capsA, credA := check(serial, "serial", caps0, credits0, baseA, market, leftA)
		capsB, credB := check(sharded, fmt.Sprintf("sharded(%d)", shards), caps0, credits0, baseB, market, leftB)
		if leftA != leftB || capsA != capsB || credA != credB {
			t.Fatalf("serial vs sharded(%d) aggregates diverged: left %d/%d caps %d/%d credits %d/%d",
				shards, leftA, leftB, capsA, capsB, credA, credB)
		}
	})
}

// FuzzAdoptVM feeds arbitrary JSON through the migration adoption path
// on a live controller. The property is the same crash-safety contract
// DecodeSnapshot honours: a malformed snapshot must never panic or
// corrupt the target — on error the controller is unchanged, and on
// success the adopted VM re-exports as a snapshot the validator accepts.
func FuzzAdoptVM(f *testing.F) {
	h := newFakeHost()
	h.addVM("web", 2, 1200)
	if c, err := New(h, DefaultConfig()); err == nil {
		for i := 0; i < 3; i++ {
			h.consume("web", 0, 200_000)
			h.consume("web", 1, 150_000)
			if err := c.Step(); err != nil {
				break
			}
		}
		if snap, err := c.ExportVM("web"); err == nil {
			if raw, err := json.Marshal(snap); err == nil {
				f.Add(raw)
			}
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"web"}`))
	f.Add([]byte(`{"name":"web","freq_mhz":1200,"credit_us":-5}`))
	f.Add([]byte(`{"name":"web","freq_mhz":1200,"breaker":1}`)) // open, no window
	f.Add([]byte(`{"name":"web","freq_mhz":1200,"vcpus":[{"index":3}]}`))
	f.Add([]byte(`{"name":"ghost","freq_mhz":1200}`)) // not provisioned
	f.Add([]byte(`{"name":"web","freq_mhz":99999}`))  // above F_MAX
	f.Add([]byte(`{"name":"web","freq_mhz":1200,"vcpus":[{"index":0,"hist":[-1]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var snap VMSnapshot
		// Partial decodes still stress the validator: adopt whatever the
		// decoder managed to fill in before erroring.
		_ = json.Unmarshal(data, &snap)

		tgt := newFakeHost()
		tgt.addVM("web", 2, 1200)
		ct, err := New(tgt, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := ct.AdoptVM(snap); err != nil { // must not panic
			if ct.VM(snap.Name) != nil {
				t.Fatalf("failed adoption left %q tracked", snap.Name)
			}
			return
		}
		re, err := ct.ExportVM(snap.Name)
		if err != nil {
			t.Fatalf("adopted VM does not re-export: %v", err)
		}
		node := tgt.Node()
		if err := validateVMSnapshot(re, node.MaxFreqMHz, DefaultConfig().PeriodUs); err != nil {
			t.Fatalf("adopted VM re-exports an invalid snapshot: %v", err)
		}
		if err := ct.Step(); err != nil {
			t.Fatalf("controller cannot step after adoption: %v", err)
		}
	})
}
