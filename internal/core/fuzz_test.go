package core

import (
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes through the checkpoint
// decoder. The property under test is the crash-safety contract: a
// corrupted checkpoint must never panic the recovering controller, and
// anything the decoder accepts must re-encode to an equally valid
// checkpoint.
func FuzzDecodeSnapshot(f *testing.F) {
	// Seed with a real checkpoint from a live controller plus the classic
	// malformed shapes.
	h := newFakeHost()
	h.addVM("web", 2, 500)
	h.addVM("batch", 4, 1200)
	if c, err := New(h, DefaultConfig()); err == nil {
		for i := 0; i < 3; i++ {
			h.consume("web", 0, 200_000)
			h.consume("batch", 1, 600_000)
			if err := c.Step(); err != nil {
				break
			}
		}
		if raw, err := c.Snapshot().JSON(); err == nil {
			f.Add(raw)
			f.Add(raw[:len(raw)/2]) // truncated mid-object
		}
	}
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":2,"step":-1}`))
	f.Add([]byte(`{"version":2,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":99999}]}`))
	f.Add([]byte(`{"version":2,"cores":4,"max_freq_mhz":2400,"period_us":1000000,` +
		`"vms":[{"name":"a","freq_mhz":500,"vcpus":[{"index":7}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		raw, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(raw); err != nil {
			t.Fatalf("re-encoded valid checkpoint rejected: %v", err)
		}
	})
}
