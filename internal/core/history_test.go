package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistoryPushEvict(t *testing.T) {
	h := NewHistory(3)
	for _, v := range []int64{1, 2, 3} {
		h.Push(v)
	}
	if h.Len() != 3 || h.At(0) != 1 || h.At(2) != 3 {
		t.Fatalf("history contents wrong: %d %d %d", h.At(0), h.At(1), h.At(2))
	}
	h.Push(4) // evicts 1
	if h.Len() != 3 || h.At(0) != 2 || h.At(2) != 4 {
		t.Fatalf("after evict: %d %d %d", h.At(0), h.At(1), h.At(2))
	}
	if h.Last() != 4 {
		t.Fatalf("Last = %d", h.Last())
	}
}

func TestHistoryEmpty(t *testing.T) {
	h := NewHistory(4)
	if h.Len() != 0 || h.Last() != 0 || h.Mean() != 0 || h.Trend() != 0 {
		t.Fatal("empty history not neutral")
	}
}

func TestHistoryMinCapacity(t *testing.T) {
	h := NewHistory(0) // clamped to 2
	h.Push(1)
	h.Push(2)
	h.Push(3)
	if h.Len() != 2 || h.At(0) != 2 {
		t.Fatalf("min capacity not enforced: len=%d", h.Len())
	}
}

func TestHistoryAtPanics(t *testing.T) {
	h := NewHistory(3)
	h.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	h.At(1)
}

func TestHistoryMean(t *testing.T) {
	h := NewHistory(4)
	for _, v := range []int64{10, 20, 30} {
		h.Push(v)
	}
	if h.Mean() != 20 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestTrendLinear(t *testing.T) {
	h := NewHistory(5)
	// y = 100 + 7x
	for x := int64(1); x <= 5; x++ {
		h.Push(100 + 7*x)
	}
	if got := h.Trend(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Trend = %v, want 7", got)
	}
}

func TestTrendConstantIsZero(t *testing.T) {
	h := NewHistory(5)
	for i := 0; i < 5; i++ {
		h.Push(42)
	}
	if got := h.Trend(); got != 0 {
		t.Fatalf("Trend = %v, want 0", got)
	}
}

func TestTrendDecreasing(t *testing.T) {
	h := NewHistory(4)
	for _, v := range []int64{1000, 800, 600, 400} {
		h.Push(v)
	}
	if got := h.Trend(); math.Abs(got+200) > 1e-9 {
		t.Fatalf("Trend = %v, want -200", got)
	}
}

func TestTrendSingleSample(t *testing.T) {
	h := NewHistory(5)
	h.Push(9)
	if h.Trend() != 0 {
		t.Fatal("single-sample trend not zero")
	}
}

func TestReset(t *testing.T) {
	h := NewHistory(3)
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 || h.Trend() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: the trend of an exact affine series equals its slope, for any
// intercept/slope and window length, including after evictions.
func TestQuickTrendAffine(t *testing.T) {
	f := func(a int16, b int8, n8, extra8 uint8) bool {
		n := int(n8%6) + 2
		extra := int(extra8 % 10)
		h := NewHistory(n)
		for x := int64(1); x <= int64(n+extra); x++ {
			h.Push(int64(a) + int64(b)*x)
		}
		return math.Abs(h.Trend()-float64(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
