package core

import (
	"fmt"
	"sort"
	"time"

	"vfreq/internal/platform"
)

// VCPUState is the controller's per-vCPU bookkeeping, exported for
// inspection by traces and tests.
type VCPUState struct {
	VM    string
	Index int

	// Hist holds the consumption of the last n periods (u values).
	Hist *History
	// PrevUsageUs is the cumulative usage at the previous step.
	PrevUsageUs int64
	// LastU is u_{i,j,t}: cycles consumed during the last period.
	LastU int64
	// CapUs is c_{i,j,t}: the cycles allocated for the next period
	// (applied as a cgroup quota when control is enabled).
	CapUs int64
	// EstUs is e_{i,j,t}: the estimated upcoming consumption.
	EstUs int64
	// TID is the vCPU thread id.
	TID int
	// LastCore is the core the thread last ran on.
	LastCore int
	// FreqMHz is the monitored virtual frequency estimate:
	// (u/p) × frequency of the last core.
	FreqMHz float64

	// warm marks a vCPU registered during the current step: the first
	// usage reading happens at registration time, so no consumption
	// delta exists until the next step. Warm vCPUs keep their initial
	// guarantee-level allocation and accrue no credits.
	warm bool
}

// VMState is the controller's per-VM bookkeeping.
type VMState struct {
	Info platform.VMInfo
	// GuaranteeUs is C_i of Eq. 2.
	GuaranteeUs int64
	// CreditUs is the VM's credit wallet (Eq. 4), in cycles.
	CreditUs int64
	// VCPUs holds the per-vCPU states.
	VCPUs []*VCPUState
}

// Controller runs the six-stage control loop against a platform host.
type Controller struct {
	cfg  Config
	host platform.Host
	node platform.NodeInfo

	vms   map[string]*VMState
	order []string

	steps   int64
	timings StageTimings
}

// New creates a controller.
func New(h platform.Host, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node := h.Node()
	if node.Cores <= 0 || node.MaxFreqMHz <= 0 {
		return nil, fmt.Errorf("core: invalid node info %+v", node)
	}
	return &Controller{
		cfg:  cfg,
		host: h,
		node: node,
		vms:  map[string]*VMState{},
	}, nil
}

// Config returns the active configuration.
func (c *Controller) Config() Config { return c.cfg }

// Node returns the node description the controller operates on.
func (c *Controller) Node() platform.NodeInfo { return c.node }

// Steps returns the number of completed control iterations.
func (c *Controller) Steps() int64 { return c.steps }

// LastTimings returns the stage timings of the most recent Step.
func (c *Controller) LastTimings() StageTimings { return c.timings }

// VM returns the state of a VM, or nil.
func (c *Controller) VM(name string) *VMState { return c.vms[name] }

// VMs returns all VM states in provisioning order.
func (c *Controller) VMs() []*VMState {
	out := make([]*VMState, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.vms[n])
	}
	return out
}

// guarantee computes C_i (Eq. 2) for a template frequency on this node.
func (c *Controller) guarantee(freqMHz int64) int64 {
	return c.cfg.PeriodUs * freqMHz / c.node.MaxFreqMHz
}

// syncVMs reconciles the controller state with the host's VM list.
func (c *Controller) syncVMs() error {
	infos, err := c.host.ListVMs()
	if err != nil {
		return fmt.Errorf("core: listing VMs: %w", err)
	}
	seen := map[string]bool{}
	for _, info := range infos {
		seen[info.Name] = true
		if st, ok := c.vms[info.Name]; ok {
			st.Info = info
			continue
		}
		if info.FreqMHz > c.node.MaxFreqMHz {
			return fmt.Errorf("core: VM %q requests %d MHz above node F_MAX %d",
				info.Name, info.FreqMHz, c.node.MaxFreqMHz)
		}
		st := &VMState{Info: info, GuaranteeUs: c.guarantee(info.FreqMHz)}
		for j := 0; j < info.VCPUs; j++ {
			usage, err := c.host.UsageUs(info.Name, j)
			if err != nil {
				return fmt.Errorf("core: initial usage of %s/vcpu%d: %w", info.Name, j, err)
			}
			st.VCPUs = append(st.VCPUs, &VCPUState{
				VM:          info.Name,
				Index:       j,
				Hist:        NewHistory(c.cfg.HistoryLen),
				PrevUsageUs: usage,
				CapUs:       st.GuaranteeUs,
				EstUs:       st.GuaranteeUs,
				LastCore:    -1,
				warm:        true,
			})
		}
		c.vms[info.Name] = st
		c.order = append(c.order, info.Name)
	}
	// Drop departed VMs.
	for name := range c.vms {
		if !seen[name] {
			delete(c.vms, name)
			for i, n := range c.order {
				if n == name {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}

// Step runs one full control iteration. In a live deployment it is called
// every PeriodUs of wall-clock time; in simulation, after advancing the
// simulated machine by one period.
func (c *Controller) Step() error {
	t0 := time.Now()
	if err := c.syncVMs(); err != nil {
		return err
	}
	tm0 := time.Now()
	if err := c.monitor(); err != nil {
		return err
	}
	c.timings.Monitor = time.Since(tm0)

	te := time.Now()
	c.estimateAll()
	c.timings.Estimate = time.Since(te)

	tf := time.Now()
	c.enforceBase()
	c.timings.Enforce = time.Since(tf)

	ta := time.Now()
	market := c.market()
	market = c.auction(market)
	c.timings.Auction = time.Since(ta)

	td := time.Now()
	c.distribute(market)
	c.timings.Distribute = time.Since(td)

	tp := time.Now()
	var err error
	if c.cfg.ControlEnabled {
		err = c.apply()
	}
	c.timings.Apply = time.Since(tp)
	c.timings.Total = time.Since(t0)
	c.steps++
	return err
}

// monitor implements stage 1: read consumption deltas, thread placement
// and core frequencies, and derive each vCPU's virtual frequency
// estimate. The thread location is read once per iteration, as discussed
// in §III-B1 of the paper.
func (c *Controller) monitor() error {
	for _, name := range c.order {
		st := c.vms[name]
		for _, v := range st.VCPUs {
			usage, err := c.host.UsageUs(v.VM, v.Index)
			if err != nil {
				return fmt.Errorf("core: usage of %s/vcpu%d: %w", v.VM, v.Index, err)
			}
			if v.warm {
				// Registered this step: the delta against the
				// registration reading spans no time yet.
				v.PrevUsageUs = usage
				v.warm = false
			} else {
				u := usage - v.PrevUsageUs
				if u < 0 {
					u = 0 // counter reset (VM restart)
				}
				v.PrevUsageUs = usage
				v.LastU = u
				v.Hist.Push(u)
			}

			tid, err := c.host.ThreadID(v.VM, v.Index)
			if err != nil {
				return fmt.Errorf("core: tid of %s/vcpu%d: %w", v.VM, v.Index, err)
			}
			v.TID = tid
			core, err := c.host.LastCPU(tid)
			if err != nil {
				return fmt.Errorf("core: placement of tid %d: %w", tid, err)
			}
			v.LastCore = core
			freq, err := c.host.CoreFreqMHz(core)
			if err != nil {
				return fmt.Errorf("core: frequency of core %d: %w", core, err)
			}
			v.FreqMHz = float64(v.LastU) / float64(c.cfg.PeriodUs) * float64(freq)
		}
	}
	return nil
}

// market computes Eq. 6: the cycles of the next period not allocated to
// any vCPU. A negative market (guarantees oversubscribed, Eq. 7 violated
// by the placement layer) is clamped to zero.
func (c *Controller) market() int64 {
	total := int64(c.node.Cores) * c.cfg.PeriodUs
	for _, st := range c.vms {
		for _, v := range st.VCPUs {
			total -= v.CapUs
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

// buyers returns the vCPUs whose estimate exceeds their cap, i.e. those
// that want to buy cycles, grouped per VM in a stable order.
func (c *Controller) buyers() []*VCPUState {
	var out []*VCPUState
	for _, name := range c.order {
		for _, v := range c.vms[name].VCPUs {
			if v.CapUs < v.EstUs {
				out = append(out, v)
			}
		}
	}
	return out
}

// sortByCredit orders buyers so that vCPUs of VMs with larger wallets come
// first — the paper's "priority to VMs that used this possibility of
// allocation burst less often".
func (c *Controller) sortByCredit(buyers []*VCPUState) {
	sort.SliceStable(buyers, func(i, j int) bool {
		return c.vms[buyers[i].VM].CreditUs > c.vms[buyers[j].VM].CreditUs
	})
}
