package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vfreq/internal/platform"
)

// VCPUState is the controller's per-vCPU bookkeeping, exported for
// inspection by traces and tests.
type VCPUState struct {
	VM    string
	Index int

	// Hist holds the consumption of the last n periods (u values).
	Hist *History
	// PrevUsageUs is the cumulative usage at the previous step.
	PrevUsageUs int64
	// LastU is u_{i,j,t}: cycles consumed during the last period.
	LastU int64
	// CapUs is c_{i,j,t}: the cycles allocated for the next period
	// (applied as a cgroup quota when control is enabled).
	CapUs int64
	// EstUs is e_{i,j,t}: the estimated upcoming consumption.
	EstUs int64
	// TID is the vCPU thread id.
	TID int
	// LastCore is the core the thread last ran on.
	LastCore int
	// FreqMHz is the monitored virtual frequency estimate:
	// (u/p) × frequency of the last core.
	FreqMHz float64

	// Degraded marks a vCPU whose monitor or apply stage failed during
	// the last Step (after the configured retries). A degraded vCPU is
	// excluded from estimation, credit accrual, the auction and the
	// free distribution: its cap is held at the last-known-good value
	// until the host reads succeed again.
	Degraded bool
	// FailedSteps counts consecutive Steps this vCPU has been
	// degraded; 0 when healthy. A value above 1 indicates a persistent
	// fault (dead thread, vanished cgroup) rather than a transient
	// read race. The counter holds through clean Steps until
	// Config.RecoverySteps of them pass, then resets (counted as
	// Recovered in the StepReport).
	FailedSteps int
	// CleanSteps counts consecutive clean Steps since the vCPU was
	// last degraded; only meaningful while FailedSteps > 0.
	CleanSteps int

	// warm marks a vCPU registered during the current step: the first
	// usage reading happens at registration time, so no consumption
	// delta exists until the next step. Warm vCPUs keep their initial
	// guarantee-level allocation and accrue no credits.
	warm bool

	// appliedQuotaUs/appliedPeriodUs cache the last (quota, period) the
	// apply stage successfully wrote for this vCPU, valid while
	// appliedQuotaOK holds; appliedBurstUs/appliedBurstOK do the same
	// for the burst budget. Apply skips vCPUs whose fresh quota matches
	// the cache, so a steady-state step issues no writes at all. The
	// fields are unexported on purpose: they never enter a checkpoint
	// (a restored vCPU starts with an invalid cache and writes through),
	// and invalidateApplied drops them whenever the cgroup may no longer
	// hold what was last written.
	appliedQuotaUs  int64
	appliedPeriodUs int64
	appliedQuotaOK  bool
	appliedBurstUs  int64
	appliedBurstOK  bool
}

// invalidateApplied forgets the last-applied quota and burst, forcing
// the next apply stage to write through. Called on every event after
// which the cgroup's content is no longer trusted: a degradation (the
// cgroup may have vanished and been recreated unlimited), a usage
// counter reset (VM restart rebuilds the cgroup), a recovered step
// panic, and a VM reconfiguration.
func (v *VCPUState) invalidateApplied() {
	v.appliedQuotaOK = false
	v.appliedBurstOK = false
}

// VMState is the controller's per-VM bookkeeping.
type VMState struct {
	Info platform.VMInfo
	// GuaranteeUs is C_i of Eq. 2.
	GuaranteeUs int64
	// CreditUs is the VM's credit wallet (Eq. 4), in cycles.
	CreditUs int64
	// VCPUs holds the per-vCPU states.
	VCPUs []*VCPUState
	// Breaker is the VM's circuit breaker (inert unless
	// Config.BreakerThreshold is positive).
	Breaker BreakerState
}

// Controller runs the six-stage control loop against a platform host.
type Controller struct {
	cfg  Config
	host platform.Host
	node platform.NodeInfo

	vms   map[string]*VMState
	order []string

	steps   int64
	timings StageTimings
	report  StepReport

	// store, when attached, receives a checkpoint every
	// Config.CheckpointEvery completed Steps.
	store platform.Store

	// met, when armed via ArmMetrics, receives every finished
	// StepReport; nil (the default) records nothing.
	met *ctrlMetrics

	// coreNode maps each logical CPU to its NUMA node, discovered once
	// from the host's optional platform.Topology capability; nil when
	// the host exposes none. numaNodes is the discovered node count
	// (at least 1), the auto shard count of AuctionShards = 0.
	coreNode  []int
	numaNodes int

	// batch is the host's optional BatchQuotaWriter capability, detected
	// once at New; nil when the host writes quotas one vCPU at a time.
	batch platform.BatchQuotaWriter

	// stepT0 and stepBudget frame the running Step's deadline window:
	// set at the top of runStages, they bound every retry-backoff sleep
	// so backoff can never push the Step past its watchdog. Outside a
	// Step (construction, restore) the window is closed and backoff
	// does not sleep. backoffSeq numbers the jitter draws; an atomic so
	// concurrent monitor workers never contend or race on it.
	stepT0     time.Time
	stepBudget time.Duration
	backoffSeq atomic.Uint64

	// partitionShards is the shard count of the stage 2–3 placement
	// partition currently held in c.shards (0 = no valid partition).
	// Set by partitionStages, cleared at the top of every runStages and
	// whenever the auction re-partitions at a different count.
	partitionShards int

	// Reused per-Step scratch, so the steady-state control loop runs
	// without heap allocations: the monitor read slots, the sync-stage
	// seen set, the auction/distribution buyer list, the per-shard
	// stage ledgers and the batched-apply entry buffer all keep their
	// backing storage across Steps.
	monSlots  []monitorSlot
	seen      map[string]bool
	buyersBuf []*VCPUState
	shards    []*auctionShard
	vmDemand  map[string]int64
	vmWallet  map[string]int64
	batchBuf  []platform.VCPUQuota
}

// New creates a controller.
func New(h platform.Host, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node := h.Node()
	if node.Cores <= 0 || node.MaxFreqMHz <= 0 {
		return nil, fmt.Errorf("core: invalid node info %+v", node)
	}
	c := &Controller{
		cfg:       cfg,
		host:      h,
		node:      node,
		vms:       map[string]*VMState{},
		numaNodes: 1,
	}
	// NUMA topology is an optional capability; a host without one (or
	// with an unreadable node tree) is treated as a single node, which
	// keeps the auto shard count at 1 — the serial auction.
	if topo, ok := h.(platform.Topology); ok {
		if cn, err := topo.CoreNodes(); err == nil && len(cn) > 0 {
			c.coreNode = cn
			for _, n := range cn {
				if n+1 > c.numaNodes {
					c.numaNodes = n + 1
				}
			}
		}
	}
	// Batched quota writing is an optional capability too; without it
	// the apply stage falls back to one SetMax per dirty vCPU.
	if bw, ok := h.(platform.BatchQuotaWriter); ok {
		c.batch = bw
	}
	return c, nil
}

// Config returns the active configuration.
func (c *Controller) Config() Config { return c.cfg }

// Node returns the node description the controller operates on.
func (c *Controller) Node() platform.NodeInfo { return c.node }

// NUMANodes returns the number of NUMA nodes discovered from the host
// topology (1 when the host exposes none).
func (c *Controller) NUMANodes() int { return c.numaNodes }

// Steps returns the number of completed control iterations.
func (c *Controller) Steps() int64 { return c.steps }

// LastTimings returns the stage timings of the most recent Step.
func (c *Controller) LastTimings() StageTimings { return c.timings }

// LastReport returns the degradation report of the most recent Step.
func (c *Controller) LastReport() StepReport { return c.report }

// VM returns the state of a VM, or nil.
func (c *Controller) VM(name string) *VMState { return c.vms[name] }

// VMs returns all VM states in provisioning order.
func (c *Controller) VMs() []*VMState {
	out := make([]*VMState, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.vms[n])
	}
	return out
}

// guarantee computes C_i (Eq. 2) for a template frequency on this node.
func (c *Controller) guarantee(freqMHz int64) int64 {
	return c.cfg.PeriodUs * freqMHz / c.node.MaxFreqMHz
}

// retryUsage reads a vCPU usage counter with bounded in-step retry.
func (c *Controller) retryUsage(rep *StepReport, vm string, j int) (int64, error) {
	var usage int64
	err := c.withRetry(rep, func() error {
		t := c.callStart()
		var e error
		usage, e = c.host.UsageUs(vm, j)
		return c.budgeted(t, e)
	})
	return usage, err
}

// withRetry runs op, retrying up to Config.HostRetries extra times with
// jittered exponential backoff between attempts (Config.RetryBackoffUs,
// bounded by the remaining step deadline). A success after at least one
// failure is counted in the report. A call that blew its
// Config.CallBudgetUs is never retried — the site is slow, not flaky.
func (c *Controller) withRetry(rep *StepReport, op func() error) error {
	var err error
	for attempt := 0; attempt <= c.cfg.HostRetries; attempt++ {
		if attempt > 0 {
			c.backoffSleep(attempt)
		}
		if err = op(); err == nil {
			if attempt > 0 {
				rep.Retries++
			}
			return nil
		}
		if err == ErrCallBudget {
			return err
		}
	}
	return err
}

// validFreq checks a template frequency against this node.
func (c *Controller) validFreq(freqMHz int64) error {
	if freqMHz <= 0 {
		return fmt.Errorf("core: non-positive template frequency %d MHz", freqMHz)
	}
	if freqMHz > c.node.MaxFreqMHz {
		return fmt.Errorf("core: template frequency %d MHz above node F_MAX %d",
			freqMHz, c.node.MaxFreqMHz)
	}
	return nil
}

// newVCPUState registers one vCPU, reading its initial usage counter.
func (c *Controller) newVCPUState(rep *StepReport, st *VMState, name string, j int) (*VCPUState, error) {
	usage, err := c.retryUsage(rep, name, j)
	if err != nil {
		return nil, err
	}
	return &VCPUState{
		VM:          name,
		Index:       j,
		Hist:        NewHistory(c.cfg.HistoryLen),
		PrevUsageUs: usage,
		CapUs:       st.GuaranteeUs,
		EstUs:       st.GuaranteeUs,
		LastCore:    -1,
		warm:        true,
	}, nil
}

// releaseVCPU restores a vCPU cgroup to an unlimited quota (and a zero
// burst budget) when the controller stops managing it — on VM departure
// and on a live vCPU-count shrink. Without this, a reused cgroup path
// would inherit the dead vCPU's quota. The restore is best-effort: on a
// real departure the cgroup is usually already gone.
func (c *Controller) releaseVCPU(vm string, j int) {
	if !c.cfg.ControlEnabled {
		return
	}
	_ = c.host.ClearMax(vm, j)
	if c.cfg.BurstFraction > 0 {
		_ = c.host.SetBurst(vm, j, 0)
	}
}

// syncVMs reconciles the controller state with the host's VM list:
// registering arrivals, cleaning up departures, and applying live
// template changes (frequency and vCPU count) to running VMs. Only a
// failed VM enumeration aborts the reconcile; per-VM problems degrade
// that VM alone and are recorded in the report.
func (c *Controller) syncVMs(rep *StepReport) error {
	infos, err := c.host.ListVMs()
	if err != nil {
		return fmt.Errorf("core: listing VMs: %w", err)
	}
	if c.seen == nil {
		c.seen = make(map[string]bool, len(infos))
	} else {
		clear(c.seen)
	}
	seen := c.seen
	for _, info := range infos {
		seen[info.Name] = true
		if st, ok := c.vms[info.Name]; ok {
			c.reconcileVM(rep, st, info)
			continue
		}
		if err := c.validFreq(info.FreqMHz); err != nil {
			// Reject the VM without aborting the Step; admission is
			// retried every period in case the template is fixed.
			rep.record(Fault{VM: info.Name, VCPU: -1, Stage: "sync", Op: "template", Err: err})
			continue
		}
		st := &VMState{Info: info, GuaranteeUs: c.guarantee(info.FreqMHz)}
		ok := true
		for j := 0; j < info.VCPUs; j++ {
			v, err := c.newVCPUState(rep, st, info.Name, j)
			if err != nil {
				// Registration is atomic per VM: retry next period.
				rep.record(Fault{VM: info.Name, VCPU: j, Stage: "sync", Op: "usage", Err: err})
				ok = false
				break
			}
			st.VCPUs = append(st.VCPUs, v)
		}
		if !ok {
			continue
		}
		c.vms[info.Name] = st
		c.order = append(c.order, info.Name)
		rep.Added = append(rep.Added, info.Name)
	}
	// Drop departed VMs, releasing their quotas so reused cgroup paths
	// start unthrottled.
	for name, st := range c.vms {
		if !seen[name] {
			for _, v := range st.VCPUs {
				c.releaseVCPU(name, v.Index)
			}
			delete(c.vms, name)
			for i, n := range c.order {
				if n == name {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
			rep.Removed = append(rep.Removed, name)
		}
	}
	return nil
}

// reconcileVM applies a live template change to an already-registered VM:
// a frequency change recomputes the Eq. 2 guarantee (after re-validation
// against F_MAX), and a vCPU-count change grows or shrinks the tracked
// vCPU set.
func (c *Controller) reconcileVM(rep *StepReport, st *VMState, info platform.VMInfo) {
	reconfigured := false
	if info.FreqMHz != st.Info.FreqMHz {
		if err := c.validFreq(info.FreqMHz); err != nil {
			// Hold the last-known-good template; the fault is
			// re-reported every period until the host fixes it.
			rep.record(Fault{VM: info.Name, VCPU: -1, Stage: "sync", Op: "template", Err: err})
			info.FreqMHz = st.Info.FreqMHz
		} else {
			st.GuaranteeUs = c.guarantee(info.FreqMHz)
			reconfigured = true
		}
	}
	if info.VCPUs < len(st.VCPUs) {
		// Shrink: stop controlling the trailing vCPUs and leave their
		// cgroups unthrottled.
		for j := info.VCPUs; j < len(st.VCPUs); j++ {
			c.releaseVCPU(info.Name, j)
		}
		st.VCPUs = st.VCPUs[:info.VCPUs]
		reconfigured = true
	} else if info.VCPUs > len(st.VCPUs) {
		// Grow: register the new vCPUs warm. A failed initial read
		// stops the growth at that index; the remainder is retried
		// next period.
		for j := len(st.VCPUs); j < info.VCPUs; j++ {
			v, err := c.newVCPUState(rep, st, info.Name, j)
			if err != nil {
				rep.record(Fault{VM: info.Name, VCPU: j, Stage: "sync", Op: "usage", Err: err})
				break
			}
			st.VCPUs = append(st.VCPUs, v)
		}
		reconfigured = true
	}
	st.Info = info
	if reconfigured {
		// A reconfiguration may have rebuilt the VM's cgroup tree on the
		// host side; write the next caps through instead of trusting the
		// last-applied cache.
		for _, v := range st.VCPUs {
			v.invalidateApplied()
		}
		rep.Reconfigured = append(rep.Reconfigured, info.Name)
	}
}

// Step runs one full control iteration. In a live deployment it is called
// every PeriodUs of wall-clock time; in simulation, after advancing the
// simulated machine by one period.
//
// Step is fault-isolated: a failed read or write for one vCPU degrades
// that vCPU alone (its cap is held at the last-known-good value, the
// fault is recorded in the StepReport) while every other vCPU receives a
// fresh quota. Step returns an error only when the whole host is
// unreachable, i.e. the VM enumeration itself fails.
//
// Step is additionally watchdogged: a panic in any stage is recovered
// into a degraded step (every vCPU marked degraded, the panic recorded as
// a fault), and a step whose wall-clock time crosses the
// Config.StepDeadlineFrac budget is flagged Overrun with skipped-period
// accounting, so a periodic caller can detect and report missed ticks.
func (c *Controller) Step() error {
	rep := StepReport{Step: c.steps + 1}
	t0 := time.Now()
	err := c.runStages(&rep, t0)
	rep.Timings.Total = time.Since(t0)
	if period := time.Duration(c.cfg.PeriodUs) * time.Microsecond; rep.Timings.Total >= period {
		rep.SkippedPeriods = int64(rep.Timings.Total / period)
	}

	rep.VMs = len(c.vms)
	for _, st := range c.vms {
		// The breaker advances first: a trip quarantines the VM by
		// marking every vCPU degraded, and the health accounting below
		// must count the step the way the quarantine leaves it.
		c.updateBreaker(&rep, st)
		switch st.Breaker.State {
		case BreakerOpen:
			rep.OpenVMs++
		case BreakerHalfOpen:
			rep.HalfOpenVMs++
		}
		for _, v := range st.VCPUs {
			rep.VCPUs++
			if v.Degraded {
				v.CleanSteps = 0
				rep.DegradedVCPUs++
				continue
			}
			rep.HealthyVCPUs++
			if v.FailedSteps > 0 {
				v.CleanSteps++
				need := c.cfg.RecoverySteps
				if need < 1 {
					need = 1
				}
				if v.CleanSteps >= need {
					v.FailedSteps = 0
					v.CleanSteps = 0
					rep.Recovered++
				}
			}
		}
	}
	c.timings = rep.Timings
	c.report = rep
	if err == nil {
		c.steps++
		c.maybeCheckpoint(&rep)
		c.report = rep // pick up Checkpointed and any checkpoint fault
	}
	if c.met != nil {
		c.met.recordStep(&rep)
	}
	return err
}

// PeriodSleep returns how long a periodic caller should sleep after a
// Step that took spent wall-clock time, clamped to zero when the Step
// overran its period. The clamp matters: a naive `period - spent` sleep
// goes negative on an overrun, and callers that pass a negative duration
// to time.Sleep return immediately but then mis-attribute the overrun
// time to the next period's usage delta.
func (c *Controller) PeriodSleep(spent time.Duration) time.Duration {
	period := time.Duration(c.cfg.PeriodUs) * time.Microsecond
	if spent >= period {
		return 0
	}
	return period - spent
}

// runStages executes the six stages under the watchdog: a per-stage
// deadline check and a panic recovery that converts a crashing stage
// into a degraded (but completed) step.
func (c *Controller) runStages(rep *StepReport, t0 time.Time) (err error) {
	var deadline time.Duration
	if c.cfg.StepDeadlineFrac > 0 {
		deadline = time.Duration(float64(c.cfg.PeriodUs)*c.cfg.StepDeadlineFrac) * time.Microsecond
	}
	// Open the backoff window: retry sleeps may spend at most the
	// deadline budget (the whole period when no deadline is set).
	c.stepT0 = t0
	c.stepBudget = deadline
	if c.stepBudget <= 0 {
		c.stepBudget = time.Duration(c.cfg.PeriodUs) * time.Microsecond
	}
	checkStage := func(name string) {
		if deadline > 0 && !rep.Overrun && time.Since(t0) > deadline {
			rep.Overrun = true
			rep.OverrunStage = name
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		rep.Panicked = true
		rep.record(Fault{VCPU: -1, Stage: "step", Op: "panic",
			Err: fmt.Errorf("core: recovered step panic: %v", r)})
		// The panic may have unwound mid-stage: the surviving per-vCPU
		// state is suspect, so every vCPU degrades (caps held, no credit
		// accrual) until fresh measurements rebuild it — and the
		// last-applied quota cache is dropped, since the apply stage may
		// have died between writing a cgroup and recording the write.
		for _, st := range c.vms {
			for _, v := range st.VCPUs {
				v.invalidateApplied()
				if !v.Degraded {
					v.Degraded = true
					v.FailedSteps++
				}
			}
		}
	}()
	// Placements are re-read below; whatever partition the last Step
	// built no longer matches them.
	c.partitionShards = 0

	if err := c.syncVMs(rep); err != nil {
		return err
	}
	checkStage("sync")

	tm0 := time.Now()
	c.monitor(rep)
	rep.Timings.Monitor = time.Since(tm0)
	checkStage("monitor")

	te := time.Now()
	c.estimateStage()
	rep.Timings.Estimate = time.Since(te)
	checkStage("estimate")

	tf := time.Now()
	c.enforceStage()
	rep.Timings.Enforce = time.Since(tf)
	checkStage("enforce")

	ta := time.Now()
	market := c.marketStage()
	market = c.auctionSharded(market)
	rep.Timings.Auction = time.Since(ta)
	checkStage("auction")

	td := time.Now()
	c.distribute(market)
	rep.Timings.Distribute = time.Since(td)
	checkStage("distribute")

	tp := time.Now()
	if c.cfg.ControlEnabled {
		c.apply(rep)
	}
	rep.Timings.Apply = time.Since(tp)
	checkStage("apply")
	return nil
}

// monitorSlot carries one vCPU's raw host readings from the (possibly
// concurrent) read pass of the monitor stage to its sequential commit
// pass. Each worker owns exactly the slots it was handed, so the slots
// need no locking.
type monitorSlot struct {
	v       *VCPUState
	usage   int64
	freq    int64
	tid     int
	core    int
	retries int
	op      string
	err     error
}

// monitor implements stage 1: read consumption deltas, thread placement
// and core frequencies, and derive each vCPU's virtual frequency
// estimate. The thread location is read once per iteration, as discussed
// in §III-B1 of the paper.
//
// The stage is split in two passes. The read pass performs the four host
// reads per vCPU and may fan out across Config.MonitorWorkers goroutines
// (the reads are I/O-bound syscalls on a real host, so this is where the
// paper's 4-of-5 ms monitoring budget goes). The commit pass then applies
// the readings to the controller state strictly in registration order on
// the stepping goroutine, so histories, degradation accounting and report
// contents are bit-identical no matter how the reads were scheduled.
//
// The reads of one vCPU commit atomically: when any of them fails (after
// the configured retries) the vCPU keeps its previous bookkeeping and is
// marked degraded for this Step, so a later successful read observes one
// consistent cumulative delta instead of a half-updated state.
func (c *Controller) monitor(rep *StepReport) {
	slots := c.monSlots[:0]
	for _, name := range c.order {
		st := c.vms[name]
		if st.Breaker.State == BreakerOpen {
			// Quarantined: no reads at all. The vCPUs stay degraded
			// (caps held, quotas untouched) until the breaker half-opens
			// and a probe step reads them again.
			continue
		}
		for _, v := range st.VCPUs {
			slots = append(slots, monitorSlot{v: v})
		}
	}
	c.monSlots = slots

	workers := c.cfg.MonitorWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(slots) {
		workers = len(slots)
	}
	if workers <= 1 {
		for i := range slots {
			c.readVCPU(&slots[i])
		}
	} else {
		// A separate method keeps the goroutine closure out of this
		// function, so the serial path stays allocation-free (a closure
		// capturing slots would force the slice header to the heap).
		c.readParallel(slots, workers)
	}

	for i := range slots {
		c.commitVCPU(rep, &slots[i])
		slots[i].v = nil // don't pin departed VMs through the reused buffer
	}
}

// readParallel fans readVCPU over a pool of worker goroutines pulling
// slot indices from a shared atomic counter. The goroutines are
// per-Step rather than a persistent pool: the controller has no
// shutdown hook, and the spawn cost is dwarfed by the syscalls the
// workers exist to overlap.
//
// A panic inside a worker would crash the process before the Step
// watchdog's recover could see it, so each worker catches its panic and
// readParallel re-raises one on the stepping goroutine — restoring the
// exact degraded-step semantics of the serial stage.
func (c *Controller) readParallel(slots []monitorSlot, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(slots) {
					return
				}
				c.readVCPU(&slots[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// readVCPU performs one vCPU's four host reads, with bounded in-step
// retry, into its slot. This is the only part of the monitor stage that
// may run concurrently; it touches nothing but the slot, the atomic
// backoff sequence and the (read-only) host. Each read is timed against
// Config.CallBudgetUs (a slow success fails the vCPU instead of
// stalling the step) and each retry waits the jittered backoff. The
// explicit loops instead of withRetry keep the hot path closure-free
// and therefore allocation-free.
func (c *Controller) readVCPU(s *monitorSlot) {
	v := s.v
	tries := c.cfg.HostRetries + 1

	ok := false
	for a := 0; a < tries; a++ {
		if a > 0 {
			c.backoffSleep(a)
		}
		t := c.callStart()
		u, err := c.host.UsageUs(v.VM, v.Index)
		if err = c.budgeted(t, err); err == nil {
			s.usage = u
			if a > 0 {
				s.retries++
			}
			ok = true
			break
		}
		s.err = err
		if err == ErrCallBudget {
			break
		}
	}
	if !ok {
		s.op = "usage"
		return
	}

	ok = false
	for a := 0; a < tries; a++ {
		if a > 0 {
			c.backoffSleep(a)
		}
		t := c.callStart()
		tid, err := c.host.ThreadID(v.VM, v.Index)
		if err = c.budgeted(t, err); err == nil {
			s.tid = tid
			if a > 0 {
				s.retries++
			}
			ok = true
			break
		}
		s.err = err
		if err == ErrCallBudget {
			break
		}
	}
	if !ok {
		s.op = "tid"
		return
	}

	ok = false
	for a := 0; a < tries; a++ {
		if a > 0 {
			c.backoffSleep(a)
		}
		t := c.callStart()
		core, err := c.host.LastCPU(s.tid)
		if err = c.budgeted(t, err); err == nil {
			s.core = core
			if a > 0 {
				s.retries++
			}
			ok = true
			break
		}
		s.err = err
		if err == ErrCallBudget {
			break
		}
	}
	if !ok {
		s.op = "lastcpu"
		return
	}

	ok = false
	for a := 0; a < tries; a++ {
		if a > 0 {
			c.backoffSleep(a)
		}
		t := c.callStart()
		freq, err := c.host.CoreFreqMHz(s.core)
		if err = c.budgeted(t, err); err == nil {
			s.freq = freq
			if a > 0 {
				s.retries++
			}
			ok = true
			break
		}
		s.err = err
		if err == ErrCallBudget {
			break
		}
	}
	if !ok {
		s.op = "freq"
		return
	}
	s.err = nil
}

// commitVCPU applies one slot's readings to the controller state. Commits
// run in registration order on the stepping goroutine only.
func (c *Controller) commitVCPU(rep *StepReport, s *monitorSlot) {
	v := s.v
	rep.Retries += s.retries
	if s.err != nil {
		v.Degraded = true
		v.FailedSteps++
		// The failed read often means the cgroup vanished; if it comes
		// back it comes back unlimited, so the quota must be rewritten.
		v.invalidateApplied()
		rep.record(Fault{VM: v.VM, VCPU: v.Index, Stage: "monitor", Op: s.op, Err: s.err})
		return
	}
	// FailedSteps holds until enough clean Steps pass; the recovery
	// accounting runs at the end of Step, after apply had its chance to
	// degrade the vCPU again.
	v.Degraded = false

	if v.warm {
		// Registered this step: the delta against the registration
		// reading spans no time yet.
		v.PrevUsageUs = s.usage
		v.warm = false
	} else {
		u := s.usage - v.PrevUsageUs
		if u < 0 {
			u = 0 // counter reset (VM restart)
			// The restart rebuilt the cgroup with an unlimited quota;
			// forget the cached write so apply restores ours.
			v.invalidateApplied()
		}
		if u > c.cfg.PeriodUs {
			// A delta spanning periods missed while degraded; clamp
			// to the per-period maximum a single thread can attain.
			u = c.cfg.PeriodUs
		}
		v.PrevUsageUs = s.usage
		v.LastU = u
		v.Hist.Push(u)
	}
	v.TID = s.tid
	v.LastCore = s.core
	v.FreqMHz = float64(v.LastU) / float64(c.cfg.PeriodUs) * float64(s.freq)
}

// market computes Eq. 6: the cycles of the next period not allocated to
// any vCPU. A negative market (guarantees oversubscribed, Eq. 7 violated
// by the placement layer) is clamped to zero.
func (c *Controller) market() int64 {
	total := int64(c.node.Cores) * c.cfg.PeriodUs
	for _, st := range c.vms {
		for _, v := range st.VCPUs {
			total -= v.CapUs
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

// buyers returns the vCPUs whose estimate exceeds their cap, i.e. those
// that want to buy cycles, grouped per VM in a stable order. Degraded
// vCPUs never buy: their estimate is stale and their cap is held.
// The returned slice aliases a buffer reused across Steps; it is valid
// until the next buyers call.
func (c *Controller) buyers() []*VCPUState {
	out := c.buyersBuf[:0]
	for _, name := range c.order {
		for _, v := range c.vms[name].VCPUs {
			if !v.Degraded && v.CapUs < v.EstUs {
				out = append(out, v)
			}
		}
	}
	c.buyersBuf = out
	return out
}

// sortByCredit orders buyers so that vCPUs of VMs with larger wallets come
// first — the paper's "priority to VMs that used this possibility of
// allocation burst less often". A stable insertion sort (buyer lists are
// bounded by the vCPUs of one node) keeps the auction path free of the
// allocations sort.SliceStable would add.
func (c *Controller) sortByCredit(buyers []*VCPUState) {
	for i := 1; i < len(buyers); i++ {
		b := buyers[i]
		cr := c.vms[b.VM].CreditUs
		j := i
		for j > 0 && c.vms[buyers[j-1].VM].CreditUs < cr {
			buyers[j] = buyers[j-1]
			j--
		}
		buyers[j] = b
	}
}
