package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the auction conserves value — cycles bought equal credits
// spent, the market shrinks by exactly the amount sold, and nobody buys
// beyond their estimate.
func TestQuickAuctionConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(2)+1, int64(rng.Intn(2000)+200))
		}
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		// Randomise the pre-auction state.
		var capsBefore, creditsBefore int64
		for _, st := range c.VMs() {
			st.CreditUs = int64(rng.Intn(2_000_000))
			creditsBefore += st.CreditUs
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(500_000))
				v.EstUs = v.CapUs + int64(rng.Intn(500_000))
				capsBefore += v.CapUs
			}
		}
		market := int64(rng.Intn(2_000_000))
		left := c.auction(market)
		if left < 0 || left > market {
			return false
		}
		var capsAfter, creditsAfter int64
		for _, st := range c.VMs() {
			if st.CreditUs < 0 {
				return false
			}
			creditsAfter += st.CreditUs
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false // bought beyond estimate
				}
				capsAfter += v.CapUs
			}
		}
		sold := market - left
		if capsAfter-capsBefore != sold {
			return false // cycles created or destroyed
		}
		if creditsBefore-creditsAfter != sold {
			return false // credits charged ≠ cycles sold
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: free distribution never hands out more than the market or
// beyond any estimate, and hands out everything when demand suffices.
func TestQuickDistributeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(2)+1, int64(rng.Intn(2000)+200))
		}
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		var capsBefore, demand int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(500_000))
				v.EstUs = v.CapUs + int64(rng.Intn(300_000))
				capsBefore += v.CapUs
				demand += v.EstUs - v.CapUs
			}
		}
		market := int64(rng.Intn(1_500_000))
		c.distribute(market)
		var capsAfter int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false
				}
				capsAfter += v.CapUs
			}
		}
		given := capsAfter - capsBefore
		if given < 0 {
			return false
		}
		want := market
		if want > demand {
			want = demand
		}
		return given == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimator output is bounded and monotone in consumption
// for the stable case (higher u never yields a smaller recalibration).
func TestQuickEstimateStableMonotone(t *testing.T) {
	h := newFakeHost()
	c, err := New(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(u1, u2 uint32) bool {
		a := int64(u1 % 1_000_000)
		b := int64(u2 % 1_000_000)
		if a > b {
			a, b = b, a
		}
		est := func(u int64) int64 {
			v := &VCPUState{Hist: NewHistory(5), CapUs: 1_000_000}
			for i := 0; i < 5; i++ {
				v.Hist.Push(u) // flat history → stable case
			}
			v.LastU = u
			return c.estimate(v)
		}
		ea, eb := est(a), est(b)
		if ea > eb {
			return false
		}
		cfg := c.Config()
		return ea >= cfg.MinQuotaUs && eb <= cfg.PeriodUs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
