package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the auction conserves value — cycles bought equal credits
// spent, the market shrinks by exactly the amount sold, and nobody buys
// beyond their estimate.
func TestQuickAuctionConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(2)+1, int64(rng.Intn(2000)+200))
		}
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		// Randomise the pre-auction state.
		var capsBefore, creditsBefore int64
		for _, st := range c.VMs() {
			st.CreditUs = int64(rng.Intn(2_000_000))
			creditsBefore += st.CreditUs
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(500_000))
				v.EstUs = v.CapUs + int64(rng.Intn(500_000))
				capsBefore += v.CapUs
			}
		}
		market := int64(rng.Intn(2_000_000))
		left := c.auction(market)
		if left < 0 || left > market {
			return false
		}
		var capsAfter, creditsAfter int64
		for _, st := range c.VMs() {
			if st.CreditUs < 0 {
				return false
			}
			creditsAfter += st.CreditUs
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false // bought beyond estimate
				}
				capsAfter += v.CapUs
			}
		}
		sold := market - left
		if capsAfter-capsBefore != sold {
			return false // cycles created or destroyed
		}
		if creditsBefore-creditsAfter != sold {
			return false // credits charged ≠ cycles sold
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: free distribution never hands out more than the market or
// beyond any estimate, and hands out everything when demand suffices.
func TestQuickDistributeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(2)+1, int64(rng.Intn(2000)+200))
		}
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		var capsBefore, demand int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(500_000))
				v.EstUs = v.CapUs + int64(rng.Intn(300_000))
				capsBefore += v.CapUs
				demand += v.EstUs - v.CapUs
			}
		}
		market := int64(rng.Intn(1_500_000))
		c.distribute(market)
		var capsAfter int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false
				}
				capsAfter += v.CapUs
			}
		}
		given := capsAfter - capsBefore
		if given < 0 {
			return false
		}
		want := market
		if want > demand {
			want = demand
		}
		return given == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sharded auction preserves the serial conservation
// invariants at any shard count — Σ sold + leftover = market, wallet
// debits equal cycles bought, no wallet goes negative, no cap exceeds
// its estimate, and no cap drops below its pre-auction (Eq. 5) value —
// even though buyers are partitioned by core placement and charged
// through per-shard ledgers.
func TestQuickAuctionShardedConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		h.node.Cores = 16
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(3)+1, int64(rng.Intn(2000)+200))
		}
		cfg := DefaultConfig()
		cfg.AuctionShards = rng.Intn(6) + 2 // 2..7 shards
		c, err := New(h, cfg)
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		var capsBefore, creditsBefore int64
		base := map[*VCPUState]int64{}
		for _, st := range c.VMs() {
			st.CreditUs = int64(rng.Intn(2_000_000))
			creditsBefore += st.CreditUs
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(500_000))
				v.EstUs = v.CapUs + int64(rng.Intn(500_000))
				v.LastCore = rng.Intn(16)
				base[v] = v.CapUs
				capsBefore += v.CapUs
			}
		}
		market := int64(rng.Intn(2_000_000))
		left := c.auctionSharded(market)
		if left < 0 || left > market {
			return false
		}
		var capsAfter, creditsAfter int64
		for _, st := range c.VMs() {
			if st.CreditUs < 0 {
				return false // a ledger overdrew the wallet
			}
			creditsAfter += st.CreditUs
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false // bought beyond estimate
				}
				if v.CapUs < base[v] {
					return false // dropped below the Eq. 5 base
				}
				capsAfter += v.CapUs
			}
		}
		sold := market - left
		if capsAfter-capsBefore != sold {
			return false // cycles minted or leaked across the shards
		}
		if creditsBefore-creditsAfter != sold {
			return false // wallet debits ≠ cycles bought
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: auction then distribute — the full stage 4 + 5 pipeline, in
// both serial and sharded form — never leaks a cycle: every market cycle
// is either sold, given away, or still unallocated at the end, and the
// distribution leaves no rounding residue while demand remains.
func TestQuickAuctionDistributePipelineConservation(t *testing.T) {
	f := func(seed int64, sharded bool) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		h.node.Cores = 16
		n := rng.Intn(4) + 2
		for i := 0; i < n; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(2)+1, int64(rng.Intn(2000)+200))
		}
		cfg := DefaultConfig()
		if sharded {
			cfg.AuctionShards = 4
		}
		c, err := New(h, cfg)
		if err != nil {
			return false
		}
		if err := c.Step(); err != nil {
			return false
		}
		var capsBefore, demand int64
		for _, st := range c.VMs() {
			st.CreditUs = int64(rng.Intn(1_000_000))
			for _, v := range st.VCPUs {
				v.CapUs = int64(rng.Intn(400_000))
				v.EstUs = v.CapUs + int64(rng.Intn(400_000))
				v.LastCore = rng.Intn(16)
				capsBefore += v.CapUs
				demand += v.EstUs - v.CapUs
			}
		}
		market := int64(rng.Intn(2_000_000))
		left := c.auctionSharded(market)
		c.distribute(left)
		var capsAfter int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs > v.EstUs {
					return false
				}
				capsAfter += v.CapUs
			}
		}
		want := market
		if want > demand {
			want = demand
		}
		// Sold + given must equal the whole market while demand lasted:
		// nothing stranded by the auction ledgers or the distribution's
		// integer division.
		return capsAfter-capsBefore == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributeResidueLargestDemand locks the rounding-residue rule:
// the cycles the proportional integer division strands are awarded to
// the largest-residual-demand buyer (spilling to the next-largest), not
// dribbled round-robin or dropped.
func TestDistributeResidueLargestDemand(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 3, 1200)
	c := mustController(t, h, DefaultConfig())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	vs := c.VM("a").VCPUs
	// Residual demands 5, 3, 2 against a market of 4: the floored
	// proportional pass gives 2, 1, 0 and strands 1 cycle, which must
	// go to the largest-demand buyer (vCPU 0).
	demands := []int64{5, 3, 2}
	for i, v := range vs {
		v.CapUs = 100_000
		v.EstUs = 100_000 + demands[i]
	}
	c.distribute(4)
	got := []int64{vs[0].CapUs - 100_000, vs[1].CapUs - 100_000, vs[2].CapUs - 100_000}
	want := []int64{3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distribute gave %v, want %v", got, want)
		}
	}
	// Market above demand: every buyer fills to its estimate exactly.
	for i, v := range vs {
		v.CapUs = 100_000
		v.EstUs = 100_000 + demands[i]
	}
	c.distribute(1_000)
	for i, v := range vs {
		if v.CapUs != 100_000+demands[i] {
			t.Fatalf("vCPU %d capped at %d, want %d", i, v.CapUs, 100_000+demands[i])
		}
	}
}

// Property: the estimator output is bounded and monotone in consumption
// for the stable case (higher u never yields a smaller recalibration).
func TestQuickEstimateStableMonotone(t *testing.T) {
	h := newFakeHost()
	c, err := New(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(u1, u2 uint32) bool {
		a := int64(u1 % 1_000_000)
		b := int64(u2 % 1_000_000)
		if a > b {
			a, b = b, a
		}
		est := func(u int64) int64 {
			v := &VCPUState{Hist: NewHistory(5), CapUs: 1_000_000}
			for i := 0; i < 5; i++ {
				v.Hist.Push(u) // flat history → stable case
			}
			v.LastU = u
			return c.estimate(v)
		}
		ea, eb := est(a), est(b)
		if ea > eb {
			return false
		}
		cfg := c.Config()
		return ea >= cfg.MinQuotaUs && eb <= cfg.PeriodUs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
