package core_test

import (
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// BurstFraction lets a spiky workload ride out sub-period demand peaks on
// bandwidth banked during its quiet cgroup periods. A workload that wants
// 100 % for 100 ms then idles 100 ms under a 50 % cap attains ~25 % of a
// core without burst (each busy window is cut in half) but ~50 % with a
// full burst budget.
func TestBurstFractionImprovesSpikyWorkloads(t *testing.T) {
	attained := func(burstFraction float64) int64 {
		mgr := testNode(t, 2)
		spiky := &workload.Bursty{PeriodUs: 200_000, Duty: 0.5, High: 1, Low: 0}
		tpl := vm.Template{Name: "spiky", VCPUs: 1, FreqMHz: 1200, MemoryGB: 1}
		inst, err := mgr.Provision("spiky", tpl, []workload.Source{spiky})
		if err != nil {
			t.Fatal(err)
		}
		// A busy neighbour so the spiky VM stays capped at its
		// 1200 MHz guarantee (half a core) instead of bursting via
		// the auction.
		other := vm.Template{Name: "busy", VCPUs: 2, FreqMHz: 1800, MemoryGB: 1}
		if _, err := mgr.Provision("busy", other, busySources(2)); err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.BurstFraction = burstFraction
		ctrl, err := core.New(platform.NewSim(mgr), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			mgr.Machine().Advance(cfg.PeriodUs)
			if err := ctrl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		before := inst.VCPUThread(0).UsageUs
		for step := 0; step < 6; step++ {
			mgr.Machine().Advance(cfg.PeriodUs)
			if err := ctrl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return inst.VCPUThread(0).UsageUs - before
	}
	plain := attained(0)
	burst := attained(1.0)
	if burst <= plain*13/10 {
		t.Fatalf("burst gave %d µs vs %d plain: expected ≥30%% improvement", burst, plain)
	}
}

func TestBurstFractionValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.BurstFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("burst fraction > 1 accepted")
	}
	cfg.BurstFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative burst fraction accepted")
	}
}
