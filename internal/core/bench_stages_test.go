package core

import (
	"fmt"
	"testing"

	"vfreq/internal/metrics"
	"vfreq/internal/platform"
)

// benchHost is a platform.Host whose steady-state read and write paths
// perform zero heap allocations, so the AllocsPerRun assertions below
// measure the controller alone — something neither the sim platform
// (whose dynamic files render strings) nor a real cgroupfs tree can
// offer inside one process.
//
// Every read is pure arithmetic; UsageUs self-advances by a fixed burn
// per read, giving the estimator a stable consumption signal.
type benchHost struct {
	node  platform.NodeInfo
	infos []platform.VMInfo
	base  map[string]int // VM name → first flat vCPU index
	usage []int64
	burn  int64
	sets  int
}

func newBenchHost(vms, vcpus int) *benchHost {
	h := &benchHost{
		node: platform.NodeInfo{Name: "bench", Cores: 40, MaxFreqMHz: 2400},
		base: map[string]int{},
		burn: 550_000,
	}
	for i := 0; i < vms; i++ {
		name := fmt.Sprintf("b%02d", i)
		h.base[name] = len(h.usage)
		h.infos = append(h.infos, platform.VMInfo{Name: name, VCPUs: vcpus, FreqMHz: 1200})
		for j := 0; j < vcpus; j++ {
			h.usage = append(h.usage, 0)
		}
	}
	return h
}

func (h *benchHost) Node() platform.NodeInfo             { return h.node }
func (h *benchHost) ListVMs() ([]platform.VMInfo, error) { return h.infos, nil }

// UsageUs is called concurrently by monitor workers, but always for
// distinct flat indices (one worker owns one vCPU's reads), so the
// element writes don't race.
func (h *benchHost) UsageUs(vm string, j int) (int64, error) {
	i := h.base[vm] + j
	h.usage[i] += h.burn
	return h.usage[i], nil
}
func (h *benchHost) SetMax(vm string, j int, quota, period int64) error {
	h.sets++
	return nil
}
func (h *benchHost) ClearMax(vm string, j int) error          { return nil }
func (h *benchHost) SetBurst(vm string, j int, b int64) error { return nil }
func (h *benchHost) ThreadID(vm string, j int) (int, error)   { return 1000 + h.base[vm] + j, nil }
func (h *benchHost) LastCPU(tid int) (int, error)             { return tid % h.node.Cores, nil }
func (h *benchHost) CoreFreqMHz(core int) (int64, error)      { return 2000, nil }

// benchController builds a controller over a benchHost and steps it past
// warm-up so histories are full and the vCPU set is stable.
func benchController(tb testing.TB, vms, vcpus, workers int) *Controller {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.MonitorWorkers = workers
	// The robustness layer runs armed in every benchmark and zero-alloc
	// gate: per-call budget timing, backoff configuration and per-VM
	// circuit breakers must all cost zero steady-state allocations (the
	// budget is generous enough that a healthy in-process host never
	// trips it).
	cfg.CallBudgetUs = 250_000
	cfg.RetryBackoffUs = 200
	cfg.BreakerThreshold = 3
	cfg.BreakerOpenSteps = 4
	c, err := New(newBenchHost(vms, vcpus), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	// The metrics registry is armed in every benchmark and zero-alloc
	// gate: recording a finished StepReport must cost nothing.
	c.ArmMetrics(metrics.NewRegistry())
	for i := 0; i < 8; i++ {
		if err := c.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

// TestStepZeroAlloc asserts the whole steady-state Step — sync, monitor,
// estimate, enforce, auction, distribute, apply and the recovery
// accounting — runs without a single heap allocation once the vCPU set
// is stable (serial monitor; the worker pool spends a few goroutine
// spawns when MonitorWorkers > 1).
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c := benchController(t, 20, 2, 1)
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f/op, want 0", allocs)
	}
}

func TestMonitorStageZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c := benchController(t, 20, 2, 1)
	var rep StepReport
	allocs := testing.AllocsPerRun(50, func() {
		rep = StepReport{}
		c.monitor(&rep)
	})
	if allocs != 0 {
		t.Fatalf("monitor stage allocates %.1f/op, want 0", allocs)
	}
}

func TestApplyStageZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c := benchController(t, 20, 2, 1)
	var rep StepReport
	allocs := testing.AllocsPerRun(50, func() {
		rep = StepReport{}
		c.apply(&rep)
	})
	if allocs != 0 {
		t.Fatalf("apply stage allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkMonitorStage measures stage 1 alone across worker counts (the
// benchHost reads are pure memory, so workers > 1 shows pool overhead
// here and pays off only on hosts with real I/O latency).
func BenchmarkMonitorStage(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := benchController(b, 40, 2, workers)
			b.ReportAllocs()
			b.ResetTimer()
			var rep StepReport
			for i := 0; i < b.N; i++ {
				rep = StepReport{}
				c.monitor(&rep)
			}
			_ = rep
		})
	}
}

// BenchmarkApplyStage measures stage 6 alone: quota computation plus the
// host writes.
func BenchmarkApplyStage(b *testing.B) {
	c := benchController(b, 40, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var rep StepReport
	for i := 0; i < b.N; i++ {
		rep = StepReport{}
		c.apply(&rep)
	}
	_ = rep
}

// BenchmarkAuctionSharded measures stage 4 across shard counts on a
// 40-core host with buyers spread over the cores (the benchHost places
// vCPU threads round-robin, and without a topology the core index
// stands in for the NUMA node). Wallets are sized below demand so the
// ledger split, the windowed shard rounds and the redistribution round
// all run. shards=1 is the serial Algorithm 1 baseline.
func BenchmarkAuctionSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.AuctionShards = shards
			cfg.MonitorWorkers = 0 // GOMAXPROCS pool: shards run concurrently
			c, err := New(newBenchHost(40, 2), cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
			vms := c.VMs()
			reset := func() int64 {
				var market int64 = 40 * 1_000_000
				for _, vs := range vms {
					vs.CreditUs = 300_000
					for _, v := range vs.VCPUs {
						v.CapUs = 300_000
						v.EstUs = 500_000
						market -= v.CapUs
					}
				}
				return market
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				market := reset()
				c.auctionSharded(market)
			}
		})
	}
}

// BenchmarkSteadyStep measures the full six-stage Step on the zero-alloc
// host — the controller's own cost with the platform out of the picture.
func BenchmarkSteadyStep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := benchController(b, 40, 2, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// batchBenchHost layers the BatchQuotaWriter capability over benchHost,
// forwarding entries through the zero-alloc SetMax. Kept separate so the
// serial-path tests and benchmarks above keep measuring the non-batched
// apply.
type batchBenchHost struct {
	*benchHost
	batches int
}

func (h *batchBenchHost) BatchSetMax(vm string, quotas []platform.VCPUQuota) error {
	h.batches++
	for i := range quotas {
		q := &quotas[i]
		q.Err = h.SetMax(vm, q.VCPU, q.QuotaUs, q.PeriodUs)
	}
	return nil
}

// TestStepSkipsCleanWrites pins the incremental apply at the Step level:
// the benchHost consumption is constant, so once the estimates settle a
// full Step must issue zero SetMax calls.
func TestStepSkipsCleanWrites(t *testing.T) {
	c := benchController(t, 20, 2, 1)
	h := c.host.(*benchHost)
	sets := h.sets
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if h.sets != sets {
		t.Fatalf("steady-state Steps issued %d writes, want 0", h.sets-sets)
	}
}

// TestStepShardedZeroAlloc is TestStepZeroAlloc with the whole
// three-stage partition forced (estimate, enforce and auction all
// sharded): the partition, the per-shard ledgers and the barrier merges
// must reuse their scratch across Steps. MonitorWorkers = 1 keeps the
// pools on their serial fallback, so goroutine spawns don't drown the
// measurement.
func TestStepShardedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := DefaultConfig()
	cfg.MonitorWorkers = 1
	cfg.EstimateShards = 4
	cfg.AuctionShards = 4
	c, err := New(newBenchHost(20, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.ArmMetrics(metrics.NewRegistry())
	for i := 0; i < 8; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded steady-state Step allocates %.1f/op, want 0", allocs)
	}
}

// TestApplyStageBatchedZeroAlloc asserts the batched apply path — dirty
// collection into the reused entry buffer, the batch call, the outcome
// resolution — allocates nothing even when every quota is dirty.
func TestApplyStageBatchedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	h := &batchBenchHost{benchHost: newBenchHost(20, 2)}
	cfg := DefaultConfig()
	cfg.MonitorWorkers = 1
	c, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	vms := c.VMs()
	var rep StepReport
	flip := int64(0)
	allocs := testing.AllocsPerRun(50, func() {
		// Alternate every cap between two quota-distinct values so the
		// whole fleet is dirty on every run.
		flip = 1 - flip
		for _, vs := range vms {
			for _, v := range vs.VCPUs {
				v.CapUs = 400_000 + flip*10_000
			}
		}
		rep = StepReport{}
		c.apply(&rep)
	})
	if allocs != 0 {
		t.Fatalf("batched apply allocates %.1f/op, want 0", allocs)
	}
	if h.batches == 0 {
		t.Fatal("batch path never ran")
	}
}

// BenchmarkEstimateEnforceSharded measures stages 2–3 (plus the barrier
// merges and the market sum) across shard counts on the 40-core host.
// shards=1 is the serial baseline; the benchHost reads are pure memory,
// so the sharded runs show partition+merge overhead here and pay off as
// the per-vCPU work grows.
func BenchmarkEstimateEnforceSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.EstimateShards = shards
			cfg.MonitorWorkers = 0 // GOMAXPROCS pool: shards run concurrently
			c, err := New(newBenchHost(40, 2), cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.partitionShards = 0
				c.estimateStage()
				c.enforceStage()
				_ = c.marketStage()
			}
		})
	}
}

// BenchmarkApplyStageBatched measures stage 6 over the batch capability
// with every quota dirty — the worst case; the steady-state best case
// (all clean, zero writes) is what BenchmarkApplyStage now measures.
func BenchmarkApplyStageBatched(b *testing.B) {
	h := &batchBenchHost{benchHost: newBenchHost(40, 2)}
	cfg := DefaultConfig()
	cfg.MonitorWorkers = 1
	c, err := New(h, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
	vms := c.VMs()
	b.ReportAllocs()
	b.ResetTimer()
	var rep StepReport
	for i := 0; i < b.N; i++ {
		fl := int64(i & 1)
		for _, vs := range vms {
			for _, v := range vs.VCPUs {
				v.CapUs = 400_000 + fl*10_000
			}
		}
		rep = StepReport{}
		c.apply(&rep)
	}
	_ = rep
}
