package core

import (
	"fmt"
	"testing"

	"vfreq/internal/platform"
)

// fakeHost is a scriptable platform.Host for white-box stage tests.
type fakeHost struct {
	node     platform.NodeInfo
	vms      []platform.VMInfo
	usage    map[string]int64 // "vm/j" → cumulative µs
	freq     map[int]int64    // core → MHz
	lastCPU  map[int]int      // tid → core
	setMax   map[string][2]int64
	setBurst map[string]int64
	applied  int
	cleared  []string // ClearMax calls, "vm/j"
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		node:     platform.NodeInfo{Name: "fake", Cores: 4, MaxFreqMHz: 2400},
		usage:    map[string]int64{},
		freq:     map[int]int64{0: 2400, 1: 2400, 2: 2400, 3: 2400},
		lastCPU:  map[int]int{},
		setMax:   map[string][2]int64{},
		setBurst: map[string]int64{},
	}
}

func key(vm string, j int) string { return fmt.Sprintf("%s/%d", vm, j) }

func (f *fakeHost) Node() platform.NodeInfo             { return f.node }
func (f *fakeHost) ListVMs() ([]platform.VMInfo, error) { return f.vms, nil }
func (f *fakeHost) UsageUs(vm string, j int) (int64, error) {
	u, ok := f.usage[key(vm, j)]
	if !ok {
		return 0, fmt.Errorf("no vcpu %s/%d", vm, j)
	}
	return u, nil
}
func (f *fakeHost) SetMax(vm string, j int, quota, period int64) error {
	f.setMax[key(vm, j)] = [2]int64{quota, period}
	f.applied++
	return nil
}
func (f *fakeHost) ClearMax(vm string, j int) error {
	delete(f.setMax, key(vm, j))
	f.cleared = append(f.cleared, key(vm, j))
	return nil
}
func (f *fakeHost) SetBurst(vm string, j int, burstUs int64) error {
	f.setBurst[key(vm, j)] = burstUs
	return nil
}
func (f *fakeHost) ThreadID(vm string, j int) (int, error) { return 1000 + 10*len(vm) + j, nil }
func (f *fakeHost) LastCPU(tid int) (int, error) {
	if c, ok := f.lastCPU[tid]; ok {
		return c, nil
	}
	return 0, nil
}
func (f *fakeHost) CoreFreqMHz(core int) (int64, error) { return f.freq[core], nil }

// addVM registers a VM and seeds zero usage.
func (f *fakeHost) addVM(name string, vcpus int, freqMHz int64) {
	f.vms = append(f.vms, platform.VMInfo{Name: name, VCPUs: vcpus, FreqMHz: freqMHz})
	for j := 0; j < vcpus; j++ {
		f.usage[key(name, j)] = 0
	}
}

// consume advances a vCPU's cumulative usage.
func (f *fakeHost) consume(vm string, j int, us int64) { f.usage[key(vm, j)] += us }

func mustController(t *testing.T, h platform.Host, cfg Config) *Controller {
	t.Helper()
	c, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	h := newFakeHost()
	bad := DefaultConfig()
	bad.PeriodUs = 0
	if _, err := New(h, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	h.node.Cores = 0
	if _, err := New(h, DefaultConfig()); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestConfigValidateCases(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := DefaultConfig()
		mut(&c)
		return c
	}
	cases := []Config{
		mk(func(c *Config) { c.HistoryLen = 1 }),
		mk(func(c *Config) { c.IncreaseTrigger = 0 }),
		mk(func(c *Config) { c.IncreaseTrigger = 1.5 }),
		mk(func(c *Config) { c.IncreaseFactor = 0 }),
		mk(func(c *Config) { c.DecreaseTrigger = 1 }),
		mk(func(c *Config) { c.DecreaseFactor = 0 }),
		mk(func(c *Config) { c.DecreaseFactor = 1 }),
		mk(func(c *Config) { c.StableMargin = -1 }),
		mk(func(c *Config) { c.WindowUs = 0 }),
		mk(func(c *Config) { c.MinQuotaUs = 0 }),
		mk(func(c *Config) { c.MinQuotaUs = c.PeriodUs + 1 }),
		mk(func(c *Config) { c.CgroupPeriodUs = 0 }),
		mk(func(c *Config) { c.CgroupPeriodUs = c.PeriodUs * 2 }),
		mk(func(c *Config) { c.CreditCapPeriods = -1 }),
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestGuaranteeEq2(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	// Eq. 2: C_i = p·F_v/F_MAX.
	if got := c.guarantee(1800); got != 750_000 {
		t.Fatalf("guarantee(1800) = %d, want 750000", got)
	}
	if got := c.guarantee(500); got != 208_333 {
		t.Fatalf("guarantee(500) = %d, want 208333", got)
	}
}

func TestSyncVMsAddRemove(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 500)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.VM("a") == nil || len(c.VM("a").VCPUs) != 2 {
		t.Fatal("VM a not tracked")
	}
	if got := c.VM("a").GuaranteeUs; got != 208_333 {
		t.Fatalf("guarantee = %d", got)
	}
	h.addVM("b", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if len(c.VMs()) != 2 {
		t.Fatal("VM b not added")
	}
	// Remove a.
	h.vms = h.vms[1:]
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.VM("a") != nil || len(c.VMs()) != 1 {
		t.Fatal("VM a not removed")
	}
}

func TestSyncRejectsInfeasibleFrequency(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("fast", 1, 5000) // above 2400 F_MAX
	if err := c.Step(); err != nil {
		t.Fatalf("one bad template aborted the step: %v", err)
	}
	if c.VM("fast") != nil {
		t.Fatal("infeasible VM registered")
	}
	rep := c.LastReport()
	if rep.FaultCount() != 1 || rep.Faults[0].Stage != "sync" || rep.Faults[0].Op != "template" {
		t.Fatalf("faults = %+v, want one sync/template fault", rep.Faults)
	}
}

func TestMonitorComputesDeltaAndFreq(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil { // registers with zero usage
		t.Fatal(err)
	}
	h.consume("a", 0, 600_000)
	h.lastCPU[c.VM("a").VCPUs[0].TID] = 2
	h.freq[2] = 2000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	v := c.VM("a").VCPUs[0]
	if v.LastU != 600_000 {
		t.Fatalf("LastU = %d, want 600000", v.LastU)
	}
	// Virtual frequency: 0.6 share × 2000 MHz = 1200 MHz.
	if v.FreqMHz != 1200 {
		t.Fatalf("FreqMHz = %v, want 1200", v.FreqMHz)
	}
	if v.LastCore != 2 {
		t.Fatalf("LastCore = %d", v.LastCore)
	}
}

func TestMonitorHandlesCounterReset(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.consume("a", 0, 500_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.usage[key("a", 0)] = 100 // counter went backwards (VM restarted)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if u := c.VM("a").VCPUs[0].LastU; u != 0 {
		t.Fatalf("LastU after reset = %d, want 0", u)
	}
}

func TestEstimateIncreaseCase(t *testing.T) {
	c := mustController(t, newFakeHost(), DefaultConfig())
	v := &VCPUState{Hist: NewHistory(5), CapUs: 100_000}
	for _, u := range []int64{50_000, 70_000, 90_000, 96_000} {
		v.Hist.Push(u)
	}
	v.LastU = 96_000 // ≥ 0.95 × 100000 and rising
	got := c.estimate(v)
	if got != 200_000 { // cap × (1 + 1.00)
		t.Fatalf("increase estimate = %d, want 200000", got)
	}
}

func TestEstimateDecreaseCase(t *testing.T) {
	c := mustController(t, newFakeHost(), DefaultConfig())
	v := &VCPUState{Hist: NewHistory(5), CapUs: 100_000}
	for _, u := range []int64{90_000, 70_000, 50_000, 30_000} {
		v.Hist.Push(u)
	}
	v.LastU = 30_000 // ≤ 0.5 × 100000 and falling
	got := c.estimate(v)
	if got != 95_000 { // cap × (1 − 0.05)
		t.Fatalf("decrease estimate = %d, want 95000", got)
	}
}

func TestEstimateStableCase(t *testing.T) {
	c := mustController(t, newFakeHost(), DefaultConfig())
	v := &VCPUState{Hist: NewHistory(5), CapUs: 100_000}
	for i := 0; i < 5; i++ {
		v.Hist.Push(60_000)
	}
	v.LastU = 60_000
	got := c.estimate(v)
	want := int64(float64(60_000)/c.Config().IncreaseTrigger) + 1 // 63157+1
	if got != want {
		t.Fatalf("stable estimate = %d, want %d", got, want)
	}
	// The recalibrated cap must not fire the increase trigger next time.
	if float64(v.LastU) >= 0.95*float64(got) {
		t.Fatal("stable estimate still inside increase trigger")
	}
}

func TestEstimateBounds(t *testing.T) {
	cfg := DefaultConfig()
	c := mustController(t, newFakeHost(), cfg)
	// Idle vCPU: estimate floors at MinQuotaUs.
	v := &VCPUState{Hist: NewHistory(5), CapUs: cfg.MinQuotaUs}
	for i := 0; i < 5; i++ {
		v.Hist.Push(0)
	}
	if got := c.estimate(v); got != cfg.MinQuotaUs {
		t.Fatalf("idle estimate = %d, want %d", got, cfg.MinQuotaUs)
	}
	// Saturated vCPU: estimate ceils at one core (PeriodUs).
	v2 := &VCPUState{Hist: NewHistory(5), CapUs: 900_000}
	for _, u := range []int64{500_000, 700_000, 860_000, 900_000} {
		v2.Hist.Push(u)
	}
	v2.LastU = 900_000
	if got := c.estimate(v2); got != cfg.PeriodUs {
		t.Fatalf("saturated estimate = %d, want %d", got, cfg.PeriodUs)
	}
}

func TestEnforceCreditsEq4AndCapEq5(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 1200) // C_i = 500000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("a")
	// vCPU0 consumed 100000 (under guarantee by 400000), vCPU1 600000
	// (over guarantee, no credit).
	st.VCPUs[0].LastU = 100_000
	st.VCPUs[0].Hist.Push(100_000)
	st.VCPUs[1].LastU = 600_000
	st.VCPUs[1].Hist.Push(600_000)
	st.VCPUs[0].EstUs = 200_000 // under guarantee → cap = estimate
	st.VCPUs[1].EstUs = 900_000 // over guarantee → cap = C_i
	st.CreditUs = 0
	c.enforceBase()
	if st.CreditUs != 400_000 {
		t.Fatalf("credits = %d, want 400000 (Eq. 4)", st.CreditUs)
	}
	if st.VCPUs[0].CapUs != 200_000 {
		t.Fatalf("cap0 = %d, want est 200000 (Eq. 5)", st.VCPUs[0].CapUs)
	}
	if st.VCPUs[1].CapUs != 500_000 {
		t.Fatalf("cap1 = %d, want C_i 500000 (Eq. 5)", st.VCPUs[1].CapUs)
	}
}

func TestCreditWalletCap(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.CreditCapPeriods = 2
	c := mustController(t, h, cfg)
	h.addVM("a", 1, 1200) // C_i = 500000, wallet cap = 2×500000×1
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("a")
	for i := 0; i < 10; i++ {
		st.VCPUs[0].LastU = 0
		st.VCPUs[0].Hist.Push(0)
		c.enforceBase()
	}
	if st.CreditUs != 1_000_000 {
		t.Fatalf("wallet = %d, want capped at 1000000", st.CreditUs)
	}
}

func TestMarketEq6(t *testing.T) {
	h := newFakeHost() // 4 cores → capacity 4e6
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("a")
	st.VCPUs[0].CapUs = 500_000
	st.VCPUs[1].CapUs = 300_000
	if got := c.market(); got != 3_200_000 {
		t.Fatalf("market = %d, want 3200000", got)
	}
	// Oversubscription clamps to zero.
	st.VCPUs[0].CapUs = 3_000_000
	st.VCPUs[1].CapUs = 2_000_000
	if got := c.market(); got != 0 {
		t.Fatalf("oversubscribed market = %d, want 0", got)
	}
}

func TestAuctionChargesCreditsAndWindows(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.WindowUs = 10_000
	c := mustController(t, h, cfg)
	h.addVM("rich", 1, 1200)
	h.addVM("poor", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rich, poor := c.VM("rich"), c.VM("poor")
	rich.CreditUs = 100_000
	poor.CreditUs = 5_000
	rich.VCPUs[0].CapUs, rich.VCPUs[0].EstUs = 100_000, 200_000 // wants 100000
	poor.VCPUs[0].CapUs, poor.VCPUs[0].EstUs = 100_000, 200_000
	left := c.auction(70_000)
	if left != 0 {
		t.Fatalf("market left = %d, want 0", left)
	}
	// The poor VM could only afford 5000; the rich one bought the rest.
	if got := poor.VCPUs[0].CapUs - 100_000; got != 5_000 {
		t.Fatalf("poor bought %d, want 5000", got)
	}
	if got := rich.VCPUs[0].CapUs - 100_000; got != 65_000 {
		t.Fatalf("rich bought %d, want 65000", got)
	}
	if poor.CreditUs != 0 || rich.CreditUs != 35_000 {
		t.Fatalf("wallets = %d/%d", rich.CreditUs, poor.CreditUs)
	}
}

func TestAuctionWindowPreventsMonopoly(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.WindowUs = 1_000
	c := mustController(t, h, cfg)
	h.addVM("rich", 1, 1200)
	h.addVM("mid", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rich, mid := c.VM("rich"), c.VM("mid")
	rich.CreditUs, mid.CreditUs = 1_000_000, 1_000_000
	rich.VCPUs[0].CapUs, rich.VCPUs[0].EstUs = 0, 500_000
	mid.VCPUs[0].CapUs, mid.VCPUs[0].EstUs = 0, 500_000
	c.auction(10_000)
	// With equal wallets and a 1000 window, both should get ~5000.
	if rich.VCPUs[0].CapUs != 5_000 || mid.VCPUs[0].CapUs != 5_000 {
		t.Fatalf("split = %d/%d, want 5000/5000",
			rich.VCPUs[0].CapUs, mid.VCPUs[0].CapUs)
	}
}

func TestAuctionStopsWithoutCredits(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("broke", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.VM("broke")
	st.CreditUs = 0
	st.VCPUs[0].CapUs, st.VCPUs[0].EstUs = 0, 500_000
	left := c.auction(100_000)
	if left != 100_000 {
		t.Fatalf("market left = %d, want all 100000 (no credits)", left)
	}
	if st.VCPUs[0].CapUs != 0 {
		t.Fatal("broke VM bought cycles")
	}
}

func TestDistributeProportional(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	h.addVM("b", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	a, b := c.VM("a").VCPUs[0], c.VM("b").VCPUs[0]
	a.CapUs, a.EstUs = 0, 300_000 // demand 300000
	b.CapUs, b.EstUs = 0, 100_000 // demand 100000
	c.distribute(200_000)
	if a.CapUs != 150_000 || b.CapUs != 50_000 {
		t.Fatalf("distribution = %d/%d, want 150000/50000", a.CapUs, b.CapUs)
	}
	// Distribution never exceeds the estimate.
	a.CapUs, a.EstUs = 0, 50_000
	b.CapUs, b.EstUs = 0, 50_000
	c.distribute(1_000_000)
	if a.CapUs != 50_000 || b.CapUs != 50_000 {
		t.Fatalf("over-distribution: %d/%d", a.CapUs, b.CapUs)
	}
}

func TestApplyScalesQuotaToCgroupPeriod(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	v := c.VM("a").VCPUs[0]
	v.CapUs = 400_000 // per 1 s period
	c.apply(&StepReport{})
	got := h.setMax[key("a", 0)]
	if got[0] != 40_000 || got[1] != 100_000 {
		t.Fatalf("quota = %v, want [40000 100000]", got)
	}
	// Tiny caps floor at MinQuotaUs.
	v.CapUs = 10
	c.apply(&StepReport{})
	got = h.setMax[key("a", 0)]
	if got[0] != c.Config().MinQuotaUs {
		t.Fatalf("floored quota = %d, want %d", got[0], c.Config().MinQuotaUs)
	}
}

func TestMonitoringOnlyModeNeverWritesQuotas(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.ControlEnabled = false
	c := mustController(t, h, cfg)
	h.addVM("a", 2, 500)
	for i := 0; i < 5; i++ {
		h.consume("a", 0, 900_000)
		h.consume("a", 1, 900_000)
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if h.applied != 0 {
		t.Fatalf("execution A wrote %d quotas, want 0", h.applied)
	}
	// Monitoring still happens.
	if c.VM("a").VCPUs[0].LastU != 900_000 {
		t.Fatal("monitoring inactive in execution A")
	}
}

func TestStepTimingsPopulated(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 500)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	tm := c.LastTimings()
	if tm.Total <= 0 {
		t.Fatal("total timing not recorded")
	}
	if c.Steps() != 1 {
		t.Fatalf("Steps = %d", c.Steps())
	}
}

func TestCapacityAndGuaranteeTotals(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 1200)
	h.addVM("b", 4, 600)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.CapacityUs(); got != 4_000_000 {
		t.Fatalf("capacity = %d", got)
	}
	// 2×500000 + 4×250000 = 2000000.
	if got := c.TotalGuaranteeUs(); got != 2_000_000 {
		t.Fatalf("total guarantee = %d", got)
	}
}
