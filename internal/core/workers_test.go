package core

import (
	"fmt"
	"regexp"
	"testing"

	"vfreq/internal/platform"
)

// faultScriptHost wraps fakeHost with deterministic, step-addressed
// usage-read failures: the same (step, vm/vcpu) pairs fail no matter how
// many times or in which order the reads happen, so serial and pooled
// monitor stages observe identical faults.
type faultScriptHost struct {
	*fakeHost
	step  int64
	fails map[string]bool // "step:vm/j"
}

func (f *faultScriptHost) UsageUs(vm string, j int) (int64, error) {
	if f.fails[fmt.Sprintf("%d:%s/%d", f.step, vm, j)] {
		return 0, fmt.Errorf("scripted usage fault")
	}
	return f.fakeHost.UsageUs(vm, j)
}

// reportSummary renders the deterministic part of a StepReport (i.e.
// everything except wall-clock timings).
func reportSummary(rep StepReport) string {
	s := fmt.Sprintf("%s retries=%d recovered=%d dropped=%d", rep.String(),
		rep.Retries, rep.Recovered, rep.FaultsDropped)
	for _, f := range rep.Faults {
		s += "\n  " + f.Error()
	}
	return s
}

// scriptedTwin builds one controller over a scripted host; consumption
// and fault schedules are functions of the step number only.
func scriptedTwin(t *testing.T, workers int) (*Controller, *faultScriptHost) {
	t.Helper()
	fh := newFakeHost()
	fh.node.Cores = 8
	for i := 0; i < 6; i++ {
		fh.addVM(fmt.Sprintf("vm%d", i), 2, 1200)
	}
	h := &faultScriptHost{fakeHost: fh, fails: map[string]bool{}}
	// Degrade vm2/0 on steps 5–6 (past the retry budget, since the
	// fault holds for the whole step) and vm4/1 on step 9.
	h.fails["5:vm2/0"] = true
	h.fails["6:vm2/0"] = true
	h.fails["9:vm4/1"] = true
	cfg := DefaultConfig()
	cfg.MonitorWorkers = workers
	cfg.BurstFraction = 0.2
	ctrl := mustController(t, h, cfg)
	return ctrl, h
}

// advanceTwin applies the step's scripted consumption and runs one Step.
func advanceTwin(t *testing.T, ctrl *Controller, h *faultScriptHost, step int64) StepReport {
	t.Helper()
	h.step = step
	for i := 0; i < 6; i++ {
		for j := 0; j < 2; j++ {
			// A deterministic, per-vCPU-distinct pattern that crosses
			// the increase and decrease triggers over the run.
			u := (step*97_000 + int64(i)*53_000 + int64(j)*31_000) % 1_000_000
			h.consume(fmt.Sprintf("vm%d", i), j, u)
		}
	}
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	return ctrl.LastReport()
}

// TestMonitorWorkersDeterminism proves the tentpole's core promise: the
// pooled monitor stage is observationally identical to the serial one.
// Two controllers run the same scripted workload — including scripted
// read faults and recoveries — with MonitorWorkers=1 vs =8, and every
// Step must produce bit-identical reports and checkpoints.
func TestMonitorWorkersDeterminism(t *testing.T) {
	serial, hs := scriptedTwin(t, 1)
	pooled, hp := scriptedTwin(t, 8)
	sawDegraded := false
	for step := int64(1); step <= 15; step++ {
		repS := advanceTwin(t, serial, hs, step)
		repP := advanceTwin(t, pooled, hp, step)
		if s, p := reportSummary(repS), reportSummary(repP); s != p {
			t.Fatalf("step %d reports diverged:\nserial: %s\npooled: %s", step, s, p)
		}
		if repS.DegradedVCPUs > 0 {
			sawDegraded = true
		}
		snapS, err := serial.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		snapP, err := pooled.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		// The snapshots embed wall-clock stage timings, the one field
		// that legitimately differs — neutralise before comparing.
		s, p := stripTimings(snapS), stripTimings(snapP)
		if s != p {
			t.Fatalf("step %d checkpoints diverged:\nserial:\n%s\npooled:\n%s", step, s, p)
		}
	}
	if !sawDegraded {
		t.Fatal("fault schedule never degraded a vCPU; the test lost its teeth")
	}
	// The quotas written to the host must match too.
	for k, v := range hs.setMax {
		if hp.setMax[k] != v {
			t.Fatalf("final quota for %s: serial %v, pooled %v", k, v, hp.setMax[k])
		}
	}
}

// TestMonitorWorkersAuto ensures the GOMAXPROCS default (MonitorWorkers
// = 0) and an explicit over-provisioned pool (more workers than vCPUs)
// both step correctly.
func TestMonitorWorkersAuto(t *testing.T) {
	for _, workers := range []int{0, 64} {
		h := newFakeHost()
		h.addVM("a", 2, 1200)
		cfg := DefaultConfig()
		cfg.MonitorWorkers = workers
		ctrl := mustController(t, h, cfg)
		for s := 0; s < 3; s++ {
			h.consume("a", 0, 400_000)
			h.consume("a", 1, 400_000)
			if err := ctrl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		rep := ctrl.LastReport()
		if rep.HealthyVCPUs != 2 || rep.DegradedVCPUs != 0 {
			t.Fatalf("workers=%d: report %s", workers, rep)
		}
		if ctrl.VM("a").VCPUs[0].LastU != 400_000 {
			t.Fatalf("workers=%d: LastU = %d", workers, ctrl.VM("a").VCPUs[0].LastU)
		}
	}
}

var timingFields = regexp.MustCompile(`"(step|monitor)_micros": \d+`)

func stripTimings(snap []byte) string {
	return timingFields.ReplaceAllString(string(snap), `"$1_micros": X`)
}

var _ platform.Host = (*faultScriptHost)(nil)
