package core

import "vfreq/internal/platform"

// estimateAll implements stage 2: per-vCPU estimation of the upcoming
// consumption, using the Eq. 3 trend over the consumption history and the
// trigger/factor mechanism of §III-B2. Degraded vCPUs have no fresh
// measurement to estimate from and keep their previous estimate.
func (c *Controller) estimateAll() {
	for _, name := range c.order {
		for _, v := range c.vms[name].VCPUs {
			if v.Degraded {
				continue
			}
			v.EstUs = c.estimate(v)
		}
	}
}

// estimate computes e_{i,j,t} for one vCPU.
func (c *Controller) estimate(v *VCPUState) int64 {
	if v.Hist.Len() == 0 {
		// No consumption has been observed yet: keep the initial
		// guarantee-level estimate rather than reacting to a
		// phantom zero sample.
		return v.EstUs
	}
	cap := v.CapUs
	if cap < c.cfg.MinQuotaUs {
		cap = c.cfg.MinQuotaUs
	}
	u := v.LastU
	trend := v.Hist.Trend()
	// The stability margin is relative to the magnitude of the signal.
	eps := c.cfg.StableMargin * v.Hist.Mean()
	if eps < 1 {
		eps = 1
	}

	var est int64
	switch {
	case trend > eps && float64(u) >= c.cfg.IncreaseTrigger*float64(cap):
		// a) consumption is rising and pushing against the cap:
		// raise by the increase factor for fast convergence.
		est = int64(float64(cap) * (1 + c.cfg.IncreaseFactor))
	case trend < -eps && float64(u) <= c.cfg.DecreaseTrigger*float64(cap):
		// b) consumption is falling well below the cap: shrink
		// gently to avoid oscillation.
		est = int64(float64(cap) * (1 - c.cfg.DecreaseFactor))
	default:
		// c) stable: recalibrate just above the observed
		// consumption so the increase trigger does not fire next
		// iteration, while wasting as few cycles as possible.
		est = int64(float64(u)/c.cfg.IncreaseTrigger) + 1
	}
	if est < c.cfg.MinQuotaUs {
		est = c.cfg.MinQuotaUs
	}
	// A vCPU is a single thread: it can never use more than one core.
	if est > c.cfg.PeriodUs {
		est = c.cfg.PeriodUs
	}
	return est
}

// enforceBase implements stage 3: award credits (Eq. 4) and set the base
// capping c = min(e, C_i) (Eq. 5).
func (c *Controller) enforceBase() {
	for _, name := range c.order {
		st := c.vms[name]
		// Eq. 4: credits accrue for every vCPU consuming less than
		// the guarantee. vCPUs without a measurement yet — warm or
		// degraded — earn nothing.
		for _, v := range st.VCPUs {
			if v.Degraded {
				continue
			}
			if v.Hist.Len() > 0 && st.GuaranteeUs > v.LastU {
				st.CreditUs += st.GuaranteeUs - v.LastU
			}
		}
		if c.cfg.CreditCapPeriods > 0 {
			cap := c.cfg.CreditCapPeriods * st.GuaranteeUs * int64(len(st.VCPUs))
			if st.CreditUs > cap {
				st.CreditUs = cap
			}
		}
		// Eq. 5: guarantee the base frequency, never allocate more
		// than estimated. A degraded vCPU holds its last-known-good
		// cap instead of recomputing from stale data.
		for _, v := range st.VCPUs {
			if v.Degraded {
				continue
			}
			if v.EstUs < st.GuaranteeUs {
				v.CapUs = v.EstUs
			} else {
				v.CapUs = st.GuaranteeUs
			}
		}
	}
}

// auction implements stage 4 (Algorithm 1): sell the market's cycles to
// buyers, window-limited per round, charging the VM wallets. It returns
// the cycles left unsold.
func (c *Controller) auction(market int64) int64 {
	if market <= 0 {
		return 0
	}
	buyers := c.buyers()
	for market > 0 && len(buyers) > 0 {
		c.sortByCredit(buyers)
		progress := false
		next := buyers[:0]
		for _, v := range buyers {
			st := c.vms[v.VM]
			if market <= 0 {
				next = append(next, v)
				continue
			}
			amount := c.cfg.WindowUs
			if want := v.EstUs - v.CapUs; amount > want {
				amount = want
			}
			if amount > market {
				amount = market
			}
			if amount > st.CreditUs {
				amount = st.CreditUs
			}
			if amount > 0 {
				v.CapUs += amount
				st.CreditUs -= amount
				market -= amount
				progress = true
			}
			if v.CapUs < v.EstUs && st.CreditUs > 0 {
				next = append(next, v)
			}
		}
		buyers = next
		if !progress {
			break // nobody can afford anything
		}
	}
	return market
}

// distribute implements stage 5: the cycles the auction could not sell are
// given away to still-hungry vCPUs, proportionally to their residual
// demand (e − c).
func (c *Controller) distribute(market int64) {
	if market <= 0 {
		return
	}
	hungry := c.buyers()
	var total int64
	for _, v := range hungry {
		total += v.EstUs - v.CapUs
	}
	if total <= 0 {
		return
	}
	if market > total {
		market = total
	}
	remaining := market
	for _, v := range hungry {
		give := market * (v.EstUs - v.CapUs) / total
		if give > remaining {
			give = remaining
		}
		v.CapUs += give
		remaining -= give
	}
	// Integer-division residue: the floored proportional pass can leave
	// up to len(hungry)−1 cycles neither given nor returned. Award the
	// remainder to the largest-residual-demand buyer (earliest in
	// registration order on ties), spilling to the next-largest if its
	// headroom runs out, so the market is drained exactly whenever
	// demand remains.
	for remaining > 0 {
		var best *VCPUState
		var bestHead int64
		for _, v := range hungry {
			if head := v.EstUs - v.CapUs; head > bestHead {
				bestHead, best = head, v
			}
		}
		if best == nil {
			break // every buyer is at its estimate
		}
		give := remaining
		if give > bestHead {
			give = bestHead
		}
		best.CapUs += give
		remaining -= give
	}
}

// quotaFor translates one vCPU's cycle allocation (per control period p)
// into the cpu.max quota written against the shorter cgroup bandwidth
// period, floored at MinQuotaUs so an idle vCPU can always wake up.
func (c *Controller) quotaFor(v *VCPUState) int64 {
	quota := v.CapUs * c.cfg.CgroupPeriodUs / c.cfg.PeriodUs
	if quota < c.cfg.MinQuotaUs {
		quota = c.cfg.MinQuotaUs
	}
	return quota
}

// apply implements stage 6: translate the per-vCPU cycle allocations into
// cgroup cpu.max quotas. Allocations are expressed per control period p;
// quotas are written against the (shorter) cgroup bandwidth period.
//
// Application is incremental: each vCPU caches the (quota, period) last
// written successfully, and a vCPU whose fresh quota matches the cache is
// skipped, so a steady-state step issues no host writes at all. The cache
// is dropped whenever the cgroup may no longer hold what was written (see
// VCPUState.invalidateApplied), so a skipped write can never leave a
// stale cap behind. On hosts with the BatchQuotaWriter capability the
// dirty quotas of each VM are written in one batched call.
//
// Application is fault-isolated: a failed write degrades that vCPU alone
// (its cgroup keeps the previous quota, which equals the held cap) while
// every healthy vCPU still gets its fresh quota. vCPUs already degraded
// in monitoring are skipped — their cap is unchanged, so the quota in
// the cgroup is already the one we would write.
func (c *Controller) apply(rep *StepReport) {
	if c.batch != nil {
		c.applyBatched(rep)
		return
	}
	for _, name := range c.order {
		for _, v := range c.vms[name].VCPUs {
			if v.Degraded {
				continue
			}
			quota := c.quotaFor(v)
			if !(v.appliedQuotaOK && v.appliedQuotaUs == quota && v.appliedPeriodUs == c.cfg.CgroupPeriodUs) {
				// Explicit retry loops instead of withRetry: the closure a
				// per-vCPU capture would need escapes to the heap, and apply
				// is part of the allocation-free steady-state path.
				var err error
				for a := 0; a <= c.cfg.HostRetries; a++ {
					if a > 0 {
						c.backoffSleep(a)
					}
					t := c.callStart()
					err = c.budgeted(t, c.host.SetMax(v.VM, v.Index, quota, c.cfg.CgroupPeriodUs))
					if err == nil {
						if a > 0 {
							rep.Retries++
						}
						break
					}
					if err == ErrCallBudget {
						break
					}
				}
				if err != nil {
					v.invalidateApplied()
					v.Degraded = true
					v.FailedSteps++
					rep.record(Fault{VM: v.VM, VCPU: v.Index, Stage: "apply", Op: "setmax", Err: err})
					continue
				}
				v.appliedQuotaUs = quota
				v.appliedPeriodUs = c.cfg.CgroupPeriodUs
				v.appliedQuotaOK = true
			}
			c.applyBurst(rep, v, quota)
		}
	}
}

// applyBurst writes one vCPU's cpu.max.burst budget when burst control is
// enabled and the budget differs from the last one applied.
func (c *Controller) applyBurst(rep *StepReport, v *VCPUState, quota int64) {
	if c.cfg.BurstFraction <= 0 {
		return
	}
	burst := int64(float64(quota) * c.cfg.BurstFraction)
	if v.appliedBurstOK && v.appliedBurstUs == burst {
		return
	}
	var err error
	for a := 0; a <= c.cfg.HostRetries; a++ {
		if a > 0 {
			c.backoffSleep(a)
		}
		t := c.callStart()
		err = c.budgeted(t, c.host.SetBurst(v.VM, v.Index, burst))
		if err == nil {
			if a > 0 {
				rep.Retries++
			}
			break
		}
		if err == ErrCallBudget {
			break
		}
	}
	if err != nil {
		v.invalidateApplied()
		v.Degraded = true
		v.FailedSteps++
		rep.record(Fault{VM: v.VM, VCPU: v.Index, Stage: "apply", Op: "setburst", Err: err})
		return
	}
	v.appliedBurstUs = burst
	v.appliedBurstOK = true
}

// applyBatched is the apply stage over the host's BatchQuotaWriter
// capability: the dirty quotas of each VM are collected into one batch
// (which the Linux backend groups by the VM's slice directory over its
// cached descriptors) and written in a single host call. Per-entry
// outcomes then resolve exactly like the serial path — a failed entry is
// retried individually up to HostRetries times (the batch write counts
// as the first attempt), and a final failure degrades that vCPU with its
// last-applied cache dropped, keeping the entry dirty for the next step.
// Burst budgets follow per vCPU through the serial helper.
func (c *Controller) applyBatched(rep *StepReport) {
	for _, name := range c.order {
		st := c.vms[name]
		buf := c.batchBuf[:0]
		for _, v := range st.VCPUs {
			if v.Degraded {
				continue
			}
			quota := c.quotaFor(v)
			if v.appliedQuotaOK && v.appliedQuotaUs == quota && v.appliedPeriodUs == c.cfg.CgroupPeriodUs {
				continue
			}
			buf = append(buf, platform.VCPUQuota{VCPU: v.Index, QuotaUs: quota, PeriodUs: c.cfg.CgroupPeriodUs})
		}
		c.batchBuf = buf
		if len(buf) > 0 {
			// The summary error is redundant with the per-entry Err
			// fields resolved below. The whole batch is timed as one
			// call: when it blows the budget, every entry that would
			// otherwise look fine is poisoned with ErrCallBudget so a
			// slow batched path degrades its vCPUs like a slow serial
			// one (and skips the pointless per-entry retries).
			t := c.callStart()
			_ = c.batch.BatchSetMax(name, buf)
			if c.callOver(t) {
				for i := range buf {
					if buf[i].Err == nil {
						buf[i].Err = ErrCallBudget
					}
				}
			}
		}
		// The batch holds the dirty subset of st.VCPUs in index order, so
		// one ordered cursor matches entries back to their vCPUs.
		bi := 0
		for _, v := range st.VCPUs {
			if v.Degraded {
				continue
			}
			quota := c.quotaFor(v)
			if bi < len(buf) && buf[bi].VCPU == v.Index {
				err := buf[bi].Err
				bi++
				for a := 1; err != nil && err != ErrCallBudget && a <= c.cfg.HostRetries; a++ {
					c.backoffSleep(a)
					t := c.callStart()
					if err = c.budgeted(t, c.host.SetMax(v.VM, v.Index, quota, c.cfg.CgroupPeriodUs)); err == nil {
						rep.Retries++
					}
				}
				if err != nil {
					v.invalidateApplied()
					v.Degraded = true
					v.FailedSteps++
					rep.record(Fault{VM: v.VM, VCPU: v.Index, Stage: "apply", Op: "setmax", Err: err})
					continue
				}
				v.appliedQuotaUs = quota
				v.appliedPeriodUs = c.cfg.CgroupPeriodUs
				v.appliedQuotaOK = true
			}
			c.applyBurst(rep, v, quota)
		}
	}
}

// TotalGuaranteeUs returns Σ C_i × vCPUs over all hosted VMs, useful to
// check the Eq. 7 feasibility of the current placement.
func (c *Controller) TotalGuaranteeUs() int64 {
	var total int64
	for _, st := range c.vms {
		total += st.GuaranteeUs * int64(len(st.VCPUs))
	}
	return total
}

// CapacityUs returns the machine capacity per period (cores × p).
func (c *Controller) CapacityUs() int64 {
	return int64(c.node.Cores) * c.cfg.PeriodUs
}
