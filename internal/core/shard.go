package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the NUMA-sharded variant of stage 4 (Algorithm 1).
//
// The serial auction is the last sequential pass over every vCPU in the
// control plane. Sharding splits it by NUMA node: buyers are partitioned
// by the node of their last observed core (monitor stage placement), each
// shard auctions a demand-proportional slice of the market against
// per-shard credit ledgers, and a final sequential redistribution round
// sells whatever the shards left over to still-hungry buyers on any node.
//
// Conservation is preserved by construction:
//
//   - the market splits exactly: Σ shard shares + central remainder =
//     market, and every unsold shard share flows into the redistribution
//     round, so Σ sold + leftover = market;
//   - each VM wallet splits exactly: Σ ledger shares ≤ wallet, shares are
//     debited 1:1 per cycle bought, and unspent shares merge back before
//     the redistribution round, so wallet debits = cycles bought and no
//     wallet goes negative;
//   - shards only ever raise CapUs toward EstUs, so no cap drops below
//     the Eq. 5 base or exceeds the estimate.
//
// Race freedom: the buyer partition is disjoint (a vCPU sits in exactly
// one shard), each shard owns its ledger maps, and c.vms is only read —
// wallet mutation happens on the stepping goroutine before the shards
// start (the split) and after they join (the merge).

// auctionShard is one NUMA node's slice of a sharded auction run. Shards
// are controller scratch, reused across Steps.
type auctionShard struct {
	buyers []*VCPUState
	// credit is the shard's ledger: the slice of each VM's wallet this
	// shard may spend, debited as its buyers purchase cycles.
	credit map[string]int64
	// demand accumulates each VM's residual demand (Σ e − c over its
	// buyers in this shard), the wallet-split weight.
	demand      map[string]int64
	demandTotal int64
	// market is the shard's market share on entry and its unsold
	// leftover after the shard auction ran.
	market int64
}

// effectiveShards resolves Config.AuctionShards: 0 means one shard per
// discovered NUMA node.
func (c *Controller) effectiveShards() int {
	if n := c.cfg.AuctionShards; n != 0 {
		return n
	}
	return c.numaNodes
}

// shardOf maps a buyer to its shard: the NUMA node of the core it last
// ran on, folded into the shard count. Before the first placement read
// (LastCore < 0) the buyer lands on shard 0. Without a host topology the
// core index itself stands in for the node id, so a forced shard count
// still spreads buyers by placement.
func (c *Controller) shardOf(v *VCPUState, shards int) int {
	node := v.LastCore
	if node < 0 {
		return 0
	}
	if c.coreNode != nil {
		if node < len(c.coreNode) {
			node = c.coreNode[node]
		} else {
			node = 0
		}
	}
	return node % shards
}

// shardScratch returns n reset shards, growing the reused pool on demand.
func (c *Controller) shardScratch(n int) []*auctionShard {
	for len(c.shards) < n {
		c.shards = append(c.shards, &auctionShard{
			credit: map[string]int64{},
			demand: map[string]int64{},
		})
	}
	sh := c.shards[:n]
	for _, s := range sh {
		s.buyers = s.buyers[:0]
		clear(s.credit)
		clear(s.demand)
		s.demandTotal = 0
		s.market = 0
	}
	return sh
}

// auctionSharded implements stage 4 with NUMA sharding. At an effective
// shard count of 1 it is the serial auction, bit for bit. It returns the
// cycles left unsold, exactly like auction.
func (c *Controller) auctionSharded(market int64) int64 {
	shards := c.effectiveShards()
	if shards <= 1 {
		return c.auction(market)
	}
	if market <= 0 {
		return 0
	}
	buyers := c.buyers()
	if len(buyers) == 0 {
		return market
	}

	sh := c.shardScratch(shards)
	if c.vmDemand == nil {
		c.vmDemand = make(map[string]int64, len(c.vms))
		c.vmWallet = make(map[string]int64, len(c.vms))
	} else {
		clear(c.vmDemand)
		clear(c.vmWallet)
	}

	// Partition buyers by NUMA node and accumulate the split weights.
	var totalDemand int64
	for _, v := range buyers {
		s := sh[c.shardOf(v, shards)]
		s.buyers = append(s.buyers, v)
		d := v.EstUs - v.CapUs
		s.demand[v.VM] += d
		s.demandTotal += d
		c.vmDemand[v.VM] += d
		totalDemand += d
	}
	for vm := range c.vmDemand {
		c.vmWallet[vm] = c.vms[vm].CreditUs
	}

	// Split the market and the wallets proportionally to residual
	// demand. Integer-floor remainders are not lost: the market
	// remainder goes straight to the redistribution round and the
	// wallet remainder stays spendable in the central wallet.
	leftover := market
	for _, s := range sh {
		if s.demandTotal == 0 {
			continue
		}
		s.market = market * s.demandTotal / totalDemand
		leftover -= s.market
		for vm, d := range s.demand {
			st := c.vms[vm]
			share := c.vmWallet[vm] * d / c.vmDemand[vm]
			if share > st.CreditUs {
				share = st.CreditUs
			}
			s.credit[vm] = share
			st.CreditUs -= share
		}
	}

	c.runShardsParallel(sh)

	// Barrier merge: unsold shard markets join the central leftover and
	// unspent ledger credit returns to the wallets.
	for _, s := range sh {
		leftover += s.market
		for vm, cr := range s.credit {
			if cr > 0 {
				c.vms[vm].CreditUs += cr
			}
		}
	}

	// Cross-node redistribution round: one sequential Algorithm 1 pass
	// sells the merged leftover to still-hungry buyers on any node,
	// paced by the same window and charged to the merged wallets.
	return c.auction(leftover)
}

// runShardsParallel fans the per-shard auctions over a worker pool sized
// like the monitor stage's (Config.MonitorWorkers, 0 = GOMAXPROCS),
// pulling shard indices from a shared atomic counter. Worker panics are
// re-raised on the stepping goroutine so the Step watchdog sees them,
// mirroring readParallel.
func (c *Controller) runShardsParallel(sh []*auctionShard) {
	workers := c.cfg.MonitorWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sh) {
		workers = len(sh)
	}
	if workers <= 1 {
		for _, s := range sh {
			c.runShardAuction(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sh) {
					return
				}
				c.runShardAuction(sh[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runShardAuction runs Algorithm 1 over one shard: the same windowed
// rounds as the serial auction, with the shard ledger standing in for
// the VM wallets. It touches only the shard's own buyers and ledger, so
// shards run concurrently without locks.
func (c *Controller) runShardAuction(s *auctionShard) {
	market := s.market
	buyers := s.buyers
	for market > 0 && len(buyers) > 0 {
		sortByLedgerCredit(buyers, s.credit)
		progress := false
		next := buyers[:0]
		for _, v := range buyers {
			if market <= 0 {
				next = append(next, v)
				continue
			}
			amount := c.cfg.WindowUs
			if want := v.EstUs - v.CapUs; amount > want {
				amount = want
			}
			if amount > market {
				amount = market
			}
			if cr := s.credit[v.VM]; amount > cr {
				amount = cr
			}
			if amount > 0 {
				v.CapUs += amount
				s.credit[v.VM] -= amount
				market -= amount
				progress = true
			}
			if v.CapUs < v.EstUs && s.credit[v.VM] > 0 {
				next = append(next, v)
			}
		}
		buyers = next
		if !progress {
			break // nobody in this shard can afford anything
		}
	}
	s.market = market
}

// sortByLedgerCredit is sortByCredit against a shard ledger: buyers of
// VMs with more unspent shard credit come first, stably.
func sortByLedgerCredit(buyers []*VCPUState, credit map[string]int64) {
	for i := 1; i < len(buyers); i++ {
		b := buyers[i]
		cr := credit[b.VM]
		j := i
		for j > 0 && credit[buyers[j-1].VM] < cr {
			buyers[j] = buyers[j-1]
			j--
		}
		buyers[j] = b
	}
}
