package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the NUMA-sharded variants of stages 2–4: one
// placement partition feeds estimation, base enforcement and the auction
// (Algorithm 1).
//
// Stages 2–3 shard trivially and exactly: estimation is per-vCPU pure,
// the Eq. 4 credit accrual is a commutative per-VM sum (accumulated
// per shard, merged at a single barrier, clamped once per VM exactly as
// the serial pass does), and the Eq. 6 market is a commutative cap sum.
// The sharded stages are therefore bit-identical to the serial ones at
// any shard count.
//
// The serial auction was the last sequential pass over every vCPU in the
// control plane. Sharding splits it by NUMA node: buyers are partitioned
// by the node of their last observed core (monitor stage placement), each
// shard auctions a demand-proportional slice of the market against
// per-shard credit ledgers, and a final sequential redistribution round
// sells whatever the shards left over to still-hungry buyers on any node.
//
// Conservation is preserved by construction:
//
//   - the market splits exactly: Σ shard shares + central remainder =
//     market, and every unsold shard share flows into the redistribution
//     round, so Σ sold + leftover = market;
//   - each VM wallet splits exactly: Σ ledger shares ≤ wallet, shares are
//     debited 1:1 per cycle bought, and unspent shares merge back before
//     the redistribution round, so wallet debits = cycles bought and no
//     wallet goes negative;
//   - shards only ever raise CapUs toward EstUs, so no cap drops below
//     the Eq. 5 base or exceeds the estimate.
//
// Race freedom: the buyer partition is disjoint (a vCPU sits in exactly
// one shard), each shard owns its ledger maps, and c.vms is only read —
// wallet mutation happens on the stepping goroutine before the shards
// start (the split) and after they join (the merge).

// auctionShard is one NUMA node's slice of a sharded stage run. Shards
// are controller scratch, reused across Steps.
type auctionShard struct {
	// vcpus is the shard's slice of the full stage 2–3 partition: every
	// tracked vCPU whose placement folds into this shard, degraded and
	// warm ones included (the market cap sum needs all of them), in
	// registration order. Filled by partitionStages.
	vcpus []*VCPUState
	// creditDelta accumulates the shard's Eq. 4 credit accruals per VM,
	// merged into the wallets at the enforce barrier.
	creditDelta map[string]int64
	// capSum is Σ CapUs over the shard's vcpus after enforcement, the
	// shard's contribution to the Eq. 6 market.
	capSum int64

	buyers []*VCPUState
	// credit is the shard's ledger: the slice of each VM's wallet this
	// shard may spend, debited as its buyers purchase cycles.
	credit map[string]int64
	// demand accumulates each VM's residual demand (Σ e − c over its
	// buyers in this shard), the wallet-split weight.
	demand      map[string]int64
	demandTotal int64
	// market is the shard's market share on entry and its unsold
	// leftover after the shard auction ran.
	market int64
}

// effectiveShards resolves Config.AuctionShards: 0 means one shard per
// discovered NUMA node.
func (c *Controller) effectiveShards() int {
	if n := c.cfg.AuctionShards; n != 0 {
		return n
	}
	return c.numaNodes
}

// shardOf maps a buyer to its shard: the NUMA node of the core it last
// ran on, folded into the shard count. Before the first placement read
// (LastCore < 0) the buyer lands on shard 0. Without a host topology the
// core index itself stands in for the node id, so a forced shard count
// still spreads buyers by placement.
func (c *Controller) shardOf(v *VCPUState, shards int) int {
	node := v.LastCore
	if node < 0 {
		return 0
	}
	if c.coreNode != nil {
		if node < len(c.coreNode) {
			node = c.coreNode[node]
		} else {
			node = 0
		}
	}
	return node % shards
}

// effectiveEstimateShards resolves Config.EstimateShards: 0 follows the
// effective auction shard count, so one knob sizes the partition that
// feeds all three sharded stages.
func (c *Controller) effectiveEstimateShards() int {
	if n := c.cfg.EstimateShards; n != 0 {
		return n
	}
	return c.effectiveShards()
}

// shardScratch returns n reset shards, growing the reused pool on demand.
func (c *Controller) shardScratch(n int) []*auctionShard {
	for len(c.shards) < n {
		c.shards = append(c.shards, &auctionShard{
			credit:      map[string]int64{},
			demand:      map[string]int64{},
			creditDelta: map[string]int64{},
		})
	}
	sh := c.shards[:n]
	for _, s := range sh {
		s.vcpus = s.vcpus[:0]
		clear(s.creditDelta)
		s.capSum = 0
		s.buyers = s.buyers[:0]
		clear(s.credit)
		clear(s.demand)
		s.demandTotal = 0
		s.market = 0
	}
	return sh
}

// partitionStages splits every tracked vCPU into n shards by NUMA
// placement, preserving registration order within each shard. The
// partition then feeds stages 2, 3 and (when the shard counts agree) 4;
// it stays valid until the next Step re-reads placements.
func (c *Controller) partitionStages(n int) []*auctionShard {
	sh := c.shardScratch(n)
	for _, name := range c.order {
		for _, v := range c.vms[name].VCPUs {
			s := sh[c.shardOf(v, n)]
			s.vcpus = append(s.vcpus, v)
		}
	}
	c.partitionShards = n
	return sh
}

// estimateStage dispatches stage 2: the serial per-vCPU pass at an
// effective shard count of 1, the partitioned concurrent pass otherwise.
// Both compute exactly the same estimates — estimation reads only the
// vCPU's own state and the config.
func (c *Controller) estimateStage() {
	n := c.effectiveEstimateShards()
	if n <= 1 {
		c.estimateAll()
		return
	}
	sh := c.partitionStages(n)
	c.runShardsParallel(sh, opEstimate)
}

// enforceStage dispatches stage 3. The sharded pass accumulates the
// Eq. 4 credit accruals per shard, then merges them into the VM wallets
// at a single barrier on the stepping goroutine — integer addition is
// commutative, so the merged wallet is bit-identical to the serial
// accrual — and applies the credit-cap clamp once per VM, exactly where
// the serial pass applies it.
func (c *Controller) enforceStage() {
	if c.partitionShards == 0 {
		c.enforceBase()
		return
	}
	sh := c.shards[:c.partitionShards]
	c.runShardsParallel(sh, opEnforce)
	for _, name := range c.order {
		st := c.vms[name]
		for _, s := range sh {
			if d := s.creditDelta[name]; d != 0 {
				st.CreditUs += d
			}
		}
		if c.cfg.CreditCapPeriods > 0 {
			cap := c.cfg.CreditCapPeriods * st.GuaranteeUs * int64(len(st.VCPUs))
			if st.CreditUs > cap {
				st.CreditUs = cap
			}
		}
	}
}

// marketStage computes Eq. 6, from the per-shard cap sums when the
// partitioned enforce pass ran (the same commutative sum the serial
// market() takes over the VM map).
func (c *Controller) marketStage() int64 {
	if c.partitionShards == 0 {
		return c.market()
	}
	total := int64(c.node.Cores) * c.cfg.PeriodUs
	for _, s := range c.shards[:c.partitionShards] {
		total -= s.capSum
	}
	if total < 0 {
		total = 0
	}
	return total
}

// runShardEstimate runs stage 2 over one shard's vCPUs. It writes only
// EstUs of vCPUs this shard owns.
func (c *Controller) runShardEstimate(s *auctionShard) {
	for _, v := range s.vcpus {
		if v.Degraded {
			continue
		}
		v.EstUs = c.estimate(v)
	}
}

// runShardEnforce runs stage 3 over one shard's vCPUs: Eq. 4 accruals
// into the shard-local delta map, the Eq. 5 cap per vCPU, and the cap
// sum for the market. c.vms is only read; every write lands in state
// this shard owns.
func (c *Controller) runShardEnforce(s *auctionShard) {
	for _, v := range s.vcpus {
		st := c.vms[v.VM]
		if !v.Degraded {
			if v.Hist.Len() > 0 && st.GuaranteeUs > v.LastU {
				s.creditDelta[v.VM] += st.GuaranteeUs - v.LastU
			}
			if v.EstUs < st.GuaranteeUs {
				v.CapUs = v.EstUs
			} else {
				v.CapUs = st.GuaranteeUs
			}
		}
		s.capSum += v.CapUs
	}
}

// mulDiv returns ⌊a·b/d⌋ exactly, for 0 ≤ b ≤ d and a ≥ 0, without ever
// computing the full product a·b: with an unbounded wallet
// (CreditCapPeriods = 0) the credit × demand product can exceed int64,
// and the overflowed negative "share" would MINT credit at the wallet
// split (wallet −= share with share < 0) and leak it across the barrier
// merge. Decomposing a = q·d + r gives ⌊a·b/d⌋ = q·b + ⌊r·b/d⌋ with
// every intermediate bounded by max(a, d²).
func mulDiv(a, b, d int64) int64 {
	return (a/d)*b + (a%d)*b/d
}

// auctionSharded implements stage 4 with NUMA sharding. At an effective
// shard count of 1 it is the serial auction, bit for bit. It returns the
// cycles left unsold, exactly like auction.
func (c *Controller) auctionSharded(market int64) int64 {
	shards := c.effectiveShards()
	if shards <= 1 {
		return c.auction(market)
	}
	if market <= 0 {
		return 0
	}
	if c.vmDemand == nil {
		c.vmDemand = make(map[string]int64, len(c.vms))
		c.vmWallet = make(map[string]int64, len(c.vms))
	} else {
		clear(c.vmDemand)
		clear(c.vmWallet)
	}

	// Partition buyers by NUMA node and accumulate the split weights.
	// When the stage 2–3 partition exists at the same shard count, the
	// buyers fall out of it by filtering each shard's vCPU slice (same
	// placement, same registration order); otherwise partition the
	// buyer list from scratch.
	var sh []*auctionShard
	var totalDemand int64
	if shards == c.partitionShards {
		sh = c.shards[:shards]
		nbuyers := 0
		for _, s := range sh {
			for _, v := range s.vcpus {
				if v.Degraded || v.CapUs >= v.EstUs {
					continue
				}
				s.buyers = append(s.buyers, v)
				d := v.EstUs - v.CapUs
				s.demand[v.VM] += d
				s.demandTotal += d
				c.vmDemand[v.VM] += d
				totalDemand += d
				nbuyers++
			}
		}
		if nbuyers == 0 {
			return market
		}
	} else {
		c.partitionShards = 0 // the stale partition must not outlive this layout
		buyers := c.buyers()
		if len(buyers) == 0 {
			return market
		}
		sh = c.shardScratch(shards)
		for _, v := range buyers {
			s := sh[c.shardOf(v, shards)]
			s.buyers = append(s.buyers, v)
			d := v.EstUs - v.CapUs
			s.demand[v.VM] += d
			s.demandTotal += d
			c.vmDemand[v.VM] += d
			totalDemand += d
		}
	}
	for vm := range c.vmDemand {
		c.vmWallet[vm] = c.vms[vm].CreditUs
	}

	// Split the market and the wallets proportionally to residual
	// demand. Integer-floor remainders are not lost: the market
	// remainder goes straight to the redistribution round and the
	// wallet remainder stays spendable in the central wallet. Both
	// splits divide through mulDiv — the plain products overflow int64
	// once wallets grow unbounded, and an overflowed share would mint
	// credit instead of conserving it.
	leftover := market
	for _, s := range sh {
		if s.demandTotal == 0 {
			continue
		}
		s.market = mulDiv(market, s.demandTotal, totalDemand)
		leftover -= s.market
		for vm, d := range s.demand {
			st := c.vms[vm]
			share := mulDiv(c.vmWallet[vm], d, c.vmDemand[vm])
			if share > st.CreditUs {
				share = st.CreditUs
			}
			s.credit[vm] = share
			st.CreditUs -= share
		}
	}

	c.runShardsParallel(sh, opAuction)

	// Barrier merge: unsold shard markets join the central leftover and
	// unspent ledger credit returns to the wallets.
	for _, s := range sh {
		leftover += s.market
		for vm, cr := range s.credit {
			if cr > 0 {
				c.vms[vm].CreditUs += cr
			}
		}
	}

	// Cross-node redistribution round: one sequential Algorithm 1 pass
	// sells the merged leftover to still-hungry buyers on any node,
	// paced by the same window and charged to the merged wallets.
	return c.auction(leftover)
}

// shardOp selects the per-shard pass runShardsParallel fans out. An op
// code instead of a func value keeps the serial fallback free of the
// heap allocation a method-value capture would cost.
type shardOp int

const (
	opAuction shardOp = iota
	opEstimate
	opEnforce
)

// runShard executes one pass over one shard.
func (c *Controller) runShard(s *auctionShard, op shardOp) {
	switch op {
	case opAuction:
		c.runShardAuction(s)
	case opEstimate:
		c.runShardEstimate(s)
	case opEnforce:
		c.runShardEnforce(s)
	}
}

// runShardsParallel fans a per-shard pass over a worker pool sized like
// the monitor stage's (Config.MonitorWorkers, 0 = GOMAXPROCS), pulling
// shard indices from a shared atomic counter. Worker panics are
// re-raised on the stepping goroutine so the Step watchdog sees them,
// mirroring readParallel.
func (c *Controller) runShardsParallel(sh []*auctionShard, op shardOp) {
	workers := c.cfg.MonitorWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sh) {
		workers = len(sh)
	}
	if workers <= 1 {
		for _, s := range sh {
			c.runShard(s, op)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sh) {
					return
				}
				c.runShard(sh[i], op)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runShardAuction runs Algorithm 1 over one shard: the same windowed
// rounds as the serial auction, with the shard ledger standing in for
// the VM wallets. It touches only the shard's own buyers and ledger, so
// shards run concurrently without locks.
func (c *Controller) runShardAuction(s *auctionShard) {
	market := s.market
	buyers := s.buyers
	for market > 0 && len(buyers) > 0 {
		sortByLedgerCredit(buyers, s.credit)
		progress := false
		next := buyers[:0]
		for _, v := range buyers {
			if market <= 0 {
				next = append(next, v)
				continue
			}
			amount := c.cfg.WindowUs
			if want := v.EstUs - v.CapUs; amount > want {
				amount = want
			}
			if amount > market {
				amount = market
			}
			if cr := s.credit[v.VM]; amount > cr {
				amount = cr
			}
			if amount > 0 {
				v.CapUs += amount
				s.credit[v.VM] -= amount
				market -= amount
				progress = true
			}
			if v.CapUs < v.EstUs && s.credit[v.VM] > 0 {
				next = append(next, v)
			}
		}
		buyers = next
		if !progress {
			break // nobody in this shard can afford anything
		}
	}
	s.market = market
}

// sortByLedgerCredit is sortByCredit against a shard ledger: buyers of
// VMs with more unspent shard credit come first, stably.
func sortByLedgerCredit(buyers []*VCPUState, credit map[string]int64) {
	for i := 1; i < len(buyers); i++ {
		b := buyers[i]
		cr := credit[b.VM]
		j := i
		for j > 0 && credit[buyers[j-1].VM] < cr {
			buyers[j] = buyers[j-1]
			j--
		}
		buyers[j] = b
	}
}
