package core

// History is a fixed-capacity ring of per-period consumption samples used
// by the estimation stage.
type History struct {
	buf  []int64
	head int // index of the oldest sample
	n    int // number of valid samples
}

// NewHistory creates a history holding up to capacity samples.
func NewHistory(capacity int) *History {
	if capacity < 2 {
		capacity = 2
	}
	return &History{buf: make([]int64, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (h *History) Push(v int64) {
	if h.n < len(h.buf) {
		h.buf[(h.head+h.n)%len(h.buf)] = v
		h.n++
		return
	}
	h.buf[h.head] = v
	h.head = (h.head + 1) % len(h.buf)
}

// Len returns the number of stored samples.
func (h *History) Len() int { return h.n }

// At returns the i-th sample, oldest first.
func (h *History) At(i int) int64 {
	if i < 0 || i >= h.n {
		panic("core: history index out of range")
	}
	return h.buf[(h.head+i)%len(h.buf)]
}

// Last returns the most recent sample (0 when empty).
func (h *History) Last() int64 {
	if h.n == 0 {
		return 0
	}
	return h.At(h.n - 1)
}

// Mean returns the average of the stored samples.
func (h *History) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < h.n; i++ {
		sum += h.At(i)
	}
	return float64(sum) / float64(h.n)
}

// Trend returns the consumption trend of Eq. 3: the least-squares slope of
// the samples against their index (cycles per period). With fewer than two
// samples the trend is zero.
//
// Note on Eq. 3 as printed: the paper subtracts S_n = n(n+1)/2 from the
// index x, which makes the denominator the sum of (x − S_n)²; dividing the
// standard covariance numerator by that denominator is exactly the
// ordinary least-squares slope when S_n/n is the index mean x̄ = (n+1)/2.
// We implement the standard least-squares slope, which is what the
// formula computes up to that notational shortcut.
func (h *History) Trend() float64 {
	n := h.n
	if n < 2 {
		return 0
	}
	// x values are 1..n (as in the paper), y values the samples.
	xMean := float64(n+1) / 2
	yMean := h.Mean()
	var num, den float64
	for i := 0; i < n; i++ {
		dx := float64(i+1) - xMean
		num += dx * (float64(h.At(i)) - yMean)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Reset discards all samples.
func (h *History) Reset() {
	h.head = 0
	h.n = 0
}
