package core_test

import (
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
)

// The paper: "There are two versions of cgroup in Linux, however the
// version is not important as our controller works on both." The same
// controller, driven through the v1 file dialect, enforces the same
// guarantees.
func TestControllerWorksOnCgroupV1(t *testing.T) {
	mgr := testNode(t, 2)
	slow := vm.Template{Name: "slow", VCPUs: 2, FreqMHz: 600, MemoryGB: 2}
	fast := vm.Template{Name: "fast", VCPUs: 2, FreqMHz: 1800, MemoryGB: 2}
	if _, err := mgr.Provision("slow", slow, busySources(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("fast", fast, busySources(2)); err != nil {
		t.Fatal(err)
	}
	v1, err := platform.NewSimV1(mgr)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(v1, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	freqs := run(t, mgr, ctrl, 20, 10)
	if f := freqs["slow"]; f < 570 || f > 700 {
		t.Fatalf("v1-driven slow VM at %.0f MHz, want ≈600", f)
	}
	if f := freqs["fast"]; f < 1710 || f > 1900 {
		t.Fatalf("v1-driven fast VM at %.0f MHz, want ≈1800", f)
	}
}
