package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vfreq/internal/platform"
)

// flakyHost wraps fakeHost and fails selected operations, for failure
// injection: a real host can race VM teardown with the controller
// (cgroups vanish between ListVMs and the usage read).
type flakyHost struct {
	*fakeHost
	failUsage  bool
	failTID    bool
	failCPU    bool
	failFreq   bool
	failSetMax bool
	failList   bool
}

var errInjected = errors.New("injected failure")

func (f *flakyHost) ListVMs() ([]platform.VMInfo, error) {
	if f.failList {
		return nil, errInjected
	}
	return f.fakeHost.ListVMs()
}

func (f *flakyHost) UsageUs(vm string, j int) (int64, error) {
	if f.failUsage {
		return 0, errInjected
	}
	return f.fakeHost.UsageUs(vm, j)
}

func (f *flakyHost) ThreadID(vm string, j int) (int, error) {
	if f.failTID {
		return 0, errInjected
	}
	return f.fakeHost.ThreadID(vm, j)
}

func (f *flakyHost) LastCPU(tid int) (int, error) {
	if f.failCPU {
		return 0, errInjected
	}
	return f.fakeHost.LastCPU(tid)
}

func (f *flakyHost) CoreFreqMHz(core int) (int64, error) {
	if f.failFreq {
		return 0, errInjected
	}
	return f.fakeHost.CoreFreqMHz(core)
}

func (f *flakyHost) SetMax(vm string, j int, q, p int64) error {
	if f.failSetMax {
		return errInjected
	}
	return f.fakeHost.SetMax(vm, j, q, p)
}

func newFlaky() *flakyHost { return &flakyHost{fakeHost: newFakeHost()} }

// Per-vCPU host failures no longer abort the step: Step succeeds, the
// vCPU degrades and the fault lands in the StepReport. Only a failing
// ListVMs — the host is unreachable — surfaces as a Step error.
func TestStepSurfacesHostErrors(t *testing.T) {
	cases := []struct {
		name  string
		set   func(*flakyHost)
		stage string
	}{
		{"list", func(f *flakyHost) { f.failList = true }, ""},
		{"usage", func(f *flakyHost) { f.failUsage = true }, "monitor"},
		{"tid", func(f *flakyHost) { f.failTID = true }, "monitor"},
		{"lastcpu", func(f *flakyHost) { f.failCPU = true }, "monitor"},
		{"freq", func(f *flakyHost) { f.failFreq = true }, "monitor"},
		{"setmax", func(f *flakyHost) { f.failSetMax = true }, "apply"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newFlaky()
			h.addVM("a", 1, 1200)
			c := mustController(t, h, DefaultConfig())
			if err := c.Step(); err != nil { // clean first step
				t.Fatal(err)
			}
			h.consume("a", 0, 500_000)
			tc.set(h)
			err := c.Step()
			if tc.name == "list" {
				if !errors.Is(err, errInjected) {
					t.Fatalf("Step err = %v, want injected failure", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Step err = %v, want fault-isolated success", err)
			}
			rep := c.LastReport()
			if rep.DegradedVCPUs != 1 {
				t.Fatalf("DegradedVCPUs = %d, want 1", rep.DegradedVCPUs)
			}
			if rep.FaultCount() == 0 {
				t.Fatal("no fault recorded")
			}
			f := rep.Faults[0]
			if f.Stage != tc.stage || !errors.Is(f.Err, errInjected) {
				t.Fatalf("fault = %+v, want stage %q wrapping injected error", f, tc.stage)
			}
		})
	}
}

// After a degraded step, recovery must be clean: monitoring commits
// atomically, so the failed step leaves the usage bookkeeping untouched
// and the recovery step absorbs the full accumulated delta.
func TestRecoveryAfterFailedStep(t *testing.T) {
	h := newFlaky()
	h.addVM("a", 1, 1200)
	c := mustController(t, h, DefaultConfig())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.consume("a", 0, 300_000)
	h.failFreq = true
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if !c.VM("a").VCPUs[0].Degraded {
		t.Fatal("vCPU not degraded after failed monitor")
	}
	h.failFreq = false
	h.consume("a", 0, 400_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	v := c.VM("a").VCPUs[0]
	if v.Degraded {
		t.Fatal("vCPU still degraded after clean step")
	}
	// The degraded step committed nothing, so the recovery step sees
	// the full 700000 delta and the cumulative bookkeeping matches the
	// host counter.
	if v.PrevUsageUs != 700_000 {
		t.Fatalf("PrevUsageUs = %d, want 700000", v.PrevUsageUs)
	}
	if v.LastU != 700_000 {
		t.Fatalf("LastU = %d, want 700000", v.LastU)
	}
}

// A VM that disappears between steps is dropped without error, and its
// reappearance is treated as a fresh VM (warm start).
func TestVMChurn(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 500)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Disappear.
	saved := h.vms
	h.vms = nil
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.VM("a") != nil {
		t.Fatal("departed VM still tracked")
	}
	// Reappear with accumulated usage; must not be misread as a huge
	// consumption delta.
	h.vms = saved
	h.consume("a", 0, 5_000_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.VM("a").VCPUs[0].LastU; got != 0 {
		t.Fatalf("reappeared VM LastU = %d, want 0 (warm)", got)
	}
	h.consume("a", 0, 250_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.VM("a").VCPUs[0].LastU; got != 250_000 {
		t.Fatalf("post-warm LastU = %d, want 250000", got)
	}
}

// Property: for arbitrary consumption sequences, the controller never
// produces a negative cap, never exceeds one core per vCPU, never lets a
// wallet go negative, and never oversubscribes the machine with caps.
func TestQuickControllerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		nVMs := rng.Intn(4) + 1
		for i := 0; i < nVMs; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), rng.Intn(3)+1,
				int64(rng.Intn(2300)+100))
		}
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		for step := 0; step < 25; step++ {
			for _, info := range h.vms {
				for j := 0; j < info.VCPUs; j++ {
					h.consume(info.Name, j, int64(rng.Intn(1_000_001)))
				}
			}
			if err := c.Step(); err != nil {
				return false
			}
			var total int64
			for _, st := range c.VMs() {
				if st.CreditUs < 0 {
					return false
				}
				for _, v := range st.VCPUs {
					if v.CapUs < 0 || v.CapUs > c.Config().PeriodUs {
						return false
					}
					if v.EstUs < 0 || v.EstUs > c.Config().PeriodUs {
						return false
					}
					total += v.CapUs
				}
			}
			// Σcaps ≤ capacity holds whenever the guarantees are
			// feasible (Eq. 7); an oversubscribed placement keeps
			// every guarantee instead, so only per-vCPU bounds
			// apply there.
			if c.TotalGuaranteeUs() <= c.CapacityUs() && total > c.CapacityUs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the guarantee is never starved — a saturated vCPU's cap never
// drops below C_i once its history is warm, regardless of what the other
// VMs do.
func TestQuickGuaranteeNeverStarved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newFakeHost()
		h.addVM("victim", 1, 1200) // C_i = 500000
		h.addVM("noise", 2, 600)
		c, err := New(h, DefaultConfig())
		if err != nil {
			return false
		}
		for step := 0; step < 20; step++ {
			// The victim always consumes exactly its cap
			// (saturated); the noise VM consumes randomly.
			var victimCap int64 = 500_000
			if st := c.VM("victim"); st != nil {
				victimCap = st.VCPUs[0].CapUs
			}
			h.consume("victim", 0, victimCap)
			h.consume("noise", 0, int64(rng.Intn(1_000_001)))
			h.consume("noise", 1, int64(rng.Intn(1_000_001)))
			if err := c.Step(); err != nil {
				return false
			}
			if step < 3 {
				continue // warm-up and convergence
			}
			if got := c.VM("victim").VCPUs[0].CapUs; got < 500_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// An oversubscribed placement (Eq. 7 violated upstream) must not panic or
// produce a negative market; guarantees degrade but caps stay sane.
func TestOversubscribedGuarantees(t *testing.T) {
	h := newFakeHost() // 4 cores, capacity 4e6
	// Guarantees: 3 VMs × 2 vCPUs × 2400 MHz = 6e6 > 4e6.
	for i := 0; i < 3; i++ {
		h.addVM(fmt.Sprintf("big%d", i), 2, 2400)
	}
	c := mustController(t, h, DefaultConfig())
	for step := 0; step < 10; step++ {
		for i := 0; i < 3; i++ {
			h.consume(fmt.Sprintf("big%d", i), 0, 900_000)
			h.consume(fmt.Sprintf("big%d", i), 1, 900_000)
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.market(); got != 0 {
		t.Fatalf("oversubscribed market = %d, want clamped 0", got)
	}
	for _, st := range c.VMs() {
		for _, v := range st.VCPUs {
			if v.CapUs < 0 || v.CapUs > c.Config().PeriodUs {
				t.Fatalf("cap %d out of range", v.CapUs)
			}
		}
	}
}

// Config with a different control period: guarantees and quotas scale.
func TestNonStandardPeriod(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultConfig()
	cfg.PeriodUs = 250_000 // 250 ms control period
	cfg.CgroupPeriodUs = 50_000
	cfg.WindowUs = 2_500
	c := mustController(t, h, cfg)
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// C_i = 250000 × 1200/2400 = 125000.
	if got := c.VM("a").GuaranteeUs; got != 125_000 {
		t.Fatalf("guarantee = %d, want 125000", got)
	}
	h.consume("a", 0, 125_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	q := h.setMax[key("a", 0)]
	if q[1] != 50_000 {
		t.Fatalf("quota period = %d, want 50000", q[1])
	}
	if q[0] <= 0 || q[0] > 50_000 {
		t.Fatalf("quota = %d out of range", q[0])
	}
}

// Zero-vCPU guard: a host reporting a VM with no vCPUs is tolerated.
func TestVMWithNoVCPUs(t *testing.T) {
	h := newFakeHost()
	h.vms = append(h.vms, platform.VMInfo{Name: "ghost", VCPUs: 0, FreqMHz: 500})
	c := mustController(t, h, DefaultConfig())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if st := c.VM("ghost"); st == nil || len(st.VCPUs) != 0 {
		t.Fatal("ghost VM handling wrong")
	}
}
