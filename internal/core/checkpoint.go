package core

import (
	"fmt"

	"vfreq/internal/platform"
)

// AttachStore attaches a checkpoint store. When Config.CheckpointEvery is
// positive, Step persists a checkpoint every that many completed
// iterations; a failed save is recorded as a "checkpoint" fault in the
// StepReport instead of aborting the step.
func (c *Controller) AttachStore(s platform.Store) { c.store = s }

// Checkpoint persists the current state to the attached store now,
// regardless of Config.CheckpointEvery. Use it for a clean shutdown.
func (c *Controller) Checkpoint() error {
	if c.store == nil {
		return fmt.Errorf("core: no checkpoint store attached")
	}
	data, err := c.Snapshot().JSON()
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return c.store.Save(data)
}

// maybeCheckpoint persists a checkpoint when the interval elapses.
func (c *Controller) maybeCheckpoint(rep *StepReport) {
	if c.store == nil || c.cfg.CheckpointEvery <= 0 || c.steps%c.cfg.CheckpointEvery != 0 {
		return
	}
	if err := c.Checkpoint(); err != nil {
		rep.record(Fault{VCPU: -1, Stage: "checkpoint", Op: "save", Err: err})
		return
	}
	rep.Checkpointed = true
}

// RestoreReport describes what a Restore did with each VM it found in the
// checkpoint or on the live host.
type RestoreReport struct {
	// CheckpointStep is the step counter carried by the checkpoint; the
	// controller resumes from it.
	CheckpointStep int64
	// Adopted lists VMs restored from the checkpoint with their credit
	// wallets, caps and consumption histories intact.
	Adopted []string
	// ColdStarted lists VMs present on the host but absent from the
	// checkpoint (arrived while the controller was down), registered
	// fresh.
	ColdStarted []string
	// Dropped lists checkpoint VMs no longer present on the host.
	Dropped []string
	// Deferred lists live VMs whose registration failed (host read
	// error or invalid template); the next Step retries them through
	// the normal reconcile path.
	Deferred []string
	// AdoptedQuotas counts vCPUs whose live cpu.max quota differed from
	// what the controller would have written and was adopted as the
	// current cap instead of being overwritten blindly.
	AdoptedQuotas int
}

// String summarises the restore in one line.
func (r RestoreReport) String() string {
	return fmt.Sprintf("restored step %d: %d adopted, %d cold-started, %d dropped, %d deferred, %d quotas adopted",
		r.CheckpointStep, len(r.Adopted), len(r.ColdStarted), len(r.Dropped), len(r.Deferred), r.AdoptedQuotas)
}

// Restore rebuilds the controller state from a decoded checkpoint,
// revalidating everything against the live host:
//
//   - the node shape (cores, F_MAX) and control period must match the
//     checkpoint, otherwise the credits and guarantees are meaningless;
//   - VMs present in both checkpoint and host are adopted with their
//     credits, caps and histories; their usage baselines are re-read live
//     (the counters kept moving while the controller was down);
//   - VMs only on the host are cold-started, adopting any cpu.max quota
//     a previous incarnation left behind (via the optional
//     platform.QuotaReader capability) instead of resetting it;
//   - VMs only in the checkpoint are dropped.
//
// Restore is only valid on a fresh controller that has not stepped yet.
func (c *Controller) Restore(s Snapshot) (RestoreReport, error) {
	var rr RestoreReport
	if c.steps > 0 || len(c.vms) > 0 {
		return rr, fmt.Errorf("core: restore into a used controller (step %d, %d VMs)",
			c.steps, len(c.vms))
	}
	if s.Version != SnapshotVersion {
		return rr, fmt.Errorf("core: checkpoint version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Cores != c.node.Cores || s.MaxFreqMHz != c.node.MaxFreqMHz {
		return rr, fmt.Errorf("core: checkpoint node shape %d cores @ %d MHz, live host %d cores @ %d MHz",
			s.Cores, s.MaxFreqMHz, c.node.Cores, c.node.MaxFreqMHz)
	}
	if s.Node != "" && s.Node != c.node.Name {
		return rr, fmt.Errorf("core: checkpoint from node %q, live host is %q", s.Node, c.node.Name)
	}
	if s.PeriodUs != c.cfg.PeriodUs {
		return rr, fmt.Errorf("core: checkpoint period %d us, configured %d us", s.PeriodUs, c.cfg.PeriodUs)
	}
	infos, err := c.host.ListVMs()
	if err != nil {
		return rr, fmt.Errorf("core: listing VMs for restore: %w", err)
	}
	live := map[string]platform.VMInfo{}
	for _, info := range infos {
		live[info.Name] = info
	}
	rr.CheckpointStep = s.Step
	deferred := map[string]bool{}
	rep := &StepReport{} // scratch for retry accounting during restore reads

	// Adopt checkpointed VMs still present, in checkpoint order so the
	// auction iteration order survives the restart.
	for _, vs := range s.VMs {
		info, ok := live[vs.Name]
		if !ok {
			rr.Dropped = append(rr.Dropped, vs.Name)
			continue
		}
		if err := c.validFreq(info.FreqMHz); err != nil {
			deferred[vs.Name] = true
			continue
		}
		st := &VMState{Info: info, GuaranteeUs: c.guarantee(info.FreqMHz), CreditUs: vs.CreditUs,
			// The breaker resumes mid-window: a quarantined VM stays
			// quarantined for its remaining OpenLeft steps, and a
			// half-open probe keeps its clean-probe streak, so the
			// restored twin re-admits the VM on the same step the dead
			// incarnation would have.
			Breaker: BreakerState{
				State:       BreakerPhase(vs.Breaker),
				FaultStreak: vs.BreakerFaultStreak,
				OpenLeft:    vs.BreakerOpenLeft,
				ProbeClean:  vs.BreakerProbeClean,
			}}
		if c.cfg.CreditCapPeriods > 0 {
			capC := c.cfg.CreditCapPeriods * st.GuaranteeUs * int64(info.VCPUs)
			if st.CreditUs > capC {
				st.CreditUs = capC
			}
		}
		ok = true
		// A VM checkpointed mid-quarantine is adopted without touching
		// the host at all: its breaker is open, so the dead incarnation
		// was not reading it either — and its reads are likely still
		// failing, which must not defer the adoption. The stale usage
		// baseline is safe: the first probe read after the quarantine
		// computes a multi-period delta and clamps it, exactly as the
		// dead incarnation would have.
		quarantined := vs.Breaker == int(BreakerOpen)
		for j := 0; j < info.VCPUs; j++ {
			var v *VCPUState
			var adopted bool
			var err error
			if j < len(vs.VCPUs) {
				if quarantined {
					v = c.snapshotVCPU(vs.Name, vs.VCPUs[j])
				} else {
					v, adopted, err = c.restoreVCPU(rep, vs.Name, vs.VCPUs[j])
				}
			} else {
				// The VM grew while the controller was down.
				v, err = c.newVCPUState(rep, st, vs.Name, j)
			}
			if err != nil {
				ok = false
				break
			}
			if adopted {
				rr.AdoptedQuotas++
			}
			st.VCPUs = append(st.VCPUs, v)
		}
		if !ok {
			deferred[vs.Name] = true
			continue
		}
		c.vms[vs.Name] = st
		c.order = append(c.order, vs.Name)
		rr.Adopted = append(rr.Adopted, vs.Name)
	}

	// Cold-start VMs that arrived while the controller was down.
	for _, info := range infos {
		if _, ok := c.vms[info.Name]; ok || deferred[info.Name] {
			continue
		}
		if err := c.validFreq(info.FreqMHz); err != nil {
			deferred[info.Name] = true
			continue
		}
		st := &VMState{Info: info, GuaranteeUs: c.guarantee(info.FreqMHz)}
		ok := true
		for j := 0; j < info.VCPUs; j++ {
			v, err := c.newVCPUState(rep, st, info.Name, j)
			if err != nil {
				ok = false
				break
			}
			if c.adoptQuota(v) {
				rr.AdoptedQuotas++
			}
			st.VCPUs = append(st.VCPUs, v)
		}
		if !ok {
			deferred[info.Name] = true
			continue
		}
		c.vms[info.Name] = st
		c.order = append(c.order, info.Name)
		rr.ColdStarted = append(rr.ColdStarted, info.Name)
	}

	for name := range deferred {
		rr.Deferred = append(rr.Deferred, name)
	}
	c.steps = s.Step
	return rr, nil
}

// RestoreFromStore loads, decodes and restores the last checkpoint from
// st, then attaches st for future checkpoints. A missing checkpoint is
// reported as platform.ErrNoCheckpoint so callers can cold-start instead.
func (c *Controller) RestoreFromStore(st platform.Store) (RestoreReport, error) {
	data, err := st.Load()
	if err != nil {
		return RestoreReport{}, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return RestoreReport{}, err
	}
	rr, err := c.Restore(snap)
	if err != nil {
		return rr, err
	}
	c.store = st
	return rr, nil
}

// restoreVCPU rebuilds one vCPU from its checkpoint entry. The usage
// baseline is re-read live — the cumulative counter kept advancing (or
// reset with a VM restart) while the controller was down, so the first
// post-restore delta must span live readings only. The live cpu.max
// quota is reconciled: when it differs from what this cap would produce,
// some other writer changed it and the live value wins.
func (c *Controller) restoreVCPU(rep *StepReport, name string, vs VCPUSnapshot) (*VCPUState, bool, error) {
	usage, err := c.retryUsage(rep, name, vs.Index)
	if err != nil {
		return nil, false, err
	}
	v := c.snapshotVCPU(name, vs)
	v.PrevUsageUs = usage
	return v, c.adoptQuota(v), nil
}

// snapshotVCPU rebuilds one vCPU purely from its checkpoint entry, with
// no host interaction — the adoption path for quarantined VMs, and the
// common core of restoreVCPU.
func (c *Controller) snapshotVCPU(name string, vs VCPUSnapshot) *VCPUState {
	v := &VCPUState{
		VM:          name,
		Index:       vs.Index,
		Hist:        NewHistory(c.cfg.HistoryLen),
		PrevUsageUs: vs.PrevUsageUs,
		LastU:       c.clampCycles(vs.ConsumedUs),
		CapUs:       c.clampCycles(vs.CapUs),
		EstUs:       c.clampCycles(vs.EstimateUs),
		TID:         vs.TID,
		LastCore:    vs.LastCore,
		FreqMHz:     vs.VirtFreqMHz,
		Degraded:    vs.Degraded,
		FailedSteps: vs.FailedSteps,
		CleanSteps:  vs.CleanSteps,
		warm:        vs.Warm,
	}
	for _, u := range vs.Hist {
		v.Hist.Push(c.clampCycles(u))
	}
	return v
}

// clampCycles bounds a per-period cycle count to [0, PeriodUs] — a vCPU
// is one thread and can never consume more than one core-period.
func (c *Controller) clampCycles(u int64) int64 {
	if u < 0 {
		return 0
	}
	if u > c.cfg.PeriodUs {
		return c.cfg.PeriodUs
	}
	return u
}

// adoptQuota reconciles a vCPU's cap with the cpu.max quota live in its
// cgroup, via the optional platform.QuotaReader capability. When the live
// quota differs from the quota this cap would produce — a previous
// incarnation with different tuning, or an operator's manual write — the
// live value is adopted as the current cap rather than silently
// overwritten at the next apply. An unlimited cgroup ("max") and any
// read failure leave the cap untouched; reconciliation is best-effort.
func (c *Controller) adoptQuota(v *VCPUState) bool {
	qr, ok := c.host.(platform.QuotaReader)
	if !ok || !c.cfg.ControlEnabled {
		return false
	}
	quota, period, err := qr.ReadMax(v.VM, v.Index)
	if err != nil || period <= 0 || quota == platform.NoQuota || quota < 0 {
		return false
	}
	expected := v.CapUs * c.cfg.CgroupPeriodUs / c.cfg.PeriodUs
	if expected < c.cfg.MinQuotaUs {
		expected = c.cfg.MinQuotaUs
	}
	if quota == expected && period == c.cfg.CgroupPeriodUs {
		return false
	}
	v.CapUs = c.clampCycles(quota * c.cfg.PeriodUs / period)
	return true
}
