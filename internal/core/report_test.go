package core

import (
	"errors"
	"testing"
)

// TestStepReportStringGolden pins the one-line rendering of StepReport.
// Every summary field must be visible — BreakerTrips and Recovered were
// once silently dropped, so these are golden strings, not Contains checks.
func TestStepReportStringGolden(t *testing.T) {
	cases := []struct {
		name string
		rep  StepReport
		want string
	}{
		{
			name: "healthy",
			rep: StepReport{
				Step: 7, VMs: 3, VCPUs: 6, HealthyVCPUs: 6,
			},
			want: "step 7: 3 VMs, 6/6 vCPUs healthy, 0 degraded, 0 faults (+0 added, -0 removed, ~0 reconfigured)",
		},
		{
			name: "churn",
			rep: StepReport{
				Step: 2, VMs: 4, VCPUs: 8, HealthyVCPUs: 8,
				Added: []string{"a"}, Removed: []string{"b", "c"}, Reconfigured: []string{"d"},
			},
			want: "step 2: 4 VMs, 8/8 vCPUs healthy, 0 degraded, 0 faults (+1 added, -2 removed, ~1 reconfigured)",
		},
		{
			name: "retries and recovery",
			rep: StepReport{
				Step: 9, VMs: 2, VCPUs: 4, HealthyVCPUs: 4,
				Retries: 3, Recovered: 2,
			},
			want: "step 9: 2 VMs, 4/4 vCPUs healthy, 0 degraded, 0 faults (+0 added, -0 removed, ~0 reconfigured) [3 retries] [2 vCPUs recovered]",
		},
		{
			name: "breaker trip without open VMs",
			rep: StepReport{
				Step: 5, VMs: 2, VCPUs: 4, HealthyVCPUs: 2, DegradedVCPUs: 2,
				BreakerTrips: 1,
				Faults:       []Fault{{VM: "a", VCPU: -1, Stage: "breaker", Op: "open", Err: errors.New("tripped")}},
			},
			want: "step 5: 2 VMs, 2/4 vCPUs healthy, 2 degraded, 1 faults (+0 added, -0 removed, ~0 reconfigured) [breakers: 0 open, 0 half-open, 1 tripped]",
		},
		{
			name: "quarantined",
			rep: StepReport{
				Step: 6, VMs: 2, VCPUs: 4, HealthyVCPUs: 2, DegradedVCPUs: 2,
				OpenVMs: 1, HalfOpenVMs: 1, BreakerTrips: 2,
			},
			want: "step 6: 2 VMs, 2/4 vCPUs healthy, 2 degraded, 0 faults (+0 added, -0 removed, ~0 reconfigured) [breakers: 1 open, 1 half-open, 2 tripped]",
		},
		{
			name: "panicked overrun",
			rep: StepReport{
				Step: 11, VMs: 1, VCPUs: 2, DegradedVCPUs: 2,
				Panicked: true, Overrun: true, OverrunStage: "monitor", SkippedPeriods: 3,
				FaultsDropped: 70,
			},
			want: "step 11: 1 VMs, 0/2 vCPUs healthy, 2 degraded, 70 faults (+0 added, -0 removed, ~0 reconfigured) [panicked] [overrun after monitor, 3 periods skipped]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.rep.String(); got != tc.want {
				t.Errorf("String() =\n  %q\nwant\n  %q", got, tc.want)
			}
		})
	}
}
