package core

import (
	"fmt"

	"vfreq/internal/platform"
)

// ExportVM captures one VM's controller state as a checkpoint-v3
// VMSnapshot: the credit wallet (Eq. 4), the per-vCPU consumption
// history rings (Eq. 3), caps, estimates and the circuit-breaker phase
// with its counters. It is the unit of state a live migration hands to
// the target node's AdoptVM; the export reads nothing from the host and
// leaves this controller untouched, so it works even while the source
// node is failing.
func (c *Controller) ExportVM(name string) (VMSnapshot, error) {
	st, ok := c.vms[name]
	if !ok {
		return VMSnapshot{}, fmt.Errorf("core: no VM %q to export", name)
	}
	return vmSnapshot(st), nil
}

// AdoptVM threads an exported snapshot into this controller — the
// target-side half of a migration, valid on a running controller (the
// node keeps stepping its other VMs throughout). The VM must already be
// provisioned on this host and not yet tracked. Adoption follows the
// same rules Restore applies per VM:
//
//   - the snapshot is validated against this node's F_MAX and period,
//     and the guarantee is recomputed from the live template (Eq. 2 is
//     node-relative);
//   - the credit wallet, history rings and breaker state carry over
//     verbatim (credit re-clamped under Config.CreditCapPeriods);
//   - usage baselines restart from a live read — the target's cumulative
//     counters start at zero, so the first monitor delta spans target
//     readings only, never a negative or multi-gigacycle artefact;
//   - the vCPUs are fresh structs, so the last-applied quota cache is
//     invalid and the first Apply writes cpu.max through to the target
//     cgroups;
//   - a quarantined VM (open breaker) is adopted without touching the
//     host at all and stays quarantined for its remaining OpenLeft
//     steps; its zeroed baseline makes the first half-open probe compute
//     a clamped full-period delta, exactly as a counter reset would.
//
// On error the controller is unchanged; the caller can fall back to
// letting the next Step register the VM cold (fresh wallet, no history).
func (c *Controller) AdoptVM(snap VMSnapshot) error {
	if err := validateVMSnapshot(snap, c.node.MaxFreqMHz, c.cfg.PeriodUs); err != nil {
		return err
	}
	if _, ok := c.vms[snap.Name]; ok {
		return fmt.Errorf("core: VM %q already tracked, cannot adopt", snap.Name)
	}
	infos, err := c.host.ListVMs()
	if err != nil {
		return fmt.Errorf("core: listing VMs for adoption: %w", err)
	}
	var info platform.VMInfo
	found := false
	for _, i := range infos {
		if i.Name == snap.Name {
			info, found = i, true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: VM %q not on this host; provision before adopting", snap.Name)
	}
	if err := c.validFreq(info.FreqMHz); err != nil {
		return err
	}
	st := &VMState{Info: info, GuaranteeUs: c.guarantee(info.FreqMHz), CreditUs: snap.CreditUs,
		Breaker: BreakerState{
			State:       BreakerPhase(snap.Breaker),
			FaultStreak: snap.BreakerFaultStreak,
			OpenLeft:    snap.BreakerOpenLeft,
			ProbeClean:  snap.BreakerProbeClean,
		}}
	if c.cfg.CreditCapPeriods > 0 {
		capC := c.cfg.CreditCapPeriods * st.GuaranteeUs * int64(info.VCPUs)
		if st.CreditUs > capC {
			st.CreditUs = capC
		}
	}
	rep := &StepReport{} // scratch for retry accounting during adoption reads
	quarantined := snap.Breaker == int(BreakerOpen)
	for j := 0; j < info.VCPUs; j++ {
		var v *VCPUState
		var err error
		if j < len(snap.VCPUs) {
			if quarantined {
				v = c.snapshotVCPU(snap.Name, snap.VCPUs[j])
				// Unlike a same-host restore, the source baseline is
				// meaningless here: the target counter starts at zero.
				v.PrevUsageUs = 0
			} else {
				v, _, err = c.restoreVCPU(rep, snap.Name, snap.VCPUs[j])
			}
		} else {
			// The VM grew between export and adoption.
			v, err = c.newVCPUState(rep, st, snap.Name, j)
		}
		if err != nil {
			return fmt.Errorf("core: adopting %s/vcpu%d: %w", snap.Name, j, err)
		}
		st.VCPUs = append(st.VCPUs, v)
	}
	c.vms[snap.Name] = st
	c.order = append(c.order, snap.Name)
	return nil
}

// ForgetVM drops a VM from the controller's bookkeeping without touching
// the host — the source-side epilogue of a migration, called after the
// VM's cgroups were already destroyed on this node, so there is no quota
// left to release (contrast the departure path in syncVMs, which clears
// quotas on cgroup paths that may be reused). It reports whether the VM
// was tracked.
func (c *Controller) ForgetVM(name string) bool {
	if _, ok := c.vms[name]; !ok {
		return false
	}
	delete(c.vms, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return true
}
