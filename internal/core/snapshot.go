package core

import (
	"encoding/json"
	"fmt"
)

// SnapshotVersion is the checkpoint format version written by Snapshot
// and required by DecodeSnapshot. Version 1 was the telemetry-only view
// without history rings; version 2 carried the full round-trippable
// controller state; version 3 adds the per-VM circuit breaker state so
// a kill-and-restore twin quarantines and re-admits VMs on exactly the
// same steps the dead incarnation would have.
const SnapshotVersion = 3

// Snapshot is a JSON-serialisable view of the controller state after a
// Step. Since version 2 it is a complete checkpoint: Restore rebuilds a
// controller from it, so crash recovery resumes with the same credits,
// caps and consumption histories the dead incarnation had.
type Snapshot struct {
	Version          int          `json:"version"`
	Step             int64        `json:"step"`
	Node             string       `json:"node"`
	Cores            int          `json:"cores"`
	MaxFreqMHz       int64        `json:"max_freq_mhz"`
	PeriodUs         int64        `json:"period_us"`
	CapacityUs       int64        `json:"capacity_us"`
	TotalGuaranteeUs int64        `json:"total_guarantee_us"`
	TotalCapUs       int64        `json:"total_cap_us"`
	MarketUs         int64        `json:"market_us"`
	StepMicros       int64        `json:"step_micros"`
	MonitorMicros    int64        `json:"monitor_micros"`
	DegradedVCPUs    int          `json:"degraded_vcpus"`
	Faults           int          `json:"faults"`
	VMs              []VMSnapshot `json:"vms"`
}

// VMSnapshot is one VM's controller state.
type VMSnapshot struct {
	Name        string         `json:"name"`
	FreqMHz     int64          `json:"freq_mhz"`
	GuaranteeUs int64          `json:"guarantee_us"`
	CreditUs    int64          `json:"credit_us"`
	VCPUs       []VCPUSnapshot `json:"vcpus"`

	// The circuit breaker (since version 3): phase as an integer
	// (0 closed, 1 open, 2 half-open) plus its three counters. All
	// omitempty, so a VM with a closed idle breaker — the overwhelming
	// steady state — costs no checkpoint bytes.
	Breaker            int `json:"breaker,omitempty"`
	BreakerFaultStreak int `json:"breaker_fault_streak,omitempty"`
	BreakerOpenLeft    int `json:"breaker_open_left,omitempty"`
	BreakerProbeClean  int `json:"breaker_probe_clean,omitempty"`
}

// VCPUSnapshot is one vCPU's controller state.
type VCPUSnapshot struct {
	Index       int     `json:"index"`
	TID         int     `json:"tid"`
	LastCore    int     `json:"last_core"`
	ConsumedUs  int64   `json:"consumed_us"`
	CapUs       int64   `json:"cap_us"`
	EstimateUs  int64   `json:"estimate_us"`
	VirtFreqMHz float64 `json:"virt_freq_mhz"`
	PrevUsageUs int64   `json:"prev_usage_us"`
	Hist        []int64 `json:"hist,omitempty"`
	Warm        bool    `json:"warm,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	FailedSteps int     `json:"failed_steps,omitempty"`
	CleanSteps  int     `json:"clean_steps,omitempty"`
}

// Snapshot captures the current controller state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Version:          SnapshotVersion,
		Step:             c.steps,
		Node:             c.node.Name,
		Cores:            c.node.Cores,
		MaxFreqMHz:       c.node.MaxFreqMHz,
		PeriodUs:         c.cfg.PeriodUs,
		CapacityUs:       c.CapacityUs(),
		TotalGuaranteeUs: c.TotalGuaranteeUs(),
		MarketUs:         c.market(),
		StepMicros:       c.timings.Total.Microseconds(),
		MonitorMicros:    c.timings.Monitor.Microseconds(),
		DegradedVCPUs:    c.report.DegradedVCPUs,
		Faults:           c.report.FaultCount(),
	}
	for _, name := range c.order {
		vs := vmSnapshot(c.vms[name])
		for _, v := range vs.VCPUs {
			s.TotalCapUs += v.CapUs
		}
		s.VMs = append(s.VMs, vs)
	}
	return s
}

// vmSnapshot captures one VM's controller state — the unit both the
// whole-node Snapshot and the migration-time ExportVM serialise.
func vmSnapshot(st *VMState) VMSnapshot {
	vs := VMSnapshot{
		Name:               st.Info.Name,
		FreqMHz:            st.Info.FreqMHz,
		GuaranteeUs:        st.GuaranteeUs,
		CreditUs:           st.CreditUs,
		Breaker:            int(st.Breaker.State),
		BreakerFaultStreak: st.Breaker.FaultStreak,
		BreakerOpenLeft:    st.Breaker.OpenLeft,
		BreakerProbeClean:  st.Breaker.ProbeClean,
	}
	for _, v := range st.VCPUs {
		// nil (not empty) when there are no samples, so that the
		// omitempty encoding round-trips to an identical value.
		var hist []int64
		for i := 0; i < v.Hist.Len(); i++ {
			hist = append(hist, v.Hist.At(i))
		}
		vs.VCPUs = append(vs.VCPUs, VCPUSnapshot{
			Index:       v.Index,
			TID:         v.TID,
			LastCore:    v.LastCore,
			ConsumedUs:  v.LastU,
			CapUs:       v.CapUs,
			EstimateUs:  v.EstUs,
			VirtFreqMHz: v.FreqMHz,
			PrevUsageUs: v.PrevUsageUs,
			Hist:        hist,
			Warm:        v.warm,
			Degraded:    v.Degraded,
			FailedSteps: v.FailedSteps,
			CleanSteps:  v.CleanSteps,
		})
	}
	return vs
}

// JSON renders the snapshot.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// DecodeSnapshot parses and validates a checkpoint. It never panics on
// malformed input: any structural or semantic problem is returned as an
// error, so a corrupted checkpoint degrades a restart into a cold start
// instead of crashing the recovering controller.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if s.Version != SnapshotVersion {
		return Snapshot{}, fmt.Errorf("core: checkpoint version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Step < 0 {
		return Snapshot{}, fmt.Errorf("core: checkpoint step %d is negative", s.Step)
	}
	if s.Cores <= 0 || s.MaxFreqMHz <= 0 {
		return Snapshot{}, fmt.Errorf("core: checkpoint node shape %d cores @ %d MHz invalid",
			s.Cores, s.MaxFreqMHz)
	}
	if s.PeriodUs <= 0 {
		return Snapshot{}, fmt.Errorf("core: checkpoint period %d invalid", s.PeriodUs)
	}
	seen := map[string]bool{}
	for i, vm := range s.VMs {
		if vm.Name == "" {
			return Snapshot{}, fmt.Errorf("core: checkpoint VM %d has no name", i)
		}
		if seen[vm.Name] {
			return Snapshot{}, fmt.Errorf("core: checkpoint VM %q duplicated", vm.Name)
		}
		seen[vm.Name] = true
		if err := validateVMSnapshot(vm, s.MaxFreqMHz, s.PeriodUs); err != nil {
			return Snapshot{}, err
		}
	}
	return s, nil
}

// validateVMSnapshot checks one VM entry's semantic invariants against a
// node shape (F_MAX, control period) — shared by DecodeSnapshot for
// whole checkpoints and by AdoptVM for the single-VM snapshots a
// migration carries. It never panics on malformed input.
func validateVMSnapshot(vm VMSnapshot, maxFreqMHz, periodUs int64) error {
	if vm.Name == "" {
		return fmt.Errorf("core: checkpoint VM has no name")
	}
	if vm.FreqMHz <= 0 || vm.FreqMHz > maxFreqMHz {
		return fmt.Errorf("core: checkpoint VM %q frequency %d MHz outside (0, %d]",
			vm.Name, vm.FreqMHz, maxFreqMHz)
	}
	if vm.GuaranteeUs < 0 || vm.GuaranteeUs > periodUs {
		return fmt.Errorf("core: checkpoint VM %q guarantee %d outside [0, period]",
			vm.Name, vm.GuaranteeUs)
	}
	if vm.CreditUs < 0 {
		return fmt.Errorf("core: checkpoint VM %q credit %d is negative",
			vm.Name, vm.CreditUs)
	}
	if vm.Breaker < int(BreakerClosed) || vm.Breaker > int(BreakerHalfOpen) {
		return fmt.Errorf("core: checkpoint VM %q breaker phase %d unknown",
			vm.Name, vm.Breaker)
	}
	if vm.BreakerFaultStreak < 0 || vm.BreakerOpenLeft < 0 || vm.BreakerProbeClean < 0 {
		return fmt.Errorf("core: checkpoint VM %q has negative breaker counters",
			vm.Name)
	}
	if vm.Breaker == int(BreakerOpen) && vm.BreakerOpenLeft < 1 {
		return fmt.Errorf("core: checkpoint VM %q breaker open with no quarantine steps left",
			vm.Name)
	}
	for j, v := range vm.VCPUs {
		if v.Index != j {
			return fmt.Errorf("core: checkpoint VM %q vCPU %d has index %d, want positional",
				vm.Name, j, v.Index)
		}
		if v.CapUs < 0 || v.EstimateUs < 0 || v.ConsumedUs < 0 || v.PrevUsageUs < 0 {
			return fmt.Errorf("core: checkpoint %s/vcpu%d has negative accounting",
				vm.Name, v.Index)
		}
		if v.FailedSteps < 0 || v.CleanSteps < 0 {
			return fmt.Errorf("core: checkpoint %s/vcpu%d has negative step counters",
				vm.Name, v.Index)
		}
		for _, u := range v.Hist {
			if u < 0 {
				return fmt.Errorf("core: checkpoint %s/vcpu%d has negative history sample",
					vm.Name, v.Index)
			}
		}
	}
	return nil
}
