package core

import "encoding/json"

// Snapshot is a JSON-serialisable view of the controller state after a
// Step, for telemetry, debugging and operator dashboards.
type Snapshot struct {
	Step             int64        `json:"step"`
	Node             string       `json:"node"`
	Cores            int          `json:"cores"`
	MaxFreqMHz       int64        `json:"max_freq_mhz"`
	CapacityUs       int64        `json:"capacity_us"`
	TotalGuaranteeUs int64        `json:"total_guarantee_us"`
	TotalCapUs       int64        `json:"total_cap_us"`
	MarketUs         int64        `json:"market_us"`
	StepMicros       int64        `json:"step_micros"`
	MonitorMicros    int64        `json:"monitor_micros"`
	DegradedVCPUs    int          `json:"degraded_vcpus"`
	Faults           int          `json:"faults"`
	VMs              []VMSnapshot `json:"vms"`
}

// VMSnapshot is one VM's controller state.
type VMSnapshot struct {
	Name        string         `json:"name"`
	FreqMHz     int64          `json:"freq_mhz"`
	GuaranteeUs int64          `json:"guarantee_us"`
	CreditUs    int64          `json:"credit_us"`
	VCPUs       []VCPUSnapshot `json:"vcpus"`
}

// VCPUSnapshot is one vCPU's controller state.
type VCPUSnapshot struct {
	Index       int     `json:"index"`
	TID         int     `json:"tid"`
	LastCore    int     `json:"last_core"`
	ConsumedUs  int64   `json:"consumed_us"`
	CapUs       int64   `json:"cap_us"`
	EstimateUs  int64   `json:"estimate_us"`
	VirtFreqMHz float64 `json:"virt_freq_mhz"`
	Degraded    bool    `json:"degraded,omitempty"`
	FailedSteps int     `json:"failed_steps,omitempty"`
}

// Snapshot captures the current controller state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Step:             c.steps,
		Node:             c.node.Name,
		Cores:            c.node.Cores,
		MaxFreqMHz:       c.node.MaxFreqMHz,
		CapacityUs:       c.CapacityUs(),
		TotalGuaranteeUs: c.TotalGuaranteeUs(),
		StepMicros:       c.timings.Total.Microseconds(),
		MonitorMicros:    c.timings.Monitor.Microseconds(),
		DegradedVCPUs:    c.report.DegradedVCPUs,
		Faults:           c.report.FaultCount(),
	}
	for _, name := range c.order {
		st := c.vms[name]
		vs := VMSnapshot{
			Name:        st.Info.Name,
			FreqMHz:     st.Info.FreqMHz,
			GuaranteeUs: st.GuaranteeUs,
			CreditUs:    st.CreditUs,
		}
		for _, v := range st.VCPUs {
			vs.VCPUs = append(vs.VCPUs, VCPUSnapshot{
				Index:       v.Index,
				TID:         v.TID,
				LastCore:    v.LastCore,
				ConsumedUs:  v.LastU,
				CapUs:       v.CapUs,
				EstimateUs:  v.EstUs,
				VirtFreqMHz: v.FreqMHz,
				Degraded:    v.Degraded,
				FailedSteps: v.FailedSteps,
			})
			s.TotalCapUs += v.CapUs
		}
		s.VMs = append(s.VMs, vs)
	}
	s.MarketUs = s.CapacityUs - s.TotalCapUs
	if s.MarketUs < 0 {
		s.MarketUs = 0
	}
	return s
}

// JSON renders the snapshot.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
