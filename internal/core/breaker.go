package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrCallBudget marks a host call that succeeded or failed only after
// exceeding Config.CallBudgetUs. It is preallocated so the hot path can
// degrade a slow vCPU without heap-allocating an error, and it is never
// retried: a call site that is slow once is slow again, and retrying it
// is how a stalling cgroupfs drags a Step past its watchdog.
var ErrCallBudget = errors.New("core: host call exceeded its budget")

// callStart begins timing one host call against Config.CallBudgetUs;
// the zero time means the budget is disabled.
func (c *Controller) callStart() time.Time {
	if c.cfg.CallBudgetUs <= 0 {
		return time.Time{}
	}
	return time.Now()
}

// callOver reports whether the call timed by t0 exceeded the budget.
func (c *Controller) callOver(t0 time.Time) bool {
	if t0.IsZero() {
		return false
	}
	return time.Since(t0) > time.Duration(c.cfg.CallBudgetUs)*time.Microsecond
}

// budgeted converts a slow success into ErrCallBudget.
func (c *Controller) budgeted(t0 time.Time, err error) error {
	if err == nil && c.callOver(t0) {
		return ErrCallBudget
	}
	return err
}

// splitmix64 is the SplitMix64 mixer: a stateless hash good enough for
// jitter. Hashing (seed + sequence) instead of sharing a rand.Rand keeps
// the backoff race-free across concurrent monitor workers without a
// lock, and keeps the jitter sequence independent of which worker drew
// which retry.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay computes the sleep before retry attempt a (1-based):
// exponential doubling of RetryBackoffUs capped at RetryBackoffMaxUs,
// jittered uniformly into [base/2, base], then clamped to the remaining
// step deadline budget so backoff never pushes a Step past its
// watchdog. Outside a running Step (controller construction, restore)
// there is no budget and the delay is zero. Exposed separately from the
// sleep for tests.
func (c *Controller) backoffDelay(attempt int) time.Duration {
	base := c.cfg.RetryBackoffUs
	if base <= 0 || attempt < 1 {
		return 0
	}
	max := c.cfg.RetryBackoffMaxUs
	if max <= 0 {
		max = base << 6
	}
	d := base
	if attempt <= 63 {
		d = base << uint(attempt-1)
	}
	if d <= 0 || d > max {
		d = max
	}
	// Jitter into [d/2, d]; the sequence counter makes every draw
	// distinct even when workers retry concurrently.
	half := d / 2
	span := uint64(d - half + 1)
	j := half + int64(splitmix64(uint64(c.cfg.Seed)+c.backoffSeq.Add(1))%span)
	dur := time.Duration(j) * time.Microsecond
	if rem := c.stepBudgetLeft(); dur > rem {
		dur = rem
	}
	return dur
}

// stepBudgetLeft returns how much of the current Step's deadline budget
// remains for sleeping; zero outside a Step.
func (c *Controller) stepBudgetLeft() time.Duration {
	if c.stepBudget <= 0 || c.stepT0.IsZero() {
		return 0
	}
	rem := c.stepBudget - time.Since(c.stepT0)
	if rem < 0 {
		return 0
	}
	return rem
}

// backoffSleep blocks the calling goroutine for the attempt's jittered
// delay. Safe to call from concurrent monitor workers.
func (c *Controller) backoffSleep(attempt int) {
	if d := c.backoffDelay(attempt); d > 0 {
		time.Sleep(d)
	}
}

// BreakerPhase is a per-VM circuit breaker state.
type BreakerPhase int

const (
	// BreakerClosed passes traffic; consecutive faulty Steps are
	// counted toward Config.BreakerThreshold.
	BreakerClosed BreakerPhase = iota
	// BreakerOpen quarantines the VM: every vCPU is treated as
	// degraded and the monitor stage skips its reads entirely.
	BreakerOpen
	// BreakerHalfOpen probes the VM normally; clean probes close the
	// breaker, one faulty probe re-opens it.
	BreakerHalfOpen
)

// String renders the phase for reports and traces.
func (p BreakerPhase) String() string {
	switch p {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// BreakerState is one VM's circuit breaker, exported for inspection and
// checkpointed in Snapshot v3 so kill-and-restore twins stay exact.
type BreakerState struct {
	// State is the current phase.
	State BreakerPhase
	// FaultStreak counts consecutive faulty Steps while closed.
	FaultStreak int
	// OpenLeft counts the remaining quarantine Steps while open.
	OpenLeft int
	// ProbeClean counts consecutive clean probe Steps while half-open.
	ProbeClean int
}

// updateBreaker advances one VM's breaker at the end of a Step, before
// the per-vCPU health accounting: a trip marks every vCPU degraded, and
// the accounting pass must see that.
func (c *Controller) updateBreaker(rep *StepReport, st *VMState) {
	if c.cfg.BreakerThreshold <= 0 {
		return
	}
	faulty := false
	for _, v := range st.VCPUs {
		if v.Degraded {
			faulty = true
			break
		}
	}
	b := &st.Breaker
	switch b.State {
	case BreakerClosed:
		if !faulty {
			b.FaultStreak = 0
			return
		}
		b.FaultStreak++
		if b.FaultStreak >= c.cfg.BreakerThreshold {
			c.tripBreaker(rep, st, fmt.Errorf(
				"core: breaker opened after %d consecutive faulty steps", b.FaultStreak))
		}
	case BreakerOpen:
		b.OpenLeft--
		if b.OpenLeft <= 0 {
			b.State = BreakerHalfOpen
			b.ProbeClean = 0
		}
	case BreakerHalfOpen:
		if faulty {
			c.tripBreaker(rep, st, errors.New("core: breaker re-opened by a faulty probe step"))
			return
		}
		b.ProbeClean++
		need := c.cfg.RecoverySteps
		if need < 1 {
			need = 1
		}
		if b.ProbeClean >= need {
			b.State = BreakerClosed
			b.FaultStreak = 0
			b.ProbeClean = 0
		}
	}
}

// tripBreaker opens a VM's breaker: the quarantine window starts and
// every vCPU degrades (cap held at last-known-good, no credit accrual,
// skipped by monitor and apply) with its last-applied cache dropped —
// the flapping host side may rebuild the cgroups at any point during
// the quarantine.
func (c *Controller) tripBreaker(rep *StepReport, st *VMState, cause error) {
	b := &st.Breaker
	b.State = BreakerOpen
	b.FaultStreak = 0
	b.ProbeClean = 0
	b.OpenLeft = c.cfg.BreakerOpenSteps
	if b.OpenLeft < 1 {
		b.OpenLeft = 1
	}
	rep.BreakerTrips++
	rep.record(Fault{VM: st.Info.Name, VCPU: -1, Stage: "breaker", Op: "open", Err: cause})
	for _, v := range st.VCPUs {
		v.invalidateApplied()
		v.CleanSteps = 0
		if !v.Degraded {
			v.Degraded = true
			v.FailedSteps++
		}
	}
}
