package core

import (
	"strings"
	"testing"

	"vfreq/internal/metrics"
)

// TestArmMetricsRecordsSteps pins the controller → registry wiring:
// after N armed steps the step counter, the per-stage histograms and
// the population gauges must all reflect the run.
func TestArmMetricsRecordsSteps(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := New(newBenchHost(3, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.ArmMetrics(reg)
	const steps = 5
	for i := 0; i < steps; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.met.steps.Value(); got != steps {
		t.Fatalf("steps counter = %d, want %d", got, steps)
	}
	for i, name := range stageNames {
		if got := c.met.stageUs[i].Count(); got != steps {
			t.Fatalf("stage %s histogram count = %d, want %d", name, got, steps)
		}
	}
	if got := c.met.vms.Value(); got != 3 {
		t.Fatalf("vms gauge = %d, want 3", got)
	}
	if got := c.met.vcpus.Value(); got != 6 {
		t.Fatalf("vcpus gauge = %d, want 6", got)
	}

	// The exposition must carry the per-stage series the acceptance
	// criteria name.
	text := reg.Text()
	for _, want := range []string{
		`vfreq_step_stage_us_count{stage="monitor"} 5`,
		`vfreq_step_stage_us_count{stage="apply"} 5`,
		`vfreq_steps_total 5`,
		`# TYPE vfreq_step_stage_us histogram`,
		`vfreq_breaker_trips_total 0`,
		`vfreq_degraded_vcpus 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestArmMetricsCountsFaults drives a degraded step through an armed
// controller and checks the fault/degradation series move.
func TestArmMetricsCountsFaults(t *testing.T) {
	reg := metrics.NewRegistry()
	h := newBenchHost(2, 2)
	cfg := DefaultConfig()
	cfg.BreakerThreshold = 0
	c, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.ArmMetrics(reg)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Shrink the usage table so vCPU reads of the second VM panic-free
	// fail: simplest is to point the VM map at a missing base. Instead,
	// force degradation via a panic-free wrapper: drop one VM's usage
	// entries by renaming it in the host's base map.
	h.base["b01"] = len(h.usage) + 100 // out-of-range ⇒ panic on read
	defer func() { recover() }()       // the controller swallows it; nothing to do
	_ = c.Step()
	if got := c.met.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1 (the out-of-range read panics the monitor stage)", got)
	}
	if got := c.met.degradedSteps.Value(); got == 0 {
		t.Fatal("degraded vCPU-steps counter did not move after a panicked step")
	}
}
