// Package core implements the paper's contribution: a feedback controller
// that enforces per-VM virtual frequencies by driving the cgroup CPU
// bandwidth quotas of every vCPU. One Step of the controller runs the six
// stages of the paper's Fig. 2:
//
//  1. monitor per-vCPU cycle consumption, thread placement and core
//     frequencies;
//  2. estimate the upcoming consumption of each vCPU from a trend over a
//     consumption history (Eq. 3) with increase/decrease triggers;
//  3. enforce the base guarantee C_i (Eq. 2), awarding credits to VMs that
//     under-consume (Eq. 4) and capping at min(estimate, C_i) (Eq. 5);
//  4. auction the unallocated market (Eq. 6) to vCPUs whose estimate
//     exceeds their cap, charging VM credit wallets (Algorithm 1);
//  5. distribute any remaining market cycles freely, proportional to
//     residual demand;
//  6. apply the resulting caps as cgroup cpu.max quotas.
package core

import (
	"fmt"
	"time"
)

// Config holds the controller tuning knobs. The defaults reproduce the
// configuration of the paper's evaluation (Section IV-A1).
type Config struct {
	// PeriodUs is p, the control period in microseconds.
	PeriodUs int64
	// HistoryLen is n, the number of past consumptions kept per vCPU
	// for the trend estimation of Eq. 3.
	HistoryLen int
	// IncreaseTrigger is the consumption fraction of the current cap
	// above which, with a positive trend, the cap is raised.
	// Paper value: 0.95.
	IncreaseTrigger float64
	// IncreaseFactor is the relative cap increase applied when the
	// increase trigger fires: newCap = cap × (1 + IncreaseFactor).
	// Paper value: 1.00 ("100%", i.e. doubling).
	IncreaseFactor float64
	// DecreaseTrigger is the consumption fraction of the current cap
	// below which, with a negative trend, the cap is lowered.
	// Paper value: 0.50.
	DecreaseTrigger float64
	// DecreaseFactor is the relative cap decrease applied when the
	// decrease trigger fires: newCap = cap × (1 − DecreaseFactor).
	// Paper value: 0.05 ("5%").
	DecreaseFactor float64
	// StableMargin is the trend magnitude (as a fraction of the mean
	// consumption) below which the consumption is considered stable.
	StableMargin float64
	// WindowUs is the auction window: the largest number of cycles a
	// single buyer may acquire per auction round, preventing a rich VM
	// from buying the whole market (Algorithm 1).
	WindowUs int64
	// MinQuotaUs is the smallest quota ever applied, so an idle vCPU
	// can always wake up (the kernel rejects quotas below 1 ms).
	MinQuotaUs int64
	// CgroupPeriodUs is the cpu.max period quotas are expressed
	// against (the kernel default of 100 ms).
	CgroupPeriodUs int64
	// CreditCapPeriods bounds a VM's credit wallet to this many
	// periods of its full guarantee; 0 means unbounded.
	CreditCapPeriods int64
	// BurstFraction, when positive, additionally writes a
	// cpu.max.burst budget of BurstFraction × quota for every vCPU, so
	// sub-period demand spikes can borrow bandwidth banked during
	// quiet cgroup periods (an extension over the paper, using the
	// kernel's CFS burst feature).
	BurstFraction float64
	// ControlEnabled distinguishes the paper's execution modes: B
	// (true, full control) and A (false, monitoring only — no quota is
	// ever written).
	ControlEnabled bool
	// HostRetries is the number of extra in-step attempts for a failed
	// host read or write before the affected vCPU is declared degraded
	// for the period (transient /proc and cgroup read races usually
	// succeed on the immediate retry). 0 disables retrying.
	HostRetries int
	// RecoverySteps is the number of consecutive clean Steps after
	// which a previously degraded vCPU's FailedSteps counter resets (a
	// reset is reported as Recovered in the StepReport). 0 behaves like
	// 1: the counter clears on the first clean step.
	RecoverySteps int
	// CheckpointEvery, when positive and a Store is attached (see
	// Controller.AttachStore), persists a full controller checkpoint
	// every this many completed Steps. 0 disables checkpointing.
	CheckpointEvery int64
	// StepDeadlineFrac is the watchdog budget: the fraction of PeriodUs
	// a Step may spend in wall-clock time before it is reported as
	// overrunning (Overrun in the StepReport, with skipped-period
	// accounting). 0 disables the deadline.
	StepDeadlineFrac float64
	// MonitorWorkers bounds the worker pool that fans the per-vCPU
	// monitor reads (cpu.stat, cgroup.threads, /proc/<tid>/stat,
	// scaling_cur_freq) across goroutines. The reads are I/O-bound, not
	// CPU-bound, so parallelising them is what keeps one Step inside the
	// paper's ~5 ms budget as the vCPU count grows. Workers only read;
	// the results are committed sequentially in registration order, so
	// every computed cap, credit and degradation record is identical to
	// the serial stage. 0 means GOMAXPROCS; 1 runs the stage serially
	// (the exact pre-pool behaviour).
	MonitorWorkers int
	// AuctionShards partitions the stage-4 auction (Algorithm 1) by the
	// NUMA node of each buyer's last observed core. Per-shard auctions
	// run concurrently on a worker pool sized like MonitorWorkers, each
	// against a per-shard ledger (a demand-proportional slice of the
	// market and of every VM wallet), then a final sequential
	// redistribution round sells the merged leftovers to still-hungry
	// buyers across nodes. 1 (the default) runs the exact serial
	// Algorithm 1; 0 means one shard per NUMA node discovered from the
	// host topology (serial when the host has one node or none
	// discoverable); N > 1 forces exactly N shards. Sharding preserves
	// the conservation invariants (total sold ≤ market, wallet debits =
	// cycles bought, caps within [Eq. 5 base, estimate]) but may order
	// buyers differently than the serial pass, so per-vCPU caps can
	// differ at N > 1 while the aggregates match.
	AuctionShards int
	// CallBudgetUs is the per-host-call deadline in microseconds: a
	// host read or write that succeeds but takes longer than this is
	// treated as failed (the affected vCPU degrades, holding its
	// last-known-good cap) and is never retried — retrying a slow call
	// is how a stalling cgroupfs drags a whole Step past the watchdog.
	// 0 disables the budget.
	CallBudgetUs int64
	// RetryBackoffUs, when positive, sleeps before every in-step retry
	// (Config.HostRetries): the k-th retry waits an exponentially grown
	// base of RetryBackoffUs × 2^(k−1) microseconds, jittered uniformly
	// into [base/2, base] (seeded from Config.Seed, so fault runs are
	// reproducible), and clamped to the remaining step deadline budget
	// so backoff can never push a Step past its watchdog. 0 retries
	// immediately (the pre-backoff behaviour).
	RetryBackoffUs int64
	// RetryBackoffMaxUs caps the exponential backoff base. 0 defaults
	// to RetryBackoffUs × 64 (six doublings).
	RetryBackoffMaxUs int64
	// BreakerThreshold, when positive, arms a per-VM circuit breaker: a
	// VM with any degraded vCPU in BreakerThreshold consecutive Steps
	// trips its breaker open. An open breaker quarantines the VM — all
	// its vCPUs are treated as degraded (caps held, skipped by the
	// monitor and apply stages, no credit accrual) for
	// BreakerOpenSteps, after which the breaker goes half-open and the
	// VM is probed normally; Config.RecoverySteps consecutive clean
	// probe Steps close the breaker, one faulty probe re-opens it.
	// Quarantine is what stops a flapping VM (a vCPU thread dying and
	// respawning, a cgroup being rebuilt in a loop) from burning the
	// whole step budget on doomed reads and retries. 0 disables the
	// breaker entirely.
	BreakerThreshold int
	// BreakerOpenSteps is how many Steps a tripped breaker holds the VM
	// quarantined before probing. Values below 1 behave like 1.
	BreakerOpenSteps int
	// Seed drives the controller's internal jitter randomness (the
	// retry backoff). It does not influence any allocation decision:
	// two controllers with different seeds compute identical caps,
	// credits and reports — only retry timing differs.
	Seed int64
	// EstimateShards partitions stages 2–3 (estimation and base
	// enforcement) over the same NUMA placement partition the stage-4
	// auction uses: the per-vCPU passes run concurrently on the shard
	// worker pool, with per-shard credit and market accumulators merged
	// at a single barrier before the auction. Unlike auction sharding,
	// the sharded stages are bit-identical to the serial pass at ANY
	// shard count — estimation is per-vCPU pure and credit accrual is a
	// commutative per-VM sum clamped once after the merge. 0 (the
	// default) follows the effective AuctionShards value, so one knob
	// sizes the whole three-stage partition; 1 forces the serial pass;
	// N > 1 forces N shards.
	EstimateShards int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		PeriodUs:         1_000_000,
		HistoryLen:       5,
		IncreaseTrigger:  0.95,
		IncreaseFactor:   1.00,
		DecreaseTrigger:  0.50,
		DecreaseFactor:   0.05,
		StableMargin:     0.02,
		WindowUs:         10_000,
		MinQuotaUs:       1_000,
		CgroupPeriodUs:   100_000,
		CreditCapPeriods: 60,
		ControlEnabled:   true,
		HostRetries:      1,
		RecoverySteps:    1,
		StepDeadlineFrac: 0.5,
		MonitorWorkers:   0, // auto: GOMAXPROCS
		AuctionShards:    1, // serial Algorithm 1 (0 = shard per NUMA node)
		EstimateShards:   0, // follow AuctionShards: one partition, three stages
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.PeriodUs <= 0 {
		return fmt.Errorf("core: period must be positive")
	}
	if c.HistoryLen < 2 {
		return fmt.Errorf("core: history length must be at least 2")
	}
	if c.IncreaseTrigger <= 0 || c.IncreaseTrigger > 1 {
		return fmt.Errorf("core: increase trigger %g outside (0, 1]", c.IncreaseTrigger)
	}
	if c.IncreaseFactor <= 0 {
		return fmt.Errorf("core: increase factor must be positive")
	}
	if c.DecreaseTrigger < 0 || c.DecreaseTrigger >= 1 {
		return fmt.Errorf("core: decrease trigger %g outside [0, 1)", c.DecreaseTrigger)
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		return fmt.Errorf("core: decrease factor %g outside (0, 1)", c.DecreaseFactor)
	}
	if c.StableMargin < 0 {
		return fmt.Errorf("core: stable margin must be non-negative")
	}
	if c.WindowUs <= 0 {
		return fmt.Errorf("core: auction window must be positive")
	}
	if c.MinQuotaUs <= 0 || c.MinQuotaUs > c.PeriodUs {
		return fmt.Errorf("core: invalid minimum quota %d", c.MinQuotaUs)
	}
	if c.CgroupPeriodUs <= 0 || c.CgroupPeriodUs > c.PeriodUs {
		return fmt.Errorf("core: cgroup period %d outside (0, period]", c.CgroupPeriodUs)
	}
	if c.CreditCapPeriods < 0 {
		return fmt.Errorf("core: credit cap must be non-negative")
	}
	if c.BurstFraction < 0 || c.BurstFraction > 1 {
		return fmt.Errorf("core: burst fraction %g outside [0, 1]", c.BurstFraction)
	}
	if c.HostRetries < 0 || c.HostRetries > 16 {
		return fmt.Errorf("core: host retries %d outside [0, 16]", c.HostRetries)
	}
	if c.RecoverySteps < 0 {
		return fmt.Errorf("core: recovery steps must be non-negative")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: checkpoint interval must be non-negative")
	}
	if c.StepDeadlineFrac < 0 || c.StepDeadlineFrac > 1 {
		return fmt.Errorf("core: step deadline fraction %g outside [0, 1]", c.StepDeadlineFrac)
	}
	if c.MonitorWorkers < 0 || c.MonitorWorkers > 4096 {
		return fmt.Errorf("core: monitor workers %d outside [0, 4096]", c.MonitorWorkers)
	}
	if c.AuctionShards < 0 || c.AuctionShards > 4096 {
		return fmt.Errorf("core: auction shards %d outside [0, 4096]", c.AuctionShards)
	}
	if c.EstimateShards < 0 || c.EstimateShards > 4096 {
		return fmt.Errorf("core: estimate shards %d outside [0, 4096]", c.EstimateShards)
	}
	if c.CallBudgetUs < 0 {
		return fmt.Errorf("core: call budget must be non-negative")
	}
	if c.RetryBackoffUs < 0 {
		return fmt.Errorf("core: retry backoff must be non-negative")
	}
	if c.RetryBackoffMaxUs < 0 {
		return fmt.Errorf("core: retry backoff cap must be non-negative")
	}
	if c.RetryBackoffMaxUs > 0 && c.RetryBackoffUs > c.RetryBackoffMaxUs {
		return fmt.Errorf("core: retry backoff base %d above its cap %d",
			c.RetryBackoffUs, c.RetryBackoffMaxUs)
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("core: breaker threshold must be non-negative")
	}
	if c.BreakerOpenSteps < 0 {
		return fmt.Errorf("core: breaker open steps must be non-negative")
	}
	return nil
}

// StageTimings records the wall-clock cost of each stage of one Step,
// mirroring the paper's overhead measurement (5 ms total, 4 ms of which
// monitoring, on chetemi).
type StageTimings struct {
	Monitor    time.Duration
	Estimate   time.Duration
	Enforce    time.Duration
	Auction    time.Duration
	Distribute time.Duration
	Apply      time.Duration
	Total      time.Duration
}
