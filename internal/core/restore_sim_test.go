package core_test

import (
	"errors"
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// simRig is one simulated node with a checkpointing controller on it.
type simRig struct {
	mgr   *vm.Manager
	ctrl  *core.Controller
	store *platform.MemStore
}

func newSimRig(t *testing.T, cfg core.Config) *simRig {
	t.Helper()
	mgr := testNode(t, 4)
	if _, err := mgr.Provision("web", vm.Small(), []workload.Source{
		&workload.Bursty{PeriodUs: 3_000_000, Duty: 0.4, High: 1, Low: 0.1},
		&workload.Bursty{PeriodUs: 5_000_000, Duty: 0.6, High: 0.9, Low: 0.2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("batch", vm.Medium(), busySources(4)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(platform.NewSim(mgr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := &platform.MemStore{FS: mgr.Machine().FS, Path: "/vfreq-ckpt.json"}
	ctrl.AttachStore(store)
	return &simRig{mgr: mgr, ctrl: ctrl, store: store}
}

func (r *simRig) step(t *testing.T) {
	t.Helper()
	r.mgr.Machine().Advance(r.ctrl.Config().PeriodUs)
	if err := r.ctrl.Step(); err != nil {
		t.Fatal(err)
	}
}

// The PR's acceptance test: kill the controller mid-run, restore a fresh
// one from the checkpoint, and compare against an identical uninterrupted
// twin. The sim is deterministic, so the restored controller must track
// the twin exactly — same step counter, credits and per-vCPU caps.
func TestKillAndRestoreConvergesWithUninterruptedTwin(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckpointEvery = 1

	ref := newSimRig(t, cfg) // never interrupted
	vic := newSimRig(t, cfg) // killed at step 10, restored, resumed

	for i := 0; i < 10; i++ {
		ref.step(t)
		vic.step(t)
	}

	// Kill: drop the controller on the floor. Recover: build a fresh one
	// on the same (still running) node and restore the last checkpoint.
	reborn, err := core.New(platform.NewSim(vic.mgr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := reborn.RestoreFromStore(vic.store)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CheckpointStep != 10 || len(rr.Adopted) != 2 || len(rr.ColdStarted)+len(rr.Dropped)+len(rr.Deferred) != 0 {
		t.Fatalf("restore report: %s", rr.String())
	}
	if reborn.Steps() != 10 {
		t.Fatalf("restored step counter = %d, want 10", reborn.Steps())
	}
	vic.ctrl = reborn

	for i := 0; i < 10; i++ {
		ref.step(t)
		vic.step(t)
	}

	if got, want := vic.ctrl.Steps(), ref.ctrl.Steps(); got != want {
		t.Fatalf("step counters diverged: %d vs %d", got, want)
	}
	for _, name := range []string{"web", "batch"} {
		rv, vv := ref.ctrl.VM(name), vic.ctrl.VM(name)
		if rv == nil || vv == nil {
			t.Fatalf("VM %s missing after restore", name)
		}
		if rv.CreditUs != vv.CreditUs {
			t.Fatalf("%s credit diverged after restore: %d (ref) vs %d (restored)",
				name, rv.CreditUs, vv.CreditUs)
		}
		for j := range rv.VCPUs {
			if rv.VCPUs[j].CapUs != vv.VCPUs[j].CapUs {
				t.Fatalf("%s/vcpu%d cap diverged after restore: %d (ref) vs %d (restored)",
					name, j, rv.VCPUs[j].CapUs, vv.VCPUs[j].CapUs)
			}
		}
	}
	// The restored incarnation keeps checkpointing through the same store.
	if !vic.ctrl.LastReport().Checkpointed {
		t.Fatal("restored controller stopped checkpointing")
	}
}

// A checkpoint written through the memfs store survives a write fault:
// the temp-then-rename protocol leaves the previous checkpoint intact.
func TestCheckpointWriteFaultKeepsPreviousCheckpoint(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CheckpointEvery = 1
	rig := newSimRig(t, cfg)

	rig.step(t)
	good, err := rig.store.Load()
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected checkpoint write failure")
	rig.mgr.Machine().FailWrites("vfreq-ckpt.json.tmp", boom, -1)
	rig.step(t)
	rep := rig.ctrl.LastReport()
	if rep.Checkpointed {
		t.Fatal("Checkpointed set despite write fault")
	}
	if rep.FaultCount() == 0 || rep.Faults[0].Stage != "checkpoint" {
		t.Fatalf("checkpoint fault not recorded: %s", rep.String())
	}
	after, err := rig.store.Load()
	if err != nil {
		t.Fatalf("previous checkpoint lost: %v", err)
	}
	if string(after) != string(good) {
		t.Fatal("failed save corrupted the previous checkpoint")
	}

	// Fault cleared: checkpointing resumes and overwrites atomically.
	rig.mgr.Machine().ClearFileFaults()
	rig.step(t)
	if !rig.ctrl.LastReport().Checkpointed {
		t.Fatal("checkpointing did not resume after fault cleared")
	}
	latest, err := rig.store.Load()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.DecodeSnapshot(latest)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 3 {
		t.Fatalf("latest checkpoint step = %d, want 3", snap.Step)
	}
}
