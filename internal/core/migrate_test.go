package core

import (
	"reflect"
	"strings"
	"testing"
)

// stripBaselines zeroes the fields a migration documents as not carried:
// the usage baseline restarts with the target's counters and the thread
// pin is re-read live. Everything else must round-trip bit-identically.
func stripBaselines(vs VMSnapshot) VMSnapshot {
	out := vs
	out.VCPUs = append([]VCPUSnapshot(nil), vs.VCPUs...)
	for i := range out.VCPUs {
		out.VCPUs[i].PrevUsageUs = 0
	}
	return out
}

// Export on the source, adopt on a fresh host: the re-export from the
// target must be bit-identical modulo the documented counter reset.
func TestExportAdoptRoundTrip(t *testing.T) {
	src := newFakeHost()
	src.addVM("a", 2, 1200)
	cs := mustController(t, src, DefaultConfig())
	warmUp(t, cs, src, 5, 300_000) // under the 500 µs guarantee: credit accrues

	snap, err := cs.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.CreditUs <= 0 {
		t.Fatalf("source earned no credit (%d); the round trip would prove nothing", snap.CreditUs)
	}
	if len(snap.VCPUs) != 2 || snap.VCPUs[0].Hist == nil {
		t.Fatalf("export carried no history: %+v", snap)
	}

	tgt := newFakeHost()
	tgt.addVM("b", 1, 500) // the target controller is live and busy
	ct := mustController(t, tgt, DefaultConfig())
	warmUp(t, ct, tgt, 2, 100_000)
	tgt.addVM("a", 2, 1200) // "provisioned": fresh usage counters at 0
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}

	st := ct.VM("a")
	if st == nil {
		t.Fatal("target does not track the adopted VM")
	}
	if st.CreditUs != snap.CreditUs {
		t.Fatalf("credit %d after adoption, exported %d", st.CreditUs, snap.CreditUs)
	}
	for _, v := range st.VCPUs {
		if v.PrevUsageUs != 0 {
			t.Fatalf("vcpu%d baseline %d, want 0 (target counters restart)", v.Index, v.PrevUsageUs)
		}
	}
	re, err := ct.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripBaselines(re), stripBaselines(snap); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-export diverged:\n got %+v\nwant %+v", got, want)
	}
}

// The documented counter reset: the first post-adoption monitor delta
// spans target readings only — no negative value, no multi-period
// artefact from the source's much larger cumulative counter.
func TestAdoptFreshCounterFirstDelta(t *testing.T) {
	src := newFakeHost()
	src.addVM("a", 1, 1200)
	cs := mustController(t, src, DefaultConfig())
	warmUp(t, cs, src, 8, 450_000) // source counter ends at 3.6 s

	snap, err := cs.ExportVM("a")
	if err != nil {
		t.Fatal(err)
	}
	tgt := newFakeHost()
	tgt.addVM("a", 1, 1200)
	ct := mustController(t, tgt, DefaultConfig())
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}
	tgt.consume("a", 0, 123_456)
	if err := ct.Step(); err != nil {
		t.Fatal(err)
	}
	v := ct.VM("a").VCPUs[0]
	if v.LastU != 123_456 {
		t.Fatalf("first post-adoption delta %d, want 123456", v.LastU)
	}
	if v.Degraded {
		t.Fatal("adopted vCPU degraded on a clean first step")
	}
}

// A degraded vCPU carries its failure counters across the move, so the
// recovery streak does not restart from zero on the target.
func TestAdoptDegradedVCPUCarryover(t *testing.T) {
	snap := VMSnapshot{
		Name: "a", FreqMHz: 1200, GuaranteeUs: 500_000, CreditUs: 40_000,
		VCPUs: []VCPUSnapshot{{
			Index: 0, ConsumedUs: 200_000, CapUs: 500_000, EstimateUs: 300_000,
			Hist: []int64{200_000, 210_000}, Degraded: true, FailedSteps: 3,
		}},
	}
	tgt := newFakeHost()
	tgt.addVM("a", 1, 1200)
	ct := mustController(t, tgt, DefaultConfig())
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}
	v := ct.VM("a").VCPUs[0]
	if !v.Degraded || v.FailedSteps != 3 {
		t.Fatalf("degradation not carried: Degraded=%v FailedSteps=%d", v.Degraded, v.FailedSteps)
	}
}

// A quarantined VM (open breaker) is adopted with no host reads, stays
// quarantined for its remaining window, and resumes the open→half-open
// walk on the target exactly where the source left it.
func TestAdoptQuarantinedStaysQuarantined(t *testing.T) {
	snap := VMSnapshot{
		Name: "a", FreqMHz: 1200, GuaranteeUs: 500_000, CreditUs: 10_000,
		Breaker: int(BreakerOpen), BreakerFaultStreak: 3, BreakerOpenLeft: 2,
		VCPUs: []VCPUSnapshot{{
			Index: 0, ConsumedUs: 100_000, CapUs: 500_000, EstimateUs: 100_000,
			PrevUsageUs: 7_000_000, // stale source baseline: must be discarded
		}},
	}
	cfg := DefaultConfig()
	cfg.BreakerThreshold = 3
	cfg.BreakerOpenSteps = 4
	tgt := newFakeHost()
	tgt.addVM("a", 1, 1200)
	ct := mustController(t, tgt, cfg)
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}
	st := ct.VM("a")
	if st.Breaker.State != BreakerOpen || st.Breaker.OpenLeft != 2 {
		t.Fatalf("breaker not carried: %+v", st.Breaker)
	}
	if st.VCPUs[0].PrevUsageUs != 0 {
		t.Fatalf("quarantined baseline %d, want 0 (target counters restart)", st.VCPUs[0].PrevUsageUs)
	}
	// Two quarantine steps, then the half-open probe on the target.
	for i := 0; i < 2; i++ {
		if err := ct.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ct.VM("a").Breaker.State; got != BreakerHalfOpen {
		t.Fatalf("breaker %v after the open window elapsed, want half-open", got)
	}
}

// A half-open probe in flight keeps its clean streak, so the target
// re-admits the VM on the same step the source would have.
func TestAdoptHalfOpenProbeContinues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BreakerThreshold = 3
	cfg.BreakerOpenSteps = 4
	cfg.RecoverySteps = 2
	snap := VMSnapshot{
		Name: "a", FreqMHz: 1200, GuaranteeUs: 500_000,
		Breaker: int(BreakerHalfOpen), BreakerProbeClean: 1,
		VCPUs: []VCPUSnapshot{{
			Index: 0, ConsumedUs: 100_000, CapUs: 500_000, EstimateUs: 100_000,
			Hist: []int64{100_000},
		}},
	}
	tgt := newFakeHost()
	tgt.addVM("a", 1, 1200)
	ct := mustController(t, tgt, cfg)
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}
	if st := ct.VM("a"); st.Breaker.State != BreakerHalfOpen || st.Breaker.ProbeClean != 1 {
		t.Fatalf("probe state not carried: %+v", st.Breaker)
	}
	// One clean probe completes the RecoverySteps=2 streak.
	tgt.consume("a", 0, 100_000)
	if err := ct.Step(); err != nil {
		t.Fatal(err)
	}
	if got := ct.VM("a").Breaker.State; got != BreakerClosed {
		t.Fatalf("breaker %v after the completing probe, want closed", got)
	}
}

func TestAdoptVMValidation(t *testing.T) {
	tgt := newFakeHost()
	tgt.addVM("a", 1, 1200)
	ct := mustController(t, tgt, DefaultConfig())
	ok := VMSnapshot{Name: "a", FreqMHz: 1200, GuaranteeUs: 500_000,
		VCPUs: []VCPUSnapshot{{Index: 0}}}

	bad := ok
	bad.FreqMHz = 0
	if err := ct.AdoptVM(bad); err == nil {
		t.Fatal("zero-frequency snapshot adopted")
	}
	bad = ok
	bad.CreditUs = -1
	if err := ct.AdoptVM(bad); err == nil {
		t.Fatal("negative credit adopted")
	}
	ghost := ok
	ghost.Name = "ghost"
	if err := ct.AdoptVM(ghost); err == nil || !strings.Contains(err.Error(), "not on this host") {
		t.Fatalf("adopting an unprovisioned VM: %v", err)
	}
	if err := ct.AdoptVM(ok); err != nil {
		t.Fatal(err)
	}
	if err := ct.AdoptVM(ok); err == nil {
		t.Fatal("double adoption accepted")
	}
}

// An oversized wallet is re-clamped under the target's credit cap, and a
// VM that grew between export and adoption gets fresh vCPUs for the new
// indexes.
func TestAdoptClampsCreditAndGrows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CreditCapPeriods = 2
	tgt := newFakeHost()
	tgt.addVM("a", 2, 1200) // grew: the snapshot knows one vCPU
	ct := mustController(t, tgt, cfg)
	snap := VMSnapshot{Name: "a", FreqMHz: 1200, GuaranteeUs: 500_000,
		CreditUs: 1 << 40,
		VCPUs:    []VCPUSnapshot{{Index: 0, ConsumedUs: 100_000, Hist: []int64{100_000}}}}
	if err := ct.AdoptVM(snap); err != nil {
		t.Fatal(err)
	}
	st := ct.VM("a")
	wantCap := cfg.CreditCapPeriods * 500_000 * 2
	if st.CreditUs != wantCap {
		t.Fatalf("credit %d, want clamped to %d", st.CreditUs, wantCap)
	}
	if len(st.VCPUs) != 2 {
		t.Fatalf("tracked %d vCPUs, want 2", len(st.VCPUs))
	}
	if st.VCPUs[0].Hist.Len() != 1 || st.VCPUs[1].Hist.Len() != 0 {
		t.Fatal("history mixed up between carried and grown vCPUs")
	}
}

func TestForgetVM(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 1, 1200)
	h.addVM("b", 1, 1200)
	c := mustController(t, h, DefaultConfig())
	warmUp(t, c, h, 1, 100_000)
	if !c.ForgetVM("a") {
		t.Fatal("tracked VM not forgotten")
	}
	if c.ForgetVM("a") {
		t.Fatal("double forget reported success")
	}
	if c.VM("a") != nil {
		t.Fatal("forgotten VM still tracked")
	}
	if len(h.cleared) != 0 {
		t.Fatalf("ForgetVM touched the host: cleared %v", h.cleared)
	}
	// The survivor is unaffected and the controller keeps stepping.
	if c.VM("b") == nil {
		t.Fatal("unrelated VM lost")
	}
	// The host still lists "a" (core-level forget without a manager
	// destroy), so the next sync re-registers it cold — fresh wallet.
	warmUp(t, c, h, 1, 100_000)
	if st := c.VM("a"); st == nil || st.CreditUs != 0 {
		t.Fatalf("re-registration not cold: %+v", st)
	}
}
