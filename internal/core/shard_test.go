package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vfreq/internal/platform"
)

// topologyHost is a fakeHost exposing a scripted NUMA topology through
// the optional platform.Topology capability.
type topologyHost struct {
	*fakeHost
	nodes []int // core → NUMA node
}

func (t *topologyHost) CoreNodes() ([]int, error) { return t.nodes, nil }

var _ platform.Topology = (*topologyHost)(nil)

// TestTopologyDiscovery checks that New picks the NUMA layout up from
// the optional capability and that shardOf folds cores into it.
func TestTopologyDiscovery(t *testing.T) {
	h := &topologyHost{fakeHost: newFakeHost(), nodes: []int{0, 0, 1, 1}}
	ctrl := mustController(t, h, DefaultConfig())
	if ctrl.NUMANodes() != 2 {
		t.Fatalf("NUMANodes = %d, want 2", ctrl.NUMANodes())
	}
	cfg := DefaultConfig()
	cfg.AuctionShards = 0 // auto: one shard per node
	ctrl = mustController(t, h, cfg)
	if got := ctrl.effectiveShards(); got != 2 {
		t.Fatalf("effectiveShards = %d, want 2", got)
	}
	for core, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 1, -1: 0} {
		v := &VCPUState{LastCore: core}
		if got := ctrl.shardOf(v, 2); got != want {
			t.Fatalf("shardOf(core %d) = %d, want %d", core, got, want)
		}
	}
	// A core beyond the topology slice (hotplug raced the discovery)
	// falls back to shard 0 instead of indexing out of bounds.
	if got := ctrl.shardOf(&VCPUState{LastCore: 99}, 2); got != 0 {
		t.Fatalf("shardOf(core 99) = %d, want 0", got)
	}
	// Hosts without the capability stay single-node.
	plain := mustController(t, newFakeHost(), DefaultConfig())
	if plain.NUMANodes() != 1 {
		t.Fatalf("NUMANodes without topology = %d, want 1", plain.NUMANodes())
	}
}

// scriptedShardTwin is scriptedTwin with an auction-shard override and an
// optional scripted topology.
func scriptedShardTwin(t *testing.T, shards int, nodes []int) (*Controller, *faultScriptHost) {
	t.Helper()
	fh := newFakeHost()
	fh.node.Cores = 8
	for i := 0; i < 6; i++ {
		fh.addVM(fmt.Sprintf("vm%d", i), 2, 1200)
	}
	h := &faultScriptHost{fakeHost: fh, fails: map[string]bool{}}
	h.fails["5:vm2/0"] = true
	h.fails["6:vm2/0"] = true
	h.fails["9:vm4/1"] = true
	cfg := DefaultConfig()
	cfg.AuctionShards = shards
	cfg.BurstFraction = 0.2
	var ctrl *Controller
	if nodes != nil {
		// Layer the scripted topology over the scripted faults, so the
		// twins differ only in sharding.
		ctrl = mustController(t, &topologyFaultHost{faultScriptHost: h, nodes: nodes}, cfg)
	} else {
		ctrl = mustController(t, h, cfg)
	}
	return ctrl, h
}

// topologyFaultHost is a faultScriptHost with a scripted NUMA topology.
type topologyFaultHost struct {
	*faultScriptHost
	nodes []int
}

func (t *topologyFaultHost) CoreNodes() ([]int, error) { return t.nodes, nil }

// TestAuctionShardsOneBitIdentical is the acceptance regression: a
// controller with AuctionShards = 1 must produce bit-identical reports,
// checkpoints and quotas to the serial default, under scripted faults.
func TestAuctionShardsOneBitIdentical(t *testing.T) {
	serial, hs := scriptedTwin(t, 1) // default config: serial auction
	sharded, hp := scriptedShardTwin(t, 1, nil)
	compareTwins(t, serial, hs, sharded, hp)
}

// TestAuctionShardedSingleNodeBitIdentical forces the sharded machinery
// (two shards) on a topology where every core sits on node 0: all buyers
// land in one shard holding the full market and full wallets, which must
// reproduce the serial auction bit for bit. This exercises the split,
// ledger, merge and redistribution code rather than the shards<=1
// delegation.
func TestAuctionShardedSingleNodeBitIdentical(t *testing.T) {
	serial, hs := scriptedTwin(t, 1)
	sharded, hp := scriptedShardTwin(t, 2, []int{0, 0, 0, 0, 0, 0, 0, 0})
	compareTwins(t, serial, hs, sharded, hp)
}

// compareTwins steps both controllers through the scripted workload and
// requires bit-identical reports, checkpoints and final quotas.
func compareTwins(t *testing.T, a *Controller, ha *faultScriptHost, b *Controller, hb *faultScriptHost) {
	t.Helper()
	sawDegraded := false
	for step := int64(1); step <= 15; step++ {
		repA := advanceTwin(t, a, ha, step)
		repB := advanceTwin(t, b, hb, step)
		if s, p := reportSummary(repA), reportSummary(repB); s != p {
			t.Fatalf("step %d reports diverged:\nserial: %s\nsharded: %s", step, s, p)
		}
		if repA.DegradedVCPUs > 0 {
			sawDegraded = true
		}
		snapA, err := a.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		snapB, err := b.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if s, p := stripTimings(snapA), stripTimings(snapB); s != p {
			t.Fatalf("step %d checkpoints diverged:\nserial:\n%s\nsharded:\n%s", step, s, p)
		}
	}
	if !sawDegraded {
		t.Fatal("fault schedule never degraded a vCPU; the test lost its teeth")
	}
	for k, v := range ha.setMax {
		if hb.setMax[k] != v {
			t.Fatalf("final quota for %s: serial %v, sharded %v", k, v, hb.setMax[k])
		}
	}
}

// auctionState snapshots the auction-relevant state of a controller so a
// twin can be driven to the same point and the outcomes compared.
type auctionState struct {
	caps, ests, cores []int64
	credits           []int64
}

// randomAuctionTwin builds two controllers over identical six-VM hosts,
// steps them once, then overwrites caps, estimates, wallets and core
// placements with the same random values on both.
func randomAuctionTwin(t *testing.T, rng *rand.Rand, shardsB int) (*Controller, *Controller, int64) {
	t.Helper()
	build := func(shards int) *Controller {
		h := newFakeHost()
		h.node.Cores = 16
		for i := 0; i < 6; i++ {
			h.addVM(fmt.Sprintf("vm%d", i), 1+i%3, 1200)
		}
		cfg := DefaultConfig()
		cfg.AuctionShards = shards
		ctrl := mustController(t, h, cfg)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	a := build(1)
	b := build(shardsB)
	st := auctionState{}
	for _, vs := range a.VMs() {
		st.credits = append(st.credits, int64(rng.Intn(2_000_000)))
		for range vs.VCPUs {
			cap := int64(rng.Intn(500_000))
			st.caps = append(st.caps, cap)
			st.ests = append(st.ests, cap+int64(rng.Intn(500_000)))
			st.cores = append(st.cores, int64(rng.Intn(16)))
		}
	}
	apply := func(c *Controller) {
		i, k := 0, 0
		for _, vs := range c.VMs() {
			vs.CreditUs = st.credits[i]
			i++
			for _, v := range vs.VCPUs {
				v.CapUs = st.caps[k]
				v.EstUs = st.ests[k]
				v.LastCore = int(st.cores[k])
				k++
			}
		}
	}
	apply(a)
	apply(b)
	return a, b, int64(rng.Intn(3_000_000))
}

func sumCapsCredits(c *Controller) (caps, credits int64) {
	for _, vs := range c.VMs() {
		credits += vs.CreditUs
		for _, v := range vs.VCPUs {
			caps += v.CapUs
		}
	}
	return caps, credits
}

// TestAuctionShardedEquivalence is the documented relaxation of the
// sharded auction: against the serial pass, per-buyer caps MAY differ
// (shards sort buyers by ledger slices, not the global wallet), but the
// aggregates must match exactly — cycles sold, cycles left unsold, the
// total cap mass and the total credit mass. 1-vs-4 shards over many
// random market states.
func TestAuctionShardedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, market := randomAuctionTwin(t, rng, 4)
		capsA0, credA0 := sumCapsCredits(a)
		leftA := a.auctionSharded(market) // shards=1: the serial pass
		leftB := b.auctionSharded(market)
		if leftA != leftB {
			t.Fatalf("seed %d: leftover diverged: serial %d, sharded %d", seed, leftA, leftB)
		}
		capsA, credA := sumCapsCredits(a)
		capsB, credB := sumCapsCredits(b)
		if capsA != capsB || credA != credB {
			t.Fatalf("seed %d: aggregates diverged: caps %d vs %d, credits %d vs %d",
				seed, capsA, capsB, credA, credB)
		}
		if sold := capsA - capsA0; sold != market-leftA || credA0-credA != sold {
			t.Fatalf("seed %d: conservation broke: sold %d, market %d, left %d, charged %d",
				seed, sold, market, leftA, credA0-credA)
		}
	}
}

// TestAuctionShardedRace exercises the concurrent shard pool under the
// race detector: many VMs spanning shards, wallets shared between
// buyers on different shards, full Steps so the split/merge runs against
// live monitor state.
func TestAuctionShardedRace(t *testing.T) {
	fh := newFakeHost()
	fh.node.Cores = 16
	for c := 0; c < 16; c++ {
		fh.freq[c] = 2400
	}
	h := &topologyHost{fakeHost: fh, nodes: []int{
		0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
	}}
	for i := 0; i < 12; i++ {
		h.addVM(fmt.Sprintf("vm%d", i), 4, 1200)
	}
	// Spread vCPU threads across cores so buyers span all four shards.
	tid := 0
	for i := 0; i < 12; i++ {
		for j := 0; j < 4; j++ {
			id, err := h.ThreadID(fmt.Sprintf("vm%d", i), j)
			if err != nil {
				t.Fatal(err)
			}
			h.lastCPU[id] = tid % 16
			tid++
		}
	}
	cfg := DefaultConfig()
	cfg.AuctionShards = 0 // auto: 4 shards from the topology
	cfg.MonitorWorkers = 8
	ctrl := mustController(t, h, cfg)
	if got := ctrl.effectiveShards(); got != 4 {
		t.Fatalf("effectiveShards = %d, want 4", got)
	}
	for s := 0; s < 10; s++ {
		for i := 0; i < 12; i++ {
			for j := 0; j < 4; j++ {
				h.consume(fmt.Sprintf("vm%d", i), j, int64(200_000+(i*4+j)*9_000))
			}
		}
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		for _, vs := range ctrl.VMs() {
			if vs.CreditUs < 0 {
				t.Fatalf("step %d: wallet of %s went negative: %d", s, vs.Info.Name, vs.CreditUs)
			}
			for _, v := range vs.VCPUs {
				if v.CapUs > v.EstUs && v.CapUs > vs.GuaranteeUs {
					t.Fatalf("step %d: %s/%d capped beyond estimate: cap %d est %d",
						s, v.VM, v.Index, v.CapUs, v.EstUs)
				}
			}
		}
	}
}

// TestAuctionShardedScratchReuse pins the steady-state behaviour of the
// shard scratch: the ledgers and buyer slices must be reused across
// Steps, not regrown (the goroutine pool is the only per-Step cost of
// the sharded path).
func TestAuctionShardedScratchReuse(t *testing.T) {
	fh := newFakeHost()
	fh.node.Cores = 8
	h := &topologyHost{fakeHost: fh, nodes: []int{0, 0, 1, 1, 2, 2, 3, 3}}
	for i := 0; i < 4; i++ {
		h.addVM(fmt.Sprintf("vm%d", i), 2, 1200)
	}
	cfg := DefaultConfig()
	cfg.AuctionShards = 4
	ctrl := mustController(t, h, cfg)
	for s := 0; s < 6; s++ {
		for i := 0; i < 4; i++ {
			h.consume(fmt.Sprintf("vm%d", i), 0, 600_000)
			h.consume(fmt.Sprintf("vm%d", i), 1, 600_000)
		}
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctrl.shards) != 4 {
		t.Fatalf("shard pool holds %d shards, want 4", len(ctrl.shards))
	}
	first := ctrl.shards
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if ctrl.shards[i] != first[i] {
			t.Fatalf("shard %d was reallocated between Steps", i)
		}
	}
}
