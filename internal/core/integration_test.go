package core_test

import (
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/dvfs"
	"vfreq/internal/energy"
	"vfreq/internal/host"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// testNode is a small 2-core node at 2.4 GHz with a performance governor,
// so virtual frequencies are exactly share × 2400.
func testNode(t *testing.T, cores int) *vm.Manager {
	t.Helper()
	m, err := host.New(host.Spec{
		Name: "testnode", Cores: cores,
		MinMHz: 1200, MaxMHz: 2400, MemoryGB: 64,
		Governor: dvfs.GovernorPerformance,
		Power:    energy.PowerModel{IdleWatts: 100, MaxWatts: 200, Alpha: 1, Gamma: 1, MaxMHz: 2400},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := vm.NewManager(m)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func busySources(n int) []workload.Source {
	out := make([]workload.Source, n)
	for i := range out {
		out[i] = workload.Busy()
	}
	return out
}

// run advances the machine and controller in lock-step for n periods and
// returns the per-VM mean virtual frequency (MHz) over the last `tail`
// periods, measured from ground-truth attained cycles.
func run(t *testing.T, mgr *vm.Manager, ctrl *core.Controller, n, tail int) map[string]float64 {
	t.Helper()
	period := ctrl.Config().PeriodUs
	snaps := map[string][]int64{}
	for step := 0; step < n; step++ {
		if step == n-tail {
			for _, inst := range mgr.List() {
				snaps[inst.Name()] = inst.SnapshotCycles()
			}
		}
		mgr.Machine().Advance(period)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	out := map[string]float64{}
	for _, inst := range mgr.List() {
		out[inst.Name()] = inst.MeanVCPUFreqMHz(snaps[inst.Name()], int64(tail)*period)
	}
	return out
}

// The paper's central claim: under contention, every VM runs at its
// chosen virtual frequency. Two VMs on 2 cores, guarantees filling the
// machine exactly (2×600 + 2×1800 = 2×2400).
func TestControllerEnforcesGuaranteesUnderContention(t *testing.T) {
	mgr := testNode(t, 2)
	slow := vm.Template{Name: "slow", VCPUs: 2, FreqMHz: 600, MemoryGB: 2}
	fast := vm.Template{Name: "fast", VCPUs: 2, FreqMHz: 1800, MemoryGB: 2}
	if _, err := mgr.Provision("slow", slow, busySources(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("fast", fast, busySources(2)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(platform.NewSim(mgr), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	freqs := run(t, mgr, ctrl, 20, 10)
	if f := freqs["slow"]; f < 570 || f > 700 {
		t.Fatalf("slow VM at %.0f MHz, want ≈600", f)
	}
	if f := freqs["fast"]; f < 1710 || f > 1900 {
		t.Fatalf("fast VM at %.0f MHz, want ≈1800", f)
	}
}

// Without the controller, CFS splits per VM and both VMs get one core:
// each vCPU of both VMs runs at 1200 MHz regardless of template.
func TestWithoutControllerCFSIgnoresTemplates(t *testing.T) {
	mgr := testNode(t, 2)
	slow := vm.Template{Name: "slow", VCPUs: 2, FreqMHz: 600, MemoryGB: 2}
	fast := vm.Template{Name: "fast", VCPUs: 2, FreqMHz: 1800, MemoryGB: 2}
	if _, err := mgr.Provision("slow", slow, busySources(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("fast", fast, busySources(2)); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ControlEnabled = false
	ctrl, err := core.New(platform.NewSim(mgr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	freqs := run(t, mgr, ctrl, 10, 5)
	for name, f := range freqs {
		if f < 1150 || f > 1250 {
			t.Fatalf("%s at %.0f MHz, want ≈1200 (per-VM fair share)", name, f)
		}
	}
}

// Work conservation: when the fast VM is idle, the slow VM may burst far
// above its guarantee instead of wasting the node.
func TestControllerWorkConservingBurst(t *testing.T) {
	mgr := testNode(t, 2)
	slow := vm.Template{Name: "slow", VCPUs: 2, FreqMHz: 600, MemoryGB: 2}
	fast := vm.Template{Name: "fast", VCPUs: 2, FreqMHz: 1800, MemoryGB: 2}
	if _, err := mgr.Provision("slow", slow, busySources(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("fast", fast, nil); err != nil { // idle
		t.Fatal(err)
	}
	ctrl, err := core.New(platform.NewSim(mgr), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	freqs := run(t, mgr, ctrl, 25, 8)
	if f := freqs["slow"]; f < 2200 {
		t.Fatalf("slow VM bursts to %.0f MHz only, want ≈2400 on idle node", f)
	}
}

// Reactivity: when the fast VM wakes up mid-experiment, the slow VM is
// squeezed back to its guarantee within a few periods.
func TestControllerReclaimsBurstOnContention(t *testing.T) {
	mgr := testNode(t, 2)
	slow := vm.Template{Name: "slow", VCPUs: 2, FreqMHz: 600, MemoryGB: 2}
	fast := vm.Template{Name: "fast", VCPUs: 2, FreqMHz: 1800, MemoryGB: 2}
	if _, err := mgr.Provision("slow", slow, busySources(2)); err != nil {
		t.Fatal(err)
	}
	// Fast VM starts its workload at t = 15 s.
	late := []workload.Source{
		&workload.Delayed{StartUs: 15_000_000, Inner: workload.Busy()},
		&workload.Delayed{StartUs: 15_000_000, Inner: workload.Busy()},
	}
	if _, err := mgr.Provision("fast", fast, late); err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(platform.NewSim(mgr), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	freqs := run(t, mgr, ctrl, 40, 15)
	if f := freqs["fast"]; f < 1650 {
		t.Fatalf("fast VM recovered only %.0f MHz, want ≈1800", f)
	}
	if f := freqs["slow"]; f > 800 {
		t.Fatalf("slow VM still at %.0f MHz, want squeezed to ≈600", f)
	}
}

// The controller's monitored frequency estimate (procfs+sysfs based) must
// agree with ground truth within a tolerance, validating §III-B1.
func TestMonitoredFrequencyMatchesGroundTruth(t *testing.T) {
	mgr := testNode(t, 2)
	tpl := vm.Template{Name: "t", VCPUs: 2, FreqMHz: 1200, MemoryGB: 2}
	inst, err := mgr.Provision("a", tpl, busySources(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Provision("b", tpl, busySources(2)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(platform.NewSim(mgr), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	period := ctrl.Config().PeriodUs
	for step := 0; step < 10; step++ {
		snap := inst.SnapshotCycles()
		mgr.Machine().Advance(period)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		if step < 3 {
			continue // convergence
		}
		truth := inst.MeanVCPUFreqMHz(snap, period)
		var est float64
		for _, v := range ctrl.VM("a").VCPUs {
			est += v.FreqMHz
		}
		est /= 2
		if diff := est - truth; diff > 150 || diff < -150 {
			t.Fatalf("step %d: estimate %.0f vs truth %.0f MHz", step, est, truth)
		}
	}
}

// Conservation invariant: after every step the caps never oversubscribe
// the machine.
func TestCapsNeverExceedCapacity(t *testing.T) {
	mgr := testNode(t, 2)
	for i, tpl := range []vm.Template{
		{Name: "a", VCPUs: 2, FreqMHz: 600, MemoryGB: 1},
		{Name: "b", VCPUs: 2, FreqMHz: 1200, MemoryGB: 1},
		{Name: "c", VCPUs: 1, FreqMHz: 300, MemoryGB: 1},
	} {
		if _, err := mgr.Provision(tpl.Name, tpl, busySources(tpl.VCPUs)); err != nil {
			t.Fatal(err, i)
		}
	}
	ctrl, err := core.New(platform.NewSim(mgr), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 15; step++ {
		mgr.Machine().Advance(ctrl.Config().PeriodUs)
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, st := range ctrl.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs < 0 || v.CapUs > ctrl.Config().PeriodUs {
					t.Fatalf("cap %d outside [0, p]", v.CapUs)
				}
				total += v.CapUs
			}
			if st.CreditUs < 0 {
				t.Fatalf("negative wallet for %s", st.Info.Name)
			}
		}
		if total > ctrl.CapacityUs() {
			t.Fatalf("step %d: Σcaps %d > capacity %d", step, total, ctrl.CapacityUs())
		}
	}
}
