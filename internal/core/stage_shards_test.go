package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// scriptedStageTwin builds a controller for the stage 2–3 sharding twins:
// the scripted six-VM workload of scriptedTwin, with vCPU threads spread
// across eight cores so a forced shard count actually partitions the
// vCPUs, and the auction left serial so any divergence comes from the
// sharded estimate/enforce passes alone. Both twins of a pair must be
// built through this helper — it scripts host readings (placements,
// frequencies) that the plain scriptedTwin host does not.
func scriptedStageTwin(t *testing.T, estShards int) (*Controller, *faultScriptHost) {
	t.Helper()
	fh := newFakeHost()
	fh.node.Cores = 8
	for c := 0; c < 8; c++ {
		fh.freq[c] = 2400
	}
	for i := 0; i < 6; i++ {
		fh.addVM(fmt.Sprintf("vm%d", i), 2, 1200)
	}
	// fakeHost thread ids depend only on the vCPU index for the vmN
	// names (same name length), so two placements cover every vCPU.
	fh.lastCPU[1030] = 2
	fh.lastCPU[1031] = 5
	h := &faultScriptHost{fakeHost: fh, fails: map[string]bool{}}
	h.fails["5:vm2/0"] = true
	h.fails["6:vm2/0"] = true
	h.fails["9:vm4/1"] = true
	cfg := DefaultConfig()
	cfg.EstimateShards = estShards
	cfg.BurstFraction = 0.2
	return mustController(t, h, cfg), h
}

// TestEstimateShardsBitIdentical is the tentpole acceptance twin: the
// sharded estimate/enforce passes must be bit-identical to the serial
// ones — reports, checkpoints and written quotas — at a shard count
// that splits the vCPUs across several shards, under scripted faults.
// This is a stronger contract than the auction's (whose per-buyer caps
// may differ at N > 1): stages 2–3 commute exactly.
func TestEstimateShardsBitIdentical(t *testing.T) {
	serial, hs := scriptedStageTwin(t, 1)
	sharded, hp := scriptedStageTwin(t, 8)
	compareTwins(t, serial, hs, sharded, hp)
}

// TestEstimateShardsFollowAuction pins the EstimateShards = 0 default:
// the stage 2–3 partition follows the effective auction shard count.
func TestEstimateShardsFollowAuction(t *testing.T) {
	h := &topologyHost{fakeHost: newFakeHost(), nodes: []int{0, 0, 1, 1}}
	cfg := DefaultConfig()
	cfg.AuctionShards = 0 // auto: one shard per NUMA node
	ctrl := mustController(t, h, cfg)
	if got := ctrl.effectiveEstimateShards(); got != 2 {
		t.Fatalf("effectiveEstimateShards = %d, want 2 (following auto auction shards)", got)
	}
	cfg.AuctionShards = 1
	cfg.EstimateShards = 6
	ctrl = mustController(t, h, cfg)
	if got := ctrl.effectiveEstimateShards(); got != 6 {
		t.Fatalf("effectiveEstimateShards = %d, want the forced 6", got)
	}
}

// TestEstimateShardsSeededEquivalence drives 1-vs-N full-pipeline twins
// over 100 random workloads (consumption and thread placement re-rolled
// every step) and requires bit-identical checkpoints after every Step.
// The shard count varies with the seed so every partition arity in
// [2, 8] is covered.
func TestEstimateShardsSeededEquivalence(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		shards := 2 + int(seed%7)
		build := func(n int) (*Controller, *fakeHost) {
			h := newFakeHost()
			h.node.Cores = 16
			for c := 0; c < 16; c++ {
				h.freq[c] = 2400
			}
			for i := 0; i < 5; i++ {
				h.addVM(fmt.Sprintf("vm%d", i), 2, 1200)
			}
			cfg := DefaultConfig()
			cfg.EstimateShards = n
			cfg.CreditCapPeriods = 3 // exercise the post-merge clamp
			return mustController(t, h, cfg), h
		}
		a, ha := build(1)
		b, hb := build(shards)
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 8; step++ {
			for i := 0; i < 5; i++ {
				for j := 0; j < 2; j++ {
					u := int64(rng.Intn(1_000_000))
					ha.consume(fmt.Sprintf("vm%d", i), j, u)
					hb.consume(fmt.Sprintf("vm%d", i), j, u)
				}
			}
			// Re-roll the two shared thread placements so vCPUs migrate
			// between shards across steps.
			for _, tid := range []int{1030, 1031} {
				core := rng.Intn(16)
				ha.lastCPU[tid] = core
				hb.lastCPU[tid] = core
			}
			if err := a.Step(); err != nil {
				t.Fatal(err)
			}
			if err := b.Step(); err != nil {
				t.Fatal(err)
			}
			snapA, err := a.Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}
			snapB, err := b.Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}
			if s, p := stripTimings(snapA), stripTimings(snapB); s != p {
				t.Fatalf("seed %d step %d (shards=%d): checkpoints diverged:\nserial:\n%s\nsharded:\n%s",
					seed, step, shards, s, p)
			}
		}
	}
}

// TestAuctionShardedWalletOverflowConservation pins the mulDiv fix in
// the demand-proportional splits: with unbounded wallets near the int64
// ceiling the wallet × demand product overflows, and the old plain
// multiply produced a negative "share" that MINTED credit at the split
// (wallet −= share) and leaked it across the barrier merge. The split
// must conserve credit exactly and never drive a wallet negative, and
// the sharded aggregates must still match the serial pass.
func TestAuctionShardedWalletOverflowConservation(t *testing.T) {
	huge := []int64{1 << 55, (1 << 56) - 1, 1<<55 + 12345, 1 << 54, (1 << 55) + 7, 1 << 53}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, market := randomAuctionTwin(t, rng, 4)
		for _, c := range []*Controller{a, b} {
			for i, vs := range c.VMs() {
				vs.CreditUs = huge[i%len(huge)]
			}
		}
		capsB0, credB0 := sumCapsCredits(b)
		leftB := b.auctionSharded(market)
		capsB, credB := sumCapsCredits(b)
		sold := capsB - capsB0
		if sold != market-leftB {
			t.Fatalf("seed %d: market leaked: sold %d, market %d, left %d", seed, sold, market, leftB)
		}
		if charged := credB0 - credB; charged != sold {
			t.Fatalf("seed %d: credit not conserved: charged %d, sold %d", seed, charged, sold)
		}
		for _, vs := range b.VMs() {
			if vs.CreditUs < 0 {
				t.Fatalf("seed %d: wallet of %s went negative: %d", seed, vs.Info.Name, vs.CreditUs)
			}
		}
		// The serial pass never multiplies, so it is the overflow-free
		// reference: aggregates must agree.
		leftA := a.auctionSharded(market)
		capsA, credA := sumCapsCredits(a)
		if leftA != leftB || capsA != capsB || credA != credB {
			t.Fatalf("seed %d: aggregates diverged: left %d vs %d, caps %d vs %d, credits %d vs %d",
				seed, leftA, leftB, capsA, capsB, credA, credB)
		}
	}
}

// TestMulDiv exercises the exact floor decomposition directly, against
// big-integer-free reference cases chosen so the plain a·b product
// overflows int64.
func TestMulDiv(t *testing.T) {
	cases := []struct{ a, b, d, want int64 }{
		{0, 3, 7, 0},
		{100, 3, 7, 42}, // ⌊300/7⌋
		{1 << 62, 1, 3, 1 << 62 / 3},
		{1 << 55, 1_000_000, 3_000_000, 1 << 55 / 3},
		{(1 << 56) - 1, 999_999, 1_000_000,
			((1<<56-1)/1_000_000)*999_999 + ((1<<56-1)%1_000_000)*999_999/1_000_000},
	}
	for _, c := range cases {
		if got := mulDiv(c.a, c.b, c.d); got != c.want {
			t.Fatalf("mulDiv(%d, %d, %d) = %d, want %d", c.a, c.b, c.d, got, c.want)
		}
	}
	// Property check against a widened reference on non-overflowing
	// operands: mulDiv must equal ⌊a·b/d⌋.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		d := int64(rng.Intn(1_000_000) + 1)
		b := int64(rng.Intn(int(d) + 1))
		a := int64(rng.Intn(1_000_000_000))
		if got, want := mulDiv(a, b, d), a*b/d; got != want {
			t.Fatalf("mulDiv(%d, %d, %d) = %d, want %d", a, b, d, got, want)
		}
	}
}

// TestEstimateShardsRace runs the fully sharded three-stage pipeline
// (estimate, enforce, auction on one partition) with a concurrent pool
// under the race detector.
func TestEstimateShardsRace(t *testing.T) {
	fh := newFakeHost()
	fh.node.Cores = 16
	for c := 0; c < 16; c++ {
		fh.freq[c] = 2400
	}
	h := &topologyHost{fakeHost: fh, nodes: []int{
		0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
	}}
	for i := 0; i < 12; i++ {
		h.addVM(fmt.Sprintf("vm%d", i), 4, 1200)
	}
	tid := 0
	for i := 0; i < 12; i++ {
		for j := 0; j < 4; j++ {
			id, err := h.ThreadID(fmt.Sprintf("vm%d", i), j)
			if err != nil {
				t.Fatal(err)
			}
			h.lastCPU[id] = tid % 16
			tid++
		}
	}
	cfg := DefaultConfig()
	cfg.AuctionShards = 0 // auto: 4 shards, estimate/enforce follow
	cfg.MonitorWorkers = 8
	ctrl := mustController(t, h, cfg)
	for s := 0; s < 10; s++ {
		for i := 0; i < 12; i++ {
			for j := 0; j < 4; j++ {
				h.consume(fmt.Sprintf("vm%d", i), j, int64(200_000+(i*4+j)*9_000))
			}
		}
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		for _, vs := range ctrl.VMs() {
			if vs.CreditUs < 0 {
				t.Fatalf("step %d: wallet of %s went negative: %d", s, vs.Info.Name, vs.CreditUs)
			}
		}
	}
}
