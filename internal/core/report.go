package core

import "fmt"

// maxFaultsPerStep bounds the fault log of one StepReport so a host with
// thousands of failing vCPUs cannot make a report unboundedly large; the
// overflow is counted in FaultsDropped.
const maxFaultsPerStep = 64

// Fault records one failed host interaction during a Step. Faults are
// per-vCPU (or per-VM for template and registration problems) and do not
// abort the Step: the affected vCPU degrades to its last-known-good cap
// while every other vCPU keeps being controlled.
type Fault struct {
	// VM is the affected VM name.
	VM string
	// VCPU is the affected vCPU index, or -1 for a VM-level fault.
	VCPU int
	// Stage names the controller stage: "sync", "monitor", "apply" or
	// "breaker".
	Stage string
	// Op names the host operation that failed: "template", "usage",
	// "tid", "lastcpu", "freq", "setmax", "setburst" or "open" (a
	// circuit breaker tripping).
	Op string
	// Err is the underlying host error.
	Err error
}

// Error renders the fault as one line.
func (f Fault) Error() string {
	if f.VCPU < 0 {
		return fmt.Sprintf("%s/%s %s: %v", f.Stage, f.Op, f.VM, f.Err)
	}
	return fmt.Sprintf("%s/%s %s/vcpu%d: %v", f.Stage, f.Op, f.VM, f.VCPU, f.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (f Fault) Unwrap() error { return f.Err }

// StepReport describes what one control iteration actually did: how many
// vCPUs were controlled with fresh measurements, how many degraded to
// their last-known-good cap, which VMs churned or were live-reconfigured,
// and the per-stage timings. A Step only returns an error when the whole
// host is unreachable (VM enumeration fails); every narrower failure is
// recorded here instead.
type StepReport struct {
	// Step is the iteration number this report describes (1-based).
	Step int64
	// VMs is the number of VMs tracked after reconciliation.
	VMs int
	// VCPUs is the total number of controlled vCPUs.
	VCPUs int
	// DegradedVCPUs counts vCPUs whose monitor or apply stage failed
	// this Step; their caps are held at the last-known-good value.
	DegradedVCPUs int
	// HealthyVCPUs counts vCPUs fully monitored and (when control is
	// enabled) successfully applied this Step.
	HealthyVCPUs int
	// Retries counts host operations that succeeded only after an
	// in-step retry (Config.HostRetries).
	Retries int
	// Recovered counts vCPUs whose FailedSteps counter was reset this
	// Step after Config.RecoverySteps consecutive clean Steps.
	Recovered int
	// OpenVMs counts VMs quarantined behind an open circuit breaker at
	// the end of this Step (their vCPUs are all in DegradedVCPUs).
	OpenVMs int
	// HalfOpenVMs counts VMs in the probing half-open breaker state.
	HalfOpenVMs int
	// BreakerTrips counts breakers that opened (or re-opened from a
	// failed half-open probe) during this Step; each trip is also
	// recorded as a "breaker/open" fault.
	BreakerTrips int
	// Panicked reports that a stage panicked this Step. The watchdog
	// converted the panic into a degraded step: every tracked vCPU was
	// marked degraded (its state may be mid-stage inconsistent) and the
	// panic is recorded as a "step/panic" fault instead of crashing the
	// control loop.
	Panicked bool
	// Overrun reports that the Step's wall-clock time crossed the
	// deadline budget Config.StepDeadlineFrac × PeriodUs.
	Overrun bool
	// OverrunStage names the first stage after which the deadline was
	// found exceeded ("sync", "monitor", "estimate", "enforce",
	// "auction", "distribute" or "apply").
	OverrunStage string
	// SkippedPeriods counts whole control periods that elapsed while
	// this Step ran: a caller ticking every PeriodUs missed this many
	// ticks. 0 for a Step that fits in its period.
	SkippedPeriods int64
	// Checkpointed reports that this Step persisted a checkpoint to the
	// attached store.
	Checkpointed bool
	// Faults lists the recorded failures, at most maxFaultsPerStep.
	Faults []Fault
	// FaultsDropped counts faults beyond the Faults capacity.
	FaultsDropped int
	// Added, Removed and Reconfigured list the VMs that appeared,
	// departed, or changed template (frequency or vCPU count) during
	// this Step's reconciliation.
	Added        []string
	Removed      []string
	Reconfigured []string
	// Timings are the per-stage wall-clock costs of this Step.
	Timings StageTimings
}

// record appends a fault, bounding the log size.
func (r *StepReport) record(f Fault) {
	if len(r.Faults) >= maxFaultsPerStep {
		r.FaultsDropped++
		return
	}
	r.Faults = append(r.Faults, f)
}

// FaultCount returns the total number of faults, including dropped ones.
func (r StepReport) FaultCount() int { return len(r.Faults) + r.FaultsDropped }

// Degraded reports whether any vCPU ran on stale data this Step.
func (r StepReport) Degraded() bool { return r.DegradedVCPUs > 0 || r.FaultCount() > 0 }

// String summarises the report in one line.
func (r StepReport) String() string {
	s := fmt.Sprintf("step %d: %d VMs, %d/%d vCPUs healthy, %d degraded, %d faults (+%d added, -%d removed, ~%d reconfigured)",
		r.Step, r.VMs, r.HealthyVCPUs, r.VCPUs, r.DegradedVCPUs, r.FaultCount(),
		len(r.Added), len(r.Removed), len(r.Reconfigured))
	if r.Retries > 0 {
		s += fmt.Sprintf(" [%d retries]", r.Retries)
	}
	if r.Recovered > 0 {
		s += fmt.Sprintf(" [%d vCPUs recovered]", r.Recovered)
	}
	if r.OpenVMs > 0 || r.HalfOpenVMs > 0 || r.BreakerTrips > 0 {
		s += fmt.Sprintf(" [breakers: %d open, %d half-open, %d tripped]",
			r.OpenVMs, r.HalfOpenVMs, r.BreakerTrips)
	}
	if r.Panicked {
		s += " [panicked]"
	}
	if r.Overrun {
		s += fmt.Sprintf(" [overrun after %s, %d periods skipped]", r.OverrunStage, r.SkippedPeriods)
	}
	return s
}
