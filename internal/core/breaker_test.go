package core

import (
	"errors"
	"testing"
	"time"

	"vfreq/internal/platform"
)

// breakerConfig is the shared tuning of the breaker tests: trip after 3
// consecutive faulty steps, quarantine for 2, close after 2 clean
// probes. No retries, so every injected fault lands.
func breakerConfig() Config {
	cfg := DefaultConfig()
	cfg.HostRetries = 0
	cfg.BreakerThreshold = 3
	cfg.BreakerOpenSteps = 2
	cfg.RecoverySteps = 2
	return cfg
}

// TestBreakerTripQuarantineReadmit walks one VM through the whole state
// machine: closed → (3 faulty steps) → open → (2 quarantined steps with
// no host reads at all) → half-open → (2 clean probes) → closed, while
// a healthy neighbour VM keeps being monitored and controlled
// throughout.
func TestBreakerTripQuarantineReadmit(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 2, 1200)
	inner.addVM("b", 1, 600)
	fh := platform.WithFaults(inner, 11)
	c := mustController(t, fh, breakerConfig())
	warmUp(t, c, inner, 3, 300_000)

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vm == "a" },
	})

	// Steps 1–2 of the streak: degraded but not yet tripped.
	for i := 0; i < 2; i++ {
		warmUp(t, c, inner, 1, 300_000)
		rep := c.LastReport()
		if rep.BreakerTrips != 0 || rep.OpenVMs != 0 {
			t.Fatalf("streak step %d tripped early: %s", i, rep.String())
		}
		if rep.DegradedVCPUs != 2 {
			t.Fatalf("streak step %d: degraded = %d, want 2", i, rep.DegradedVCPUs)
		}
	}
	if st := c.VM("a").Breaker; st.State != BreakerClosed || st.FaultStreak != 2 {
		t.Fatalf("breaker before trip = %+v", st)
	}

	// Step 3 trips the breaker.
	warmUp(t, c, inner, 1, 300_000)
	rep := c.LastReport()
	if rep.BreakerTrips != 1 || rep.OpenVMs != 1 {
		t.Fatalf("trip step: %s", rep.String())
	}
	tripped := false
	for _, f := range rep.Faults {
		if f.Stage == "breaker" && f.Op == "open" && f.VM == "a" {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("no breaker/open fault recorded: %v", rep.Faults)
	}
	if st := c.VM("a").Breaker; st.State != BreakerOpen || st.OpenLeft != 2 {
		t.Fatalf("breaker after trip = %+v", st)
	}

	// Quarantine: the monitor must not touch VM a at all — per step,
	// only b's single vCPU reaches the usage site (which would fail for
	// a anyway, the plan is still armed).
	for i := 0; i < 2; i++ {
		before := fh.Calls(platform.SiteUsage)
		warmUp(t, c, inner, 1, 300_000)
		if got := fh.Calls(platform.SiteUsage) - before; got != 1 {
			t.Fatalf("quarantine step %d: %d usage calls, want 1 (VM b only)", i, got)
		}
		rep := c.LastReport()
		if rep.DegradedVCPUs != 2 || rep.HealthyVCPUs != 1 {
			t.Fatalf("quarantine step %d: %s", i, rep.String())
		}
		if i == 0 && rep.OpenVMs != 1 {
			t.Fatalf("quarantine step 0 not reported open: %s", rep.String())
		}
	}
	// After the second quarantined step the breaker is probing.
	if st := c.VM("a").Breaker; st.State != BreakerHalfOpen {
		t.Fatalf("breaker after quarantine = %+v", st)
	}
	if rep := c.LastReport(); rep.HalfOpenVMs != 1 || rep.OpenVMs != 0 {
		t.Fatalf("half-open not reported: %s", rep.String())
	}

	// The host recovers; two clean probes re-admit the VM.
	fh.Clear(platform.SiteUsage)
	warmUp(t, c, inner, 1, 300_000)
	if st := c.VM("a").Breaker; st.State != BreakerHalfOpen || st.ProbeClean != 1 {
		t.Fatalf("breaker after first probe = %+v", st)
	}
	warmUp(t, c, inner, 1, 300_000)
	if st := c.VM("a").Breaker; st.State != BreakerClosed {
		t.Fatalf("breaker after second probe = %+v", st)
	}
	rep = c.LastReport()
	if rep.Recovered != 2 || rep.DegradedVCPUs != 0 {
		t.Fatalf("re-admission step: %s", rep.String())
	}
	for _, v := range c.VM("a").VCPUs {
		if v.Degraded || v.FailedSteps != 0 {
			t.Fatalf("vCPU %d not clean after re-admission: %+v", v.Index, v)
		}
	}
}

// TestBreakerFaultyProbeReopens: one faulty step while half-open sends
// the VM straight back into quarantine for a full window.
func TestBreakerFaultyProbeReopens(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 1, 1200)
	fh := platform.WithFaults(inner, 11)
	c := mustController(t, fh, breakerConfig())
	warmUp(t, c, inner, 3, 300_000)

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{Persistent: true})
	// 3 steps to trip, 2 quarantined steps to reach half-open.
	warmUp(t, c, inner, 5, 300_000)
	if st := c.VM("a").Breaker; st.State != BreakerHalfOpen {
		t.Fatalf("breaker = %+v, want half-open", st)
	}
	// The plan is still armed: the probe fails and re-opens immediately
	// (no 3-step streak needed while probing).
	warmUp(t, c, inner, 1, 300_000)
	rep := c.LastReport()
	if st := c.VM("a").Breaker; st.State != BreakerOpen || st.OpenLeft != 2 {
		t.Fatalf("breaker after failed probe = %+v", st)
	}
	if rep.BreakerTrips != 1 || rep.OpenVMs != 1 {
		t.Fatalf("failed probe not reported as a trip: %s", rep.String())
	}
}

// TestBreakerConservationDuringQuarantine: quarantined caps are held,
// so Σcaps stays within the machine capacity through trip, quarantine
// and re-admission.
func TestBreakerConservationDuringQuarantine(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 2, 1200)
	inner.addVM("b", 1, 1800)
	fh := platform.WithFaults(inner, 3)
	c := mustController(t, fh, breakerConfig())
	warmUp(t, c, inner, 3, 900_000)

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vm == "a" },
	})
	for step := 0; step < 10; step++ {
		if step == 7 {
			fh.Clear(platform.SiteUsage)
		}
		warmUp(t, c, inner, 1, 900_000)
		var sum int64
		for _, st := range c.VMs() {
			for _, v := range st.VCPUs {
				if v.CapUs < 0 || v.CapUs > c.Config().PeriodUs {
					t.Fatalf("step %d: cap %d outside [0, period]", step, v.CapUs)
				}
				sum += v.CapUs
			}
		}
		if sum > c.CapacityUs() {
			t.Fatalf("step %d: Σcaps %d exceeds capacity %d", step, sum, c.CapacityUs())
		}
	}
}

// TestCallBudgetDegradesSlowVCPU: a usage read that injects more delay
// than Config.CallBudgetUs fails that vCPU with ErrCallBudget — without
// a retry (slow is not flaky) — while the fast vCPU stays healthy.
func TestCallBudgetDegradesSlowVCPU(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 2, 1200)
	fh := platform.WithFaults(inner, 5)
	cfg := DefaultConfig()
	cfg.CallBudgetUs = 200 // 0.2 ms budget
	c := mustController(t, fh, cfg)
	warmUp(t, c, inner, 2, 300_000)

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		DelayRate: 1,
		DelayUs:   20_000, // 10–20 ms injected stall, far over budget
		Match:     func(vm string, vcpu int) bool { return vcpu == 1 },
	})
	inner.consume("a", 0, 300_000)
	inner.consume("a", 1, 300_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rep := c.LastReport()
	if rep.DegradedVCPUs != 1 || rep.HealthyVCPUs != 1 {
		t.Fatalf("degraded/healthy = %d/%d: %s", rep.DegradedVCPUs, rep.HealthyVCPUs, rep.String())
	}
	if rep.Retries != 0 {
		t.Fatalf("a budget overrun was retried (%d retries)", rep.Retries)
	}
	found := false
	for _, f := range rep.Faults {
		if f.VM == "a" && f.VCPU == 1 && errors.Is(f.Err, ErrCallBudget) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ErrCallBudget fault for the slow vCPU: %v", rep.Faults)
	}
	if !c.VM("a").VCPUs[1].Degraded {
		t.Fatal("slow vCPU not degraded")
	}
}

// TestBackoffDelayBounds pins the backoff arithmetic: exponential
// doubling from RetryBackoffUs, capped at RetryBackoffMaxUs, jittered
// into [base/2, base], clamped to the remaining step budget, zero
// outside a step, and deterministic per seed.
func TestBackoffDelayBounds(t *testing.T) {
	mk := func(seed int64) *Controller {
		cfg := DefaultConfig()
		cfg.RetryBackoffUs = 100
		cfg.RetryBackoffMaxUs = 1_000
		cfg.Seed = seed
		h := newFakeHost()
		return mustController(t, h, cfg)
	}

	c := mk(42)
	// Outside a Step there is no budget window: no sleeping during
	// construction or restore.
	if d := c.backoffDelay(1); d != 0 {
		t.Fatalf("backoff outside a step = %v, want 0", d)
	}

	c.stepT0 = time.Now()
	c.stepBudget = time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		base := int64(100) << uint(attempt-1)
		if base > 1_000 {
			base = 1_000
		}
		d := c.backoffDelay(attempt)
		lo := time.Duration(base/2) * time.Microsecond
		hi := time.Duration(base) * time.Microsecond
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}

	// The step budget clamps the sleep so backoff cannot blow the
	// watchdog deadline.
	c.stepBudget = 50 * time.Microsecond
	c.stepT0 = time.Now()
	if d := c.backoffDelay(5); d > 50*time.Microsecond {
		t.Fatalf("delay %v exceeds the 50us step budget", d)
	}

	// Same seed, same jitter sequence.
	a, b := mk(7), mk(7)
	a.stepT0, b.stepT0 = time.Now(), time.Now()
	a.stepBudget, b.stepBudget = time.Second, time.Second
	for i := 1; i <= 20; i++ {
		da, db := a.backoffDelay(1+i%4), b.backoffDelay(1+i%4)
		if da != db {
			t.Fatalf("draw %d: %v vs %v with the same seed", i, da, db)
		}
	}
	// Different seed, different sequence (somewhere in 20 draws).
	dif := mk(8)
	dif.stepT0, dif.stepBudget = time.Now(), time.Second
	same := true
	x, y := mk(7), mk(8)
	x.stepT0, x.stepBudget = time.Now(), time.Second
	y.stepT0, y.stepBudget = time.Now(), time.Second
	for i := 0; i < 20; i++ {
		if x.backoffDelay(3) != y.backoffDelay(3) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 drew identical jitter for 20 draws")
	}
}

// TestBackoffDisabledByDefault: the default configuration retries
// immediately, so fault-heavy steps keep their pre-backoff latency.
func TestBackoffDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.RetryBackoffUs != 0 || cfg.CallBudgetUs != 0 || cfg.BreakerThreshold != 0 {
		t.Fatalf("robustness knobs armed by default: %+v", cfg)
	}
	h := newFakeHost()
	c := mustController(t, h, cfg)
	c.stepT0 = time.Now()
	c.stepBudget = time.Second
	if d := c.backoffDelay(3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
}

// TestBreakerSnapshotRoundTrip: the breaker state survives JSON encode →
// decode bit-exactly, and a restored controller resumes the quarantine
// mid-window: the VM is re-admitted on exactly the same step schedule
// the dead incarnation would have used.
func TestBreakerSnapshotRoundTrip(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 1, 1200)
	inner.addVM("b", 1, 600)
	fh := platform.WithFaults(inner, 11)
	cfg := breakerConfig()
	c := mustController(t, fh, cfg)
	warmUp(t, c, inner, 3, 300_000)

	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vm == "a" },
	})
	// Trip (3 steps) plus one quarantined step: OpenLeft is 1 of 2.
	warmUp(t, c, inner, 4, 300_000)
	if st := c.VM("a").Breaker; st.State != BreakerOpen || st.OpenLeft != 1 {
		t.Fatalf("breaker mid-quarantine = %+v", st)
	}

	snap := c.Snapshot()
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := decoded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("snapshot with breaker state does not round-trip bit-identically")
	}

	// Kill and restore. The fault plan is still armed, but the restored
	// controller must not read the quarantined VM anyway.
	c2 := mustController(t, fh, cfg)
	if _, err := c2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if st := c2.VM("a").Breaker; st.State != BreakerOpen || st.OpenLeft != 1 {
		t.Fatalf("restored breaker = %+v, want open with 1 step left", st)
	}
	// One more step drains the quarantine window; then the host
	// recovers and two probes re-admit — the same schedule the dead
	// controller was on.
	warmUp(t, c2, inner, 1, 300_000)
	if st := c2.VM("a").Breaker; st.State != BreakerHalfOpen {
		t.Fatalf("restored breaker after final quarantine step = %+v", st)
	}
	fh.Clear(platform.SiteUsage)
	warmUp(t, c2, inner, 2, 300_000)
	if st := c2.VM("a").Breaker; st.State != BreakerClosed {
		t.Fatalf("restored breaker after probes = %+v", st)
	}
	if v := c2.VM("a").VCPUs[0]; v.Degraded || v.FailedSteps != 0 {
		t.Fatalf("restored vCPU not re-admitted: %+v", v)
	}
}

// TestRecoveryStreakSurvivesRestore (the checkpoint/restore ×
// degradation satellite): a vCPU partway through its RecoverySteps
// clean streak keeps the streak across a kill-and-restore while a fault
// plan is still active elsewhere — restore must not reset CleanSteps,
// or recovery latency would silently double on every crash.
func TestRecoveryStreakSurvivesRestore(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 1, 1200)
	inner.addVM("b", 1, 600)
	fh := platform.WithFaults(inner, 11)
	cfg := DefaultConfig()
	cfg.HostRetries = 0
	cfg.RecoverySteps = 3
	c := mustController(t, fh, cfg)
	warmUp(t, c, inner, 3, 300_000)

	// Degrade a/0 for two steps, then let it run clean — but keep a
	// fault plan active against b/0 the whole time, including across
	// the restore boundary.
	fh.MustPlan(platform.SiteUsage, platform.FaultPlan{
		Count: 2,
		Match: func(vm string, vcpu int) bool { return vm == "a" },
	})
	fh.MustPlan(platform.SiteSetMax, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vm == "b" },
	})
	warmUp(t, c, inner, 2, 300_000) // a degraded twice
	warmUp(t, c, inner, 1, 300_000) // first clean step for a
	v := c.VM("a").VCPUs[0]
	if v.Degraded || v.FailedSteps != 2 || v.CleanSteps != 1 {
		t.Fatalf("pre-checkpoint streak = %+v, want FailedSteps 2, CleanSteps 1", v)
	}

	snap, err := c.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustController(t, fh, cfg)
	if _, err := c2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	v2 := c2.VM("a").VCPUs[0]
	if v2.FailedSteps != 2 || v2.CleanSteps != 1 {
		t.Fatalf("restore reset the streak: FailedSteps %d, CleanSteps %d, want 2, 1",
			v2.FailedSteps, v2.CleanSteps)
	}

	// Exactly 2 more clean steps (not 3) complete the streak: recovery
	// latency is preserved across the crash.
	warmUp(t, c2, inner, 1, 300_000)
	if rep := c2.LastReport(); rep.Recovered != 0 {
		t.Fatalf("recovered one step early: %s", rep.String())
	}
	warmUp(t, c2, inner, 1, 300_000)
	rep := c2.LastReport()
	if rep.Recovered != 1 {
		t.Fatalf("streak not completed on schedule: %s", rep.String())
	}
	if v2 := c2.VM("a").VCPUs[0]; v2.FailedSteps != 0 || v2.CleanSteps != 0 {
		t.Fatalf("post-recovery counters = %+v", v2)
	}
	// The b-side plan fired across the boundary: the fault environment
	// really was live the whole time.
	if fh.Injected(platform.SiteSetMax) == 0 {
		t.Fatal("the standing fault plan never fired; the test lost its premise")
	}
}
