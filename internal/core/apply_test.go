package core

import (
	"testing"

	"vfreq/internal/platform"
)

// batchHost layers a counting BatchQuotaWriter over fakeHost, forwarding
// each entry through SetMax so the write maps and the applied counter
// keep working.
type batchHost struct {
	*fakeHost
	batches int
	entries int
}

func (b *batchHost) BatchSetMax(vm string, quotas []platform.VCPUQuota) error {
	b.batches++
	var firstErr error
	for i := range quotas {
		q := &quotas[i]
		b.entries++
		q.Err = b.SetMax(vm, q.VCPU, q.QuotaUs, q.PeriodUs)
		if q.Err != nil && firstErr == nil {
			firstErr = q.Err
		}
	}
	return firstErr
}

var _ platform.BatchQuotaWriter = (*batchHost)(nil)

// steadyState steps a controller with a constant per-vCPU consumption
// until the caps converge (the stable estimator branch recalibrates to
// just above the consumption within a few periods).
func steadyState(t *testing.T, ctrl *Controller, h *fakeHost, vms map[string]int, u int64, steps int) {
	t.Helper()
	for s := 0; s < steps; s++ {
		for name, vcpus := range vms {
			for j := 0; j < vcpus; j++ {
				h.consume(name, j, u)
			}
		}
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplySkipsCleanQuotas is the incremental-apply acceptance test on
// the serial (no batch capability) path: once the estimates stabilise,
// a steady-state step must issue zero SetMax writes, and a changed
// estimate must write again.
func TestApplySkipsCleanQuotas(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 2, 1200)
	ctrl := mustController(t, h, DefaultConfig())
	steadyState(t, ctrl, h, map[string]int{"a": 2}, 400_000, 8)

	applied := h.applied
	steadyState(t, ctrl, h, map[string]int{"a": 2}, 400_000, 5)
	if h.applied != applied {
		t.Fatalf("steady state issued %d writes over 5 steps, want 0", h.applied-applied)
	}

	// A consumption spike dirties a/0's quota; a/1 stays clean.
	before := h.setMax[key("a", 0)]
	h.consume("a", 0, 800_000)
	h.consume("a", 1, 400_000)
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	if h.applied != applied+1 {
		t.Fatalf("spike step issued %d writes, want exactly 1", h.applied-applied)
	}
	if after := h.setMax[key("a", 0)]; after == before {
		t.Fatalf("a/0 quota unchanged after spike: %v", after)
	}
}

// TestApplyBatchedSkipsCleanQuotas is the same acceptance on the batched
// path: a steady-state step must not even call BatchSetMax (the dirty
// set is empty), and a single dirtied vCPU must produce one batch with
// one entry.
func TestApplyBatchedSkipsCleanQuotas(t *testing.T) {
	fh := newFakeHost()
	fh.addVM("a", 2, 1200)
	h := &batchHost{fakeHost: fh}
	ctrl := mustController(t, h, DefaultConfig())
	if ctrl.batch == nil {
		t.Fatal("batch capability not detected")
	}
	steadyState(t, ctrl, fh, map[string]int{"a": 2}, 400_000, 8)

	batches, entries, applied := h.batches, h.entries, fh.applied
	steadyState(t, ctrl, fh, map[string]int{"a": 2}, 400_000, 5)
	if h.batches != batches || fh.applied != applied {
		t.Fatalf("steady state issued %d batches / %d writes over 5 steps, want 0",
			h.batches-batches, fh.applied-applied)
	}

	fh.consume("a", 0, 800_000)
	fh.consume("a", 1, 400_000)
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	if h.batches != batches+1 || h.entries != entries+1 {
		t.Fatalf("spike step issued %d batches with %d entries, want 1 batch, 1 entry",
			h.batches-batches, h.entries-entries)
	}
}

// TestApplyBatchedMatchesSerial runs a serial-path and a batched-path
// controller through the same workload and requires identical quota maps
// and write counts — the batch is a transport optimisation, not a
// semantic change.
func TestApplyBatchedMatchesSerial(t *testing.T) {
	hs := newFakeHost()
	hb := &batchHost{fakeHost: newFakeHost()}
	for _, h := range []*fakeHost{hs, hb.fakeHost} {
		h.addVM("a", 2, 1200)
		h.addVM("b", 3, 900)
	}
	cfg := DefaultConfig()
	cfg.BurstFraction = 0.25
	serial := mustController(t, hs, cfg)
	batched := mustController(t, hb, cfg)
	for s := int64(0); s < 12; s++ {
		for i, name := range []string{"a", "b"} {
			for j := 0; j < 2+i; j++ {
				u := (s*83_000 + int64(i)*41_000 + int64(j)*29_000) % 1_000_000
				hs.consume(name, j, u)
				hb.consume(name, j, u)
			}
		}
		if err := serial.Step(); err != nil {
			t.Fatal(err)
		}
		if err := batched.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(hs.setMax) != len(hb.setMax) {
		t.Fatalf("quota map sizes diverged: serial %d, batched %d", len(hs.setMax), len(hb.setMax))
	}
	for k, v := range hs.setMax {
		if hb.setMax[k] != v {
			t.Fatalf("quota for %s: serial %v, batched %v", k, v, hb.setMax[k])
		}
	}
	for k, v := range hs.setBurst {
		if hb.setBurst[k] != v {
			t.Fatalf("burst for %s: serial %v, batched %v", k, v, hb.setBurst[k])
		}
	}
	if hs.applied != hb.fakeHost.applied {
		t.Fatalf("write counts diverged: serial %d, batched %d", hs.applied, hb.fakeHost.applied)
	}
}

// TestApplyBatchedPartialFailure injects a per-entry fault into the
// batched write: the failed vCPU alone degrades with an apply/setmax
// fault and its dirty flag survives (the cache is invalidated), so the
// quota is rewritten on the next clean step even though its cap never
// changed; the other entries of the same batch land normally.
func TestApplyBatchedPartialFailure(t *testing.T) {
	inner := newFakeHost()
	inner.addVM("a", 3, 1200)
	fh := platform.WithFaults(inner, 1)
	cfg := DefaultConfig()
	cfg.HostRetries = 0
	ctrl := mustController(t, fh, cfg)
	if ctrl.batch == nil {
		t.Fatal("FaultyHost should provide the batch capability")
	}
	steadyState(t, ctrl, inner, map[string]int{"a": 3}, 400_000, 8)

	fh.MustPlan(platform.SiteBatchSetMax, platform.FaultPlan{
		Persistent: true,
		Match:      func(vm string, vcpu int) bool { return vcpu == 1 },
	})
	// Spike every vCPU so the whole batch is dirty.
	for j := 0; j < 3; j++ {
		inner.consume("a", j, 800_000)
	}
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	rep := ctrl.LastReport()
	if rep.DegradedVCPUs != 1 {
		t.Fatalf("degraded vCPUs = %d, want 1: %s", rep.DegradedVCPUs, rep.String())
	}
	found := false
	for _, f := range rep.Faults {
		if f.Stage == "apply" && f.Op == "setmax" && f.VM == "a" && f.VCPU == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no apply/setmax fault for a/1 in report: %s", reportSummary(rep))
	}
	// The healthy entries of the same batch landed.
	want := ctrl.VM("a").VCPUs[0].CapUs * cfg.CgroupPeriodUs / cfg.PeriodUs
	if got := inner.setMax[key("a", 0)]; got[0] != want {
		t.Fatalf("a/0 quota = %v, want %d", got, want)
	}
	stale := inner.setMax[key("a", 1)]

	// Plan cleared: the next step recovers a/1 and must rewrite its
	// quota — the failed write dropped the cache, so the entry is still
	// dirty even though the cap is unchanged.
	fh.Clear(platform.SiteBatchSetMax)
	steadyState(t, ctrl, inner, map[string]int{"a": 3}, 800_000, 2)
	if ctrl.VM("a").VCPUs[1].Degraded {
		t.Fatal("a/1 still degraded after the plan cleared")
	}
	fresh := inner.setMax[key("a", 1)]
	wantQ := ctrl.VM("a").VCPUs[1].CapUs * cfg.CgroupPeriodUs / cfg.PeriodUs
	if fresh == stale && fresh[0] != wantQ {
		t.Fatalf("a/1 quota never rewritten after recovery: %v (cap wants %d)", fresh, wantQ)
	}
	if fresh[0] != wantQ {
		t.Fatalf("a/1 quota = %v, want %d", fresh, wantQ)
	}
}

// TestDepartureWhileDegradedReleasesQuota is the satellite bugfix pin:
// a VM departing while one of its vCPUs is degraded must still get its
// quotas cleared (ClearMax runs for every vCPU, degraded or not) and
// its cached last-applied state dropped with the VMState, so a
// re-admitted VM under the same name starts with a fresh write-through
// instead of inheriting a stale cap.
func TestDepartureWhileDegradedReleasesQuota(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 2, 1200)
	h.addVM("b", 1, 1200)
	ctrl := mustController(t, h, DefaultConfig())
	steadyState(t, ctrl, h, map[string]int{"a": 2, "b": 1}, 400_000, 6)

	// Kill a/1's usage counter: the monitor read fails and degrades it.
	delete(h.usage, key("a", 1))
	h.consume("a", 0, 400_000)
	h.consume("b", 0, 400_000)
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	if !ctrl.VM("a").VCPUs[1].Degraded {
		t.Fatal("a/1 not degraded after its usage counter vanished")
	}

	// Depart VM a while a/1 is degraded.
	h.vms = h.vms[1:] // drop "a", keep "b"
	h.consume("b", 0, 400_000)
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	cleared := map[string]bool{}
	for _, k := range h.cleared {
		cleared[k] = true
	}
	if !cleared[key("a", 0)] || !cleared[key("a", 1)] {
		t.Fatalf("departure did not clear every quota (degraded included): cleared %v", h.cleared)
	}
	if _, ok := h.setMax[key("a", 1)]; ok {
		t.Fatal("a/1 still holds a quota after departure")
	}

	// Re-admit the same name: the controller must write fresh quotas
	// (the new VCPUState starts with an invalid applied cache).
	h.addVM("a", 2, 1200)
	steadyState(t, ctrl, h, map[string]int{"a": 2, "b": 1}, 400_000, 3)
	if q, ok := h.setMax[key("a", 1)]; !ok || q[0] <= 0 {
		t.Fatalf("re-admitted a/1 got no fresh quota: %v (present %v)", q, ok)
	}
}

// TestApplyRewritesAfterCounterReset pins the monitor-side invalidation:
// a usage counter reset (VM restart) rebuilds the cgroup unlimited, so
// the next apply must write through even when the cap is unchanged. The
// VM is driven to an idle floor first, where the reset step computes the
// exact same cap as the steady state — only the dropped cache forces
// the rewrite.
func TestApplyRewritesAfterCounterReset(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 1, 1200)
	ctrl := mustController(t, h, DefaultConfig())
	// One active period, then idle until the history is all zeros and
	// the estimate has snapped to the MinQuotaUs floor.
	steadyState(t, ctrl, h, map[string]int{"a": 1}, 400_000, 2)
	steadyState(t, ctrl, h, map[string]int{"a": 1}, 0, 10)
	applied := h.applied
	steadyState(t, ctrl, h, map[string]int{"a": 1}, 0, 2)
	if h.applied != applied {
		t.Fatalf("idle floor not steady: %d writes", h.applied-applied)
	}
	capBefore := ctrl.VM("a").VCPUs[0].CapUs

	// Reset the cumulative counter below the previous reading: the delta
	// clamps to zero, so the cap stays at the floor — but the cache must
	// drop and the quota be rewritten.
	h.usage[key("a", 0)] = 1
	if err := ctrl.Step(); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.VM("a").VCPUs[0].CapUs; got != capBefore {
		t.Fatalf("cap moved across the reset (%d → %d); the test lost its teeth", capBefore, got)
	}
	if h.applied == applied {
		t.Fatal("no write-through after a usage counter reset")
	}
}
