package core

import (
	"encoding/json"
	"testing"
)

func TestSnapshotContents(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 2, 1200)
	h.addVM("b", 1, 600)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	h.consume("a", 0, 300_000)
	h.consume("a", 1, 500_000)
	h.consume("b", 0, 100_000)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Step != 2 || s.Node != "fake" || s.Cores != 4 || s.MaxFreqMHz != 2400 {
		t.Fatalf("header wrong: %+v", s)
	}
	if s.CapacityUs != 4_000_000 {
		t.Fatalf("capacity = %d", s.CapacityUs)
	}
	// 2×500000 + 1×250000.
	if s.TotalGuaranteeUs != 1_250_000 {
		t.Fatalf("total guarantee = %d", s.TotalGuaranteeUs)
	}
	if len(s.VMs) != 2 || s.VMs[0].Name != "a" || len(s.VMs[0].VCPUs) != 2 {
		t.Fatalf("VM list wrong: %+v", s.VMs)
	}
	if s.VMs[0].VCPUs[0].ConsumedUs != 300_000 {
		t.Fatalf("consumed = %d", s.VMs[0].VCPUs[0].ConsumedUs)
	}
	var totalCap int64
	for _, vm := range s.VMs {
		for _, v := range vm.VCPUs {
			totalCap += v.CapUs
		}
	}
	if s.TotalCapUs != totalCap {
		t.Fatal("TotalCapUs inconsistent")
	}
	if s.MarketUs != s.CapacityUs-totalCap {
		t.Fatalf("market = %d, want %d", s.MarketUs, s.CapacityUs-totalCap)
	}
	if s.StepMicros < 0 || s.MonitorMicros < 0 {
		t.Fatal("timings negative")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	h := newFakeHost()
	c := mustController(t, h, DefaultConfig())
	h.addVM("a", 1, 1200)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Node != "fake" || len(back.VMs) != 1 || back.VMs[0].Name != "a" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
