package core

import (
	"vfreq/internal/metrics"
)

// stageNames orders the per-stage latency series; index matches the
// stageDurations layout below.
var stageNames = [7]string{
	"monitor", "estimate", "enforce", "auction", "distribute", "apply", "total",
}

// ctrlMetrics holds the controller's pre-interned instruments. Every
// pointer is resolved once at arm time — recording is a handful of
// atomic adds per Step, nothing else, which is what keeps
// TestStepZeroAlloc green with the registry armed.
type ctrlMetrics struct {
	stageUs [7]*metrics.Histogram

	steps          *metrics.Counter
	retries        *metrics.Counter
	faults         *metrics.Counter
	degradedSteps  *metrics.Counter // vCPU-steps spent degraded
	recovered      *metrics.Counter
	breakerTrips   *metrics.Counter
	overruns       *metrics.Counter
	panics         *metrics.Counter
	skippedPeriods *metrics.Counter
	checkpoints    *metrics.Counter

	vms         *metrics.Gauge
	vcpus       *metrics.Gauge
	degraded    *metrics.Gauge
	openVMs     *metrics.Gauge
	halfOpenVMs *metrics.Gauge
}

// ArmMetrics registers the controller's instruments in reg and starts
// recording every subsequent Step into them. Arm once, before the
// control loop starts; arming mid-run is safe but the counters then
// only cover later Steps. A nil reg disarms.
func (c *Controller) ArmMetrics(reg *metrics.Registry) {
	if reg == nil {
		c.met = nil
		return
	}
	m := &ctrlMetrics{}
	for i, name := range stageNames {
		m.stageUs[i] = reg.Histogram("vfreq_step_stage_us",
			"Per-stage wall-clock latency of the control loop, microseconds.",
			metrics.DefaultLatencyBucketsUs, metrics.Label{Key: "stage", Value: name})
	}
	m.steps = reg.Counter("vfreq_steps_total", "Completed control iterations.")
	m.retries = reg.Counter("vfreq_retries_total", "Host operations that needed an in-step retry.")
	m.faults = reg.Counter("vfreq_faults_total", "Recorded per-vCPU/per-VM faults (including dropped).")
	m.degradedSteps = reg.Counter("vfreq_degraded_vcpu_steps_total", "vCPU-steps spent degraded on last-known-good caps.")
	m.recovered = reg.Counter("vfreq_recovered_vcpus_total", "vCPUs whose failure counter reset after clean steps.")
	m.breakerTrips = reg.Counter("vfreq_breaker_trips_total", "Circuit breakers that opened or re-opened.")
	m.overruns = reg.Counter("vfreq_step_overruns_total", "Steps whose wall-clock time crossed the deadline budget.")
	m.panics = reg.Counter("vfreq_step_panics_total", "Stage panics recovered into degraded steps.")
	m.skippedPeriods = reg.Counter("vfreq_skipped_periods_total", "Whole control periods missed by overrunning steps.")
	m.checkpoints = reg.Counter("vfreq_checkpoints_total", "Checkpoints persisted to the attached store.")
	m.vms = reg.Gauge("vfreq_vms", "VMs tracked after reconciliation.")
	m.vcpus = reg.Gauge("vfreq_vcpus", "Controlled vCPUs.")
	m.degraded = reg.Gauge("vfreq_degraded_vcpus", "vCPUs currently degraded.")
	m.openVMs = reg.Gauge("vfreq_open_vms", "VMs quarantined behind an open breaker.")
	m.halfOpenVMs = reg.Gauge("vfreq_halfopen_vms", "VMs in the probing half-open breaker state.")
	c.met = m
}

// recordStep folds one finished StepReport into the instruments.
// Called at the end of every Step while armed; must stay free of
// allocations and locks.
func (m *ctrlMetrics) recordStep(rep *StepReport) {
	m.stageUs[0].Observe(rep.Timings.Monitor.Microseconds())
	m.stageUs[1].Observe(rep.Timings.Estimate.Microseconds())
	m.stageUs[2].Observe(rep.Timings.Enforce.Microseconds())
	m.stageUs[3].Observe(rep.Timings.Auction.Microseconds())
	m.stageUs[4].Observe(rep.Timings.Distribute.Microseconds())
	m.stageUs[5].Observe(rep.Timings.Apply.Microseconds())
	m.stageUs[6].Observe(rep.Timings.Total.Microseconds())

	m.steps.Inc()
	m.retries.Add(int64(rep.Retries))
	m.faults.Add(int64(rep.FaultCount()))
	m.degradedSteps.Add(int64(rep.DegradedVCPUs))
	m.recovered.Add(int64(rep.Recovered))
	m.breakerTrips.Add(int64(rep.BreakerTrips))
	if rep.Overrun {
		m.overruns.Inc()
	}
	if rep.Panicked {
		m.panics.Inc()
	}
	m.skippedPeriods.Add(rep.SkippedPeriods)
	if rep.Checkpointed {
		m.checkpoints.Inc()
	}

	m.vms.Set(int64(rep.VMs))
	m.vcpus.Set(int64(rep.VCPUs))
	m.degraded.Set(int64(rep.DegradedVCPUs))
	m.openVMs.Set(int64(rep.OpenVMs))
	m.halfOpenVMs.Set(int64(rep.HalfOpenVMs))
}
