package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"vfreq/internal/platform"
)

// stubStore is an in-memory checkpoint store with a switchable failure.
type stubStore struct {
	data  []byte
	saves int
	fail  error
}

func (s *stubStore) Save(b []byte) error {
	if s.fail != nil {
		return s.fail
	}
	s.saves++
	s.data = append([]byte(nil), b...)
	return nil
}

func (s *stubStore) Load() ([]byte, error) {
	if s.data == nil {
		return nil, platform.ErrNoCheckpoint
	}
	return s.data, nil
}

// quotaHost extends fakeHost with the QuotaReader capability, serving
// back whatever SetMax recorded (or "max" for untouched vCPUs).
type quotaHost struct {
	*fakeHost
}

func (q *quotaHost) ReadMax(vm string, j int) (int64, int64, error) {
	if v, ok := q.setMax[key(vm, j)]; ok {
		return v[0], v[1], nil
	}
	return platform.NoQuota, 100_000, nil
}

// workSteps drives n steps with per-VM consumption patterns that exercise
// credits, triggers and the auction.
func workSteps(t *testing.T, h *fakeHost, c *Controller, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, info := range h.vms {
			for j := 0; j < info.VCPUs; j++ {
				// Deterministic but varied: ramps for one VM, idles the other.
				h.consume(info.Name, j, int64(50_000*(i+1)+100_000*j)%900_000)
			}
		}
		if err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// scrubVolatile zeroes the snapshot fields that describe the last Step's
// execution rather than the controller state (timings, fault counts) so
// two state-identical controllers compare equal.
func scrubVolatile(s *Snapshot) {
	s.StepMicros, s.MonitorMicros = 0, 0
	s.DegradedVCPUs, s.Faults = 0, 0
}

func TestCheckpointRoundTripExact(t *testing.T) {
	h := newFakeHost()
	h.addVM("web", 2, 500)
	h.addVM("batch", 4, 1200)
	c := mustController(t, h, DefaultConfig())
	workSteps(t, h, c, 7)

	snap := c.Snapshot()
	if snap.Version != SnapshotVersion || snap.Step != 7 {
		t.Fatalf("snapshot header = v%d step %d", snap.Version, snap.Step)
	}
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("checkpoint not round-trippable:\nwrote %+v\nread  %+v", snap, got)
	}
}

// Satellite: MarketUs in the snapshot is Eq. 6 — the unallocated
// capacity after base guarantees, never negative even oversubscribed.
func TestSnapshotMarketUsesEq6(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 2, 1800)
	c := mustController(t, h, DefaultConfig())
	workSteps(t, h, c, 3)
	s := c.Snapshot()
	if s.MarketUs != c.market() {
		t.Fatalf("MarketUs = %d, market() = %d", s.MarketUs, c.market())
	}
	want := c.CapacityUs()
	for _, st := range c.VMs() {
		for _, v := range st.VCPUs {
			want -= v.CapUs
		}
	}
	if want < 0 {
		want = 0
	}
	if s.MarketUs != want {
		t.Fatalf("MarketUs = %d, want Eq.6 value %d", s.MarketUs, want)
	}
}

func TestRestoreRebuildsIdenticalController(t *testing.T) {
	h := newFakeHost()
	h.addVM("web", 2, 500)
	h.addVM("batch", 4, 1200)
	cfg := DefaultConfig()
	c1 := mustController(t, h, cfg)
	workSteps(t, h, c1, 7)

	snap := c1.Snapshot()
	c2 := mustController(t, h, cfg)
	rr, err := c2.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Adopted) != 2 || len(rr.ColdStarted) != 0 || len(rr.Dropped) != 0 || len(rr.Deferred) != 0 {
		t.Fatalf("restore report: %s", rr.String())
	}
	if rr.CheckpointStep != 7 || c2.Steps() != 7 {
		t.Fatalf("restored step counter = %d (report %d), want 7", c2.Steps(), rr.CheckpointStep)
	}
	s1, s2 := c1.Snapshot(), c2.Snapshot()
	scrubVolatile(&s1)
	scrubVolatile(&s2)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("restored state differs:\nlive     %+v\nrestored %+v", s1, s2)
	}

	// Both controllers now observe the same host: they must make identical
	// decisions step for step (the acceptance criterion's convergence, at
	// the white-box level — see restore_sim_test.go for the sim version).
	for i := 0; i < 5; i++ {
		h.consume("web", 0, 300_000)
		h.consume("batch", 2, 700_000)
		if err := c1.Step(); err != nil {
			t.Fatal(err)
		}
		if err := c2.Step(); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"web", "batch"} {
			v1, v2 := c1.VM(name), c2.VM(name)
			if v1.CreditUs != v2.CreditUs {
				t.Fatalf("step %d: %s credit diverged: %d vs %d", i, name, v1.CreditUs, v2.CreditUs)
			}
			for j := range v1.VCPUs {
				if v1.VCPUs[j].CapUs != v2.VCPUs[j].CapUs {
					t.Fatalf("step %d: %s/vcpu%d cap diverged: %d vs %d",
						i, name, j, v1.VCPUs[j].CapUs, v2.VCPUs[j].CapUs)
				}
			}
		}
	}
}

func TestRestoreRevalidatesAgainstLiveHost(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 1, 500)
	cfg := DefaultConfig()
	c := mustController(t, h, cfg)
	workSteps(t, h, c, 2)
	snap := c.Snapshot()

	t.Run("used controller", func(t *testing.T) {
		if _, err := c.Restore(snap); err == nil {
			t.Fatal("restore into a stepped controller accepted")
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		bad := snap
		bad.Version = 1
		if _, err := mustController(t, h, cfg).Restore(bad); err == nil {
			t.Fatal("old version accepted")
		}
	})
	t.Run("node shape mismatch", func(t *testing.T) {
		bad := snap
		bad.Cores = 128
		if _, err := mustController(t, h, cfg).Restore(bad); err == nil {
			t.Fatal("foreign node shape accepted")
		}
	})
	t.Run("node name mismatch", func(t *testing.T) {
		bad := snap
		bad.Node = "other-node"
		if _, err := mustController(t, h, cfg).Restore(bad); err == nil {
			t.Fatal("foreign node name accepted")
		}
	})
	t.Run("period mismatch", func(t *testing.T) {
		other := cfg
		other.PeriodUs = 500_000
		other.WindowUs = 5_000
		if _, err := mustController(t, h, other).Restore(snap); err == nil {
			t.Fatal("period change accepted")
		}
	})
}

func TestRestoreDropsAndColdStarts(t *testing.T) {
	// Incarnation 1 ran with VMs a and gone.
	h1 := newFakeHost()
	h1.addVM("a", 2, 500)
	h1.addVM("gone", 1, 1200)
	cfg := DefaultConfig()
	c1 := mustController(t, h1, cfg)
	workSteps(t, h1, c1, 4)
	snap := c1.Snapshot()

	// While the controller was down, gone departed and fresh arrived.
	h2 := newFakeHost()
	h2.addVM("a", 2, 500)
	h2.addVM("fresh", 1, 1800)
	c2 := mustController(t, h2, cfg)
	rr, err := c2.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Adopted) != 1 || rr.Adopted[0] != "a" {
		t.Fatalf("Adopted = %v", rr.Adopted)
	}
	if len(rr.Dropped) != 1 || rr.Dropped[0] != "gone" {
		t.Fatalf("Dropped = %v", rr.Dropped)
	}
	if len(rr.ColdStarted) != 1 || rr.ColdStarted[0] != "fresh" {
		t.Fatalf("ColdStarted = %v", rr.ColdStarted)
	}
	// a kept its wallet and history; fresh starts empty.
	if got := c2.VM("a").CreditUs; got != c1.VM("a").CreditUs {
		t.Fatalf("adopted credit = %d, want %d", got, c1.VM("a").CreditUs)
	}
	if got := c2.VM("a").VCPUs[0].Hist.Len(); got != c1.VM("a").VCPUs[0].Hist.Len() {
		t.Fatalf("adopted history length = %d", got)
	}
	if c2.VM("fresh").CreditUs != 0 || c2.VM("fresh").VCPUs[0].Hist.Len() != 0 {
		t.Fatal("cold-started VM inherited state")
	}
	if c2.VM("gone") != nil {
		t.Fatal("departed VM restored")
	}
	// The restored controller keeps stepping over the new population.
	if err := c2.Step(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreAdoptsForeignQuotas(t *testing.T) {
	cfg := DefaultConfig()

	t.Run("cold start adopts leftover quota", func(t *testing.T) {
		h := &quotaHost{fakeHost: newFakeHost()}
		h.addVM("a", 1, 1200)
		// A previous incarnation (or operator) left a 30 ms / 100 ms quota.
		h.setMax[key("a", 0)] = [2]int64{30_000, 100_000}
		c := mustController(t, h, cfg)
		rr, err := c.Restore(Snapshot{
			Version: SnapshotVersion, Cores: 4, MaxFreqMHz: 2400, PeriodUs: cfg.PeriodUs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rr.AdoptedQuotas != 1 {
			t.Fatalf("AdoptedQuotas = %d, want 1", rr.AdoptedQuotas)
		}
		// 30 ms per 100 ms cgroup period → 300 ms per 1 s control period.
		if got := c.VM("a").VCPUs[0].CapUs; got != 300_000 {
			t.Fatalf("adopted cap = %d, want 300000", got)
		}
	})

	t.Run("matching quota is not adopted", func(t *testing.T) {
		h := &quotaHost{fakeHost: newFakeHost()}
		h.addVM("a", 1, 1200)
		c1 := mustController(t, h, cfg)
		workSteps(t, h.fakeHost, c1, 3)
		snap := c1.Snapshot()
		c2 := mustController(t, h, cfg)
		rr, err := c2.Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		if rr.AdoptedQuotas != 0 {
			t.Fatalf("AdoptedQuotas = %d, want 0 (live quota matches checkpoint)", rr.AdoptedQuotas)
		}
		if got, want := c2.VM("a").VCPUs[0].CapUs, c1.VM("a").VCPUs[0].CapUs; got != want {
			t.Fatalf("cap = %d, want checkpoint value %d", got, want)
		}
	})

	t.Run("diverged quota wins over checkpoint", func(t *testing.T) {
		h := &quotaHost{fakeHost: newFakeHost()}
		h.addVM("a", 1, 1200)
		c1 := mustController(t, h, cfg)
		workSteps(t, h.fakeHost, c1, 3)
		snap := c1.Snapshot()
		// Someone rewrote the quota while the controller was down.
		h.setMax[key("a", 0)] = [2]int64{77_000, 100_000}
		c2 := mustController(t, h, cfg)
		rr, err := c2.Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		if rr.AdoptedQuotas != 1 {
			t.Fatalf("AdoptedQuotas = %d, want 1", rr.AdoptedQuotas)
		}
		if got := c2.VM("a").VCPUs[0].CapUs; got != 770_000 {
			t.Fatalf("cap = %d, want 770000 (live quota scaled to control period)", got)
		}
	})
}

func TestCheckpointEveryPersistsAndFaults(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 1, 500)
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 2
	c := mustController(t, h, cfg)
	st := &stubStore{}
	c.AttachStore(st)

	for i := 1; i <= 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		wantCk := i%2 == 0
		if got := c.LastReport().Checkpointed; got != wantCk {
			t.Fatalf("step %d: Checkpointed = %v, want %v", i, got, wantCk)
		}
	}
	if st.saves != 2 {
		t.Fatalf("saves = %d, want 2 (steps 2 and 4)", st.saves)
	}
	// The stored bytes decode to the step-4 state.
	snap, err := DecodeSnapshot(st.data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 4 {
		t.Fatalf("stored checkpoint step = %d, want 4", snap.Step)
	}

	// A failing store degrades checkpointing, not the control loop.
	st.fail = errors.New("disk full")
	if err := c.Step(); err != nil {
		t.Fatalf("step with failing store: %v", err)
	}
	rep := c.LastReport()
	if rep.Checkpointed {
		t.Fatal("Checkpointed set despite save failure")
	}
	if rep.FaultCount() != 1 || rep.Faults[0].Stage != "checkpoint" {
		t.Fatalf("checkpoint fault not recorded: %s", rep.String())
	}

	// Explicit Checkpoint surfaces the error directly.
	if err := c.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded with failing store")
	}
	if err := mustController(t, h, cfg).Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded without a store")
	}
}

func TestRestoreFromStore(t *testing.T) {
	h := newFakeHost()
	h.addVM("a", 2, 500)
	cfg := DefaultConfig()
	c1 := mustController(t, h, cfg)
	workSteps(t, h, c1, 3)
	st := &stubStore{}
	c1.AttachStore(st)
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	c2 := mustController(t, h, cfg)
	rr, err := c2.RestoreFromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CheckpointStep != 3 || len(rr.Adopted) != 1 {
		t.Fatalf("restore report: %s", rr.String())
	}
	// The store is attached: the restored controller keeps checkpointing.
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A missing checkpoint is ErrNoCheckpoint, so callers cold-start.
	if _, err := mustController(t, h, cfg).RestoreFromStore(&stubStore{}); !errors.Is(err, platform.ErrNoCheckpoint) {
		t.Fatalf("empty store error = %v, want ErrNoCheckpoint", err)
	}
	// A corrupt checkpoint is a decode error, not a panic.
	if _, err := mustController(t, h, cfg).RestoreFromStore(&stubStore{data: []byte("{broken")}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// Satellite: FailedSteps holds through clean steps and resets only after
// RecoverySteps consecutive clean ones, reported as Recovered.
func TestRecoveryStepsHoldFailureCounter(t *testing.T) {
	h := newFlaky()
	h.addVM("a", 1, 500)
	cfg := DefaultConfig()
	cfg.HostRetries = 0
	cfg.RecoverySteps = 3
	c := mustController(t, h, cfg)

	for i := 0; i < 2; i++ { // register and warm up
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	h.failUsage = true
	for i := 0; i < 2; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	v := c.VM("a").VCPUs[0]
	if !v.Degraded || v.FailedSteps != 2 {
		t.Fatalf("after 2 faulty steps: degraded=%v failed=%d", v.Degraded, v.FailedSteps)
	}
	h.failUsage = false
	for i := 1; i <= 2; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if v.FailedSteps != 2 || v.CleanSteps != i {
			t.Fatalf("clean step %d: failed=%d clean=%d, counter reset too early", i, v.FailedSteps, v.CleanSteps)
		}
		if c.LastReport().Recovered != 0 {
			t.Fatalf("clean step %d: Recovered = %d too early", i, c.LastReport().Recovered)
		}
	}
	if err := c.Step(); err != nil { // third clean step
		t.Fatal(err)
	}
	if v.FailedSteps != 0 || v.CleanSteps != 0 {
		t.Fatalf("after 3 clean steps: failed=%d clean=%d, want reset", v.FailedSteps, v.CleanSteps)
	}
	if got := c.LastReport().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
}

// panicHost crashes one host call to exercise the step watchdog.
type panicHost struct {
	*fakeHost
	panicNow bool
}

func (p *panicHost) CoreFreqMHz(core int) (int64, error) {
	if p.panicNow {
		panic("corrupted freq table")
	}
	return p.fakeHost.CoreFreqMHz(core)
}

func TestStepRecoversFromPanic(t *testing.T) {
	h := &panicHost{fakeHost: newFakeHost()}
	h.addVM("a", 2, 500)
	c := mustController(t, h, DefaultConfig())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}

	h.panicNow = true
	if err := c.Step(); err != nil {
		t.Fatalf("panicked step returned error %v, want recovered nil", err)
	}
	rep := c.LastReport()
	if !rep.Panicked {
		t.Fatal("Panicked not set")
	}
	if rep.DegradedVCPUs != 2 || rep.HealthyVCPUs != 0 {
		t.Fatalf("report after panic: %s", rep.String())
	}
	if rep.FaultCount() == 0 || rep.Faults[0].Op != "panic" {
		t.Fatalf("panic fault not recorded: %s", rep.String())
	}
	if !strings.Contains(rep.String(), "panicked") {
		t.Fatalf("report string hides the panic: %s", rep.String())
	}
	if c.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2 (panicked step still completes)", c.Steps())
	}

	// The next clean step recovers every vCPU.
	h.panicNow = false
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rep = c.LastReport()
	if rep.Panicked || rep.DegradedVCPUs != 0 || rep.Recovered != 2 {
		t.Fatalf("recovery step report: %s (Recovered=%d)", rep.String(), rep.Recovered)
	}
}

// slowHost delays usage reads past the step deadline.
type slowHost struct {
	*fakeHost
	delay time.Duration
}

func (s *slowHost) UsageUs(vm string, j int) (int64, error) {
	time.Sleep(s.delay)
	return s.fakeHost.UsageUs(vm, j)
}

func TestStepDeadlineOverrun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeriodUs = 20_000 // 20 ms period, 10 ms deadline at the default 0.5
	cfg.CgroupPeriodUs = 10_000
	cfg.MinQuotaUs = 500
	cfg.WindowUs = 1_000

	h := &slowHost{fakeHost: newFakeHost(), delay: 25 * time.Millisecond}
	h.addVM("a", 1, 500)
	c := mustController(t, h, cfg)

	// Step 1 registers the VM: the initial usage read blows the deadline
	// during sync.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	rep := c.LastReport()
	if !rep.Overrun || rep.OverrunStage != "sync" {
		t.Fatalf("step 1 report: overrun=%v stage=%q, want sync overrun", rep.Overrun, rep.OverrunStage)
	}
	if rep.SkippedPeriods < 1 {
		t.Fatalf("SkippedPeriods = %d, want >= 1 (25 ms work, 20 ms period)", rep.SkippedPeriods)
	}
	if !strings.Contains(rep.String(), "overrun") {
		t.Fatalf("report string hides the overrun: %s", rep.String())
	}

	// Step 2 overruns in monitor, the stage the paper measures as dominant.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if rep = c.LastReport(); !rep.Overrun || rep.OverrunStage != "monitor" {
		t.Fatalf("step 2 report: overrun=%v stage=%q, want monitor overrun", rep.Overrun, rep.OverrunStage)
	}

	// Deadline disabled: slow but never reported as overrunning.
	cfg.StepDeadlineFrac = 0
	c2 := mustController(t, h, cfg)
	if err := c2.Step(); err != nil {
		t.Fatal(err)
	}
	if rep = c2.LastReport(); rep.Overrun {
		t.Fatalf("overrun reported with deadline disabled: %s", rep.String())
	}
}

// TestPeriodSleepClampsOverrun is the regression for the end-of-step
// sleep audit: a periodic caller sleeps PeriodSleep(spent) after each
// Step, and an overrunning step (spent ≥ p) must clamp the sleep to
// zero — a negative p − spent would return from time.Sleep immediately
// but double-count the overrun against the next period's usage delta in
// callers that derive the delta from the intended schedule.
func TestPeriodSleepClampsOverrun(t *testing.T) {
	c := mustController(t, newFakeHost(), DefaultConfig())
	period := time.Duration(c.Config().PeriodUs) * time.Microsecond
	if d := c.PeriodSleep(period / 4); d != period-period/4 {
		t.Fatalf("PeriodSleep(p/4) = %v, want %v", d, period-period/4)
	}
	if d := c.PeriodSleep(period); d != 0 {
		t.Fatalf("PeriodSleep(p) = %v, want 0", d)
	}
	if d := c.PeriodSleep(3 * period); d != 0 {
		t.Fatalf("PeriodSleep(3p) = %v, want 0", d)
	}
	if d := c.PeriodSleep(0); d != period {
		t.Fatalf("PeriodSleep(0) = %v, want %v", d, period)
	}
}
