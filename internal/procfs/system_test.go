package procfs

import (
	"fmt"
	"strings"
	"testing"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

func mountedTable(t *testing.T, cores int) (*memfs.FS, *sched.Scheduler) {
	t.Helper()
	fs := memfs.New()
	s := sched.New(cores)
	if _, err := New(fs, s, Mount); err != nil {
		t.Fatal(err)
	}
	return fs, s
}

func TestProcStat(t *testing.T) {
	fs, s := mountedTable(t, 2)
	s.NewThread(nil, nil) // saturates one core
	for i := 0; i < 100; i++ {
		s.Tick(10_000) // 1 s
	}
	content, err := fs.ReadFile(Mount + "/stat")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(content), "\n")
	if !strings.HasPrefix(lines[0], "cpu  ") {
		t.Fatalf("aggregate line missing: %q", lines[0])
	}
	var user, nice, system, idle int64
	if _, err := fmt.Sscanf(lines[0], "cpu %d %d %d %d", &user, &nice, &system, &idle); err != nil {
		t.Fatal(err)
	}
	// One core busy for 1 s = 100 jiffies; one idle = 100 jiffies.
	if user != 100 || idle != 100 {
		t.Fatalf("user=%d idle=%d, want 100/100", user, idle)
	}
	// Per-cpu lines present.
	if !strings.HasPrefix(lines[1], "cpu0 ") || !strings.HasPrefix(lines[2], "cpu1 ") {
		t.Fatalf("per-cpu lines missing:\n%s", content)
	}
}

func TestProcLoadAvg(t *testing.T) {
	fs, s := mountedTable(t, 4)
	for i := 0; i < 3; i++ {
		s.NewThread(nil, nil)
	}
	// Run long enough for the 1-minute average to converge upward.
	for i := 0; i < 18_000; i++ { // 180 s
		s.Tick(10_000)
	}
	content, err := fs.ReadFile(Mount + "/loadavg")
	if err != nil {
		t.Fatal(err)
	}
	var l1, l5, l15 float64
	var frac string
	if _, err := fmt.Sscanf(content, "%f %f %f %s", &l1, &l5, &l15, &frac); err != nil {
		t.Fatal(err)
	}
	if l1 < 2.8 || l1 > 3.1 {
		t.Fatalf("load1 = %v, want ≈3", l1)
	}
	if l5 < l15 {
		t.Fatalf("load5 %v < load15 %v after monotone ramp", l5, l15)
	}
	if frac != "3/3" {
		t.Fatalf("runnable fraction = %q, want 3/3", frac)
	}
}

func TestProcUptime(t *testing.T) {
	fs, s := mountedTable(t, 2)
	s.NewThread(nil, nil)
	for i := 0; i < 200; i++ { // 2 s
		s.Tick(10_000)
	}
	content, err := fs.ReadFile(Mount + "/uptime")
	if err != nil {
		t.Fatal(err)
	}
	var up, idle float64
	if _, err := fmt.Sscanf(content, "%f %f", &up, &idle); err != nil {
		t.Fatal(err)
	}
	if up != 2.0 {
		t.Fatalf("uptime = %v, want 2.0", up)
	}
	// 2 cores × 2 s − 2 s busy = 2 s idle.
	if idle != 2.0 {
		t.Fatalf("idle = %v, want 2.0", idle)
	}
}
