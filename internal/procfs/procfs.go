// Package procfs emulates the subset of /proc the virtual-frequency
// controller reads: /proc/<tid>/stat, whose 39th field (`task_cpu`) is the
// identifier of the core the thread last ran on. The controller combines
// it with the core's scaling_cur_freq to estimate a vCPU's virtual
// frequency.
package procfs

import (
	"fmt"
	"strconv"
	"strings"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

// Mount is the conventional mount point.
const Mount = "/proc"

// Table exposes scheduler threads through /proc files.
type Table struct {
	fs    *memfs.FS
	sched *sched.Scheduler
	mount string
}

// New mounts the table at mount inside fs, including the system-wide
// files /proc/stat, /proc/loadavg and /proc/uptime.
func New(fs *memfs.FS, s *sched.Scheduler, mount string) (*Table, error) {
	if err := fs.MkdirAll(mount); err != nil {
		return nil, err
	}
	t := &Table{fs: fs, sched: s, mount: mount}
	system := map[string]memfs.ReadFunc{
		"stat":    t.readStat,
		"loadavg": t.readLoadAvg,
		"uptime":  t.readUptime,
	}
	for name, read := range system {
		if err := fs.AddDynamic(mount+"/"+name, read, nil); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// readStat renders /proc/stat: aggregate and per-cpu jiffy counters
// (USER_HZ = 100). Only the user and idle columns carry real values.
func (t *Table) readStat() string {
	var b strings.Builder
	var busyTotal, idleTotal int64
	now := t.sched.NowUs()
	for c := 0; c < t.sched.Cores; c++ {
		busyTotal += t.sched.CoreBusyTotalUs(c)
		idleTotal += now - t.sched.CoreBusyTotalUs(c)
	}
	fmt.Fprintf(&b, "cpu  %d 0 0 %d 0 0 0 0 0 0\n", busyTotal/10_000, idleTotal/10_000)
	for c := 0; c < t.sched.Cores; c++ {
		busy := t.sched.CoreBusyTotalUs(c)
		fmt.Fprintf(&b, "cpu%d %d 0 0 %d 0 0 0 0 0 0\n",
			c, busy/10_000, (now-busy)/10_000)
	}
	fmt.Fprintf(&b, "ctxt 0\nbtime 0\nprocesses %d\n", t.sched.RunnableCount())
	return b.String()
}

// readLoadAvg renders /proc/loadavg from the scheduler's exponential
// runnable-thread averages.
func (t *Table) readLoadAvg() string {
	l1, l5, l15 := t.sched.LoadAvg()
	n := t.sched.RunnableCount()
	return fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n", l1, l5, l15, n, n, n+1)
}

// readUptime renders /proc/uptime: uptime and aggregate idle seconds.
func (t *Table) readUptime() string {
	now := float64(t.sched.NowUs()) / 1e6
	var busy int64
	for c := 0; c < t.sched.Cores; c++ {
		busy += t.sched.CoreBusyTotalUs(c)
	}
	idle := (float64(t.sched.NowUs())*float64(t.sched.Cores) - float64(busy)) / 1e6
	return fmt.Sprintf("%.2f %.2f\n", now, idle)
}

// Register exposes a thread as /proc/<tid>/stat (and a comm file). It must
// be called once per thread after creation.
func (t *Table) Register(th *sched.Thread, comm string) error {
	dir := fmt.Sprintf("%s/%d", t.mount, th.ID)
	if err := t.fs.MkdirAll(dir); err != nil {
		return err
	}
	if err := t.fs.AddDynamicAppend(dir+"/stat", func(buf []byte) []byte {
		return AppendStat(buf, th.ID, comm, th.UsageUs, th.LastCPU)
	}, nil); err != nil {
		return err
	}
	return t.fs.AddDynamic(dir+"/comm", func() string { return comm + "\n" }, nil)
}

// Unregister removes a thread's /proc entries.
func (t *Table) Unregister(tid int) error {
	return t.fs.RemoveAll(fmt.Sprintf("%s/%d", t.mount, tid))
}

// FormatStat renders a /proc/<tid>/stat line. Only the fields the
// controller consumes carry real values: pid (1), comm (2), state (3),
// utime (14, in clock ticks of 10 ms), and processor (39). The remaining
// fields are zero, as many are for kernel threads on a real system.
func FormatStat(tid int, comm string, usageUs int64, lastCPU int) string {
	ticks := usageUs / 10_000 // USER_HZ = 100
	fields := make([]string, 52)
	for i := range fields {
		fields[i] = "0"
	}
	fields[0] = strconv.Itoa(tid)
	fields[1] = "(" + comm + ")"
	fields[2] = "R"
	fields[13] = strconv.FormatInt(ticks, 10) // utime
	cpu := lastCPU
	if cpu < 0 {
		cpu = 0
	}
	fields[38] = strconv.Itoa(cpu) // processor
	return strings.Join(fields, " ") + "\n"
}

// AppendStat appends the same line FormatStat renders to buf and returns
// the extended slice, so the per-period placement read allocates nothing.
func AppendStat(buf []byte, tid int, comm string, usageUs int64, lastCPU int) []byte {
	ticks := usageUs / 10_000 // USER_HZ = 100
	cpu := lastCPU
	if cpu < 0 {
		cpu = 0
	}
	buf = strconv.AppendInt(buf, int64(tid), 10)
	buf = append(buf, " ("...)
	buf = append(buf, comm...)
	buf = append(buf, ") R"...)
	for i := 3; i < 52; i++ {
		switch i {
		case 13: // utime
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, ticks, 10)
		case 38: // processor
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(cpu), 10)
		default:
			buf = append(buf, " 0"...)
		}
	}
	return append(buf, '\n')
}

// ParseStatLastCPU extracts the processor field from a stat line,
// tolerating spaces inside the comm field the way real parsers must.
func ParseStatLastCPU(line string) (int, error) {
	close := strings.LastIndex(line, ")")
	if close < 0 {
		return 0, fmt.Errorf("procfs: malformed stat line %q", line)
	}
	rest := strings.Fields(strings.TrimSpace(line[close+1:]))
	// rest[0] is field 3 (state); processor is field 39 → rest[36].
	const idx = 36
	if len(rest) <= idx {
		return 0, fmt.Errorf("procfs: stat line too short (%d fields after comm)", len(rest))
	}
	cpu, err := strconv.Atoi(rest[idx])
	if err != nil {
		return 0, fmt.Errorf("procfs: bad processor field %q", rest[idx])
	}
	return cpu, nil
}

// ParseStatLastCPUBytes is ParseStatLastCPU for a raw read buffer; it
// walks the fields in place instead of splitting, so the per-period
// placement read allocates nothing.
func ParseStatLastCPUBytes(line []byte) (int, error) {
	end := -1
	for i := len(line) - 1; i >= 0; i-- {
		if line[i] == ')' {
			end = i
			break
		}
	}
	if end < 0 {
		return 0, fmt.Errorf("procfs: malformed stat line %q", line)
	}
	rest := line[end+1:]
	// The first field after the comm is field 3 (state); processor is
	// field 39, i.e. the 37th here.
	const want = 36
	field, i := 0, 0
	for {
		for i < len(rest) && isSpace(rest[i]) {
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("procfs: stat line too short (%d fields after comm)", field)
		}
		start := i
		for i < len(rest) && !isSpace(rest[i]) {
			i++
		}
		if field == want {
			var cpu int
			for _, c := range rest[start:i] {
				if c < '0' || c > '9' {
					return 0, fmt.Errorf("procfs: bad processor field %q", rest[start:i])
				}
				cpu = cpu*10 + int(c-'0')
			}
			return cpu, nil
		}
		field++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// ParseStatUtimeTicks extracts the utime field (clock ticks).
func ParseStatUtimeTicks(line string) (int64, error) {
	close := strings.LastIndex(line, ")")
	if close < 0 {
		return 0, fmt.Errorf("procfs: malformed stat line %q", line)
	}
	rest := strings.Fields(strings.TrimSpace(line[close+1:]))
	const idx = 11 // field 14 → rest[11]
	if len(rest) <= idx {
		return 0, fmt.Errorf("procfs: stat line too short")
	}
	return strconv.ParseInt(rest[idx], 10, 64)
}
