package procfs

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vfreq/internal/memfs"
	"vfreq/internal/sched"
)

func TestRegisterAndRead(t *testing.T) {
	fs := memfs.New()
	s := sched.New(2)
	tab, err := New(fs, s, Mount)
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread(nil, nil)
	if err := tab.Register(th, "CPU 0/KVM"); err != nil {
		t.Fatal(err)
	}
	s.Tick(10_000)
	line, err := fs.ReadFile(fmt.Sprintf("/proc/%d/stat", th.ID))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := ParseStatLastCPU(line)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != th.LastCPU {
		t.Fatalf("parsed cpu %d, thread LastCPU %d", cpu, th.LastCPU)
	}
	ticks, err := ParseStatUtimeTicks(line)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 1 { // 10 ms = 1 tick at USER_HZ=100
		t.Fatalf("utime ticks = %d, want 1", ticks)
	}
	comm, _ := fs.ReadFile(fmt.Sprintf("/proc/%d/comm", th.ID))
	if comm != "CPU 0/KVM\n" {
		t.Fatalf("comm = %q", comm)
	}
}

func TestUnregister(t *testing.T) {
	fs := memfs.New()
	s := sched.New(1)
	tab, _ := New(fs, s, Mount)
	th := s.NewThread(nil, nil)
	if err := tab.Register(th, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Unregister(th.ID); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(fmt.Sprintf("/proc/%d", th.ID)) {
		t.Fatal("proc dir survived unregister")
	}
}

func TestFormatStatFieldCount(t *testing.T) {
	line := FormatStat(42, "qemu", 120_000, 3)
	// comm has no spaces here, so fields split cleanly.
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 52 {
		t.Fatalf("stat has %d fields, want 52", len(fields))
	}
	if fields[0] != "42" || fields[1] != "(qemu)" || fields[2] != "R" {
		t.Fatalf("header fields wrong: %v", fields[:3])
	}
	if fields[13] != "12" {
		t.Fatalf("utime = %s, want 12", fields[13])
	}
	if fields[38] != "3" {
		t.Fatalf("processor = %s, want 3", fields[38])
	}
}

func TestParseHandlesSpacesInComm(t *testing.T) {
	line := FormatStat(7, "CPU 0/KVM", 0, 5)
	cpu, err := ParseStatLastCPU(line)
	if err != nil || cpu != 5 {
		t.Fatalf("cpu = %d, %v", cpu, err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := ParseStatLastCPU("not a stat line"); err == nil {
		t.Fatal("parsed garbage")
	}
	if _, err := ParseStatLastCPU("1 (x) R 0 0"); err == nil {
		t.Fatal("parsed short line")
	}
	if _, err := ParseStatUtimeTicks("nope"); err == nil {
		t.Fatal("utime parsed garbage")
	}
}

func TestNegativeLastCPUReportedAsZero(t *testing.T) {
	line := FormatStat(1, "x", 0, -1)
	cpu, err := ParseStatLastCPU(line)
	if err != nil || cpu != 0 {
		t.Fatalf("cpu = %d, %v; want 0", cpu, err)
	}
}

// Property: format → parse round-trips the processor and utime fields for
// any comm string, including parentheses and spaces.
func TestQuickStatRoundTrip(t *testing.T) {
	f := func(tid uint16, comm string, usage uint32, cpu uint8) bool {
		if strings.ContainsAny(comm, "\n") {
			comm = "x"
		}
		line := FormatStat(int(tid), comm+")", int64(usage), int(cpu))
		got, err := ParseStatLastCPU(line)
		if err != nil || got != int(cpu) {
			return false
		}
		ticks, err := ParseStatUtimeTicks(line)
		return err == nil && ticks == int64(usage)/10_000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the byte-slice parser agrees with the string parser for any
// comm string, including parentheses and spaces.
func TestQuickStatBytesAgree(t *testing.T) {
	f := func(tid uint16, comm string, usage uint32, cpu uint8) bool {
		if strings.ContainsAny(comm, "\n") {
			comm = "x"
		}
		line := FormatStat(int(tid), comm+")", int64(usage), int(cpu))
		s, errS := ParseStatLastCPU(line)
		b, errB := ParseStatLastCPUBytes([]byte(line))
		return (errS == nil) == (errB == nil) && s == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseStatLastCPUBytesErrors(t *testing.T) {
	if _, err := ParseStatLastCPUBytes([]byte("no comm here")); err == nil {
		t.Fatal("malformed line parsed")
	}
	if _, err := ParseStatLastCPUBytes([]byte("1 (x) R 0 0")); err == nil {
		t.Fatal("short line parsed")
	}
}
